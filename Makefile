# Build/test entry points. `make check` is the PR gate: it builds and
# vets every package, then runs the short test suite under the race
# detector, which exercises the internal/runner worker pool and the
# suite-level order-independence tests concurrently.

GO ?= go

.PHONY: all build vet check test figures clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

check: build vet
	$(GO) test -race -short ./...

# Full suite, including the ~2 min headline reproduction tests.
test: build vet
	$(GO) test ./...

# Regenerate the committed reference outputs.
figures:
	$(GO) run ./cmd/paperfigs > paperfigs_output.txt
	$(GO) run ./cmd/ablate -quiet > ablate_output.txt

clean:
	$(GO) clean ./...
