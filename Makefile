# Build/test entry points. `make check` is the PR gate: it builds and
# vets every package (vet runs over ./..., so new packages such as
# internal/faultinject and internal/metrics are covered automatically),
# then runs the short test suite under the race detector, which
# exercises the internal/runner worker pool, the concurrent metrics
# sinks, and the suite-level order-independence tests concurrently. `make faultcheck` runs just the fault-injection
# suite — panic isolation, retries, deadlines, cache quarantine,
# KeepGoing determinism — under the race detector.

GO ?= go

.PHONY: all build vet check test faultcheck conform fuzzsmoke figures bench benchgate clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

check: build vet
	$(GO) test -race -short ./...

faultcheck: build
	$(GO) test -race ./internal/faultinject/
	$(GO) test -race -run 'TestFaultTolerantSuiteAcceptance|TestSelfCheckOutputIdentical' .

# Replay the committed conformance corpus: every case re-simulates
# serially, with phase shards, and with fast-forward disabled, and the
# normalized stats must match expected_stats.json byte for byte. After
# an intentional behavior change, regenerate with
# `go run ./cmd/conform -update` and commit the diff.
conform: build
	$(GO) run ./cmd/conform -j 8

# Fixed-seed differential fuzz smoke under the race detector: 200
# random (config, policy, workload) triples run serial vs sharded vs
# ff-off with the invariant sweeps on. Deterministic, so a failure in
# CI reproduces locally with the same seed; findings are shrunk and
# written to /tmp/conffuzz-findings as ready-to-commit corpus cases.
fuzzsmoke: build
	$(GO) run -race ./cmd/conffuzz -seed 1 -n 200 -out /tmp/conffuzz-findings

# Full suite, including the ~2 min headline reproduction tests.
test: build vet
	$(GO) test ./...

# Regenerate the tracked performance baseline: every benchmark (with
# allocation reporting baked into the benchmarks themselves) plus one
# serial RunSuite(PaperSchemes()) wall-clock pass, distilled into
# BENCH_PR4.json by cmd/benchjson. `make benchgate` re-measures just the
# suite wall pass and fails when it regressed >15% against the
# committed baseline — the same gate CI runs.
bench: build
	$(GO) test -run '^$$' -bench . -timeout 60m . ./internal/sm/ | $(GO) run ./cmd/benchjson -o BENCH_PR4.json

# The gate measures the wall headline (one 1x pass) plus the zero-alloc
# hot-path benchmarks (enough iterations to amortize warm-up): wall time
# is gated only when the host fingerprint matches the baseline's,
# allocs/op (deterministic per binary) gate everywhere.
benchgate: build
	$(GO) test -run '^$$' -bench 'BenchmarkSuitePaperWall' -benchtime 1x -timeout 30m . > /tmp/bench_fresh.txt
	$(GO) test -run '^$$' -bench 'BenchmarkL1DAccess|BenchmarkPDPTSample|BenchmarkIssueStorePath' -benchtime 10000x -timeout 30m . ./internal/sm/ >> /tmp/bench_fresh.txt
	$(GO) run ./cmd/benchjson -o /tmp/bench_fresh.json < /tmp/bench_fresh.txt
	$(GO) run ./cmd/benchgate -baseline BENCH_PR4.json -fresh /tmp/bench_fresh.json -max-regress-pct 15

# Regenerate the committed reference outputs.
figures:
	$(GO) run ./cmd/paperfigs > paperfigs_output.txt
	$(GO) run ./cmd/ablate -quiet > ablate_output.txt

clean:
	$(GO) clean ./...
