# Build/test entry points. `make check` is the PR gate: it builds and
# vets every package (vet runs over ./..., so new packages such as
# internal/faultinject and internal/metrics are covered automatically),
# then runs the short test suite under the race detector, which
# exercises the internal/runner worker pool, the concurrent metrics
# sinks, and the suite-level order-independence tests concurrently. `make faultcheck` runs just the fault-injection
# suite — panic isolation, retries, deadlines, cache quarantine,
# KeepGoing determinism — under the race detector.

GO ?= go

.PHONY: all build vet check test faultcheck conform fuzzsmoke streamsmoke scalesmoke servesmoke figures bench benchgate clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

check: build vet
	$(GO) test -race -short ./...

faultcheck: build
	$(GO) test -race ./internal/faultinject/
	$(GO) test -race -run 'TestFaultTolerantSuiteAcceptance|TestSelfCheckOutputIdentical' .

# Replay the committed conformance corpus: every case re-simulates
# serially, with phase shards, with fast-forward disabled, and at extra
# odd core counts (3/5/7 leave the steal spans uneven), and the
# normalized stats must match expected_stats.json byte for byte. After
# an intentional behavior change, regenerate with
# `go run ./cmd/conform -update` and commit the diff.
conform: build
	$(GO) run ./cmd/conform -j 8 -extra-cores 3,5,7

# Fixed-seed differential fuzz smoke under the race detector: 200
# random (config, policy, workload) triples run serial vs sharded vs
# ff-off with the invariant sweeps on. Deterministic, so a failure in
# CI reproduces locally with the same seed; findings are shrunk and
# written to /tmp/conffuzz-findings as ready-to-commit corpus cases.
fuzzsmoke: build
	$(GO) run -race ./cmd/conffuzz -seed 1 -n 200 -out /tmp/conffuzz-findings

# Full suite, including the ~2 min headline reproduction tests.
test: build vet
	$(GO) test ./...

# Streamed-frontend smoke: record a 10x-scaled trace with dlptrace,
# verify its digest and replayability, replay it through dlpsim with
# the observability exports on, lint those exports, and re-run the
# streamed conformance cases (streamed variants must match the eager
# serial reference byte for byte).
streamsmoke: build
	$(GO) run ./cmd/dlptrace record -app SC -scale 10 -o /tmp/streamsmoke.dlpstrm
	$(GO) run ./cmd/dlptrace verify /tmp/streamsmoke.dlpstrm
	$(GO) run ./cmd/dlpsim -stream-file /tmp/streamsmoke.dlpstrm -policy dlp \
		-metrics /tmp/streamsmoke_metrics.jsonl -trace /tmp/streamsmoke_trace.json
	$(GO) run ./cmd/metriclint -metrics /tmp/streamsmoke_metrics.jsonl -trace /tmp/streamsmoke_trace.json
	$(GO) run ./cmd/conform -run 'stream-*'

# Regenerate the tracked performance baseline: every benchmark (with
# allocation reporting baked into the benchmarks themselves) plus one
# serial RunSuite(PaperSchemes()) wall-clock pass and the
# BenchmarkEngineScaling cores=1/2/4/8 curve, distilled into
# BENCH_PR9.json by cmd/benchjson — and, via -ledger, into the per-host
# baseline BENCH_<fingerprint>.json so this machine class hard-gates
# wall time and the scaling curve from now on. `make benchgate`
# re-measures just the suite wall pass and fails when it regressed >15%
# against the committed baseline — the same gate CI runs.
bench: build
	$(GO) test -run '^$$' -bench . -timeout 60m . ./internal/sm/ ./internal/sim/ ./internal/interconnect/ | $(GO) run ./cmd/benchjson -o BENCH_PR9.json -ledger .

# The gate measures the wall headline (one 1x pass) plus the zero-alloc
# hot-path benchmarks (enough iterations to amortize warm-up), the
# streamed issue path included: wall time gates unconditionally against
# this host class's ledger entry when one is committed, else only when
# the flat baseline's fingerprint matches; allocs/op (deterministic per
# binary) gate everywhere.
benchgate: build
	$(GO) test -run '^$$' -bench 'BenchmarkSuitePaperWall' -benchtime 1x -timeout 30m . > /tmp/bench_fresh.txt
	$(GO) test -run '^$$' -bench 'BenchmarkL1DAccess|BenchmarkPDPTSample|BenchmarkIssueStorePath|BenchmarkLanePushBatch|BenchmarkStealScheduleStep' -benchtime 10000x -timeout 30m . ./internal/sm/ ./internal/sim/ ./internal/interconnect/ >> /tmp/bench_fresh.txt
	$(GO) run ./cmd/benchjson -o /tmp/bench_fresh.json < /tmp/bench_fresh.txt
	$(GO) run ./cmd/benchgate -baselines . -baseline BENCH_PR9.json -fresh /tmp/bench_fresh.json -max-regress-pct 15

# Multi-core determinism smoke under the race detector: the same
# dlpsim run serially and at -cores 0 (auto: all host CPUs) with the
# invariant sweeps on, printed stats diffed byte for byte. Both runs
# ride two different workloads so a core-count-dependent divergence in
# either the baseline or the DLP machinery would surface.
scalesmoke: build
	$(GO) run -race ./cmd/dlpsim -app HS -policy dlp -selfcheck -cores 1 > /tmp/scalesmoke_c1.txt
	$(GO) run -race ./cmd/dlpsim -app HS -policy dlp -selfcheck -cores 0 > /tmp/scalesmoke_cN.txt
	cmp /tmp/scalesmoke_c1.txt /tmp/scalesmoke_cN.txt
	$(GO) run -race ./cmd/dlpsim -app BFS -policy baseline -selfcheck -cores 1 > /tmp/scalesmoke_b1.txt
	$(GO) run -race ./cmd/dlpsim -app BFS -policy baseline -selfcheck -cores 0 > /tmp/scalesmoke_bN.txt
	cmp /tmp/scalesmoke_b1.txt /tmp/scalesmoke_bN.txt
	@echo "scalesmoke: serial and all-core runs are byte-identical"

# Job-server smoke: start dlpserved on an ephemeral port, replay three
# committed conformance cases through the HTTP API with dlpload (the
# server's normalized stats must byte-match expected_stats.json), drain
# it with POST /shutdown, then run the reduced-scale concurrency soak —
# dedup storms, cancellation mix, graceful drain — under the race
# detector.
servesmoke: build
	$(GO) build -o /tmp/dlpserved ./cmd/dlpserved
	$(GO) build -o /tmp/dlpload ./cmd/dlpload
	rm -f /tmp/dlpserved.addr; \
	/tmp/dlpserved -addr 127.0.0.1:0 -addr-file /tmp/dlpserved.addr & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 100); do [ -s /tmp/dlpserved.addr ] && break; sleep 0.1; done; \
	/tmp/dlpload -addr-file /tmp/dlpserved.addr -replay testdata/conform -run 'app-*' && \
	/tmp/dlpload -addr-file /tmp/dlpserved.addr -shutdown && \
	wait $$pid
	$(GO) test -race -short -run 'TestServeSoak|TestDedupStormSingleSimulation' ./internal/serve/

# Regenerate the committed reference outputs.
figures:
	$(GO) run ./cmd/paperfigs > paperfigs_output.txt
	$(GO) run ./cmd/ablate -quiet > ablate_output.txt

clean:
	$(GO) clean ./...
