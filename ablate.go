package dlpsim

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Ablations quantify the design choices §4 fixes by fiat: the 200-access
// sampling period (§4.1.4), the 4-bit PD/PL field width (§4.3), and the
// VTA associativity (footnote 2: equal to the cache's). Each ablation
// sweeps one parameter and reports DLP's IPC speedup over the unmodified
// baseline cache on a set of cache-insufficient applications.

// AblationPoint is one parameter setting's outcome.
type AblationPoint struct {
	Value    int                // the swept parameter's value
	Speedups map[string]float64 // app -> DLP IPC / baseline IPC
	GeoMean  float64
}

// Ablation is one parameter sweep.
type Ablation struct {
	Name   string
	Apps   []string
	Points []AblationPoint
}

// DefaultAblationApps are the CI applications used for sweeps: the two
// protection showcases, one 32KB-favoring app, and one long-RD app.
func DefaultAblationApps() []string { return []string{"CFD", "PVR", "SRK", "KM"} }

// runAblation sweeps mutate over values for the given apps.
func runAblation(name string, apps []string, values []int,
	mutate func(cfg *config.Config, v int), progress func(string)) (*Ablation, error) {
	ab := &Ablation{Name: name, Apps: apps}

	// Baselines are measured once with the untouched configuration: the
	// swept parameters only exist inside the DLP hardware, so the
	// baseline cache is unaffected by them.
	base := make(map[string]float64, len(apps))
	for _, app := range apps {
		spec, err := workloads.ByAbbr(app)
		if err != nil {
			return nil, err
		}
		if progress != nil {
			progress(fmt.Sprintf("%s: baseline %s", name, app))
		}
		st, err := sim.RunOnce(config.Baseline(), config.PolicyBaseline, spec.Generate(), sim.Options{})
		if err != nil {
			return nil, err
		}
		base[app] = st.IPC()
	}

	for _, v := range values {
		pt := AblationPoint{Value: v, Speedups: make(map[string]float64, len(apps))}
		var ratios []float64
		for _, app := range apps {
			spec, err := workloads.ByAbbr(app)
			if err != nil {
				return nil, err
			}
			cfg := config.Baseline()
			mutate(cfg, v)
			if err := cfg.Validate(); err != nil {
				return nil, err
			}
			if progress != nil {
				progress(fmt.Sprintf("%s=%d: %s", name, v, app))
			}
			st, err := sim.RunOnce(cfg, config.PolicyDLP, spec.Generate(), sim.Options{})
			if err != nil {
				return nil, err
			}
			sp := st.IPC() / base[app]
			pt.Speedups[app] = sp
			ratios = append(ratios, sp)
		}
		pt.GeoMean = stats.GeoMean(ratios)
		ab.Points = append(ab.Points, pt)
	}
	return ab, nil
}

// AblateSamplePeriod sweeps the sampling period (§4.1.4; paper: 200
// cache accesses).
func AblateSamplePeriod(apps []string, progress func(string)) (*Ablation, error) {
	return runAblation("sample-period", apps, []int{50, 100, 200, 400, 800},
		func(cfg *config.Config, v int) { cfg.SampleAccesses = v }, progress)
}

// AblatePDBits sweeps the protection-distance field width (§4.3; paper:
// 4 bits, i.e. a maximum protected life of 15 set queries).
func AblatePDBits(apps []string, progress func(string)) (*Ablation, error) {
	return runAblation("pd-bits", apps, []int{2, 3, 4, 5, 6},
		func(cfg *config.Config, v int) { cfg.PDBits = v }, progress)
}

// AblateVTAWays sweeps the victim-tag-array associativity (footnote 2;
// paper: equal to the cache's 4 ways). Nasc scales with it, so this
// changes both the observation window and the PD increments.
func AblateVTAWays(apps []string, progress func(string)) (*Ablation, error) {
	return runAblation("vta-ways", apps, []int{2, 4, 8, 16},
		func(cfg *config.Config, v int) { cfg.VTAWays = v }, progress)
}

// AblateWarpLimit sweeps a static CCWS-style active-warp throttle on top
// of DLP — the combination the paper's related work points at (Chen et
// al. [6] integrate PDP with CCWS). Zero means unthrottled.
func AblateWarpLimit(apps []string, progress func(string)) (*Ablation, error) {
	return runAblation("warp-limit", apps, []int{0, 8, 16, 24, 32},
		func(cfg *config.Config, v int) { cfg.MaxActiveWarps = v }, progress)
}

// Render formats the ablation as an aligned table.
func (a *Ablation) Render() string {
	out := fmt.Sprintf("== ablation: %s ==\n%-8s", a.Name, "value")
	for _, app := range a.Apps {
		out += fmt.Sprintf("%8s", app)
	}
	out += fmt.Sprintf("%10s\n", "geomean")
	for _, pt := range a.Points {
		out += fmt.Sprintf("%-8d", pt.Value)
		for _, app := range a.Apps {
			out += fmt.Sprintf("%8.3f", pt.Speedups[app])
		}
		out += fmt.Sprintf("%10.3f\n", pt.GeoMean)
	}
	return out
}
