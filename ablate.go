package dlpsim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Ablations quantify the design choices §4 fixes by fiat: the 200-access
// sampling period (§4.1.4), the 4-bit PD/PL field width (§4.3), and the
// VTA associativity (footnote 2: equal to the cache's). Each ablation
// sweeps one parameter and reports DLP's IPC speedup over the unmodified
// baseline cache on a set of cache-insufficient applications.

// AblationPoint is one parameter setting's outcome.
type AblationPoint struct {
	Value    int                // the swept parameter's value
	Speedups map[string]float64 // app -> swept-policy IPC / baseline IPC
	GeoMean  float64
}

// Ablation is one parameter sweep.
type Ablation struct {
	Name   string
	Apps   []string
	Points []AblationPoint
}

// DefaultAblationApps are the CI applications used for sweeps: the two
// protection showcases, one 32KB-favoring app, and one long-RD app.
func DefaultAblationApps() []string { return []string{"CFD", "PVR", "SRK", "KM"} }

// runAblation sweeps mutate over values for the given apps under pol.
// All points — the per-app baselines plus every (value, app) run — are
// submitted to r as one batch, so the pool overlaps them freely and a
// shared result cache deduplicates the baselines across sweeps. A nil
// runner gets the defaults (GOMAXPROCS workers, no cache).
func runAblation(ctx context.Context, name string, pol Policy, apps []string, values []int,
	mutate func(cfg *config.Config, v int), r *runner.Runner) (*Ablation, error) {
	if r == nil {
		r = &runner.Runner{}
	}
	ab := &Ablation{Name: name, Apps: apps}

	// Kernels are generated once per app and shared by every point
	// (they are read-only during simulation).
	kernels := make([]*trace.Kernel, len(apps))
	for i, app := range apps {
		spec, err := workloads.ByAbbr(app)
		if err != nil {
			return nil, err
		}
		kernels[i] = spec.SharedKernel(config.Baseline().L1D.LineSize)
	}

	// Baselines are measured once with the untouched configuration: the
	// swept parameters only exist inside the policy hardware, so the
	// baseline cache is unaffected by them.
	var jobs []runner.Job
	for i, app := range apps {
		jobs = append(jobs, runner.Job{
			Label:  fmt.Sprintf("%s: baseline %s", name, app),
			Config: config.Baseline(),
			Policy: config.PolicyBaseline,
			Kernel: kernels[i],
		})
	}
	for _, v := range values {
		cfg := config.Baseline()
		mutate(cfg, v)
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		for i, app := range apps {
			jobs = append(jobs, runner.Job{
				Label:  fmt.Sprintf("%s=%d: %s", name, v, app),
				Config: cfg,
				Policy: pol,
				Kernel: kernels[i],
			})
		}
	}

	results, err := r.Run(ctx, jobs)
	// With a KeepGoing runner a *runner.BatchError carries a complete
	// results slice whose failed points hold nil Stats; tabulate the
	// partial sweep (failed cells become NaN → rendered FAILED) and
	// return it alongside the error. Any other error has no results.
	if err != nil && !(r.KeepGoing && errors.As(err, new(*runner.BatchError))) {
		return nil, err
	}

	ipc := func(res runner.Result) float64 {
		if res.Stats == nil {
			return math.NaN()
		}
		return res.Stats.IPC()
	}
	base := make(map[string]float64, len(apps))
	for i, app := range apps {
		base[app] = ipc(results[i])
	}
	idx := len(apps)
	for _, v := range values {
		pt := AblationPoint{Value: v, Speedups: make(map[string]float64, len(apps))}
		var ratios []float64
		for _, app := range apps {
			sp := ipc(results[idx]) / base[app] // NaN in either operand stays NaN
			pt.Speedups[app] = sp
			if !math.IsNaN(sp) {
				ratios = append(ratios, sp)
			}
			idx++
		}
		pt.GeoMean = stats.GeoMean(ratios) // NaN when every app failed
		ab.Points = append(ab.Points, pt)
	}
	return ab, err
}

// AblateSamplePeriod sweeps the sampling period (§4.1.4; paper: 200
// cache accesses).
func AblateSamplePeriod(ctx context.Context, apps []string, r *Runner) (*Ablation, error) {
	return runAblation(ctx, "sample-period", DLP, apps, []int{50, 100, 200, 400, 800},
		func(cfg *config.Config, v int) { cfg.SampleAccesses = v }, r)
}

// AblatePDBits sweeps the protection-distance field width (§4.3; paper:
// 4 bits, i.e. a maximum protected life of 15 set queries).
func AblatePDBits(ctx context.Context, apps []string, r *Runner) (*Ablation, error) {
	return runAblation(ctx, "pd-bits", DLP, apps, []int{2, 3, 4, 5, 6},
		func(cfg *config.Config, v int) { cfg.PDBits = v }, r)
}

// AblateVTAWays sweeps the victim-tag-array associativity (footnote 2;
// paper: equal to the cache's 4 ways). Nasc scales with it, so this
// changes both the observation window and the PD increments.
func AblateVTAWays(ctx context.Context, apps []string, r *Runner) (*Ablation, error) {
	return runAblation(ctx, "vta-ways", DLP, apps, []int{2, 4, 8, 16},
		func(cfg *config.Config, v int) { cfg.VTAWays = v }, r)
}

// AblateWarpLimit sweeps a static CCWS-style active-warp throttle on top
// of DLP — the combination the paper's related work points at (Chen et
// al. [6] integrate PDP with CCWS). Zero means unthrottled.
func AblateWarpLimit(ctx context.Context, apps []string, r *Runner) (*Ablation, error) {
	return runAblation(ctx, "warp-limit", DLP, apps, []int{0, 8, 16, 24, 32},
		func(cfg *config.Config, v int) { cfg.MaxActiveWarps = v }, r)
}

// AblateATAWays sweeps the aggregated tag array's associativity under
// the ATA policy (arXiv:2302.10638 sizes the tag store several times
// the data store; the paper's default here is 16 ways over a 4-way
// cache).
func AblateATAWays(ctx context.Context, apps []string, r *Runner) (*Ablation, error) {
	return runAblation(ctx, "ata-ways", ATA, apps, []int{4, 8, 16, 32},
		func(cfg *config.Config, v int) { cfg.ATAWays = v }, r)
}

// AblateCCWSLifetime sweeps CCWS-lite's protection lifetime in the
// accesses encoding (set queries a re-fetched line stays protected).
func AblateCCWSLifetime(ctx context.Context, apps []string, r *Runner) (*Ablation, error) {
	return runAblation(ctx, "ccws-lifetime", CCWSLite, apps, []int{2, 4, 8, 16, 32},
		func(cfg *config.Config, v int) { cfg.CCWSProtectAccesses = v }, r)
}

// AblatePredictorDeadPeriods sweeps how many reuse-free sampling periods
// the reuse predictor tolerates before declaring an instruction dead.
func AblatePredictorDeadPeriods(ctx context.Context, apps []string, r *Runner) (*Ablation, error) {
	return runAblation(ctx, "pred-dead-periods", ReusePredictor, apps, []int{1, 2, 3, 4, 6},
		func(cfg *config.Config, v int) { cfg.PredictorDeadPeriods = v }, r)
}

// Render formats the ablation as an aligned table. NaN cells — points
// whose job failed in a keep-going sweep — render as FAILED rather than
// a number, so a partial table can never be mistaken for a complete one.
func (a *Ablation) Render() string {
	cell := func(width int, v float64) string {
		if math.IsNaN(v) {
			return fmt.Sprintf("%*s", width, "FAILED")
		}
		return fmt.Sprintf("%*.3f", width, v)
	}
	out := fmt.Sprintf("== ablation: %s ==\n%-8s", a.Name, "value")
	for _, app := range a.Apps {
		out += fmt.Sprintf("%8s", app)
	}
	out += fmt.Sprintf("%10s\n", "geomean")
	for _, pt := range a.Points {
		out += fmt.Sprintf("%-8d", pt.Value)
		for _, app := range a.Apps {
			out += cell(8, pt.Speedups[app])
		}
		out += cell(10, pt.GeoMean) + "\n"
	}
	return out
}
