package dlpsim

import (
	"context"
	"strings"
	"testing"
)

func TestAblationPDBits(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep skipped in -short mode")
	}
	ab, err := AblatePDBits(context.Background(), []string{"CFD"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.Points) != 5 {
		t.Fatalf("swept %d points", len(ab.Points))
	}
	// The paper's 4-bit choice must clearly beat a 2-bit field on the
	// protection showcase app.
	by := map[int]float64{}
	for _, pt := range ab.Points {
		by[pt.Value] = pt.GeoMean
	}
	if by[4] <= by[2] {
		t.Errorf("4-bit PD (%.3f) not better than 2-bit (%.3f)", by[4], by[2])
	}
	if by[4] < 1.05 {
		t.Errorf("4-bit PD speedup %.3f, want a clear gain on CFD", by[4])
	}
	out := ab.Render()
	for _, want := range []string{"pd-bits", "CFD", "geomean"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestAblationRejectsUnknownApp(t *testing.T) {
	if _, err := AblatePDBits(context.Background(), []string{"NOPE"}, nil); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestDefaultAblationApps(t *testing.T) {
	for _, a := range DefaultAblationApps() {
		if _, err := WorkloadByAbbr(a); err != nil {
			t.Errorf("default ablation app %s unknown: %v", a, err)
		}
	}
}
