package dlpsim

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/metrics"
)

// Each evaluation table/figure has a benchmark that regenerates it. The
// heavy simulation suites (Figs. 5 and 10–13) are computed once per
// process and cached; the per-iteration cost the benchmark reports is
// the table construction over those results, while the first iteration
// pays for the simulations themselves. Run with:
//
//	go test -bench=. -benchmem
//
// Micro-benchmarks for the core mechanisms (cache access path, PDPT
// sampling, RDD profiling) follow at the bottom.

var (
	benchPaperOnce sync.Once
	benchPaper     *SuiteResult
	benchAssocOnce sync.Once
	benchAssoc     *SuiteResult
)

func benchPaperSuite(b *testing.B) *SuiteResult {
	b.Helper()
	benchPaperOnce.Do(func() {
		var err error
		benchPaper, err = RunSuite(context.Background(), PaperSchemes(), nil)
		if err != nil {
			b.Fatal(err)
		}
	})
	return benchPaper
}

func benchAssocSuite(b *testing.B) *SuiteResult {
	b.Helper()
	benchAssocOnce.Do(func() {
		var err error
		benchAssoc, err = RunSuite(context.Background(), AssocSchemes(), nil)
		if err != nil {
			b.Fatal(err)
		}
	})
	return benchAssoc
}

// BenchmarkTable2Workloads regenerates every Table 2 application trace.
func BenchmarkTable2Workloads(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, w := range Workloads() {
			k := w.Generate()
			if len(k.Blocks) == 0 {
				b.Fatal("empty kernel")
			}
		}
	}
}

// BenchmarkTable2WorkloadsStream is the streamed counterpart of
// BenchmarkTable2Workloads: suite startup with the lazy frontend
// builds one stream per Table 2 application (a shape pass over the
// grid, no instruction materialization), which is what RunSuite with
// SuiteOptions.Stream pays before the SMs start pulling chunks.
func BenchmarkTable2WorkloadsStream(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, w := range Workloads() {
			src := w.Stream(1)
			if src.Blocks() == 0 {
				b.Fatal("empty stream")
			}
		}
	}
}

// BenchmarkFig3RDD regenerates the program-level reuse-distance
// distributions of all 18 applications.
func BenchmarkFig3RDD(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if d := Fig3RDD(); len(d.Rows) != 18 {
			b.Fatal("bad Fig3")
		}
	}
}

// BenchmarkFig4MissRate regenerates the 16/32/64KB reuse-miss-rate study.
func BenchmarkFig4MissRate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fig4MissRates(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Associativity regenerates the IPC-vs-cache-size figure.
func BenchmarkFig5Associativity(b *testing.B) {
	b.ReportAllocs()
	suite := benchAssocSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := suite.Fig5IPC(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6AccessRatio regenerates the sorted memory-access-ratio
// classification.
func BenchmarkFig6AccessRatio(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fig6Ratios(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7PerPC regenerates BFS's per-instruction RDD.
func BenchmarkFig7PerPC(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if d := Fig7BFS(); len(d.Rows) == 0 {
			b.Fatal("bad Fig7")
		}
	}
}

// BenchmarkFig10IPC regenerates the headline IPC comparison.
func BenchmarkFig10IPC(b *testing.B) {
	b.ReportAllocs()
	suite := benchPaperSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := suite.Fig10IPC(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11Traffic regenerates the L1D traffic and eviction tables.
func BenchmarkFig11Traffic(b *testing.B) {
	b.ReportAllocs()
	suite := benchPaperSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := suite.Fig11aTraffic(); err != nil {
			b.Fatal(err)
		}
		if _, err := suite.Fig11bEvictions(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12Hits regenerates the hit-rate and hit-count tables.
func BenchmarkFig12Hits(b *testing.B) {
	b.ReportAllocs()
	suite := benchPaperSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := suite.Fig12aHitRate(); err != nil {
			b.Fatal(err)
		}
		if _, err := suite.Fig12bHits(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13ICNT regenerates the interconnect-traffic table.
func BenchmarkFig13ICNT(b *testing.B) {
	b.ReportAllocs()
	suite := benchPaperSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := suite.Fig13ICNT(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadModel evaluates the §4.3 cost model.
func BenchmarkOverheadModel(b *testing.B) {
	b.ReportAllocs()
	cfg := BaselineConfig()
	for i := 0; i < b.N; i++ {
		if o := HardwareOverhead(cfg); o.TotalBytes != 1264 {
			b.Fatal("wrong overhead")
		}
	}
}

// BenchmarkRunCFD measures one full simulation of the CFD application
// under each policy — the per-run cost behind the figure suites.
func BenchmarkRunCFD(b *testing.B) {
	b.ReportAllocs()
	for _, p := range Policies() {
		b.Run(p.String(), func(b *testing.B) {
			b.ReportAllocs()
			w, _ := WorkloadByAbbr("CFD")
			k := w.Generate()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(BaselineConfig(), p, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// warmL1D drives req through c until the access hits: each round
// submits the request once and drains every outgoing response. One
// fill round is enough for the paper policies, but policies that keep
// the first touch out of the cache (ATA bypasses unseen tags) need an
// extra round before the line is resident, so the loop runs until the
// hit path is actually reached.
func warmL1D(tb testing.TB, c *core.L1D, req *mem.Request) {
	tb.Helper()
	for round := 0; round < 8; round++ {
		req.ID++
		if c.Access(req) == mem.OutcomeHit {
			return
		}
		for {
			r := c.PopOutgoing()
			if r == nil {
				break
			}
			c.OnResponse(r)
		}
		// The engine's request pool zeroes recycled requests; reusing
		// one object here must do the same, or a bypassed round would
		// leave req.Bypass set and turn the next fill into a delivery.
		req.Bypass = false
	}
	tb.Fatal("L1D did not reach the hit path in 8 warm-up rounds")
}

// BenchmarkL1DAccess measures the raw L1D access path (hit case) under
// every registered policy — the dispatch through the policy interface
// must stay free on the hot path.
func BenchmarkL1DAccess(b *testing.B) {
	b.ReportAllocs()
	for _, p := range Policies() {
		b.Run(p.String(), func(b *testing.B) {
			b.ReportAllocs()
			cfg := config.Baseline()
			delivered := 0
			c := core.NewL1D(cfg, p, func(*mem.Request) { delivered++ })
			req := &mem.Request{ID: 1, Addr: 0x1000, InsnID: addr.HashPC(3)}
			warmL1D(b, c, req)
			// One reused request: the steady-state hit path must not
			// allocate, and a fresh request per iteration would hide
			// that behind its own allocation.
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Tick(uint64(i))
				req.ID = uint64(i + 2)
				if out := c.Access(req); out != mem.OutcomeHit {
					b.Fatalf("unexpected outcome %v", out)
				}
			}
		})
	}
}

// TestL1DAccessSteadyStateAllocs pins the zero-allocation guarantee of
// the steady-state L1D hit path under every policy; BenchmarkL1DAccess
// reports the same number but only when someone reads the bench output.
func TestL1DAccessSteadyStateAllocs(t *testing.T) {
	for _, p := range Policies() {
		cfg := config.Baseline()
		c := core.NewL1D(cfg, p, func(*mem.Request) {})
		req := &mem.Request{ID: 1, Addr: 0x1000, InsnID: addr.HashPC(3)}
		warmL1D(t, c, req)
		now := req.ID
		// Settle queue capacities before measuring.
		for i := 0; i < 256; i++ {
			now++
			c.Tick(now)
			req.ID = now
			c.Access(req)
		}
		avg := testing.AllocsPerRun(200, func() {
			now++
			c.Tick(now)
			req.ID = now
			c.Access(req)
		})
		if avg != 0 {
			t.Errorf("%v: L1D steady-state hit path allocates %.2f per access, want 0", p, avg)
		}
	}
}

// TestL1DAccessRegisteredRegistryAllocs proves the metrics registry is
// free when not sampled: with every counter and gauge of the cache
// registered (as the engine does when -metrics is set) but no sampling
// in progress, the steady-state hit path must still allocate nothing.
// Registration only records pointers to counters the cache already
// maintains — the access path never calls into the registry.
func TestL1DAccessRegisteredRegistryAllocs(t *testing.T) {
	for _, p := range Policies() {
		cfg := config.Baseline()
		c := core.NewL1D(cfg, p, func(*mem.Request) {})
		reg := metrics.NewRegistry()
		c.RegisterMetrics(reg, "l1d")
		reg.Seal()
		req := &mem.Request{ID: 1, Addr: 0x1000, InsnID: addr.HashPC(3)}
		warmL1D(t, c, req)
		now := req.ID
		for i := 0; i < 256; i++ {
			now++
			c.Tick(now)
			req.ID = now
			c.Access(req)
		}
		avg := testing.AllocsPerRun(200, func() {
			now++
			c.Tick(now)
			req.ID = now
			c.Access(req)
		})
		if avg != 0 {
			t.Errorf("%v: L1D hit path with a registered registry allocates %.2f per access, want 0", p, avg)
		}
		// Sampling itself is also allocation-free once sealed.
		if avg := testing.AllocsPerRun(100, func() { reg.Sample() }); avg != 0 {
			t.Errorf("%v: registry Sample allocates %.2f per call, want 0", p, avg)
		}
	}
}

// BenchmarkL1DAccessRegisteredRegistry is the benchmark form of the
// test above, for the perf baseline: allocs/op must report 0.
func BenchmarkL1DAccessRegisteredRegistry(b *testing.B) {
	b.ReportAllocs()
	cfg := config.Baseline()
	c := core.NewL1D(cfg, DLP, func(*mem.Request) {})
	reg := metrics.NewRegistry()
	c.RegisterMetrics(reg, "l1d")
	reg.Seal()
	req := &mem.Request{ID: 1, Addr: 0x1000, InsnID: addr.HashPC(3)}
	c.Access(req)
	for {
		r := c.PopOutgoing()
		if r == nil {
			break
		}
		c.OnResponse(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Tick(uint64(i))
		req.ID = uint64(i + 2)
		if out := c.Access(req); out != mem.OutcomeHit {
			b.Fatalf("unexpected outcome %v", out)
		}
	}
}

// BenchmarkSuitePaperWall runs the full RunSuite(PaperSchemes()) pass on
// one worker: ns/op is the serial suite wall time the performance
// baseline tracks (BENCH_PR3.json). The first result also seeds the
// shared suite cache used by the table benchmarks.
func BenchmarkSuitePaperWall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := RunSuite(context.Background(), PaperSchemes(), &SuiteOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		benchPaperOnce.Do(func() { benchPaper = res })
	}
}

// BenchmarkDlpsimCoresMM measures one dlpsim-style run of the largest
// paper workload (MM, the longest serial simulation of the 18-app grid)
// under DLP at -cores 1 and -cores 8 — the acceptance numbers for the
// phase-parallel engine. The cores=8 case sets Options.Cores
// explicitly, exactly as cmd/dlpsim does, so the measurement reflects
// the flag's behavior regardless of GOMAXPROCS; on hosts with fewer
// CPUs than shards the pool parks instead of spinning, so the
// comparison degrades gracefully (and meaninglessly — read the ratio
// only on a multi-core box).
func BenchmarkDlpsimCoresMM(b *testing.B) {
	w, err := WorkloadByAbbr("MM")
	if err != nil {
		b.Fatal(err)
	}
	cfg := BaselineConfig()
	k := w.SharedKernel(cfg.L1D.LineSize)
	for _, cores := range []int{1, 8} {
		b.Run(fmt.Sprintf("cores%d", cores), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunWithOptions(cfg, DLP, k, Options{Cores: cores}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPDPTSample measures the Fig. 9 PD-computation cycle.
func BenchmarkPDPTSample(b *testing.B) {
	b.ReportAllocs()
	p := core.NewPDPT(128, 4, 15)
	for i := 0; i < b.N; i++ {
		p.CreditVTA(uint8(i % 128))
		p.CreditTDA(uint8((i + 7) % 128))
		if i%200 == 0 {
			p.EndSample()
		}
	}
}

// BenchmarkWorkloadGen measures trace generation for the heaviest app.
func BenchmarkWorkloadGen(b *testing.B) {
	b.ReportAllocs()
	w, _ := WorkloadByAbbr("HG")
	for i := 0; i < b.N; i++ {
		if k := w.Generate(); len(k.Blocks) != 16 {
			b.Fatal("bad kernel")
		}
	}
}

// BenchmarkEngineScaling is the tracked scaling curve: the same MM
// workload at cores 1, 2, 4 and 8, in ascending order so cmd/benchjson
// can derive wall seconds and speedups for the ledger's scaling array
// (which cmd/benchgate then gates — monotonic speedup everywhere, >= 3x
// at the top point on hosts with enough CPUs). GOMAXPROCS is left
// alone: the curve must reflect what this host actually grants, so a
// single-CPU box records an honest flat curve and the gate judges it
// accordingly.
func BenchmarkEngineScaling(b *testing.B) {
	w, err := WorkloadByAbbr("MM")
	if err != nil {
		b.Fatal(err)
	}
	cfg := BaselineConfig()
	k := w.SharedKernel(cfg.L1D.LineSize)
	for _, cores := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunWithOptions(cfg, DLP, k, Options{Cores: cores}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
