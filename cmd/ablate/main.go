// Command ablate sweeps the DLP design parameters the paper fixes by
// fiat — the sampling period (200 accesses, §4.1.4), the PD field width
// (4 bits, §4.3), and the VTA associativity (= cache ways, footnote 2) —
// and reports DLP's IPC speedup over the baseline cache at each setting.
//
// The non-paper policies have their own opt-in sweeps (never part of
// "all", so the committed reference output is unchanged): ata-ways
// (aggregated-tag associativity under ATA), ccws-lifetime (CCWS-lite
// protection lifetime in accesses), and pred-dead-periods (reuse
// predictor dead threshold).
//
// Sweeps execute on a parallel worker pool with a shared result cache,
// so the per-app baseline runs — identical in every sweep — simulate
// only once per invocation. Ctrl-C cancels in-flight runs promptly.
//
// Usage:
//
//	ablate                      # all three sweeps on the default apps
//	ablate -sweep pd-bits       # one sweep
//	ablate -apps CFD,KM         # choose applications
//	ablate -j 8                 # worker-pool size (default GOMAXPROCS)
//	ablate -j 4 -cores 2        # 4 jobs x 2 phase shards per simulation
//
// Failure semantics: the first failing run cancels the sweep unless
// -keep-going is set, in which case failed points render as FAILED
// cells and the process exits 1 after printing every sweep it could.
// -retries and -timeout bound transient failures and per-job wall
// time; -selfcheck turns on the engine's sampled invariant sweeps.
// Exit codes: 0 success, 1 failure or partial sweep, 130 interrupted.
//
// Observability: -metrics FILE streams cycle-domain counter samples
// (JSONL, one series per simulated point); -trace FILE writes a Chrome
// trace_event timeline of all sweeps, viewable at ui.perfetto.dev.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	dlpsim "repro"
	"repro/internal/cli"
)

// profiler owns the optional pprof outputs. Stop is idempotent and runs
// on every exit path so the profile files are always complete.
type profiler struct {
	cpu     *os.File
	memPath string
	stopped bool
}

var prof profiler

func (p *profiler) Start(cpuPath, memPath string) error {
	p.memPath = memPath
	if cpuPath == "" {
		return nil
	}
	f, err := os.Create(cpuPath)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.cpu = f
	return nil
}

func (p *profiler) Stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	if p.cpu != nil {
		pprof.StopCPUProfile()
		p.cpu.Close()
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			return
		}
		runtime.GC() // materialize the steady-state live set
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
		f.Close()
	}
}

// obs owns the -metrics/-trace outputs; like prof it is flushed on
// every exit path (Close is idempotent, and a nil obs is inert).
var obs *cli.Observability

// fatal reports err and exits with the shared code convention — 130
// for an interrupted sweep, 1 for everything else.
func fatal(err error) {
	prof.Stop()
	obs.Close()
	log.Print(err)
	os.Exit(cli.ExitCode(err))
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ablate: ")
	sweep := flag.String("sweep", "all", "sample-period | pd-bits | vta-ways | warp-limit | all (paper sweeps) | ata-ways | ccws-lifetime | pred-dead-periods (opt-in)")
	appsFlag := flag.String("apps", strings.Join(dlpsim.DefaultAblationApps(), ","),
		"comma-separated application abbreviations")
	workers := flag.Int("j", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	keepGoing := flag.Bool("keep-going", false, "run every job even after failures; render FAILED cells and exit 1")
	retries := flag.Int("retries", 0, "extra attempts for transiently failed jobs")
	timeout := flag.Duration("timeout", 0, "per-job wall-clock budget (e.g. 5m); 0 = none")
	selfCheck := flag.Bool("selfcheck", false, "enable sampled engine invariant sweeps on every job")
	cores := flag.Int("cores", 1, "phase-parallel shards inside each simulation (0 = auto: all host CPUs; Workers x cores capped at GOMAXPROCS); output is identical at any value")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	metricsPath := flag.String("metrics", "", "stream cycle-domain counter samples (JSONL) to this file")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file (open in Perfetto)")
	metricsEvery := flag.Uint64("metrics-every", 0, "sampling period in cycles for -metrics; 0 = default (4096)")
	flag.Parse()

	resolvedCores, err := cli.ResolveCores(*cores)
	if err != nil {
		fatal(err)
	}
	*cores = resolvedCores

	if err := prof.Start(*cpuProfile, *memProfile); err != nil {
		fatal(err)
	}
	defer prof.Stop()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cache := dlpsim.NewRunCache()
	obs, err = cli.OpenObservability(*metricsPath, *tracePath, cache)
	if err != nil {
		fatal(err)
	}
	defer obs.Close()

	var apps []string
	for _, a := range strings.Split(*appsFlag, ",") {
		apps = append(apps, strings.ToUpper(strings.TrimSpace(a)))
	}

	// One runner — one worker pool, one result cache — serves every
	// sweep, so the shared baseline points are simulated exactly once.
	r := &dlpsim.Runner{
		Workers:   *workers,
		Cache:     cache,
		KeepGoing: *keepGoing,
		Retries:   *retries,
		Timeout:   *timeout,
		SelfCheck: *selfCheck,
		Cores:     *cores,
		Events: obs.Events(func(ev dlpsim.RunEvent) {
			if *quiet || ev.Kind != dlpsim.JobDone || ev.Cached {
				return
			}
			if ev.Err != nil {
				fmt.Fprintf(os.Stderr, "FAILED %s: %v\n", ev.Label, ev.Err)
				return
			}
			fmt.Fprintf(os.Stderr, "ran %s (%.1fs)\n", ev.Label, ev.Wall.Seconds())
		}),
		Metrics:      obs.Sink(),
		MetricsEvery: *metricsEvery,
	}

	sweeps := map[string]func(context.Context, []string, *dlpsim.Runner) (*dlpsim.Ablation, error){
		"sample-period": dlpsim.AblateSamplePeriod,
		"pd-bits":       dlpsim.AblatePDBits,
		"vta-ways":      dlpsim.AblateVTAWays,
		"warp-limit":    dlpsim.AblateWarpLimit,
		// Non-paper policy sweeps, reachable by name only: "all" stays
		// the paper set so the committed reference output never drifts.
		"ata-ways":          dlpsim.AblateATAWays,
		"ccws-lifetime":     dlpsim.AblateCCWSLifetime,
		"pred-dead-periods": dlpsim.AblatePredictorDeadPeriods,
	}
	paper := []string{"sample-period", "pd-bits", "vta-ways", "warp-limit"}
	order := append(append([]string{}, paper...), "ata-ways", "ccws-lifetime", "pred-dead-periods")
	inPaper := map[string]bool{}
	for _, name := range paper {
		inPaper[name] = true
	}
	ran, partial := false, false
	for _, name := range order {
		if *sweep == "all" {
			if !inPaper[name] {
				continue
			}
		} else if *sweep != name {
			continue
		}
		ab, err := sweeps[name](ctx, apps, r)
		if err != nil {
			// A keep-going sweep returns its partial table alongside a
			// *BatchError: render the FAILED cells, summarize the
			// failures, and move on to the next sweep.
			var be *dlpsim.BatchError
			if !(*keepGoing && errors.As(err, &be) && ab != nil) {
				fatal(err)
			}
			partial = true
			fmt.Fprintln(os.Stderr, be.Error())
		}
		fmt.Println(ab.Render())
		ran = true
	}
	if !ran {
		fatal(fmt.Errorf("unknown sweep %q", *sweep))
	}
	if partial {
		prof.Stop()
		obs.Close()
		os.Exit(1)
	}
	if err := obs.Close(); err != nil {
		log.Fatal(err)
	}
}
