// Command ablate sweeps the DLP design parameters the paper fixes by
// fiat — the sampling period (200 accesses, §4.1.4), the PD field width
// (4 bits, §4.3), and the VTA associativity (= cache ways, footnote 2) —
// and reports DLP's IPC speedup over the baseline cache at each setting.
//
// Usage:
//
//	ablate                      # all three sweeps on the default apps
//	ablate -sweep pd-bits       # one sweep
//	ablate -apps CFD,KM         # choose applications
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	dlpsim "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ablate: ")
	sweep := flag.String("sweep", "all", "sample-period | pd-bits | vta-ways | warp-limit | all")
	appsFlag := flag.String("apps", strings.Join(dlpsim.DefaultAblationApps(), ","),
		"comma-separated application abbreviations")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	var apps []string
	for _, a := range strings.Split(*appsFlag, ",") {
		apps = append(apps, strings.ToUpper(strings.TrimSpace(a)))
	}
	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "running", msg)
		}
	}

	sweeps := map[string]func([]string, func(string)) (*dlpsim.Ablation, error){
		"sample-period": dlpsim.AblateSamplePeriod,
		"pd-bits":       dlpsim.AblatePDBits,
		"vta-ways":      dlpsim.AblateVTAWays,
		"warp-limit":    dlpsim.AblateWarpLimit,
	}
	order := []string{"sample-period", "pd-bits", "vta-ways", "warp-limit"}
	ran := false
	for _, name := range order {
		if *sweep != "all" && *sweep != name {
			continue
		}
		ab, err := sweeps[name](apps, progress)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(ab.Render())
		ran = true
	}
	if !ran {
		log.Fatalf("unknown sweep %q", *sweep)
	}
}
