// Command ablate sweeps the DLP design parameters the paper fixes by
// fiat — the sampling period (200 accesses, §4.1.4), the PD field width
// (4 bits, §4.3), and the VTA associativity (= cache ways, footnote 2) —
// and reports DLP's IPC speedup over the baseline cache at each setting.
//
// Sweeps execute on a parallel worker pool with a shared result cache,
// so the per-app baseline runs — identical in every sweep — simulate
// only once per invocation. Ctrl-C cancels in-flight runs promptly.
//
// Usage:
//
//	ablate                      # all three sweeps on the default apps
//	ablate -sweep pd-bits       # one sweep
//	ablate -apps CFD,KM         # choose applications
//	ablate -j 8                 # worker-pool size (default GOMAXPROCS)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	dlpsim "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ablate: ")
	sweep := flag.String("sweep", "all", "sample-period | pd-bits | vta-ways | warp-limit | all")
	appsFlag := flag.String("apps", strings.Join(dlpsim.DefaultAblationApps(), ","),
		"comma-separated application abbreviations")
	workers := flag.Int("j", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var apps []string
	for _, a := range strings.Split(*appsFlag, ",") {
		apps = append(apps, strings.ToUpper(strings.TrimSpace(a)))
	}

	// One runner — one worker pool, one result cache — serves every
	// sweep, so the shared baseline points are simulated exactly once.
	r := &dlpsim.Runner{
		Workers: *workers,
		Cache:   dlpsim.NewRunCache(),
		Events: func(ev dlpsim.RunEvent) {
			if !*quiet && ev.Kind == dlpsim.JobDone && !ev.Cached && ev.Err == nil {
				fmt.Fprintf(os.Stderr, "ran %s (%.1fs)\n", ev.Label, ev.Wall.Seconds())
			}
		},
	}

	sweeps := map[string]func(context.Context, []string, *dlpsim.Runner) (*dlpsim.Ablation, error){
		"sample-period": dlpsim.AblateSamplePeriod,
		"pd-bits":       dlpsim.AblatePDBits,
		"vta-ways":      dlpsim.AblateVTAWays,
		"warp-limit":    dlpsim.AblateWarpLimit,
	}
	order := []string{"sample-period", "pd-bits", "vta-ways", "warp-limit"}
	ran := false
	for _, name := range order {
		if *sweep != "all" && *sweep != name {
			continue
		}
		ab, err := sweeps[name](ctx, apps, r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(ab.Render())
		ran = true
	}
	if !ran {
		log.Fatalf("unknown sweep %q", *sweep)
	}
}
