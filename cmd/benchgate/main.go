// Command benchgate compares a fresh performance measurement against
// the committed baseline and fails (exit 1) when the headline number —
// the serial suite wall time recorded as suite_wall_seconds — regresses
// beyond the allowed percentage. It is the CI benchmark-regression
// gate: the smoke step runs one BenchmarkSuitePaperWall pass, distills
// it with cmd/benchjson, and hands both documents here.
//
// Wall time only compares meaningfully within one machine class, so
// the preferred mode is the per-host baseline ledger: -baselines DIR
// names a directory of BENCH_<fingerprint>.json documents (recorded by
// `make bench` via benchjson -ledger), benchgate picks the entry whose
// fingerprint ({num_cpu, gomaxprocs, goarch}) matches the gating host,
// and the wall gate is then enforced unconditionally — same machine
// class by construction, nothing to warn-skip. Only when the ledger
// has no entry for this class does the gate fall back to the flat
// -baseline document and the old behavior: the wall gate runs when
// that document's fingerprint matches and is skipped with a warning
// otherwise. The allocs/op columns are deterministic per binary, so
// they gate on every host in every mode.
//
// Individual micro-benchmark ns/op are printed side by side for the
// log but never gated: at smoke iteration counts (and across
// heterogeneous CI machines) their noise would make a hard threshold
// flaky, whereas a full-suite wall pass integrates enough work to make
// >15% a real signal.
//
// The multi-core scaling curve (scaling, derived from the
// BenchmarkEngineScaling/cores=N sub-benchmarks) is gated wherever a
// document carries one: speedup must not collapse as cores are added,
// and on hosts with at least as many CPUs as the curve's top point the
// top speedup must reach -min-scaling. Both checks judge a curve only
// as far as its recording host could actually parallelize, so a
// single-CPU machine records an honest flat curve without failing.
//
// Usage:
//
//	benchgate -baselines . -baseline BENCH_PR9.json -fresh /tmp/bench_fresh.json -max-regress-pct 15
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"

	"repro/internal/benchfmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	basePath := flag.String("baseline", "BENCH_PR9.json", "committed baseline document (fallback when -baselines has no entry for this host)")
	ledgerDir := flag.String("baselines", "", "per-host baseline ledger directory (BENCH_<fingerprint>.json files)")
	freshPath := flag.String("fresh", "", "fresh measurement to gate (required)")
	maxPct := flag.Float64("max-regress-pct", 15, "maximum allowed suite-wall regression in percent")
	minScaling := flag.Float64("min-scaling", 3, "required top-point speedup of any recorded scaling curve (enforced only on hosts with enough CPUs)")
	flag.Parse()
	if *freshPath == "" {
		log.Fatal("-fresh is required")
	}

	fresh, err := benchfmt.ReadFile(*freshPath)
	if err != nil {
		log.Fatal(err)
	}
	// The fresh document's own fingerprint stands in for "this host":
	// benchjson stamps it at measurement time on the same machine that
	// is now running the gate.
	freshHost := fresh.Host
	if freshHost == nil {
		freshHost = benchfmt.CurrentHost()
	}

	// With a ledger, the entry matching this host class is the
	// baseline, and the wall gate is unconditional — same class by
	// construction, so there is nothing to warn-skip. The flat
	// -baseline document is only consulted when this class has no
	// committed entry yet.
	var base *benchfmt.Baseline
	hostGated := false
	if *ledgerDir != "" {
		b, path, err := benchfmt.FindBaseline(*ledgerDir, freshHost)
		switch {
		case err == nil:
			base, hostGated = b, true
			fmt.Printf("gating against ledger entry %s (%s)\n", path, freshHost)
		case errors.Is(err, fs.ErrNotExist):
			fmt.Printf("benchgate: no ledger entry for this host class (%s); "+
				"falling back to %s — run `make bench` and commit %s to hard-gate here\n",
				freshHost, *basePath, path)
		default:
			log.Fatal(err)
		}
	}
	if base == nil {
		base, err = benchfmt.ReadFile(*basePath)
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("suite wall: baseline %.1fs, fresh %.1fs (%+.1f%%)\n",
		base.SuiteWallSeconds, fresh.SuiteWallSeconds,
		benchfmt.RegressPct(base.SuiteWallSeconds, fresh.SuiteWallSeconds))
	baseByName := make(map[string]benchfmt.Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseByName[r.Name] = r
	}
	for _, f := range fresh.Benchmarks {
		b, ok := baseByName[f.Name]
		if !ok {
			fmt.Printf("%-40s fresh only: %.0f ns/op\n", f.Name, f.NsPerOp)
			continue
		}
		fmt.Printf("%-40s %.0f -> %.0f ns/op (%+.1f%%, informational)\n",
			f.Name, b.NsPerOp, f.NsPerOp, benchfmt.RegressPct(b.NsPerOp, f.NsPerOp))
	}

	if err := benchfmt.CheckAllocs(base, fresh); err != nil {
		log.Fatal(err)
	}

	// The scaling curve gates wherever one is recorded: the committed
	// baseline's curve testifies about its own recording host, so it is
	// checked even when the wall gate below has to warn-skip.
	for _, doc := range []struct {
		label string
		b     *benchfmt.Baseline
	}{{"baseline", base}, {"fresh", fresh}} {
		if len(doc.b.Scaling) == 0 {
			continue
		}
		fmt.Printf("%s scaling curve:\n", doc.label)
		for _, p := range doc.b.Scaling {
			fmt.Printf("  cores=%d %8.2fs  %5.2fx\n", p.Cores, p.WallSeconds, p.Speedup)
		}
		if err := benchfmt.CheckScaling(doc.b, *minScaling); err != nil {
			log.Fatal(err)
		}
	}

	if !hostGated && !benchfmt.HostMatches(base.Host, freshHost) {
		fmt.Printf("benchgate: WARNING: host fingerprint mismatch (baseline: %s; this host: %s); "+
			"skipping the wall-time gate, allocs/op still enforced\n", base.Host, freshHost)
		fmt.Println("benchgate: OK (allocs only)")
		return
	}
	if err := benchfmt.CheckWall(base, fresh, *maxPct); err != nil {
		log.Fatal(err)
	}
	fmt.Println("benchgate: OK")
}
