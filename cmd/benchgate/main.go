// Command benchgate compares a fresh performance measurement against
// the committed baseline and fails (exit 1) when the headline number —
// the serial suite wall time recorded as suite_wall_seconds — regresses
// beyond the allowed percentage. It is the CI benchmark-regression
// gate: the smoke step runs one BenchmarkSuitePaperWall pass, distills
// it with cmd/benchjson, and hands both documents here.
//
// Wall time only compares meaningfully within one machine class, so
// the gate checks the baseline's host fingerprint ({num_cpu,
// gomaxprocs, goarch}, stamped by cmd/benchjson) against the fresh
// document's before enforcing it: on a mismatch — including baselines
// recorded before the fingerprint existed — the wall gate is skipped
// with a warning instead of failing (or silently under-gating) on a
// differently-sized runner. The allocs/op columns are deterministic
// per binary, so they gate on every host regardless.
//
// Individual micro-benchmark ns/op are printed side by side for the
// log but never gated: at smoke iteration counts (and across
// heterogeneous CI machines) their noise would make a hard threshold
// flaky, whereas a full-suite wall pass integrates enough work to make
// >15% a real signal.
//
// Usage:
//
//	benchgate -baseline BENCH_PR4.json -fresh /tmp/bench_fresh.json -max-regress-pct 15
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/benchfmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	basePath := flag.String("baseline", "BENCH_PR4.json", "committed baseline document")
	freshPath := flag.String("fresh", "", "fresh measurement to gate (required)")
	maxPct := flag.Float64("max-regress-pct", 15, "maximum allowed suite-wall regression in percent")
	flag.Parse()
	if *freshPath == "" {
		log.Fatal("-fresh is required")
	}

	base, err := benchfmt.ReadFile(*basePath)
	if err != nil {
		log.Fatal(err)
	}
	fresh, err := benchfmt.ReadFile(*freshPath)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("suite wall: baseline %.1fs, fresh %.1fs (%+.1f%%)\n",
		base.SuiteWallSeconds, fresh.SuiteWallSeconds,
		benchfmt.RegressPct(base.SuiteWallSeconds, fresh.SuiteWallSeconds))
	baseByName := make(map[string]benchfmt.Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseByName[r.Name] = r
	}
	for _, f := range fresh.Benchmarks {
		b, ok := baseByName[f.Name]
		if !ok {
			fmt.Printf("%-40s fresh only: %.0f ns/op\n", f.Name, f.NsPerOp)
			continue
		}
		fmt.Printf("%-40s %.0f -> %.0f ns/op (%+.1f%%, informational)\n",
			f.Name, b.NsPerOp, f.NsPerOp, benchfmt.RegressPct(b.NsPerOp, f.NsPerOp))
	}

	if err := benchfmt.CheckAllocs(base, fresh); err != nil {
		log.Fatal(err)
	}

	// The fresh document's own fingerprint stands in for "this host":
	// benchjson stamps it at measurement time on the same machine that
	// is now running the gate.
	freshHost := fresh.Host
	if freshHost == nil {
		freshHost = benchfmt.CurrentHost()
	}
	if !benchfmt.HostMatches(base.Host, freshHost) {
		fmt.Printf("benchgate: WARNING: host fingerprint mismatch (baseline: %s; this host: %s); "+
			"skipping the wall-time gate, allocs/op still enforced\n", base.Host, freshHost)
		fmt.Println("benchgate: OK (allocs only)")
		return
	}
	if err := benchfmt.CheckWall(base, fresh, *maxPct); err != nil {
		log.Fatal(err)
	}
	fmt.Println("benchgate: OK")
}
