// Command benchjson converts `go test -bench` text output into the
// machine-readable performance baseline the repo tracks
// (BENCH_PR8.json). It reads bench output on stdin and writes a JSON
// document containing one record per benchmark — name, iterations,
// ns/op, and the B/op and allocs/op columns when present — plus the
// wall-clock seconds of one serial RunSuite(PaperSchemes()) pass, taken
// from the BenchmarkSuitePaperWall result, and a fingerprint of the
// measuring host ({num_cpu, gomaxprocs, goarch}) so wall-clock numbers
// are only ever gated within one machine class. The document format
// lives in internal/benchfmt, shared with cmd/benchgate.
//
// With -ledger DIR the same document is additionally recorded under
// DIR/BENCH_<fingerprint>.json — the per-host baseline ledger. Each
// machine class keeps exactly one committed entry there, and benchgate
// -baselines hard-gates wall time against the entry whose fingerprint
// matches the gating host.
//
// Usage:
//
//	go test -run '^$' -bench . . ./internal/sm/ | benchjson -o BENCH_PR8.json -ledger .
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/benchfmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "BENCH_PR8.json", "output file; - writes to stdout only")
	ledger := flag.String("ledger", "", "also record the document in this per-host baseline directory as BENCH_<fingerprint>.json")
	flag.Parse()

	doc, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	// Stamp the measuring machine so benchgate can tell whether the
	// wall-clock numbers are comparable to a later run's.
	doc.Host = benchfmt.CurrentHost()
	b, err := doc.Encode()
	if err != nil {
		log.Fatal(err)
	}
	if *out != "-" {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if *ledger != "" {
		path := benchfmt.BaselineFile(*ledger, doc.Host)
		if err := os.WriteFile(path, b, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: ledger entry %s\n", path)
	}
	fmt.Printf("%s", b)
}
