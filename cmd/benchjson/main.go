// Command benchjson converts `go test -bench` text output into the
// machine-readable performance baseline the repo tracks (BENCH_PR3.json).
// It reads bench output on stdin and writes a JSON document containing
// one record per benchmark — name, iterations, ns/op, and the B/op and
// allocs/op columns when present — plus the wall-clock seconds of one
// serial RunSuite(PaperSchemes()) pass, taken from the
// BenchmarkSuitePaperWall result.
//
// Usage:
//
//	go test -run '^$' -bench . . ./internal/sm/ | benchjson -o BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iterations"`
	NsPerOp  float64 `json:"ns_op"`
	BytesOp  int64   `json:"bytes_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// Baseline is the document BENCH_PR3.json holds.
type Baseline struct {
	// SuiteWallSeconds is one serial (one-worker) pass over the paper's
	// full (application, scheme) grid — the headline perf number.
	SuiteWallSeconds float64  `json:"suite_wall_seconds"`
	Benchmarks       []Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkL1DAccess/DLP-8   8322818   144.1 ns/op   0 B/op   0 allocs/op
//
// The -N GOMAXPROCS suffix is optional (absent on single-CPU runs).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "BENCH_PR3.json", "output file; - writes to stdout only")
	flag.Parse()

	doc := Baseline{Benchmarks: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		r := Result{Name: m[1]}
		r.Iters, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		doc.Benchmarks = append(doc.Benchmarks, r)
		if strings.HasPrefix(r.Name, "BenchmarkSuitePaperWall") {
			doc.SuiteWallSeconds = r.NsPerOp / 1e9
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}

	b, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	b = append(b, '\n')
	if *out != "-" {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%s", b)
}
