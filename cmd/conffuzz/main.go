// Command conffuzz fuzzes the simulator differentially from one seed.
//
// Each iteration generates a random simulation point — small cache
// geometry, policy knobs, and a synthetic access pattern — and runs it
// three ways: serial reference, phase-parallel (-cores), and with
// cycle fast-forwarding disabled, all under the engine's sampled
// invariant sweeps and a per-variant wall-clock deadline. Divergent
// counters, invariant violations, panics, and hangs are findings; a
// slice of iterations also injects one degenerate config field and
// verifies validation rejects it with a typed error instead of
// panicking.
//
// Findings are shrunk (workload dimensions bisected to their floors,
// config knobs walked back to baseline) and written as conformance
// cases under -out, where `conform -run 'fuzz-*'` replays them.
//
// Usage:
//
//	conffuzz -seed 1 -n 200                      quick smoke
//	conffuzz -seed 7 -n 10000 -timeout 30s       campaign
//	conffuzz -policies dlp,ccws -max-findings 1  focused hunt
//
// Exit codes: 0 no findings, 1 findings (or tool failure), 130
// interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/confuzz"
	"repro/internal/policy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("conffuzz: ")
	seed := flag.Uint64("seed", 1, "campaign seed; same seed, same campaign")
	n := flag.Int("n", 200, "iterations")
	cores := flag.Int("cores", 2, "phase-parallel core count run against the serial reference")
	timeout := flag.Duration("timeout", 30*time.Second, "per-variant wall-clock deadline (the hang detector)")
	maxCycles := flag.Uint64("max-cycles", 20_000_000, "per-variant simulated-cycle bound")
	degeneratePct := flag.Int("degenerate-pct", 10, "percent of iterations that inject a degenerate config field")
	shrinkBudget := flag.Int("shrink-budget", 64, "differential evaluations spent shrinking each finding; -1 disables")
	maxFindings := flag.Int("max-findings", 0, "stop after this many findings; 0 = run all iterations")
	policies := flag.String("policies", "", "comma-separated policies to fuzz (default: all registered)")
	out := flag.String("out", "testdata/conform", "directory for shrunk reproducer cases")
	quiet := flag.Bool("q", false, "suppress per-finding progress lines")
	flag.Parse()

	opts := confuzz.Options{
		Seed:          *seed,
		Iterations:    *n,
		Cores:         *cores,
		Timeout:       *timeout,
		MaxCycles:     *maxCycles,
		DegeneratePct: *degeneratePct,
		ShrinkBudget:  *shrinkBudget,
		MaxFindings:   *maxFindings,
	}
	if *shrinkBudget < 0 {
		opts.ShrinkBudget = -1 // normalized to "disabled" by withDefaults
	}
	if *policies != "" {
		for _, s := range strings.Split(*policies, ",") {
			p, err := policy.Parse(s)
			if err != nil {
				log.Fatal(err)
			}
			opts.Policies = append(opts.Policies, p)
		}
	}
	if !*quiet {
		opts.Log = func(line string) { log.Print(line) }
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	camp, err := confuzz.Run(ctx, opts)
	elapsed := time.Since(start).Round(time.Millisecond)

	for _, fd := range camp.Findings {
		dir, werr := confuzz.WriteReproducer(*out, fd)
		if werr != nil {
			log.Printf("finding (iter %d): could not write reproducer: %v", fd.Iteration, werr)
			continue
		}
		fmt.Printf("FINDING iter=%d class=%s variant=%s seed=%#x\n  %s\n  reproducer: %s\n",
			fd.Iteration, fd.Class, fd.Variant, fd.Seed, firstLine(fd.Detail), dir)
	}
	fmt.Printf("%d iterations (%d degenerate rejected, %d too slow for budget), %d evaluations, %d findings in %s\n",
		camp.Iterations, camp.Rejected, camp.Slow, camp.Evals, len(camp.Findings), elapsed)

	if err != nil {
		log.Print(err)
		os.Exit(cli.ExitCode(err))
	}
	if len(camp.Findings) > 0 {
		os.Exit(cli.ExitFailure)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
