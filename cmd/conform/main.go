// Command conform replays the committed conformance corpus and fails
// on any divergence from the recorded results.
//
// Each case under -dir is a directory holding config.json (what to
// simulate: policy, geometry overlay, workload, core-count and
// fast-forward variants) and expected_stats.json (the normalized
// counters the reference run must reproduce, byte for byte). The tool
// re-simulates every variant of every case; a case passes only when
// all variants agree with each other AND with the committed
// expectation.
//
// Usage:
//
//	conform                         run the whole corpus
//	conform -run 'dlp-*'            run matching cases
//	conform -list                   list cases without simulating
//	conform -update -run new-case   (re)record expected_stats.json
//	conform -j 8                    case-level parallelism
//
// Outcomes per case: ok, DRIFT (engine result changed; prints a
// unified diff against the expectation), VARIANT-MISMATCH (core-count
// or fast-forward variant diverged from the serial reference — a
// determinism bug; prints the cross-variant diff), SIM-FAILED (panic,
// invariant violation or deadline inside a variant),
// CORRUPT-EXPECTED (the committed expectation file is damaged — fix
// the corpus, the engine is not implicated), BAD-CASE (config.json
// does not resolve to a runnable point). Exit codes: 0 all passed,
// 1 any failure, 130 interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cli"
	"repro/internal/conform"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("conform: ")
	dir := flag.String("dir", "testdata/conform", "corpus root directory")
	run := flag.String("run", "", "only run cases whose name matches this glob")
	list := flag.Bool("list", false, "list matching cases and exit")
	update := flag.Bool("update", false, "rewrite expected_stats.json from the current engine")
	jobs := flag.Int("j", 8, "cases simulated in parallel")
	timeout := flag.Duration("timeout", 2*time.Minute, "wall-clock budget per variant; 0 = none")
	quiet := flag.Bool("q", false, "only print failing cases and the summary")
	extraCores := flag.String("extra-cores", "", "comma-separated extra cores=N variants appended to every case")
	flag.Parse()
	if *jobs < 1 {
		log.Fatalf("-j %d: must be >= 1", *jobs)
	}

	cases, err := conform.Discover(*dir, *run)
	if err != nil {
		log.Fatal(err)
	}
	if len(cases) == 0 {
		log.Fatalf("no cases under %s match %q", *dir, *run)
	}

	if *list {
		for _, c := range cases {
			desc := c.Spec.Description
			fmt.Printf("%-40s %s\n", c.Name, desc)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rc := conform.RunConfig{Timeout: *timeout, Update: *update}
	if *extraCores != "" {
		for _, part := range strings.Split(*extraCores, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				log.Fatalf("-extra-cores %q: each entry must be a positive integer", *extraCores)
			}
			rc.ExtraCores = append(rc.ExtraCores, n)
		}
	}

	// Run cases in parallel, but print results in corpus order so the
	// report is stable at any -j.
	results := make([]*conform.Result, len(cases))
	sem := make(chan struct{}, *jobs)
	var wg sync.WaitGroup
	for i, c := range cases {
		wg.Add(1)
		go func(i int, c *conform.Case) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = c.Run(ctx, rc)
		}(i, c)
	}
	wg.Wait()

	failed := 0
	for _, res := range results {
		bad := res.Outcome.Failed()
		if bad {
			failed++
		}
		if *quiet && !bad {
			continue
		}
		line := fmt.Sprintf("%-40s %-18s", res.Case.Name, res.Outcome)
		if !bad {
			line += fmt.Sprintf("%9d cycles %8s", res.Cycles, res.Wall.Round(time.Millisecond))
		}
		fmt.Println(line)
		if res.Variant != "" {
			fmt.Printf("  variant: %s\n", res.Variant)
		}
		if res.Err != nil {
			fmt.Printf("  %v\n", res.Err)
		}
		if res.Diff != "" {
			fmt.Print(indent(res.Diff))
		}
	}
	fmt.Printf("%d cases, %d failed\n", len(cases), failed)

	if failed > 0 {
		if err := ctx.Err(); err != nil {
			os.Exit(cli.ExitCode(err))
		}
		os.Exit(cli.ExitFailure)
	}
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += "  " + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}
