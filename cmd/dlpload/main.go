// Command dlpload is the job server's client and load generator.
//
// Replay mode drives the conformance corpus through a running dlpserved
// end to end: each case's config.json is submitted verbatim and the
// stats the server returns must byte-match the committed
// expected_stats.json — the same drift gate as `conform`, but through
// the HTTP surface.
//
//	dlpload -addr 127.0.0.1:8321 -replay testdata/conform -run 'app-*'
//
// Load mode floods the server with synthetic jobs from a configurable
// number of distinct simulation points, spread across tenants, with an
// optional fraction cancelled mid-flight — a cache-hit and single-flight
// storm:
//
//	dlpload -addr 127.0.0.1:8321 -n 200 -c 32 -distinct 5 -tenants 4 -cancel 0.1
//
// Exit codes: 0 all requests behaved, 1 any mismatch or unexpected
// failure, 130 interrupted.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cli"
	"repro/internal/config"
	"repro/internal/conform"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dlpload: ")
	addr := flag.String("addr", "127.0.0.1:8321", "dlpserved address (host:port)")
	addrFile := flag.String("addr-file", "", "read the server address from this file (overrides -addr)")
	replay := flag.String("replay", "", "replay corpus cases under this directory instead of generating load")
	shutdown := flag.Bool("shutdown", false, "drain the server (POST /shutdown) and exit")
	run := flag.String("run", "", "with -replay: only cases whose name matches this glob")
	n := flag.Int("n", 100, "total jobs to submit")
	c := flag.Int("c", 16, "concurrent clients")
	distinct := flag.Int("distinct", 4, "distinct simulation points to draw jobs from")
	tenants := flag.Int("tenants", 2, "tenants to spread submissions across")
	cancelFrac := flag.Float64("cancel", 0, "fraction of jobs to cancel mid-flight (0..1)")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall client budget")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	if *addrFile != "" {
		b, err := os.ReadFile(*addrFile)
		if err != nil {
			log.Fatal(err)
		}
		*addr = string(bytes.TrimSpace(b))
	}
	cl := &client{base: "http://" + *addr, hc: &http.Client{}}

	var err error
	if *shutdown {
		err = cl.shutdown(ctx)
	} else if *replay != "" {
		err = replayCorpus(ctx, cl, *replay, *run)
	} else {
		err = generate(ctx, cl, *n, *c, *distinct, *tenants, *cancelFrac)
	}
	if err != nil {
		log.Print(err)
		os.Exit(cli.ExitCode(err))
	}
}

type client struct {
	base string
	hc   *http.Client
}

// jobView mirrors serve.JobView's fields the client reads.
type jobView struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Cached bool            `json:"cached"`
	Error  *errorInfo      `json:"error"`
	Stats  json.RawMessage `json:"stats"`
}

type errorInfo struct {
	Type    string `json:"type"`
	Message string `json:"message"`
}

// submit POSTs a spec body and decodes the job resource; wait holds the
// connection until the job settles. Returns the HTTP status alongside.
func (cl *client) submit(ctx context.Context, body []byte, tenant string, wait bool) (*jobView, int, error) {
	url := cl.base + "/jobs"
	if wait {
		url += "?wait=1"
	}
	req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := cl.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, err
	}
	var jv jobView
	if err := json.Unmarshal(b, &jv); err != nil {
		return nil, resp.StatusCode, fmt.Errorf("decoding response (status %d): %w", resp.StatusCode, err)
	}
	if jv.Error == nil {
		// Submit-level errors arrive as {"error": {...}} with no job id.
		var env struct {
			Error *errorInfo `json:"error"`
		}
		if json.Unmarshal(b, &env) == nil {
			jv.Error = env.Error
		}
	}
	return &jv, resp.StatusCode, nil
}

func (cl *client) cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, "DELETE", cl.base+"/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := cl.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

func (cl *client) statsBytes(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", cl.base+"/jobs/"+id+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := cl.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /jobs/%s/stats: status %d: %s", id, resp.StatusCode, b)
	}
	return b, nil
}

// shutdown asks the server to drain; the response arrives once every
// queued and running job has settled.
func (cl *client) shutdown(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, "POST", cl.base+"/shutdown", nil)
	if err != nil {
		return err
	}
	resp, err := cl.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /shutdown: status %d: %s", resp.StatusCode, b)
	}
	log.Print("server drained")
	return nil
}

// replayCorpus submits each case's reference variant and byte-compares
// the server's normalized stats against the committed expectation.
func replayCorpus(ctx context.Context, cl *client, dir, glob string) error {
	cases, err := conform.Discover(dir, glob)
	if err != nil {
		return err
	}
	if len(cases) == 0 {
		return fmt.Errorf("no cases under %s match %q", dir, glob)
	}
	failures := 0
	for _, tc := range cases {
		specBytes, err := os.ReadFile(filepath.Join(tc.Dir, conform.ConfigFile))
		if err != nil {
			return err
		}
		want, err := os.ReadFile(filepath.Join(tc.Dir, conform.ExpectedFile))
		if err != nil {
			return err
		}
		jv, status, err := cl.submit(ctx, specBytes, "replay", true)
		if err != nil {
			return fmt.Errorf("%s: %w", tc.Name, err)
		}
		if status != http.StatusOK || jv.Status != "done" {
			failures++
			log.Printf("%-40s FAILED  status=%d job=%s err=%+v", tc.Name, status, jv.Status, jv.Error)
			continue
		}
		got, err := cl.statsBytes(ctx, jv.ID)
		if err != nil {
			return fmt.Errorf("%s: %w", tc.Name, err)
		}
		if !bytes.Equal(got, want) {
			failures++
			log.Printf("%-40s DRIFT   server stats differ from %s", tc.Name, conform.ExpectedFile)
			continue
		}
		cached := ""
		if jv.Cached {
			cached = " (cached)"
		}
		log.Printf("%-40s ok%s", tc.Name, cached)
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d cases failed over HTTP", failures, len(cases))
	}
	log.Printf("replayed %d cases, all byte-identical", len(cases))
	return nil
}

// loadSpec builds the i-th distinct synthetic simulation point. Points
// differ only by seed, so submissions for the same i share a content
// address — the dedup storm the server must coalesce.
func loadSpec(i int) []byte {
	sp := conform.Spec{
		Schema: conform.SpecSchema,
		Policy: string(config.PolicyDLP),
		Workload: conform.WorkloadRef{Synth: &workloads.SynthSpec{
			Seed:            9000 + uint64(i),
			Blocks:          2,
			WarpsPerBlock:   4,
			MemInsnsPerWarp: 24,
			FootprintLines:  48,
			HotLines:        4,
			StorePct:        10,
		}},
		MaxCycles: 2_000_000,
	}
	b, err := json.Marshal(sp)
	if err != nil {
		panic(err)
	}
	return b
}

// generate floods the server: n jobs over c clients, drawn from
// `distinct` points across `tenants` tenants, cancelling cancelFrac of
// them shortly after submission.
func generate(ctx context.Context, cl *client, n, c, distinct, tenants int, cancelFrac float64) error {
	if distinct < 1 {
		distinct = 1
	}
	if tenants < 1 {
		tenants = 1
	}
	specs := make([][]byte, distinct)
	for i := range specs {
		specs[i] = loadSpec(i)
	}

	var done, cached, cancelled, rejected, failed atomic.Int64
	var firstErr atomic.Value
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				tenant := fmt.Sprintf("t%d", i%tenants)
				toCancel := cancelFrac > 0 && float64(i%n) < cancelFrac*float64(n)
				if toCancel {
					jv, status, err := cl.submit(ctx, specs[i%distinct], tenant, false)
					if err != nil || status != http.StatusAccepted {
						if ctx.Err() == nil {
							failed.Add(1)
							firstErr.CompareAndSwap(nil, fmt.Errorf("async submit: status=%d err=%v", status, err))
						}
						continue
					}
					if err := cl.cancel(ctx, jv.ID); err == nil {
						cancelled.Add(1)
					}
					continue
				}
				jv, status, err := cl.submit(ctx, specs[i%distinct], tenant, true)
				switch {
				case err != nil:
					if ctx.Err() == nil {
						failed.Add(1)
						firstErr.CompareAndSwap(nil, err)
					}
				case status == http.StatusOK:
					done.Add(1)
					if jv.Cached {
						cached.Add(1)
					}
				case status == http.StatusTooManyRequests:
					rejected.Add(1) // backpressure is correct behaviour, not failure
				default:
					failed.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("job %s: status=%d err=%+v", jv.ID, status, jv.Error))
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			close(jobs)
			wg.Wait()
			return ctx.Err()
		}
	}
	close(jobs)
	wg.Wait()

	log.Printf("%d jobs in %v over %d clients: %d done (%d cached), %d cancelled, %d backpressured, %d failed",
		n, time.Since(start).Round(time.Millisecond), c,
		done.Load(), cached.Load(), cancelled.Load(), rejected.Load(), failed.Load())
	if f := failed.Load(); f > 0 {
		err, _ := firstErr.Load().(error)
		return fmt.Errorf("%d jobs failed unexpectedly (first: %v)", f, err)
	}
	return nil
}
