// Command dlpserved runs the simulation job server: a persistent HTTP
// service that accepts jobs in the conformance corpus's Spec
// vocabulary, executes them on a shared runner with a shared
// content-addressed result cache, and streams progress back as SSE or
// JSONL.
//
// Usage:
//
//	dlpserved                      serve on 127.0.0.1:8321
//	dlpserved -addr :0 -addr-file addr.txt
//	                               ephemeral port, written to addr.txt
//	dlpserved -j 8 -cores 2        8 simulations in flight, each on
//	                               up to 2 phase shards
//	dlpserved -cache-dir .dlpcache persist results across restarts
//
// API (see internal/serve):
//
//	POST   /jobs[?wait=1]     submit a Spec (config.json bytes work
//	                          verbatim); X-Tenant names the tenant
//	GET    /jobs/{id}         job status
//	GET    /jobs/{id}/stats   normalized stats (corpus byte format)
//	GET    /jobs/{id}/events  SSE progress (?format=jsonl)
//	DELETE /jobs/{id}         cancel
//	GET    /stats             server + cache counters
//	GET    /healthz           liveness
//	POST   /shutdown          graceful drain
//
// SIGINT/SIGTERM drain gracefully (bounded by -drain) and exit 130, the
// same interrupt contract as the batch CLIs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/runner"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dlpserved: ")
	addr := flag.String("addr", "127.0.0.1:8321", "listen address (host:port; port 0 = ephemeral)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	jobs := flag.Int("j", 0, "simulations in flight across all tenants; 0 = GOMAXPROCS")
	cores := flag.Int("cores", 1, "per-simulation phase-parallelism cap (results identical at any value)")
	queueDepth := flag.Int("queue", 64, "pending jobs allowed per tenant before 429")
	cacheDir := flag.String("cache-dir", "", "persist the result cache to this directory (\"\" = memory only)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget per job; 0 = none")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget before cancelling stragglers")
	selfcheck := flag.Bool("selfcheck", false, "run sampled invariant sweeps on every job")
	retries := flag.Int("retries", 0, "transient-failure retries per job")
	flag.Parse()

	if err := run(*addr, *addrFile, serve.Config{
		Workers:      *jobs,
		Cores:        *cores,
		QueueDepth:   *queueDepth,
		Timeout:      *timeout,
		DrainTimeout: *drain,
		SelfCheck:    *selfcheck,
		Retries:      *retries,
	}, *cacheDir); err != nil {
		log.Print(err)
		os.Exit(cli.ExitCode(err))
	}
}

func run(addr, addrFile string, cfg serve.Config, cacheDir string) error {
	if cacheDir != "" {
		cache, err := runner.OpenDiskCache(cacheDir)
		if err != nil {
			return fmt.Errorf("opening cache: %w", err)
		}
		cfg.Cache = cache
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listening: %w", err)
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	log.Printf("serving on http://%s (workers=%d cores=%d queue=%d)",
		bound, workers, cfg.Cores, cfg.QueueDepth)

	srv := serve.NewServer(cfg)
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	var interrupted bool
	select {
	case <-sig:
		interrupted = true
		log.Printf("interrupt: draining (budget %s)", cfg.DrainTimeout)
		srv.Shutdown(nil)
	case <-srv.Done():
		// POST /shutdown drained the job server; fall through to close
		// the HTTP side.
	case err := <-serveErr:
		srv.Close()
		return fmt.Errorf("http: %w", err)
	}

	closeCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(closeCtx)
	log.Print("drained")
	if interrupted {
		// The batch CLIs exit 130 on Ctrl-C; a drained server interrupt
		// is the same contract.
		return &runner.CancelError{Err: context.Canceled}
	}
	return nil
}
