// Command dlpsim runs one benchmark application on the simulated GPU
// under one L1D management policy and prints the resulting counters.
//
// Usage:
//
//	dlpsim -app CFD -policy dlp
//	dlpsim -app BFS -policy baseline -size 32
//	dlpsim -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"text/tabwriter"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dlpsim: ")
	app := flag.String("app", "CFD", "application abbreviation (see -list)")
	policy := flag.String("policy", "dlp", "baseline | stall-bypass | global-protection | dlp")
	sizeKB := flag.Int("size", 16, "L1D capacity in KB (16, 32 or 64)")
	list := flag.Bool("list", false, "list available applications")
	asJSON := flag.Bool("json", false, "emit the result as JSON")
	dump := flag.String("dump", "", "write the generated kernel trace to this file and exit")
	traceFile := flag.String("trace", "", "run a kernel from this trace file instead of -app")
	flag.Parse()

	if *list {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "abbr\tclass\tsuite\tname\tinput")
		for _, s := range workloads.All() {
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\n", s.Abbr, s.Class, s.Suite, s.Name, s.Input)
		}
		w.Flush()
		return
	}

	cfg, err := config.ByL1DSize(*sizeKB)
	if err != nil {
		log.Fatal(err)
	}
	pol, err := parsePolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}

	var kernel *trace.Kernel
	name, class := "", ""
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		kernel, err = trace.ReadKernel(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		name, class = kernel.Name, "custom"
	} else {
		spec, err := workloads.ByAbbr(strings.ToUpper(*app))
		if err != nil {
			log.Fatal(err)
		}
		kernel = spec.Generate()
		name, class = spec.Name, spec.Class.String()
	}

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := kernel.WriteTo(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s trace to %s\n", kernel.Name, *dump)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	st, err := sim.RunOnce(ctx, cfg, pol, kernel, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		out := struct {
			App      string       `json:"app"`
			Class    string       `json:"class"`
			Config   string       `json:"config"`
			Policy   string       `json:"policy"`
			IPC      float64      `json:"ipc"`
			HitRate  float64      `json:"l1d_hit_rate"`
			Counters *stats.Stats `json:"counters"`
		}{kernel.Name, class, cfg.Name, pol.String(), st.IPC(), st.L1DHitRate(), st}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("%s (%s, %s) on %s under %s\n", kernel.Name, name, class, cfg.Name, pol)
	fmt.Println(st)
}

func parsePolicy(s string) (config.Policy, error) {
	switch strings.ToLower(s) {
	case "baseline", "base":
		return config.PolicyBaseline, nil
	case "stall-bypass", "sb":
		return config.PolicyStallBypass, nil
	case "global-protection", "gp":
		return config.PolicyGlobalProtection, nil
	case "dlp":
		return config.PolicyDLP, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}
