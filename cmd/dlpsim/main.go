// Command dlpsim runs one benchmark application on the simulated GPU
// under one L1D management policy and prints the resulting counters.
//
// Usage:
//
//	dlpsim -app CFD -policy dlp
//	dlpsim -app BFS -policy baseline -size 32
//	dlpsim -app HG -cores 8
//	dlpsim -app SC -stream -scale 100
//	dlpsim -app SC,BP,BFS -stream
//	dlpsim -stream-file sc.dlpstrm -policy dlp
//	dlpsim -list
//
// -stream feeds the workload to the SMs lazily through the chunked
// stream frontend instead of materializing the whole trace up front;
// counters are bit-identical to the eager path while peak memory stays
// bounded by the chunk pool. -scale N multiplies the grid and footprint
// (use with -stream for scales that would not fit materialized), a
// comma-separated -app list runs the kernels back to back as one
// multi-kernel stream, and -stream-file replays a chunked trace
// recorded with dlptrace.
//
// -cores N ticks the SMs and L2 partitions of the single simulation on
// N phase-parallel shards, cutting wall time on multi-core hosts; the
// printed counters are bit-identical at every value.
//
// Failure semantics: the run executes inside the shared experiment
// runner, so a panicking or wedged engine surfaces as a structured
// error instead of a crash. -timeout D bounds wall time, -retries N
// re-runs transient failures, and -selfcheck enables the engine's
// sampled invariant sweeps (results are identical either way).
// Exit codes: 0 success, 1 failure, 130 interrupted (Ctrl-C).
//
// Observability: -metrics FILE streams cycle-domain counter samples
// (JSONL) from the simulation; -trace FILE writes a Chrome trace_event
// timeline of the run, viewable at ui.perfetto.dev. Neither affects
// the simulated results. (The kernel-replay flag formerly called
// -trace is now -kernel.)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"text/tabwriter"

	"repro/internal/cli"
	"repro/internal/config"
	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dlpsim: ")
	app := flag.String("app", "CFD", "application abbreviation (see -list)")
	policyName := flag.String("policy", "dlp", policy.Usage())
	sizeKB := flag.Int("size", 16, "L1D capacity in KB (16, 32 or 64)")
	list := flag.Bool("list", false, "list available applications")
	asJSON := flag.Bool("json", false, "emit the result as JSON")
	dump := flag.String("dump", "", "write the generated kernel trace to this file and exit")
	kernelFile := flag.String("kernel", "", "run a kernel from this trace file instead of -app")
	retries := flag.Int("retries", 0, "extra attempts on transient failures")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the run (e.g. 5m); 0 = none")
	selfCheck := flag.Bool("selfcheck", false, "enable sampled engine invariant sweeps")
	cores := flag.Int("cores", 1, "phase-parallel shards inside the simulation (0 = auto: all host CPUs); output is identical at any value")
	metricsPath := flag.String("metrics", "", "stream cycle-domain counter samples (JSONL) to this file")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file (open in Perfetto)")
	metricsEvery := flag.Uint64("metrics-every", 0, "sampling period in cycles for -metrics; 0 = default (4096)")
	streamMode := flag.Bool("stream", false, "feed the kernel lazily through the chunked stream frontend instead of materializing it")
	streamFile := flag.String("stream-file", "", "replay a chunked trace file recorded with dlptrace instead of -app")
	scale := flag.Int("scale", 1, "workload scale factor (blocks and footprint); >1 implies larger grids")
	flag.Parse()
	resolvedCores, err := cli.ResolveCores(*cores)
	if err != nil {
		log.Fatal(err)
	}
	*cores = resolvedCores
	if *scale < 1 {
		log.Fatalf("-scale %d: must be >= 1", *scale)
	}
	if *streamFile != "" {
		*streamMode = true
		if *kernelFile != "" {
			log.Fatal("-stream-file and -kernel are mutually exclusive")
		}
	}

	if *list {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "abbr\tclass\tsuite\tname\tinput")
		for _, s := range workloads.All() {
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\n", s.Abbr, s.Class, s.Suite, s.Name, s.Input)
		}
		w.Flush()
		return
	}

	cfg, err := config.ByL1DSize(*sizeKB)
	if err != nil {
		log.Fatal(err)
	}
	pol, err := policy.Parse(*policyName)
	if err != nil {
		log.Fatal(err)
	}

	var (
		kernel *trace.Kernel
		stream trace.Stream
	)
	name, class, runName := "", "", ""
	switch {
	case *streamFile != "":
		fs, err := trace.Open(*streamFile)
		if err != nil {
			log.Fatal(err)
		}
		defer fs.Close()
		stream = fs
		name, class, runName = fs.Name(), "replay", fs.Name()
	case *kernelFile != "":
		f, err := os.Open(*kernelFile)
		if err != nil {
			log.Fatal(err)
		}
		kernel, err = trace.ReadKernel(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		name, class, runName = kernel.Name, "custom", kernel.Name
	case strings.Contains(*app, ","):
		// Multi-kernel grid: back-to-back registry apps as one stream.
		if !*streamMode {
			log.Fatal("a comma-separated -app list needs -stream")
		}
		abbrs := strings.Split(strings.ToUpper(*app), ",")
		subs := make([]trace.Stream, len(abbrs))
		for i, a := range abbrs {
			spec, err := workloads.ByAbbr(strings.TrimSpace(a))
			if err != nil {
				log.Fatal(err)
			}
			subs[i] = spec.Stream(*scale)
		}
		runName = strings.Join(abbrs, "+")
		stream = trace.NewMultiStream(runName, subs...)
		name, class = runName, "multi"
	default:
		spec, err := workloads.ByAbbr(strings.ToUpper(*app))
		if err != nil {
			log.Fatal(err)
		}
		if *streamMode {
			stream = spec.Stream(*scale)
		} else if *scale > 1 {
			kernel = spec.ScaledKernel(*scale)
		} else {
			kernel = spec.Generate()
		}
		name, class = spec.Name, spec.Class.String()
		runName = spec.Abbr
	}

	if *dump != "" {
		if kernel == nil {
			log.Fatal("-dump needs a materialized kernel; use dlptrace record for streams")
		}
		f, err := os.Create(*dump)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := kernel.WriteTo(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s trace to %s\n", kernel.Name, *dump)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	obs, err := cli.OpenObservability(*metricsPath, *tracePath, nil)
	if err != nil {
		log.Fatal(err)
	}
	fatal := func(err error) {
		obs.Close()
		log.Print(err)
		os.Exit(cli.ExitCode(err))
	}
	// Even a single run goes through the experiment runner: panics are
	// recovered into errors, the deadline and retry machinery apply, and
	// behavior matches what the same point does inside a suite.
	r := &runner.Runner{Workers: 1, Retries: *retries, Timeout: *timeout, SelfCheck: *selfCheck,
		Events: obs.Events(nil), Metrics: obs.Sink(), MetricsEvery: *metricsEvery}
	// -cores is set explicitly on the job (not via Runner.Cores), so a
	// single run uses exactly what was asked for, GOMAXPROCS cap or no.
	results, err := r.Run(ctx, []runner.Job{{
		Label:  fmt.Sprintf("%s under %s", runName, pol),
		Config: cfg,
		Policy: pol,
		Kernel: kernel,
		Stream: stream,
		Opts:   sim.Options{Cores: *cores},
	}})
	if err != nil {
		fatal(err)
	}
	if err := obs.Close(); err != nil {
		log.Fatal(err)
	}
	st := results[0].Stats
	if *asJSON {
		out := struct {
			App      string       `json:"app"`
			Class    string       `json:"class"`
			Config   string       `json:"config"`
			Policy   string       `json:"policy"`
			IPC      float64      `json:"ipc"`
			HitRate  float64      `json:"l1d_hit_rate"`
			Counters *stats.Stats `json:"counters"`
		}{runName, class, cfg.Name, pol.String(), st.IPC(), st.L1DHitRate(), st}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("%s (%s, %s) on %s under %s\n", runName, name, class, cfg.Name, pol)
	fmt.Println(st)
}
