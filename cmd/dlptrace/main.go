// Command dlptrace records and replays chunked kernel trace files.
//
// The on-disk format ("DLPSTRM1", conventionally *.dlpstrm) stores a
// kernel as fixed-size instruction chunks with a per-warp index and a
// whole-file SHA-256, so the simulator can stream arbitrarily large
// workloads through a bounded chunk pool and any later run can verify
// it is replaying exactly the recorded trace.
//
// Usage:
//
//	dlptrace record -app SC -o sc.dlpstrm
//	dlptrace record -app SC -scale 100 -chunk 8192 -o sc100.dlpstrm
//	dlptrace record -app SC,BP,BFS -o suite.dlpstrm
//	dlptrace record -kernel dump.trace -o dump.dlpstrm
//	dlptrace info sc.dlpstrm
//	dlptrace verify sc.dlpstrm
//
// record generates the workload through the same lazy stream frontend
// dlpsim -stream uses, so recording a -scale 100 trace never holds the
// materialized kernel in memory. info prints the header (name, shape,
// chunking, digest) without touching the payload; verify re-hashes the
// whole file and then walks every warp cursor to end-of-trace, counting
// instructions, so a zero exit means bit-exact replayability.
//
// Exit codes: 0 success, 1 failure (including any corruption found by
// verify).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dlptrace: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "verify":
		verify(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		log.Printf("unknown subcommand %q", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dlptrace record -app ABBR[,ABBR...] [-scale N] [-chunk N] -o FILE
  dlptrace record -kernel TRACEFILE [-chunk N] -o FILE
  dlptrace info FILE
  dlptrace verify FILE`)
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	app := fs.String("app", "", "application abbreviation, or a comma-separated list for a multi-kernel trace")
	kernelFile := fs.String("kernel", "", "re-container a materialized kernel dump (dlpsim -dump) instead of -app")
	scale := fs.Int("scale", 1, "workload scale factor (blocks and footprint)")
	chunk := fs.Int("chunk", 4096, "instructions per chunk")
	out := fs.String("o", "", "output trace file (required)")
	fs.Parse(args)
	if *out == "" {
		log.Fatal("record: -o FILE is required")
	}
	if *scale < 1 {
		log.Fatalf("record: -scale %d: must be >= 1", *scale)
	}

	var src trace.Stream
	switch {
	case *kernelFile != "":
		f, err := os.Open(*kernelFile)
		if err != nil {
			log.Fatal(err)
		}
		k, err := trace.ReadKernel(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		src = trace.NewKernelStream(k)
	case *app != "":
		abbrs := strings.Split(strings.ToUpper(*app), ",")
		subs := make([]trace.Stream, len(abbrs))
		for i, a := range abbrs {
			spec, err := workloads.ByAbbr(strings.TrimSpace(a))
			if err != nil {
				log.Fatal(err)
			}
			subs[i] = spec.Stream(*scale)
		}
		if len(subs) == 1 {
			src = subs[0]
		} else {
			src = trace.NewMultiStream(strings.Join(abbrs, "+"), subs...)
		}
	default:
		log.Fatal("record: one of -app or -kernel is required")
	}

	if err := trace.WriteFile(*out, src, *chunk); err != nil {
		log.Fatal(err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%s, %d blocks, %d-instr chunks, %d bytes)\n",
		*out, src.Name(), src.Blocks(), *chunk, st.Size())
}

func openArg(sub string, args []string) *trace.FileStream {
	if len(args) != 1 {
		log.Fatalf("%s: exactly one FILE argument expected", sub)
	}
	f, err := trace.Open(args[0])
	if err != nil {
		log.Fatal(err)
	}
	return f
}

func info(args []string) {
	f := openArg("info", args)
	defer f.Close()
	warps := 0
	for b := 0; b < f.Blocks(); b++ {
		warps += f.Warps(b)
	}
	fmt.Printf("file:    %s\n", args[0])
	fmt.Printf("kernel:  %s\n", f.Name())
	fmt.Printf("blocks:  %d\n", f.Blocks())
	fmt.Printf("warps:   %d\n", warps)
	fmt.Printf("chunk:   %d instrs\n", f.ChunkInstrs())
	fmt.Printf("sha256:  %s\n", f.Digest())
}

func verify(args []string) {
	// Open has already re-hashed the whole file against the footer
	// digest; what remains is proving every warp decodes to EOF.
	f := openArg("verify", args)
	defer f.Close()
	lineSize := config.Baseline().L1D.LineSize
	pool := trace.NewChunkPool(f.ChunkInstrs())
	var instrs, warps uint64
	for b := 0; b < f.Blocks(); b++ {
		for w := 0; w < f.Warps(b); w++ {
			var cur trace.Cursor
			cur.InitStream(f, pool, lineSize, b, w)
			for !cur.Exhausted() {
				cur.Advance()
				instrs++
			}
			cur.Release()
			warps++
		}
	}
	fmt.Printf("%s: ok — %s, %d blocks, %d warps, %d instructions, sha256 %s\n",
		args[0], f.Name(), f.Blocks(), warps, instrs, f.Digest())
}
