// Command gencorpus lays out the conformance corpus skeleton (one
// config.json per case); run cmd/conform -update afterwards to fill in
// the expected stats. It is a maintenance tool, not part of the build.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/config"
	"repro/internal/conform"
	"repro/internal/policy"
	"repro/internal/workloads"
)

func main() {
	root := "testdata/conform"
	if len(os.Args) > 1 {
		root = os.Args[1]
	}

	add := func(name, desc string, pol config.Policy, mut func(*config.Config),
		wl conform.WorkloadRef, cores []int, ffOff bool) {
		cfg := config.Baseline()
		cfg.Name = "conform"
		if mut != nil {
			mut(cfg)
		}
		sp := &conform.Spec{
			Schema:         conform.SpecSchema,
			Description:    desc,
			Policy:         string(pol),
			Config:         cfg,
			Workload:       wl,
			MaxCycles:      20_000_000,
			Cores:          cores,
			FastForwardOff: ffOff,
		}
		if err := conform.WriteCase(filepath.Join(root, name), sp, nil); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(name)
	}

	slug := func(p config.Policy) string { return strings.ToLower(string(p)) }

	// One balanced-mix case per registered policy at three core counts:
	// the broadest serial-vs-parallel equivalence sweep in the corpus.
	for i, pol := range policy.All() {
		add(slug(pol)+"-mix",
			"balanced synthetic mix under "+string(pol)+", serial vs 2- and 8-shard engines",
			pol, nil,
			conform.WorkloadRef{Synth: &workloads.SynthSpec{
				Seed: uint64(101 + i), Blocks: 4, WarpsPerBlock: 4,
				MemInsnsPerWarp: 48, ComputeRun: 2, FootprintLines: 96,
				HotLines: 8, StorePct: 20, StreamPct: 3, StridePct: 2,
				GatherPct: 1, HotPct: 2, ConflictPct: 2,
			}},
			[]int{1, 2, 8}, false)
	}

	// One conflict-thrash case per policy on a deliberately small cache:
	// heavy eviction/bypass pressure is where the schemes diverge most.
	for i, pol := range policy.All() {
		add(slug(pol)+"-thrash",
			"conflict-heavy thrash of a 4-set/2-way unhashed L1D under "+string(pol),
			pol, func(c *config.Config) {
				c.L1D.Sets = 4
				c.L1D.Ways = 2
				c.L1D.Hashed = false
			},
			conform.WorkloadRef{Synth: &workloads.SynthSpec{
				Seed: uint64(201 + i), Blocks: 2, WarpsPerBlock: 6,
				MemInsnsPerWarp: 40, FootprintLines: 128, HotLines: 4,
				StorePct: 10, ConflictPct: 6, StridePct: 2,
				ConflictStrideLines: 4,
			}},
			[]int{1, 2}, false)
	}

	// One fast-forward boundary case per paper scheme: long compute runs
	// open idle windows the run loop jumps over, and the ff-off variant
	// re-proves the jumps are unobservable.
	for i, pol := range policy.Paper() {
		add(slug(pol)+"-ffboundary",
			"sparse accesses with long compute runs; checks fast-forward equivalence under "+string(pol),
			pol, nil,
			conform.WorkloadRef{Synth: &workloads.SynthSpec{
				Seed: uint64(301 + i), Blocks: 2, WarpsPerBlock: 2,
				MemInsnsPerWarp: 24, ComputeRun: 24, FootprintLines: 32,
				HotLines: 4, StorePct: 15, StreamPct: 4, HotPct: 2,
			}},
			[]int{1}, true)
	}

	// Geometry corner cases.
	add("geom-direct-mapped",
		"direct-mapped 32-set L1D: replacement pressure without associativity",
		config.PolicyDLP, func(c *config.Config) {
			c.L1D.Ways = 1
			c.VTAWays = 1
		},
		conform.WorkloadRef{Synth: &workloads.SynthSpec{
			Seed: 401, Blocks: 3, WarpsPerBlock: 3, MemInsnsPerWarp: 36,
			FootprintLines: 80, HotLines: 6, StorePct: 10, StridePct: 3, HotPct: 2,
		}},
		[]int{1, 2}, false)

	add("geom-tiny-cache",
		"single-set 4-way L1D with 2 MSHRs: structural stalls dominate",
		config.PolicyATA, func(c *config.Config) {
			c.L1D.Sets = 1
			c.L1D.Ways = 4
			c.L1DMSHRs = 2
			c.L1DMSHRMerges = 2
			c.L1DMissQueue = 2
			c.ATAWays = 2
		},
		conform.WorkloadRef{Synth: &workloads.SynthSpec{
			Seed: 402, Blocks: 2, WarpsPerBlock: 4, MemInsnsPerWarp: 32,
			FootprintLines: 64, HotLines: 4, StorePct: 10, GatherPct: 1,
		}},
		[]int{1, 2}, false)

	add("geom-lowbw-icnt",
		"1-flit/cycle interconnect: every data packet streams across cycles (regression for the port-streaming fix)",
		config.PolicyBaseline, func(c *config.Config) {
			c.ICNTBandwidthFlits = 1
			c.ICNTLatency = 0
		},
		conform.WorkloadRef{Synth: &workloads.SynthSpec{
			Seed: 403, Blocks: 2, WarpsPerBlock: 2, MemInsnsPerWarp: 24,
			FootprintLines: 48, HotLines: 4, StorePct: 25, StreamPct: 3,
		}},
		[]int{1, 2}, true)

	add("geom-one-sm",
		"single SM at 8 resident warps: no cross-SM interleaving at all",
		config.PolicyCCWS, func(c *config.Config) {
			c.NumSMs = 1
			c.MaxWarpsPerSM = 8
		},
		conform.WorkloadRef{Synth: &workloads.SynthSpec{
			Seed: 404, Blocks: 2, WarpsPerBlock: 4, MemInsnsPerWarp: 40,
			FootprintLines: 72, HotLines: 6, StorePct: 10, ConflictPct: 3,
		}},
		[]int{1, 2}, false)

	add("geom-small-l2",
		"4-set L2 with shallow MSHRs behind an unhashed wide L1D",
		config.PolicyReusePredictor, func(c *config.Config) {
			c.L1D.Sets = 8
			c.L1D.Ways = 8
			c.L1D.Hashed = false
			c.L2.Sets = 4
			c.L2MSHRs = 4
			c.L2MissQueue = 4
		},
		conform.WorkloadRef{Synth: &workloads.SynthSpec{
			Seed: 405, Blocks: 3, WarpsPerBlock: 2, MemInsnsPerWarp: 32,
			FootprintLines: 112, HotLines: 8, StorePct: 20, StreamPct: 4,
		}},
		[]int{1, 2, 8}, false)

	// Registry applications: real loop-nest traces, not synthetic mixes.
	add("app-hs-dlp", "Hotspot (Rodinia) under DLP",
		config.PolicyDLP, nil, conform.WorkloadRef{App: "HS"}, []int{1, 2}, false)
	add("app-bp-gp", "Back Propagation (Rodinia) under Global-Protection",
		config.PolicyGlobalProtection, nil, conform.WorkloadRef{App: "BP"}, []int{1, 2}, false)
	add("app-nw-sb", "Needleman-Wunsch (Rodinia) under Stall-Bypass",
		config.PolicyStallBypass, nil, conform.WorkloadRef{App: "NW"}, []int{1, 2}, false)
}
