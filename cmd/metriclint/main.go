// Command metriclint validates the observability artifacts the other
// commands export: a -metrics JSONL time-series file and/or a -trace
// Chrome trace_event JSON file. It re-parses them with the same
// internal/metrics readers the tests use — schema headers, per-row
// arity, known trace phases — and prints a one-line summary per file,
// so CI can prove an exported file actually loads before anyone tries
// it in Perfetto. Exit status is 0 when every given file validates,
// 1 otherwise.
//
// Usage:
//
//	metriclint -metrics run.jsonl
//	metriclint -trace run.trace.json
//	metriclint -metrics run.jsonl -trace run.trace.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("metriclint: ")
	metricsPath := flag.String("metrics", "", "JSONL metrics file to validate")
	tracePath := flag.String("trace", "", "Chrome trace_event JSON file to validate")
	flag.Parse()
	if *metricsPath == "" && *tracePath == "" {
		log.Fatal("nothing to lint: give -metrics and/or -trace")
	}

	if *metricsPath != "" {
		f, err := os.Open(*metricsPath)
		if err != nil {
			log.Fatal(err)
		}
		set, err := metrics.ReadJSONL(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", *metricsPath, err)
		}
		rows := 0
		for _, s := range set.Series {
			rows += len(s.Rows)
		}
		fmt.Printf("%s: OK (%d series, %d rows)\n", *metricsPath, len(set.Series), rows)
	}
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		doc, err := metrics.ReadChromeTrace(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", *tracePath, err)
		}
		fmt.Printf("%s: OK (%d events)\n", *tracePath, len(doc.TraceEvents))
	}
}
