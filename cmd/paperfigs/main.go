// Command paperfigs regenerates every table and figure of the paper's
// evaluation from the simulator: Table 2, Figs. 3–7 (workload analysis),
// the §4.3 overhead model, and Figs. 10–13 (the policy evaluation).
//
// Simulations run on a parallel worker pool behind a content-addressed
// result cache: table output is byte-identical at any -j, and points
// shared between experiments (e.g. the 16KB and 32KB baselines of
// Figs. 5 and 10) simulate only once. With -cache DIR results persist
// on disk, so re-running regenerates everything without simulating.
// Interrupting (Ctrl-C) cancels in-flight simulations promptly.
//
// Usage:
//
//	paperfigs                 # everything
//	paperfigs -exp fig10      # one experiment
//	paperfigs -exp fig3,fig7  # a comma-separated subset
//	paperfigs -j 8            # worker-pool size (default GOMAXPROCS)
//	paperfigs -cache .figcache  # persist results across runs
//	paperfigs -quiet          # suppress per-run progress
//
// Experiment ids: table2, overhead, fig3, fig4, fig5, fig6, fig7,
// fig10, fig11a, fig11b, fig12a, fig12b, fig13.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	dlpsim "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperfigs: ")
	exp := flag.String("exp", "all", "comma-separated experiment ids (default: all)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	format := flag.String("format", "text", "text | csv")
	workers := flag.Int("j", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache", "", "persist simulation results under this directory")
	flag.Parse()
	useCSV := strings.EqualFold(*format, "csv")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	want := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	has := func(id string) bool { return want["all"] || want[id] }

	// One cache and one event sink are shared by every suite in this
	// invocation, so overlapping (config, policy, kernel) points — the
	// baseline and 32KB runs appear in both Fig. 5 and Fig. 10 — are
	// simulated once and recalled afterwards.
	cache := dlpsim.NewRunCache()
	if *cacheDir != "" {
		var err error
		cache, err = dlpsim.OpenRunCache(*cacheDir)
		check(err)
	}
	start := time.Now()
	var simulated, recalled int
	events := func(ev dlpsim.RunEvent) {
		if ev.Kind != dlpsim.JobDone {
			return
		}
		if ev.Cached {
			recalled++
			return
		}
		simulated++
		if !*quiet && ev.Err == nil {
			fmt.Fprintf(os.Stderr, "ran %s (%.1fs, %d/%d done)\n",
				ev.Label, ev.Wall.Seconds(), ev.Done, ev.Done+ev.Running+ev.Queued)
		}
	}
	suiteOpts := &dlpsim.SuiteOptions{Workers: *workers, Cache: cache, Events: events}

	if has("table2") {
		fmt.Println(dlpsim.Table2())
	}
	if has("overhead") {
		fmt.Println(dlpsim.OverheadReport(dlpsim.BaselineConfig()))
	}
	renderDist := func(d *dlpsim.Distribution) {
		if useCSV {
			render(d.RenderCSV)
			return
		}
		render(d.Render)
	}
	renderTable := func(t *dlpsim.Table, err error) {
		check(err)
		if useCSV {
			render(t.RenderCSV)
			return
		}
		render(t.Render)
	}

	if has("fig3") {
		renderDist(dlpsim.Fig3RDD())
	}
	if has("fig4") {
		renderTable(dlpsim.Fig4MissRates())
	}
	if has("fig6") {
		renderTable(dlpsim.Fig6Ratios())
	}
	if has("fig7") {
		renderDist(dlpsim.Fig7BFS())
	}

	if has("fig5") {
		suite, err := dlpsim.RunSuite(ctx, dlpsim.AssocSchemes(), suiteOpts)
		check(err)
		renderTable(suite.Fig5IPC())
	}

	needEval := has("fig10") || has("fig11a") || has("fig11b") ||
		has("fig12a") || has("fig12b") || has("fig13")
	if needEval {
		suite, err := dlpsim.RunSuite(ctx, dlpsim.PaperSchemes(), suiteOpts)
		check(err)
		builders := []struct {
			id    string
			build func() (*dlpsim.Table, error)
		}{
			{"fig10", suite.Fig10IPC},
			{"fig11a", suite.Fig11aTraffic},
			{"fig11b", suite.Fig11bEvictions},
			{"fig12a", suite.Fig12aHitRate},
			{"fig12b", suite.Fig12bHits},
			{"fig13", suite.Fig13ICNT},
		}
		for _, b := range builders {
			if !has(b.id) {
				continue
			}
			renderTable(b.build())
		}
		if has("fig10") {
			sp, err := suite.Speedups()
			check(err)
			fmt.Println("== headline speedups (CI geometric mean vs baseline) ==")
			for _, sc := range dlpsim.PaperSchemes() {
				fmt.Printf("%-18s CI x%.3f   CS x%.3f\n", sc.Name, sp[sc.Name]["CI"], sp[sc.Name]["CS"])
			}
		}
	}
	if !*quiet && simulated+recalled > 0 {
		fmt.Fprintf(os.Stderr, "%d simulations, %d cache hits in %.1fs\n",
			simulated, recalled, time.Since(start).Seconds())
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func render(f func(w io.Writer) error) {
	check(f(os.Stdout))
	fmt.Println()
}
