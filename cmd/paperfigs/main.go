// Command paperfigs regenerates every table and figure of the paper's
// evaluation from the simulator: Table 2, Figs. 3–7 (workload analysis),
// the §4.3 overhead model, and Figs. 10–13 (the policy evaluation).
//
// Simulations run on a parallel worker pool behind a content-addressed
// result cache: table output is byte-identical at any -j, and points
// shared between experiments (e.g. the 16KB and 32KB baselines of
// Figs. 5 and 10) simulate only once. With -cache DIR results persist
// on disk, so re-running regenerates everything without simulating.
// Interrupting (Ctrl-C) cancels in-flight simulations promptly.
//
// Usage:
//
//	paperfigs                 # everything
//	paperfigs -exp fig10      # one experiment
//	paperfigs -exp fig3,fig7  # a comma-separated subset
//	paperfigs -j 8            # worker-pool size (default GOMAXPROCS)
//	paperfigs -j 4 -cores 2   # 4 jobs x 2 phase shards per simulation
//	paperfigs -cache .figcache  # persist results across runs
//	paperfigs -quiet          # suppress per-run progress
//
// Failure semantics: by default the first failing simulation cancels
// the batch. With -keep-going the whole suite runs to completion,
// failed points render as FAILED cells, every failure is summarized on
// stderr, and the exit status is 1. -retries N re-runs transiently
// failed jobs, -timeout D bounds each job's wall time, and -selfcheck
// turns on the engine's sampled invariant sweeps (results are
// byte-identical either way; only a broken engine build notices).
//
// Exit codes: 0 success, 1 failure or partial -keep-going suite, 130
// interrupted (Ctrl-C).
//
// Observability: -metrics FILE streams cycle-domain counter samples
// (JSONL, one series per simulated point) and -trace FILE writes a
// Chrome trace_event timeline of the whole run — job queue/run/cache
// spans plus cache and batch-progress counter tracks — viewable at
// ui.perfetto.dev. -apps BP,HS restricts the simulation suites to an
// application subset (labels as in Table 2) for quick looks and CI
// smokes; the committed reference outputs always use the full set.
//
// -stream feeds the suites through the lazy chunked stream frontend:
// every table stays byte-identical while suite startup skips kernel
// materialization. -scale N multiplies each application's grid and
// footprint (tables then diverge from the committed references by
// design); at large scales pair it with -stream so memory stays
// bounded by the per-SM chunk pools.
//
// Experiment ids: table2, overhead, fig3, fig4, fig5, fig6, fig7,
// fig10, fig11a, fig11b, fig12a, fig12b, fig13. The extra id
// "policies" — a cross-policy comparison including the schemes beyond
// the paper's four (ATA, CCWS-lite, ReusePredictor) — is opt-in only:
// it is not part of "all", so the committed reference outputs are
// unchanged by the registry growing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	dlpsim "repro"
	"repro/internal/cli"
)

// profiler owns the optional pprof outputs. Stop is idempotent and runs
// on every exit path (including log.Fatal via check) so the profile
// files are always complete.
type profiler struct {
	cpu     *os.File
	memPath string
	stopped bool
}

var prof profiler

func (p *profiler) Start(cpuPath, memPath string) error {
	p.memPath = memPath
	if cpuPath == "" {
		return nil
	}
	f, err := os.Create(cpuPath)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.cpu = f
	return nil
}

func (p *profiler) Stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	if p.cpu != nil {
		pprof.StopCPUProfile()
		p.cpu.Close()
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			return
		}
		runtime.GC() // materialize the steady-state live set
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
		f.Close()
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperfigs: ")
	exp := flag.String("exp", "all", "comma-separated experiment ids (default: all)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	format := flag.String("format", "text", "text | csv")
	workers := flag.Int("j", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache", "", "persist simulation results under this directory")
	keepGoing := flag.Bool("keep-going", false, "run every job even after failures; render FAILED cells and exit 1")
	retries := flag.Int("retries", 0, "extra attempts for transiently failed jobs")
	timeout := flag.Duration("timeout", 0, "per-job wall-clock budget (e.g. 5m); 0 = none")
	selfCheck := flag.Bool("selfcheck", false, "enable sampled engine invariant sweeps on every job")
	coresFlag := flag.Int("cores", 1, "phase-parallel shards inside each simulation (0 = auto: all host CPUs; Workers x cores capped at GOMAXPROCS); output is identical at any value")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	metricsPath := flag.String("metrics", "", "stream cycle-domain counter samples (JSONL) to this file")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file (open in Perfetto)")
	metricsEvery := flag.Uint64("metrics-every", 0, "sampling period in cycles for -metrics; 0 = default (4096)")
	appsFlag := flag.String("apps", "", "comma-separated application subset for the simulation suites (default: all 18)")
	streamFlag := flag.Bool("stream", false, "feed workloads through the lazy chunked stream frontend (bit-identical tables, lower startup memory)")
	scaleFlag := flag.Int("scale", 1, "workload scale factor for the simulation suites; >1 diverges from the committed reference outputs")
	flag.Parse()
	if *scaleFlag < 1 {
		log.Fatalf("-scale %d: must be >= 1", *scaleFlag)
	}
	resolvedCores, err := cli.ResolveCores(*coresFlag)
	if err != nil {
		log.Fatal(err)
	}
	*coresFlag = resolvedCores
	useCSV := strings.EqualFold(*format, "csv")

	check(prof.Start(*cpuProfile, *memProfile))
	defer prof.Stop()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	want := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	has := func(id string) bool { return want["all"] || want[id] }

	// One cache and one event sink are shared by every suite in this
	// invocation, so overlapping (config, policy, kernel) points — the
	// baseline and 32KB runs appear in both Fig. 5 and Fig. 10 — are
	// simulated once and recalled afterwards.
	cache := dlpsim.NewRunCache()
	if *cacheDir != "" {
		var err error
		cache, err = dlpsim.OpenRunCache(*cacheDir)
		check(err)
	}
	obs, err = cli.OpenObservability(*metricsPath, *tracePath, cache)
	check(err)
	defer obs.Close()

	var apps []dlpsim.Workload
	if *appsFlag != "" {
		for _, abbr := range strings.Split(*appsFlag, ",") {
			spec, err := dlpsim.WorkloadByAbbr(strings.TrimSpace(abbr))
			check(err)
			apps = append(apps, spec)
		}
	}
	start := time.Now()
	var simulated, recalled int
	events := func(ev dlpsim.RunEvent) {
		if ev.Kind != dlpsim.JobDone {
			return
		}
		if ev.Cached {
			recalled++
			return
		}
		simulated++
		if *quiet {
			return
		}
		if ev.Err != nil {
			fmt.Fprintf(os.Stderr, "FAILED %s: %v\n", ev.Label, ev.Err)
			return
		}
		fmt.Fprintf(os.Stderr, "ran %s (%.1fs, %d/%d done)\n",
			ev.Label, ev.Wall.Seconds(), ev.Done, ev.Done+ev.Running+ev.Queued)
	}
	suiteOpts := &dlpsim.SuiteOptions{
		Workers:   *workers,
		Cache:     cache,
		Events:    obs.Events(events),
		Apps:      apps,
		KeepGoing: *keepGoing,
		Retries:   *retries,
		Timeout:   *timeout,
		SelfCheck: *selfCheck,
		Cores:     *coresFlag,

		Metrics:      obs.Sink(),
		MetricsEvery: *metricsEvery,

		Stream: *streamFlag,
		Scale:  *scaleFlag,
	}

	// In -keep-going mode a suite may come back partial: usable tables
	// with FAILED cells plus a *BatchError listing what went wrong. The
	// failures are summarized on stderr and remembered so the process
	// can exit non-zero after rendering everything it has.
	partial := false
	runSuite := func(schemes []dlpsim.Scheme) *dlpsim.SuiteResult {
		suite, err := dlpsim.RunSuite(ctx, schemes, suiteOpts)
		if err != nil {
			var be *dlpsim.BatchError
			if *keepGoing && errors.As(err, &be) && suite != nil {
				partial = true
				fmt.Fprintln(os.Stderr, be.Error())
				return suite
			}
			fatal(err)
		}
		return suite
	}

	if has("table2") {
		fmt.Println(dlpsim.Table2())
	}
	if has("overhead") {
		fmt.Println(dlpsim.OverheadReport(dlpsim.BaselineConfig()))
	}
	renderDist := func(d *dlpsim.Distribution) {
		if useCSV {
			render(d.RenderCSV)
			return
		}
		render(d.Render)
	}
	renderTable := func(t *dlpsim.Table, err error) {
		check(err)
		if useCSV {
			render(t.RenderCSV)
			return
		}
		render(t.Render)
	}

	if has("fig3") {
		renderDist(dlpsim.Fig3RDD())
	}
	if has("fig4") {
		renderTable(dlpsim.Fig4MissRates())
	}
	if has("fig6") {
		renderTable(dlpsim.Fig6Ratios())
	}
	if has("fig7") {
		renderDist(dlpsim.Fig7BFS())
	}

	if has("fig5") {
		suite := runSuite(dlpsim.AssocSchemes())
		renderTable(suite.Fig5IPC())
	}

	needEval := has("fig10") || has("fig11a") || has("fig11b") ||
		has("fig12a") || has("fig12b") || has("fig13")
	if needEval {
		suite := runSuite(dlpsim.PaperSchemes())
		builders := []struct {
			id    string
			build func() (*dlpsim.Table, error)
		}{
			{"fig10", suite.Fig10IPC},
			{"fig11a", suite.Fig11aTraffic},
			{"fig11b", suite.Fig11bEvictions},
			{"fig12a", suite.Fig12aHitRate},
			{"fig12b", suite.Fig12bHits},
			{"fig13", suite.Fig13ICNT},
		}
		for _, b := range builders {
			if !has(b.id) {
				continue
			}
			renderTable(b.build())
		}
		if has("fig10") {
			if partial {
				// Headline means over an incomplete suite would silently
				// compare schemes on different application subsets.
				fmt.Fprintln(os.Stderr, "skipping headline speedups: suite is partial")
			} else {
				sp, err := suite.Speedups()
				check(err)
				fmt.Println("== headline speedups (CI geometric mean vs baseline) ==")
				for _, sc := range dlpsim.PaperSchemes() {
					fmt.Printf("%-18s CI x%.3f   CS x%.3f\n", sc.Name, sp[sc.Name]["CI"], sp[sc.Name]["CS"])
				}
			}
		}
	}

	// The cross-policy comparison is explicitly opt-in (never part of
	// "all"): the committed reference outputs cover the paper's schemes
	// only, and must not drift as policies are added to the registry.
	if want["policies"] {
		suite := runSuite(dlpsim.PolicySchemes())
		renderTable(suite.Fig10IPC())
		if partial {
			fmt.Fprintln(os.Stderr, "skipping cross-policy speedups: suite is partial")
		} else {
			sp, err := suite.Speedups()
			check(err)
			fmt.Println("== cross-policy speedups (geometric mean vs baseline) ==")
			for _, sc := range dlpsim.PolicySchemes() {
				fmt.Printf("%-18s CI x%.3f   CS x%.3f\n", sc.Name, sp[sc.Name]["CI"], sp[sc.Name]["CS"])
			}
		}
	}
	if !*quiet && simulated+recalled > 0 {
		fmt.Fprintf(os.Stderr, "%d simulations, %d cache hits in %.1fs\n",
			simulated, recalled, time.Since(start).Seconds())
	}
	if partial {
		prof.Stop()
		obs.Close()
		os.Exit(1)
	}
	check(obs.Close())
}

// obs owns the -metrics/-trace outputs; like prof it is flushed on
// every exit path (Close is idempotent).
var obs *cli.Observability

// fatal reports err and exits with the shared code convention — 130
// for an interrupted run, 1 for everything else.
func fatal(err error) {
	prof.Stop()
	obs.Close()
	log.Print(err)
	os.Exit(cli.ExitCode(err))
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func render(f func(w io.Writer) error) {
	check(f(os.Stdout))
	fmt.Println()
}
