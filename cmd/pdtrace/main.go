// Command pdtrace visualizes the Figure 9 dynamics: it replays one
// application's memory stream through a single DLP-managed L1D with an
// idealized (zero-latency) memory behind it and prints, after every
// sampling period, the global TDA/VTA hit counters' decision and the
// per-instruction protection distances. This is the tool to use to
// understand *why* DLP protects (or refuses to protect) a workload.
//
// Usage:
//
//	pdtrace -app CFD
//	pdtrace -app BFS -samples 30
//
// -timeout D bounds the replay's wall time; -selfcheck verifies the
// cache's DLP invariants after every printed sample, so a corrupted
// protection state is caught at the sample that introduced it.
// -cores is accepted for CLI uniformity with the other commands but
// has nothing to parallelize here: the replay is one L1D fed one
// access at a time, so any value >= 1 runs the same serial loop.
// Exit codes: 0 success, 1 failure or exhausted -timeout, 130
// interrupted (Ctrl-C) — an interrupted replay still prints the
// samples it traced, but exits non-zero so scripts can tell a partial
// table from a complete one.
//
// Observability: -metrics FILE streams the replayed L1D's counter
// registry as JSONL, one row per sampling period (the cycle column is
// the replay's access-serial clock); -trace FILE writes a Chrome
// trace_event file with a TDA/VTA counter track per sample, viewable
// at ui.perfetto.dev.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/addr"
	"repro/internal/cli"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdtrace: ")
	app := flag.String("app", "CFD", "application abbreviation")
	maxSamples := flag.Int("samples", 20, "sampling periods to trace")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the replay (e.g. 1m); 0 = none")
	selfCheck := flag.Bool("selfcheck", false, "verify DLP invariants after every printed sample")
	cores := flag.Int("cores", 1, "accepted for CLI uniformity (0 = auto); the single-cache replay is inherently serial")
	metricsPath := flag.String("metrics", "", "stream the L1D counter registry (JSONL, one row per sample) to this file")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON timeline of the samples to this file (open in Perfetto)")
	flag.Parse()
	if _, err := cli.ResolveCores(*cores); err != nil {
		log.Fatal(err)
	}

	// The observability outputs are opened before the replay so a bad
	// path fails immediately, and flushed on every exit path.
	var (
		mfile *os.File
		msink *metrics.JSONLSink
		tfile *os.File
		tr    *metrics.Trace
	)
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			log.Fatal(err)
		}
		mfile = f
		msink = metrics.NewJSONLSink(f)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		tfile = f
		tr = metrics.NewTrace()
		tr.ProcessName(1, "pdtrace replay")
		tr.ThreadName(1, 1, "sampling periods")
	}
	closeObs := func() {
		if msink != nil {
			if err := msink.Flush(); err != nil {
				log.Print(err)
			}
			if err := mfile.Close(); err != nil {
				log.Print(err)
			}
			msink = nil
		}
		if tr != nil {
			if err := tr.WriteJSON(tfile); err != nil {
				log.Print(err)
			}
			if err := tfile.Close(); err != nil {
				log.Print(err)
			}
			tr = nil
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	spec, err := workloads.ByAbbr(strings.ToUpper(*app))
	if err != nil {
		log.Fatal(err)
	}
	cfg := config.Baseline()
	k := spec.Generate()

	// Collect the distinct memory PCs so the table has stable columns.
	pcs := collectPCs(k)

	delivered := 0
	l1d := core.NewL1D(cfg, config.PolicyDLP, func(*mem.Request) { delivered++ })

	// The metrics series reuses the simulator's registry machinery over
	// this one standalone cache; the label is the workload abbreviation.
	var reg *metrics.Registry
	series := strings.ToUpper(*app)
	if msink != nil {
		reg = metrics.NewRegistry()
		l1d.RegisterMetrics(reg, "l1d")
		reg.Seal()
		msink.Begin(series, reg.Names())
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 1, ' ', 0)
	fmt.Fprintf(w, "sample\tTDA hits\tVTA hits\tdecision")
	for _, pc := range pcs {
		fmt.Fprintf(w, "\tPD(insn%d)", pc)
	}
	fmt.Fprintln(w)

	var (
		now        uint64
		id         uint64
		lastSample uint64
		prevTDA    uint64
		prevVTA    uint64
	)
	send := func(line addr.Addr, pc uint32, store bool) {
		id++
		req := &mem.Request{ID: id, Addr: line, PC: pc, InsnID: addr.HashPC(pc), Store: store}
		for ctx.Err() == nil {
			now++
			l1d.Tick(now)
			out := l1d.Access(req)
			for {
				o := l1d.PopOutgoing()
				if o == nil {
					break
				}
				if !o.Store {
					l1d.OnResponse(o)
				}
			}
			if out != mem.OutcomeStall {
				return
			}
		}
	}

	// Replay warps round-robin, one memory instruction per turn,
	// mirroring internal/rdd's interleaving. Track sample boundaries via
	// the PDPT sample counter.
	pdpt := l1d.PDPT()
	blocks := k.Blocks[:1] // one SM's share is representative
	ptrs := make([]int, len(blocks[0].Warps))
	live := len(ptrs)
	for live > 0 && int(pdpt.Samples()) < *maxSamples && ctx.Err() == nil {
		live = 0
		for wi, wt := range blocks[0].Warps {
			for ; ptrs[wi] < len(wt.Instrs); ptrs[wi]++ {
				in := &wt.Instrs[ptrs[wi]]
				if in.Kind == trace.Compute {
					continue
				}
				for _, line := range in.CoalescedLines(cfg.L1D.LineSize) {
					// Record counters just before a sample closes so the
					// decision is reconstructable.
					tda, vta := pdpt.GlobalHits()
					prevTDA, prevVTA = tda, vta
					send(line, in.PC, in.Kind == trace.Store)
					if s := pdpt.Samples(); s != lastSample {
						lastSample = s
						printSample(w, s, prevTDA, prevVTA, pdpt, pcs)
						if reg != nil {
							msink.Row(series, now, reg.Sample())
						}
						if tr != nil {
							tr.Counter("global hits", 1, float64(now), map[string]any{
								"tda": prevTDA, "vta": prevVTA})
							tr.Instant(fmt.Sprintf("sample %d", s), "sample", 1, 1, float64(now), nil)
						}
						if *selfCheck {
							if err := l1d.CheckInvariants(); err != nil {
								w.Flush()
								closeObs()
								log.Fatalf("after sample %d: %v", s, err)
							}
						}
					}
				}
				ptrs[wi]++
				break
			}
			if ptrs[wi] < len(wt.Instrs) {
				live++
			}
		}
	}
	w.Flush()
	if reg != nil {
		// A closing row captures the counters where the replay stopped,
		// whether it drained or was cut short.
		msink.Row(series, now, reg.Sample())
	}
	closeObs()
	// The replay loop exits quietly on cancellation so the partial table
	// above is still printed; the exit status must not read as success.
	if err := ctx.Err(); err != nil {
		log.Print("replay stopped early: ", err)
		os.Exit(cli.ExitCode(err))
	}
	if *selfCheck {
		if err := l1d.CheckInvariants(); err != nil {
			log.Fatalf("after replay: %v", err)
		}
	}
	st := l1d.Stats()
	fmt.Printf("\nfinal: accesses=%d hits=%d bypasses=%d vta_hits=%d hit_rate=%.3f\n",
		st.L1DAccesses, st.L1DHits, st.L1DBypasses, st.VTAHits, st.L1DHitRate())
}

// printSample emits one row: the counters that drove the Fig. 9 decision
// and the resulting per-instruction PDs.
func printSample(w *tabwriter.Writer, sample, tda, vta uint64, pdpt *core.PDPT, pcs []uint32) {
	decision := "hold"
	switch {
	case vta > tda:
		decision = "increase"
	case 2*vta < tda:
		decision = "decrease"
	}
	fmt.Fprintf(w, "%d\t%d\t%d\t%s", sample, tda, vta, decision)
	for _, pc := range pcs {
		fmt.Fprintf(w, "\t%d", pdpt.PD(addr.HashPC(pc)))
	}
	fmt.Fprintln(w)
}

// collectPCs returns the kernel's distinct memory-instruction PCs.
func collectPCs(k *trace.Kernel) []uint32 {
	seen := map[uint32]bool{}
	for _, b := range k.Blocks {
		for _, wt := range b.Warps {
			for i := range wt.Instrs {
				in := &wt.Instrs[i]
				if in.Kind != trace.Compute {
					seen[in.PC] = true
				}
			}
		}
	}
	out := make([]uint32, 0, len(seen))
	for pc := range seen {
		out = append(out, pc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
