// Command rddprof replays benchmark memory traces through the paper's
// reuse-distance profiler and prints the Figure 3 / 6 / 7 data: per-
// application RD distributions, memory-access ratios with CS/CI
// classification, and per-instruction RDDs.
//
// Usage:
//
//	rddprof                  # Fig. 3 RDDs + Fig. 6 ratios for all apps
//	rddprof -app BFS         # Fig. 7 per-instruction RDD for one app
//	rddprof -size 32         # profile against the 32KB geometry
//	rddprof -cores 8         # stripe the per-SM replays over 8 goroutines
//
// -cores parallelizes each profile across the 16 simulated SMs (every
// SM's cache view is independent, and the shard counters fold by
// addition), so the printed tables are identical at any value.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/cli"
	"repro/internal/config"
	"repro/internal/rdd"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rddprof: ")
	app := flag.String("app", "", "profile a single application's per-PC RDD (Fig. 7)")
	sizeKB := flag.Int("size", 16, "L1D capacity in KB (16, 32 or 64)")
	cores := flag.Int("cores", 1, "goroutines per profile (0 = auto: all host CPUs; per-SM replays run in parallel); output is identical at any value")
	flag.Parse()
	resolvedCores, err := cli.ResolveCores(*cores)
	if err != nil {
		log.Fatal(err)
	}
	*cores = resolvedCores

	cfg, err := config.ByL1DSize(*sizeKB)
	if err != nil {
		log.Fatal(err)
	}

	if *app != "" {
		spec, err := workloads.ByAbbr(*app)
		if err != nil {
			log.Fatal(err)
		}
		printPerPC(spec, cfg, *cores)
		return
	}
	printAll(cfg, *cores)
}

func printAll(cfg *config.Config, cores int) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "app\tclass\tratio\t%s\t%s\t%s\t%s\treuse miss@16K\t@32K\t@64K\n",
		rdd.BucketLabels[0], rdd.BucketLabels[1], rdd.BucketLabels[2], rdd.BucketLabels[3])
	for _, spec := range workloads.All() {
		// The shared kernel's memoized coalescing feeds the replay's
		// zero-allocation scratch path.
		k := spec.SharedKernel(cfg.L1D.LineSize)
		sum := k.Summarize(cfg.L1D.LineSize)
		prof := rdd.ProfileKernelCores(k, cfg.NumSMs, cfg.L1D, cores)
		fr := prof.GlobalFractions()
		g16 := config.Baseline().L1D
		g32 := config.L1D32KB().L1D
		g64 := config.L1D64KB().L1D
		fmt.Fprintf(w, "%s\t%s\t%.3f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n",
			spec.Abbr, spec.Class, sum.MemoryAccessRatio()*100,
			fr[0]*100, fr[1]*100, fr[2]*100, fr[3]*100,
			rdd.ReuseMissRateCores(k, cfg.NumSMs, g16, cores)*100,
			rdd.ReuseMissRateCores(k, cfg.NumSMs, g32, cores)*100,
			rdd.ReuseMissRateCores(k, cfg.NumSMs, g64, cores)*100)
	}
	w.Flush()
}

func printPerPC(spec workloads.Spec, cfg *config.Config, cores int) {
	k := spec.SharedKernel(cfg.L1D.LineSize)
	prof := rdd.ProfileKernelCores(k, cfg.NumSMs, cfg.L1D, cores)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s per-instruction RDD (Fig. 7 style)\n", spec.Abbr)
	fmt.Fprintf(w, "insn\t%s\t%s\t%s\t%s\treuses\n",
		rdd.BucketLabels[0], rdd.BucketLabels[1], rdd.BucketLabels[2], rdd.BucketLabels[3])
	for _, pc := range prof.PCs() {
		fr := prof.PCFractions(pc)
		fmt.Fprintf(w, "%d\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%d\n",
			pc, fr[0]*100, fr[1]*100, fr[2]*100, fr[3]*100, prof.PerPC[pc].Total())
	}
	w.Flush()
}
