package dlpsim

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/conform"
	"repro/internal/faultinject"
	"repro/internal/workloads"
)

// TestConformCLI pins the conformance tool's end-to-end contract
// through a real subprocess: a fresh corpus passes with exit 0, a
// single flipped digit in a committed expectation exits 1 and prints a
// unified diff, and a truncated expectation exits 1 with the distinct
// corrupt-file report instead of a diff.
func TestConformCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "conform")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/conform").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	root := t.TempDir()
	sp := &conform.Spec{
		Schema: conform.SpecSchema,
		Policy: "dlp",
		Config: config.Baseline(),
		Workload: conform.WorkloadRef{Synth: &workloads.SynthSpec{
			Seed: 11, Blocks: 1, WarpsPerBlock: 2, MemInsnsPerWarp: 32,
			FootprintLines: 32, StreamPct: 1,
		}},
		MaxCycles: 2_000_000,
		Cores:     []int{1, 2},
	}
	dir := filepath.Join(root, "cli-case")
	if err := conform.WriteCase(dir, sp, nil); err != nil {
		t.Fatal(err)
	}

	run := func(args ...string) (string, int) {
		t.Helper()
		out, err := exec.Command(bin, append([]string{"-dir", root}, args...)...).CombinedOutput()
		if err == nil {
			return string(out), 0
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("conform did not run: %v\n%s", err, out)
		}
		return string(out), ee.ExitCode()
	}

	if out, code := run("-update"); code != 0 {
		t.Fatalf("-update exited %d:\n%s", code, out)
	}
	if out, code := run(); code != 0 {
		t.Fatalf("fresh corpus exited %d:\n%s", code, out)
	}
	if out, code := run("-list"); code != 0 || !strings.Contains(out, "cli-case") {
		t.Fatalf("-list exited %d or omitted the case:\n%s", code, out)
	}

	expected := filepath.Join(dir, conform.ExpectedFile)
	if err := faultinject.CorruptFileDigit(expected); err != nil {
		t.Fatal(err)
	}
	out, code := run()
	if code != 1 {
		t.Fatalf("perturbed expectation exited %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "DRIFT") || !strings.Contains(out, "@@") {
		t.Fatalf("perturbed expectation did not report drift with a diff:\n%s", out)
	}

	// Repair, then damage structurally: the report must switch from
	// drift to the corpus-repair message.
	if out, code := run("-update"); code != 0 {
		t.Fatalf("-update exited %d:\n%s", code, out)
	}
	if err := faultinject.TruncateFile(expected); err != nil {
		t.Fatal(err)
	}
	out, code = run()
	if code != 1 {
		t.Fatalf("truncated expectation exited %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "CORRUPT-EXPECTED") || strings.Contains(out, "@@") {
		t.Fatalf("truncated expectation not reported as corrupt (or reported as drift):\n%s", out)
	}
}
