package dlpsim

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/trace"
)

// diffKernel is a small hand-built kernel that exercises every policy
// decision point: each warp interleaves a hot line (short reuse
// distance — protection-worthy) with a private stream (no reuse —
// bypass-worthy), stores ride along to drive the write-evict path, and
// a line shared by all warps forces MSHR merges. Small enough for
// `go test -race -short`, rich enough that the seven policies produce
// genuinely different cache behavior.
func diffKernel() *trace.Kernel {
	k := &trace.Kernel{Name: "xpolicy-diff"}
	shared := addr.Addr(1 << 22)
	for b := 0; b < 2; b++ {
		blk := &trace.Block{}
		for w := 0; w < 4; w++ {
			wt := &trace.WarpTrace{}
			hot := addr.Addr((b*4 + w) * 128)
			streamBase := addr.Addr(1<<16 + (b*4+w)<<13)
			for i := 0; i < 24; i++ {
				stream := streamBase + addr.Addr(i*128)
				wt.Instrs = append(wt.Instrs,
					trace.NewLoad(0, []addr.Addr{hot}),
					trace.NewLoad(1, []addr.Addr{stream}),
					trace.NewCompute(2, 4, 32),
				)
				switch i % 8 {
				case 3:
					wt.Instrs = append(wt.Instrs, trace.NewStore(3, []addr.Addr{stream}))
				case 6:
					wt.Instrs = append(wt.Instrs, trace.NewLoad(4, []addr.Addr{shared}))
				}
			}
			blk.Warps = append(blk.Warps, wt)
		}
		k.Blocks = append(k.Blocks, blk)
	}
	return k
}

// TestCrossPolicyDifferential runs every registered policy on the same
// kernel serially and at several parallel core counts — including odd
// ones that leave the steal spans uneven — with the sampled invariant
// sweeps on, and requires bit-identical statistics. Under `-race` (the
// CI differential job) this also drives each policy's hooks through the
// phase-parallel engine's concurrency. A final check confirms the
// policies actually diverge from the baseline, so a registry mis-wiring
// that silently ran everything as Baseline would not pass as seven
// vacuous equalities.
func TestCrossPolicyDifferential(t *testing.T) {
	cfg := BaselineConfig()
	k := diffKernel()
	results := make(map[Policy]*Stats)
	for _, p := range Policies() {
		serial, err := RunWithOptions(cfg, p, k, Options{SelfCheck: true})
		if err != nil {
			t.Fatalf("%v serial: %v", p, err)
		}
		for _, cores := range []int{2, 3, 5, 7} {
			sharded, err := RunWithOptions(cfg, p, k, Options{Cores: cores, SelfCheck: true})
			if err != nil {
				t.Fatalf("%v cores=%d: %v", p, cores, err)
			}
			if *serial != *sharded {
				t.Errorf("%v: serial and cores=%d stats differ\nserial:  %+v\ncores=%d: %+v",
					p, serial, cores, cores, sharded)
			}
		}
		if serial.Instructions == 0 || serial.L1DAccesses == 0 {
			t.Errorf("%v: kernel did no work: %+v", p, serial)
		}
		results[p] = serial
	}
	diverged := 0
	for _, p := range Policies() {
		if p != Baseline && *results[p] != *results[Baseline] {
			diverged++
		}
	}
	if diverged == 0 {
		t.Error("no policy diverged from Baseline on a policy-sensitive kernel")
	}
}
