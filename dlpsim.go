package dlpsim

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/rdd"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Re-exported building blocks. Everything a downstream user needs to run
// simulations, author workloads, and read results is reachable from this
// package.
type (
	// Config is a full simulated-GPU hardware configuration (Table 1).
	Config = config.Config
	// Policy selects the L1D management scheme under evaluation.
	Policy = config.Policy
	// Stats holds the counters a simulation run produces.
	Stats = stats.Stats
	// Kernel is a launched grid of thread blocks with per-warp traces.
	Kernel = trace.Kernel
	// Block is one thread block.
	Block = trace.Block
	// WarpTrace is one warp's in-order instruction stream.
	WarpTrace = trace.WarpTrace
	// Instr is one warp instruction.
	Instr = trace.Instr
	// Workload describes one of the paper's benchmark applications.
	Workload = workloads.Spec
	// Overhead is the §4.3 hardware-cost breakdown.
	Overhead = core.Overhead
	// RDDProfile is a reuse-distance profile (program and per-PC).
	RDDProfile = rdd.Profile
	// Options tunes engine behavior beyond the hardware configuration.
	Options = sim.Options
	// Addr is a byte address in the simulated global memory space.
	Addr = addr.Addr

	// Job is one simulation point (config + policy + kernel + options)
	// for the parallel experiment runner.
	Job = runner.Job
	// RunResult is one Job's outcome, in submission order.
	RunResult = runner.Result
	// Runner executes batches of Jobs on a worker pool with optional
	// result caching and progress events.
	Runner = runner.Runner
	// RunCache is a content-addressed store of simulation results.
	RunCache = runner.Cache
	// RunEvent is one structured progress notification.
	RunEvent = runner.Event
	// RunEvents receives progress notifications from a Runner.
	RunEvents = runner.Events

	// BatchError aggregates every job failure of a KeepGoing batch.
	BatchError = runner.BatchError
	// JobFailure is one failed job inside a BatchError.
	JobFailure = runner.JobFailure
	// JobPanicError is a worker panic recovered into a typed error.
	JobPanicError = runner.JobPanicError
	// PhasePanicError is a panic recovered on an engine phase worker
	// (Options.Cores > 1), rethrown on the engine goroutine; inside a
	// Runner it arrives as a JobPanicError whose Value is this error.
	PhasePanicError = sim.PhasePanicError
	// CancelError summarizes a batch stopped by caller cancellation.
	CancelError = runner.CancelError
	// InvariantError is a violated DLP invariant caught by a self-check
	// (Options.SelfCheck) or an explicit CheckInvariants call.
	InvariantError = core.InvariantError
	// SimFunc runs one simulation attempt; Intercept wraps it.
	SimFunc = runner.SimFunc
	// Intercept wraps every simulation attempt a Runner makes — the
	// fault-injection and instrumentation seam (internal/faultinject).
	Intercept = runner.Intercept
	// MetricsConfig enables cycle-domain sampling on a single run
	// (Options.Metrics); MetricsSink receives the sampled rows.
	MetricsConfig = metrics.Config
	// MetricsSink receives sampled metric rows (Begin once per series,
	// then Row per sampling boundary).
	MetricsSink = metrics.Sink
	// JobTracer converts runner progress events into a Chrome
	// trace_event timeline viewable in Perfetto.
	JobTracer = runner.JobTracer
)

// Transient marks an error as retryable by the Runner's retry loop;
// IsTransient reports whether an error carries that classification.
var (
	Transient   = runner.Transient
	IsTransient = runner.IsTransient
)

// Progress-event kinds emitted by the Runner.
const (
	JobQueued  = runner.JobQueued
	JobStarted = runner.JobStarted
	JobDone    = runner.JobDone
)

// NewMetricsJSONL returns a sink streaming sampled rows as JSON Lines;
// NewJobTracer builds a Chrome-trace recorder over runner events (pass
// the shared RunCache, or nil, for the cache-counter track).
func NewMetricsJSONL(w io.Writer) *metrics.JSONLSink { return metrics.NewJSONLSink(w) }

// NewJobTracer builds a runner-event tracer; see JobTracer.
func NewJobTracer(cache *RunCache) *JobTracer { return runner.NewJobTracer(cache) }

// NewRunCache returns an empty in-memory result cache; share one across
// RunSuite / ablation calls so overlapping points simulate only once.
func NewRunCache() *RunCache { return runner.NewCache() }

// OpenRunCache returns a result cache persisted under dir, so repeated
// figure regenerations across processes never re-simulate a point.
func OpenRunCache(dir string) (*RunCache, error) { return runner.OpenDiskCache(dir) }

// RunJobs executes jobs on r's worker pool (a nil Runner gets defaults:
// GOMAXPROCS workers, no cache) and returns results in submission order.
func RunJobs(ctx context.Context, jobs []Job, r *Runner) ([]RunResult, error) {
	if r == nil {
		r = &Runner{}
	}
	return r.Run(ctx, jobs)
}

// Instruction constructors for authoring custom workloads.
var (
	// NewLoad builds a global load touching the given per-lane addresses.
	NewLoad = trace.NewLoad
	// NewStore builds a global store touching the given per-lane addresses.
	NewStore = trace.NewStore
	// NewCompute builds an ALU instruction with the given latency and
	// active lane count.
	NewCompute = trace.NewCompute
)

// The registered L1D policies: the paper's four evaluated schemes
// (§5.3) plus the drop-in additions from the wider literature.
const (
	Baseline         = config.PolicyBaseline
	StallBypass      = config.PolicyStallBypass
	GlobalProtection = config.PolicyGlobalProtection
	DLP              = config.PolicyDLP
	ATA              = config.PolicyATA
	CCWSLite         = config.PolicyCCWS
	ReusePredictor   = config.PolicyReusePredictor
)

// BaselineConfig returns the paper's Table 1 configuration (16KB 4-way
// L1D).
func BaselineConfig() *Config { return config.Baseline() }

// ConfigForL1D returns the preset for a 16, 32 or 64 KB L1D.
func ConfigForL1D(kb int) (*Config, error) { return config.ByL1DSize(kb) }

// Policies lists every registered scheme, the paper's four first (in
// plotting order) followed by the literature additions.
func Policies() []Policy { return policy.All() }

// PaperPolicies lists only the paper's four evaluated schemes (§5.3).
func PaperPolicies() []Policy { return policy.Paper() }

// PolicyUsage describes the accepted -policy spellings for CLI help.
func PolicyUsage() string { return policy.Usage() }

// PolicyCitation returns the one-line provenance of a registered scheme.
func PolicyCitation(p Policy) string {
	if s, ok := policy.Lookup(p); ok {
		return s.Cite
	}
	return ""
}

// Run executes one kernel on a machine built from cfg under the given
// policy and returns its counters.
func Run(cfg *Config, policy Policy, k *Kernel) (*Stats, error) {
	return sim.RunOnce(context.Background(), cfg, policy, k, sim.Options{})
}

// RunWithOptions is Run with explicit engine options.
func RunWithOptions(cfg *Config, policy Policy, k *Kernel, opts Options) (*Stats, error) {
	return sim.RunOnce(context.Background(), cfg, policy, k, opts)
}

// RunContext is Run with explicit engine options and a context: a
// cancelled context aborts the simulation within a few thousand cycles.
func RunContext(ctx context.Context, cfg *Config, policy Policy, k *Kernel, opts Options) (*Stats, error) {
	return sim.RunOnce(ctx, cfg, policy, k, opts)
}

// Workloads returns the 18 benchmark applications in Table 2 order.
func Workloads() []Workload { return workloads.All() }

// WorkloadByAbbr finds an application by its figure label (e.g. "BFS").
func WorkloadByAbbr(abbr string) (Workload, error) {
	return workloads.ByAbbr(strings.ToUpper(abbr))
}

// RunApp generates the named application and runs it under policy with
// an l1dKB-sized L1D (16, 32 or 64).
func RunApp(abbr string, policy Policy, l1dKB int) (*Stats, error) {
	spec, err := WorkloadByAbbr(abbr)
	if err != nil {
		return nil, err
	}
	cfg, err := config.ByL1DSize(l1dKB)
	if err != nil {
		return nil, err
	}
	return Run(cfg, policy, spec.SharedKernel(cfg.L1D.LineSize))
}

// HardwareOverhead evaluates the paper's §4.3 cost model for cfg. With
// the baseline configuration it reproduces the published numbers: 1264
// extra bytes, 7.48% of the baseline cache.
func HardwareOverhead(cfg *Config) Overhead { return core.ComputeOverhead(cfg) }

// ProfileRDD replays a kernel's memory stream and returns its
// reuse-distance profile under cfg's L1D geometry (§3.1).
func ProfileRDD(cfg *Config, k *Kernel) *RDDProfile {
	return rdd.ProfileKernel(k, cfg.NumSMs, cfg.L1D)
}

// ReuseMissRate replays the stream through LRU caches of cfg's L1D
// geometry and returns the non-compulsory miss rate (Fig. 4).
func ReuseMissRate(cfg *Config, k *Kernel) float64 {
	return rdd.ReuseMissRate(k, cfg.NumSMs, cfg.L1D)
}

// WriteKernel serializes a kernel to the library's binary trace format;
// ReadKernel loads one back. The format is documented in
// internal/trace/serialize.go and is stable across runs, so kernels —
// including ones converted from external simulators — can be stored and
// replayed byte-identically.
func WriteKernel(w io.Writer, k *Kernel) error {
	_, err := k.WriteTo(w)
	return err
}

// ReadKernel deserializes a kernel written by WriteKernel.
func ReadKernel(r io.Reader) (*Kernel, error) { return trace.ReadKernel(r) }

// ParsePolicy converts a CLI-style name into a Policy. It accepts every
// registered scheme's name and aliases, case-insensitively.
func ParsePolicy(s string) (Policy, error) {
	p, err := policy.Parse(s)
	if err != nil {
		return "", fmt.Errorf("dlpsim: %w", err)
	}
	return p, nil
}
