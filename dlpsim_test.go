package dlpsim

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestConfigForL1D(t *testing.T) {
	for _, kb := range []int{16, 32, 64} {
		cfg, err := ConfigForL1D(kb)
		if err != nil {
			t.Fatalf("ConfigForL1D(%d): %v", kb, err)
		}
		if got := cfg.L1D.SizeBytes(); got != kb*1024 {
			t.Errorf("ConfigForL1D(%d) size = %d", kb, got)
		}
	}
	if _, err := ConfigForL1D(8); err == nil {
		t.Error("ConfigForL1D(8) accepted")
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{
		"baseline": Baseline, "base": Baseline,
		"stall-bypass": StallBypass, "SB": StallBypass,
		"global-protection": GlobalProtection, "gp": GlobalProtection,
		"DLP": DLP,
		"ata": ATA, "ata-cache": ATA,
		"ccws-lite": CCWSLite, "CCWS": CCWSLite,
		"reusepredictor": ReusePredictor, "reuse-predictor": ReusePredictor, "pred": ReusePredictor,
	}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("lru"); err == nil {
		t.Error("ParsePolicy accepted an unknown name")
	}
}

func TestPoliciesOrder(t *testing.T) {
	ps := Policies()
	want := []Policy{Baseline, StallBypass, GlobalProtection, DLP, ATA, CCWSLite, ReusePredictor}
	if len(ps) != len(want) {
		t.Fatalf("Policies() = %v", ps)
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Errorf("Policies()[%d] = %v, want %v", i, ps[i], want[i])
		}
	}
	if got := PaperPolicies(); len(got) != 4 || got[0] != Baseline || got[3] != DLP {
		t.Errorf("PaperPolicies() = %v, want the paper's four in plotting order", got)
	}
	for _, p := range ps {
		if PolicyCitation(p) == "" {
			t.Errorf("policy %s has no provenance citation", p)
		}
	}
}

func TestHardwareOverheadHeadline(t *testing.T) {
	o := HardwareOverhead(BaselineConfig())
	if o.TotalBytes != 1264 || math.Abs(o.Percent-7.48) > 0.01 {
		t.Errorf("overhead = %d bytes (%.2f%%), paper says 1264 bytes (7.48%%)",
			o.TotalBytes, o.Percent)
	}
	rep := OverheadReport(BaselineConfig())
	for _, want := range []string{"1264", "7.48%", "624", "464", "176"} {
		if !strings.Contains(rep, want) {
			t.Errorf("OverheadReport missing %q:\n%s", want, rep)
		}
	}
}

func TestWorkloadsLookup(t *testing.T) {
	if got := len(Workloads()); got != 18 {
		t.Fatalf("Workloads() = %d apps", got)
	}
	w, err := WorkloadByAbbr("bfs") // case-insensitive
	if err != nil || w.Abbr != "BFS" {
		t.Errorf("WorkloadByAbbr(bfs) = %+v, %v", w, err)
	}
	if _, err := WorkloadByAbbr("XX"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunAppEndToEnd(t *testing.T) {
	st, err := RunApp("HS", Baseline, 16)
	if err != nil {
		t.Fatal(err)
	}
	if st.IPC() <= 0 || st.L1DAccesses == 0 {
		t.Errorf("degenerate run: %+v", st)
	}
	if err := st.CheckConservation(); err != nil {
		t.Error(err)
	}
	if _, err := RunApp("HS", Baseline, 17); err == nil {
		t.Error("invalid cache size accepted")
	}
	if _, err := RunApp("nope", Baseline, 16); err == nil {
		t.Error("invalid app accepted")
	}
}

func TestTable2Rendering(t *testing.T) {
	out := Table2()
	for _, want := range []string{"Histogram", "String Match", "Rodinia", "Mars", "Polybench", "CUDA Samples"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
}

func TestFig3Builder(t *testing.T) {
	d := Fig3RDD()
	if len(d.Rows) != 18 {
		t.Fatalf("Fig3 has %d rows", len(d.Rows))
	}
	var b strings.Builder
	if err := d.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "BFS") {
		t.Error("Fig3 render missing BFS")
	}
}

func TestFig6Builder(t *testing.T) {
	tab, err := Fig6Ratios()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Apps) != 18 || tab.Apps[0] != "HG" || tab.Apps[17] != "STR" {
		t.Errorf("Fig6 ordering wrong: %v", tab.Apps)
	}
	ratios := tab.Series[0].Values
	ci := tab.Series[1].Values
	for i := range ratios {
		if (ratios[i] > 1.0) != (ci[i] == 1) {
			t.Errorf("Fig6: %s ratio %.3f%% inconsistent with CI flag %v",
				tab.Apps[i], ratios[i], ci[i])
		}
	}
}

func TestFig7Builder(t *testing.T) {
	d := Fig7BFS()
	if len(d.Rows) < 5 {
		t.Fatalf("Fig7 has %d instruction rows", len(d.Rows))
	}
	for _, r := range d.Rows {
		sum := 0.0
		for _, f := range r.Fractions {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("Fig7 row %s fractions sum to %v", r.Label, sum)
		}
	}
}

func TestFig4Builder(t *testing.T) {
	if testing.Short() {
		t.Skip("LRU replay over all apps is slow")
	}
	tab, err := Fig4MissRates()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Series) != 3 {
		t.Fatalf("Fig4 has %d series, want 16/32/64KB", len(tab.Series))
	}
	// Monotone non-increasing with cache size, per app.
	for i := range tab.Apps {
		m16 := tab.Series[0].Values[i]
		m32 := tab.Series[1].Values[i]
		m64 := tab.Series[2].Values[i]
		if m32 > m16+1e-9 || m64 > m32+1e-9 {
			t.Errorf("%s: miss rate grew with size: %.3f/%.3f/%.3f", tab.Apps[i], m16, m32, m64)
		}
	}
}

func TestProfileAndMissRateAPI(t *testing.T) {
	cfg := BaselineConfig()
	w, _ := WorkloadByAbbr("SC")
	k := w.Generate()
	prof := ProfileRDD(cfg, k)
	if prof.Accesses == 0 {
		t.Fatal("empty profile")
	}
	fr := prof.GlobalFractions()
	if fr[0] < 0.5 {
		t.Errorf("SC short-RD fraction %.2f, want dominant", fr[0])
	}
	if m := ReuseMissRate(cfg, k); m > 0.15 {
		t.Errorf("SC reuse miss rate %.3f, want small", m)
	}
}

func TestKernelSerializationAPI(t *testing.T) {
	w, _ := WorkloadByAbbr("HS")
	k := w.Generate()
	var buf bytes.Buffer
	if err := WriteKernel(&buf, k); err != nil {
		t.Fatal(err)
	}
	got, err := ReadKernel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := k.Summarize(128)
	b := got.Summarize(128)
	if *a != *b {
		t.Errorf("serialized kernel summary differs: %+v vs %+v", a, b)
	}
	// A replayed trace must simulate identically to the generated one.
	s1, err := Run(BaselineConfig(), DLP, k)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Run(BaselineConfig(), DLP, got)
	if err != nil {
		t.Fatal(err)
	}
	if *s1 != *s2 {
		t.Error("trace replay diverged from generated kernel")
	}
}
