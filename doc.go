// Package dlpsim reproduces "Improving First Level Cache Efficiency for
// GPUs Using Dynamic Line Protection" (Zhu, Wernsman, Zambreno, ICPP
// 2018) as a self-contained Go library.
//
// The package wires together a cycle-level SIMT GPU simulator (16 SMs,
// dual GTO warp schedulers, MSHR-based L1D caches, a crossbar
// interconnect, 12 L2/DRAM partitions — the paper's Table 1
// configuration), the paper's Dynamic Line Protection (DLP) L1D
// management scheme plus its three comparators (stall-and-retry
// baseline, Stall-Bypass, and PDP-style Global-Protection), synthetic
// versions of the 18 evaluated benchmark applications, and the analysis
// and reporting machinery that regenerates every table and figure in the
// paper's evaluation.
//
// Quick start:
//
//	st, err := dlpsim.RunApp("CFD", dlpsim.DLP, 16)
//	if err != nil { ... }
//	fmt.Println(st.IPC())
//
// To regenerate the paper's figures, see RunPaperSuite and the Fig*
// builders, or run the cmd/paperfigs binary.
package dlpsim
