// Customworkload: author a new GPU kernel against the public trace API,
// inspect its reuse-distance profile, and evaluate how much Dynamic Line
// Protection helps it. This is the path a user takes to study their own
// application's cache behavior.
package main

import (
	"fmt"
	"log"

	dlpsim "repro"
)

// buildKernel constructs a thrash-prone kernel by hand: 16 blocks of 48
// warps, each warp touching every line of a private region three times
// (birth + two reuses) at a reuse distance beyond the baseline L1D's
// associativity, plus a dead stream.
func buildKernel() *dlpsim.Kernel {
	const (
		blocks = 16
		warps  = 48
		iters  = 120
		line   = 128
	)
	k := &dlpsim.Kernel{Name: "custom"}
	next := uint64(0)
	region := func(lines int) dlpsim.Addr {
		base := next
		next += uint64(lines+8) * line
		return dlpsim.Addr(base)
	}
	vec := func(pc uint32, base dlpsim.Addr) dlpsim.Instr {
		lanes := make([]dlpsim.Addr, 32)
		for i := range lanes {
			lanes[i] = base + dlpsim.Addr(i*4)
		}
		return dlpsim.NewLoad(pc, lanes)
	}
	for b := 0; b < blocks; b++ {
		blk := &dlpsim.Block{}
		for w := 0; w < warps; w++ {
			fresh := region(iters)
			stream := region(iters)
			wt := &dlpsim.WarpTrace{}
			for i := 0; i < iters; i++ {
				wt.Instrs = append(wt.Instrs, vec(0, fresh+dlpsim.Addr(i*line)))
				if i >= 1 {
					wt.Instrs = append(wt.Instrs, vec(1, fresh+dlpsim.Addr((i-1)*line)))
				}
				if i >= 2 {
					wt.Instrs = append(wt.Instrs, vec(2, fresh+dlpsim.Addr((i-2)*line)))
				}
				wt.Instrs = append(wt.Instrs, vec(3, stream+dlpsim.Addr(i*line)))
				wt.Instrs = append(wt.Instrs, dlpsim.NewCompute(100, 4, 32))
			}
			blk.Warps = append(blk.Warps, wt)
		}
		k.Blocks = append(k.Blocks, blk)
	}
	return k
}

func main() {
	log.SetFlags(0)
	cfg := dlpsim.BaselineConfig()
	k := buildKernel()
	if err := k.Validate(cfg.WarpSize); err != nil {
		log.Fatal(err)
	}

	// Static analysis first: where do the reuse distances fall?
	prof := dlpsim.ProfileRDD(cfg, k)
	fr := prof.GlobalFractions()
	fmt.Printf("reuse distances: 1~4: %.0f%%  5~8: %.0f%%  9~64: %.0f%%  >65: %.0f%%\n",
		fr[0]*100, fr[1]*100, fr[2]*100, fr[3]*100)
	fmt.Printf("reuse-data miss rate on the 16KB LRU cache: %.0f%%\n\n",
		dlpsim.ReuseMissRate(cfg, k)*100)

	// Then the live machine under each policy.
	for _, p := range dlpsim.Policies() {
		st, err := dlpsim.Run(dlpsim.BaselineConfig(), p, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s IPC=%8.2f hit rate=%.3f bypasses=%d\n",
			p, st.IPC(), st.L1DHitRate(), st.L1DBypasses)
	}
}
