// Overhead: walk through the paper's §4.3 hardware-cost model — the
// storage DLP adds to the L1D (per-entry instruction-ID and
// protected-life fields, the victim tag array, and the prediction
// table) — for the baseline cache and its scaled variants.
package main

import (
	"fmt"
	"log"

	dlpsim "repro"
)

func main() {
	log.SetFlags(0)
	for _, kb := range []int{16, 32, 64} {
		cfg, err := dlpsim.ConfigForL1D(kb)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(dlpsim.OverheadReport(cfg))
		fmt.Println()
	}
	fmt.Println("The 16KB numbers match the paper exactly: 176 + 624 + 464 =")
	fmt.Println("1264 extra bytes over a 16896-byte baseline TDA, i.e. 7.48%.")
}
