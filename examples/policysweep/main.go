// Policysweep: evaluate every registered L1D management scheme plus the
// doubled cache on a set of cache-insufficient applications — a
// small-scale version of the paper's Figure 10 extended with the
// literature schemes, built on the public experiment runner. The scheme
// columns come from the policy registry, so a newly registered policy
// shows up here with no code change. All (app, scheme) points are
// submitted as one batch, execute in parallel, and come back in
// submission order, so the printed table is identical at every worker
// count.
package main

import (
	"context"
	"fmt"
	"log"

	dlpsim "repro"
)

func main() {
	log.SetFlags(0)
	apps := []string{"CFD", "PVR", "SS", "SRK", "KM"}
	// Every registered policy at 16KB, plus the doubled-capacity baseline.
	schemes := append(dlpsim.PolicySchemes(), dlpsim.Scheme{Name: "32KB", Policy: dlpsim.Baseline, L1DKB: 32})

	var jobs []dlpsim.Job
	for _, app := range apps {
		spec, err := dlpsim.WorkloadByAbbr(app)
		if err != nil {
			log.Fatal(err)
		}
		k := spec.Generate() // one kernel shared by every scheme
		for _, sc := range schemes {
			cfg, err := dlpsim.ConfigForL1D(sc.L1DKB)
			if err != nil {
				log.Fatal(err)
			}
			jobs = append(jobs, dlpsim.Job{
				Label:  app + " under " + sc.Name,
				Config: cfg,
				Policy: sc.Policy,
				Kernel: k,
			})
		}
	}

	results, err := dlpsim.RunJobs(context.Background(), jobs, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s", "app")
	for _, sc := range schemes {
		fmt.Printf(" %18s", sc.Name)
	}
	fmt.Println()
	for i, app := range apps {
		row := results[i*len(schemes) : (i+1)*len(schemes)]
		base := row[0].Stats.IPC()
		fmt.Printf("%-6s", app)
		for _, res := range row {
			fmt.Printf(" %18.2f", res.Stats.IPC()/base)
		}
		fmt.Println()
	}
	fmt.Println("\nvalues are IPC normalized to the 16KB baseline (Fig. 10 style)")
}
