// Policysweep: evaluate all four L1D management schemes plus the doubled
// cache on a set of cache-insufficient applications — a small-scale
// version of the paper's Figure 10.
package main

import (
	"fmt"
	"log"

	dlpsim "repro"
)

func main() {
	log.SetFlags(0)
	apps := []string{"CFD", "PVR", "SS", "SRK", "KM"}

	fmt.Printf("%-6s %10s %14s %18s %8s %8s\n",
		"app", "Baseline", "Stall-Bypass", "Global-Protection", "DLP", "32KB")
	for _, app := range apps {
		base, err := dlpsim.RunApp(app, dlpsim.Baseline, 16)
		if err != nil {
			log.Fatal(err)
		}
		row := []float64{1}
		for _, p := range []dlpsim.Policy{dlpsim.StallBypass, dlpsim.GlobalProtection, dlpsim.DLP} {
			st, err := dlpsim.RunApp(app, p, 16)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, st.IPC()/base.IPC())
		}
		st32, err := dlpsim.RunApp(app, dlpsim.Baseline, 32)
		if err != nil {
			log.Fatal(err)
		}
		row = append(row, st32.IPC()/base.IPC())
		fmt.Printf("%-6s %10.2f %14.2f %18.2f %8.2f %8.2f\n",
			app, row[0], row[1], row[2], row[3], row[4])
	}
	fmt.Println("\nvalues are IPC normalized to the 16KB baseline (Fig. 10 style)")
}
