// Policysweep: evaluate all four L1D management schemes plus the doubled
// cache on a set of cache-insufficient applications — a small-scale
// version of the paper's Figure 10, built on the public experiment
// runner. All (app, scheme) points are submitted as one batch, execute
// in parallel, and come back in submission order, so the printed table
// is identical at every worker count.
package main

import (
	"context"
	"fmt"
	"log"

	dlpsim "repro"
)

func main() {
	log.SetFlags(0)
	apps := []string{"CFD", "PVR", "SS", "SRK", "KM"}
	schemes := dlpsim.PaperSchemes() // Baseline, SB, GP, DLP at 16KB + 32KB

	var jobs []dlpsim.Job
	for _, app := range apps {
		spec, err := dlpsim.WorkloadByAbbr(app)
		if err != nil {
			log.Fatal(err)
		}
		k := spec.Generate() // one kernel shared by all five schemes
		for _, sc := range schemes {
			cfg, err := dlpsim.ConfigForL1D(sc.L1DKB)
			if err != nil {
				log.Fatal(err)
			}
			jobs = append(jobs, dlpsim.Job{
				Label:  app + " under " + sc.Name,
				Config: cfg,
				Policy: sc.Policy,
				Kernel: k,
			})
		}
	}

	results, err := dlpsim.RunJobs(context.Background(), jobs, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %10s %14s %18s %8s %8s\n",
		"app", "Baseline", "Stall-Bypass", "Global-Protection", "DLP", "32KB")
	for i, app := range apps {
		row := results[i*len(schemes) : (i+1)*len(schemes)]
		base := row[0].Stats.IPC()
		fmt.Printf("%-6s %10.2f %14.2f %18.2f %8.2f %8.2f\n", app,
			1.0,
			row[1].Stats.IPC()/base,
			row[2].Stats.IPC()/base,
			row[3].Stats.IPC()/base,
			row[4].Stats.IPC()/base)
	}
	fmt.Println("\nvalues are IPC normalized to the 16KB baseline (Fig. 10 style)")
}
