// Quickstart: run one cache-insufficient application (CFD) under the
// baseline L1D and under Dynamic Line Protection, and compare the
// headline counters — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	dlpsim "repro"
)

func main() {
	log.SetFlags(0)

	base, err := dlpsim.RunApp("CFD", dlpsim.Baseline, 16)
	if err != nil {
		log.Fatal(err)
	}
	dlp, err := dlpsim.RunApp("CFD", dlpsim.DLP, 16)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("CFD on the Table 1 GPU (16KB 4-way L1D per SM)")
	fmt.Printf("%-22s %12s %12s\n", "", "Baseline", "DLP")
	fmt.Printf("%-22s %12.2f %12.2f\n", "IPC", base.IPC(), dlp.IPC())
	fmt.Printf("%-22s %12.3f %12.3f\n", "L1D hit rate", base.L1DHitRate(), dlp.L1DHitRate())
	fmt.Printf("%-22s %12d %12d\n", "L1D evictions", base.L1DEvictions, dlp.L1DEvictions)
	fmt.Printf("%-22s %12d %12d\n", "bypassed accesses", base.L1DBypasses, dlp.L1DBypasses)
	fmt.Printf("%-22s %12d %12d\n", "pipeline stall cycles", base.L1DStalls, dlp.L1DStalls)
	fmt.Printf("\nDLP speedup: x%.2f\n", dlp.IPC()/base.IPC())
}
