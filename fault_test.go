package dlpsim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// These tests pin the ISSUE's acceptance scenario for the fault-tolerant
// execution layer end to end, at the public API: a 36-job suite with
// injected panics, one corrupted disk-cache entry and one wedged job
// completes in KeepGoing mode with exactly the faulted cells FAILED,
// byte-identical at -j 1 and -j 8; and SelfCheck never changes output.

// faultKernel builds a small deterministic synthetic kernel; stride
// differentiates the apps' access patterns (and so their stats).
func faultKernel(name string, stride int) *Kernel {
	k := &Kernel{Name: name}
	blk := &Block{}
	for w := 0; w < 2; w++ {
		wt := &WarpTrace{}
		for l := 0; l < 6; l++ {
			wt.Instrs = append(wt.Instrs, NewLoad(uint32(l), []Addr{Addr((w*6 + l) * stride)}))
			wt.Instrs = append(wt.Instrs, NewCompute(50, 4, 32))
		}
		blk.Warps = append(blk.Warps, wt)
	}
	k.Blocks = append(k.Blocks, blk)
	return k
}

// faultBatch builds the 9 apps x 4 paper policies = 36-job grid,
// app-major. The paper subset is deliberate: the injected fault
// indices below name specific cells of this grid, which must not
// shift as extension schemes join the registry.
func faultBatch() (jobs []Job, appNames []string) {
	cfg := BaselineConfig()
	for a := 0; a < 9; a++ {
		name := fmt.Sprintf("app%d", a)
		appNames = append(appNames, name)
		k := faultKernel(name, 128*(a+1))
		for _, pol := range PaperPolicies() {
			jobs = append(jobs, Job{
				Label:  fmt.Sprintf("%s under %s", name, pol),
				Config: cfg,
				Policy: pol,
				Kernel: k,
			})
		}
	}
	return jobs, appNames
}

func TestFaultTolerantSuiteAcceptance(t *testing.T) {
	// Faulted submission indices: two panics and one job that hangs
	// until its deadline. Everything else must complete.
	const (
		panicA = 7
		panicB = 22
		hangC  = 13
	)
	wantFailed := map[int]bool{panicA: true, panicB: true, hangC: true}

	run := func(workers int) (string, uint64) {
		t.Helper()
		jobs, appNames := faultBatch()
		dir := t.TempDir()

		// Warm the disk cache with one healthy job, then damage its
		// entry the way bit-rot would.
		warm, err := OpenRunCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunJobs(context.Background(), jobs[:1], &Runner{Workers: 1, Cache: warm}); err != nil {
			t.Fatal(err)
		}
		key := jobs[0].Key()
		if key == "" {
			t.Fatal("acceptance job unexpectedly uncacheable")
		}
		if err := faultinject.CorruptEntry(dir, key); err != nil {
			t.Fatal(err)
		}

		plan := faultinject.NewPlan(42)
		plan.Set(panicA, faultinject.Fault{Kind: faultinject.Panic})
		plan.Set(panicB, faultinject.Fault{Kind: faultinject.Panic})
		plan.Set(hangC, faultinject.Fault{Kind: faultinject.Hang})

		cache, err := OpenRunCache(dir) // fresh process over the damaged dir
		if err != nil {
			t.Fatal(err)
		}
		results, err := RunJobs(context.Background(), jobs, &Runner{
			Workers:   workers,
			Cache:     cache,
			KeepGoing: true,
			Retries:   1,
			Timeout:   200 * time.Millisecond,
			Intercept: plan.Intercept(),
		})

		// The batch ran to completion and aggregated exactly the
		// injected failures, in submission order.
		var be *BatchError
		if !errors.As(err, &be) {
			t.Fatalf("workers=%d: err = %v, want *BatchError", workers, err)
		}
		if be.Total != 36 || len(be.Failures) != 3 {
			t.Fatalf("workers=%d: %d/%d failures, want 3/36", workers, len(be.Failures), be.Total)
		}
		for fi, want := range []int{panicA, hangC, panicB} {
			if be.Failures[fi].Index != want {
				t.Errorf("workers=%d: failure %d at index %d, want %d",
					workers, fi, be.Failures[fi].Index, want)
			}
		}

		// The corrupted entry was quarantined and its job resimulated,
		// not served stale and not failed.
		if !faultinject.IsQuarantined(dir, key) {
			t.Errorf("workers=%d: corrupted entry not quarantined as .corrupt", workers)
		}
		if results[0].Cached {
			t.Errorf("workers=%d: corrupted entry was served from the cache", workers)
		}
		if results[0].Err != nil || results[0].Stats == nil {
			t.Errorf("workers=%d: corrupted-entry job did not resimulate cleanly: %v",
				workers, results[0].Err)
		}

		// Exactly the faulted cells lack results.
		for i, res := range results {
			if wantFailed[i] != (res.Stats == nil) {
				t.Errorf("workers=%d: job %d: stats-missing=%v, want failed=%v",
					workers, i, res.Stats == nil, wantFailed[i])
			}
		}

		// Render the (policy x app) table the way the CLIs do: failed
		// points become NaN, which prints as FAILED.
		tab := &Table{Title: "fault acceptance: IPC", Apps: appNames}
		for pi, pol := range PaperPolicies() {
			vals := make([]float64, len(appNames))
			for a := range appNames {
				if st := results[a*len(PaperPolicies())+pi].Stats; st != nil {
					vals[a] = st.IPC()
				} else {
					vals[a] = math.NaN()
				}
			}
			if err := tab.AddSeries(pol.String(), vals); err != nil {
				t.Fatal(err)
			}
		}
		var b strings.Builder
		if err := tab.Render(&b); err != nil {
			t.Fatal(err)
		}
		return b.String(), cache.Quarantined()
	}

	serialTable, q1 := run(1)
	parallelTable, q8 := run(8)

	if serialTable != parallelTable {
		t.Errorf("tables differ between -j 1 and -j 8:\n-j1:\n%s\n-j8:\n%s",
			serialTable, parallelTable)
	}
	if got := strings.Count(serialTable, "FAILED"); got != len(wantFailed) {
		t.Errorf("table has %d FAILED cells, want %d:\n%s", got, len(wantFailed), serialTable)
	}
	if q1 != 1 || q8 != 1 {
		t.Errorf("quarantine counts = %d (j1), %d (j8); want 1 each", q1, q8)
	}
}

// TestPhasePanicSurfacesAsJobPanicError proves the fault boundary holds
// across both parallelism levels: a panic raised on an engine phase
// worker (Options.Cores > 1) crosses the phase barrier as a typed
// *PhasePanicError, is rethrown on the job's goroutine, and the runner
// recovers it into a *JobPanicError whose Value is that phase error —
// while every healthy neighbour in the batch completes.
func TestPhasePanicSurfacesAsJobPanicError(t *testing.T) {
	jobs, _ := faultBatch()
	jobs = jobs[:4]
	const faulted = 1
	jobs[faulted].Label = "phase fault"
	// Explicit Opts.Cores bypasses the runner's GOMAXPROCS cap, so the
	// phase pool really spins up even on a single-CPU test box.
	jobs[faulted].Opts = Options{
		Cores: 2,
		PhaseHook: func(worker int, cycle uint64) {
			if worker == 1 && cycle >= 3 {
				panic("injected phase fault")
			}
		},
	}

	results, err := RunJobs(context.Background(), jobs, &Runner{Workers: 2, KeepGoing: true})
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BatchError", err)
	}
	if len(be.Failures) != 1 || be.Failures[0].Index != faulted {
		t.Fatalf("failures = %+v, want exactly job %d", be.Failures, faulted)
	}

	var jpe *JobPanicError
	if !errors.As(results[faulted].Err, &jpe) {
		t.Fatalf("job error = %v, want *JobPanicError", results[faulted].Err)
	}
	ppe, ok := jpe.Value.(*PhasePanicError)
	if !ok {
		t.Fatalf("recovered panic value is %T, want *PhasePanicError", jpe.Value)
	}
	if ppe.Worker != 1 {
		t.Errorf("phase panic on worker %d, want 1", ppe.Worker)
	}
	if ppe.Value != "injected phase fault" {
		t.Errorf("phase panic value = %v, want the injected fault", ppe.Value)
	}
	if !strings.Contains(string(ppe.Stack), "runSpans") {
		t.Errorf("phase panic stack does not show the phase worker:\n%s", ppe.Stack)
	}

	for i, res := range results {
		if i == faulted {
			continue
		}
		if res.Err != nil || res.Stats == nil {
			t.Errorf("healthy job %d did not complete: %v", i, res.Err)
		}
	}
}

// TestSelfCheckOutputIdentical: a clean suite with SelfCheck enabled
// renders byte-identically to one without it — the invariant sweeps
// observe, never steer.
func TestSelfCheckOutputIdentical(t *testing.T) {
	apps := smallApps(t)
	render := func(selfCheck bool) string {
		t.Helper()
		res, err := RunSuite(context.Background(), smallSchemes(),
			&SuiteOptions{Apps: apps, SelfCheck: selfCheck})
		if err != nil {
			t.Fatalf("selfcheck=%v: %v", selfCheck, err)
		}
		var b strings.Builder
		for _, build := range []func() (*Table, error){res.Fig10IPC, res.Fig12aHitRate, res.Fig13ICNT} {
			tab, err := build()
			if err != nil {
				t.Fatal(err)
			}
			if err := tab.Render(&b); err != nil {
				t.Fatal(err)
			}
		}
		return b.String()
	}
	plain := render(false)
	checked := render(true)
	if plain != checked {
		t.Errorf("SelfCheck changed suite output:\nwithout:\n%s\nwith:\n%s", plain, checked)
	}
}
