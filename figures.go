package dlpsim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/rdd"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Table and Distribution are the renderable result shapes the figure
// builders produce.
type (
	Table        = report.Table
	Distribution = report.Distribution
	Series       = report.Series
)

// Scheme is one (policy, L1D size) combination plotted in the paper's
// evaluation figures.
type Scheme struct {
	Name   string
	Policy Policy
	L1DKB  int
}

// PaperSchemes are the five configurations of Figure 10, in plotting
// order: the registry's paper subset at 16KB plus the doubled-capacity
// baseline.
func PaperSchemes() []Scheme {
	out := make([]Scheme, 0, 5)
	for _, p := range policy.Paper() {
		name := p.String()
		if p == Baseline {
			name = "16KB(Baseline)"
		}
		out = append(out, Scheme{name, p, 16})
	}
	return append(out, Scheme{"32KB", Baseline, 32})
}

// PolicySchemes are every registered policy at the paper's 16KB L1D —
// the paper's four schemes followed by the literature additions — for
// cross-policy comparison tables (paperfigs -exp policies).
func PolicySchemes() []Scheme {
	all := policy.All()
	out := make([]Scheme, len(all))
	for i, p := range all {
		out[i] = Scheme{p.String(), p, 16}
	}
	return out
}

// AssocSchemes are the three cache sizes of Figures 4 and 5.
func AssocSchemes() []Scheme {
	return []Scheme{
		{"16KB", Baseline, 16},
		{"32KB", Baseline, 32},
		{"64KB", Baseline, 64},
	}
}

// SuiteResult holds one simulation per (application, scheme).
type SuiteResult struct {
	Apps    []Workload
	Schemes []Scheme
	// Stats[appAbbr][schemeName]
	Stats map[string]map[string]*Stats
}

// SuiteOptions tunes how RunSuite executes its simulations. The zero
// value (and a nil *SuiteOptions) runs the full Table 2 registry on
// GOMAXPROCS workers with no result cache.
type SuiteOptions struct {
	// Workers is the worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Cache, when non-nil, is consulted before simulating and updated
	// after. Share one across RunSuite calls (and with ablation sweeps)
	// so overlapping points are never re-simulated.
	Cache *runner.Cache
	// Events receives structured progress notifications (jobs queued /
	// running / done, cache hits, per-job wall time).
	Events runner.Events
	// Apps restricts the suite to the given applications; nil means the
	// full Table 2 registry. Used by tests and partial regenerations.
	Apps []Workload
	// KeepGoing runs the whole suite even when jobs fail: RunSuite then
	// returns the partial SuiteResult (failed points hold nil Stats and
	// render as FAILED cells) together with a *BatchError describing
	// every failure. Without it the first failure cancels the batch.
	KeepGoing bool
	// Retries re-runs a job up to this many extra times when it fails
	// with a transient error (runner.IsTransient). The engine itself is
	// deterministic, so this only matters for injected or environmental
	// failures.
	Retries int
	// Timeout bounds each job's wall time; 0 means no deadline.
	Timeout time.Duration
	// SelfCheck enables the engine's sampled invariant sweeps
	// (sim.Options.SelfCheck) on every job. Results are byte-identical
	// with or without it; only broken engine builds notice.
	SelfCheck bool
	// Cores is each simulation's internal phase parallelism
	// (sim.Options.Cores). The runner caps Workers × Cores at
	// GOMAXPROCS, and results are byte-identical at every value; see
	// runner.Runner.Cores.
	Cores int
	// Intercept, when non-nil, wraps every simulation attempt — the
	// fault-injection seam (see internal/faultinject).
	Intercept runner.Intercept
	// Metrics, when non-nil, streams cycle-domain counter samples from
	// every simulated job into the sink, one series per job label (see
	// runner.Runner.Metrics). Cached jobs emit no rows.
	Metrics metrics.Sink
	// MetricsEvery overrides the sampling period in cycles; 0 means
	// the default (metrics.DefaultEvery).
	MetricsEvery uint64
	// Stream feeds every application through the lazy chunked stream
	// frontend (workloads.Spec.Stream) instead of the process-shared
	// precomputed kernel. Counters are bit-identical either way; what
	// changes is startup cost — no kernel is materialized, so suite
	// setup allocations and peak memory drop.
	Stream bool
	// Scale multiplies each application's grid and shared footprint
	// (workloads.Spec.Stream / ScaledKernel); <= 1 is the paper's
	// Table 2 size. Large scales pair naturally with Stream, which
	// keeps memory bounded by the chunk pool regardless of Scale.
	Scale int
}

// RunSuite simulates every application under every scheme on a parallel
// worker pool. The result tables are deterministic regardless of worker
// count or completion order: jobs are scattered back into the
// (app, scheme) grid by submission index, and the engine itself is
// deterministic, so same jobs + any schedule = same tables.
func RunSuite(ctx context.Context, schemes []Scheme, opts *SuiteOptions) (*SuiteResult, error) {
	if opts == nil {
		opts = &SuiteOptions{}
	}
	apps := opts.Apps
	if apps == nil {
		apps = workloads.All()
	}

	// One config per scheme, built and validated once — not once per
	// (app, scheme) pair as the old serial loop did.
	cfgs := make([]*config.Config, len(schemes))
	for i, sc := range schemes {
		cfg, err := config.ByL1DSize(sc.L1DKB)
		if err != nil {
			return nil, err
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		cfgs[i] = cfg
	}

	jobs := make([]runner.Job, 0, len(apps)*len(schemes))
	for _, spec := range apps {
		var (
			k   *trace.Kernel
			src trace.Stream
		)
		switch {
		case opts.Stream:
			// One stream shared by every scheme's job: Fill is
			// per-(block, warp) and SMs hold their own cursors, so
			// concurrent jobs can draw from the same source.
			src = spec.Stream(opts.Scale)
		case opts.Scale > 1:
			k = spec.ScaledKernel(opts.Scale)
			k.PrecomputeCoalesced(cfgs[0].L1D.LineSize)
		default:
			// One kernel shared by every scheme's job — and, via the
			// process-wide cache, by every other suite in the process.
			k = spec.SharedKernel(cfgs[0].L1D.LineSize)
		}
		for si, sc := range schemes {
			jobs = append(jobs, runner.Job{
				Label:  spec.Abbr + " under " + sc.Name,
				Config: cfgs[si],
				Policy: sc.Policy,
				Kernel: k,
				Stream: src,
			})
		}
	}

	r := &runner.Runner{
		Workers:   opts.Workers,
		Cache:     opts.Cache,
		Events:    opts.Events,
		KeepGoing: opts.KeepGoing,
		Retries:   opts.Retries,
		Timeout:   opts.Timeout,
		SelfCheck: opts.SelfCheck,
		Cores:     opts.Cores,
		Intercept: opts.Intercept,

		Metrics:      opts.Metrics,
		MetricsEvery: opts.MetricsEvery,
	}
	results, err := r.Run(ctx, jobs)
	// In KeepGoing mode a *runner.BatchError still comes with a full
	// results slice (failed points carry nil Stats); build the partial
	// result and hand both back so callers can render FAILED cells and
	// report the failures. Every other error means there is nothing to
	// tabulate.
	if err != nil && !(opts.KeepGoing && errors.As(err, new(*runner.BatchError))) {
		return nil, err
	}

	res := &SuiteResult{
		Apps:    apps,
		Schemes: schemes,
		Stats:   make(map[string]map[string]*stats.Stats, len(apps)),
	}
	i := 0
	for _, spec := range apps {
		res.Stats[spec.Abbr] = make(map[string]*stats.Stats, len(schemes))
		for _, sc := range schemes {
			res.Stats[spec.Abbr][sc.Name] = results[i].Stats
			i++
		}
	}
	return res, err
}

// apps/classes return the column labels shared by every series table.
func (r *SuiteResult) appLabels() ([]string, []string) {
	apps := make([]string, len(r.Apps))
	classes := make([]string, len(r.Apps))
	for i, s := range r.Apps {
		apps[i] = s.Abbr
		classes[i] = s.Class.String()
	}
	return apps, classes
}

// seriesTable builds a table with one row per scheme where each value is
// extract(stats) normalized by the first scheme's value when normalize
// is set. Points with no result — jobs that failed in a KeepGoing run —
// become NaN, which report.Table renders as FAILED and excludes from
// the geometric means; a failed baseline point poisons (NaNs) the whole
// column, which is correct because nothing can be normalized against it.
func (r *SuiteResult) seriesTable(title string, normalize bool, extract func(*Stats) float64) (*Table, error) {
	val := func(st *Stats) float64 {
		if st == nil {
			return math.NaN()
		}
		return extract(st)
	}
	apps, classes := r.appLabels()
	t := &Table{Title: title, Apps: apps, Classes: classes}
	base := make([]float64, len(r.Apps))
	for i, spec := range r.Apps {
		base[i] = val(r.Stats[spec.Abbr][r.Schemes[0].Name])
	}
	for _, sc := range r.Schemes {
		vals := make([]float64, len(r.Apps))
		for i, spec := range r.Apps {
			v := val(r.Stats[spec.Abbr][sc.Name])
			if normalize {
				if base[i] != 0 { // NaN base falls through: v / NaN = NaN
					v /= base[i]
				} else {
					v = 0
				}
			}
			vals[i] = v
		}
		if err := t.AddSeries(sc.Name, vals); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Fig10IPC builds the paper's headline figure: IPC under each scheme,
// normalized to the 16KB baseline, with CS/CI geometric means.
func (r *SuiteResult) Fig10IPC() (*Table, error) {
	return r.seriesTable("Fig. 10: normalized IPC", true, func(s *Stats) float64 { return s.IPC() })
}

// Fig11aTraffic builds normalized L1D traffic (accesses serviced
// in-cache; bypassed requests don't count).
func (r *SuiteResult) Fig11aTraffic() (*Table, error) {
	return r.seriesTable("Fig. 11a: normalized L1D traffic", true,
		func(s *Stats) float64 { return float64(s.L1DTraffic) })
}

// Fig11bEvictions builds normalized L1D evictions.
func (r *SuiteResult) Fig11bEvictions() (*Table, error) {
	return r.seriesTable("Fig. 11b: normalized L1D evictions", true,
		func(s *Stats) float64 { return float64(s.L1DEvictions) })
}

// Fig12aHitRate builds absolute L1D hit rates (bypasses excluded from
// the denominator, §6.3).
func (r *SuiteResult) Fig12aHitRate() (*Table, error) {
	return r.seriesTable("Fig. 12a: L1D hit rate", false,
		func(s *Stats) float64 { return s.L1DHitRate() })
}

// Fig12bHits builds the normalized number of L1D hits.
func (r *SuiteResult) Fig12bHits() (*Table, error) {
	return r.seriesTable("Fig. 12b: normalized L1D hits", true,
		func(s *Stats) float64 { return float64(s.L1DHits) })
}

// Fig13ICNT builds normalized interconnect traffic (flits, including the
// background L1I/L1C/L1T share).
func (r *SuiteResult) Fig13ICNT() (*Table, error) {
	return r.seriesTable("Fig. 13: normalized interconnect traffic", true,
		func(s *Stats) float64 { return float64(s.ICNTFlits) })
}

// Fig5IPC builds the associativity study: IPC at 16/32/64KB normalized
// to 16KB. Use with a suite run over AssocSchemes.
func (r *SuiteResult) Fig5IPC() (*Table, error) {
	return r.seriesTable("Fig. 5: IPC vs L1D size (normalized to 16KB)", true,
		func(s *Stats) float64 { return s.IPC() })
}

// Fig3RDD profiles every application and returns the program-level
// reuse-distance distribution table.
func Fig3RDD() *Distribution {
	cfg := config.Baseline()
	d := &Distribution{
		Title:   "Fig. 3: reuse distance distribution per application",
		Buckets: rdd.BucketLabels,
	}
	for _, spec := range workloads.All() {
		prof := rdd.ProfileKernel(spec.SharedKernel(cfg.L1D.LineSize), cfg.NumSMs, cfg.L1D)
		d.Rows = append(d.Rows, report.DistRow{
			Label:     spec.Abbr,
			Fractions: prof.GlobalFractions(),
		})
	}
	return d
}

// Fig4MissRates replays every application through 16/32/64KB LRU caches
// and tabulates the reuse-data miss rate (compulsory misses excluded).
func Fig4MissRates() (*Table, error) {
	apps := make([]string, 0, 18)
	classes := make([]string, 0, 18)
	for _, s := range workloads.All() {
		apps = append(apps, s.Abbr)
		classes = append(classes, s.Class.String())
	}
	t := &Table{Title: "Fig. 4: reuse-data miss rate vs L1D size", Apps: apps, Classes: nil}
	n := config.Baseline().NumSMs
	for _, sc := range AssocSchemes() {
		cfg, err := config.ByL1DSize(sc.L1DKB)
		if err != nil {
			return nil, err
		}
		vals := make([]float64, 0, len(apps))
		for _, s := range workloads.All() {
			vals = append(vals, rdd.ReuseMissRate(s.SharedKernel(cfg.L1D.LineSize), n, cfg.L1D))
		}
		if err := t.AddSeries(sc.Name, vals); err != nil {
			return nil, err
		}
	}
	_ = classes
	return t, nil
}

// Fig6Ratios tabulates the memory-access ratio of every application in
// ascending order with its CS/CI classification (1% threshold).
func Fig6Ratios() (*Table, error) {
	lineSize := config.Baseline().L1D.LineSize
	sorted := workloads.SortedByRatio(lineSize)
	apps := make([]string, len(sorted))
	classes := make([]string, len(sorted))
	vals := make([]float64, len(sorted))
	for i, s := range sorted {
		apps[i] = s.Abbr
		classes[i] = s.Class.String()
		vals[i] = s.SharedKernel(lineSize).Summarize(lineSize).MemoryAccessRatio() * 100
	}
	t := &Table{Title: "Fig. 6: memory access ratio (%, sorted)", Apps: apps, Format: "%.3f"}
	if err := t.AddSeries("ratio%", vals); err != nil {
		return nil, err
	}
	if err := t.AddSeries("CI?(>1%)", boolSeries(classes)); err != nil {
		return nil, err
	}
	return t, nil
}

func boolSeries(classes []string) []float64 {
	out := make([]float64, len(classes))
	for i, c := range classes {
		if c == "CI" {
			out[i] = 1
		}
	}
	return out
}

// Fig7BFS returns the per-instruction RDD of the BFS application.
func Fig7BFS() *Distribution {
	cfg := config.Baseline()
	spec, _ := workloads.ByAbbr("BFS")
	prof := rdd.ProfileKernel(spec.SharedKernel(cfg.L1D.LineSize), cfg.NumSMs, cfg.L1D)
	d := &Distribution{
		Title:   "Fig. 7: per-instruction RDD of BFS",
		Buckets: rdd.BucketLabels,
	}
	for _, pc := range prof.PCs() {
		d.Rows = append(d.Rows, report.DistRow{
			Label:     fmt.Sprintf("insn%d", pc),
			Fractions: prof.PCFractions(pc),
		})
	}
	return d
}

// Table2 tabulates the benchmark applications (name, suite, class,
// input) as in the paper.
func Table2() string {
	out := "== Table 2: benchmark applications ==\n"
	for _, s := range workloads.All() {
		out += fmt.Sprintf("%-5s %-2s %-13s %-40s input=%s\n",
			s.Abbr, s.Class, s.Suite, s.Name, s.Input)
	}
	return out
}

// OverheadReport formats the §4.3 hardware-cost model for cfg.
func OverheadReport(cfg *Config) string {
	o := HardwareOverhead(cfg)
	return fmt.Sprintf(`== §4.3 hardware overhead (%s) ==
TDA extra (insn ID + PL):  %5d B
Victim tag array:          %5d B
PD prediction table:       %5d B
total extra:               %5d B
baseline TDA:              %5d B
overhead:                  %.2f%%
`, cfg.Name, o.TDAExtraBytes, o.VTABytes, o.PDPTBytes, o.TotalBytes, o.BaselineBytes, o.Percent)
}

// Speedups summarizes a suite's headline numbers: the CS and CI
// geometric-mean IPC of every scheme relative to the first. NaN cells
// (failed points in a partial, KeepGoing suite) are excluded from the
// means; if every point of a class failed, the resulting NaN geomean is
// reported as an error rather than a fabricated number.
func (r *SuiteResult) Speedups() (map[string]map[string]float64, error) {
	t, err := r.Fig10IPC()
	if err != nil {
		return nil, err
	}
	_, classes := r.appLabels()
	out := make(map[string]map[string]float64)
	for _, s := range t.Series {
		var cs, ci []float64
		for i, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			if classes[i] == "CS" {
				cs = append(cs, v)
			} else {
				ci = append(ci, v)
			}
		}
		m := map[string]float64{"CS": stats.GeoMean(cs), "CI": stats.GeoMean(ci)}
		for k, v := range m {
			if math.IsNaN(v) {
				return nil, fmt.Errorf("dlpsim: NaN %s geomean for scheme %s", k, s.Name)
			}
		}
		out[s.Name] = m
	}
	return out, nil
}
