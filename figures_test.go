package dlpsim

import (
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/workloads"
)

// fakeSuite builds a SuiteResult with synthetic counters so the figure
// builders can be tested without running simulations.
func fakeSuite() *SuiteResult {
	schemes := []Scheme{
		{"16KB(Baseline)", Baseline, 16},
		{"DLP", DLP, 16},
	}
	res := &SuiteResult{
		Apps:    workloads.All(),
		Schemes: schemes,
		Stats:   map[string]map[string]*Stats{},
	}
	for i, app := range res.Apps {
		base := &stats.Stats{
			Cycles: 1000, Instructions: uint64(1000 * (i + 1)),
			L1DTraffic: 100, L1DEvictions: 50, L1DHits: 20,
			L1DMisses: 80, L1DAccesses: 100, ICNTFlits: 500,
		}
		dlp := &stats.Stats{
			Cycles: 800, Instructions: uint64(1000 * (i + 1)),
			L1DTraffic: 60, L1DEvictions: 10, L1DHits: 40,
			L1DMisses: 20, L1DAccesses: 100, L1DBypasses: 40, ICNTFlits: 450,
		}
		res.Stats[app.Abbr] = map[string]*Stats{
			"16KB(Baseline)": base,
			"DLP":            dlp,
		}
	}
	return res
}

func TestFig10FromSyntheticSuite(t *testing.T) {
	res := fakeSuite()
	tab, err := res.Fig10IPC()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Series) != 2 {
		t.Fatalf("series = %d", len(tab.Series))
	}
	for i := range tab.Apps {
		if tab.Series[0].Values[i] != 1 {
			t.Errorf("baseline not normalized to 1 at %s", tab.Apps[i])
		}
		if got := tab.Series[1].Values[i]; got != 1.25 {
			t.Errorf("DLP speedup at %s = %v, want 1.25", tab.Apps[i], got)
		}
	}
}

func TestTrafficAndEvictionTables(t *testing.T) {
	res := fakeSuite()
	traffic, err := res.Fig11aTraffic()
	if err != nil {
		t.Fatal(err)
	}
	if got := traffic.Series[1].Values[0]; got != 0.6 {
		t.Errorf("DLP traffic = %v, want 0.6", got)
	}
	ev, err := res.Fig11bEvictions()
	if err != nil {
		t.Fatal(err)
	}
	if got := ev.Series[1].Values[0]; got != 0.2 {
		t.Errorf("DLP evictions = %v, want 0.2", got)
	}
}

func TestHitRateTableIsAbsolute(t *testing.T) {
	res := fakeSuite()
	hr, err := res.Fig12aHitRate()
	if err != nil {
		t.Fatal(err)
	}
	if got := hr.Series[0].Values[0]; got != 0.2 {
		t.Errorf("baseline hit rate = %v, want 0.2 (absolute, not normalized)", got)
	}
	hits, err := res.Fig12bHits()
	if err != nil {
		t.Fatal(err)
	}
	if got := hits.Series[1].Values[0]; got != 2 {
		t.Errorf("DLP hits = %v, want 2x", got)
	}
}

func TestICNTTable(t *testing.T) {
	res := fakeSuite()
	icnt, err := res.Fig13ICNT()
	if err != nil {
		t.Fatal(err)
	}
	if got := icnt.Series[1].Values[0]; got != 0.9 {
		t.Errorf("DLP ICNT = %v, want 0.9", got)
	}
}

func TestSpeedupsFromSyntheticSuite(t *testing.T) {
	res := fakeSuite()
	sp, err := res.Speedups()
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []string{"CS", "CI"} {
		if got := sp["DLP"][class]; got != 1.25 {
			t.Errorf("DLP %s geomean = %v, want 1.25", class, got)
		}
		if got := sp["16KB(Baseline)"][class]; got != 1 {
			t.Errorf("baseline %s geomean = %v, want 1", class, got)
		}
	}
}

func TestPaperSchemesShape(t *testing.T) {
	ps := PaperSchemes()
	if len(ps) != 5 {
		t.Fatalf("PaperSchemes = %d entries", len(ps))
	}
	if ps[0].Name != "16KB(Baseline)" || ps[4].Name != "32KB" {
		t.Errorf("scheme order wrong: %v", ps)
	}
	as := AssocSchemes()
	if len(as) != 3 || as[2].L1DKB != 64 {
		t.Errorf("AssocSchemes wrong: %v", as)
	}
}

func TestTableRenderIncludesGMeans(t *testing.T) {
	res := fakeSuite()
	tab, err := res.Fig10IPC()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "G.MEANS(CS)") || !strings.Contains(out, "G.MEANS(CI)") {
		t.Errorf("rendered table missing G.MEANS columns:\n%s", out)
	}
}
