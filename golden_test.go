package dlpsim

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// The golden identity tests pin the simulator's results bit-for-bit.
// testdata/golden_paper_suite.json was recorded from the pre-optimization
// engine (the PR 2 seed); every performance change since — activity
// skipping, fast-forward, request pooling — must leave the full paper
// suite byte-identical to that recording, at any worker count and with
// or without the sampled self-checks. Regenerate deliberately with
//
//	GOLDEN_UPDATE=1 go test -run TestGoldenSuiteIdentity -timeout 30m .
//
// after a change that is *supposed* to alter results (and say why in the
// commit); a perf-only PR must never need to.

const goldenPath = "testdata/golden_paper_suite.json"

// goldenSuite is the canonical serialization: applications in registry
// order, schemes in plotting order, the full integer counter set per
// cell. Stats is all-integer, so JSON round-trips are exact.
type goldenSuite struct {
	Apps    []string            `json:"apps"`
	Schemes []string            `json:"schemes"`
	Stats   []map[string]*Stats `json:"stats"` // Stats[i][scheme] for Apps[i]
}

func goldenFromSuite(res *SuiteResult) *goldenSuite {
	g := &goldenSuite{}
	for _, sc := range res.Schemes {
		g.Schemes = append(g.Schemes, sc.Name)
	}
	for _, app := range res.Apps {
		g.Apps = append(g.Apps, app.Abbr)
		cell := make(map[string]*Stats, len(res.Schemes))
		for _, sc := range res.Schemes {
			cell[sc.Name] = res.Stats[app.Abbr][sc.Name]
		}
		g.Stats = append(g.Stats, cell)
	}
	return g
}

func goldenBytes(t *testing.T, res *SuiteResult) []byte {
	t.Helper()
	b, err := json.MarshalIndent(goldenFromSuite(res), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

func readGolden(t *testing.T) []byte {
	t.Helper()
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (generate with GOLDEN_UPDATE=1): %v", err)
	}
	return want
}

// compareGolden diffs cell-by-cell before failing so a mismatch names
// the first diverging (app, scheme, counter) instead of dumping two
// multi-thousand-line JSON blobs.
func compareGolden(t *testing.T, label string, got []byte) {
	t.Helper()
	want := readGolden(t)
	if string(got) == string(want) {
		return
	}
	var g, w goldenSuite
	if err := json.Unmarshal(got, &g); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if err := json.Unmarshal(want, &w); err != nil {
		t.Fatalf("golden file: %v", err)
	}
	for i, app := range w.Apps {
		if i >= len(g.Apps) {
			break
		}
		for _, sc := range w.Schemes {
			gs, ws := g.Stats[i][sc], w.Stats[i][sc]
			if gs == nil || ws == nil {
				if gs != ws {
					t.Errorf("%s: %s/%s: one side missing", label, app, sc)
				}
				continue
			}
			if *gs != *ws {
				t.Errorf("%s: %s/%s diverged:\n got: %+v\nwant: %+v", label, app, sc, *gs, *ws)
			}
		}
	}
	t.Fatalf("%s: suite output is not byte-identical to %s", label, goldenPath)
}

// TestGoldenSuiteIdentity runs the full paper suite serially (-j 1) and
// demands byte-identity with the seed recording. With GOLDEN_UPDATE=1 it
// rewrites the golden file instead; the logged wall time of that serial
// run is the perf baseline tracked in EXPERIMENTS.md.
func TestGoldenSuiteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation suite skipped in -short mode")
	}
	start := time.Now()
	res, err := RunSuite(context.Background(), PaperSchemes(), &SuiteOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("RunSuite(PaperSchemes()) at -j 1: %.1fs", time.Since(start).Seconds())
	got := goldenBytes(t, res)
	if os.Getenv("GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	compareGolden(t, "-j 1", got)
}

// TestGoldenSuiteIdentityParallelSelfCheck re-runs the full suite on an
// 8-worker pool with the sampled invariant sweeps enabled — the
// maximally different execution (parallel scheduling + self-checks +
// activity-accounting cross-checks) must still reproduce the seed bytes.
func TestGoldenSuiteIdentityParallelSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation suite skipped in -short mode")
	}
	res, err := RunSuite(context.Background(), PaperSchemes(),
		&SuiteOptions{Workers: 8, SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "-j 8 selfcheck", goldenBytes(t, res))
}

// withGOMAXPROCS temporarily raises GOMAXPROCS to at least n so the
// runner's Workers × Cores ≤ GOMAXPROCS cap doesn't collapse the
// requested phase parallelism back to serial on small CI boxes. Safe
// anywhere: when the host has fewer CPUs than a pool has shards, the
// phase workers park on channels instead of spinning, so raising the
// limit never livelocks a single-CPU machine.
func withGOMAXPROCS(t *testing.T, n int) {
	t.Helper()
	if old := runtime.GOMAXPROCS(0); old < n {
		runtime.GOMAXPROCS(n)
		t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	}
}

// TestGoldenSuiteIdentityCores2 re-runs the full suite with two-way
// phase parallelism inside every simulation and the sampled invariant
// sweeps on. This is the tentpole's contract: the phase-parallel engine
// reproduces the seed recording bit-for-bit at any core count.
func TestGoldenSuiteIdentityCores2(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation suite skipped in -short mode")
	}
	withGOMAXPROCS(t, 2)
	res, err := RunSuite(context.Background(), PaperSchemes(),
		&SuiteOptions{Workers: 1, Cores: 2, SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "-j 1 -cores 2 selfcheck", goldenBytes(t, res))
}

// TestGoldenSuiteIdentityCores8 checks eight-way phase parallelism —
// with a parallel worker pool around it — against the same recording on
// an application subset (the full grid at cores=8 on a small box would
// blow the package's test budget; the cores=2 test above already covers
// every cell). Cells are compared value-by-value against the golden
// file rather than byte-by-byte, since a subset serializes differently.
func TestGoldenSuiteIdentityCores8(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation suite skipped in -short mode")
	}
	withGOMAXPROCS(t, 16)
	var apps []Workload
	for _, abbr := range []string{"BP", "BFS", "HS"} {
		w, err := WorkloadByAbbr(abbr)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, w)
	}
	res, err := RunSuite(context.Background(), PaperSchemes(),
		&SuiteOptions{Workers: 2, Cores: 8, SelfCheck: true, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}

	var w goldenSuite
	if err := json.Unmarshal(readGolden(t), &w); err != nil {
		t.Fatalf("golden file: %v", err)
	}
	cells := make(map[string]map[string]*Stats, len(w.Apps))
	for i, app := range w.Apps {
		cells[app] = w.Stats[i]
	}
	for _, app := range apps {
		for _, sc := range res.Schemes {
			got := res.Stats[app.Abbr][sc.Name]
			want := cells[app.Abbr][sc.Name]
			if got == nil || want == nil {
				t.Fatalf("%s/%s: missing cell (got=%v want=%v)", app.Abbr, sc.Name, got, want)
			}
			if *got != *want {
				t.Errorf("-j 2 -cores 8: %s/%s diverged:\n got: %+v\nwant: %+v",
					app.Abbr, sc.Name, *got, *want)
			}
		}
	}
}

// TestGoldenSuiteIdentityOddCores checks the work-stealing schedule at
// core counts that never divide the component count evenly — the span
// layouts where a striding bug would first show. Same subset-and-cell
// comparison as the cores=8 test; cores=2 above still covers the full
// grid.
func TestGoldenSuiteIdentityOddCores(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation suite skipped in -short mode")
	}
	withGOMAXPROCS(t, 8)
	var apps []Workload
	for _, abbr := range []string{"BP", "HS"} {
		w, err := WorkloadByAbbr(abbr)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, w)
	}

	var w goldenSuite
	if err := json.Unmarshal(readGolden(t), &w); err != nil {
		t.Fatalf("golden file: %v", err)
	}
	cells := make(map[string]map[string]*Stats, len(w.Apps))
	for i, app := range w.Apps {
		cells[app] = w.Stats[i]
	}

	for _, cores := range []int{3, 5, 7} {
		res, err := RunSuite(context.Background(), PaperSchemes(),
			&SuiteOptions{Workers: 1, Cores: cores, SelfCheck: true, Apps: apps})
		if err != nil {
			t.Fatalf("cores=%d: %v", cores, err)
		}
		for _, app := range apps {
			for _, sc := range res.Schemes {
				got := res.Stats[app.Abbr][sc.Name]
				want := cells[app.Abbr][sc.Name]
				if got == nil || want == nil {
					t.Fatalf("cores=%d: %s/%s: missing cell (got=%v want=%v)", cores, app.Abbr, sc.Name, got, want)
				}
				if *got != *want {
					t.Errorf("-cores %d: %s/%s diverged:\n got: %+v\nwant: %+v",
						cores, app.Abbr, sc.Name, *got, *want)
				}
			}
		}
	}
}

// TestGoldenSharedSuiteMatches cross-checks the suite the headline tests
// share (run at default workers, no self-check) against the same golden
// bytes, so every headline assertion is known to have executed on
// seed-identical numbers.
func TestGoldenSharedSuiteMatches(t *testing.T) {
	res := paperSuite(t)
	compareGolden(t, "shared suite", goldenBytes(t, res))
}
