package dlpsim

import (
	"context"
	"math"
	"sync"
	"testing"
)

// The headline reproduction tests run the full Figure 10 suite (18
// applications x 5 schemes, ~2 minutes) once and check every claim the
// paper's evaluation section makes about ordering and safety. Skipped
// under -short.

var (
	suiteOnce sync.Once
	suiteRes  *SuiteResult
	suiteErr  error
)

func paperSuite(t testing.TB) *SuiteResult {
	if t != nil {
		if tt, ok := t.(*testing.T); ok && testing.Short() {
			tt.Skip("full evaluation suite skipped in -short mode")
		}
	}
	suiteOnce.Do(func() {
		suiteRes, suiteErr = RunSuite(context.Background(), PaperSchemes(), nil)
	})
	if suiteErr != nil {
		t.Fatalf("suite failed: %v", suiteErr)
	}
	return suiteRes
}

// TestHeadlineIPCOrdering reproduces the paper's central result (§6.1):
// on cache-insufficient applications DLP outperforms Global-Protection,
// which outperforms Stall-Bypass; every protection scheme beats the
// baseline on average.
func TestHeadlineIPCOrdering(t *testing.T) {
	sp, err := paperSuite(t).Speedups()
	if err != nil {
		t.Fatal(err)
	}
	dlp := sp["DLP"]["CI"]
	gp := sp["Global-Protection"]["CI"]
	sb := sp["Stall-Bypass"]["CI"]
	k32 := sp["32KB"]["CI"]
	t.Logf("CI geomeans: SB=%.3f GP=%.3f DLP=%.3f 32KB=%.3f (paper: 1.14/1.35/1.44/1.50)",
		sb, gp, dlp, k32)
	if !(dlp > gp && gp > sb) {
		t.Errorf("CI ordering violated: DLP=%.3f GP=%.3f SB=%.3f (paper: DLP > GP > SB)", dlp, gp, sb)
	}
	if dlp < 1.10 {
		t.Errorf("DLP CI speedup %.3f, want a substantial gain (paper: 1.438)", dlp)
	}
	if sb < 1.0 {
		t.Errorf("Stall-Bypass CI speedup %.3f fell below baseline", sb)
	}
	if k32 < 1.05 {
		t.Errorf("32KB CI speedup %.3f, want a clear gain (paper: ~1.50)", k32)
	}
}

// TestHeadlineCSSafety reproduces §6.1.1: DLP retains at least 99% of
// baseline performance on cache-sufficient applications (paper: 99.8%),
// and no single CS application loses more than ~3%.
func TestHeadlineCSSafety(t *testing.T) {
	res := paperSuite(t)
	sp, err := res.Speedups()
	if err != nil {
		t.Fatal(err)
	}
	if cs := sp["DLP"]["CS"]; cs < 0.99 {
		t.Errorf("DLP CS geomean %.4f, paper retains 99.8%%", cs)
	}
	tab, err := res.Fig10IPC()
	if err != nil {
		t.Fatal(err)
	}
	for i, app := range tab.Apps {
		if res.Apps[i].Class.String() != "CS" {
			continue
		}
		for _, s := range tab.Series {
			if s.Name != "DLP" {
				continue
			}
			if s.Values[i] < 0.96 {
				t.Errorf("DLP loses %.1f%% on CS app %s (paper: no CS app loses more than 3%%)",
					(1-s.Values[i])*100, app)
			}
		}
	}
}

// TestHeadlineTrafficReduction reproduces §6.2: on CI applications DLP
// serves the least traffic through the L1D (most aggressive bypassing)
// and produces fewer evictions than the baseline and Stall-Bypass.
func TestHeadlineTrafficReduction(t *testing.T) {
	res := paperSuite(t)
	traffic, err := res.Fig11aTraffic()
	if err != nil {
		t.Fatal(err)
	}
	ev, err := res.Fig11bEvictions()
	if err != nil {
		t.Fatal(err)
	}
	tMeans := map[string]float64{}
	eMeans := map[string]float64{}
	for _, s := range traffic.Series {
		tMeans[s.Name] = ciMean(res, s)
	}
	for _, s := range ev.Series {
		eMeans[s.Name] = ciMean(res, s)
	}
	t.Logf("CI traffic: SB=%.3f GP=%.3f DLP=%.3f (paper: 0.716/0.598/0.475)",
		tMeans["Stall-Bypass"], tMeans["Global-Protection"], tMeans["DLP"])
	t.Logf("CI evictions: SB=%.3f GP=%.3f DLP=%.3f (paper: 0.565/0.357/0.207)",
		eMeans["Stall-Bypass"], eMeans["Global-Protection"], eMeans["DLP"])
	if tMeans["DLP"] >= 1.0 {
		t.Errorf("DLP CI traffic %.3f did not drop below baseline", tMeans["DLP"])
	}
	if eMeans["DLP"] >= 1.0 {
		t.Errorf("DLP CI evictions %.3f did not drop below baseline", eMeans["DLP"])
	}
	// Known divergence from the paper, recorded in EXPERIMENTS.md: the
	// paper's DLP bypasses the most of the three schemes (traffic 0.475);
	// ours bypasses only misses to fully protected sets and so keeps more
	// traffic in-cache than GP/SB while still winning on hits and IPC.
	// We therefore assert only the reduction vs baseline, not DLP < SB.
}

// TestHeadlineHitRate reproduces §6.3: DLP's CI hit rate exceeds the
// baseline's and Global-Protection's on average.
func TestHeadlineHitRate(t *testing.T) {
	res := paperSuite(t)
	hr, err := res.Fig12aHitRate()
	if err != nil {
		t.Fatal(err)
	}
	means := map[string]float64{}
	for _, s := range hr.Series {
		sum, n := 0.0, 0
		for i, v := range s.Values {
			if res.Apps[i].Class.String() == "CI" {
				sum += v
				n++
			}
		}
		means[s.Name] = sum / float64(n)
	}
	t.Logf("CI mean hit rates: base=%.3f SB=%.3f GP=%.3f DLP=%.3f",
		means["16KB(Baseline)"], means["Stall-Bypass"], means["Global-Protection"], means["DLP"])
	if means["DLP"] <= means["16KB(Baseline)"] {
		t.Error("DLP hit rate not above baseline on CI apps")
	}
	if means["DLP"] <= means["Global-Protection"] {
		t.Error("DLP hit rate not above Global-Protection on CI apps")
	}
}

// TestHeadlineICNT reproduces §6.4: DLP reduces interconnect traffic on
// CI applications, and by more than Stall-Bypass; the reduction is
// smaller than the L1D-traffic reduction because the network also
// carries the other L1 caches' traffic.
func TestHeadlineICNT(t *testing.T) {
	res := paperSuite(t)
	icnt, err := res.Fig13ICNT()
	if err != nil {
		t.Fatal(err)
	}
	l1d, err := res.Fig11aTraffic()
	if err != nil {
		t.Fatal(err)
	}
	var icntDLP, l1dDLP float64
	for _, s := range icnt.Series {
		if s.Name == "DLP" {
			icntDLP = ciMean(res, s)
		}
	}
	for _, s := range l1d.Series {
		if s.Name == "DLP" {
			l1dDLP = ciMean(res, s)
		}
	}
	t.Logf("DLP CI: ICNT %.3f vs L1D traffic %.3f (paper: 0.885 vs 0.475)", icntDLP, l1dDLP)
	if icntDLP >= 1.0 {
		t.Errorf("DLP CI interconnect traffic %.3f did not drop", icntDLP)
	}
	if icntDLP <= l1dDLP {
		t.Errorf("ICNT reduction (to %.3f) should be damped relative to L1D traffic (to %.3f)",
			icntDLP, l1dDLP)
	}
}

// TestHeadlineCFDBeatsBigCache reproduces the §6.1.2 observation that
// protection outperforms doubling the cache on CFD and SR2K: their reuse
// distances exceed 8 but fit inside the protection window.
func TestHeadlineCFDBeatsBigCache(t *testing.T) {
	res := paperSuite(t)
	tab, err := res.Fig10IPC()
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, a := range tab.Apps {
		idx[a] = i
	}
	get := func(scheme, app string) float64 {
		for _, s := range tab.Series {
			if s.Name == scheme {
				return s.Values[idx[app]]
			}
		}
		return 0
	}
	for _, app := range []string{"CFD", "SR2K"} {
		dlp := get("DLP", app)
		big := get("32KB", app)
		if dlp <= big {
			t.Errorf("%s: DLP %.3f not above 32KB %.3f (paper: protection beats doubling here)",
				app, dlp, big)
		}
	}
}

// ciMean computes the geometric mean of a series over CI applications.
func ciMean(res *SuiteResult, s Series) float64 {
	sum, n := 0.0, 0
	for i, v := range s.Values {
		if res.Apps[i].Class.String() == "CI" && v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
