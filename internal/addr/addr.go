// Package addr provides address arithmetic shared by every cache level:
// line extraction, set indexing (linear and hashed), and tag computation.
//
// The simulator uses 64-bit byte addresses. A cache geometry is described
// by its line size and number of sets, both powers of two. The baseline
// L1D uses a hashed set index (Table 1 of the paper: "Hash index") while
// the L2 uses a linear index ("Linear index").
package addr

import "fmt"

// Addr is a 64-bit byte address in the simulated global memory space.
type Addr uint64

// Mapper converts byte addresses into (line, set, tag) coordinates for a
// particular cache geometry.
type Mapper struct {
	lineSize   uint64
	numSets    uint64
	lineShift  uint
	setShift   uint
	setMask    uint64
	hashedIdx  bool
	partitions uint64 // number of memory partitions for ChipOf; 0 = unused
}

// IndexKind selects the set-index function of a Mapper.
type IndexKind int

const (
	// LinearIndex uses the low-order set bits directly above the line offset.
	LinearIndex IndexKind = iota
	// HashIndex XOR-folds higher address bits into the set bits, which is
	// what GPGPU-Sim style L1Ds do to spread power-of-two strides.
	HashIndex
)

// NewPartitionedMapper builds a Mapper for one slice of a cache whose
// lines are interleaved across `partitions` memory partitions: the slice
// sees every partitions-th line, so its set index is computed from
// lineID/partitions. Without this, a partition count that shares factors
// with the set count would leave most sets unreachable.
func NewPartitionedMapper(lineSize, numSets int, kind IndexKind, partitions int) (*Mapper, error) {
	if partitions <= 0 {
		return nil, fmt.Errorf("addr: partition count %d must be positive", partitions)
	}
	m, err := NewMapper(lineSize, numSets, kind)
	if err != nil {
		return nil, err
	}
	m.partitions = uint64(partitions)
	return m, nil
}

// NewMapper builds a Mapper. lineSize and numSets must be powers of two.
func NewMapper(lineSize, numSets int, kind IndexKind) (*Mapper, error) {
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("addr: line size %d is not a positive power of two", lineSize)
	}
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		return nil, fmt.Errorf("addr: set count %d is not a positive power of two", numSets)
	}
	m := &Mapper{
		lineSize:  uint64(lineSize),
		numSets:   uint64(numSets),
		lineShift: log2(uint64(lineSize)),
		setMask:   uint64(numSets) - 1,
		hashedIdx: kind == HashIndex,
	}
	m.setShift = log2(uint64(numSets))
	return m, nil
}

// MustMapper is NewMapper but panics on invalid geometry. It is intended
// for package-level configuration code where the geometry is static.
func MustMapper(lineSize, numSets int, kind IndexKind) *Mapper {
	m, err := NewMapper(lineSize, numSets, kind)
	if err != nil {
		panic(err)
	}
	return m
}

// LineSize reports the cache line size in bytes.
func (m *Mapper) LineSize() int { return int(m.lineSize) }

// NumSets reports the number of sets.
func (m *Mapper) NumSets() int { return int(m.numSets) }

// Line returns the line-aligned address containing a.
func (m *Mapper) Line(a Addr) Addr {
	return a &^ Addr(m.lineSize-1)
}

// LineID returns the line number (address divided by line size).
func (m *Mapper) LineID(a Addr) uint64 {
	return uint64(a) >> m.lineShift
}

// Set returns the set index for address a.
func (m *Mapper) Set(a Addr) int {
	id := uint64(a) >> m.lineShift
	if m.partitions > 1 {
		id /= m.partitions
	}
	if !m.hashedIdx {
		return int(id & m.setMask)
	}
	// XOR-fold three windows of line-number bits into the index so that
	// large power-of-two strides do not map every access to one set.
	h := id ^ (id >> m.setShift) ^ (id >> (2 * m.setShift))
	return int(h & m.setMask)
}

// Tag returns the tag for address a: every line-number bit above the set
// index. Because the hashed index folds high bits into the set, the tag
// must keep the full line number so distinct lines never alias.
func (m *Mapper) Tag(a Addr) uint64 {
	return uint64(a) >> m.lineShift
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// PartitionOf maps a line address onto one of n memory partitions by
// interleaving consecutive lines across partitions, the standard GPU
// address-interleaving scheme.
func PartitionOf(a Addr, lineSize, n int) int {
	if n <= 0 {
		return 0
	}
	return int((uint64(a) / uint64(lineSize)) % uint64(n))
}

// HashPC folds a program counter into the paper's 7-bit instruction ID
// space (128 PDPT entries).
func HashPC(pc uint32) uint8 {
	h := pc
	h ^= h >> 7
	h ^= h >> 14
	return uint8(h & 0x7f)
}
