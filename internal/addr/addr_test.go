package addr

import (
	"testing"
	"testing/quick"
)

func TestNewMapperRejectsBadGeometry(t *testing.T) {
	cases := []struct {
		line, sets int
	}{
		{0, 32}, {-1, 32}, {3, 32}, {96, 32},
		{128, 0}, {128, -4}, {128, 33}, {128, 7},
	}
	for _, c := range cases {
		if _, err := NewMapper(c.line, c.sets, LinearIndex); err == nil {
			t.Errorf("NewMapper(%d,%d) accepted invalid geometry", c.line, c.sets)
		}
	}
}

func TestMustMapperPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustMapper did not panic on invalid geometry")
		}
	}()
	MustMapper(100, 32, LinearIndex)
}

func TestLineAlignment(t *testing.T) {
	m := MustMapper(128, 32, LinearIndex)
	if got := m.Line(0); got != 0 {
		t.Errorf("Line(0) = %#x", got)
	}
	if got := m.Line(127); got != 0 {
		t.Errorf("Line(127) = %#x, want 0", got)
	}
	if got := m.Line(128); got != 128 {
		t.Errorf("Line(128) = %#x, want 128", got)
	}
	if got := m.Line(0xdeadbeef); got != 0xdeadbe80 {
		t.Errorf("Line(0xdeadbeef) = %#x, want 0xdeadbe80", got)
	}
}

func TestLinearSetIndex(t *testing.T) {
	m := MustMapper(128, 32, LinearIndex)
	for i := 0; i < 64; i++ {
		a := Addr(i * 128)
		want := i % 32
		if got := m.Set(a); got != want {
			t.Errorf("Set(line %d) = %d, want %d", i, got, want)
		}
	}
}

func TestLinearSetIgnoresOffsetBits(t *testing.T) {
	m := MustMapper(128, 32, LinearIndex)
	base := Addr(5 * 128)
	want := m.Set(base)
	for off := Addr(0); off < 128; off++ {
		if got := m.Set(base + off); got != want {
			t.Fatalf("Set(base+%d) = %d, want %d", off, got, want)
		}
	}
}

func TestHashSetSpreadsPowerOfTwoStrides(t *testing.T) {
	m := MustMapper(128, 32, HashIndex)
	// Stride of numSets*lineSize maps every access to the same set under a
	// linear index; the hash must spread them over more than one set.
	seen := map[int]bool{}
	for i := 0; i < 256; i++ {
		seen[m.Set(Addr(i*32*128))] = true
	}
	if len(seen) < 8 {
		t.Errorf("hash index only reached %d/32 sets on a power-of-two stride", len(seen))
	}
}

func TestHashSetInRange(t *testing.T) {
	m := MustMapper(128, 32, HashIndex)
	f := func(a uint64) bool {
		s := m.Set(Addr(a))
		return s >= 0 && s < 32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTagDistinguishesLines(t *testing.T) {
	for _, kind := range []IndexKind{LinearIndex, HashIndex} {
		m := MustMapper(128, 32, kind)
		f := func(a, b uint64) bool {
			x, y := Addr(a), Addr(b)
			sameLine := m.Line(x) == m.Line(y)
			sameCoord := m.Set(x) == m.Set(y) && m.Tag(x) == m.Tag(y)
			return sameLine == sameCoord
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("kind %v: %v", kind, err)
		}
	}
}

func TestLineIDMatchesTag(t *testing.T) {
	m := MustMapper(128, 64, HashIndex)
	f := func(a uint64) bool {
		return m.LineID(Addr(a)) == m.Tag(Addr(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionOfInterleaves(t *testing.T) {
	for i := 0; i < 48; i++ {
		a := Addr(i * 128)
		if got, want := PartitionOf(a, 128, 12), i%12; got != want {
			t.Errorf("PartitionOf(line %d) = %d, want %d", i, got, want)
		}
	}
	if got := PartitionOf(1234, 128, 0); got != 0 {
		t.Errorf("PartitionOf with 0 partitions = %d, want 0", got)
	}
}

func TestHashPCRange(t *testing.T) {
	f := func(pc uint32) bool { return HashPC(pc) < 128 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashPCSmallPCsDistinct(t *testing.T) {
	// A kernel's load PCs are small and consecutive; the 7-bit hash must not
	// collide for the first 128 PCs or the PDPT would conflate instructions.
	seen := map[uint8]uint32{}
	for pc := uint32(0); pc < 128; pc++ {
		h := HashPC(pc)
		if prev, ok := seen[h]; ok {
			t.Fatalf("HashPC collision: pc %d and %d both hash to %d", prev, pc, h)
		}
		seen[h] = pc
	}
}

func TestMapperAccessors(t *testing.T) {
	m := MustMapper(128, 32, HashIndex)
	if m.LineSize() != 128 {
		t.Errorf("LineSize = %d", m.LineSize())
	}
	if m.NumSets() != 32 {
		t.Errorf("NumSets = %d", m.NumSets())
	}
}
