// Package benchfmt defines the repository's machine-readable
// performance baseline (the BENCH_PR*.json documents): parsing `go test
// -bench` text output into one, serializing it, and gating a fresh
// measurement against a committed baseline. cmd/benchjson produces the
// documents; cmd/benchgate (and CI's benchmark-regression step) consume
// them.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iterations"`
	NsPerOp  float64 `json:"ns_op"`
	BytesOp  int64   `json:"bytes_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// Host fingerprints the machine class a baseline was measured on.
// Wall-clock numbers only compare meaningfully within one class;
// allocs/op are deterministic and compare across any pair of hosts.
type Host struct {
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GOARCH     string `json:"goarch"`
}

// CurrentHost fingerprints the running machine.
func CurrentHost() *Host {
	return &Host{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0), GOARCH: runtime.GOARCH}
}

func (h *Host) String() string {
	if h == nil {
		return "unrecorded"
	}
	return fmt.Sprintf("%d cpus, GOMAXPROCS %d, %s", h.NumCPU, h.GOMAXPROCS, h.GOARCH)
}

// Fingerprint returns a short filename-safe slug for the machine
// class, e.g. "amd64-16c16p". The per-host baseline ledger names its
// files after it (see BaselineFile), so each class gates against
// numbers measured on its own kind of machine.
func (h *Host) Fingerprint() string {
	if h == nil {
		return "unrecorded"
	}
	return fmt.Sprintf("%s-%dc%dp", h.GOARCH, h.NumCPU, h.GOMAXPROCS)
}

// BaselineFile returns the ledger path for the host class:
// dir/BENCH_<fingerprint>.json.
func BaselineFile(dir string, h *Host) string {
	return filepath.Join(dir, "BENCH_"+h.Fingerprint()+".json")
}

// FindBaseline loads the committed ledger entry matching h from dir
// and returns it with its path. A missing entry reports fs.ErrNotExist
// (test with errors.Is) so callers can tell "this host class has no
// committed baseline yet" from a damaged document; an entry whose
// recorded fingerprint disagrees with its own filename is an error —
// someone copied a baseline across machine classes, which is exactly
// what the ledger exists to prevent.
func FindBaseline(dir string, h *Host) (*Baseline, string, error) {
	path := BaselineFile(dir, h)
	b, err := ReadFile(path)
	if err != nil {
		return nil, path, err
	}
	if !HostMatches(b.Host, h) {
		return nil, path, fmt.Errorf("benchfmt: %s was recorded on %s, not on this host class (%s); re-run `make bench` here",
			path, b.Host, h)
	}
	return b, path, nil
}

// HostMatches reports whether two fingerprints describe the same
// machine class. A missing fingerprint on either side — notably
// baselines recorded before the field existed — never matches: the
// comparison's validity can't be established, so wall gates must not
// run on it.
func HostMatches(a, b *Host) bool {
	if a == nil || b == nil {
		return false
	}
	return *a == *b
}

// ScalingPoint is one point of the multi-core scaling curve: the wall
// time of a fixed reference workload at a given engine core count, and
// its speedup over the curve's cores=1 point.
type ScalingPoint struct {
	Cores       int     `json:"cores"`
	WallSeconds float64 `json:"wall_seconds"`
	Speedup     float64 `json:"speedup"`
}

// Baseline is the tracked performance document.
type Baseline struct {
	// SuiteWallSeconds is one serial (one-worker) pass over the paper's
	// full (application, scheme) grid — the headline perf number, taken
	// from the BenchmarkSuitePaperWall result.
	SuiteWallSeconds float64  `json:"suite_wall_seconds"`
	Benchmarks       []Result `json:"benchmarks"`
	// Scaling is the engine's multi-core scaling curve, derived from
	// the BenchmarkEngineScaling/cores=N sub-benchmarks in ascending
	// core order. Only meaningful for the core counts the measuring
	// host could actually run in parallel — CheckScaling consults
	// Host.NumCPU before judging a point.
	Scaling []ScalingPoint `json:"scaling,omitempty"`
	// Host is the fingerprint of the measuring machine, stamped by
	// cmd/benchjson; older documents lack it.
	Host *Host `json:"host,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkL1DAccess/DLP-8   8322818   144.1 ns/op   0 B/op   0 allocs/op
//
// The -N GOMAXPROCS suffix is optional (absent on single-CPU runs).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// Parse reads `go test -bench` text output and builds a Baseline. It
// returns an error when no benchmark line is found — an empty document
// would silently disable every downstream gate.
func Parse(r io.Reader) (*Baseline, error) {
	doc := &Baseline{Benchmarks: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		res := Result{Name: m[1]}
		res.Iters, _ = strconv.ParseInt(m[2], 10, 64)
		res.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			res.BytesOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			res.AllocsOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		doc.Benchmarks = append(doc.Benchmarks, res)
		if strings.HasPrefix(res.Name, "BenchmarkSuitePaperWall") {
			doc.SuiteWallSeconds = res.NsPerOp / 1e9
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchfmt: no benchmark lines found")
	}
	doc.Scaling = deriveScaling(doc.Benchmarks)
	return doc, nil
}

// scalingName extracts N from a "BenchmarkEngineScaling/cores=N" name;
// ok is false for every other benchmark.
func scalingName(name string) (cores int, ok bool) {
	const prefix = "BenchmarkEngineScaling/cores="
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	n, err := strconv.Atoi(name[len(prefix):])
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// deriveScaling builds the scaling curve from the
// BenchmarkEngineScaling/cores=N results. Speedups are relative to the
// curve's own cores=1 point; without one (or with fewer than two
// points) there is no curve.
func deriveScaling(benchmarks []Result) []ScalingPoint {
	var curve []ScalingPoint
	var base float64
	for _, r := range benchmarks {
		c, ok := scalingName(r.Name)
		if !ok {
			continue
		}
		if c == 1 {
			base = r.NsPerOp
		}
		curve = append(curve, ScalingPoint{Cores: c, WallSeconds: r.NsPerOp / 1e9})
	}
	if len(curve) < 2 || base <= 0 {
		return nil
	}
	sort.Slice(curve, func(i, j int) bool { return curve[i].Cores < curve[j].Cores })
	for i := range curve {
		if curve[i].WallSeconds > 0 {
			curve[i].Speedup = base / 1e9 / curve[i].WallSeconds
		}
	}
	return curve
}

// CheckScaling gates a baseline's multi-core scaling curve. Two
// properties are enforced, each only as far as the measuring host can
// testify:
//
//   - Monotonicity: adding cores must not slow the engine down. Checked
//     between consecutive points whose core counts the host could run
//     in true parallel (cores <= Host.NumCPU), with a 10% allowance for
//     scheduler noise. On a single-CPU host every parallel point is
//     excluded and the check is vacuous — honest, since no parallelism
//     was actually measured.
//
//   - Top speedup: the curve's highest-core point must reach at least
//     minTopSpeedup. Enforced only when the host has at least that many
//     CPUs; a smaller machine cannot measure the claim either way.
//
// A document with no curve passes (older baselines predate the field).
func CheckScaling(b *Baseline, minTopSpeedup float64) error {
	if len(b.Scaling) == 0 {
		return nil
	}
	ncpu := 0
	if b.Host != nil {
		ncpu = b.Host.NumCPU
	}
	prev := ScalingPoint{}
	have := false
	for _, p := range b.Scaling {
		if p.Cores > ncpu {
			continue
		}
		if have && p.Speedup < prev.Speedup*0.9 {
			return fmt.Errorf("benchfmt: scaling regressed between cores=%d (%.2fx) and cores=%d (%.2fx): more cores ran slower",
				prev.Cores, prev.Speedup, p.Cores, p.Speedup)
		}
		prev, have = p, true
	}
	top := b.Scaling[len(b.Scaling)-1]
	if ncpu >= top.Cores && top.Speedup < minTopSpeedup {
		return fmt.Errorf("benchfmt: cores=%d speedup is %.2fx, need >= %.1fx on a %d-CPU host",
			top.Cores, top.Speedup, minTopSpeedup, ncpu)
	}
	return nil
}

// Encode serializes the document the way the tracked files store it:
// indented JSON with a trailing newline, so diffs stay readable.
func (b *Baseline) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ReadFile loads a baseline document from disk.
func ReadFile(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return &b, nil
}

// RegressPct returns the percentage by which fresh regresses over base:
// positive means slower, negative means faster. A zero base can't be
// compared meaningfully, so it reports +Inf-free 0 only when fresh is
// also zero.
func RegressPct(base, fresh float64) float64 {
	if base == 0 {
		if fresh == 0 {
			return 0
		}
		return 100
	}
	return (fresh - base) / base * 100
}

// CheckWall gates a fresh measurement's suite wall time against the
// committed baseline: it returns an error when the fresh pass is more
// than maxPct percent slower. Only the headline wall number is gated —
// individual micro-benchmarks at smoke iteration counts are too noisy
// for a hard threshold and are reported by cmd/benchgate instead.
func CheckWall(base, fresh *Baseline, maxPct float64) error {
	if base.SuiteWallSeconds <= 0 {
		return fmt.Errorf("benchfmt: baseline has no suite_wall_seconds (did its bench run include BenchmarkSuitePaperWall?)")
	}
	if fresh.SuiteWallSeconds <= 0 {
		return fmt.Errorf("benchfmt: fresh measurement has no suite_wall_seconds (did the bench run include BenchmarkSuitePaperWall?)")
	}
	if pct := RegressPct(base.SuiteWallSeconds, fresh.SuiteWallSeconds); pct > maxPct {
		return fmt.Errorf("benchfmt: suite wall time regressed %.1f%% (%.1fs -> %.1fs, limit %.0f%%)",
			pct, base.SuiteWallSeconds, fresh.SuiteWallSeconds, maxPct)
	}
	return nil
}

// CheckAllocs gates fresh allocs/op against the baseline for every
// benchmark both documents carry. Allocation counts are deterministic
// for a given binary, so unlike wall time this gate holds across
// host-fingerprint mismatches; a 10% allowance absorbs benign noise
// from rare amortized growth, except that a 0 allocs/op baseline — the
// whole point of the zero-alloc hot paths — must stay exactly 0.
//
// The BenchmarkSuitePaperWall macro-benchmark is exempt: at its single
// iteration, allocs/op includes whatever once-per-process work (kernel
// generation and memoization) earlier benchmarks in the same run did
// or did not already absorb, so the number depends on which benchmarks
// ran alongside it, not on the code under test. It is gated by
// CheckWall instead.
func CheckAllocs(base, fresh *Baseline) error {
	baseByName := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseByName[r.Name] = r
	}
	for _, f := range fresh.Benchmarks {
		if strings.HasPrefix(f.Name, "BenchmarkSuitePaperWall") {
			continue
		}
		b, ok := baseByName[f.Name]
		if !ok {
			continue
		}
		limit := b.AllocsOp + b.AllocsOp/10
		if f.AllocsOp > limit {
			return fmt.Errorf("benchfmt: %s allocs/op regressed: %d -> %d (limit %d)",
				f.Name, b.AllocsOp, f.AllocsOp, limit)
		}
	}
	return nil
}
