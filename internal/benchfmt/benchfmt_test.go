package benchfmt

import (
	"errors"
	"io/fs"
	"os"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkFig10IPC-8             	   10000	    105000 ns/op	   51234 B/op	     420 allocs/op
BenchmarkL1DAccess/DLP-8        	 8322818	     144.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkSuitePaperWall         	       1	51200000000 ns/op	123456 B/op	 789 allocs/op
PASS
ok  	repro	60.0s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	if got := doc.Benchmarks[1]; got.Name != "BenchmarkL1DAccess/DLP" ||
		got.Iters != 8322818 || got.NsPerOp != 144.1 || got.BytesOp != 0 || got.AllocsOp != 0 {
		t.Errorf("sub-benchmark line parsed as %+v", got)
	}
	if doc.SuiteWallSeconds != 51.2 {
		t.Errorf("suite wall = %v s, want 51.2", doc.SuiteWallSeconds)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok repro 1.0s\n")); err == nil {
		t.Fatal("no benchmark lines accepted silently")
	}
}

func TestEncodeRoundTrips(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(raw), "\n") {
		t.Error("encoded document missing trailing newline")
	}
	path := t.TempDir() + "/bench.json"
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.SuiteWallSeconds != doc.SuiteWallSeconds || len(back.Benchmarks) != len(doc.Benchmarks) {
		t.Errorf("round trip changed the document: %+v vs %+v", back, doc)
	}
}

func TestRegressPct(t *testing.T) {
	for _, tc := range []struct {
		base, fresh, want float64
	}{
		{100, 115, 15},
		{100, 90, -10},
		{50, 50, 0},
		{0, 0, 0},
		{0, 1, 100},
	} {
		if got := RegressPct(tc.base, tc.fresh); got != tc.want {
			t.Errorf("RegressPct(%v, %v) = %v, want %v", tc.base, tc.fresh, got, tc.want)
		}
	}
}

func TestHostFingerprint(t *testing.T) {
	h := CurrentHost()
	if h.NumCPU < 1 || h.GOMAXPROCS < 1 || h.GOARCH == "" {
		t.Fatalf("CurrentHost() = %+v", h)
	}
	same := *h
	if !HostMatches(h, &same) {
		t.Error("identical fingerprints must match")
	}
	other := *h
	other.NumCPU++
	if HostMatches(h, &other) {
		t.Error("differing num_cpu must not match")
	}
	// A missing fingerprint on either side — e.g. a baseline recorded
	// before the field existed — can never be declared comparable.
	if HostMatches(nil, h) || HostMatches(h, nil) || HostMatches(nil, nil) {
		t.Error("nil fingerprints must not match")
	}
	if (*Host)(nil).String() != "unrecorded" {
		t.Error("nil Host must print as unrecorded")
	}
}

func TestHostSurvivesEncode(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Host != nil {
		t.Fatal("Parse must not invent a fingerprint; benchjson stamps it")
	}
	doc.Host = CurrentHost()
	raw, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"num_cpu"`) {
		t.Fatalf("encoded document missing host envelope:\n%s", raw)
	}
	path := t.TempDir() + "/bench.json"
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !HostMatches(doc.Host, back.Host) {
		t.Errorf("fingerprint changed in round trip: %+v vs %+v", doc.Host, back.Host)
	}
}

func TestCheckAllocs(t *testing.T) {
	base := &Baseline{Benchmarks: []Result{
		{Name: "BenchmarkHot", AllocsOp: 0},
		{Name: "BenchmarkWarm", AllocsOp: 100},
	}}
	ok := &Baseline{Benchmarks: []Result{
		{Name: "BenchmarkHot", AllocsOp: 0},
		{Name: "BenchmarkWarm", AllocsOp: 110}, // exactly at the 10% allowance
		{Name: "BenchmarkNew", AllocsOp: 9999}, // fresh-only: nothing to gate against
	}}
	if err := CheckAllocs(base, ok); err != nil {
		t.Errorf("within-allowance document failed: %v", err)
	}
	if err := CheckAllocs(base, &Baseline{Benchmarks: []Result{{Name: "BenchmarkWarm", AllocsOp: 111}}}); err == nil {
		t.Error("11% alloc regression passed the gate")
	}
	// The zero-alloc hot paths are the point: any alloc at all fails.
	if err := CheckAllocs(base, &Baseline{Benchmarks: []Result{{Name: "BenchmarkHot", AllocsOp: 1}}}); err == nil {
		t.Error("0 -> 1 allocs/op passed the gate")
	}
	// The wall macro-benchmark's allocs/op depends on which benchmarks
	// ran alongside it (one-time kernel memoization), so it is exempt
	// here and gated by CheckWall.
	wall := func(allocs int64) *Baseline {
		return &Baseline{Benchmarks: []Result{{Name: "BenchmarkSuitePaperWall", AllocsOp: allocs}}}
	}
	if err := CheckAllocs(wall(593328), wall(10574257)); err != nil {
		t.Errorf("SuitePaperWall allocs must be exempt: %v", err)
	}
}

func TestCheckWall(t *testing.T) {
	base := &Baseline{SuiteWallSeconds: 50}
	if err := CheckWall(base, &Baseline{SuiteWallSeconds: 57}, 15); err != nil {
		t.Errorf("14%% slower failed the 15%% gate: %v", err)
	}
	if err := CheckWall(base, &Baseline{SuiteWallSeconds: 40}, 15); err != nil {
		t.Errorf("a speedup failed the gate: %v", err)
	}
	if err := CheckWall(base, &Baseline{SuiteWallSeconds: 60}, 15); err == nil {
		t.Error("20%% regression passed the 15%% gate")
	}
	if err := CheckWall(&Baseline{}, base, 15); err == nil {
		t.Error("baseline without a wall number passed the gate")
	}
	if err := CheckWall(base, &Baseline{}, 15); err == nil {
		t.Error("fresh measurement without a wall number passed the gate")
	}
}

func TestLedgerFindBaseline(t *testing.T) {
	dir := t.TempDir()
	h := &Host{NumCPU: 16, GOMAXPROCS: 16, GOARCH: "amd64"}
	if fp := h.Fingerprint(); fp != "amd64-16c16p" {
		t.Fatalf("Fingerprint() = %q", fp)
	}
	if fp := (*Host)(nil).Fingerprint(); fp != "unrecorded" {
		t.Errorf("nil Fingerprint() = %q", fp)
	}

	// No entry for this class yet: the miss must be distinguishable
	// (fs.ErrNotExist) so the gate can fall back instead of failing.
	if _, path, err := FindBaseline(dir, h); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing entry: err = %v (path %s), want fs.ErrNotExist", err, path)
	}

	doc := &Baseline{SuiteWallSeconds: 42, Benchmarks: []Result{{Name: "BenchmarkHot"}}, Host: h}
	enc, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(BaselineFile(dir, h), enc, 0o644); err != nil {
		t.Fatal(err)
	}
	got, path, err := FindBaseline(dir, h)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, "BENCH_amd64-16c16p.json") {
		t.Errorf("ledger path = %s", path)
	}
	if got.SuiteWallSeconds != 42 || !HostMatches(got.Host, h) {
		t.Errorf("loaded entry = %+v", got)
	}

	// A document copied across machine classes (recorded fingerprint
	// disagrees with the filename's) must be an error, not a silent
	// wall gate against foreign numbers.
	other := *h
	other.NumCPU = 4
	if err := os.WriteFile(BaselineFile(dir, &other), enc, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := FindBaseline(dir, &other); err == nil || errors.Is(err, fs.ErrNotExist) {
		t.Errorf("cross-class copy: err = %v, want a fingerprint mismatch error", err)
	}
}

const scalingBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkEngineScaling/cores=1-8     	       2	 800000000 ns/op
BenchmarkEngineScaling/cores=2-8     	       3	 420000000 ns/op
BenchmarkEngineScaling/cores=4-8     	       5	 230000000 ns/op
BenchmarkEngineScaling/cores=8-8     	       8	 130000000 ns/op
BenchmarkSuitePaperWall              	       1	51200000000 ns/op
PASS
`

func TestParseDerivesScalingCurve(t *testing.T) {
	doc, err := Parse(strings.NewReader(scalingBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Scaling) != 4 {
		t.Fatalf("curve has %d points, want 4: %+v", len(doc.Scaling), doc.Scaling)
	}
	wantCores := []int{1, 2, 4, 8}
	wantSpeedup := []float64{1, 800.0 / 420, 800.0 / 230, 800.0 / 130}
	for i, p := range doc.Scaling {
		if p.Cores != wantCores[i] {
			t.Errorf("point %d: cores = %d, want %d", i, p.Cores, wantCores[i])
		}
		if diff := p.Speedup - wantSpeedup[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("point %d: speedup = %v, want %v", i, p.Speedup, wantSpeedup[i])
		}
	}
	if doc.Scaling[0].WallSeconds != 0.8 {
		t.Errorf("cores=1 wall = %v s, want 0.8", doc.Scaling[0].WallSeconds)
	}
}

func TestParseNoScalingWithoutSerialPoint(t *testing.T) {
	doc, err := Parse(strings.NewReader(`BenchmarkEngineScaling/cores=2-8 3 400000000 ns/op
BenchmarkEngineScaling/cores=4-8 5 200000000 ns/op
`))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Scaling != nil {
		t.Fatalf("curve derived without a cores=1 reference: %+v", doc.Scaling)
	}
}

func TestCheckScaling(t *testing.T) {
	curve := func(speedups ...float64) []ScalingPoint {
		cores := []int{1, 2, 4, 8}
		out := make([]ScalingPoint, len(speedups))
		for i, s := range speedups {
			out[i] = ScalingPoint{Cores: cores[i], WallSeconds: 1 / s, Speedup: s}
		}
		return out
	}
	host := func(ncpu int) *Host { return &Host{NumCPU: ncpu, GOMAXPROCS: ncpu, GOARCH: "amd64"} }

	// Healthy curve on a big host: passes the >= 3x top-speedup gate.
	ok := &Baseline{Scaling: curve(1, 1.9, 3.4, 5.8), Host: host(16)}
	if err := CheckScaling(ok, 3); err != nil {
		t.Errorf("healthy curve rejected: %v", err)
	}

	// Flat curve on a single-CPU host: every parallel point is beyond
	// the host's CPUs, so both gates are vacuous — the honest outcome.
	flat := &Baseline{Scaling: curve(1, 0.98, 0.97, 0.95), Host: host(1)}
	if err := CheckScaling(flat, 3); err != nil {
		t.Errorf("single-CPU host must not be gated on parallelism it cannot measure: %v", err)
	}

	// Same flat curve recorded on a 16-CPU host: fails the top gate.
	if err := CheckScaling(&Baseline{Scaling: curve(1, 0.98, 0.97, 0.95), Host: host(16)}, 3); err == nil {
		t.Error("flat curve on a 16-CPU host must fail the top-speedup gate")
	}

	// Non-monotonic curve within the host's CPUs: more cores ran
	// slower by more than the 10% allowance.
	if err := CheckScaling(&Baseline{Scaling: curve(1, 3.0, 2.0, 3.5), Host: host(16)}, 3); err == nil {
		t.Error("speedup collapse between cores=2 and cores=4 must fail monotonicity")
	}

	// Small dips inside the allowance pass.
	if err := CheckScaling(&Baseline{Scaling: curve(1, 2.0, 1.95, 3.2), Host: host(16)}, 3); err != nil {
		t.Errorf("a <10%% dip must pass: %v", err)
	}

	// Hosts smaller than the top point skip the top gate but still
	// check monotonicity over the points they could run.
	if err := CheckScaling(&Baseline{Scaling: curve(1, 0.4, 2.9, 2.9), Host: host(2)}, 3); err == nil {
		t.Error("cores=2 slower than cores=1 on a 2-CPU host must fail")
	}

	// No curve at all (older documents): passes.
	if err := CheckScaling(&Baseline{}, 3); err != nil {
		t.Errorf("curve-less baseline rejected: %v", err)
	}
}
