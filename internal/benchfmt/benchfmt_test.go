package benchfmt

import (
	"os"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkFig10IPC-8             	   10000	    105000 ns/op	   51234 B/op	     420 allocs/op
BenchmarkL1DAccess/DLP-8        	 8322818	     144.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkSuitePaperWall         	       1	51200000000 ns/op	123456 B/op	 789 allocs/op
PASS
ok  	repro	60.0s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	if got := doc.Benchmarks[1]; got.Name != "BenchmarkL1DAccess/DLP" ||
		got.Iters != 8322818 || got.NsPerOp != 144.1 || got.BytesOp != 0 || got.AllocsOp != 0 {
		t.Errorf("sub-benchmark line parsed as %+v", got)
	}
	if doc.SuiteWallSeconds != 51.2 {
		t.Errorf("suite wall = %v s, want 51.2", doc.SuiteWallSeconds)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok repro 1.0s\n")); err == nil {
		t.Fatal("no benchmark lines accepted silently")
	}
}

func TestEncodeRoundTrips(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(raw), "\n") {
		t.Error("encoded document missing trailing newline")
	}
	path := t.TempDir() + "/bench.json"
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.SuiteWallSeconds != doc.SuiteWallSeconds || len(back.Benchmarks) != len(doc.Benchmarks) {
		t.Errorf("round trip changed the document: %+v vs %+v", back, doc)
	}
}

func TestRegressPct(t *testing.T) {
	for _, tc := range []struct {
		base, fresh, want float64
	}{
		{100, 115, 15},
		{100, 90, -10},
		{50, 50, 0},
		{0, 0, 0},
		{0, 1, 100},
	} {
		if got := RegressPct(tc.base, tc.fresh); got != tc.want {
			t.Errorf("RegressPct(%v, %v) = %v, want %v", tc.base, tc.fresh, got, tc.want)
		}
	}
}

func TestCheckWall(t *testing.T) {
	base := &Baseline{SuiteWallSeconds: 50}
	if err := CheckWall(base, &Baseline{SuiteWallSeconds: 57}, 15); err != nil {
		t.Errorf("14%% slower failed the 15%% gate: %v", err)
	}
	if err := CheckWall(base, &Baseline{SuiteWallSeconds: 40}, 15); err != nil {
		t.Errorf("a speedup failed the gate: %v", err)
	}
	if err := CheckWall(base, &Baseline{SuiteWallSeconds: 60}, 15); err == nil {
		t.Error("20%% regression passed the 15%% gate")
	}
	if err := CheckWall(&Baseline{}, base, 15); err == nil {
		t.Error("baseline without a wall number passed the gate")
	}
	if err := CheckWall(base, &Baseline{}, 15); err == nil {
		t.Error("fresh measurement without a wall number passed the gate")
	}
}
