package cache

import "repro/internal/metrics"

// RegisterMetrics registers the MSHR's occupancy gauge under prefix
// (e.g. "sm3.l1d.mshr"). Registration only hands the registry a
// closure over an existing accessor; the allocate/merge/release hot
// path is untouched.
func (m *MSHR) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.IntGauge(prefix+".entries", m.Size)
}

// RegisterMetrics registers the queue-depth gauge under prefix.
func (q *FIFO) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.IntGauge(prefix+".depth", q.Len)
}
