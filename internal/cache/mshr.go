package cache

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/mem"
)

// MSHREntry tracks one outstanding line fetch and the requests merged
// onto it. Set/Way name the reserved tag-array slot the fill will land
// in; NoAllocate entries (bypass-adjacent merges) fill nothing.
type MSHREntry struct {
	LineAddr addr.Addr
	Set, Way int
	Requests []*mem.Request
}

// MSHR is the miss-status holding register file of one cache.
type MSHR struct {
	maxEntries int
	maxMerges  int
	entries    map[addr.Addr]*MSHREntry
	// freeEntries recycles released entries (and their merged-request
	// slices) so the steady-state miss path allocates nothing.
	freeEntries []*MSHREntry
}

// NewMSHR builds an MSHR file with maxEntries entries, each accepting up
// to maxMerges merged requests (including the original).
func NewMSHR(maxEntries, maxMerges int) *MSHR {
	if maxEntries <= 0 || maxMerges <= 0 {
		panic(fmt.Sprintf("cache: invalid MSHR geometry %d/%d", maxEntries, maxMerges))
	}
	return &MSHR{
		maxEntries: maxEntries,
		maxMerges:  maxMerges,
		entries:    make(map[addr.Addr]*MSHREntry, maxEntries),
	}
}

// Lookup returns the entry for lineAddr, or nil.
func (m *MSHR) Lookup(lineAddr addr.Addr) *MSHREntry {
	return m.entries[lineAddr]
}

// Full reports whether a new entry cannot be allocated.
func (m *MSHR) Full() bool { return len(m.entries) >= m.maxEntries }

// Size returns the number of live entries.
func (m *MSHR) Size() int { return len(m.entries) }

// CanMerge reports whether one more request fits in entry e.
func (m *MSHR) CanMerge(e *MSHREntry) bool { return len(e.Requests) < m.maxMerges }

// Merge appends req to entry e. The caller must have checked CanMerge.
func (m *MSHR) Merge(e *MSHREntry, req *mem.Request) {
	if !m.CanMerge(e) {
		panic("cache: MSHR merge beyond capacity")
	}
	e.Requests = append(e.Requests, req)
}

// Allocate creates a new entry for req's line, targeting (set, way) for
// the fill. The caller must have checked Full and Lookup.
func (m *MSHR) Allocate(req *mem.Request, set, way int) *MSHREntry {
	if m.Full() {
		panic("cache: MSHR allocate while full")
	}
	if _, exists := m.entries[req.Addr]; exists {
		panic(fmt.Sprintf("cache: duplicate MSHR entry for %#x", uint64(req.Addr)))
	}
	var e *MSHREntry
	if n := len(m.freeEntries); n > 0 {
		e = m.freeEntries[n-1]
		m.freeEntries[n-1] = nil
		m.freeEntries = m.freeEntries[:n-1]
	} else {
		e = &MSHREntry{Requests: make([]*mem.Request, 0, m.maxMerges)}
	}
	e.LineAddr = req.Addr
	e.Set = set
	e.Way = way
	e.Requests = append(e.Requests, req)
	m.entries[req.Addr] = e
	return e
}

// Release removes and returns the entry for lineAddr when its fill
// arrives. It returns nil if no entry exists (e.g. a bypass response).
// The caller must hand the entry back with Recycle once it has
// delivered the merged requests.
func (m *MSHR) Release(lineAddr addr.Addr) *MSHREntry {
	e := m.entries[lineAddr]
	if e != nil {
		delete(m.entries, lineAddr)
	}
	return e
}

// Recycle returns a released entry to the MSHR's free list. The entry's
// request references are dropped; the caller keeps ownership of the
// requests themselves.
func (m *MSHR) Recycle(e *MSHREntry) {
	if e == nil {
		return
	}
	for i := range e.Requests {
		e.Requests[i] = nil
	}
	e.Requests = e.Requests[:0]
	m.freeEntries = append(m.freeEntries, e)
}

// FIFO is a bounded request queue (the miss queue toward the
// interconnect, and response staging queues).
type FIFO struct {
	max   int
	items []*mem.Request
}

// NewFIFO builds a queue holding at most max requests; max <= 0 means
// unbounded.
func NewFIFO(max int) *FIFO { return &FIFO{max: max} }

// Full reports whether Push would fail.
func (q *FIFO) Full() bool { return q.max > 0 && len(q.items) >= q.max }

// Empty reports whether the queue holds nothing.
func (q *FIFO) Empty() bool { return len(q.items) == 0 }

// Len returns the queued count.
func (q *FIFO) Len() int { return len(q.items) }

// Push appends req; it reports false when the queue is full.
func (q *FIFO) Push(req *mem.Request) bool {
	if q.Full() {
		return false
	}
	q.items = append(q.items, req)
	return true
}

// Pop removes and returns the head, or nil when empty.
func (q *FIFO) Pop() *mem.Request {
	if len(q.items) == 0 {
		return nil
	}
	head := q.items[0]
	// Shift rather than re-slice so the backing array does not pin
	// popped requests alive.
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return head
}

// Peek returns the head without removing it, or nil when empty.
func (q *FIFO) Peek() *mem.Request {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}
