package cache

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/mem"
)

func req(id uint64, a addr.Addr) *mem.Request {
	return &mem.Request{ID: id, Addr: a}
}

func TestMSHRAllocateLookupRelease(t *testing.T) {
	m := NewMSHR(4, 8)
	r := req(1, 0x1000)
	e := m.Allocate(r, 3, 1)
	if e.Set != 3 || e.Way != 1 || len(e.Requests) != 1 {
		t.Errorf("entry = %+v", e)
	}
	if got := m.Lookup(0x1000); got != e {
		t.Error("Lookup did not find the entry")
	}
	if m.Size() != 1 {
		t.Errorf("Size = %d", m.Size())
	}
	rel := m.Release(0x1000)
	if rel != e {
		t.Error("Release returned wrong entry")
	}
	if m.Lookup(0x1000) != nil || m.Size() != 0 {
		t.Error("entry survived Release")
	}
	if m.Release(0x1000) != nil {
		t.Error("second Release returned an entry")
	}
}

func TestMSHRFull(t *testing.T) {
	m := NewMSHR(2, 8)
	m.Allocate(req(1, 0x1000), 0, 0)
	if m.Full() {
		t.Error("Full with one of two entries")
	}
	m.Allocate(req(2, 0x2000), 0, 1)
	if !m.Full() {
		t.Error("not Full with two of two entries")
	}
}

func TestMSHRMergeLimit(t *testing.T) {
	m := NewMSHR(4, 3)
	e := m.Allocate(req(1, 0x1000), 0, 0)
	if !m.CanMerge(e) {
		t.Fatal("cannot merge into fresh entry")
	}
	m.Merge(e, req(2, 0x1000))
	m.Merge(e, req(3, 0x1000))
	if m.CanMerge(e) {
		t.Error("CanMerge true at capacity 3")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Merge beyond capacity did not panic")
		}
	}()
	m.Merge(e, req(4, 0x1000))
}

func TestMSHRAllocatePanics(t *testing.T) {
	m := NewMSHR(1, 8)
	m.Allocate(req(1, 0x1000), 0, 0)
	t.Run("full", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("Allocate while full did not panic")
			}
		}()
		m.Allocate(req(2, 0x2000), 0, 1)
	})
	m2 := NewMSHR(4, 8)
	m2.Allocate(req(1, 0x1000), 0, 0)
	t.Run("duplicate", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate Allocate did not panic")
			}
		}()
		m2.Allocate(req(2, 0x1000), 0, 1)
	})
}

func TestNewMSHRPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0 entries")
		}
	}()
	NewMSHR(0, 1)
}

func TestFIFOOrderAndBounds(t *testing.T) {
	q := NewFIFO(2)
	if !q.Empty() || q.Full() || q.Len() != 0 {
		t.Error("fresh queue state wrong")
	}
	if q.Pop() != nil || q.Peek() != nil {
		t.Error("Pop/Peek of empty queue returned a request")
	}
	r1, r2, r3 := req(1, 0), req(2, 0), req(3, 0)
	if !q.Push(r1) || !q.Push(r2) {
		t.Fatal("pushes into empty queue failed")
	}
	if q.Push(r3) {
		t.Error("push into full queue succeeded")
	}
	if q.Peek() != r1 {
		t.Error("Peek != first pushed")
	}
	if q.Pop() != r1 || q.Pop() != r2 {
		t.Error("FIFO order violated")
	}
	if !q.Empty() {
		t.Error("queue not empty after draining")
	}
}

func TestFIFOUnbounded(t *testing.T) {
	q := NewFIFO(0)
	for i := 0; i < 1000; i++ {
		if !q.Push(req(uint64(i), 0)) {
			t.Fatalf("unbounded push %d failed", i)
		}
	}
	if q.Full() {
		t.Error("unbounded queue reports Full")
	}
	for i := 0; i < 1000; i++ {
		if got := q.Pop(); got == nil || got.ID != uint64(i) {
			t.Fatalf("pop %d = %v", i, got)
		}
	}
}
