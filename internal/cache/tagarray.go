// Package cache provides the mechanical pieces shared by every cache
// level of the simulator: a set-associative tag array with LRU state and
// line reservation, miss-status holding registers (MSHRs) with request
// merging, and a bounded miss queue. Policy decisions — victim
// eligibility, bypassing, protection — live in internal/core; this
// package only implements the machinery those policies drive.
package cache

import (
	"fmt"

	"repro/internal/addr"
)

// ProbeResult classifies a tag-array lookup.
type ProbeResult int

const (
	// ProbeMiss: no line in the set matches the tag.
	ProbeMiss ProbeResult = iota
	// ProbeHit: a valid line matches.
	ProbeHit
	// ProbeReserved: a line matches but is still being filled; the access
	// must merge into the MSHR entry for that line.
	ProbeReserved
)

// Line is one tag-array entry. InsnID and PL are the paper's DLP metadata
// (§4.1.1): the hashed PC of the instruction that brought in or last hit
// the line, and its remaining Protected Life.
type Line struct {
	Valid    bool
	Reserved bool // allocated to a pending fill; cannot be replaced
	Dirty    bool
	Tag      uint64
	LastUse  uint64 // LRU timestamp; larger is more recent
	InsnID   uint8
	PL       int
}

// TagArray is a set-associative tag array.
type TagArray struct {
	mapper *addr.Mapper
	ways   int
	sets   [][]Line
	clock  uint64
}

// NewTagArray builds a tag array over the given mapper with ways
// associativity.
func NewTagArray(m *addr.Mapper, ways int) *TagArray {
	if ways <= 0 {
		panic(fmt.Sprintf("cache: non-positive associativity %d", ways))
	}
	sets := make([][]Line, m.NumSets())
	backing := make([]Line, m.NumSets()*ways)
	for i := range sets {
		sets[i], backing = backing[:ways:ways], backing[ways:]
	}
	return &TagArray{mapper: m, ways: ways, sets: sets}
}

// Ways returns the associativity.
func (t *TagArray) Ways() int { return t.ways }

// NumSets returns the number of sets.
func (t *TagArray) NumSets() int { return len(t.sets) }

// Mapper returns the address mapper the array was built with.
func (t *TagArray) Mapper() *addr.Mapper { return t.mapper }

// Set returns the lines of set s for policy inspection and metadata
// updates (PL decrement, instruction-ID rewrites).
func (t *TagArray) Set(s int) []Line { return t.sets[s] }

// Probe looks up address a and returns its set, the matching way (or -1),
// and the probe classification.
func (t *TagArray) Probe(a addr.Addr) (set, way int, res ProbeResult) {
	set = t.mapper.Set(a)
	tag := t.mapper.Tag(a)
	for w := range t.sets[set] {
		ln := &t.sets[set][w]
		if ln.Tag != tag {
			continue
		}
		if ln.Valid {
			return set, w, ProbeHit
		}
		if ln.Reserved {
			return set, w, ProbeReserved
		}
	}
	return set, -1, ProbeMiss
}

// Touch marks (set, way) most recently used.
func (t *TagArray) Touch(set, way int) {
	t.clock++
	t.sets[set][way].LastUse = t.clock
}

// VictimIn selects a replacement victim in set. Invalid, unreserved ways
// are preferred; otherwise the LRU valid line for which eligible returns
// true. Reserved lines are never eligible. It returns -1 if no way
// qualifies. Passing a nil eligible accepts any valid line (plain LRU).
func (t *TagArray) VictimIn(set int, eligible func(*Line) bool) int {
	victim := -1
	var oldest uint64
	for w := range t.sets[set] {
		ln := &t.sets[set][w]
		if ln.Reserved {
			continue
		}
		if !ln.Valid {
			return w
		}
		if eligible != nil && !eligible(ln) {
			continue
		}
		if victim == -1 || ln.LastUse < oldest {
			victim = w
			oldest = ln.LastUse
		}
	}
	return victim
}

// Reserve evicts whatever occupies (set, way) and reserves the way for an
// incoming fill of address a. It returns a copy of the evicted line; the
// caller checks Valid to know whether a real eviction happened.
func (t *TagArray) Reserve(set, way int, a addr.Addr) Line {
	evicted := t.sets[set][way]
	if evicted.Reserved {
		panic(fmt.Sprintf("cache: reserving an already-reserved way %d in set %d", way, set))
	}
	t.clock++
	t.sets[set][way] = Line{
		Reserved: true,
		Tag:      t.mapper.Tag(a),
		LastUse:  t.clock,
	}
	return evicted
}

// Fill completes the pending fill on (set, way), making the line valid.
func (t *TagArray) Fill(set, way int) {
	ln := &t.sets[set][way]
	if !ln.Reserved {
		panic(fmt.Sprintf("cache: filling a non-reserved way %d in set %d", way, set))
	}
	ln.Reserved = false
	ln.Valid = true
	t.clock++
	ln.LastUse = t.clock
}

// Invalidate drops the line at (set, way) (write-evict stores).
func (t *TagArray) Invalidate(set, way int) {
	t.sets[set][way] = Line{}
}

// CountValid returns the number of valid lines in the whole array,
// used by invariants tests.
func (t *TagArray) CountValid() int {
	n := 0
	for s := range t.sets {
		for w := range t.sets[s] {
			if t.sets[s][w].Valid {
				n++
			}
		}
	}
	return n
}
