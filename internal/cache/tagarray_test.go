package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func newTA(t *testing.T, sets, ways int) *TagArray {
	t.Helper()
	return NewTagArray(addr.MustMapper(128, sets, addr.LinearIndex), ways)
}

func TestNewTagArrayPanicsOnBadWays(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0 ways")
		}
	}()
	NewTagArray(addr.MustMapper(128, 32, addr.LinearIndex), 0)
}

func TestProbeMissOnEmpty(t *testing.T) {
	ta := newTA(t, 32, 4)
	set, way, res := ta.Probe(0x1000)
	if res != ProbeMiss || way != -1 {
		t.Errorf("probe of empty array: set=%d way=%d res=%v", set, way, res)
	}
}

func TestReserveFillProbeCycle(t *testing.T) {
	ta := newTA(t, 32, 4)
	a := addr.Addr(0x2000)
	set, _, res := ta.Probe(a)
	if res != ProbeMiss {
		t.Fatalf("initial probe = %v", res)
	}
	way := ta.VictimIn(set, nil)
	if way < 0 {
		t.Fatal("no victim in empty set")
	}
	ev := ta.Reserve(set, way, a)
	if ev.Valid {
		t.Error("eviction reported from an empty way")
	}
	if _, w, res := ta.Probe(a); res != ProbeReserved || w != way {
		t.Errorf("probe while reserved: way=%d res=%v", w, res)
	}
	ta.Fill(set, way)
	if _, w, res := ta.Probe(a); res != ProbeHit || w != way {
		t.Errorf("probe after fill: way=%d res=%v", w, res)
	}
}

func TestLRUVictimSelection(t *testing.T) {
	ta := newTA(t, 2, 2)
	// Two addresses in set 0 (sets=2, line=128: set = line id % 2).
	a0, a1, a2 := addr.Addr(0), addr.Addr(2*128), addr.Addr(4*128)
	for _, a := range []addr.Addr{a0, a1} {
		set, _, _ := ta.Probe(a)
		w := ta.VictimIn(set, nil)
		ta.Reserve(set, w, a)
		ta.Fill(set, w)
	}
	// Touch a0 so a1 becomes LRU.
	set, w, res := ta.Probe(a0)
	if res != ProbeHit {
		t.Fatal("a0 not resident")
	}
	ta.Touch(set, w)
	victim := ta.VictimIn(set, nil)
	ev := ta.Reserve(set, victim, a2)
	if !ev.Valid || ev.Tag != ta.Mapper().Tag(a1) {
		t.Errorf("evicted tag %#x, want a1's tag %#x", ev.Tag, ta.Mapper().Tag(a1))
	}
}

func TestVictimEligibilityFilter(t *testing.T) {
	ta := newTA(t, 2, 2)
	a0, a1 := addr.Addr(0), addr.Addr(2*128)
	for _, a := range []addr.Addr{a0, a1} {
		set, _, _ := ta.Probe(a)
		w := ta.VictimIn(set, nil)
		ta.Reserve(set, w, a)
		ta.Fill(set, w)
	}
	set := ta.Mapper().Set(a0)
	// Protect every line: no victim available.
	for w := range ta.Set(set) {
		ta.Set(set)[w].PL = 3
	}
	if v := ta.VictimIn(set, func(l *Line) bool { return l.PL == 0 }); v != -1 {
		t.Errorf("victim %d found although all lines protected", v)
	}
	// Release one line: it must be chosen regardless of LRU order.
	ta.Set(set)[1].PL = 0
	if v := ta.VictimIn(set, func(l *Line) bool { return l.PL == 0 }); v != 1 {
		t.Errorf("victim = %d, want the only unprotected way 1", v)
	}
}

func TestReservedLinesNeverVictims(t *testing.T) {
	ta := newTA(t, 2, 2)
	set := 0
	ta.Reserve(set, 0, addr.Addr(0))
	ta.Reserve(set, 1, addr.Addr(2*128))
	if v := ta.VictimIn(set, nil); v != -1 {
		t.Errorf("victim %d found in a fully reserved set", v)
	}
}

func TestReservePanicsOnReservedWay(t *testing.T) {
	ta := newTA(t, 2, 2)
	ta.Reserve(0, 0, addr.Addr(0))
	defer func() {
		if recover() == nil {
			t.Fatal("double reserve did not panic")
		}
	}()
	ta.Reserve(0, 0, addr.Addr(2*128))
}

func TestFillPanicsOnUnreservedWay(t *testing.T) {
	ta := newTA(t, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("fill of unreserved way did not panic")
		}
	}()
	ta.Fill(0, 0)
}

func TestInvalidate(t *testing.T) {
	ta := newTA(t, 2, 2)
	a := addr.Addr(0)
	set, _, _ := ta.Probe(a)
	w := ta.VictimIn(set, nil)
	ta.Reserve(set, w, a)
	ta.Fill(set, w)
	ta.Invalidate(set, w)
	if _, _, res := ta.Probe(a); res != ProbeMiss {
		t.Errorf("probe after invalidate = %v", res)
	}
	if ta.CountValid() != 0 {
		t.Errorf("CountValid = %d after invalidate", ta.CountValid())
	}
}

// TestNoDuplicateLines drives random fills through the array and checks
// the core invariant: a line address is resident in at most one way, and
// probing any previously filled (and not since evicted) address hits.
func TestNoDuplicateLines(t *testing.T) {
	f := func(seeds []uint16) bool {
		ta := NewTagArray(addr.MustMapper(128, 4, addr.LinearIndex), 4)
		resident := map[uint64]bool{} // tag -> resident?
		for _, s := range seeds {
			a := addr.Addr(uint64(s%64) * 128)
			set, _, res := ta.Probe(a)
			switch res {
			case ProbeHit:
				if !resident[ta.Mapper().Tag(a)] {
					return false // hit on something we never filled
				}
				continue
			case ProbeReserved:
				continue
			}
			w := ta.VictimIn(set, nil)
			if w < 0 {
				continue
			}
			ev := ta.Reserve(set, w, a)
			if ev.Valid {
				delete(resident, ev.Tag)
			}
			ta.Fill(set, w)
			resident[ta.Mapper().Tag(a)] = true
		}
		// Every resident tag must be found in exactly one way.
		found := map[uint64]int{}
		for s := 0; s < ta.NumSets(); s++ {
			for _, ln := range ta.Set(s) {
				if ln.Valid {
					found[ln.Tag]++
				}
			}
		}
		if len(found) != len(resident) {
			return false
		}
		for tag, n := range found {
			if n != 1 || !resident[tag] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
