// Package cli holds behavior shared by the command-line tools: the
// process exit-code convention and the -metrics/-trace output plumbing.
//
// Exit codes:
//
//	0    success
//	1    simulation or tool failure (including partial KeepGoing suites)
//	130  interrupted (Ctrl-C / SIGINT; 128+2, the shell convention)
//
// Interruption is detected through the error chain: a batch stopped by
// signal.NotifyContext surfaces as a *runner.CancelError (or a bare
// context error) wrapping context.Canceled.
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"

	"repro/internal/metrics"
	"repro/internal/runner"
)

// ResolveCores maps a -cores flag value to an effective core count.
// 0 means "auto": use every CPU the scheduler will actually grant —
// min(NumCPU, GOMAXPROCS), never below 1. Positive values pass through
// unchanged (the engine clamps to its component count); negative
// values are an error. Shared by every command exposing -cores so
// "auto" means the same thing everywhere.
func ResolveCores(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("-cores %d: must be >= 0 (0 = auto)", n)
	}
	if n > 0 {
		return n, nil
	}
	c := runtime.NumCPU()
	if p := runtime.GOMAXPROCS(0); p < c {
		c = p
	}
	if c < 1 {
		c = 1
	}
	return c, nil
}

// ExitInterrupted is the exit status after Ctrl-C (128 + SIGINT).
const ExitInterrupted = 130

// ExitFailure is the exit status for any non-interrupt failure.
const ExitFailure = 1

// ExitCode maps an error to the process exit status. A nil error is 0;
// cancellation (a *runner.CancelError or any error wrapping
// context.Canceled) is ExitInterrupted; everything else — simulation
// failures, invariant violations, timeouts, partial KeepGoing batches —
// is ExitFailure.
func ExitCode(err error) int {
	if err == nil {
		return 0
	}
	if errors.Is(err, context.Canceled) {
		return ExitInterrupted
	}
	var ce *runner.CancelError
	if errors.As(err, &ce) && errors.Is(ce.Err, context.Canceled) {
		return ExitInterrupted
	}
	return ExitFailure
}

// Observability owns the files behind the -metrics and -trace flags:
// it opens them up front (so flag typos fail before hours of
// simulation), hands out the sink and tracer, and flushes both on
// Close. Either path may be empty; the corresponding accessor then
// returns nil and the CLI runs exactly as before.
type Observability struct {
	metricsFile *os.File
	sink        *metrics.JSONLSink
	traceFile   *os.File
	tracer      *runner.JobTracer
	closed      bool
}

// OpenObservability opens the requested output files. cache may be nil;
// when set, the tracer samples its hit/miss counters into the trace.
func OpenObservability(metricsPath, tracePath string, cache *runner.Cache) (*Observability, error) {
	o := &Observability{}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return nil, err
		}
		o.metricsFile = f
		o.sink = metrics.NewJSONLSink(f)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			if o.metricsFile != nil {
				o.metricsFile.Close()
			}
			return nil, err
		}
		o.traceFile = f
		o.tracer = runner.NewJobTracer(cache)
	}
	return o, nil
}

// Sink returns the metrics sink, or nil when -metrics was not given.
// The untyped nil matters: assigning a typed nil *JSONLSink into a
// metrics.Sink interface would read as "enabled" downstream.
func (o *Observability) Sink() metrics.Sink {
	if o == nil || o.sink == nil {
		return nil
	}
	return o.sink
}

// Tracer returns the job tracer, or nil when -trace was not given.
func (o *Observability) Tracer() *runner.JobTracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Events wraps next with trace recording when tracing is on; otherwise
// it returns next unchanged.
func (o *Observability) Events(next runner.Events) runner.Events {
	if t := o.Tracer(); t != nil {
		return t.Wrap(next)
	}
	return next
}

// Close flushes the metrics stream and writes the trace file. It is
// idempotent, so CLIs can both defer it and call it explicitly before
// os.Exit (deferred calls never run past os.Exit).
func (o *Observability) Close() error {
	if o == nil || o.closed {
		return nil
	}
	o.closed = true
	var firstErr error
	if o.sink != nil {
		if err := o.sink.Flush(); err != nil {
			firstErr = err
		}
		if err := o.metricsFile.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if o.tracer != nil {
		if err := o.tracer.WriteJSON(o.traceFile); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := o.traceFile.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
