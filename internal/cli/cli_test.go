package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/metrics"
	"repro/internal/runner"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, 0},
		{"plain failure", errors.New("boom"), ExitFailure},
		{"wrapped failure", fmt.Errorf("suite: %w", errors.New("boom")), ExitFailure},
		{"bare canceled", context.Canceled, ExitInterrupted},
		{"wrapped canceled", fmt.Errorf("aborted: %w", context.Canceled), ExitInterrupted},
		{"cancel error", &runner.CancelError{Done: 3, Queued: 2, Total: 9, Err: context.Canceled}, ExitInterrupted},
		{"wrapped cancel error", fmt.Errorf("suite: %w",
			&runner.CancelError{Done: 0, Queued: 9, Total: 9, Err: context.Canceled}), ExitInterrupted},
		// A deadline is a failure, not an interrupt: nobody pressed ^C.
		{"deadline", context.DeadlineExceeded, ExitFailure},
		{"cancel error deadline", &runner.CancelError{Err: context.DeadlineExceeded}, ExitFailure},
		{"batch error", &runner.BatchError{Failures: []runner.JobFailure{{Index: 1, Err: errors.New("x")}}, Total: 2}, ExitFailure},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("%s: ExitCode = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestObservabilityLifecycle(t *testing.T) {
	dir := t.TempDir()
	mPath := filepath.Join(dir, "m.jsonl")
	tPath := filepath.Join(dir, "t.json")
	o, err := OpenObservability(mPath, tPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.Sink() == nil || o.Tracer() == nil {
		t.Fatal("sink/tracer must be non-nil when both paths are set")
	}
	o.Sink().Begin("s", []string{"a"})
	o.Sink().Row("s", 64, []uint64{1})
	ev := o.Events(nil)
	ev(runner.Event{Kind: runner.JobQueued, Index: 0, Label: "j"})
	ev(runner.Event{Kind: runner.JobStarted, Index: 0, Label: "j"})
	ev(runner.Event{Kind: runner.JobDone, Index: 0, Label: "j", Cycles: 42})
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	mf, err := os.Open(mPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	ss, err := metrics.ReadJSONL(mf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Series["s"].Rows) != 1 {
		t.Fatalf("rows = %v", ss.Series["s"].Rows)
	}
	tf, err := os.Open(tPath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	if _, err := metrics.ReadChromeTrace(tf); err != nil {
		t.Fatal(err)
	}
}

func TestObservabilityDisabled(t *testing.T) {
	o, err := OpenObservability("", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.Sink() != nil {
		t.Fatal("Sink() must be untyped nil when -metrics is off")
	}
	if o.Tracer() != nil {
		t.Fatal("Tracer() must be nil when -trace is off")
	}
	called := false
	next := runner.Events(func(runner.Event) { called = true })
	o.Events(next)(runner.Event{})
	if !called {
		t.Fatal("Events must pass through when tracing is off")
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	// A nil *Observability is inert, for error paths before Open.
	var nilO *Observability
	if nilO.Sink() != nil || nilO.Tracer() != nil || nilO.Close() != nil {
		t.Fatal("nil Observability must be inert")
	}
}

func TestOpenObservabilityBadPath(t *testing.T) {
	if _, err := OpenObservability(filepath.Join(t.TempDir(), "no/such/dir/m.jsonl"), "", nil); err == nil {
		t.Fatal("expected error for unwritable metrics path")
	}
	if _, err := OpenObservability("", filepath.Join(t.TempDir(), "no/such/dir/t.json"), nil); err == nil {
		t.Fatal("expected error for unwritable trace path")
	}
}

func TestResolveCores(t *testing.T) {
	// Positive values pass through untouched.
	for _, n := range []int{1, 3, 64} {
		got, err := ResolveCores(n)
		if err != nil || got != n {
			t.Errorf("ResolveCores(%d) = %d, %v; want %d, nil", n, got, err, n)
		}
	}
	// Negative is a flag error, not a silent clamp.
	if _, err := ResolveCores(-1); err == nil {
		t.Error("ResolveCores(-1) accepted")
	}
	// 0 = auto: every CPU the scheduler will grant, never below 1.
	got, err := ResolveCores(0)
	if err != nil {
		t.Fatal(err)
	}
	want := runtime.NumCPU()
	if p := runtime.GOMAXPROCS(0); p < want {
		want = p
	}
	if want < 1 {
		want = 1
	}
	if got != want {
		t.Errorf("ResolveCores(0) = %d, want %d (min of NumCPU and GOMAXPROCS)", got, want)
	}
}
