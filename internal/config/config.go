// Package config describes simulated GPU hardware configurations.
//
// The baseline configuration reproduces Table 1 of the paper: a Tesla
// M2090-like Fermi GPU with 16 SMs, dual GTO warp schedulers, and a 16KB
// 32-set 4-way hash-indexed L1 data cache per SM. Variants double or
// quadruple the L1D associativity (32KB / 64KB) while holding everything
// else fixed, matching the paper's Figure 4/5 sensitivity study.
package config

import "fmt"

// Policy names the L1D management scheme under evaluation. The value is
// the display name used in the paper's figures; the set of valid values
// is defined by the internal/policy registry rather than a closed enum,
// so new schemes register themselves without touching this package.
type Policy string

const (
	// PolicyBaseline is stall-and-retry LRU, the unmodified L1D.
	PolicyBaseline Policy = "Baseline"
	// PolicyStallBypass bypasses the L1D whenever the access would stall.
	PolicyStallBypass Policy = "Stall-Bypass"
	// PolicyGlobalProtection applies one protection distance to all lines
	// (the PDP scheme of Duong et al. adapted to the GPU L1D).
	PolicyGlobalProtection Policy = "Global-Protection"
	// PolicyDLP is the paper's contribution: per-instruction protection
	// distances with VTA-informed prediction and protected-set bypassing.
	PolicyDLP Policy = "DLP"
	// PolicyATA admits only lines with demonstrated reuse in an
	// aggregated tag array, bypassing every first touch (after the
	// ATA-Cache shared-L1 contention-mitigation scheme).
	PolicyATA Policy = "ATA"
	// PolicyCCWS protects lines whose victim-tag-array entry shows lost
	// intra-warp locality, with a cycles-vs-accesses lifetime toggle
	// (a cache-side rendition of the CCWS locality detector).
	PolicyCCWS Policy = "CCWS-lite"
	// PolicyReusePredictor predicts per-instruction line deadness online
	// from the VTA/TDA reuse signals and bypasses predicted-dead fills.
	PolicyReusePredictor Policy = "ReusePredictor"
)

// String returns the name used in the paper's figures.
func (p Policy) String() string { return string(p) }

// SchedPolicy selects the warp scheduling algorithm.
type SchedPolicy int

const (
	// SchedGTO is greedy-then-oldest (Table 1's policy): keep issuing
	// from the last warp until it stalls, then pick the oldest ready.
	SchedGTO SchedPolicy = iota
	// SchedLRR is loose round-robin: rotate through ready warps.
	SchedLRR
)

// String names the policy as GPGPU-Sim does.
func (s SchedPolicy) String() string {
	switch s {
	case SchedGTO:
		return "GTO"
	case SchedLRR:
		return "LRR"
	default:
		return fmt.Sprintf("SchedPolicy(%d)", int(s))
	}
}

// CacheGeom describes one cache level's geometry.
type CacheGeom struct {
	Sets     int  // number of sets
	Ways     int  // associativity
	LineSize int  // bytes per line
	Hashed   bool // hashed (true) or linear (false) set index
}

// SizeBytes returns the data capacity of the cache.
func (g CacheGeom) SizeBytes() int { return g.Sets * g.Ways * g.LineSize }

// Lines returns the total number of lines.
func (g CacheGeom) Lines() int { return g.Sets * g.Ways }

// Config is a full simulated-GPU configuration (Table 1).
type Config struct {
	Name string

	// Core organization.
	NumSMs          int // streaming multiprocessors
	WarpSize        int // threads per warp
	MaxWarpsPerSM   int // concurrent warps resident on one SM
	SchedulersPerSM int // warp schedulers issuing per cycle

	// MaxActiveWarps caps how many of the oldest resident warps the
	// schedulers may issue from (CCWS-style static throttling, an
	// extension in the spirit of the paper's related work [6, 24]).
	// Zero means no throttling.
	MaxActiveWarps int

	// Scheduler selects the warp scheduling policy (Table 1: GTO).
	Scheduler SchedPolicy

	// L1 data cache.
	L1D           CacheGeom
	L1DMSHRs      int // miss-status holding registers per L1D
	L1DMSHRMerges int // max requests merged into one MSHR entry
	L1DMissQueue  int // outstanding miss-queue slots toward the ICNT
	L1DHitLatency int // cycles from probe to response on a hit

	// Interconnect.
	ICNTLatency        int // core cycles of one-way latency
	ICNTFlitBytes      int // bytes carried per flit
	ICNTBandwidthFlits int // flits accepted per ICNT cycle in each direction

	// Memory side.
	NumPartitions int       // memory partitions, each with an L2 slice + DRAM channel
	L2            CacheGeom // geometry of one L2 partition slice
	L2MSHRs       int
	L2MissQueue   int
	L2HitLatency  int
	DRAMBanks     int // banks per partition
	DRAMRowHit    int // memory-clock cycles for a row-buffer hit
	DRAMRowMiss   int // memory-clock cycles for activate+precharge+access
	DRAMBusCycles int // memory-clock cycles the data bus is busy per line

	// Clock domains, in MHz (Table 1: 650/650/924).
	CoreClockMHz int
	ICNTClockMHz int
	MemClockMHz  int

	// DLP / Global-Protection parameters (§4).
	VTAWays        int // VTA associativity (paper: equal to L1D ways)
	PDPTEntries    int // protection-distance prediction table size
	PDBits         int // width of the PD / protected-life field
	SampleAccesses int // cache accesses per sampling period (paper: 200)
	SampleInsnCap  int // instruction-count cap that force-closes a sample

	// Extension-scheme parameters (see internal/policy for the schemes).
	ATAWays              int  // ATA: aggregated tag array associativity per set
	CCWSByCycles         bool // CCWS-lite: protect by cycle deadline instead of access count
	CCWSProtectCycles    int  // CCWS-lite: protection lifetime in cycles (cycles mode)
	CCWSProtectAccesses  int  // CCWS-lite: protection lifetime in set queries (accesses mode)
	PredictorDeadPeriods int  // ReusePredictor: reuse-free periods before an insn is dead
}

// MaxPD returns the saturation value of the PD/PL field.
func (c *Config) MaxPD() int { return 1<<c.PDBits - 1 }

// Error reports one structurally invalid configuration field. It is a
// typed error — not a panic in the component constructor — so callers
// that generate configurations mechanically (the conformance fuzzer,
// corpus loaders, future RPC frontends) can recognize a rejected
// geometry and move on instead of tearing down the process.
type Error struct {
	Config string // Config.Name
	Field  string // dotted field path, e.g. "L1D.Ways"
	Detail string // what a valid value looks like
}

func (e *Error) Error() string {
	return fmt.Sprintf("config %q: %s %s", e.Config, e.Field, e.Detail)
}

// Caps beyond which a geometry is rejected as implausible rather than
// simulated. They exist for mechanically generated configurations: a
// fuzzer mutating a field to 1<<40 must get a typed error back, not an
// allocation the size of the host's RAM.
const (
	maxComponentCount = 1 << 12 // SMs, partitions, banks, schedulers
	maxGeometryDim    = 1 << 20 // sets, ways, MSHRs, queue depths, table entries
	maxLineSize       = 1 << 12 // bytes per cache line
)

// Validate reports the first structural problem with the configuration
// as a typed *Error. Every field a component constructor consumes is
// covered here, so an engine built from a validated Config never
// panics on geometry: the dram/interconnect/cache constructors' panic
// guards are unreachable from this package's callers.
func (c *Config) Validate() error {
	pow2 := func(v int) bool { return v > 0 && v&(v-1) == 0 }
	checks := []struct {
		ok    bool
		field string
		msg   string
	}{
		{c.NumSMs > 0 && c.NumSMs <= maxComponentCount, "NumSMs", "must be in 1..4096"},
		{c.WarpSize > 0 && c.WarpSize <= 1024, "WarpSize", "must be in 1..1024"},
		{c.MaxWarpsPerSM > 0 && c.MaxWarpsPerSM <= maxGeometryDim, "MaxWarpsPerSM", "must be positive"},
		{c.SchedulersPerSM > 0 && c.SchedulersPerSM <= maxComponentCount, "SchedulersPerSM", "must be positive"},
		{c.MaxActiveWarps >= 0, "MaxActiveWarps", "must be non-negative"},
		{pow2(c.L1D.Sets) && c.L1D.Sets <= maxGeometryDim, "L1D.Sets", "must be a power of two"},
		{c.L1D.Ways > 0 && c.L1D.Ways <= maxGeometryDim, "L1D.Ways", "must be positive"},
		{pow2(c.L1D.LineSize) && c.L1D.LineSize <= maxLineSize, "L1D.LineSize", "must be a power of two"},
		{c.L1DMSHRs > 0 && c.L1DMSHRs <= maxGeometryDim, "L1DMSHRs", "must be positive"},
		{c.L1DMSHRMerges > 0 && c.L1DMSHRMerges <= maxGeometryDim, "L1DMSHRMerges", "must be positive"},
		{c.L1DMissQueue > 0 && c.L1DMissQueue <= maxGeometryDim, "L1DMissQueue", "must be positive"},
		{c.L1DHitLatency > 0 && c.L1DHitLatency <= maxGeometryDim, "L1DHitLatency", "must be positive"},
		{c.ICNTLatency >= 0 && c.ICNTLatency <= maxGeometryDim, "ICNTLatency", "must be non-negative"},
		{c.NumPartitions > 0 && c.NumPartitions <= maxComponentCount, "NumPartitions", "must be positive"},
		{pow2(c.L2.Sets) && c.L2.Sets <= maxGeometryDim, "L2.Sets", "must be a power of two"},
		{c.L2.Ways > 0 && c.L2.Ways <= maxGeometryDim, "L2.Ways", "must be positive"},
		{c.L2.LineSize == c.L1D.LineSize, "L2.LineSize", "must match L1D line size"},
		{c.L2MSHRs > 0 && c.L2MSHRs <= maxGeometryDim, "L2MSHRs", "must be positive"},
		{c.L2MissQueue > 0 && c.L2MissQueue <= maxGeometryDim, "L2MissQueue", "must be positive"},
		{c.L2HitLatency > 0 && c.L2HitLatency <= maxGeometryDim, "L2HitLatency", "must be positive"},
		{c.DRAMBanks > 0 && c.DRAMBanks <= maxComponentCount, "DRAMBanks", "must be positive"},
		{c.DRAMRowHit > 0 && c.DRAMRowHit <= maxGeometryDim, "DRAMRowHit", "must be positive"},
		{c.DRAMRowMiss > 0 && c.DRAMRowMiss <= maxGeometryDim, "DRAMRowMiss", "must be positive"},
		{c.DRAMBusCycles > 0 && c.DRAMBusCycles <= maxGeometryDim, "DRAMBusCycles", "must be positive"},
		{c.CoreClockMHz > 0, "CoreClockMHz", "must be positive"},
		{c.ICNTClockMHz > 0, "ICNTClockMHz", "must be positive"},
		{c.MemClockMHz > 0, "MemClockMHz", "must be positive"},
		{c.VTAWays > 0 && c.VTAWays <= maxGeometryDim, "VTAWays", "must be positive"},
		{c.PDPTEntries > 0 && c.PDPTEntries <= maxGeometryDim, "PDPTEntries", "must be positive"},
		{c.PDBits > 0 && c.PDBits <= 16, "PDBits", "must be in 1..16"},
		{c.SampleAccesses > 0, "SampleAccesses", "must be positive"},
		{c.SampleInsnCap > 0, "SampleInsnCap", "must be positive"},
		{c.ATAWays > 0 && c.ATAWays <= maxGeometryDim, "ATAWays", "must be positive"},
		{c.CCWSProtectCycles > 0, "CCWSProtectCycles", "must be positive"},
		{c.CCWSProtectAccesses > 0, "CCWSProtectAccesses", "must be positive"},
		{c.PredictorDeadPeriods > 0, "PredictorDeadPeriods", "must be positive"},
		{c.ICNTBandwidthFlits > 0 && c.ICNTBandwidthFlits <= maxGeometryDim, "ICNTBandwidthFlits", "must be positive"},
		{c.ICNTFlitBytes > 0 && c.ICNTFlitBytes <= maxLineSize, "ICNTFlitBytes", "must be positive"},
	}
	for _, ch := range checks {
		if !ch.ok {
			return &Error{Config: c.Name, Field: ch.field, Detail: ch.msg}
		}
	}
	return nil
}

// Baseline returns the Table 1 configuration: 16KB 32-set 4-way L1D.
func Baseline() *Config {
	return &Config{
		Name:            "16KB(Baseline)",
		NumSMs:          16,
		WarpSize:        32,
		MaxWarpsPerSM:   48,
		SchedulersPerSM: 2,

		L1D:           CacheGeom{Sets: 32, Ways: 4, LineSize: 128, Hashed: true},
		L1DMSHRs:      32,
		L1DMSHRMerges: 8,
		L1DMissQueue:  8,
		L1DHitLatency: 1,

		ICNTLatency:        12,
		ICNTFlitBytes:      32,
		ICNTBandwidthFlits: 16,

		NumPartitions: 12,
		L2:            CacheGeom{Sets: 64, Ways: 8, LineSize: 128, Hashed: false},
		L2MSHRs:       32,
		L2MissQueue:   16,
		L2HitLatency:  10,
		DRAMBanks:     6,
		DRAMRowHit:    16,
		DRAMRowMiss:   32,
		DRAMBusCycles: 4,

		CoreClockMHz: 650,
		ICNTClockMHz: 650,
		MemClockMHz:  924,

		VTAWays:        4,
		PDPTEntries:    128,
		PDBits:         4,
		SampleAccesses: 200,
		SampleInsnCap:  20000,

		ATAWays:              16,
		CCWSProtectCycles:    2000,
		CCWSProtectAccesses:  8,
		PredictorDeadPeriods: 2,
	}
}

// L1D32KB doubles the L1D associativity (32KB, 8-way), everything else
// unchanged, matching the paper's "32KB L1D cache" comparator.
func L1D32KB() *Config {
	c := Baseline()
	c.Name = "32KB"
	c.L1D.Ways = 8
	c.VTAWays = 8
	return c
}

// L1D64KB quadruples the L1D associativity (64KB, 16-way), used only in
// the Figure 4/5 sensitivity study.
func L1D64KB() *Config {
	c := Baseline()
	c.Name = "64KB"
	c.L1D.Ways = 16
	c.VTAWays = 16
	return c
}

// ByL1DSize returns the configuration for a given L1D capacity in KB
// (16, 32 or 64).
func ByL1DSize(kb int) (*Config, error) {
	switch kb {
	case 16:
		return Baseline(), nil
	case 32:
		return L1D32KB(), nil
	case 64:
		return L1D64KB(), nil
	default:
		return nil, fmt.Errorf("config: no preset for %dKB L1D", kb)
	}
}
