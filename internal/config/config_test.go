package config

import (
	"errors"
	"testing"
)

func TestBaselineMatchesTable1(t *testing.T) {
	c := Baseline()
	if err := c.Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	if c.NumSMs != 16 {
		t.Errorf("NumSMs = %d, want 16", c.NumSMs)
	}
	if c.WarpSize != 32 {
		t.Errorf("WarpSize = %d, want 32", c.WarpSize)
	}
	if c.MaxWarpsPerSM != 48 {
		t.Errorf("MaxWarpsPerSM = %d, want 48", c.MaxWarpsPerSM)
	}
	if c.SchedulersPerSM != 2 {
		t.Errorf("SchedulersPerSM = %d, want 2", c.SchedulersPerSM)
	}
	if got := c.L1D.SizeBytes(); got != 16*1024 {
		t.Errorf("L1D size = %d, want 16384", got)
	}
	if c.L1D.Sets != 32 || c.L1D.Ways != 4 {
		t.Errorf("L1D geometry = %d sets x %d ways, want 32x4", c.L1D.Sets, c.L1D.Ways)
	}
	if !c.L1D.Hashed {
		t.Error("L1D must use hashed index (Table 1)")
	}
	if c.L2.Hashed {
		t.Error("L2 must use linear index (Table 1)")
	}
	if c.NumPartitions != 12 {
		t.Errorf("NumPartitions = %d, want 12", c.NumPartitions)
	}
	// 64 sets x 8 ways x 128B = 64KB per partition x 12 partitions = 768KB.
	if got := c.L2.SizeBytes() * c.NumPartitions; got != 768*1024 {
		t.Errorf("total L2 = %d, want 786432", got)
	}
	if c.CoreClockMHz != 650 || c.ICNTClockMHz != 650 || c.MemClockMHz != 924 {
		t.Errorf("clocks = %d/%d/%d, want 650/650/924",
			c.CoreClockMHz, c.ICNTClockMHz, c.MemClockMHz)
	}
	if c.DRAMBanks != 6 {
		t.Errorf("DRAMBanks = %d, want 6", c.DRAMBanks)
	}
	if c.SampleAccesses != 200 {
		t.Errorf("SampleAccesses = %d, want 200 (paper §4.1.4)", c.SampleAccesses)
	}
	if c.PDPTEntries != 128 {
		t.Errorf("PDPTEntries = %d, want 128 (paper §4.1.3)", c.PDPTEntries)
	}
	if c.PDBits != 4 {
		t.Errorf("PDBits = %d, want 4 (paper §4.3)", c.PDBits)
	}
	if c.VTAWays != c.L1D.Ways {
		t.Errorf("VTAWays = %d, want L1D ways %d (paper footnote 2)", c.VTAWays, c.L1D.Ways)
	}
}

func TestVariants(t *testing.T) {
	c32 := L1D32KB()
	if err := c32.Validate(); err != nil {
		t.Fatalf("32KB invalid: %v", err)
	}
	if got := c32.L1D.SizeBytes(); got != 32*1024 {
		t.Errorf("32KB preset size = %d", got)
	}
	if c32.L1D.Sets != 32 {
		t.Errorf("32KB must keep 32 sets (associativity doubling), got %d", c32.L1D.Sets)
	}
	c64 := L1D64KB()
	if err := c64.Validate(); err != nil {
		t.Fatalf("64KB invalid: %v", err)
	}
	if got := c64.L1D.SizeBytes(); got != 64*1024 {
		t.Errorf("64KB preset size = %d", got)
	}
	if c64.L1D.Ways != 16 {
		t.Errorf("64KB ways = %d, want 16", c64.L1D.Ways)
	}
}

func TestByL1DSize(t *testing.T) {
	for _, kb := range []int{16, 32, 64} {
		c, err := ByL1DSize(kb)
		if err != nil {
			t.Fatalf("ByL1DSize(%d): %v", kb, err)
		}
		if got := c.L1D.SizeBytes(); got != kb*1024 {
			t.Errorf("ByL1DSize(%d) size = %d", kb, got)
		}
	}
	if _, err := ByL1DSize(48); err == nil {
		t.Error("ByL1DSize(48) should fail")
	}
}

func TestValidateReturnsTypedError(t *testing.T) {
	c := Baseline()
	c.L1D.Ways = 0
	err := c.Validate()
	if err == nil {
		t.Fatal("zero-way L1D not rejected")
	}
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("Validate returned %T, want *config.Error", err)
	}
	if ce.Field != "L1D.Ways" {
		t.Errorf("Error.Field = %q, want L1D.Ways", ce.Field)
	}
	if ce.Config != c.Name {
		t.Errorf("Error.Config = %q, want %q", ce.Config, c.Name)
	}
}

// TestValidateRejectsDegenerateGeometries pins the combinations a
// config/workload fuzzer generates first: zero-way and zero-set combos,
// zero protection lifetimes, zero timing parameters, and implausibly
// huge dimensions. Every one must come back as a typed *Error — never a
// panic from a component constructor downstream.
func TestValidateRejectsDegenerateGeometries(t *testing.T) {
	mutations := map[string]func(*Config){
		"zero-ways":           func(c *Config) { c.L1D.Ways = 0 },
		"zero-sets":           func(c *Config) { c.L1D.Sets = 0 },
		"zero-ways-and-sets":  func(c *Config) { c.L1D.Ways, c.L1D.Sets = 0, 0 },
		"negative-ways":       func(c *Config) { c.L1D.Ways = -4 },
		"huge-ways":           func(c *Config) { c.L1D.Ways = 1 << 30 },
		"huge-sets":           func(c *Config) { c.L1D.Sets = 1 << 30 },
		"huge-line":           func(c *Config) { c.L1D.LineSize, c.L2.LineSize = 1<<20, 1<<20 },
		"ccws-zero-cycles":    func(c *Config) { c.CCWSProtectCycles = 0 },
		"ccws-zero-accesses":  func(c *Config) { c.CCWSProtectAccesses = 0 },
		"zero-hit-latency":    func(c *Config) { c.L1DHitLatency = 0 },
		"negative-icnt":       func(c *Config) { c.ICNTLatency = -1 },
		"zero-l2-mshrs":       func(c *Config) { c.L2MSHRs = 0 },
		"zero-l2-missqueue":   func(c *Config) { c.L2MissQueue = 0 },
		"zero-l2-hit-latency": func(c *Config) { c.L2HitLatency = 0 },
		"zero-dram-rowhit":    func(c *Config) { c.DRAMRowHit = 0 },
		"zero-dram-rowmiss":   func(c *Config) { c.DRAMRowMiss = 0 },
		"zero-dram-bus":       func(c *Config) { c.DRAMBusCycles = 0 },
		"huge-smcount":        func(c *Config) { c.NumSMs = 1 << 20 },
		"zero-predictor-dead": func(c *Config) { c.PredictorDeadPeriods = 0 },
		"zero-ata-ways":       func(c *Config) { c.ATAWays = 0 },
	}
	for name, mut := range mutations {
		c := Baseline()
		mut(c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: not rejected", name)
			continue
		}
		var ce *Error
		if !errors.As(err, &ce) {
			t.Errorf("%s: returned %T, want *config.Error", name, err)
		}
	}
}

func TestValidateCatchesEachField(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.NumSMs = 0 },
		func(c *Config) { c.WarpSize = -1 },
		func(c *Config) { c.MaxWarpsPerSM = 0 },
		func(c *Config) { c.SchedulersPerSM = 0 },
		func(c *Config) { c.L1D.Sets = 33 },
		func(c *Config) { c.L1D.Ways = 0 },
		func(c *Config) { c.L1D.LineSize = 100 },
		func(c *Config) { c.L1DMSHRs = 0 },
		func(c *Config) { c.L1DMSHRMerges = 0 },
		func(c *Config) { c.L1DMissQueue = 0 },
		func(c *Config) { c.NumPartitions = 0 },
		func(c *Config) { c.L2.Sets = 63 },
		func(c *Config) { c.L2.Ways = 0 },
		func(c *Config) { c.L2.LineSize = 64 },
		func(c *Config) { c.DRAMBanks = 0 },
		func(c *Config) { c.CoreClockMHz = 0 },
		func(c *Config) { c.VTAWays = 0 },
		func(c *Config) { c.PDPTEntries = 0 },
		func(c *Config) { c.PDBits = 0 },
		func(c *Config) { c.PDBits = 17 },
		func(c *Config) { c.SampleAccesses = 0 },
		func(c *Config) { c.SampleInsnCap = 0 },
		func(c *Config) { c.ATAWays = 0 },
		func(c *Config) { c.CCWSProtectCycles = 0 },
		func(c *Config) { c.CCWSProtectAccesses = -1 },
		func(c *Config) { c.PredictorDeadPeriods = 0 },
		func(c *Config) { c.ICNTBandwidthFlits = 0 },
		func(c *Config) { c.ICNTFlitBytes = 0 },
	}
	for i, mut := range mutations {
		c := Baseline()
		mut(c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not caught by Validate", i)
		}
	}
}

func TestMaxPD(t *testing.T) {
	c := Baseline()
	if got := c.MaxPD(); got != 15 {
		t.Errorf("MaxPD = %d, want 15 for a 4-bit field", got)
	}
}

func TestPolicyString(t *testing.T) {
	// The string values are the figure-axis labels; they are committed in
	// golden outputs, so changing them is a rendering change.
	want := map[Policy]string{
		PolicyBaseline:         "Baseline",
		PolicyStallBypass:      "Stall-Bypass",
		PolicyGlobalProtection: "Global-Protection",
		PolicyDLP:              "DLP",
		PolicyATA:              "ATA",
		PolicyCCWS:             "CCWS-lite",
		PolicyReusePredictor:   "ReusePredictor",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Policy(%q).String() = %q, want %q", string(p), p.String(), s)
		}
	}
}
