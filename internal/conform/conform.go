// Package conform implements the directory-driven conformance corpus:
// a regression wall of committed simulation points that every engine
// refactor must reproduce bit-for-bit.
//
// A case is one directory under testdata/conform/:
//
//	testdata/conform/<case>/
//	    config.json          what to simulate (policy, geometry, workload, variants)
//	    expected_stats.json  the normalized counters the reference run must produce
//
// config.json decodes as a sparse overlay on config.Baseline(): a case
// states only the fields it changes, which keeps committed specs small
// and readable, while fuzzer-written reproducers carry every field.
// The workload is either a registry application (by figure label) or a
// seeded workloads.SynthSpec, so the whole case re-generates from its
// JSON alone — no kernel blobs in the tree.
//
// Running a case simulates a serial reference engine plus the case's
// variant matrix — extra phase-parallel core counts and, when
// requested, a fast-forward-disabled engine — all under the sampled
// invariant sweeps (SelfCheck) and a per-variant wall-clock deadline
// through the experiment runner's fault boundary. Every variant must
// produce bytes identical to the reference, and the reference must
// match the committed expectation. Drift is reported as a unified
// diff; a damaged expectation file is a distinct *CorruptExpectedError
// so bit-rot in the corpus itself is never mistaken for an engine
// regression.
package conform

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// SpecSchema is the config.json format version this build reads.
const SpecSchema = 1

// ConfigFile and ExpectedFile are the two files of a case directory.
const (
	ConfigFile   = "config.json"
	ExpectedFile = "expected_stats.json"
)

// WorkloadRef names a case's kernel: exactly one of App (a registry
// application's figure label) or Synth (a seeded synthetic spec).
// Scale, when > 1, multiplies the workload's grid (registry apps scale
// their block count and shared footprints; synth specs scale blocks
// and footprint lines).
type WorkloadRef struct {
	App   string               `json:"app,omitempty"`
	Synth *workloads.SynthSpec `json:"synth,omitempty"`
	Scale int                  `json:"scale,omitempty"`
}

// Spec is a case's config.json.
type Spec struct {
	Schema      int    `json:"schema"`
	Description string `json:"description,omitempty"`
	Policy      string `json:"policy"`

	// Config is a sparse overlay on config.Baseline(): absent fields
	// keep their baseline values. Fuzzer-written reproducers marshal
	// the full struct so they stay self-contained.
	Config *config.Config `json:"config,omitempty"`

	Workload WorkloadRef `json:"workload"`

	// MaxCycles bounds the simulation; 0 means the engine default.
	MaxCycles uint64 `json:"max_cycles,omitempty"`

	// Cores lists the phase-parallelism values to run. The first entry
	// is the reference; [] means [1]. Every entry must reproduce the
	// reference bytes.
	Cores []int `json:"cores,omitempty"`

	// FastForwardOff adds a variant with cycle fast-forwarding disabled
	// (same core count as the reference), proving the skipped windows
	// carried no observable work on this case's geometry.
	FastForwardOff bool `json:"fast_forward_off,omitempty"`

	// Streamed adds a variant that runs the workload through the lazy
	// chunked stream frontend (sim.RunStream) at the reference core
	// count, proving the streamed backend reproduces the reference
	// bytes on this case's geometry.
	Streamed bool `json:"streamed,omitempty"`
}

// UnmarshalSpec decodes b over a Baseline preset.
func UnmarshalSpec(b []byte) (*Spec, error) {
	sp := &Spec{Config: config.Baseline()}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(sp); err != nil {
		return nil, err
	}
	return sp, nil
}

// MarshalSpec encodes the spec with the full configuration, for
// self-contained reproducer directories.
func MarshalSpec(sp *Spec) ([]byte, error) {
	b, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Build resolves the spec into simulation inputs. Config and workload
// problems come back as typed errors (*config.Error for geometry), so
// mechanized callers — the fuzzer — can tell a rejected input from an
// engine failure.
func (sp *Spec) Build() (*config.Config, config.Policy, *trace.Kernel, error) {
	if sp.Schema != SpecSchema {
		return nil, "", nil, fmt.Errorf("conform: spec schema %d, this build reads %d", sp.Schema, SpecSchema)
	}
	pol, err := policy.Parse(sp.Policy)
	if err != nil {
		return nil, "", nil, fmt.Errorf("conform: %w", err)
	}
	cfg := sp.Config
	if cfg == nil {
		cfg = config.Baseline()
	}
	if err := cfg.Validate(); err != nil {
		return nil, "", nil, err
	}
	seen := map[int]bool{}
	for _, c := range sp.Cores {
		if c < 1 {
			return nil, "", nil, fmt.Errorf("conform: cores value %d must be >= 1", c)
		}
		if seen[c] {
			return nil, "", nil, fmt.Errorf("conform: duplicate cores value %d", c)
		}
		seen[c] = true
	}
	scale := sp.Workload.Scale
	if scale < 0 {
		return nil, "", nil, fmt.Errorf("conform: workload scale %d must be >= 0", scale)
	}
	var k *trace.Kernel
	switch {
	case sp.Workload.App != "" && sp.Workload.Synth != nil:
		return nil, "", nil, fmt.Errorf("conform: workload names both an app and a synth spec")
	case sp.Workload.App != "":
		app, err := workloads.ByAbbr(strings.ToUpper(sp.Workload.App))
		if err != nil {
			return nil, "", nil, fmt.Errorf("conform: %w", err)
		}
		if scale > 1 {
			k = app.ScaledKernel(scale)
			k.PrecomputeCoalesced(cfg.L1D.LineSize)
		} else {
			k = app.SharedKernel(cfg.L1D.LineSize)
		}
	case sp.Workload.Synth != nil:
		synth := sp.Workload.Synth.Scaled(scale)
		if err := synth.Validate(); err != nil {
			return nil, "", nil, err
		}
		k = synth.Kernel()
		k.PrecomputeCoalesced(cfg.L1D.LineSize)
	default:
		return nil, "", nil, fmt.Errorf("conform: workload names neither an app nor a synth spec")
	}
	return cfg, pol, k, nil
}

// BuildStream resolves the spec's workload into the lazy stream
// equivalent of Build's kernel. Call only after Build succeeded.
func (sp *Spec) BuildStream() (trace.Stream, error) {
	scale := sp.Workload.Scale
	switch {
	case sp.Workload.App != "":
		app, err := workloads.ByAbbr(strings.ToUpper(sp.Workload.App))
		if err != nil {
			return nil, fmt.Errorf("conform: %w", err)
		}
		return app.Stream(scale), nil
	case sp.Workload.Synth != nil:
		return sp.Workload.Synth.Scaled(scale).Stream(), nil
	default:
		return nil, fmt.Errorf("conform: workload names neither an app nor a synth spec")
	}
}

// Variants expands the spec's run matrix. The first entry is the
// reference.
func (sp *Spec) Variants() []Variant {
	cores := sp.Cores
	if len(cores) == 0 {
		cores = []int{1}
	}
	out := make([]Variant, 0, len(cores)+1)
	for _, c := range cores {
		out = append(out, Variant{Name: fmt.Sprintf("cores=%d", c), Cores: c})
	}
	if sp.FastForwardOff {
		out = append(out, Variant{
			Name:               fmt.Sprintf("cores=%d,ff=off", cores[0]),
			Cores:              cores[0],
			DisableFastForward: true,
		})
	}
	if sp.Streamed {
		out = append(out, Variant{
			Name:     fmt.Sprintf("cores=%d,streamed", cores[0]),
			Cores:    cores[0],
			Streamed: true,
		})
	}
	return out
}

// Variant is one engine configuration of a case's run matrix.
type Variant struct {
	Name               string
	Cores              int
	DisableFastForward bool
	Streamed           bool
}

// Case is one loaded corpus directory.
type Case struct {
	Name string // directory base name
	Dir  string
	Spec *Spec
}

// Load reads dir/config.json.
func Load(dir string) (*Case, error) {
	b, err := os.ReadFile(filepath.Join(dir, ConfigFile))
	if err != nil {
		return nil, fmt.Errorf("conform: case %s: %w", dir, err)
	}
	sp, err := UnmarshalSpec(b)
	if err != nil {
		return nil, fmt.Errorf("conform: case %s: bad %s: %w", dir, ConfigFile, err)
	}
	return &Case{Name: filepath.Base(dir), Dir: dir, Spec: sp}, nil
}

// Discover loads every case under root whose directory name matches
// the glob (path.Match syntax; "" matches everything), sorted by name.
// A directory without a config.json is skipped; a directory with an
// unreadable one is an error.
func Discover(root, glob string) ([]*Case, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("conform: %w", err)
	}
	var cases []*Case
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if glob != "" {
			ok, err := path.Match(glob, e.Name())
			if err != nil {
				return nil, fmt.Errorf("conform: bad glob %q: %w", glob, err)
			}
			if !ok {
				continue
			}
		}
		dir := filepath.Join(root, e.Name())
		if _, err := os.Stat(filepath.Join(dir, ConfigFile)); err != nil {
			continue
		}
		c, err := Load(dir)
		if err != nil {
			return nil, err
		}
		cases = append(cases, c)
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i].Name < cases[j].Name })
	return cases, nil
}

// Normalize renders stats in the corpus's canonical byte form:
// key-sorted two-space-indented JSON with a trailing newline, numbers
// carried as their exact decimal text. Byte equality of normalized
// forms is the corpus's definition of "same result".
func Normalize(st *stats.Stats) ([]byte, error) {
	raw, err := json.Marshal(st)
	if err != nil {
		return nil, err
	}
	return normalizeRaw(raw)
}

func normalizeRaw(raw []byte) ([]byte, error) {
	// Through a map for key-sorted output; json.Number keeps uint64
	// counters exact where float64 would round above 2^53.
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var m map[string]any
	if err := dec.Decode(&m); err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CorruptExpectedError reports an expected_stats.json that is damaged
// — unreadable, unparseable, carrying unknown counters, or not in
// canonical form. It is deliberately a different type from drift: a
// corrupt corpus file means the corpus needs repair (restore from git,
// or rerun -update), not that the engine regressed.
type CorruptExpectedError struct {
	Path string
	Err  error
}

func (e *CorruptExpectedError) Error() string {
	return fmt.Sprintf("conform: corrupt expected stats %s: %v (restore the file or rerun with -update)", e.Path, e.Err)
}

func (e *CorruptExpectedError) Unwrap() error { return e.Err }

// ReadExpected loads and verifies the case's committed expectation.
// The file must decode into exactly the current Stats counter set and
// must already be in canonical form; anything else is a
// *CorruptExpectedError. (A flipped digit survives these checks — the
// value is plausible — and correctly surfaces as drift instead.)
func (c *Case) ReadExpected() ([]byte, error) {
	p := filepath.Join(c.Dir, ExpectedFile)
	b, err := os.ReadFile(p)
	if err != nil {
		return nil, &CorruptExpectedError{Path: p, Err: err}
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var st stats.Stats
	if err := dec.Decode(&st); err != nil {
		return nil, &CorruptExpectedError{Path: p, Err: err}
	}
	canon, err := normalizeRaw(b)
	if err != nil {
		return nil, &CorruptExpectedError{Path: p, Err: err}
	}
	if !bytes.Equal(canon, b) {
		return nil, &CorruptExpectedError{Path: p, Err: errors.New("not in canonical normalized form")}
	}
	return b, nil
}

// Outcome classifies one case run.
type Outcome int

const (
	// Pass: every variant matched the reference, and the reference
	// matched the committed expectation.
	Pass Outcome = iota
	// Updated: -update mode rewrote (or created) the expectation after
	// all variants agreed.
	Updated
	// Drift: the engine's reference result no longer matches the
	// committed expectation.
	Drift
	// VariantMismatch: a core-count or fast-forward variant diverged
	// from the serial reference — a determinism bug.
	VariantMismatch
	// SimFailed: a variant failed to simulate (panic, invariant
	// violation, deadline, validation error).
	SimFailed
	// CorruptExpected: the committed expectation file is damaged.
	CorruptExpected
	// BadCase: config.json could not be resolved into a runnable point.
	BadCase
)

func (o Outcome) String() string {
	switch o {
	case Pass:
		return "ok"
	case Updated:
		return "updated"
	case Drift:
		return "DRIFT"
	case VariantMismatch:
		return "VARIANT-MISMATCH"
	case SimFailed:
		return "SIM-FAILED"
	case CorruptExpected:
		return "CORRUPT-EXPECTED"
	case BadCase:
		return "BAD-CASE"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Failed reports whether the outcome should fail a conformance run.
func (o Outcome) Failed() bool { return o != Pass && o != Updated }

// Result is one case's verdict.
type Result struct {
	Case    *Case
	Outcome Outcome
	Err     error         // SimFailed / CorruptExpected / BadCase detail
	Variant string        // variant at fault, when one is
	Diff    string        // unified diff for Drift / VariantMismatch
	Cycles  uint64        // reference run length
	Wall    time.Duration // total simulation wall time across variants
}

// RunConfig tunes case execution.
type RunConfig struct {
	// Timeout bounds each variant's wall clock; 0 means no deadline.
	Timeout time.Duration
	// Update rewrites expected_stats.json from the reference run
	// instead of comparing, provided every variant agrees.
	Update bool
	// ExtraCores appends additional cores=N variants to every case's
	// run matrix (duplicates of the spec's own core counts are
	// skipped). The corpus's determinism guarantee is core-count
	// independence, so a harness can widen the sweep — e.g. to odd
	// counts that leave the steal spans uneven — without editing any
	// case spec.
	ExtraCores []int
}

// Run executes the case's full variant matrix and returns its verdict.
func (c *Case) Run(ctx context.Context, rc RunConfig) *Result {
	res := &Result{Case: c, Outcome: Pass}
	cfg, pol, kernel, err := c.Spec.Build()
	if err != nil {
		res.Outcome, res.Err = BadCase, err
		return res
	}

	variants := c.Spec.Variants()
	for _, extra := range rc.ExtraCores {
		dup := false
		for _, v := range variants {
			if !v.DisableFastForward && !v.Streamed && v.Cores == extra {
				dup = true
				break
			}
		}
		if !dup {
			variants = append(variants, Variant{Name: fmt.Sprintf("cores=%d,extra", extra), Cores: extra})
		}
	}
	var stream trace.Stream
	for _, v := range variants {
		if v.Streamed {
			if stream, err = c.Spec.BuildStream(); err != nil {
				res.Outcome, res.Err = BadCase, err
				return res
			}
			break
		}
	}
	norm := make([][]byte, len(variants))
	r := &runner.Runner{Workers: 1, Timeout: rc.Timeout, SelfCheck: true}
	for i, v := range variants {
		job := runner.Job{
			Label:  fmt.Sprintf("%s[%s]", c.Name, v.Name),
			Config: cfg,
			Policy: pol,
			Kernel: kernel,
			Opts: sim.Options{
				MaxCycles:          c.Spec.MaxCycles,
				Cores:              v.Cores,
				DisableFastForward: v.DisableFastForward,
			},
		}
		if v.Streamed {
			job.Kernel, job.Stream = nil, stream
		}
		jobs := []runner.Job{job}
		results, err := r.Run(ctx, jobs)
		if err != nil {
			res.Outcome, res.Err, res.Variant = SimFailed, err, v.Name
			return res
		}
		res.Wall += results[0].Wall
		if i == 0 {
			res.Cycles = results[0].Stats.Cycles
		}
		if norm[i], err = Normalize(results[0].Stats); err != nil {
			res.Outcome, res.Err, res.Variant = SimFailed, err, v.Name
			return res
		}
	}

	for i := 1; i < len(variants); i++ {
		if !bytes.Equal(norm[i], norm[0]) {
			res.Outcome, res.Variant = VariantMismatch, variants[i].Name
			res.Diff = UnifiedDiff(variants[0].Name, variants[i].Name, norm[0], norm[i])
			return res
		}
	}

	if rc.Update {
		if err := os.WriteFile(filepath.Join(c.Dir, ExpectedFile), norm[0], 0o644); err != nil {
			res.Outcome, res.Err = BadCase, err
			return res
		}
		res.Outcome = Updated
		return res
	}

	expected, err := c.ReadExpected()
	if err != nil {
		res.Outcome, res.Err = CorruptExpected, err
		return res
	}
	if !bytes.Equal(norm[0], expected) {
		res.Outcome = Drift
		res.Diff = UnifiedDiff(ExpectedFile, variants[0].Name, expected, norm[0])
		return res
	}
	return res
}

// WriteCase materializes a case directory from a spec and its expected
// normalized stats (which may be nil to omit the expectation, e.g. for
// a reproducer whose reference run itself fails — `conform -update`
// fills it in once the bug is fixed, turning the reproducer into a
// permanent regression case).
func WriteCase(dir string, sp *Spec, expected []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := MarshalSpec(sp)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, ConfigFile), b, 0o644); err != nil {
		return err
	}
	if expected == nil {
		return nil
	}
	return os.WriteFile(filepath.Join(dir, ExpectedFile), expected, 0o644)
}
