package conform

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/faultinject"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// tinySpec is a fast case exercising the full variant matrix: two core
// counts plus a fast-forward-off variant.
func tinySpec() *Spec {
	return &Spec{
		Schema:      SpecSchema,
		Description: "test case",
		Policy:      "dlp",
		Config:      config.Baseline(),
		Workload: WorkloadRef{Synth: &workloads.SynthSpec{
			Seed: 7, Blocks: 1, WarpsPerBlock: 2, MemInsnsPerWarp: 32,
			FootprintLines: 32, StreamPct: 1, HotPct: 1,
		}},
		MaxCycles:      2_000_000,
		Cores:          []int{1, 2},
		FastForwardOff: true,
	}
}

// writeTestCase materializes a case dir and records its expectation
// via -update semantics.
func writeTestCase(t *testing.T, root, name string, sp *Spec) *Case {
	t.Helper()
	dir := filepath.Join(root, name)
	if err := WriteCase(dir, sp, nil); err != nil {
		t.Fatal(err)
	}
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := c.Run(context.Background(), RunConfig{Timeout: time.Minute, Update: true})
	if res.Outcome != Updated {
		t.Fatalf("update run: outcome %s, err %v, variant %q", res.Outcome, res.Err, res.Variant)
	}
	return c
}

func TestCaseRoundTrip(t *testing.T) {
	root := t.TempDir()
	c := writeTestCase(t, root, "tiny", tinySpec())

	res := c.Run(context.Background(), RunConfig{Timeout: time.Minute})
	if res.Outcome != Pass {
		t.Fatalf("fresh expectation did not pass: %s (err %v, variant %q)\n%s",
			res.Outcome, res.Err, res.Variant, res.Diff)
	}
	if res.Cycles == 0 {
		t.Error("reference run reported zero cycles")
	}
}

func TestSparseOverlayKeepsBaseline(t *testing.T) {
	// A spec that only overrides the policy must inherit every baseline
	// config field.
	sp, err := UnmarshalSpec([]byte(`{
		"schema": 1,
		"policy": "ata",
		"workload": {"app": "HS"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, pol, kernel, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	base := config.Baseline()
	if cfg.L1D.Ways != base.L1D.Ways || cfg.NumSMs != base.NumSMs {
		t.Errorf("sparse overlay lost baseline fields: got %+v", cfg.L1D)
	}
	if string(pol) != string(config.PolicyATA) {
		t.Errorf("policy = %q", pol)
	}
	if kernel == nil {
		t.Error("no kernel resolved for app workload")
	}
}

func TestUnmarshalSpecRejectsUnknownFields(t *testing.T) {
	_, err := UnmarshalSpec([]byte(`{"schema": 1, "policy": "dlp", "wrokload": {}}`))
	if err == nil {
		t.Fatal("typo'd field accepted")
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	cases := map[string]func(*Spec){
		"bad-schema":     func(sp *Spec) { sp.Schema = 99 },
		"bad-policy":     func(sp *Spec) { sp.Policy = "nonesuch" },
		"both-workloads": func(sp *Spec) { sp.Workload.App = "HS" },
		"no-workload":    func(sp *Spec) { sp.Workload = WorkloadRef{} },
		"bad-app":        func(sp *Spec) { sp.Workload = WorkloadRef{App: "NOPE"} },
		"zero-cores":     func(sp *Spec) { sp.Cores = []int{0} },
		"dup-cores":      func(sp *Spec) { sp.Cores = []int{2, 2} },
		"bad-geometry":   func(sp *Spec) { sp.Config.L1D.Ways = 0 },
		"bad-synth":      func(sp *Spec) { sp.Workload.Synth.Blocks = 0 },
	}
	for name, mutate := range cases {
		sp := tinySpec()
		mutate(sp)
		if _, _, _, err := sp.Build(); err == nil {
			t.Errorf("%s: Build accepted a bad spec", name)
		}
	}
	// Geometry rejection must be the typed config error, so the fuzzer
	// can classify it as input-rejected rather than engine-failed.
	sp := tinySpec()
	sp.Config.L1D.Sets = 0
	_, _, _, err := sp.Build()
	var cerr *config.Error
	if !errors.As(err, &cerr) {
		t.Errorf("degenerate geometry error %v is not a *config.Error", err)
	}
}

// TestPerturbedExpectationIsDrift is the acceptance check: flipping one
// digit in a committed expected_stats.json must register as drift with
// a unified diff, because the file is still well-formed — only wrong.
func TestPerturbedExpectationIsDrift(t *testing.T) {
	root := t.TempDir()
	c := writeTestCase(t, root, "perturb", tinySpec())

	if err := faultinject.CorruptFileDigit(filepath.Join(c.Dir, ExpectedFile)); err != nil {
		t.Fatal(err)
	}
	res := c.Run(context.Background(), RunConfig{Timeout: time.Minute})
	if res.Outcome != Drift {
		t.Fatalf("outcome %s, want Drift (err %v)", res.Outcome, res.Err)
	}
	if !strings.Contains(res.Diff, "@@") || !strings.Contains(res.Diff, "-") {
		t.Errorf("drift carried no unified diff:\n%s", res.Diff)
	}
	if !res.Outcome.Failed() {
		t.Error("Drift not classified as failure")
	}
}

// TestDamagedExpectationIsCorruptNotDrift: an unparseable or
// non-canonical expectation file must surface as the distinct
// CorruptExpected outcome, never as engine drift.
func TestDamagedExpectationIsCorruptNotDrift(t *testing.T) {
	damage := map[string]func(path string) error{
		"truncated": faultinject.TruncateFile,
		"garbled":   faultinject.GarbleFile,
		"missing":   os.Remove,
		"unknown-counter": func(path string) error {
			return os.WriteFile(path, []byte("{\n  \"NotACounter\": 1\n}\n"), 0o644)
		},
		"non-canonical": func(path string) error {
			// Valid JSON, valid counters, wrong formatting.
			return os.WriteFile(path, []byte(`{"Cycles": 12}`), 0o644)
		},
	}
	for name, hurt := range damage {
		t.Run(name, func(t *testing.T) {
			root := t.TempDir()
			c := writeTestCase(t, root, "damage", tinySpec())
			if err := hurt(filepath.Join(c.Dir, ExpectedFile)); err != nil {
				t.Fatal(err)
			}
			res := c.Run(context.Background(), RunConfig{Timeout: time.Minute})
			if res.Outcome != CorruptExpected {
				t.Fatalf("outcome %s, want CorruptExpected (err %v)", res.Outcome, res.Err)
			}
			var ce *CorruptExpectedError
			if !errors.As(res.Err, &ce) {
				t.Errorf("error %v is not a *CorruptExpectedError", res.Err)
			}
		})
	}
}

func TestDiscoverGlobAndOrder(t *testing.T) {
	root := t.TempDir()
	for _, name := range []string{"b-two", "a-one", "c-three"} {
		writeTestCase(t, root, name, tinySpec())
	}
	// A stray non-case directory and file must be skipped.
	if err := os.MkdirAll(filepath.Join(root, "not-a-case"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	all, err := Discover(root, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[0].Name != "a-one" || all[2].Name != "c-three" {
		t.Fatalf("discover order wrong: %+v", names(all))
	}
	some, err := Discover(root, "[ab]-*")
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 2 {
		t.Fatalf("glob matched %v", names(some))
	}
	if _, err := Discover(root, "["); err == nil {
		t.Error("bad glob accepted")
	}
}

func names(cs []*Case) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Name
	}
	return out
}

func TestNormalizeIsCanonicalAndExact(t *testing.T) {
	st := &stats.Stats{Cycles: 1 << 62, Instructions: 3} // above 2^53: float64 would round
	b, err := Normalize(st)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "4611686018427387904") {
		t.Errorf("large counter lost precision:\n%s", b)
	}
	again, err := normalizeRaw(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(b) {
		t.Error("Normalize is not a fixpoint of itself")
	}
	if b[len(b)-1] != '\n' {
		t.Error("normalized form lacks trailing newline")
	}
}

func TestUnifiedDiff(t *testing.T) {
	a := []byte("one\ntwo\nthree\nfour\nfive\nsix\nseven\neight\nnine\nten\n")
	b := []byte("one\ntwo\nthree\nfour\nFIVE\nsix\nseven\neight\nnine\nten\n")
	d := UnifiedDiff("a", "b", a, b)
	for _, want := range []string{"--- a", "+++ b", "-five", "+FIVE", "@@"} {
		if !strings.Contains(d, want) {
			t.Errorf("diff missing %q:\n%s", want, d)
		}
	}
	if strings.Contains(d, " one\n") || strings.Contains(d, " ten\n") {
		t.Errorf("diff includes lines outside the context window:\n%s", d)
	}
	if got := UnifiedDiff("a", "b", a, a); strings.Contains(got, "@@") {
		t.Errorf("identical inputs produced a hunk:\n%s", got)
	}
}

func TestVariantsMatrix(t *testing.T) {
	sp := tinySpec()
	vs := sp.Variants()
	if len(vs) != 3 {
		t.Fatalf("variants = %+v", vs)
	}
	if vs[0].Cores != 1 || vs[1].Cores != 2 || !vs[2].DisableFastForward {
		t.Errorf("variant matrix wrong: %+v", vs)
	}
	sp.Cores = nil
	sp.FastForwardOff = false
	vs = sp.Variants()
	if len(vs) != 1 || vs[0].Cores != 1 {
		t.Errorf("default variants wrong: %+v", vs)
	}
}

func TestExtraCoresVariants(t *testing.T) {
	root := t.TempDir()
	c := writeTestCase(t, root, "tiny-extra", tinySpec())

	// The extra sweep re-runs the case at cores the spec never lists;
	// duplicates of the spec's own counts (here 1 and 2) are skipped,
	// so the run exercises exactly the odd counts on top of the matrix.
	res := c.Run(context.Background(), RunConfig{
		Timeout:    time.Minute,
		ExtraCores: []int{2, 3, 5, 7},
	})
	if res.Outcome != Pass {
		t.Fatalf("extra-cores sweep failed: %s (err %v, variant %q)\n%s",
			res.Outcome, res.Err, res.Variant, res.Diff)
	}
}
