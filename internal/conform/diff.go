package conform

import (
	"fmt"
	"strings"
)

// UnifiedDiff renders a minimal unified diff (3 lines of context)
// between two small text blobs, for drift reports. It is an exact
// LCS diff — corpus stats files are a few dozen lines, so quadratic
// cost is irrelevant — with no external dependency.
func UnifiedDiff(nameA, nameB string, a, b []byte) string {
	la := splitLines(string(a))
	lb := splitLines(string(b))

	// LCS table.
	n, m := len(la), len(lb)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if la[i] == lb[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}

	// Walk the table into an edit script.
	type op struct {
		kind byte // ' ', '-', '+'
		text string
	}
	var ops []op
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case la[i] == lb[j]:
			ops = append(ops, op{' ', la[i]})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, op{'-', la[i]})
			i++
		default:
			ops = append(ops, op{'+', lb[j]})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, op{'-', la[i]})
	}
	for ; j < m; j++ {
		ops = append(ops, op{'+', lb[j]})
	}

	// Group changed ops into hunks with up to `context` common lines on
	// each side.
	const context = 3
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s\n", nameA, nameB)
	k := 0
	aLine, bLine := 1, 1 // 1-based positions of ops[k] in each input
	for k < len(ops) {
		if ops[k].kind == ' ' {
			aLine++
			bLine++
			k++
			continue
		}
		// Hunk start: back up for leading context.
		start := k
		lead := 0
		for start > 0 && lead < context && ops[start-1].kind == ' ' {
			start--
			lead++
		}
		// Extend through changes, closing the hunk after a run of more
		// than 2*context common lines (they'd belong to the next hunk).
		end := k
		common := 0
		for end < len(ops) {
			if ops[end].kind == ' ' {
				common++
				if common > 2*context {
					end -= common - context
					break
				}
			} else {
				common = 0
			}
			end++
		}
		if end >= len(ops) && common > context {
			end = len(ops) - (common - context)
		}

		hunkA, hunkB := aLine-lead, bLine-lead
		countA, countB := 0, 0
		for _, o := range ops[start:end] {
			switch o.kind {
			case ' ':
				countA++
				countB++
			case '-':
				countA++
			case '+':
				countB++
			}
		}
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", hunkA, countA, hunkB, countB)
		for _, o := range ops[start:end] {
			sb.WriteByte(o.kind)
			sb.WriteString(o.text)
			sb.WriteByte('\n')
		}
		// Advance line counters past the hunk body.
		for _, o := range ops[k:end] {
			switch o.kind {
			case ' ':
				aLine++
				bLine++
			case '-':
				aLine++
			case '+':
				bLine++
			}
		}
		k = end
	}
	return sb.String()
}

// splitLines splits without a trailing phantom element for a final
// newline.
func splitLines(s string) []string {
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}
