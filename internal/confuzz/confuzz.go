// Package confuzz is the seeded differential fuzzer behind cmd/conffuzz.
//
// Each iteration draws a random simulation point — cache geometry,
// policy knobs, and a synthetic access pattern from the adversarial
// mixer — and runs it differentially: a serial reference engine against
// a phase-parallel engine and a fast-forward-disabled engine, all under
// the sampled invariant sweeps and a wall-clock deadline. Any
// disagreement or failure is a finding, classified as stats drift, an
// invariant violation, a panic, a hang, or a generic engine error.
//
// A fraction of iterations deliberately degenerates one configuration
// field (zero ways, negative latency, non-power-of-two sets …); the
// expected outcome there is a typed *config.Error rejection, and
// anything louder — a panic inside a constructor — is a finding like
// any other.
//
// Findings are shrunk before they are reported: the shrinker bisects
// every synthetic-workload dimension toward its floor, drops pattern
// classes, and walks configuration knobs back toward the baseline,
// accepting each reduction only if the same failure class still
// reproduces. The shrunk spec is written as a conformance-corpus case
// directory (see internal/conform), so `conform -run 'fuzz-*'` replays
// it, it fails until the bug is fixed, and `conform -update` then
// promotes it to a permanent regression case.
//
// Everything derives from one seed through SplitMix64: the same seed
// and options replay the same campaign, finding for finding.
package confuzz

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/config"
	"repro/internal/conform"
	"repro/internal/policy"
	"repro/internal/prng"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Class labels what kind of failure a finding is.
type Class int

const (
	// ClassNone: the iteration passed.
	ClassNone Class = iota
	// ClassDrift: two engine variants produced different counters —
	// the determinism contract (bit-identical at any core count, with
	// or without fast-forward) is broken.
	ClassDrift
	// ClassInvariant: a sampled SelfCheck sweep found a violated
	// structural invariant (typed *policy.InvariantError).
	ClassInvariant
	// ClassPanic: a variant panicked (caught by the runner's recover
	// boundary as *runner.JobPanicError).
	ClassPanic
	// ClassHang: a variant wedged — either the engine's in-simulation
	// deadlock detector fired (*sim.DeadlockError: work outstanding,
	// no activity for a whole window) or the wall-clock deadline from
	// the runner expired.
	ClassHang
	// ClassEngine: any other simulation failure.
	ClassEngine
)

func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassDrift:
		return "drift"
	case ClassInvariant:
		return "invariant"
	case ClassPanic:
		return "panic"
	case ClassHang:
		return "hang"
	case ClassEngine:
		return "engine"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classify maps a simulation error to its failure class and a short
// human detail line.
func Classify(err error) (Class, string) {
	var jp *runner.JobPanicError
	if errors.As(err, &jp) {
		return ClassPanic, fmt.Sprintf("panic: %v", jp.Value)
	}
	var inv *policy.InvariantError
	if errors.As(err, &inv) {
		return ClassInvariant, inv.Error()
	}
	var dl *sim.DeadlockError
	if errors.As(err, &dl) {
		return ClassHang, dl.Error()
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return ClassHang, "wall-clock deadline exceeded"
	}
	return ClassEngine, err.Error()
}

// Options tunes a campaign. The zero value is not runnable; use
// withDefaults via Run.
type Options struct {
	Seed       uint64
	Iterations int

	// Policies to draw from; nil means every registered policy.
	Policies []config.Policy

	// Cores is the phase-parallel core count run against the serial
	// reference (default 2).
	Cores int

	// Timeout bounds each variant's wall clock (default 30s); this is
	// the hang detector, so 0 is rejected.
	Timeout time.Duration

	// MaxCycles bounds each simulation (default 20M), the in-simulation
	// complement of Timeout.
	MaxCycles uint64

	// DegeneratePct is the percentage of iterations that deliberately
	// break one config field (default 10).
	DegeneratePct int

	// ShrinkBudget caps differential evaluations spent shrinking one
	// finding (default 64, 0 disables shrinking).
	ShrinkBudget int

	// MaxFindings stops the campaign after this many findings
	// (default 0: run every iteration).
	MaxFindings int

	// Log, when set, receives one line per finding and occasional
	// progress notes.
	Log func(string)
}

func (o Options) withDefaults() Options {
	if o.Iterations <= 0 {
		o.Iterations = 100
	}
	if len(o.Policies) == 0 {
		o.Policies = policy.All()
	}
	if o.Cores < 2 {
		o.Cores = 2
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 20_000_000
	}
	if o.DegeneratePct < 0 {
		o.DegeneratePct = 0
	}
	if o.DegeneratePct == 0 {
		o.DegeneratePct = 10
	}
	if o.ShrinkBudget < 0 {
		o.ShrinkBudget = 0
	} else if o.ShrinkBudget == 0 {
		o.ShrinkBudget = 64
	}
	return o
}

// Finding is one classified, shrunk failure.
type Finding struct {
	Iteration int
	Seed      uint64 // the iteration's derived seed
	Class     Class
	Variant   string // engine variant that failed or diverged
	Detail    string
	Spec      *conform.Spec // shrunk reproducer spec
	Original  *conform.Spec // as generated, before shrinking

	// RefStats is the serial reference's normalized counters when that
	// run succeeded (drift findings); nil otherwise.
	RefStats []byte

	ShrinkEvals int // differential evaluations the shrinker spent
}

// Campaign is a fuzzing run's ledger.
type Campaign struct {
	Opts       Options
	Iterations int // iterations executed
	Rejected   int // degenerate configs correctly refused by validation
	Slow       int // inputs that outran MaxCycles while still progressing (skipped)
	Evals      int // total differential evaluations, shrinking included
	Findings   []*Finding
}

// Run executes a campaign. It returns early with the findings so far
// when the context dies or MaxFindings is reached; the error is only
// ever the context's.
func Run(ctx context.Context, opts Options) (*Campaign, error) {
	opts = opts.withDefaults()
	camp := &Campaign{Opts: opts}
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			opts.Log(fmt.Sprintf(format, args...))
		}
	}
	seed := opts.Seed
	for i := 0; i < opts.Iterations; i++ {
		if err := ctx.Err(); err != nil {
			return camp, err
		}
		seed = splitmix64(seed)
		sp, degenerate := generate(seed, opts)
		out := evaluate(ctx, sp, opts)
		camp.Iterations++
		camp.Evals++
		switch {
		case out.aborted:
			return camp, ctx.Err()
		case out.rejected:
			camp.Rejected++
			if !degenerate {
				logf("iter %d: healthy spec rejected (generator bug?): %v", i, out.rejectErr)
			}
		case out.slow:
			camp.Slow++
			logf("iter %d: too slow for %d-cycle budget: %s", i, opts.MaxCycles, describe(sp))
		case out.class != ClassNone:
			fd := &Finding{
				Iteration: i,
				Seed:      seed,
				Class:     out.class,
				Variant:   out.variant,
				Detail:    out.detail,
				Original:  clone(sp),
				Spec:      sp,
				RefStats:  out.ref,
			}
			logf("iter %d: %s in %s[%s]: %s", i, fd.Class, sp.Policy, fd.Variant, fd.Detail)
			if opts.ShrinkBudget > 0 {
				s := &shrinker{ctx: ctx, opts: opts, class: fd.Class, budget: opts.ShrinkBudget}
				fd.Spec = s.shrink(sp)
				fd.ShrinkEvals = s.evals
				camp.Evals += s.evals
				// Re-evaluate the shrunk spec for its final variant,
				// detail, and reference stats.
				final := evaluate(ctx, fd.Spec, opts)
				camp.Evals++
				if final.class == fd.Class {
					fd.Variant, fd.Detail, fd.RefStats = final.variant, final.detail, final.ref
				}
				logf("iter %d: shrunk in %d evals: %s", i, fd.ShrinkEvals, describe(fd.Spec))
			}
			camp.Findings = append(camp.Findings, fd)
			if opts.MaxFindings > 0 && len(camp.Findings) >= opts.MaxFindings {
				return camp, nil
			}
		}
	}
	return camp, nil
}

// WriteReproducer writes the finding as a conformance-corpus case
// under root and returns the case directory. Drift findings carry the
// serial reference's counters as the committed expectation (the case
// then fails as a variant mismatch until the determinism bug is
// fixed); failure findings omit the expectation (`conform -update`
// records one once the engine survives the case).
func WriteReproducer(root string, fd *Finding) (string, error) {
	name := fmt.Sprintf("fuzz-%s-%016x", fd.Class, fd.Seed)
	dir := filepath.Join(root, name)
	sp := clone(fd.Spec)
	sp.Description = fmt.Sprintf("fuzzer reproducer (seed %#x): %s in %s: %s",
		fd.Seed, fd.Class, fd.Variant, fd.Detail)
	if err := conform.WriteCase(dir, sp, fd.RefStats); err != nil {
		return "", err
	}
	return dir, nil
}

// describe renders a spec's load-bearing dimensions for log lines.
func describe(sp *conform.Spec) string {
	extra := ""
	if sp.Workload.Scale > 1 {
		extra += fmt.Sprintf(" scale=%d", sp.Workload.Scale)
	}
	if sp.Streamed {
		extra += " streamed"
	}
	sy := sp.Workload.Synth
	if sy == nil {
		return fmt.Sprintf("%s app=%s%s", sp.Policy, sp.Workload.App, extra)
	}
	return fmt.Sprintf("%s blocks=%d warps=%d insns=%d footprint=%d sets=%d ways=%d%s",
		sp.Policy, sy.Blocks, sy.WarpsPerBlock, sy.MemInsnsPerWarp, sy.FootprintLines,
		sp.Config.L1D.Sets, sp.Config.L1D.Ways, extra)
}

// clone deep-copies a spec through its JSON form (specs are defined by
// their JSON, so this is exact).
func clone(sp *conform.Spec) *conform.Spec {
	b, err := conform.MarshalSpec(sp)
	if err != nil {
		panic(fmt.Sprintf("confuzz: spec not marshalable: %v", err))
	}
	out, err := conform.UnmarshalSpec(b)
	if err != nil {
		panic(fmt.Sprintf("confuzz: spec round-trip failed: %v", err))
	}
	return out
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// Generation

// generate draws one spec from the iteration seed. The second return
// is true when a deliberate degenerate mutation was applied (the spec
// is then expected to be rejected by validation).
func generate(seed uint64, opts Options) (*conform.Spec, bool) {
	r := prng.New(seed)
	cfg := randomConfig(r)
	sy := randomSynth(r, seed)
	// A block must fit on one SM or the launch is rejected
	// (*sim.LaunchError); keep generated points runnable.
	if cfg.MaxWarpsPerSM < sy.WarpsPerBlock {
		cfg.MaxWarpsPerSM = sy.WarpsPerBlock
	}
	sp := &conform.Spec{
		Schema:    conform.SpecSchema,
		Policy:    string(opts.Policies[r.Intn(len(opts.Policies))]),
		Config:    cfg,
		Workload:  conform.WorkloadRef{Synth: sy},
		MaxCycles: opts.MaxCycles,
		Cores:     []int{1, opts.Cores},
		// Half the points also check the fast-forward contract.
		FastForwardOff: r.Intn(2) == 0,
		// And half check the streamed frontend against the precomputed
		// reference.
		Streamed: r.Intn(2) == 0,
	}
	// A quarter of the points scale the grid up, exercising the
	// many-block dispatch and chunk-refill regimes small specs miss.
	if r.Intn(4) == 0 {
		sp.Workload.Scale = pick(r, 2, 4, 8)
	}
	degenerate := r.Intn(100) < opts.DegeneratePct
	if degenerate {
		degradeConfig(r, cfg)
	}
	return sp, degenerate
}

// pick returns a uniformly random element.
func pick(r *prng.Source, vals ...int) int { return vals[r.Intn(len(vals))] }

// randomConfig draws a small-but-plausible geometry. Dimensions stay
// deliberately tiny — 1-4 SMs, single-digit ways, shallow queues — so
// thousands of iterations fit in CI while still covering the corner
// ratios (single-set caches, MSHR starvation, one-deep miss queues)
// that big presets never exercise.
func randomConfig(r *prng.Source) *config.Config {
	c := config.Baseline()
	c.Name = "fuzz"
	c.NumSMs = pick(r, 1, 1, 2, 4) // bias small: most bugs need one SM
	c.MaxWarpsPerSM = pick(r, 2, 4, 8, 16, 48)
	c.SchedulersPerSM = pick(r, 1, 2)
	if r.Intn(4) == 0 {
		c.MaxActiveWarps = pick(r, 1, 2, 4)
	}
	if r.Intn(2) == 0 {
		c.Scheduler = config.SchedLRR
	}

	c.L1D.Sets = pick(r, 1, 2, 4, 8, 16, 32)
	c.L1D.Ways = pick(r, 1, 1, 2, 4, 8)
	c.L1D.Hashed = r.Intn(2) == 0
	c.L1DMSHRs = pick(r, 1, 2, 4, 8, 32)
	c.L1DMSHRMerges = pick(r, 1, 2, 8)
	c.L1DMissQueue = pick(r, 1, 2, 8)
	c.L1DHitLatency = pick(r, 1, 1, 4)

	c.ICNTLatency = pick(r, 0, 1, 12)
	c.ICNTBandwidthFlits = pick(r, 1, 4, 16)

	c.NumPartitions = pick(r, 1, 2, 4)
	c.L2.Sets = pick(r, 4, 16, 64)
	c.L2.Ways = pick(r, 1, 2, 8)
	c.L2MSHRs = pick(r, 2, 8, 32)
	c.L2MissQueue = pick(r, 1, 4, 16)
	c.L2HitLatency = pick(r, 1, 10)
	c.DRAMBanks = pick(r, 1, 2, 6)
	c.DRAMRowHit = pick(r, 4, 16)
	c.DRAMRowMiss = pick(r, 8, 32)
	c.DRAMBusCycles = pick(r, 1, 4)

	// Protection-scheme knobs, squeezed so sampling periods and
	// protection lifetimes turn over many times within MaxCycles.
	c.VTAWays = pick(r, 1, 2, c.L1D.Ways)
	c.PDPTEntries = pick(r, 4, 16, 128)
	c.PDBits = pick(r, 1, 2, 4, 8)
	c.SampleAccesses = pick(r, 10, 50, 200)
	c.SampleInsnCap = pick(r, 200, 2000, 20000)
	c.ATAWays = pick(r, 1, 2, 16)
	c.CCWSByCycles = r.Intn(2) == 0
	c.CCWSProtectCycles = pick(r, 50, 500, 2000)
	c.CCWSProtectAccesses = pick(r, 1, 4, 8)
	c.PredictorDeadPeriods = pick(r, 1, 2, 4)
	return c
}

// degradeConfig breaks exactly one field the way a corrupted or
// hand-edited config file would. Validation must reject every one of
// these with a typed *config.Error; a panic instead is a finding.
func degradeConfig(r *prng.Source, c *config.Config) {
	switch r.Intn(10) {
	case 0:
		c.L1D.Ways = 0
	case 1:
		c.L1D.Sets = 3 // not a power of two
	case 2:
		c.L1D.Sets = 0
	case 3:
		c.NumSMs = -1
	case 4:
		c.L1DMSHRs = 0
	case 5:
		c.L1DMissQueue = -4
	case 6:
		c.CCWSProtectCycles = 0
	case 7:
		c.L1D.LineSize = 96 // not a power of two; also breaks L2 match
	case 8:
		c.L1D.Sets = 1 << 30 // implausibly huge
	case 9:
		c.PDBits = 0
	}
}

// randomSynth draws a workload small enough that a full differential
// evaluation stays in the low milliseconds.
func randomSynth(r *prng.Source, seed uint64) *workloads.SynthSpec {
	sy := &workloads.SynthSpec{
		Seed:            splitmix64(seed),
		Blocks:          1 + r.Intn(2),
		WarpsPerBlock:   1 + r.Intn(4),
		MemInsnsPerWarp: 8 + r.Intn(56),
		ComputeRun:      r.Intn(8),
		FootprintLines:  1 + r.Intn(128),
		HotLines:        1 + r.Intn(8),
		StorePct:        r.Intn(40),
		StreamPct:       r.Intn(10),
		StridePct:       r.Intn(10),
		// Gather is the slowest regime by an order of magnitude (32
		// distinct lines per warp instruction), so it gets a lighter
		// weight to keep most iterations under the cycle budget.
		GatherPct:           r.Intn(4),
		HotPct:              r.Intn(10),
		ConflictPct:         r.Intn(10),
		StrideLines:         1 + r.Intn(8),
		ConflictStrideLines: pick(r, 8, 16, 32, 64),
	}
	// A third of the specs rotate pattern classes mid-warp — the
	// irregular phase-change regime that stresses sampling-period
	// turnover in the protection schemes.
	if r.Intn(3) == 0 {
		sy.PhaseLen = 1 + r.Intn(16)
		sy.PhaseRotate = 1 + r.Intn(4)
	}
	return sy
}

// ---------------------------------------------------------------------
// Differential evaluation

type evalResult struct {
	rejected  bool
	rejectErr error
	slow      bool // ran out of MaxCycles while still progressing — input too slow, not a bug
	aborted   bool // caller's context died mid-run
	class     Class
	variant   string
	detail    string
	ref       []byte // normalized serial-reference stats, when that run succeeded
}

// evaluate runs one spec's full variant matrix and classifies the
// outcome. A typed *config.Error from Build is an input rejection;
// everything else that fails is a finding.
func evaluate(ctx context.Context, sp *conform.Spec, opts Options) (out evalResult) {
	// A panic escaping Build (generator handed a constructor something
	// validation missed) is itself a finding, not a crash.
	defer func() {
		if v := recover(); v != nil {
			out = evalResult{class: ClassPanic, variant: "build", detail: fmt.Sprintf("panic: %v", v)}
		}
	}()
	cfg, pol, kernel, err := sp.Build()
	if err != nil {
		var cerr *config.Error
		if errors.As(err, &cerr) {
			return evalResult{rejected: true, rejectErr: err}
		}
		return evalResult{class: ClassEngine, variant: "build", detail: err.Error()}
	}
	// The engine's launch check (block fits on an SM) is an input
	// property like geometry validity: a shrinker mutation can create
	// the combination, and it must read as rejected, not as a finding.
	for i, b := range kernel.Blocks {
		if len(b.Warps) > cfg.MaxWarpsPerSM {
			return evalResult{rejected: true, rejectErr: fmt.Errorf(
				"block %d: %d warps > MaxWarpsPerSM %d", i, len(b.Warps), cfg.MaxWarpsPerSM)}
		}
	}

	r := &runner.Runner{Workers: 1, Timeout: opts.Timeout, SelfCheck: true}
	variants := sp.Variants()
	var stream trace.Stream
	for _, v := range variants {
		if v.Streamed {
			if stream, err = sp.BuildStream(); err != nil {
				return evalResult{class: ClassEngine, variant: "build", detail: err.Error()}
			}
			break
		}
	}
	norms := make([][]byte, len(variants))
	for i, v := range variants {
		job := runner.Job{
			Label:  fmt.Sprintf("fuzz[%s]", v.Name),
			Config: cfg,
			Policy: pol,
			Kernel: kernel,
			Opts: sim.Options{
				MaxCycles:          sp.MaxCycles,
				Cores:              v.Cores,
				DisableFastForward: v.DisableFastForward,
			},
		}
		if v.Streamed {
			job.Kernel, job.Stream = nil, stream
		}
		results, err := r.Run(ctx, []runner.Job{job})
		if ctx.Err() != nil {
			return evalResult{aborted: true}
		}
		if err != nil {
			// A kernel still making progress at the MaxCycles bound is a
			// too-slow input, not an engine failure: tiny fuzzed
			// geometries (one MSHR, one-deep miss queues) legitimately
			// need orders of magnitude more cycles than the budget.
			// Genuine wedges trip the engine's quiescence check or the
			// wall-clock deadline and classify normally.
			var cle *sim.CycleLimitError
			if errors.As(err, &cle) {
				return evalResult{slow: true}
			}
			cl, detail := Classify(err)
			return evalResult{class: cl, variant: v.Name, detail: detail, ref: out.ref}
		}
		if norms[i], err = normalize(results[0].Stats); err != nil {
			return evalResult{class: ClassEngine, variant: v.Name, detail: err.Error()}
		}
		if i == 0 {
			out.ref = norms[0]
		}
	}
	for i := 1; i < len(variants); i++ {
		if string(norms[i]) != string(norms[0]) {
			return evalResult{
				class:   ClassDrift,
				variant: variants[i].Name,
				detail: fmt.Sprintf("diverged from %s:\n%s", variants[0].Name,
					conform.UnifiedDiff(variants[0].Name, variants[i].Name, norms[0], norms[i])),
				ref: norms[0],
			}
		}
	}
	out.class = ClassNone
	return out
}

func normalize(st *stats.Stats) ([]byte, error) { return conform.Normalize(st) }

// ---------------------------------------------------------------------
// Shrinking

type shrinker struct {
	ctx    context.Context
	opts   Options
	class  Class
	budget int
	evals  int
}

// fails reports whether sp still reproduces the shrinker's failure
// class, spending one evaluation of budget.
func (s *shrinker) fails(sp *conform.Spec) bool {
	if s.evals >= s.budget || s.ctx.Err() != nil {
		return false
	}
	s.evals++
	out := evaluate(s.ctx, sp, s.opts)
	return !out.rejected && !out.slow && !out.aborted && out.class == s.class
}

// intField is one shrinkable integer dimension.
type intField struct {
	name string
	lo   int // smallest value worth trying
	get  func(*conform.Spec) int
	set  func(*conform.Spec, int)
}

func synthFields() []intField {
	sy := func(sp *conform.Spec) *workloads.SynthSpec { return sp.Workload.Synth }
	return []intField{
		{"blocks", 1, func(sp *conform.Spec) int { return sy(sp).Blocks }, func(sp *conform.Spec, v int) { sy(sp).Blocks = v }},
		{"warps", 1, func(sp *conform.Spec) int { return sy(sp).WarpsPerBlock }, func(sp *conform.Spec, v int) { sy(sp).WarpsPerBlock = v }},
		{"insns", 1, func(sp *conform.Spec) int { return sy(sp).MemInsnsPerWarp }, func(sp *conform.Spec, v int) { sy(sp).MemInsnsPerWarp = v }},
		{"footprint", 1, func(sp *conform.Spec) int { return sy(sp).FootprintLines }, func(sp *conform.Spec, v int) { sy(sp).FootprintLines = v }},
		{"compute", 0, func(sp *conform.Spec) int { return sy(sp).ComputeRun }, func(sp *conform.Spec, v int) { sy(sp).ComputeRun = v }},
		{"stores", 0, func(sp *conform.Spec) int { return sy(sp).StorePct }, func(sp *conform.Spec, v int) { sy(sp).StorePct = v }},
		{"hot-lines", 1, func(sp *conform.Spec) int { return sy(sp).HotLines }, func(sp *conform.Spec, v int) { sy(sp).HotLines = v }},
		{"phase-len", 0, func(sp *conform.Spec) int { return sy(sp).PhaseLen }, func(sp *conform.Spec, v int) { sy(sp).PhaseLen = v }},
		{"scale", 0, func(sp *conform.Spec) int { return sp.Workload.Scale }, func(sp *conform.Spec, v int) { sp.Workload.Scale = v }},
	}
}

// knobFields are configuration knobs walked back toward the baseline
// value (not bisected: geometry legality is field-specific, and the
// baseline is the canonical "uninteresting" point).
func knobFields() []intField {
	cf := func(sp *conform.Spec) *config.Config { return sp.Config }
	return []intField{
		{"sm-count", 0, func(sp *conform.Spec) int { return cf(sp).NumSMs }, func(sp *conform.Spec, v int) { cf(sp).NumSMs = v }},
		{"sets", 0, func(sp *conform.Spec) int { return cf(sp).L1D.Sets }, func(sp *conform.Spec, v int) { cf(sp).L1D.Sets = v }},
		{"ways", 0, func(sp *conform.Spec) int { return cf(sp).L1D.Ways }, func(sp *conform.Spec, v int) { cf(sp).L1D.Ways = v }},
		{"mshrs", 0, func(sp *conform.Spec) int { return cf(sp).L1DMSHRs }, func(sp *conform.Spec, v int) { cf(sp).L1DMSHRs = v }},
		{"merges", 0, func(sp *conform.Spec) int { return cf(sp).L1DMSHRMerges }, func(sp *conform.Spec, v int) { cf(sp).L1DMSHRMerges = v }},
		{"missq", 0, func(sp *conform.Spec) int { return cf(sp).L1DMissQueue }, func(sp *conform.Spec, v int) { cf(sp).L1DMissQueue = v }},
		{"vta-ways", 0, func(sp *conform.Spec) int { return cf(sp).VTAWays }, func(sp *conform.Spec, v int) { cf(sp).VTAWays = v }},
		{"pdpt", 0, func(sp *conform.Spec) int { return cf(sp).PDPTEntries }, func(sp *conform.Spec, v int) { cf(sp).PDPTEntries = v }},
		{"pd-bits", 0, func(sp *conform.Spec) int { return cf(sp).PDBits }, func(sp *conform.Spec, v int) { cf(sp).PDBits = v }},
		{"sample", 0, func(sp *conform.Spec) int { return cf(sp).SampleAccesses }, func(sp *conform.Spec, v int) { cf(sp).SampleAccesses = v }},
		{"ata-ways", 0, func(sp *conform.Spec) int { return cf(sp).ATAWays }, func(sp *conform.Spec, v int) { cf(sp).ATAWays = v }},
		{"ccws-cycles", 0, func(sp *conform.Spec) int { return cf(sp).CCWSProtectCycles }, func(sp *conform.Spec, v int) { cf(sp).CCWSProtectCycles = v }},
		{"ccws-accesses", 0, func(sp *conform.Spec) int { return cf(sp).CCWSProtectAccesses }, func(sp *conform.Spec, v int) { cf(sp).CCWSProtectAccesses = v }},
		{"dead-periods", 0, func(sp *conform.Spec) int { return cf(sp).PredictorDeadPeriods }, func(sp *conform.Spec, v int) { cf(sp).PredictorDeadPeriods = v }},
	}
}

// shrink reduces sp while the failure class still reproduces, to a
// fixpoint or budget exhaustion, and returns the smallest failing spec
// found.
func (s *shrinker) shrink(sp *conform.Spec) *conform.Spec {
	cur := clone(sp)
	base := config.Baseline()
	for improved := true; improved && s.evals < s.budget; {
		improved = false

		// Bisect workload dimensions to their minimal failing values —
		// these dominate reproducer runtime and readability.
		for _, f := range synthFields() {
			if next, ok := s.minimize(cur, f); ok {
				cur, improved = next, true
			}
		}

		// Drop whole pattern classes (a reproducer with one access
		// pattern names the triggering regime by itself).
		weights := []func(*workloads.SynthSpec) *int{
			func(sy *workloads.SynthSpec) *int { return &sy.StridePct },
			func(sy *workloads.SynthSpec) *int { return &sy.GatherPct },
			func(sy *workloads.SynthSpec) *int { return &sy.ConflictPct },
			func(sy *workloads.SynthSpec) *int { return &sy.HotPct },
			func(sy *workloads.SynthSpec) *int { return &sy.StreamPct },
		}
		for _, w := range weights {
			if *w(cur.Workload.Synth) == 0 {
				continue
			}
			cand := clone(cur)
			*w(cand.Workload.Synth) = 0
			if s.fails(cand) {
				cur, improved = cand, true
			}
		}

		// Walk config knobs back toward the baseline.
		for _, f := range knobFields() {
			want := f.get(&conform.Spec{Config: base})
			if f.get(cur) == want {
				continue
			}
			cand := clone(cur)
			f.set(cand, want)
			if s.fails(cand) {
				cur, improved = cand, true
			}
		}

		// Drop variant-matrix extras that aren't load-bearing. (For a
		// drift finding the differential variant IS load-bearing, so
		// these reductions simply stop reproducing and are skipped.)
		if cur.FastForwardOff {
			cand := clone(cur)
			cand.FastForwardOff = false
			if s.fails(cand) {
				cur, improved = cand, true
			}
		}
		if cur.Streamed {
			cand := clone(cur)
			cand.Streamed = false
			if s.fails(cand) {
				cur, improved = cand, true
			}
		}
		if len(cur.Cores) > 1 {
			cand := clone(cur)
			cand.Cores = cur.Cores[:1]
			if s.fails(cand) {
				cur, improved = cand, true
			}
		}
	}
	return cur
}

// minimize finds the smallest failing value of one integer field by
// bisection: try the floor outright, then binary-search the boundary
// between passing and failing. Reports whether the field shrank.
func (s *shrinker) minimize(cur *conform.Spec, f intField) (*conform.Spec, bool) {
	v := f.get(cur)
	if v <= f.lo {
		return cur, false
	}
	cand := clone(cur)
	f.set(cand, f.lo)
	if s.fails(cand) {
		return cand, true
	}
	// Invariant: pass > f.lo passes (or is untestable), hi fails.
	pass, hi := f.lo, v
	best := cur
	shrank := false
	for hi-pass > 1 && s.evals < s.budget {
		mid := pass + (hi-pass)/2
		cand := clone(cur)
		f.set(cand, mid)
		if s.fails(cand) {
			hi, best, shrank = mid, cand, true
		} else {
			pass = mid
		}
	}
	return best, shrank
}
