package confuzz

import (
	"bytes"
	"context"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/conform"
	"repro/internal/mem"
	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/sim"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"panic", &runner.JobPanicError{Label: "x", Value: "boom"}, ClassPanic},
		{"invariant", &policy.InvariantError{Component: "stats", Check: "conservation"}, ClassInvariant},
		{"deadlock", &sim.DeadlockError{Kernel: "k", Cycle: 99, Idle: 42}, ClassHang},
		{"deadline", context.DeadlineExceeded, ClassHang},
		{"engine", errors.New("something else"), ClassEngine},
	}
	for _, tc := range cases {
		got, detail := Classify(tc.err)
		if got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
		if detail == "" {
			t.Errorf("%s: empty detail", tc.name)
		}
	}
}

func TestClassStrings(t *testing.T) {
	for c := ClassNone; c <= ClassEngine; c++ {
		s := c.String()
		if s == "" || strings.ContainsAny(s, " A-Z") {
			t.Errorf("Class(%d).String() = %q, want lowercase slug", c, s)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	opts := Options{}.withDefaults()
	a, da := generate(12345, opts)
	b, db := generate(12345, opts)
	if da != db {
		t.Fatal("degenerate flag differs across identical seeds")
	}
	ba, err := conform.MarshalSpec(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := conform.MarshalSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Error("same seed produced different specs")
	}
	c, _ := generate(54321, opts)
	bc, _ := conform.MarshalSpec(c)
	if bytes.Equal(ba, bc) {
		t.Error("different seeds produced identical specs")
	}
}

func TestGenerateRespectsLaunchLimit(t *testing.T) {
	opts := Options{}.withDefaults()
	seed := uint64(7)
	for i := 0; i < 200; i++ {
		seed = splitmix64(seed)
		sp, degen := generate(seed, opts)
		if degen {
			continue
		}
		if sp.Workload.Synth.WarpsPerBlock > sp.Config.MaxWarpsPerSM {
			t.Fatalf("seed %#x: block of %d warps cannot launch on MaxWarpsPerSM=%d",
				seed, sp.Workload.Synth.WarpsPerBlock, sp.Config.MaxWarpsPerSM)
		}
	}
}

func TestCampaignCleanOnHealthyRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("differential campaign")
	}
	camp, err := Run(context.Background(), Options{Seed: 1, Iterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Findings) != 0 {
		t.Fatalf("healthy registry produced %d findings; first: %v",
			len(camp.Findings), camp.Findings[0].Detail)
	}
	if camp.Iterations != 30 {
		t.Errorf("Iterations = %d, want 30", camp.Iterations)
	}
	if camp.Slow > 0 {
		t.Errorf("%d inputs outran the cycle budget; generator out of tune", camp.Slow)
	}
}

// buggyPolicy is Baseline with an injected accounting off-by-one: every
// third hit double-counts L1DHits, violating the conservation identity
// the engine's self-check sweeps. It is the acceptance fault for the
// fuzzer: deterministic, policy-local, invisible to the policy's own
// CheckInvariants.
type buggyPolicy struct {
	policy.Base
	h    *policy.Host
	hits int
}

func (p *buggyPolicy) OnBlocked(*mem.Request, int, policy.Block) policy.Decision {
	return policy.Stall
}

func (p *buggyPolicy) CheckInvariants() error { return nil }

func (p *buggyPolicy) OnHit(req *mem.Request, set int, ln *cache.Line) {
	p.hits++
	if p.hits%3 == 0 {
		p.h.Stats.L1DHits++
	}
}

const buggyName = config.Policy("Buggy-Scratch")

func TestInjectedBugFoundShrunkAndReproduced(t *testing.T) {
	if testing.Short() {
		t.Skip("differential campaign")
	}
	if err := policy.Register(policy.Spec{
		Name: buggyName,
		Cite: "test-only: baseline with a hit-accounting off-by-one",
		New:  func(h *policy.Host) policy.Policy { return &buggyPolicy{h: h} },
	}); err != nil {
		t.Fatal(err)
	}
	defer policy.Unregister(buggyName)

	camp, err := Run(context.Background(), Options{
		Seed:        1,
		Iterations:  50,
		Policies:    []config.Policy{buggyName},
		MaxFindings: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Findings) == 0 {
		t.Fatal("fuzzer missed the injected accounting bug")
	}
	fd := camp.Findings[0]
	if fd.Class != ClassInvariant {
		t.Fatalf("finding class = %v (%s), want %v", fd.Class, fd.Detail, ClassInvariant)
	}
	if !strings.Contains(fd.Detail, "conservation") {
		t.Errorf("detail %q does not name the violated invariant", fd.Detail)
	}
	if fd.ShrinkEvals == 0 {
		t.Error("shrinker spent no evaluations")
	}
	// Shrinking must not grow the workload.
	if orig, got := fd.Original.Workload.Synth, fd.Spec.Workload.Synth; got.MemInsnsPerWarp > orig.MemInsnsPerWarp ||
		got.WarpsPerBlock > orig.WarpsPerBlock || got.Blocks > orig.Blocks {
		t.Errorf("shrunk spec larger than original: %+v vs %+v", got, orig)
	}

	// The reproducer must land in corpus layout and keep failing when
	// replayed through the conformance harness.
	root := t.TempDir()
	dir, err := WriteReproducer(root, fd)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := conform.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := cs.Run(context.Background(), conform.RunConfig{Timeout: time.Minute})
	if !res.Outcome.Failed() {
		t.Fatalf("conform replay of reproducer passed (outcome %s)", res.Outcome)
	}
	if res.Outcome != conform.SimFailed {
		t.Errorf("outcome = %s, want %s", res.Outcome, conform.SimFailed)
	}
	var inv *policy.InvariantError
	if !errors.As(res.Err, &inv) {
		t.Errorf("replay error %v does not expose the typed invariant violation", res.Err)
	}

	// The reproducer directory itself must be self-contained: loading it
	// fresh from disk only needed config.json.
	if _, err := os.Stat(dir); err != nil {
		t.Fatal(err)
	}
}
