package core

import "repro/internal/policy"

// The DLP hardware types (victim tag array, prediction table, sampling
// clock) moved to internal/policy with the pluggable-policy refactor.
// These aliases keep core's historical surface — tools and tests that
// reach the hardware through core keep compiling unchanged.
type (
	VTA     = policy.VTA
	PDPT    = policy.PDPT
	Sampler = policy.Sampler
)

var (
	NewVTA       = policy.NewVTA
	NewPDPT      = policy.NewPDPT
	NewGlobalPDT = policy.NewGlobalPDT
	NewSampler   = policy.NewSampler
)
