package core

import (
	"fmt"

	"repro/internal/config"
)

// InvariantError reports a violated DLP invariant found by a self-check
// (sim.Options.SelfCheck) or an explicit CheckInvariants call. These
// are the structural properties the paper's correctness rests on — PL
// counters staying within their field width, protection never exceeding
// the set's associativity, PDPT predictions staying within the PD
// field, the VTA keeping the TDA's geometry — plus the stats
// conservation identity. A violation means the engine (or a future
// modification of it) is broken, not that a workload misbehaved, so it
// is surfaced as a typed error rather than a panic: one bad engine
// build fails its job cleanly instead of tearing down a whole batch.
type InvariantError struct {
	Component string // "TDA", "PDPT", "VTA", "stats"
	Check     string // short invariant identifier, e.g. "pl-range"
	Detail    string
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("core: invariant %s/%s violated: %s", e.Component, e.Check, e.Detail)
}

// CheckInvariants verifies the cache's DLP invariants at the current
// cycle. It is cheap relative to a simulated cycle but not free — the
// engine samples it (sim.Options.SelfCheck) rather than calling it
// every cycle. The check never mutates state, so enabling it cannot
// change simulation results.
func (c *L1D) CheckInvariants() error {
	maxPD := c.cfg.MaxPD()
	protection := c.protectionEnabled()
	for s := 0; s < c.ta.NumSets(); s++ {
		protected := 0
		for w := range c.ta.Set(s) {
			ln := &c.ta.Set(s)[w]
			if ln.PL < 0 || ln.PL > maxPD {
				return &InvariantError{
					Component: "TDA",
					Check:     "pl-range",
					Detail: fmt.Sprintf("set %d way %d: PL=%d outside [0,%d] (PDBits=%d)",
						s, w, ln.PL, maxPD, c.cfg.PDBits),
				}
			}
			if ln.PL > 0 {
				if !protection {
					return &InvariantError{
						Component: "TDA",
						Check:     "pl-without-protection",
						Detail: fmt.Sprintf("set %d way %d: PL=%d under policy %s, which has no protection hardware",
							s, w, ln.PL, c.policy),
					}
				}
				protected++
			}
		}
		if protected > c.cfg.L1D.Ways {
			return &InvariantError{
				Component: "TDA",
				Check:     "protected-bound",
				Detail: fmt.Sprintf("set %d: %d protected lines exceed associativity %d",
					s, protected, c.cfg.L1D.Ways),
			}
		}
	}
	if c.pdpt != nil {
		if err := c.pdpt.CheckInvariants(); err != nil {
			return err
		}
	}
	if c.vta != nil {
		if err := c.vta.CheckGeometry(c.cfg.L1D.Sets, c.cfg.VTAWays); err != nil {
			return err
		}
	}
	// Mid-run conservation: every counted access has been classified as
	// exactly one of hit / serviced miss / bypass. Each Access call
	// updates both counters before returning, so the identity holds at
	// every cycle boundary, not just at collection time.
	if err := c.st.CheckConservation(); err != nil {
		return &InvariantError{Component: "stats", Check: "conservation", Detail: err.Error()}
	}
	return nil
}

// CheckInvariants verifies the prediction table's bounds: every
// protection distance within [0, maxPD] (the PD field's width, §4.3)
// and hit counters consistent with the running global totals.
func (p *PDPT) CheckInvariants() error {
	var tda, vta uint64
	for i, pd := range p.pd {
		if pd < 0 || pd > p.maxPD {
			return &InvariantError{
				Component: "PDPT",
				Check:     "pd-range",
				Detail:    fmt.Sprintf("entry %d: PD=%d outside [0,%d]", i, pd, p.maxPD),
			}
		}
		tda += p.tdaHits[i]
		vta += p.vtaHits[i]
	}
	if tda != p.globalTDA || vta != p.globalVTA {
		return &InvariantError{
			Component: "PDPT",
			Check:     "hit-counter-sum",
			Detail: fmt.Sprintf("per-entry sums (TDA=%d, VTA=%d) disagree with global counters (TDA=%d, VTA=%d)",
				tda, vta, p.globalTDA, p.globalVTA),
		}
	}
	return nil
}

// CheckGeometry verifies the VTA mirrors the TDA's set structure with
// the configured associativity (footnote 2: same geometry, tags only).
func (v *VTA) CheckGeometry(wantSets, wantWays int) error {
	if len(v.sets) != wantSets {
		return &InvariantError{
			Component: "VTA",
			Check:     "geometry",
			Detail:    fmt.Sprintf("%d sets, want %d", len(v.sets), wantSets),
		}
	}
	for s, set := range v.sets {
		if len(set) != wantWays {
			return &InvariantError{
				Component: "VTA",
				Check:     "geometry",
				Detail:    fmt.Sprintf("set %d has %d ways, want %d", s, len(set), wantWays),
			}
		}
		for w := range set {
			if e := &set[w]; e.valid && e.lastUse > v.clock {
				return &InvariantError{
					Component: "VTA",
					Check:     "lru-clock",
					Detail: fmt.Sprintf("set %d way %d: lastUse %d ahead of clock %d",
						s, w, e.lastUse, v.clock),
				}
			}
		}
	}
	return nil
}

// Policy returns the management policy the cache runs under, for
// introspection and invariant reporting.
func (c *L1D) Policy() config.Policy { return c.policy }
