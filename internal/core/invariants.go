package core

import (
	"repro/internal/config"
	"repro/internal/policy"
)

// InvariantError reports a violated engine invariant found by a
// self-check (sim.Options.SelfCheck) or an explicit CheckInvariants
// call. The type itself lives in internal/policy, next to the checks;
// this alias preserves core's public surface.
type InvariantError = policy.InvariantError

// CheckInvariants verifies the cache's invariants at the current cycle:
// the policy's structural properties (PL counters within their field
// width, protection bounded by associativity, PDPT predictions within
// the PD field, VTA geometry — whatever the active scheme maintains)
// plus the stats conservation identity. It is cheap relative to a
// simulated cycle but not free — the engine samples it
// (sim.Options.SelfCheck) rather than calling it every cycle. The check
// never mutates state, so enabling it cannot change simulation results.
func (c *L1D) CheckInvariants() error {
	if err := c.pol.CheckInvariants(); err != nil {
		return err
	}
	// Mid-run conservation: every counted access has been classified as
	// exactly one of hit / serviced miss / bypass. Each Access call
	// updates both counters before returning, so the identity holds at
	// every cycle boundary, not just at collection time.
	if err := c.st.CheckConservation(); err != nil {
		return &InvariantError{Component: "stats", Check: "conservation", Detail: err.Error()}
	}
	return nil
}

// Policy returns the management policy the cache runs under, for
// introspection and invariant reporting.
func (c *L1D) Policy() config.Policy { return c.policy }
