package core

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/stats"
)

// L1D is one SM's L1 data cache, running under one of the four evaluated
// policies. The SM's LD/ST unit calls Access; the engine drains outgoing
// fetches with PopOutgoing and delivers network responses with OnResponse.
// Completed loads are handed back to the SM through the deliver callback.
type L1D struct {
	cfg    *config.Config
	policy config.Policy
	mapper *addr.Mapper
	ta     *cache.TagArray
	mshr   *cache.MSHR
	missQ  *cache.FIFO // fetches for misses that reserved a line
	bypsQ  *cache.FIFO // bypassed fetches and write-through stores (never stalls)

	vta     *VTA
	pdpt    *PDPT
	sampler *Sampler

	st   *stats.Stats
	seen map[uint64]bool // line IDs ever requested, for compulsory-miss accounting

	deliver func(*mem.Request)
	hitQ    []hitResponse
	now     uint64
}

type hitResponse struct {
	readyAt uint64
	req     *mem.Request
}

// NewL1D builds an L1D for cfg under the given policy. deliver is invoked
// once per completed load request (hit, fill, or bypass response).
func NewL1D(cfg *config.Config, policy config.Policy, deliver func(*mem.Request)) *L1D {
	kind := addr.LinearIndex
	if cfg.L1D.Hashed {
		kind = addr.HashIndex
	}
	m := addr.MustMapper(cfg.L1D.LineSize, cfg.L1D.Sets, kind)
	c := &L1D{
		cfg:     cfg,
		policy:  policy,
		mapper:  m,
		ta:      cache.NewTagArray(m, cfg.L1D.Ways),
		mshr:    cache.NewMSHR(cfg.L1DMSHRs, cfg.L1DMSHRMerges),
		missQ:   cache.NewFIFO(cfg.L1DMissQueue),
		bypsQ:   cache.NewFIFO(0),
		st:      &stats.Stats{},
		seen:    make(map[uint64]bool),
		deliver: deliver,
	}
	if c.protectionEnabled() {
		c.vta = NewVTA(cfg.L1D.Sets, cfg.VTAWays)
		c.sampler = NewSampler(cfg.SampleAccesses, cfg.SampleInsnCap)
		if policy == config.PolicyDLP {
			c.pdpt = NewPDPT(cfg.PDPTEntries, cfg.VTAWays, cfg.MaxPD())
		} else {
			c.pdpt = NewGlobalPDT(cfg.VTAWays, cfg.MaxPD())
		}
	}
	return c
}

func (c *L1D) protectionEnabled() bool {
	return c.policy == config.PolicyGlobalProtection || c.policy == config.PolicyDLP
}

// Stats returns the cache's counters.
func (c *L1D) Stats() *stats.Stats { return c.st }

// PDPT exposes the prediction table for tests and introspection; nil for
// the baseline and Stall-Bypass policies.
func (c *L1D) PDPT() *PDPT { return c.pdpt }

// Tick advances the cache to cycle now and delivers hit responses whose
// latency has elapsed, returning how many it delivered.
func (c *L1D) Tick(now uint64) int {
	c.now = now
	n := 0
	for _, h := range c.hitQ {
		if h.readyAt > now {
			break
		}
		c.deliver(h.req)
		n++
	}
	if n > 0 {
		// Shift rather than re-slice so the backing array is reused and
		// never pins delivered requests alive.
		rest := copy(c.hitQ, c.hitQ[n:])
		for i := rest; i < len(c.hitQ); i++ {
			c.hitQ[i] = hitResponse{}
		}
		c.hitQ = c.hitQ[:rest]
	}
	return n
}

// NextDelivery returns the cycle the oldest queued hit becomes
// deliverable; ok=false when no hits are queued. Hit latency is
// constant, so the queue is ordered by readyAt and the head is the
// minimum.
func (c *L1D) NextDelivery() (at uint64, ok bool) {
	if len(c.hitQ) == 0 {
		return 0, false
	}
	return c.hitQ[0].readyAt, true
}

// NoteInstructions feeds executed-instruction counts into the sampling
// clock so kernels with few loads still close samples (§4.1.4).
func (c *L1D) NoteInstructions(n uint64) {
	if c.sampler != nil && c.sampler.NoteInstructions(n) {
		c.pdpt.EndSample()
	}
}

// noteAccess counts an accepted (non-stalled) access and advances the
// sampling clock.
func (c *L1D) noteAccess() {
	c.st.L1DAccesses++
	if c.sampler != nil && c.sampler.NoteAccess() {
		c.pdpt.EndSample()
	}
}

// decrementPLs ages every protected line in the queried set by one
// (§4.1.1: "When a set is queried, PL values of all TDA entries belonging
// to this set are decreased by 1").
func (c *L1D) decrementPLs(set int) {
	if !c.protectionEnabled() {
		return
	}
	lines := c.ta.Set(set)
	for w := range lines {
		if lines[w].PL > 0 {
			lines[w].PL--
		}
	}
}

// trackCompulsory records first-ever touches of a line.
func (c *L1D) trackCompulsory(a addr.Addr) {
	id := c.mapper.LineID(a)
	if !c.seen[id] {
		c.seen[id] = true
		c.st.L1DCompulsory++
	}
}

// Access presents one line-granularity request to the cache and returns
// how it was handled. OutcomeStall means the request was not accepted and
// the LD/ST pipeline register must retry next cycle.
func (c *L1D) Access(req *mem.Request) mem.AccessOutcome {
	if req.Store {
		return c.accessStore(req)
	}
	set, way, res := c.ta.Probe(req.Addr)
	switch res {
	case cache.ProbeHit:
		c.noteAccess()
		c.trackCompulsory(req.Addr)
		c.decrementPLs(set)
		ln := &c.ta.Set(set)[way]
		if c.protectionEnabled() {
			// The hit is credited to the instruction that brought in or
			// last hit the line; the line then belongs to the hitting
			// instruction and receives its protection distance (§4.1.1).
			c.pdpt.CreditTDA(ln.InsnID)
			ln.InsnID = req.InsnID
			ln.PL = c.pdpt.PD(req.InsnID)
		}
		c.ta.Touch(set, way)
		c.st.L1DHits++
		c.st.L1DTraffic++
		c.hitQ = append(c.hitQ, hitResponse{readyAt: c.now + uint64(c.cfg.L1DHitLatency), req: req})
		return mem.OutcomeHit

	case cache.ProbeReserved:
		e := c.mshr.Lookup(req.Addr)
		if e == nil {
			panic(fmt.Sprintf("core: reserved line %#x without MSHR entry", uint64(req.Addr)))
		}
		if !c.mshr.CanMerge(e) {
			if c.policy == config.PolicyStallBypass {
				return c.doBypass(req, set)
			}
			c.st.L1DStalls++
			return mem.OutcomeStall
		}
		c.noteAccess()
		c.trackCompulsory(req.Addr)
		c.decrementPLs(set)
		c.mshr.Merge(e, req)
		c.st.L1DMisses++
		c.st.L1DTraffic++
		return mem.OutcomeMiss

	default: // ProbeMiss
		return c.accessMiss(req, set)
	}
}

// accessMiss handles a load that matched nothing in the TDA.
func (c *L1D) accessMiss(req *mem.Request, set int) mem.AccessOutcome {
	// Structural hazards: a serviced miss needs an MSHR entry and a
	// miss-queue slot.
	if c.mshr.Full() || c.missQ.Full() {
		if c.policy == config.PolicyStallBypass {
			return c.doBypass(req, set)
		}
		c.st.L1DStalls++
		return mem.OutcomeStall
	}

	victim := c.ta.VictimIn(set, c.victimEligible())
	if victim < 0 {
		// Every line in the set is reserved or protected.
		switch c.policy {
		case config.PolicyBaseline:
			c.st.L1DStalls++
			return mem.OutcomeStall
		default:
			// Stall-Bypass bypasses any stall; Global-Protection and DLP
			// bypass the redundant miss rather than wait for a protected
			// set (§4.1.1).
			return c.doBypass(req, set)
		}
	}

	c.noteAccess()
	c.trackCompulsory(req.Addr)
	c.decrementPLs(set)
	c.creditVTA(req, set, true)

	evicted := c.ta.Reserve(set, victim, req.Addr)
	if evicted.Valid {
		c.st.L1DEvictions++
		if c.vta != nil {
			c.vta.Insert(set, evicted.Tag, evicted.InsnID)
		}
	}
	c.ta.Set(set)[victim].InsnID = req.InsnID
	c.mshr.Allocate(req, set, victim)
	if !c.missQ.Push(req) {
		panic("core: miss queue full after capacity check")
	}
	c.st.L1DMisses++
	c.st.L1DTraffic++
	return mem.OutcomeMiss
}

// victimEligible returns the policy's replacement filter: protection
// restricts victims to lines whose protected life has expired.
func (c *L1D) victimEligible() func(*cache.Line) bool {
	if !c.protectionEnabled() {
		return nil
	}
	return func(l *cache.Line) bool { return l.PL == 0 }
}

// creditVTA looks the address up in the victim tag array and credits the
// stored instruction on a hit. remove controls whether the entry is
// consumed: allocating misses refetch the line so the victim entry is
// retired; bypassed misses leave it for future reuse observations.
func (c *L1D) creditVTA(req *mem.Request, set int, remove bool) {
	if c.vta == nil {
		return
	}
	tag := c.mapper.Tag(req.Addr)
	if remove {
		if id, ok := c.vta.Lookup(set, tag); ok {
			c.pdpt.CreditVTA(id)
			c.st.VTAHits++
		}
		return
	}
	if id, ok := c.vta.Peek(set, tag); ok {
		c.pdpt.CreditVTA(id)
		c.st.VTAHits++
	}
}

// doBypass sends req around the cache. The bypass path never stalls
// (it has its own queue sharing only the ICNT injection port).
func (c *L1D) doBypass(req *mem.Request, set int) mem.AccessOutcome {
	c.noteAccess()
	c.trackCompulsory(req.Addr)
	c.decrementPLs(set)
	c.creditVTA(req, set, false)
	req.Bypass = true
	c.bypsQ.Push(req)
	c.st.L1DBypasses++
	return mem.OutcomeBypass
}

// accessStore implements write-through, write-no-allocate stores with
// write-evict on hit (Fermi global-store semantics). Stores never stall
// and never receive responses.
func (c *L1D) accessStore(req *mem.Request) mem.AccessOutcome {
	set, way, res := c.ta.Probe(req.Addr)
	if res == cache.ProbeHit {
		c.ta.Invalidate(set, way)
	}
	c.bypsQ.Push(req)
	c.st.StoreAccesses++
	return mem.OutcomeBypass
}

// PopOutgoing hands the next fetch/store packet to the interconnect, or
// nil when nothing is pending. Serviced misses drain before the bypass
// path.
func (c *L1D) PopOutgoing() *mem.Request {
	if r := c.missQ.Pop(); r != nil {
		return r
	}
	return c.bypsQ.Pop()
}

// HasOutgoing reports whether PopOutgoing would return a packet.
func (c *L1D) HasOutgoing() bool {
	return !c.missQ.Empty() || !c.bypsQ.Empty()
}

// OnResponse accepts a returning fetch from the interconnect: bypassed
// requests go straight to the warp; serviced misses fill their reserved
// line and release every merged request.
func (c *L1D) OnResponse(req *mem.Request) {
	if req.Store {
		panic("core: store received a response")
	}
	if req.Bypass {
		c.deliver(req)
		return
	}
	e := c.mshr.Release(req.Addr)
	if e == nil {
		panic(fmt.Sprintf("core: response for %#x without MSHR entry", uint64(req.Addr)))
	}
	c.ta.Fill(e.Set, e.Way)
	ln := &c.ta.Set(e.Set)[e.Way]
	ln.InsnID = req.InsnID
	if c.protectionEnabled() {
		// The line receives its instruction's protection distance when
		// the fill lands (the access that allocated it "writes the PD
		// value to the PL field", §4.1.1).
		ln.PL = c.pdpt.PD(req.InsnID)
	}
	for _, r := range e.Requests {
		c.deliver(r)
	}
	c.mshr.Recycle(e)
}

// Pending reports outstanding work: queued packets, live MSHR entries, or
// undelivered hits. The engine uses it to detect quiescence.
func (c *L1D) Pending() bool {
	return c.HasOutgoing() || c.mshr.Size() > 0 || len(c.hitQ) > 0
}
