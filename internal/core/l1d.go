// Package core implements the simulated L1 data cache controller: the
// tag array mechanism (probe, reserve, fill), MSHRs, miss and bypass
// queues, hit-latency modelling and statistics. Every management
// decision — stall vs bypass, victim eligibility, admission, protection
// state — is delegated to a scheme from internal/policy, where the
// paper's DLP hardware (VTA, PDPT, Figure 9 computation) now lives as
// one registry entry among several. The §4.3 hardware-overhead model is
// also here.
package core

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/policy"
	"repro/internal/stats"
)

// L1D is one SM's L1 data cache, running under a registered management
// policy. The SM's LD/ST unit calls Access; the engine drains outgoing
// fetches with PopOutgoing and delivers network responses with OnResponse.
// Completed loads are handed back to the SM through the deliver callback.
type L1D struct {
	cfg    *config.Config
	policy config.Policy
	mapper *addr.Mapper
	ta     *cache.TagArray
	mshr   *cache.MSHR
	missQ  *cache.FIFO // fetches for misses that reserved a line
	bypsQ  *cache.FIFO // bypassed fetches and write-through stores (never stalls)

	pol      policy.Policy           // the decision maker
	eligible func(*cache.Line) bool  // victim filter, bound once at construction

	st   *stats.Stats
	seen map[uint64]bool // line IDs ever requested, for compulsory-miss accounting

	deliver func(*mem.Request)
	hitQ    []hitResponse
	now     uint64
}

type hitResponse struct {
	readyAt uint64
	req     *mem.Request
}

// NewL1D builds an L1D for cfg under the given policy. deliver is invoked
// once per completed load request (hit, fill, or bypass response). The
// policy name must be registered (sim.New validates it up front); an
// unknown name here is a programming error and panics.
func NewL1D(cfg *config.Config, pol config.Policy, deliver func(*mem.Request)) *L1D {
	kind := addr.LinearIndex
	if cfg.L1D.Hashed {
		kind = addr.HashIndex
	}
	m := addr.MustMapper(cfg.L1D.LineSize, cfg.L1D.Sets, kind)
	c := &L1D{
		cfg:     cfg,
		policy:  pol,
		mapper:  m,
		ta:      cache.NewTagArray(m, cfg.L1D.Ways),
		mshr:    cache.NewMSHR(cfg.L1DMSHRs, cfg.L1DMSHRMerges),
		missQ:   cache.NewFIFO(cfg.L1DMissQueue),
		bypsQ:   cache.NewFIFO(0),
		st:      &stats.Stats{},
		seen:    make(map[uint64]bool),
		deliver: deliver,
	}
	host := &policy.Host{
		Cfg:    cfg,
		Mapper: m,
		Tags:   c.ta,
		Stats:  c.st,
		Now:    func() uint64 { return c.now },
	}
	p, err := policy.New(pol, host)
	if err != nil {
		panic("core: " + err.Error())
	}
	c.pol = p
	c.eligible = p.VictimFilter()
	return c
}

// Stats returns the cache's counters.
func (c *L1D) Stats() *stats.Stats { return c.st }

// PDPT exposes the prediction table for tests and introspection; nil for
// policies that don't carry one (everything but Global-Protection and
// DLP).
func (c *L1D) PDPT() *PDPT {
	if p, ok := c.pol.(policy.PDPTCarrier); ok {
		return p.PDPT()
	}
	return nil
}

// Tick advances the cache to cycle now and delivers hit responses whose
// latency has elapsed, returning how many it delivered.
func (c *L1D) Tick(now uint64) int {
	c.now = now
	n := 0
	for _, h := range c.hitQ {
		if h.readyAt > now {
			break
		}
		c.deliver(h.req)
		n++
	}
	if n > 0 {
		// Shift rather than re-slice so the backing array is reused and
		// never pins delivered requests alive.
		rest := copy(c.hitQ, c.hitQ[n:])
		for i := rest; i < len(c.hitQ); i++ {
			c.hitQ[i] = hitResponse{}
		}
		c.hitQ = c.hitQ[:rest]
	}
	return n
}

// NextDelivery returns the cycle the oldest queued hit becomes
// deliverable; ok=false when no hits are queued. Hit latency is
// constant, so the queue is ordered by readyAt and the head is the
// minimum.
func (c *L1D) NextDelivery() (at uint64, ok bool) {
	if len(c.hitQ) == 0 {
		return 0, false
	}
	return c.hitQ[0].readyAt, true
}

// NoteInstructions feeds executed-instruction counts into the policy's
// sampling clock so kernels with few loads still close samples (§4.1.4).
func (c *L1D) NoteInstructions(n uint64) {
	c.pol.NoteInstructions(n)
}

// acceptAccess counts an accepted (non-stalled) access, records
// first-ever line touches, and runs the policy's per-access hook
// (sampling clock, protection aging).
func (c *L1D) acceptAccess(req *mem.Request, set int) {
	c.st.L1DAccesses++
	id := c.mapper.LineID(req.Addr)
	if !c.seen[id] {
		c.seen[id] = true
		c.st.L1DCompulsory++
	}
	c.pol.OnAccess(req, set)
}

// blocked resolves a non-serviceable access through the policy: either
// the request bypasses, or it stalls and the LD/ST pipeline register
// retries next cycle.
func (c *L1D) blocked(req *mem.Request, set int, why policy.Block) mem.AccessOutcome {
	if c.pol.OnBlocked(req, set, why) == policy.Bypass {
		return c.doBypass(req, set)
	}
	c.st.L1DStalls++
	return mem.OutcomeStall
}

// Access presents one line-granularity request to the cache and returns
// how it was handled. OutcomeStall means the request was not accepted and
// the LD/ST pipeline register must retry next cycle.
func (c *L1D) Access(req *mem.Request) mem.AccessOutcome {
	if req.Store {
		return c.accessStore(req)
	}
	set, way, res := c.ta.Probe(req.Addr)
	switch res {
	case cache.ProbeHit:
		c.acceptAccess(req, set)
		c.pol.OnHit(req, set, &c.ta.Set(set)[way])
		c.ta.Touch(set, way)
		c.st.L1DHits++
		c.st.L1DTraffic++
		c.hitQ = append(c.hitQ, hitResponse{readyAt: c.now + uint64(c.cfg.L1DHitLatency), req: req})
		return mem.OutcomeHit

	case cache.ProbeReserved:
		e := c.mshr.Lookup(req.Addr)
		if e == nil {
			panic(fmt.Sprintf("core: reserved line %#x without MSHR entry", uint64(req.Addr)))
		}
		if !c.mshr.CanMerge(e) {
			return c.blocked(req, set, policy.BlockNoMerge)
		}
		c.acceptAccess(req, set)
		c.mshr.Merge(e, req)
		c.st.L1DMisses++
		c.st.L1DTraffic++
		return mem.OutcomeMiss

	default: // ProbeMiss
		return c.accessMiss(req, set)
	}
}

// accessMiss handles a load that matched nothing in the TDA.
func (c *L1D) accessMiss(req *mem.Request, set int) mem.AccessOutcome {
	// Structural hazards: a serviced miss needs an MSHR entry and a
	// miss-queue slot.
	if c.mshr.Full() || c.missQ.Full() {
		return c.blocked(req, set, policy.BlockStructural)
	}

	victim := c.ta.VictimIn(set, c.eligible)
	if victim < 0 {
		// Every line in the set is reserved or protected.
		return c.blocked(req, set, policy.BlockNoVictim)
	}

	if !c.pol.Admit(req, set) {
		return c.doBypass(req, set)
	}

	c.acceptAccess(req, set)
	c.pol.OnAllocate(req, set)

	evicted := c.ta.Reserve(set, victim, req.Addr)
	if evicted.Valid {
		c.st.L1DEvictions++
		c.pol.OnEvict(set, evicted)
	}
	ln := &c.ta.Set(set)[victim]
	ln.InsnID = req.InsnID
	c.pol.OnReserved(req, set, ln)
	c.mshr.Allocate(req, set, victim)
	if !c.missQ.Push(req) {
		panic("core: miss queue full after capacity check")
	}
	c.st.L1DMisses++
	c.st.L1DTraffic++
	return mem.OutcomeMiss
}

// doBypass sends req around the cache. The bypass path never stalls
// (it has its own queue sharing only the ICNT injection port).
func (c *L1D) doBypass(req *mem.Request, set int) mem.AccessOutcome {
	c.acceptAccess(req, set)
	c.pol.OnBypass(req, set)
	req.Bypass = true
	c.bypsQ.Push(req)
	c.st.L1DBypasses++
	return mem.OutcomeBypass
}

// accessStore implements write-through, write-no-allocate stores with
// write-evict on hit (Fermi global-store semantics). Stores never stall
// and never receive responses.
func (c *L1D) accessStore(req *mem.Request) mem.AccessOutcome {
	set, way, res := c.ta.Probe(req.Addr)
	if res == cache.ProbeHit {
		c.ta.Invalidate(set, way)
	}
	c.bypsQ.Push(req)
	c.st.StoreAccesses++
	return mem.OutcomeBypass
}

// PopOutgoing hands the next fetch/store packet to the interconnect, or
// nil when nothing is pending. Serviced misses drain before the bypass
// path.
func (c *L1D) PopOutgoing() *mem.Request {
	if r := c.missQ.Pop(); r != nil {
		return r
	}
	return c.bypsQ.Pop()
}

// HasOutgoing reports whether PopOutgoing would return a packet.
func (c *L1D) HasOutgoing() bool {
	return !c.missQ.Empty() || !c.bypsQ.Empty()
}

// OnResponse accepts a returning fetch from the interconnect: bypassed
// requests go straight to the warp; serviced misses fill their reserved
// line and release every merged request.
func (c *L1D) OnResponse(req *mem.Request) {
	if req.Store {
		panic("core: store received a response")
	}
	if req.Bypass {
		c.deliver(req)
		return
	}
	e := c.mshr.Release(req.Addr)
	if e == nil {
		panic(fmt.Sprintf("core: response for %#x without MSHR entry", uint64(req.Addr)))
	}
	c.ta.Fill(e.Set, e.Way)
	ln := &c.ta.Set(e.Set)[e.Way]
	ln.InsnID = req.InsnID
	c.pol.OnFill(req, ln)
	for _, r := range e.Requests {
		c.deliver(r)
	}
	c.mshr.Recycle(e)
}

// Pending reports outstanding work: queued packets, live MSHR entries, or
// undelivered hits. The engine uses it to detect quiescence.
func (c *L1D) Pending() bool {
	return c.HasOutgoing() || c.mshr.Size() > 0 || len(c.hitQ) > 0
}
