package core

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/policy"
)

// harness wires an L1D to a recording delivery sink and a perfect memory
// that can echo outgoing requests back as responses on demand.
type harness struct {
	c         *L1D
	delivered []*mem.Request
	nextID    uint64
}

func newHarness(policy config.Policy, cfg *config.Config) *harness {
	h := &harness{}
	if cfg == nil {
		cfg = config.Baseline()
	}
	h.c = NewL1D(cfg, policy, func(r *mem.Request) { h.delivered = append(h.delivered, r) })
	return h
}

func (h *harness) load(a addr.Addr, pc uint32) mem.AccessOutcome {
	h.nextID++
	return h.c.Access(&mem.Request{
		ID: h.nextID, Addr: a, PC: pc, InsnID: addr.HashPC(pc),
	})
}

func (h *harness) store(a addr.Addr, pc uint32) mem.AccessOutcome {
	h.nextID++
	return h.c.Access(&mem.Request{
		ID: h.nextID, Addr: a, PC: pc, InsnID: addr.HashPC(pc), Store: true,
	})
}

// drainMemory pops every outgoing packet and immediately responds to
// loads (stores are absorbed).
func (h *harness) drainMemory() int {
	n := 0
	for {
		r := h.c.PopOutgoing()
		if r == nil {
			return n
		}
		n++
		if !r.Store {
			h.c.OnResponse(r)
		}
	}
}

func (h *harness) tick(now uint64) { h.c.Tick(now) }

func lineAddr(i int) addr.Addr { return addr.Addr(i * 128) }

func TestMissThenFillThenHit(t *testing.T) {
	h := newHarness(config.PolicyBaseline, nil)
	a := lineAddr(1)
	if got := h.load(a, 0); got != mem.OutcomeMiss {
		t.Fatalf("first access = %v, want miss", got)
	}
	if h.c.Stats().L1DMisses != 1 || h.c.Stats().L1DCompulsory != 1 {
		t.Errorf("miss/compulsory = %d/%d", h.c.Stats().L1DMisses, h.c.Stats().L1DCompulsory)
	}
	if n := h.drainMemory(); n != 1 {
		t.Fatalf("outgoing packets = %d", n)
	}
	if len(h.delivered) != 1 {
		t.Fatalf("delivered = %d", len(h.delivered))
	}
	if got := h.load(a, 0); got != mem.OutcomeHit {
		t.Fatalf("second access = %v, want hit", got)
	}
	h.tick(2) // hit latency 1 elapses
	if len(h.delivered) != 2 {
		t.Errorf("hit not delivered: %d", len(h.delivered))
	}
	st := h.c.Stats()
	if st.L1DHits != 1 || st.L1DAccesses != 2 || st.L1DTraffic != 2 {
		t.Errorf("hits/accesses/traffic = %d/%d/%d", st.L1DHits, st.L1DAccesses, st.L1DTraffic)
	}
	if err := st.CheckConservation(); err != nil {
		t.Error(err)
	}
}

func TestMSHRMergeDeliversAllWaiters(t *testing.T) {
	h := newHarness(config.PolicyBaseline, nil)
	a := lineAddr(2)
	if h.load(a, 0) != mem.OutcomeMiss {
		t.Fatal("first miss")
	}
	// Second access to the in-flight line merges.
	if got := h.load(a, 1); got != mem.OutcomeMiss {
		t.Fatalf("merge access = %v", got)
	}
	if h.c.Stats().L1DMisses != 2 {
		t.Errorf("misses = %d, want 2", h.c.Stats().L1DMisses)
	}
	// One packet only goes to memory; both requests are delivered.
	if n := h.drainMemory(); n != 1 {
		t.Errorf("outgoing = %d, want 1 (merged)", n)
	}
	if len(h.delivered) != 2 {
		t.Errorf("delivered = %d, want 2", len(h.delivered))
	}
}

func TestMergeCapacityStallsBaseline(t *testing.T) {
	cfg := config.Baseline()
	cfg.L1DMSHRMerges = 2
	h := newHarness(config.PolicyBaseline, cfg)
	a := lineAddr(3)
	h.load(a, 0)
	h.load(a, 1)
	if got := h.load(a, 2); got != mem.OutcomeStall {
		t.Fatalf("over-merge = %v, want stall", got)
	}
	if h.c.Stats().L1DStalls != 1 {
		t.Errorf("stalls = %d", h.c.Stats().L1DStalls)
	}
}

func TestMergeCapacityBypassesUnderStallBypass(t *testing.T) {
	cfg := config.Baseline()
	cfg.L1DMSHRMerges = 2
	h := newHarness(config.PolicyStallBypass, cfg)
	a := lineAddr(3)
	h.load(a, 0)
	h.load(a, 1)
	if got := h.load(a, 2); got != mem.OutcomeBypass {
		t.Fatalf("over-merge = %v, want bypass", got)
	}
}

func TestMSHRFullStallsBaselineAndBypassesSB(t *testing.T) {
	cfg := config.Baseline()
	cfg.L1DMSHRs = 2
	cfg.L1DMissQueue = 16
	for _, tc := range []struct {
		policy config.Policy
		want   mem.AccessOutcome
	}{
		{config.PolicyBaseline, mem.OutcomeStall},
		{config.PolicyStallBypass, mem.OutcomeBypass},
		{config.PolicyGlobalProtection, mem.OutcomeStall},
		{config.PolicyDLP, mem.OutcomeStall},
	} {
		h := newHarness(tc.policy, cfg)
		h.load(lineAddr(1), 0)
		h.load(lineAddr(2), 0)
		if got := h.load(lineAddr(3), 0); got != tc.want {
			t.Errorf("%v: MSHR-full access = %v, want %v", tc.policy, got, tc.want)
		}
	}
}

func TestMissQueueFullStalls(t *testing.T) {
	cfg := config.Baseline()
	cfg.L1DMissQueue = 1
	h := newHarness(config.PolicyBaseline, cfg)
	h.load(lineAddr(1), 0)
	if got := h.load(lineAddr(2), 0); got != mem.OutcomeStall {
		t.Fatalf("missQ-full access = %v, want stall", got)
	}
}

// fullyReservedSet drives cfg.L1D.Ways misses into one set without
// draining memory, so every way is reserved. Returns an address mapping
// to the same set. The caller needs sets whose addresses we can predict:
// use a linear-index config to make set selection trivial.
func linearCfg() *config.Config {
	cfg := config.Baseline()
	cfg.L1D.Hashed = false
	return cfg
}

func sameSetAddrs(cfg *config.Config, n int) []addr.Addr {
	out := make([]addr.Addr, n)
	for i := range out {
		// Same set under linear indexing: stride = sets * lineSize.
		out[i] = addr.Addr(i * cfg.L1D.Sets * cfg.L1D.LineSize)
	}
	return out
}

func TestFullyReservedSetStallsBaselineBypassesOthers(t *testing.T) {
	for _, tc := range []struct {
		policy config.Policy
		want   mem.AccessOutcome
	}{
		{config.PolicyBaseline, mem.OutcomeStall},
		{config.PolicyStallBypass, mem.OutcomeBypass},
		{config.PolicyGlobalProtection, mem.OutcomeBypass},
		{config.PolicyDLP, mem.OutcomeBypass},
	} {
		cfg := linearCfg()
		h := newHarness(tc.policy, cfg)
		as := sameSetAddrs(cfg, cfg.L1D.Ways+1)
		for i := 0; i < cfg.L1D.Ways; i++ {
			if got := h.load(as[i], 0); got != mem.OutcomeMiss {
				t.Fatalf("%v: setup miss %d = %v", tc.policy, i, got)
			}
		}
		if got := h.load(as[cfg.L1D.Ways], 0); got != tc.want {
			t.Errorf("%v: access to fully reserved set = %v, want %v", tc.policy, got, tc.want)
		}
	}
}

func TestBypassedRequestDeliveredWithoutFill(t *testing.T) {
	cfg := linearCfg()
	h := newHarness(config.PolicyStallBypass, cfg)
	as := sameSetAddrs(cfg, cfg.L1D.Ways+1)
	for i := 0; i < cfg.L1D.Ways; i++ {
		h.load(as[i], 0)
	}
	extra := as[cfg.L1D.Ways]
	if h.load(extra, 0) != mem.OutcomeBypass {
		t.Fatal("setup bypass failed")
	}
	h.drainMemory()
	// All Ways+1 requests delivered...
	if len(h.delivered) != cfg.L1D.Ways+1 {
		t.Fatalf("delivered = %d", len(h.delivered))
	}
	// ...but the bypassed line is not resident.
	if got := h.load(extra, 0); got == mem.OutcomeHit {
		t.Error("bypassed line was filled into the cache")
	}
	if err := h.c.Stats().CheckConservation(); err != nil {
		t.Error(err)
	}
}

// TestDLPProtectedSetBypasses builds the paper's §4.1.1 situation: all
// lines in a set valid and protected (PL > 0), so an incoming miss must
// bypass rather than evict, and repeated bypasses eventually drain PL and
// release the set.
func TestDLPProtectedSetBypasses(t *testing.T) {
	cfg := linearCfg()
	h := newHarness(config.PolicyDLP, cfg)
	as := sameSetAddrs(cfg, cfg.L1D.Ways+1)
	// Fill the set.
	for i := 0; i < cfg.L1D.Ways; i++ {
		h.load(as[i], 0)
	}
	h.drainMemory()
	// Manually protect every line (simulating learned PDs).
	set := h.c.mapper.Set(as[0])
	for w := range h.c.ta.Set(set) {
		h.c.ta.Set(set)[w].PL = 3
	}
	extra := as[cfg.L1D.Ways]
	if got := h.load(extra, 0); got != mem.OutcomeBypass {
		t.Fatalf("access to protected set = %v, want bypass", got)
	}
	// Each bypass decrements every PL by 1; after two more queries the
	// set opens up (PL 3 -> 0) and the next miss allocates.
	h.load(extra, 0)
	h.load(extra, 0)
	if got := h.load(extra, 0); got != mem.OutcomeMiss {
		t.Errorf("access after PL drained = %v, want miss (set released)", got)
	}
	if h.c.Stats().L1DEvictions != 1 {
		t.Errorf("evictions = %d, want 1", h.c.Stats().L1DEvictions)
	}
}

// TestBaselineIgnoresProtection: baseline evicts LRU lines regardless of
// PL (its lines never gain PL in the first place).
func TestBaselineEvictsLRU(t *testing.T) {
	cfg := linearCfg()
	h := newHarness(config.PolicyBaseline, cfg)
	as := sameSetAddrs(cfg, cfg.L1D.Ways+1)
	for i := 0; i < cfg.L1D.Ways; i++ {
		h.load(as[i], 0)
	}
	h.drainMemory()
	if got := h.load(as[cfg.L1D.Ways], 0); got != mem.OutcomeMiss {
		t.Fatalf("eviction miss = %v", got)
	}
	if h.c.Stats().L1DEvictions != 1 {
		t.Errorf("evictions = %d", h.c.Stats().L1DEvictions)
	}
	h.drainMemory()
	// as[0] was LRU and must be gone.
	if got := h.load(as[0], 0); got == mem.OutcomeHit {
		t.Error("LRU line still resident after eviction")
	}
}

// TestVTACreditsOnRefetch: evicting a line and re-requesting it registers
// a VTA hit credited to the instruction that owned the line.
func TestVTACreditsOnRefetch(t *testing.T) {
	cfg := linearCfg()
	h := newHarness(config.PolicyDLP, cfg)
	as := sameSetAddrs(cfg, cfg.L1D.Ways+1)
	for i := 0; i <= cfg.L1D.Ways; i++ { // last one evicts as[0]
		h.load(as[i], 5)
		h.drainMemory()
	}
	if h.c.Stats().VTAHits != 0 {
		t.Fatalf("premature VTA hits: %d", h.c.Stats().VTAHits)
	}
	// Refetch the evicted line: VTA hit.
	h.load(as[0], 5)
	if h.c.Stats().VTAHits != 1 {
		t.Errorf("VTA hits = %d, want 1", h.c.Stats().VTAHits)
	}
	_, vta := h.c.PDPT().GlobalHits()
	if vta != 1 {
		t.Errorf("PDPT global VTA hits = %d, want 1", vta)
	}
}

// TestHitAttributionChain reproduces the §4.1.1 example: a line brought
// in by insn 0 and then hit by insns 1, 2, 3 credits hits to 0, 1, 2.
func TestHitAttributionChain(t *testing.T) {
	h := newHarness(config.PolicyDLP, nil)
	a := lineAddr(7)
	h.load(a, 0)
	h.drainMemory()
	credits := make([]uint64, 4)
	for step, pc := range []uint32{1, 2, 3} {
		before := make([]uint64, 4)
		for i := range before {
			before[i], _ = h.c.PDPT().EntryHits(addr.HashPC(uint32(i)))
		}
		if got := h.load(a, pc); got != mem.OutcomeHit {
			t.Fatalf("step %d: %v", step, got)
		}
		for i := range credits {
			after, _ := h.c.PDPT().EntryHits(addr.HashPC(uint32(i)))
			credits[i] = after - before[i]
		}
		wantCredited := pc - 1
		for i := range credits {
			want := uint64(0)
			if uint32(i) == wantCredited {
				want = 1
			}
			if credits[i] != want {
				t.Errorf("step %d: insn %d credited %d, want %d", step, i, credits[i], want)
			}
		}
	}
}

func TestStoreWriteEvictsAndForwards(t *testing.T) {
	h := newHarness(config.PolicyBaseline, nil)
	a := lineAddr(9)
	h.load(a, 0)
	h.drainMemory()
	if got := h.store(a, 1); got != mem.OutcomeBypass {
		t.Fatalf("store outcome = %v", got)
	}
	if h.c.Stats().StoreAccesses != 1 {
		t.Errorf("StoreAccesses = %d", h.c.Stats().StoreAccesses)
	}
	// Store invalidated the line (write-evict).
	if got := h.load(a, 0); got == mem.OutcomeHit {
		t.Error("line survived a store hit")
	}
	// The store packet travels to memory.
	found := false
	for {
		r := h.c.PopOutgoing()
		if r == nil {
			break
		}
		if r.Store {
			found = true
		} else {
			h.c.OnResponse(r)
		}
	}
	if !found {
		t.Error("store packet never reached the outgoing port")
	}
}

func TestHitLatencyRespected(t *testing.T) {
	cfg := config.Baseline()
	cfg.L1DHitLatency = 5
	h := newHarness(config.PolicyBaseline, cfg)
	a := lineAddr(4)
	h.load(a, 0)
	h.drainMemory()
	h.delivered = nil
	h.tick(10)
	h.load(a, 0) // hit at now=10, ready at 15
	h.tick(14)
	if len(h.delivered) != 0 {
		t.Fatal("hit delivered before its latency elapsed")
	}
	h.tick(15)
	if len(h.delivered) != 1 {
		t.Error("hit not delivered at ready time")
	}
}

func TestPendingReflectsOutstandingWork(t *testing.T) {
	h := newHarness(config.PolicyBaseline, nil)
	if h.c.Pending() {
		t.Error("fresh cache pending")
	}
	h.load(lineAddr(1), 0)
	if !h.c.Pending() {
		t.Error("miss outstanding but not pending")
	}
	h.drainMemory()
	if h.c.Pending() {
		t.Error("still pending after drain")
	}
	h.load(lineAddr(1), 0) // hit queued
	if !h.c.Pending() {
		t.Error("queued hit response not pending")
	}
	h.tick(5)
	if h.c.Pending() {
		t.Error("pending after hit delivery")
	}
}

func TestResponseForUnknownLinePanics(t *testing.T) {
	h := newHarness(config.PolicyBaseline, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for orphan response")
		}
	}()
	h.c.OnResponse(&mem.Request{Addr: lineAddr(1)})
}

func TestStoreResponsePanics(t *testing.T) {
	h := newHarness(config.PolicyBaseline, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for store response")
		}
	}()
	h.c.OnResponse(&mem.Request{Addr: lineAddr(1), Store: true})
}

// TestConservationProperty: under random access streams and random drain
// points, every policy maintains hits+misses+bypasses == accesses, and
// delivered responses eventually match non-stalled load count.
func TestConservationProperty(t *testing.T) {
	policies := policy.All()
	f := func(ops []uint16, policySel uint8) bool {
		cfg := config.Baseline()
		cfg.L1DMSHRs = 4
		cfg.L1DMissQueue = 4
		h := newHarness(policies[int(policySel)%len(policies)], cfg)
		accepted := 0
		for i, op := range ops {
			a := lineAddr(int(op % 256))
			pc := uint32(op % 7)
			if op%11 == 0 {
				h.store(a, pc)
				continue
			}
			if out := h.load(a, pc); out != mem.OutcomeStall {
				accepted++
			}
			if op%5 == 0 {
				h.drainMemory()
			}
			h.tick(uint64(i + 2))
		}
		h.drainMemory()
		h.tick(1 << 40)
		if err := h.c.Stats().CheckConservation(); err != nil {
			return false
		}
		return len(h.delivered) == accepted && !h.c.Pending()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPLBoundsProperty: protected-life values never leave [0, MaxPD]
// under random DLP traffic.
func TestPLBoundsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		cfg := config.Baseline()
		h := newHarness(config.PolicyDLP, cfg)
		for i, op := range ops {
			h.load(lineAddr(int(op%512)), uint32(op%13))
			if op%3 == 0 {
				h.drainMemory()
			}
			h.tick(uint64(i + 2))
		}
		for s := 0; s < h.c.ta.NumSets(); s++ {
			for _, ln := range h.c.ta.Set(s) {
				if ln.PL < 0 || ln.PL > cfg.MaxPD() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBypassKeepsVTAEvidence: a bypassed access to a line present in the
// VTA credits the stored instruction without consuming the entry, so the
// reuse evidence keeps flowing while the line stays out of the cache.
func TestBypassKeepsVTAEvidence(t *testing.T) {
	cfg := linearCfg()
	h := newHarness(config.PolicyDLP, cfg)
	as := sameSetAddrs(cfg, cfg.L1D.Ways+2)
	// Fill the set, then evict as[0] into the VTA.
	for i := 0; i <= cfg.L1D.Ways; i++ {
		h.load(as[i], 3)
		h.drainMemory()
	}
	// Protect every resident line so the next misses bypass.
	set := h.c.mapper.Set(as[0])
	for w := range h.c.ta.Set(set) {
		h.c.ta.Set(set)[w].PL = 10
	}
	before := h.c.Stats().VTAHits
	for i := 0; i < 3; i++ {
		if got := h.load(as[0], 3); got != mem.OutcomeBypass {
			t.Fatalf("access %d = %v, want bypass", i, got)
		}
	}
	if got := h.c.Stats().VTAHits - before; got != 3 {
		t.Errorf("VTA hits during bypasses = %d, want 3 (entry not consumed)", got)
	}
}

// TestGlobalProtectionProtectsEverything: under GP, lines brought in by
// any instruction receive the single global PD — including instructions
// that never show reuse (the over-protection §3.3 warns about).
func TestGlobalProtectionProtectsEverything(t *testing.T) {
	cfg := linearCfg()
	h := newHarness(config.PolicyGlobalProtection, cfg)
	// Drive VTA evidence with instruction 1 only.
	as := sameSetAddrs(cfg, cfg.L1D.Ways+1)
	for rep := 0; rep < 60; rep++ {
		for _, a := range as {
			h.load(a, 1)
			h.drainMemory()
		}
	}
	if pd := h.c.PDPT().PD(0); pd == 0 {
		t.Fatal("global PD did not rise")
	}
	// A brand-new instruction's line still gets the global PD at fill.
	// Use an untouched set so the access allocates rather than bypasses.
	novel := addr.Addr(5 * cfg.L1D.LineSize)
	h.load(novel, 99)
	h.drainMemory()
	set, way, res := h.c.ta.Probe(novel)
	if res != cache.ProbeHit {
		t.Fatalf("novel line not resident: %v", res)
	}
	if pl := h.c.ta.Set(set)[way].PL; pl == 0 {
		t.Error("GP left a fresh instruction's line unprotected; it must over-protect")
	}
}

// TestDLPDoesNotProtectUnseenInstruction: the contrast with GP — under
// DLP a fresh instruction with no VTA evidence fills with PL 0.
func TestDLPDoesNotProtectUnseenInstruction(t *testing.T) {
	cfg := linearCfg()
	h := newHarness(config.PolicyDLP, cfg)
	as := sameSetAddrs(cfg, cfg.L1D.Ways+1)
	for rep := 0; rep < 60; rep++ {
		for _, a := range as {
			h.load(a, 1)
			h.drainMemory()
		}
	}
	if pd := h.c.PDPT().PD(addr.HashPC(1)); pd == 0 {
		t.Fatal("per-PC PD for the reusing instruction did not rise")
	}
	novel := addr.Addr(5 * cfg.L1D.LineSize)
	h.load(novel, 99)
	h.drainMemory()
	set, way, res := h.c.ta.Probe(novel)
	if res != cache.ProbeHit {
		t.Fatalf("novel line not resident: %v", res)
	}
	if pl := h.c.ta.Set(set)[way].PL; pl != 0 {
		t.Errorf("DLP protected an instruction with no evidence: PL=%d", pl)
	}
}
