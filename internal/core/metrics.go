package core

import "repro/internal/metrics"

// RegisterMetrics registers the cache's counters and the occupancy
// gauges of its subcomponents under prefix (e.g. "sm3.l1d"). Counters
// are registered by pointer into the stats the cache already
// maintains, so the access path is byte-for-byte the code that runs
// with metrics disabled.
func (c *L1D) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.Counter(prefix+".accesses", &c.st.L1DAccesses)
	reg.Counter(prefix+".hits", &c.st.L1DHits)
	reg.Counter(prefix+".misses", &c.st.L1DMisses)
	reg.Counter(prefix+".bypasses", &c.st.L1DBypasses)
	reg.Counter(prefix+".evictions", &c.st.L1DEvictions)
	reg.Counter(prefix+".stalls", &c.st.L1DStalls)
	reg.Counter(prefix+".traffic", &c.st.L1DTraffic)
	reg.Counter(prefix+".compulsory", &c.st.L1DCompulsory)
	reg.Counter(prefix+".stores", &c.st.StoreAccesses)
	reg.Counter(prefix+".vta_hits", &c.st.VTAHits)
	c.mshr.RegisterMetrics(reg, prefix+".mshr")
	c.missQ.RegisterMetrics(reg, prefix+".missq")
	c.bypsQ.RegisterMetrics(reg, prefix+".bypsq")
	reg.IntGauge(prefix+".hitq.depth", func() int { return len(c.hitQ) })
	if c.vta != nil {
		c.vta.RegisterMetrics(reg, prefix+".vta")
	}
	if c.pdpt != nil {
		c.pdpt.RegisterMetrics(reg, prefix+".pdpt")
	}
}

// RegisterMetrics registers the victim tag array's live-entry gauge.
func (v *VTA) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.IntGauge(prefix+".entries", v.Len)
}

// RegisterMetrics registers the prediction table's sampling progress
// and protection-distance level. The hit counters are per-period
// levels (EndSample resets them), so they are gauges, not counters;
// pd.sum/pd.max summarize the current protection distances across all
// table entries — the adaptation signal Figs. 8–9 are about.
func (p *PDPT) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.Counter(prefix+".samples", &p.samples)
	reg.Gauge(prefix+".tda_hits", func() uint64 { return p.globalTDA })
	reg.Gauge(prefix+".vta_hits", func() uint64 { return p.globalVTA })
	reg.Gauge(prefix+".pd.sum", func() uint64 {
		var sum uint64
		for _, d := range p.pd {
			sum += uint64(d)
		}
		return sum
	})
	reg.Gauge(prefix+".pd.max", func() uint64 {
		var m int
		for _, d := range p.pd {
			if d > m {
				m = d
			}
		}
		return uint64(m)
	})
}
