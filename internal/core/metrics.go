package core

import "repro/internal/metrics"

// RegisterMetrics registers the cache's counters and the occupancy
// gauges of its subcomponents under prefix (e.g. "sm3.l1d"), then the
// active policy's own instrumentation (VTA occupancy, PDPT levels,
// predictor counters — whatever the scheme maintains). Counters are
// registered by pointer into the stats the cache already maintains, so
// the access path is byte-for-byte the code that runs with metrics
// disabled.
func (c *L1D) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.Counter(prefix+".accesses", &c.st.L1DAccesses)
	reg.Counter(prefix+".hits", &c.st.L1DHits)
	reg.Counter(prefix+".misses", &c.st.L1DMisses)
	reg.Counter(prefix+".bypasses", &c.st.L1DBypasses)
	reg.Counter(prefix+".evictions", &c.st.L1DEvictions)
	reg.Counter(prefix+".stalls", &c.st.L1DStalls)
	reg.Counter(prefix+".traffic", &c.st.L1DTraffic)
	reg.Counter(prefix+".compulsory", &c.st.L1DCompulsory)
	reg.Counter(prefix+".stores", &c.st.StoreAccesses)
	reg.Counter(prefix+".vta_hits", &c.st.VTAHits)
	c.mshr.RegisterMetrics(reg, prefix+".mshr")
	c.missQ.RegisterMetrics(reg, prefix+".missq")
	c.bypsQ.RegisterMetrics(reg, prefix+".bypsq")
	reg.IntGauge(prefix+".hitq.depth", func() int { return len(c.hitQ) })
	c.pol.RegisterMetrics(reg, prefix)
}
