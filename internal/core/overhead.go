package core

import "repro/internal/config"

// Overhead is the §4.3 hardware-cost model of the DLP additions relative
// to the baseline L1D tag-and-data array.
type Overhead struct {
	TDAExtraBytes int     // instruction-ID + PL bits added to every TDA entry
	VTABytes      int     // victim tag array storage
	PDPTBytes     int     // prediction table storage
	TotalBytes    int     // sum of the above
	BaselineBytes int     // baseline TDA: data + tags
	Percent       float64 // TotalBytes / BaselineBytes * 100
}

// Bit widths fixed by the paper's layout (§4.3).
const (
	tagBits     = 32 // address tag per VTA entry and per baseline TDA entry
	tdaHitsBits = 8  // PDPT TDA-hits field
	vtaHitsBits = 10 // PDPT VTA-hits field
)

// insnIDBits returns the width of the instruction-ID field: log2 of the
// PDPT entry count (7 bits for the paper's 128 entries).
func insnIDBits(entries int) int {
	bits := 0
	for v := entries - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}

// ComputeOverhead evaluates the model for a configuration. With the
// baseline configuration it reproduces the paper's numbers exactly:
// 176 + 624 + 464 = 1264 extra bytes over a 16896-byte baseline, 7.48%.
func ComputeOverhead(cfg *config.Config) Overhead {
	lines := cfg.L1D.Lines()
	vtaEntries := cfg.L1D.Sets * cfg.VTAWays
	idBits := insnIDBits(cfg.PDPTEntries)

	o := Overhead{
		TDAExtraBytes: lines * (idBits + cfg.PDBits) / 8,
		VTABytes:      vtaEntries * (tagBits + idBits) / 8,
		PDPTBytes:     cfg.PDPTEntries * (idBits + tdaHitsBits + vtaHitsBits + cfg.PDBits) / 8,
		BaselineBytes: lines * (cfg.L1D.LineSize + tagBits/8),
	}
	o.TotalBytes = o.TDAExtraBytes + o.VTABytes + o.PDPTBytes
	if o.BaselineBytes > 0 {
		o.Percent = float64(o.TotalBytes) / float64(o.BaselineBytes) * 100
	}
	return o
}
