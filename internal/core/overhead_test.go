package core

import (
	"math"
	"testing"

	"repro/internal/config"
)

// TestHardwareOverhead checks the §4.3 arithmetic against the paper's
// exact numbers for the baseline configuration.
func TestHardwareOverhead(t *testing.T) {
	o := ComputeOverhead(config.Baseline())
	if o.TDAExtraBytes != 176 {
		t.Errorf("TDA extra = %d bytes, want 176", o.TDAExtraBytes)
	}
	if o.VTABytes != 624 {
		t.Errorf("VTA = %d bytes, want 624", o.VTABytes)
	}
	if o.PDPTBytes != 464 {
		t.Errorf("PDPT = %d bytes, want 464", o.PDPTBytes)
	}
	if o.TotalBytes != 1264 {
		t.Errorf("total = %d bytes, want 1264", o.TotalBytes)
	}
	if o.BaselineBytes != 16896 {
		t.Errorf("baseline = %d bytes, want 16896", o.BaselineBytes)
	}
	if math.Abs(o.Percent-7.48) > 0.01 {
		t.Errorf("overhead = %.3f%%, want 7.48%%", o.Percent)
	}
}

func TestInsnIDBits(t *testing.T) {
	cases := map[int]int{128: 7, 64: 6, 2: 1, 1: 0, 100: 7}
	for entries, want := range cases {
		if got := insnIDBits(entries); got != want {
			t.Errorf("insnIDBits(%d) = %d, want %d", entries, got, want)
		}
	}
}

func TestOverheadScalesWithAssociativity(t *testing.T) {
	base := ComputeOverhead(config.Baseline())
	big := ComputeOverhead(config.L1D32KB())
	if big.TDAExtraBytes != 2*base.TDAExtraBytes {
		t.Errorf("TDA extra did not double: %d vs %d", big.TDAExtraBytes, base.TDAExtraBytes)
	}
	if big.VTABytes != 2*base.VTABytes {
		t.Errorf("VTA did not double: %d vs %d", big.VTABytes, base.VTABytes)
	}
	if big.PDPTBytes != base.PDPTBytes {
		t.Errorf("PDPT size should not depend on cache size: %d vs %d", big.PDPTBytes, base.PDPTBytes)
	}
}
