// Package dram models a GDDR5-style memory channel per partition: a set
// of banks with open-row tracking (row-buffer hits are fast, conflicts
// pay activate+precharge), and a shared data bus that serializes line
// transfers. Timing is computed in memory-clock cycles and converted at
// the boundary, reflecting the Table 1 clock domains (core 650 MHz,
// memory 924 MHz).
package dram

import "repro/internal/addr"

// linesPerRow is the number of consecutive cache lines mapped to one DRAM
// row (2KB rows of 128B lines).
const linesPerRow = 16

type bank struct {
	openRow   uint64
	rowValid  bool
	busyUntil uint64 // memory-clock cycles
}

// Channel is one memory partition's DRAM channel.
type Channel struct {
	banks     []bank
	rowHit    uint64 // mem cycles for a row-buffer hit
	rowMiss   uint64 // mem cycles for activate + access (+ implicit precharge)
	busCycles uint64 // mem cycles the shared data bus is held per transfer
	busUntil  uint64

	interleave   uint64 // memory partitions the address space interleaves over
	memClockMHz  int
	coreClockMHz int
}

// New builds a channel with the given bank count and timing parameters
// (all in memory-clock cycles). interleave is the number of memory
// partitions lines are interleaved across: this channel sees every
// interleave-th line, so bank and row selection strip that factor first
// (otherwise every line of one partition would land in the same bank).
func New(banks, rowHit, rowMiss, busCycles, coreClockMHz, memClockMHz, interleave int) *Channel {
	if banks <= 0 || rowHit <= 0 || rowMiss <= 0 || busCycles <= 0 ||
		coreClockMHz <= 0 || memClockMHz <= 0 || interleave <= 0 {
		panic("dram: invalid parameters")
	}
	return &Channel{
		banks:        make([]bank, banks),
		rowHit:       uint64(rowHit),
		rowMiss:      uint64(rowMiss),
		busCycles:    uint64(busCycles),
		interleave:   uint64(interleave),
		memClockMHz:  memClockMHz,
		coreClockMHz: coreClockMHz,
	}
}

// toMem converts a core-clock cycle count into memory-clock cycles.
func (c *Channel) toMem(coreCycle uint64) uint64 {
	return coreCycle * uint64(c.memClockMHz) / uint64(c.coreClockMHz)
}

// toCore converts memory-clock cycles into core-clock cycles, rounding up
// so completions never appear earlier than they physically occur.
func (c *Channel) toCore(memCycle uint64) uint64 {
	num := memCycle * uint64(c.coreClockMHz)
	den := uint64(c.memClockMHz)
	return (num + den - 1) / den
}

// Access schedules a line read or write beginning no earlier than core
// cycle now and returns the core cycle at which it completes. Writes use
// the same bank/bus occupancy as reads (GDDR5 write timing is modeled as
// symmetric).
func (c *Channel) Access(lineAddr addr.Addr, lineSize int, now uint64) uint64 {
	lineID := uint64(lineAddr) / uint64(lineSize) / c.interleave
	b := &c.banks[lineID%uint64(len(c.banks))]
	row := lineID / uint64(len(c.banks)) / linesPerRow

	start := c.toMem(now)
	if b.busyUntil > start {
		start = b.busyUntil
	}
	latency := c.rowMiss
	if b.rowValid && b.openRow == row {
		latency = c.rowHit
	}
	b.openRow = row
	b.rowValid = true
	ready := start + latency
	b.busyUntil = ready

	busStart := ready
	if c.busUntil > busStart {
		busStart = c.busUntil
	}
	done := busStart + c.busCycles
	c.busUntil = done
	return c.toCore(done)
}

// BusyUntil returns the latest core cycle at which any bank or the bus is
// still occupied, for quiescence detection.
func (c *Channel) BusyUntil() uint64 {
	latest := c.busUntil
	for i := range c.banks {
		if c.banks[i].busyUntil > latest {
			latest = c.banks[i].busyUntil
		}
	}
	return c.toCore(latest)
}
