package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

// equalClocks builds a channel where mem and core clocks match, so cycle
// arithmetic is directly checkable.
func equalClocks(banks int) *Channel {
	return New(banks, 10, 40, 4, 1000, 1000, 1)
}

func TestNewPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero banks")
		}
	}()
	New(0, 10, 40, 4, 650, 924, 1)
}

func TestFirstAccessPaysRowMiss(t *testing.T) {
	c := equalClocks(4)
	done := c.Access(0, 128, 0)
	// Row miss (40) + bus (4).
	if done != 44 {
		t.Errorf("first access done at %d, want 44", done)
	}
}

func TestRowBufferHit(t *testing.T) {
	c := equalClocks(4)
	c.Access(0, 128, 0)
	// Same bank (line 0 and line 4 both map to bank 0), same row.
	done := c.Access(4*128, 128, 0)
	// Bank busy until 40, then row hit 10, bus from 50: done 54.
	if done != 54 {
		t.Errorf("row-hit access done at %d, want 54", done)
	}
}

func TestRowConflict(t *testing.T) {
	c := equalClocks(1)
	c.Access(0, 128, 0) // opens row 0, bank busy until 40
	// Line 16 in bank 0 is row 1: conflict.
	done := c.Access(16*128, 128, 0)
	// Start at 40, row miss 40 -> 80, bus 4 -> 84.
	if done != 84 {
		t.Errorf("row-conflict access done at %d, want 84", done)
	}
}

func TestBankParallelism(t *testing.T) {
	c := equalClocks(2)
	d0 := c.Access(0, 128, 0)   // bank 0
	d1 := c.Access(128, 128, 0) // bank 1, overlaps bank 0
	if d0 != 44 {
		t.Errorf("bank0 done at %d", d0)
	}
	// Bank 1 row access overlaps; only the shared bus serializes:
	// ready at 40, bus busy until 44, transfer 44->48.
	if d1 != 48 {
		t.Errorf("bank1 done at %d, want 48 (bus serialized)", d1)
	}
}

func TestClockDomainConversion(t *testing.T) {
	// Core 650, mem 924 (Table 1): a 924-mem-cycle operation spans 650
	// core cycles.
	c := New(1, 920, 920, 4, 650, 924, 1)
	done := c.Access(0, 128, 0)
	// 924 mem cycles -> ceil(924*650/924) = 650 core cycles.
	if done != 650 {
		t.Errorf("924 mem cycles = %d core cycles, want 650", done)
	}
}

func TestMonotonicCompletionPerBank(t *testing.T) {
	f := func(lines []uint16, gaps []uint8) bool {
		c := New(6, 18, 60, 4, 650, 924, 1)
		now := uint64(0)
		bankDone := map[uint64]uint64{}
		for i, ln := range lines {
			if i < len(gaps) {
				now += uint64(gaps[i])
			}
			a := addr.Addr(uint64(ln) * 128)
			bankID := (uint64(ln)) % 6
			done := c.Access(a, 128, now)
			if done <= now {
				return false // completion can never precede issue
			}
			if done < bankDone[bankID] {
				return false // per-bank completions must be ordered
			}
			bankDone[bankID] = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBusyUntil(t *testing.T) {
	c := equalClocks(2)
	if c.BusyUntil() != 0 {
		t.Errorf("fresh channel busy until %d", c.BusyUntil())
	}
	done := c.Access(0, 128, 0)
	if got := c.BusyUntil(); got < done {
		t.Errorf("BusyUntil %d < completion %d", got, done)
	}
}
