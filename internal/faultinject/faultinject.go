// Package faultinject deterministically injects faults into runner
// batches and result caches, so tests can prove the execution layer's
// fault-tolerance properties — panic isolation, bounded retries,
// per-job deadlines, KeepGoing degradation, cache quarantine — without
// flakiness. Everything is seed-driven: fault placement comes from a
// splitmix64 stream over the seed, never from wall-clock time or global
// PRNG state, so the same plan faults the same jobs at any worker count
// and on every run.
//
// A Plan maps job indices to faults and compiles to a runner.Intercept:
//
//	p := faultinject.NewPlan(42)
//	p.Set(3, faultinject.Fault{Kind: faultinject.Panic})
//	p.Set(7, faultinject.Fault{Kind: faultinject.Hang})
//	r := &runner.Runner{KeepGoing: true, Timeout: 50 * time.Millisecond,
//		Intercept: p.Intercept()}
//
// Job 3 now panics inside its worker, job 7 blocks until its deadline
// fires, and every other job simulates normally. The package also
// provides disk-cache corruption helpers (CorruptEntry, TruncateEntry,
// StaleSchemaEntry) that damage persisted entries the way bit-rot,
// interrupted writes, and format drift would.
package faultinject

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/runner"
	"repro/internal/stats"
)

// Kind selects what an injected fault does to a simulation attempt.
type Kind int

const (
	// None leaves the job untouched.
	None Kind = iota
	// Panic panics inside the worker, exercising the runner's recover
	// path (the panic value carries the job index).
	Panic
	// Fail returns a permanent (non-transient) error: the job fails on
	// the first attempt and is never retried.
	Fail
	// Flaky returns a transient error for the first FailAttempts
	// attempts, then lets the real simulation run; it exercises
	// retry-then-succeed and, with FailAttempts > Runner.Retries,
	// retry-exhaustion.
	Flaky
	// Hang blocks until the attempt's context is cancelled — a job
	// that would run forever. Under a per-job deadline (Job.MaxWall /
	// Runner.Timeout) it fails with context.DeadlineExceeded; the
	// outcome is deterministic even though the deadline is wall-clock.
	Hang
	// CancelBatch invokes the plan's OnCancel callback (typically the
	// batch context's cancel function) and then blocks until the
	// attempt's context dies, modelling an external abort arriving
	// while work is in flight.
	CancelBatch
)

// String names the fault kind for labels and test output.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Panic:
		return "panic"
	case Fail:
		return "fail"
	case Flaky:
		return "flaky"
	case Hang:
		return "hang"
	case CancelBatch:
		return "cancel-batch"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault is one injected behavior.
type Fault struct {
	Kind Kind
	// FailAttempts is how many initial attempts a Flaky fault fails
	// before succeeding; 0 means 1.
	FailAttempts int
}

// Plan assigns faults to job indices. The zero Plan injects nothing;
// NewPlan seeds the deterministic index picker. Plans are safe for
// concurrent use once built (Set calls done before Intercept runs).
type Plan struct {
	seed   uint64
	faults map[int]Fault

	// OnCancel is invoked (once) by the first CancelBatch fault to
	// fire; tests point it at their batch context's cancel function.
	OnCancel func()

	mu         sync.Mutex
	cancelOnce bool
	injected   map[int]int // index -> injected attempts, for assertions
}

// NewPlan returns an empty plan whose PickIndices stream derives from
// seed alone.
func NewPlan(seed uint64) *Plan {
	return &Plan{seed: seed, faults: make(map[int]Fault), injected: make(map[int]int)}
}

// Set assigns a fault to the job at the given submission index.
func (p *Plan) Set(index int, f Fault) { p.faults[index] = f }

// Fault returns the fault assigned to index (Kind None when unset).
func (p *Plan) Fault(index int) Fault { return p.faults[index] }

// FaultedIndices returns the planned indices in ascending order.
func (p *Plan) FaultedIndices() []int {
	out := make([]int, 0, len(p.faults))
	for i, f := range p.faults {
		if f.Kind != None {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// PickIndices deterministically selects n distinct indices in [0,
// total) from the plan's seed — a reproducible "random" fault placement
// that is identical at any worker count and on every run.
func (p *Plan) PickIndices(n, total int) []int {
	if n > total {
		n = total
	}
	// Partial Fisher-Yates over [0,total) driven by splitmix64.
	perm := make([]int, total)
	for i := range perm {
		perm[i] = i
	}
	s := p.seed
	for i := 0; i < n; i++ {
		s = splitmix64(s)
		j := i + int(s%uint64(total-i))
		perm[i], perm[j] = perm[j], perm[i]
	}
	out := append([]int(nil), perm[:n]...)
	sort.Ints(out)
	return out
}

// splitmix64 is the SplitMix64 PRNG step: a bijective mixer with good
// avalanche behavior, small enough to own instead of importing.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Injected returns how many attempts were intercepted with a live fault
// at index, for test assertions.
func (p *Plan) Injected(index int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected[index]
}

// Intercept compiles the plan into the runner's fault-injection seam.
func (p *Plan) Intercept() runner.Intercept {
	return func(ctx context.Context, index, attempt int, job runner.Job, run runner.SimFunc) (*stats.Stats, error) {
		f, ok := p.faults[index]
		if !ok || f.Kind == None {
			return run(ctx)
		}
		switch f.Kind {
		case Flaky:
			failures := f.FailAttempts
			if failures <= 0 {
				failures = 1
			}
			if attempt >= failures {
				return run(ctx)
			}
			p.note(index)
			return nil, runner.Transient(fmt.Errorf("faultinject: transient failure %d/%d in job %d",
				attempt+1, failures, index))
		case Fail:
			p.note(index)
			return nil, fmt.Errorf("faultinject: injected permanent failure in job %d", index)
		case Panic:
			p.note(index)
			panic(fmt.Sprintf("faultinject: injected panic in job %d (%s)", index, job.Label))
		case Hang:
			p.note(index)
			<-ctx.Done()
			return nil, fmt.Errorf("faultinject: hung job %d gave up: %w", index, ctx.Err())
		case CancelBatch:
			p.note(index)
			p.fireCancel()
			<-ctx.Done()
			return nil, ctx.Err()
		default:
			return run(ctx)
		}
	}
}

func (p *Plan) note(index int) {
	p.mu.Lock()
	p.injected[index]++
	p.mu.Unlock()
}

func (p *Plan) fireCancel() {
	p.mu.Lock()
	fire := !p.cancelOnce && p.OnCancel != nil
	p.cancelOnce = true
	p.mu.Unlock()
	if fire {
		p.OnCancel()
	}
}

// File-corruption helpers. Each damages a file the way a specific
// real-world failure would. The generic forms (CorruptFileDigit,
// TruncateFile, GarbleFile) work on any path — the conformance corpus
// tests use them against committed expected_stats.json files — and the
// Entry forms specialize them to the runner's disk-cache layout, where
// the cache must quarantine the file as <key>.json.corrupt and
// resimulate.

// entryPath returns the on-disk path of key's entry.
func entryPath(dir, key string) string { return filepath.Join(dir, key+".json") }

// CorruptFileDigit replaces the last ASCII digit in the file with a
// different digit, modelling bit-rot inside a numeric payload: JSON
// stays parseable, a counter silently changes value, and only a
// checksum, conservation, or expected-value comparison can notice.
func CorruptFileDigit(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("faultinject: no file to corrupt: %w", err)
	}
	for i := len(b) - 1; i >= 0; i-- {
		if c := b[i]; c >= '0' && c <= '9' {
			if c == '9' {
				b[i] = '0'
			} else {
				b[i] = c + 1
			}
			return os.WriteFile(path, b, 0o644)
		}
	}
	return fmt.Errorf("faultinject: %s has no digit to flip", path)
}

// TruncateFile cuts the file in half, modelling an interrupted write
// that dodged atomic-rename protection (e.g. filesystem-level
// truncation after a crash). Halving a JSON document reliably leaves it
// unparseable, which is the failure mode readers must classify as
// corruption rather than a value mismatch.
func TruncateFile(path string) error {
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("faultinject: no file to truncate: %w", err)
	}
	return os.Truncate(path, info.Size()/2)
}

// GarbleFile overwrites the file with bytes that are not JSON at all,
// modelling a foreign file landing at the expected path (editor swap
// files, partial downloads, wrong redirect targets).
func GarbleFile(path string) error {
	if _, err := os.Stat(path); err != nil {
		return fmt.Errorf("faultinject: no file to garble: %w", err)
	}
	return os.WriteFile(path, []byte("\x00\xffnot json\x00"), 0o644)
}

// CorruptEntry flips payload bytes inside an existing cache entry,
// modelling bit-rot: the file remains syntactically valid JSON often
// enough that only the checksum (or conservation) check can catch it.
// It fails if no entry exists for key.
func CorruptEntry(dir, key string) error {
	return CorruptFileDigit(entryPath(dir, key))
}

// TruncateEntry cuts the entry in half, modelling an interrupted write
// that dodged the atomic-rename protection.
func TruncateEntry(dir, key string) error {
	return TruncateFile(entryPath(dir, key))
}

// StaleSchemaEntry rewrites the entry as a plausible but outdated
// format (PR 1's bare Stats JSON, which decodes with schema 0),
// modelling an entry written by an older build. A nil st writes an
// arbitrary-but-valid old-format payload.
func StaleSchemaEntry(dir, key string, st *stats.Stats) error {
	if st == nil {
		st = &stats.Stats{Cycles: 1000, Instructions: 500}
	}
	body := fmt.Sprintf("{\n  \"Cycles\": %d,\n  \"Instructions\": %d\n}\n", st.Cycles, st.Instructions)
	return os.WriteFile(entryPath(dir, key), []byte(body), 0o644)
}

// IsQuarantined reports whether key's entry has been moved aside as a
// .corrupt file.
func IsQuarantined(dir, key string) bool {
	_, err := os.Stat(entryPath(dir, key) + ".corrupt")
	return err == nil
}
