package faultinject

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/trace"
)

// tinyKernel builds a deterministic kernel small enough that a batch of
// them simulates in milliseconds.
func tinyKernel(name string, linesPerWarp, touches int) *trace.Kernel {
	k := &trace.Kernel{Name: name}
	blk := &trace.Block{}
	for w := 0; w < 2; w++ {
		wt := &trace.WarpTrace{}
		for l := 0; l < linesPerWarp; l++ {
			for t := 0; t < touches; t++ {
				wt.Instrs = append(wt.Instrs,
					trace.NewLoad(uint32(l%8), []addr.Addr{addr.Addr((w*linesPerWarp + l) * 128)}))
			}
			wt.Instrs = append(wt.Instrs, trace.NewCompute(50, 4, 32))
		}
		blk.Warps = append(blk.Warps, wt)
	}
	k.Blocks = append(k.Blocks, blk)
	return k
}

// batch builds n distinct jobs over the four policies.
func batch(n int) []runner.Job {
	jobs := make([]runner.Job, n)
	pols := policy.All()
	for i := range jobs {
		jobs[i] = runner.Job{
			Label:  fmt.Sprintf("job-%d", i),
			Config: config.Baseline(),
			Policy: pols[i%len(pols)],
			Kernel: tinyKernel(fmt.Sprintf("k%d", i/len(pols)), 4, 2),
		}
	}
	return jobs
}

// TestPanicIsolation: a panicking job becomes a *runner.JobPanicError
// with a captured stack; the pool and the process survive.
func TestPanicIsolation(t *testing.T) {
	p := NewPlan(1)
	p.Set(2, Fault{Kind: Panic})
	r := &runner.Runner{Workers: 4, Intercept: p.Intercept()}
	_, err := r.Run(context.Background(), batch(8))
	if err == nil {
		t.Fatal("panicking job did not fail the fail-fast batch")
	}
	var pe *runner.JobPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *runner.JobPanicError", err)
	}
	if pe.Index != 2 {
		t.Errorf("panic attributed to index %d, want 2", pe.Index)
	}
	if len(pe.Stack) == 0 {
		t.Error("recovered panic carries no stack")
	}
	if !strings.Contains(string(pe.Stack), "faultinject") {
		t.Error("stack does not reach the panic site")
	}
}

// TestKeepGoingPartialResults: with KeepGoing, every healthy job
// completes, every faulted job carries its own error, and the
// *runner.BatchError lists exactly the faulted indices in order.
func TestKeepGoingPartialResults(t *testing.T) {
	p := NewPlan(2)
	p.Set(1, Fault{Kind: Panic})
	p.Set(5, Fault{Kind: Fail})
	jobs := batch(8)
	r := &runner.Runner{Workers: 4, KeepGoing: true, Intercept: p.Intercept()}
	results, err := r.Run(context.Background(), jobs)

	var be *runner.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *runner.BatchError", err)
	}
	if be.Total != len(jobs) || len(be.Failures) != 2 {
		t.Fatalf("BatchError reports %d/%d failures, want 2/%d", len(be.Failures), be.Total, len(jobs))
	}
	if be.Failures[0].Index != 1 || be.Failures[1].Index != 5 {
		t.Errorf("failure indices = %d,%d; want 1,5", be.Failures[0].Index, be.Failures[1].Index)
	}
	for i, res := range results {
		faulted := i == 1 || i == 5
		if faulted && (res.Err == nil || res.Stats != nil) {
			t.Errorf("faulted job %d: err=%v stats=%v", i, res.Err, res.Stats)
		}
		if !faulted && (res.Err != nil || res.Stats == nil) {
			t.Errorf("healthy job %d did not complete: %v", i, res.Err)
		}
	}
	if !errors.As(err, new(*runner.JobPanicError)) {
		t.Error("BatchError does not expose the wrapped panic to errors.As")
	}
}

// TestRetryThenSucceed: a job failing transiently recovers within the
// retry budget and reports its attempt count.
func TestRetryThenSucceed(t *testing.T) {
	p := NewPlan(3)
	p.Set(0, Fault{Kind: Flaky, FailAttempts: 2})
	r := &runner.Runner{Workers: 1, Retries: 2, Intercept: p.Intercept()}
	results, err := r.Run(context.Background(), batch(1))
	if err != nil {
		t.Fatalf("flaky job did not recover: %v", err)
	}
	if results[0].Stats == nil {
		t.Fatal("recovered job has no stats")
	}
	if results[0].Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (2 transient failures + 1 success)", results[0].Attempts)
	}
	if got := p.Injected(0); got != 2 {
		t.Errorf("injected %d transient failures, want 2", got)
	}
}

// TestRetryExhaustion: when the transient failures outlast the retry
// budget, the job fails with the transient error after exactly
// 1+Retries attempts.
func TestRetryExhaustion(t *testing.T) {
	p := NewPlan(4)
	p.Set(0, Fault{Kind: Flaky, FailAttempts: 10})
	r := &runner.Runner{Workers: 1, Retries: 2, Intercept: p.Intercept()}
	results, err := r.Run(context.Background(), batch(1))
	if err == nil {
		t.Fatal("exhausted retries reported success")
	}
	if !runner.IsTransient(err) {
		t.Errorf("exhaustion error %v lost its transient classification", err)
	}
	if results[0].Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries)", results[0].Attempts)
	}
}

// TestPermanentErrorsNeverRetry: the classifier keeps deterministic
// failures (permanent errors, panics) to a single attempt.
func TestPermanentErrorsNeverRetry(t *testing.T) {
	for _, kind := range []Kind{Fail, Panic} {
		p := NewPlan(5)
		p.Set(0, Fault{Kind: kind})
		r := &runner.Runner{Workers: 1, Retries: 5, Intercept: p.Intercept()}
		results, err := r.Run(context.Background(), batch(1))
		if err == nil {
			t.Fatalf("%v: faulted job reported success", kind)
		}
		if results[0].Attempts != 1 {
			t.Errorf("%v: attempts = %d, want 1 (permanent errors must not retry)", kind, results[0].Attempts)
		}
	}
}

// TestHangTimesOut: a hung job is bounded by the per-job deadline and
// fails with context.DeadlineExceeded without disturbing its
// neighbours.
func TestHangTimesOut(t *testing.T) {
	p := NewPlan(6)
	p.Set(3, Fault{Kind: Hang})
	r := &runner.Runner{
		Workers:   2,
		KeepGoing: true,
		Timeout:   30 * time.Millisecond,
		Intercept: p.Intercept(),
	}
	results, err := r.Run(context.Background(), batch(6))
	var be *runner.BatchError
	if !errors.As(err, &be) || len(be.Failures) != 1 || be.Failures[0].Index != 3 {
		t.Fatalf("err = %v, want BatchError with exactly job 3 failed", err)
	}
	if !errors.Is(results[3].Err, context.DeadlineExceeded) {
		t.Errorf("hung job error = %v, want DeadlineExceeded", results[3].Err)
	}
	for i, res := range results {
		if i != 3 && res.Err != nil {
			t.Errorf("healthy job %d caught the hang: %v", i, res.Err)
		}
	}
}

// TestJobMaxWallOverridesRunnerTimeout: a per-job deadline takes
// precedence over the runner-wide default.
func TestJobMaxWallOverridesRunnerTimeout(t *testing.T) {
	p := NewPlan(7)
	p.Set(0, Fault{Kind: Hang})
	jobs := batch(1)
	jobs[0].MaxWall = 20 * time.Millisecond
	start := time.Now()
	r := &runner.Runner{Workers: 1, Timeout: time.Hour, Intercept: p.Intercept()}
	_, err := r.Run(context.Background(), jobs)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Job.MaxWall ignored: hang lasted %v", elapsed)
	}
}

// TestCancelBatchSummary: an external cancellation mid-batch surfaces
// as a *runner.CancelError summarizing progress, still matching
// context.Canceled.
func TestCancelBatchSummary(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := NewPlan(8)
	p.Set(4, Fault{Kind: CancelBatch})
	p.OnCancel = cancel
	// One worker: with more, scheduler starvation of the faulted job's
	// worker can let the rest of the batch drain before the cancel fires,
	// leaving nothing queued to summarize.
	r := &runner.Runner{Workers: 1, Intercept: p.Intercept()}
	_, err := r.Run(ctx, batch(12))

	var ce *runner.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *runner.CancelError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("CancelError does not unwrap to context.Canceled")
	}
	if ce.Total != 12 || ce.Done+ce.Queued != ce.Total {
		t.Errorf("inconsistent summary: done=%d queued=%d total=%d", ce.Done, ce.Queued, ce.Total)
	}
	if ce.Queued == 0 {
		t.Error("cancellation at job 4 of 12 left nothing queued")
	}
}

// TestDeterminismUnderFaults: the same plan on the same batch yields
// identical per-job outcomes — stats, error text, and aggregate error —
// at -j 1 and -j 8.
func TestDeterminismUnderFaults(t *testing.T) {
	run := func(workers int) ([]runner.Result, error) {
		t.Helper()
		p := NewPlan(9)
		p.Set(2, Fault{Kind: Panic})
		p.Set(7, Fault{Kind: Fail})
		p.Set(11, Fault{Kind: Flaky, FailAttempts: 1})
		r := &runner.Runner{Workers: workers, KeepGoing: true, Retries: 1, Intercept: p.Intercept()}
		return r.Run(context.Background(), batch(12))
	}
	serial, errS := run(1)
	parallel, errP := run(8)
	if (errS == nil) != (errP == nil) {
		t.Fatalf("outcome differs: -j1 err=%v, -j8 err=%v", errS, errP)
	}
	if errS != nil && errS.Error() != errP.Error() {
		t.Errorf("aggregate errors differ:\n-j1: %v\n-j8: %v", errS, errP)
	}
	for i := range serial {
		s, q := serial[i], parallel[i]
		if (s.Stats == nil) != (q.Stats == nil) {
			t.Errorf("job %d: stats presence differs between -j1 and -j8", i)
			continue
		}
		if s.Stats != nil && *s.Stats != *q.Stats {
			t.Errorf("job %d: stats differ between -j1 and -j8", i)
		}
		if (s.Err == nil) != (q.Err == nil) ||
			(s.Err != nil && s.Err.Error() != q.Err.Error()) {
			t.Errorf("job %d: errors differ: %v vs %v", i, s.Err, q.Err)
		}
	}
}

// TestQuarantineAndResimulate covers the three disk-entry failure
// modes: bit-rot (checksum), truncation (parse), and a stale schema.
// Each must be quarantined as .corrupt and transparently resimulated.
func TestQuarantineAndResimulate(t *testing.T) {
	damage := map[string]func(dir, key string, jobs []runner.Job) error{
		"corrupted": func(dir, key string, _ []runner.Job) error { return CorruptEntry(dir, key) },
		"truncated": func(dir, key string, _ []runner.Job) error { return TruncateEntry(dir, key) },
		"stale-schema": func(dir, key string, jobs []runner.Job) error {
			return StaleSchemaEntry(dir, key, nil)
		},
	}
	for name, damageFn := range damage {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			jobs := batch(1)
			key := jobs[0].Key()
			if key == "" {
				t.Fatal("test job unexpectedly uncacheable")
			}

			c1, err := runner.OpenDiskCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			first, err := (&runner.Runner{Workers: 1, Cache: c1}).Run(context.Background(), jobs)
			if err != nil {
				t.Fatal(err)
			}
			if err := damageFn(dir, key, jobs); err != nil {
				t.Fatal(err)
			}

			// A fresh process must detect the damage, quarantine, and
			// resimulate rather than serve or silently drop the entry.
			c2, err := runner.OpenDiskCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			second, err := (&runner.Runner{Workers: 1, Cache: c2}).Run(context.Background(), jobs)
			if err != nil {
				t.Fatal(err)
			}
			if second[0].Cached {
				t.Error("damaged entry was served from the cache")
			}
			if !IsQuarantined(dir, key) {
				t.Error("damaged entry was not quarantined as .corrupt")
			}
			if q := c2.Quarantined(); q != 1 {
				t.Errorf("Quarantined() = %d, want 1", q)
			}
			if *first[0].Stats != *second[0].Stats {
				t.Error("resimulated stats differ from the original run")
			}

			// The resimulation rewrote a fresh entry: a third process
			// gets a clean hit.
			c3, err := runner.OpenDiskCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			third, err := (&runner.Runner{Workers: 1, Cache: c3}).Run(context.Background(), jobs)
			if err != nil {
				t.Fatal(err)
			}
			if !third[0].Cached {
				t.Error("rewritten entry not served from the cache")
			}
		})
	}
}

// TestUncacheableKernelNeverCached: a kernel that cannot be serialized
// has no content address; its jobs simulate every time instead of
// risking a cross-process pointer-collision hit, and the digest failure
// is memoized.
func TestUncacheableKernelNeverCached(t *testing.T) {
	k := tinyKernel(strings.Repeat("x", 1<<20), 2, 1) // name exceeds the trace format's limit
	job := runner.Job{Label: "uncacheable", Config: config.Baseline(),
		Policy: config.PolicyBaseline, Kernel: k}
	if key := job.Key(); key != "" {
		t.Fatalf("unserializable kernel got cache key %q", key)
	}
	// Memoized: the second call must not re-walk the trace; we can only
	// observe the result, so check stability.
	if key := job.Key(); key != "" {
		t.Fatalf("memoized digest failure changed outcome: %q", key)
	}

	cache := runner.NewCache()
	r := &runner.Runner{Workers: 1, Cache: cache}
	for i := 0; i < 2; i++ {
		results, err := r.Run(context.Background(), []runner.Job{job})
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Cached {
			t.Fatalf("run %d: uncacheable job served from cache", i)
		}
	}
	if cache.Len() != 0 {
		t.Errorf("cache holds %d entries for an uncacheable job", cache.Len())
	}
}

// TestPickIndicesDeterministic: fault placement derives from the seed
// alone.
func TestPickIndicesDeterministic(t *testing.T) {
	a := NewPlan(1234).PickIndices(5, 36)
	b := NewPlan(1234).PickIndices(5, 36)
	if len(a) != 5 {
		t.Fatalf("picked %d indices, want 5", len(a))
	}
	seen := map[int]bool{}
	for i, v := range a {
		if v != b[i] {
			t.Fatalf("same seed picked different indices: %v vs %v", a, b)
		}
		if v < 0 || v >= 36 || seen[v] {
			t.Fatalf("invalid or duplicate index %d in %v", v, a)
		}
		seen[v] = true
	}
	if c := NewPlan(5678).PickIndices(5, 36); fmt.Sprint(c) == fmt.Sprint(a) {
		t.Errorf("different seeds picked identical indices %v", a)
	}
}

// TestGenericFileCorruption exercises the path-level corruption
// helpers the conformance corpus tests build on: digit flips keep JSON
// parseable but change a value, truncation breaks the document, and
// garbling replaces it with non-JSON bytes. Missing files error.
func TestGenericFileCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "expected_stats.json")
	orig := []byte("{\n  \"Cycles\": 1234\n}\n")

	write := func() {
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	write()
	if err := CorruptFileDigit(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) == string(orig) {
		t.Error("CorruptFileDigit left the file unchanged")
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Errorf("digit-flipped file no longer parses: %v", err)
	}
	if m["Cycles"] == float64(1234) {
		t.Error("digit flip did not change the value")
	}

	write()
	if err := TruncateFile(path); err != nil {
		t.Fatal(err)
	}
	b, _ = os.ReadFile(path)
	if len(b) != len(orig)/2 {
		t.Errorf("TruncateFile left %d bytes, want %d", len(b), len(orig)/2)
	}
	if json.Unmarshal(b, &m) == nil {
		t.Error("truncated JSON still parses — corruption model broken")
	}

	write()
	if err := GarbleFile(path); err != nil {
		t.Fatal(err)
	}
	b, _ = os.ReadFile(path)
	if json.Unmarshal(b, &m) == nil {
		t.Error("garbled file still parses as JSON")
	}

	missing := filepath.Join(dir, "nope.json")
	if err := CorruptFileDigit(missing); err == nil {
		t.Error("CorruptFileDigit on missing file did not error")
	}
	if err := TruncateFile(missing); err == nil {
		t.Error("TruncateFile on missing file did not error")
	}
	if err := GarbleFile(missing); err == nil {
		t.Error("GarbleFile on missing file did not error")
	}

	// No digits at all: the flip must fail loudly, not silently no-op.
	if err := os.WriteFile(path, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CorruptFileDigit(path); err == nil {
		t.Error("CorruptFileDigit with no digit to flip did not error")
	}
}
