package interconnect

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/stats"
)

// BenchmarkLanePushBatch measures the steady-state lane merge: one
// per-span lane batch handed to PushBatch (ownership transfer, no
// copying), the network ticked until the batch arrives and is popped,
// and the recycled segment reused as the next cycle's lane. This is the
// engine's per-cycle crossbar pattern; it must stay allocation-free
// once the segment free list is warm.
func BenchmarkLanePushBatch(b *testing.B) {
	const batchSize = 8
	n := New(2, 64, 32, 128, &stats.Stats{})
	reqs := make([]*mem.Request, batchSize)
	for i := range reqs {
		reqs[i] = &mem.Request{SM: i}
	}
	lane := make([]*mem.Request, 0, batchSize)
	now := uint64(0)

	cycle := func() {
		lane = append(lane[:0], reqs...)
		lane = n.PushBatch(ToMem, lane)
		for {
			n.Tick(now)
			now++
			popped := 0
			for n.PopArrived(ToMem) != nil {
				popped++
			}
			if popped == batchSize {
				break
			}
		}
	}
	// Two warm cycles: the first seeds the segment free list, the
	// second starts the lane-reuse steady state (PushBatch returns the
	// first cycle's recycled segment).
	cycle()
	cycle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}
