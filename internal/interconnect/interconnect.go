// Package interconnect models the crossbar between the SM L1D caches and
// the memory partitions: fixed one-way latency, bounded per-cycle flit
// bandwidth in each direction, and flit accounting for the paper's
// Figure 13 interconnect-traffic metric.
//
// Besides L1D packets, real GPUs route L1I/L1C/L1T traffic over the same
// network; the paper notes (§6.4) this damps the relative traffic
// reduction from L1D bypassing. Callers model that with
// AddBackgroundFlits, which contributes to the traffic counters without
// occupying data bandwidth.
package interconnect

import (
	"repro/internal/mem"
	"repro/internal/stats"
)

// Direction selects a network direction.
type Direction int

const (
	// ToMem carries requests from the SMs to the memory partitions.
	ToMem Direction = iota
	// ToCore carries responses back to the SMs.
	ToCore
)

type packet struct {
	req      *mem.Request
	arriveAt uint64
	seq      uint64 // tie-break for deterministic ordering
}

// packetHeap is a hand-rolled min-heap ordered by (arriveAt, seq). It
// replaces container/heap to keep the per-packet push/pop free of
// interface boxing; seq makes the order total, so pop order — and thus
// simulation behavior — is independent of internal heap layout.
type packetHeap []packet

func (h packetHeap) less(i, j int) bool {
	if h[i].arriveAt != h[j].arriveAt {
		return h[i].arriveAt < h[j].arriveAt
	}
	return h[i].seq < h[j].seq
}

func (h *packetHeap) push(p packet) {
	*h = append(*h, p)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *packetHeap) pop() packet {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = packet{} // drop the stale request reference
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(l, min) {
			min = l
		}
		if r < n && s.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

type direction struct {
	// The injection queue is a FIFO of segments. PushBatch hands over a
	// whole lane of packets as one segment — an O(1) slice handoff, no
	// per-packet copying — which is what lets the engine's serial merge
	// do O(lanes) work per cycle instead of O(packets). Single-packet
	// Push appends to an "open" tail segment, so packet-at-a-time
	// callers (tests, simple harnesses) see plain FIFO semantics.
	// off is the consumed prefix of segs[0]; count is the total queued
	// across all segments. Fully consumed segments are recycled through
	// free and handed back to PushBatch callers, so the steady state
	// allocates nothing.
	segs     [][]*mem.Request
	off      int
	count    int
	openTail bool
	free     [][]*mem.Request
	inFlight packetHeap
	budget   int // flits remaining this cycle
	sent     int // flits of the head waiting packet already on the wire
}

// head returns the oldest waiting packet. Caller checks count > 0.
func (d *direction) head() *mem.Request { return d.segs[0][d.off] }

// popHead consumes the oldest waiting packet, recycling its segment
// once fully drained.
func (d *direction) popHead() {
	d.segs[0][d.off] = nil
	d.off++
	d.count--
	if d.off == len(d.segs[0]) {
		d.free = append(d.free, d.segs[0][:0])
		copy(d.segs, d.segs[1:])
		d.segs[len(d.segs)-1] = nil
		d.segs = d.segs[:len(d.segs)-1]
		d.off = 0
		if len(d.segs) == 0 {
			d.openTail = false
		}
	}
}

// grabFree pops a recycled empty segment, or nil when none is banked.
func (d *direction) grabFree() []*mem.Request {
	n := len(d.free)
	if n == 0 {
		return nil
	}
	s := d.free[n-1]
	d.free[n-1] = nil
	d.free = d.free[:n-1]
	return s
}

// Network is the crossbar. The engine calls Tick once per ICNT cycle,
// Push to inject packets, and PopArrived to collect deliveries.
type Network struct {
	latency   uint64
	bandwidth int // flits per cycle per direction
	flitBytes int
	lineSize  int
	dirs      [2]direction
	now       uint64
	seq       uint64
	st        *stats.Stats
}

// New builds a network with the given one-way latency (cycles), per-cycle
// per-direction flit bandwidth, flit size and cache line size (bytes).
func New(latency, bandwidth, flitBytes, lineSize int, st *stats.Stats) *Network {
	if latency < 0 || bandwidth <= 0 || flitBytes <= 0 || lineSize <= 0 {
		panic("interconnect: invalid parameters")
	}
	n := &Network{
		latency:   uint64(latency),
		bandwidth: bandwidth,
		flitBytes: flitBytes,
		lineSize:  lineSize,
		st:        st,
	}
	n.dirs[ToMem].budget = bandwidth
	n.dirs[ToCore].budget = bandwidth
	return n
}

// FlitsFor returns the flit count of a packet: one header/control flit,
// plus data flits when the packet carries a cache line (stores toward
// memory, load responses toward the core).
func (n *Network) FlitsFor(req *mem.Request, dir Direction) int {
	carriesData := (dir == ToMem && req.Store) || (dir == ToCore && !req.Store)
	if !carriesData {
		return 1
	}
	return 1 + (n.lineSize+n.flitBytes-1)/n.flitBytes
}

// Tick advances the network to cycle now, refreshing per-direction
// bandwidth budgets and injecting waiting packets in FIFO order until the
// budget runs out. Injection is packet-granular: a packet enters flight
// in the cycle whose budget covers all its flits at once. The exception
// is a packet wider than a whole cycle's bandwidth, which can never
// inject that way: it streams instead, holding the head of the queue and
// transmitting budget-many flits per cycle until fully on the wire.
// Without the exception, any bandwidth below the data-packet flit count
// would strand the packet at the port forever; keeping streaming to that
// case leaves sub-bandwidth packet timing — and thus every committed
// golden output — exactly as before.
func (n *Network) Tick(now uint64) {
	n.now = now
	for d := range n.dirs {
		dir := &n.dirs[d]
		dir.budget = n.bandwidth
		for dir.count > 0 && dir.budget > 0 {
			req := dir.head()
			flits := n.FlitsFor(req, Direction(d))
			remaining := flits - dir.sent
			if remaining > dir.budget {
				if flits > n.bandwidth {
					dir.sent += dir.budget
					dir.budget = 0
				}
				break
			}
			dir.budget -= remaining
			dir.sent = 0
			n.countFlits(req, flits)
			n.seq++
			dir.inFlight.push(packet{req: req, arriveAt: now + n.latency, seq: n.seq})
			dir.popHead()
		}
	}
}

func (n *Network) countFlits(req *mem.Request, flits int) {
	n.st.ICNTFlits += uint64(flits)
	n.st.ICNTDataFlits += uint64(flits)
	_ = req
}

// Push enqueues a packet for injection in the given direction. Packets
// land in an open tail segment, after everything already queued; Push
// and PushBatch interleave into one FIFO.
func (n *Network) Push(dir Direction, req *mem.Request) {
	d := &n.dirs[dir]
	if !d.openTail {
		d.segs = append(d.segs, d.grabFree())
		d.openTail = true
	}
	last := len(d.segs) - 1
	d.segs[last] = append(d.segs[last], req)
	d.count++
}

// PushBatch enqueues a whole lane of packets as one segment, preserving
// their order after everything already queued. The network takes
// ownership of the slice; in exchange the caller receives an empty
// recycled buffer (possibly nil early on) for its next lane fill, so a
// steady-state lane merge moves no packets and allocates nothing. An
// empty batch is returned unchanged.
func (n *Network) PushBatch(dir Direction, batch []*mem.Request) []*mem.Request {
	if len(batch) == 0 {
		return batch
	}
	d := &n.dirs[dir]
	d.segs = append(d.segs, batch)
	d.openTail = false
	d.count += len(batch)
	return d.grabFree()
}

// PopArrived returns the next packet that has completed its flight in the
// given direction, or nil.
func (n *Network) PopArrived(dir Direction) *mem.Request {
	d := &n.dirs[dir]
	if len(d.inFlight) == 0 || d.inFlight[0].arriveAt > n.now {
		return nil
	}
	return d.inFlight.pop().req
}

// HasWaiting reports whether any packet sits in an injection queue. A
// waiting packet means the next Tick does real work (it will inject),
// so the engine must not fast-forward past it.
func (n *Network) HasWaiting() bool {
	return n.dirs[ToMem].count > 0 || n.dirs[ToCore].count > 0
}

// NextArrival returns the earliest in-flight arrival time across both
// directions. ok is false when nothing is in flight. With empty
// injection queues this is the network's next activity cycle: between
// now and that cycle every Tick is a pure no-op.
func (n *Network) NextArrival() (at uint64, ok bool) {
	for d := range n.dirs {
		if f := n.dirs[d].inFlight; len(f) > 0 && (!ok || f[0].arriveAt < at) {
			at, ok = f[0].arriveAt, true
		}
	}
	return at, ok
}

// AddBackgroundFlits accounts traffic from the other L1 caches (L1I, L1C,
// L1T) sharing the crossbar. It affects only the traffic counters.
func (n *Network) AddBackgroundFlits(flits uint64) {
	n.st.ICNTFlits += flits
}

// Pending reports whether any packet is waiting or in flight.
func (n *Network) Pending() bool {
	for d := range n.dirs {
		if n.dirs[d].count > 0 || len(n.dirs[d].inFlight) > 0 {
			return true
		}
	}
	return false
}
