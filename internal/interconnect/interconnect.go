// Package interconnect models the crossbar between the SM L1D caches and
// the memory partitions: fixed one-way latency, bounded per-cycle flit
// bandwidth in each direction, and flit accounting for the paper's
// Figure 13 interconnect-traffic metric.
//
// Besides L1D packets, real GPUs route L1I/L1C/L1T traffic over the same
// network; the paper notes (§6.4) this damps the relative traffic
// reduction from L1D bypassing. Callers model that with
// AddBackgroundFlits, which contributes to the traffic counters without
// occupying data bandwidth.
package interconnect

import (
	"repro/internal/mem"
	"repro/internal/stats"
)

// Direction selects a network direction.
type Direction int

const (
	// ToMem carries requests from the SMs to the memory partitions.
	ToMem Direction = iota
	// ToCore carries responses back to the SMs.
	ToCore
)

type packet struct {
	req      *mem.Request
	arriveAt uint64
	seq      uint64 // tie-break for deterministic ordering
}

// packetHeap is a hand-rolled min-heap ordered by (arriveAt, seq). It
// replaces container/heap to keep the per-packet push/pop free of
// interface boxing; seq makes the order total, so pop order — and thus
// simulation behavior — is independent of internal heap layout.
type packetHeap []packet

func (h packetHeap) less(i, j int) bool {
	if h[i].arriveAt != h[j].arriveAt {
		return h[i].arriveAt < h[j].arriveAt
	}
	return h[i].seq < h[j].seq
}

func (h *packetHeap) push(p packet) {
	*h = append(*h, p)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *packetHeap) pop() packet {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = packet{} // drop the stale request reference
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(l, min) {
			min = l
		}
		if r < n && s.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

type direction struct {
	waiting  []*mem.Request // injection queue, unbounded
	inFlight packetHeap
	budget   int // flits remaining this cycle
	sent     int // flits of the head waiting packet already on the wire
}

// Network is the crossbar. The engine calls Tick once per ICNT cycle,
// Push to inject packets, and PopArrived to collect deliveries.
type Network struct {
	latency   uint64
	bandwidth int // flits per cycle per direction
	flitBytes int
	lineSize  int
	dirs      [2]direction
	now       uint64
	seq       uint64
	st        *stats.Stats
}

// New builds a network with the given one-way latency (cycles), per-cycle
// per-direction flit bandwidth, flit size and cache line size (bytes).
func New(latency, bandwidth, flitBytes, lineSize int, st *stats.Stats) *Network {
	if latency < 0 || bandwidth <= 0 || flitBytes <= 0 || lineSize <= 0 {
		panic("interconnect: invalid parameters")
	}
	n := &Network{
		latency:   uint64(latency),
		bandwidth: bandwidth,
		flitBytes: flitBytes,
		lineSize:  lineSize,
		st:        st,
	}
	n.dirs[ToMem].budget = bandwidth
	n.dirs[ToCore].budget = bandwidth
	return n
}

// FlitsFor returns the flit count of a packet: one header/control flit,
// plus data flits when the packet carries a cache line (stores toward
// memory, load responses toward the core).
func (n *Network) FlitsFor(req *mem.Request, dir Direction) int {
	carriesData := (dir == ToMem && req.Store) || (dir == ToCore && !req.Store)
	if !carriesData {
		return 1
	}
	return 1 + (n.lineSize+n.flitBytes-1)/n.flitBytes
}

// Tick advances the network to cycle now, refreshing per-direction
// bandwidth budgets and injecting waiting packets in FIFO order until the
// budget runs out. Injection is packet-granular: a packet enters flight
// in the cycle whose budget covers all its flits at once. The exception
// is a packet wider than a whole cycle's bandwidth, which can never
// inject that way: it streams instead, holding the head of the queue and
// transmitting budget-many flits per cycle until fully on the wire.
// Without the exception, any bandwidth below the data-packet flit count
// would strand the packet at the port forever; keeping streaming to that
// case leaves sub-bandwidth packet timing — and thus every committed
// golden output — exactly as before.
func (n *Network) Tick(now uint64) {
	n.now = now
	for d := range n.dirs {
		dir := &n.dirs[d]
		dir.budget = n.bandwidth
		for len(dir.waiting) > 0 && dir.budget > 0 {
			req := dir.waiting[0]
			flits := n.FlitsFor(req, Direction(d))
			remaining := flits - dir.sent
			if remaining > dir.budget {
				if flits > n.bandwidth {
					dir.sent += dir.budget
					dir.budget = 0
				}
				break
			}
			dir.budget -= remaining
			dir.sent = 0
			n.countFlits(req, flits)
			n.seq++
			dir.inFlight.push(packet{req: req, arriveAt: now + n.latency, seq: n.seq})
			copy(dir.waiting, dir.waiting[1:])
			dir.waiting[len(dir.waiting)-1] = nil
			dir.waiting = dir.waiting[:len(dir.waiting)-1]
		}
	}
}

func (n *Network) countFlits(req *mem.Request, flits int) {
	n.st.ICNTFlits += uint64(flits)
	n.st.ICNTDataFlits += uint64(flits)
	_ = req
}

// Push enqueues a packet for injection in the given direction.
func (n *Network) Push(dir Direction, req *mem.Request) {
	n.dirs[dir].waiting = append(n.dirs[dir].waiting, req)
}

// PopArrived returns the next packet that has completed its flight in the
// given direction, or nil.
func (n *Network) PopArrived(dir Direction) *mem.Request {
	d := &n.dirs[dir]
	if len(d.inFlight) == 0 || d.inFlight[0].arriveAt > n.now {
		return nil
	}
	return d.inFlight.pop().req
}

// HasWaiting reports whether any packet sits in an injection queue. A
// waiting packet means the next Tick does real work (it will inject),
// so the engine must not fast-forward past it.
func (n *Network) HasWaiting() bool {
	return len(n.dirs[ToMem].waiting) > 0 || len(n.dirs[ToCore].waiting) > 0
}

// NextArrival returns the earliest in-flight arrival time across both
// directions. ok is false when nothing is in flight. With empty
// injection queues this is the network's next activity cycle: between
// now and that cycle every Tick is a pure no-op.
func (n *Network) NextArrival() (at uint64, ok bool) {
	for d := range n.dirs {
		if f := n.dirs[d].inFlight; len(f) > 0 && (!ok || f[0].arriveAt < at) {
			at, ok = f[0].arriveAt, true
		}
	}
	return at, ok
}

// AddBackgroundFlits accounts traffic from the other L1 caches (L1I, L1C,
// L1T) sharing the crossbar. It affects only the traffic counters.
func (n *Network) AddBackgroundFlits(flits uint64) {
	n.st.ICNTFlits += flits
}

// Pending reports whether any packet is waiting or in flight.
func (n *Network) Pending() bool {
	for d := range n.dirs {
		if len(n.dirs[d].waiting) > 0 || len(n.dirs[d].inFlight) > 0 {
			return true
		}
	}
	return false
}
