package interconnect

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/stats"
)

func newNet(latency, bw int) (*Network, *stats.Stats) {
	st := &stats.Stats{}
	return New(latency, bw, 32, 128, st), st
}

func TestNewPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero bandwidth")
		}
	}()
	New(10, 0, 32, 128, &stats.Stats{})
}

func TestFlitsFor(t *testing.T) {
	n, _ := newNet(10, 16)
	load := &mem.Request{}
	store := &mem.Request{Store: true}
	// Load request to memory: header only.
	if got := n.FlitsFor(load, ToMem); got != 1 {
		t.Errorf("load->mem flits = %d, want 1", got)
	}
	// Load response to core: header + 128/32 data flits.
	if got := n.FlitsFor(load, ToCore); got != 5 {
		t.Errorf("load->core flits = %d, want 5", got)
	}
	// Store to memory carries the line.
	if got := n.FlitsFor(store, ToMem); got != 5 {
		t.Errorf("store->mem flits = %d, want 5", got)
	}
	// Stores never travel back, but the accounting is header-only.
	if got := n.FlitsFor(store, ToCore); got != 1 {
		t.Errorf("store->core flits = %d, want 1", got)
	}
}

func TestLatencyRespected(t *testing.T) {
	n, _ := newNet(10, 16)
	r := &mem.Request{ID: 1}
	n.Push(ToMem, r)
	n.Tick(5) // injected at cycle 5, arrives at 15
	for now := uint64(6); now < 15; now++ {
		n.Tick(now)
		if got := n.PopArrived(ToMem); got != nil {
			t.Fatalf("packet arrived early at cycle %d", now)
		}
	}
	n.Tick(15)
	if got := n.PopArrived(ToMem); got != r {
		t.Fatal("packet did not arrive at latency boundary")
	}
	if got := n.PopArrived(ToMem); got != nil {
		t.Fatal("duplicate arrival")
	}
}

func TestBandwidthLimitsInjection(t *testing.T) {
	// Responses are 5 flits; with bandwidth 8 only one response can inject
	// per cycle.
	n, _ := newNet(1, 8)
	r1, r2 := &mem.Request{ID: 1}, &mem.Request{ID: 2}
	n.Push(ToCore, r1)
	n.Push(ToCore, r2)
	n.Tick(0) // only r1 fits (5 <= 8, then 5 > 3)
	n.Tick(1) // r2 injected; r1 arrives
	if got := n.PopArrived(ToCore); got != r1 {
		t.Fatal("r1 not delivered first")
	}
	if got := n.PopArrived(ToCore); got != nil {
		t.Fatal("r2 delivered too early despite bandwidth limit")
	}
	n.Tick(2)
	if got := n.PopArrived(ToCore); got != r2 {
		t.Fatal("r2 not delivered after bandwidth delay")
	}
}

func TestWidePacketStreamsAcrossCycles(t *testing.T) {
	// A 5-flit response on a 1-flit/cycle network must stream over five
	// cycles rather than wait forever (found by fuzzing: configs with
	// bandwidth below the data-packet size livelocked on the first miss).
	n, st := newNet(0, 1)
	r1, r2 := &mem.Request{ID: 1}, &mem.Request{ID: 2}
	n.Push(ToCore, r1)
	n.Push(ToCore, r2)
	for now := uint64(0); now < 4; now++ {
		n.Tick(now)
		if got := n.PopArrived(ToCore); got != nil {
			t.Fatalf("packet delivered at cycle %d before all flits sent", now)
		}
	}
	n.Tick(4) // fifth flit leaves; latency 0 means it arrives now
	if got := n.PopArrived(ToCore); got != r1 {
		t.Fatal("r1 not delivered after streaming its flits")
	}
	if st.ICNTFlits != 5 {
		t.Errorf("ICNTFlits = %d, want 5 (r2 not yet injected)", st.ICNTFlits)
	}
	// r2 begins streaming only after r1 completes.
	for now := uint64(5); now < 9; now++ {
		n.Tick(now)
		if got := n.PopArrived(ToCore); got != nil {
			t.Fatalf("r2 delivered early at cycle %d", now)
		}
	}
	n.Tick(9)
	if got := n.PopArrived(ToCore); got != r2 {
		t.Fatal("r2 not delivered after streaming its flits")
	}
	if st.ICNTFlits != 10 {
		t.Errorf("ICNTFlits = %d, want 10", st.ICNTFlits)
	}
}

func TestStreamingSharesBudgetWithinCycle(t *testing.T) {
	// Bandwidth 3, latency 0: a 5-flit response streams 3+2 flits over two
	// cycles, and the leftover budget in the second cycle injects the
	// following 1-flit packet in the same direction.
	n, _ := newNet(0, 3)
	resp := &mem.Request{ID: 1}             // load response: 5 flits
	ack := &mem.Request{ID: 2, Store: true} // store ack: 1 flit
	n.Push(ToCore, resp)
	n.Push(ToCore, ack)
	n.Tick(0)
	if got := n.PopArrived(ToCore); got != nil {
		t.Fatal("response delivered with only 3 of 5 flits sent")
	}
	n.Tick(1)
	if got := n.PopArrived(ToCore); got != resp {
		t.Fatal("response not delivered once its last flits were sent")
	}
	if got := n.PopArrived(ToCore); got != ack {
		t.Fatal("ack should inject from the second cycle's leftover budget")
	}
}

func TestDirectionsIndependent(t *testing.T) {
	n, _ := newNet(1, 16)
	req := &mem.Request{ID: 1}
	resp := &mem.Request{ID: 2}
	n.Push(ToMem, req)
	n.Push(ToCore, resp)
	n.Tick(0)
	n.Tick(1)
	if got := n.PopArrived(ToMem); got != req {
		t.Error("request direction broken")
	}
	if got := n.PopArrived(ToCore); got != resp {
		t.Error("response direction broken")
	}
}

func TestFlitAccounting(t *testing.T) {
	n, st := newNet(1, 100)
	n.Push(ToMem, &mem.Request{})            // 1 flit
	n.Push(ToMem, &mem.Request{Store: true}) // 5 flits
	n.Push(ToCore, &mem.Request{})           // 5 flits
	n.Tick(0)
	if st.ICNTFlits != 11 {
		t.Errorf("ICNTFlits = %d, want 11", st.ICNTFlits)
	}
	if st.ICNTDataFlits != 11 {
		t.Errorf("ICNTDataFlits = %d, want 11", st.ICNTDataFlits)
	}
	n.AddBackgroundFlits(7)
	if st.ICNTFlits != 18 {
		t.Errorf("ICNTFlits after background = %d, want 18", st.ICNTFlits)
	}
	if st.ICNTDataFlits != 11 {
		t.Errorf("background flits leaked into data flits: %d", st.ICNTDataFlits)
	}
}

func TestFIFOOrderPreservedWithinDirection(t *testing.T) {
	n, _ := newNet(3, 1000)
	var pushed []*mem.Request
	for i := 0; i < 20; i++ {
		r := &mem.Request{ID: uint64(i)}
		pushed = append(pushed, r)
		n.Push(ToMem, r)
	}
	n.Tick(0)
	n.Tick(3)
	for i := 0; i < 20; i++ {
		got := n.PopArrived(ToMem)
		if got != pushed[i] {
			t.Fatalf("arrival %d out of order", i)
		}
	}
}

func TestPending(t *testing.T) {
	n, _ := newNet(2, 16)
	if n.Pending() {
		t.Error("fresh network pending")
	}
	r := &mem.Request{}
	n.Push(ToMem, r)
	if !n.Pending() {
		t.Error("waiting packet not pending")
	}
	n.Tick(0)
	if !n.Pending() {
		t.Error("in-flight packet not pending")
	}
	n.Tick(2)
	n.PopArrived(ToMem)
	if n.Pending() {
		t.Error("drained network still pending")
	}
}
