package interconnect

import "repro/internal/metrics"

// RegisterMetrics registers the crossbar's flit counters and the
// queue levels of both directions under prefix (e.g. "icnt").
func (n *Network) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.Counter(prefix+".flits", &n.st.ICNTFlits)
	reg.Counter(prefix+".data_flits", &n.st.ICNTDataFlits)
	for d, name := range [2]string{ToMem: "to_mem", ToCore: "to_core"} {
		dir := &n.dirs[d]
		reg.IntGauge(prefix+"."+name+".waiting", func() int { return dir.count })
		reg.IntGauge(prefix+"."+name+".in_flight", func() int { return len(dir.inFlight) })
	}
}

// RegisterLaneMetrics registers the lane-merge observability gauges:
// how many injection-queue segments (merged lanes plus any open Push
// tail) each direction currently holds, and how many recycled segment
// buffers are banked. These live in the engine-parallelism namespace
// ("phase.*") because their values depend on the span layout — i.e. on
// Options.Cores — unlike every simulation-domain column.
func (n *Network) RegisterLaneMetrics(reg *metrics.Registry, prefix string) {
	for d, name := range [2]string{ToMem: "to_mem", ToCore: "to_core"} {
		dir := &n.dirs[d]
		reg.IntGauge(prefix+"."+name+".segments", func() int { return len(dir.segs) })
		reg.IntGauge(prefix+"."+name+".free_segments", func() int { return len(dir.free) })
	}
}
