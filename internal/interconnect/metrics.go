package interconnect

import "repro/internal/metrics"

// RegisterMetrics registers the crossbar's flit counters and the
// queue levels of both directions under prefix (e.g. "icnt").
func (n *Network) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.Counter(prefix+".flits", &n.st.ICNTFlits)
	reg.Counter(prefix+".data_flits", &n.st.ICNTDataFlits)
	for d, name := range [2]string{ToMem: "to_mem", ToCore: "to_core"} {
		dir := &n.dirs[d]
		reg.IntGauge(prefix+"."+name+".waiting", func() int { return len(dir.waiting) })
		reg.IntGauge(prefix+"."+name+".in_flight", func() int { return len(dir.inFlight) })
	}
}
