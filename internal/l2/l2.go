// Package l2 models one memory partition's L2 cache slice: a linear-
// indexed set-associative write-back cache servicing one request per
// cycle, with outstanding-miss merging and a GDDR5 DRAM channel behind
// it (Table 1: 12 partitions, 64 sets x 8 ways x 128B each).
package l2

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/stats"
)

type event struct {
	readyAt uint64
	req     *mem.Request
	fill    bool // true: DRAM fill completion; false: response ready to send
	seq     uint64
}

// eventHeap is a hand-rolled min-heap on (readyAt, seq), replacing
// container/heap to avoid interface boxing on every scheduled event.
// seq makes the order total, so pop order is layout-independent.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].readyAt != h[j].readyAt {
		return h[i].readyAt < h[j].readyAt
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // drop the stale request reference
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(l, min) {
			min = l
		}
		if r < n && s.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// Partition is one L2 slice plus its DRAM channel.
type Partition struct {
	ta         *cache.TagArray
	mapper     *addr.Mapper
	mshr       map[addr.Addr][]*mem.Request
	maxMSHRs   int
	inQ        []*mem.Request
	events     eventHeap
	responses  []*mem.Request
	dram       *dram.Channel
	hitLatency uint64
	st         *stats.Stats
	now        uint64
	seq        uint64
	// pool receives consumed write-through stores (the partition is
	// their last stop); may be nil. When rec is set it takes precedence:
	// consumed stores are deferred there instead, for the engine to
	// route back to each issuing SM's pool during the serial phase —
	// the partition may be ticking on a phase worker, where touching an
	// SM-owned pool directly would race. freeWaiters recycles the MSHR
	// waiter slices so the steady-state miss path allocates nothing.
	pool        *mem.Pool
	rec         *mem.Recycler
	freeWaiters [][]*mem.Request
}

// New builds a partition from the configuration. pool, which may be
// nil, recycles the store requests the partition consumes.
func New(cfg *config.Config, st *stats.Stats, pool *mem.Pool) *Partition {
	kind := addr.LinearIndex
	if cfg.L2.Hashed {
		kind = addr.HashIndex
	}
	m, err := addr.NewPartitionedMapper(cfg.L2.LineSize, cfg.L2.Sets, kind, cfg.NumPartitions)
	if err != nil {
		panic(err)
	}
	return &Partition{
		ta:       cache.NewTagArray(m, cfg.L2.Ways),
		mapper:   m,
		mshr:     make(map[addr.Addr][]*mem.Request),
		maxMSHRs: cfg.L2MSHRs,
		dram: dram.New(cfg.DRAMBanks, cfg.DRAMRowHit, cfg.DRAMRowMiss,
			cfg.DRAMBusCycles, cfg.CoreClockMHz, cfg.MemClockMHz, cfg.NumPartitions),
		hitLatency: uint64(cfg.L2HitLatency),
		st:         st,
		pool:       pool,
	}
}

// Enqueue accepts a request delivered by the interconnect.
func (p *Partition) Enqueue(req *mem.Request) {
	p.inQ = append(p.inQ, req)
}

// Tick advances the partition to cycle now: completes due DRAM fills,
// then services one new request from the input queue.
func (p *Partition) Tick(now uint64) {
	p.now = now
	for len(p.events) > 0 && p.events[0].readyAt <= now {
		ev := p.events.pop()
		if ev.fill {
			p.completeFill(ev.req)
		} else {
			p.responses = append(p.responses, ev.req)
		}
	}
	if len(p.inQ) > 0 {
		if p.service(p.inQ[0]) {
			copy(p.inQ, p.inQ[1:])
			p.inQ[len(p.inQ)-1] = nil
			p.inQ = p.inQ[:len(p.inQ)-1]
		}
	}
}

// service attempts to handle one request; false means retry next cycle.
func (p *Partition) service(req *mem.Request) bool {
	if req.Store {
		p.serviceStore(req)
		return true
	}
	p.st.L2Accesses++
	set, way, res := p.ta.Probe(req.Addr)
	switch res {
	case cache.ProbeHit:
		p.st.L2Hits++
		p.ta.Touch(set, way)
		p.schedule(req, p.now+p.hitLatency, false)
		return true
	case cache.ProbeReserved:
		// Merge onto the outstanding fetch; the fill completion responds
		// to every merged request.
		p.st.L2Misses++
		p.mshr[req.Addr] = append(p.mshr[req.Addr], req)
		return true
	default:
		if len(p.mshr) >= p.maxMSHRs {
			p.st.L2Accesses-- // not serviced; retry without double-counting
			return false
		}
		victim := p.ta.VictimIn(set, nil)
		if victim < 0 {
			p.st.L2Accesses--
			return false
		}
		p.st.L2Misses++
		evicted := p.ta.Reserve(set, victim, req.Addr)
		if evicted.Valid && evicted.Dirty {
			p.writeback(evicted, set)
		}
		p.mshr[req.Addr] = append(p.getWaiters(), req)
		done := p.dram.Access(req.Addr, p.mapper.LineSize(), p.now)
		p.st.DRAMReads++
		p.schedule(req, done, true)
		return true
	}
}

func (p *Partition) serviceStore(req *mem.Request) {
	defer p.recycleStore(req)
	p.st.L2Accesses++
	set, way, res := p.ta.Probe(req.Addr)
	if res == cache.ProbeHit {
		// Write-back: absorb the store, mark dirty.
		p.st.L2Hits++
		lines := p.ta.Set(set)
		lines[way].Dirty = true
		p.ta.Touch(set, way)
		return
	}
	// Write-no-allocate on miss (and on in-flight lines): forward to DRAM.
	p.st.L2Misses++
	p.dram.Access(req.Addr, p.mapper.LineSize(), p.now)
	p.st.DRAMWrites++
}

// SetRecycler diverts consumed write-through stores into rc instead of
// the pool passed to New. The engine installs one recycler per
// partition and drains them serially each cycle, so partition ticks
// never touch another shard's pool.
func (p *Partition) SetRecycler(rc *mem.Recycler) { p.rec = rc }

// recycleStore returns a consumed write-through store to the request
// pool (or defers it to the engine's recycler). The partition is a
// store's final owner — stores get no response — so this is the one
// place a store request dies.
func (p *Partition) recycleStore(req *mem.Request) {
	if p.rec != nil {
		p.rec.Defer(req)
		return
	}
	p.pool.Put(req)
}

// getWaiters returns an empty MSHR waiter slice, reusing a recycled
// backing array when one is available.
func (p *Partition) getWaiters() []*mem.Request {
	if n := len(p.freeWaiters); n > 0 {
		w := p.freeWaiters[n-1]
		p.freeWaiters[n-1] = nil
		p.freeWaiters = p.freeWaiters[:n-1]
		return w
	}
	return make([]*mem.Request, 0, 4)
}

func (p *Partition) putWaiters(w []*mem.Request) {
	for i := range w {
		w[i] = nil
	}
	p.freeWaiters = append(p.freeWaiters, w[:0])
}

// writeback sends a dirty victim to DRAM.
func (p *Partition) writeback(evicted cache.Line, set int) {
	// Reconstruct the line address from the tag (tag == full line number).
	lineAddr := addr.Addr(evicted.Tag * uint64(p.mapper.LineSize()))
	p.dram.Access(lineAddr, p.mapper.LineSize(), p.now)
	p.st.DRAMWrites++
	_ = set
}

// completeFill lands a DRAM read: fill the reserved line and release all
// merged requests as responses.
func (p *Partition) completeFill(req *mem.Request) {
	waiters := p.mshr[req.Addr]
	if waiters == nil {
		panic(fmt.Sprintf("l2: fill for %#x without MSHR entry", uint64(req.Addr)))
	}
	delete(p.mshr, req.Addr)
	set, way, res := p.ta.Probe(req.Addr)
	if res != cache.ProbeReserved {
		panic(fmt.Sprintf("l2: fill for %#x but line not reserved (%v)", uint64(req.Addr), res))
	}
	p.ta.Fill(set, way)
	p.responses = append(p.responses, waiters...)
	p.putWaiters(waiters)
}

func (p *Partition) schedule(req *mem.Request, at uint64, fill bool) {
	p.seq++
	p.events.push(event{readyAt: at, req: req, fill: fill, seq: p.seq})
}

// PopResponse returns the next load response ready to travel back to the
// core, or nil.
func (p *Partition) PopResponse() *mem.Request {
	if len(p.responses) == 0 {
		return nil
	}
	r := p.responses[0]
	copy(p.responses, p.responses[1:])
	p.responses[len(p.responses)-1] = nil
	p.responses = p.responses[:len(p.responses)-1]
	return r
}

// Pending reports whether the partition still has queued, in-flight, or
// undelivered work.
func (p *Partition) Pending() bool {
	return len(p.inQ) > 0 || len(p.events) > 0 || len(p.responses) > 0 || len(p.mshr) > 0
}

// Busy reports whether Tick(now) would do real work: a queued request
// to service, a response to hand out, or a scheduled event that is due.
// When false, Tick is a pure no-op (it would only refresh p.now, which
// the next real service observes anyway), so the engine can skip it.
func (p *Partition) Busy(now uint64) bool {
	return len(p.inQ) > 0 || len(p.responses) > 0 ||
		(len(p.events) > 0 && p.events[0].readyAt <= now)
}

// NextEvent returns the earliest scheduled completion time, or ok=false
// when no event is pending. With an empty input queue this is the
// partition's next activity cycle.
func (p *Partition) NextEvent() (at uint64, ok bool) {
	if len(p.events) == 0 {
		return 0, false
	}
	return p.events[0].readyAt, true
}

// Queued reports whether the partition holds immediately serviceable
// work (input-queue entries or undelivered responses) — work that makes
// the very next cycle active and therefore forbids fast-forwarding.
func (p *Partition) Queued() bool {
	return len(p.inQ) > 0 || len(p.responses) > 0
}
