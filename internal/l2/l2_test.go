package l2

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/stats"
)

func newPart() (*Partition, *stats.Stats) {
	st := &stats.Stats{}
	return New(config.Baseline(), st, nil), st
}

// run advances the partition until a response appears or maxCycles pass.
func run(p *Partition, from uint64, maxCycles int) (*mem.Request, uint64) {
	for i := 0; i < maxCycles; i++ {
		now := from + uint64(i)
		p.Tick(now)
		if r := p.PopResponse(); r != nil {
			return r, now
		}
	}
	return nil, from + uint64(maxCycles)
}

func TestMissGoesToDRAMThenHit(t *testing.T) {
	p, st := newPart()
	r1 := &mem.Request{ID: 1, Addr: 0x1000}
	p.Enqueue(r1)
	resp, missCycle := run(p, 0, 1000)
	if resp != r1 {
		t.Fatal("no response to first read")
	}
	if st.L2Misses != 1 || st.DRAMReads != 1 {
		t.Errorf("misses/dramReads = %d/%d", st.L2Misses, st.DRAMReads)
	}
	// Second read of the same line: L2 hit, no more DRAM traffic, and a
	// much shorter latency.
	r2 := &mem.Request{ID: 2, Addr: 0x1000}
	p.Enqueue(r2)
	resp2, hitCycle := run(p, missCycle+1, 1000)
	if resp2 != r2 {
		t.Fatal("no response to second read")
	}
	if st.L2Hits != 1 || st.DRAMReads != 1 {
		t.Errorf("hits/dramReads = %d/%d", st.L2Hits, st.DRAMReads)
	}
	if hitLat, missLat := hitCycle-missCycle-1, missCycle; hitLat >= missLat {
		t.Errorf("hit latency %d not shorter than miss latency %d", hitLat, missLat)
	}
}

func TestOutstandingMissesMerge(t *testing.T) {
	p, st := newPart()
	r1 := &mem.Request{ID: 1, Addr: 0x2000}
	r2 := &mem.Request{ID: 2, Addr: 0x2000}
	p.Enqueue(r1)
	p.Tick(0) // services r1, starts DRAM
	p.Enqueue(r2)
	p.Tick(1) // r2 merges
	if st.DRAMReads != 1 {
		t.Fatalf("DRAMReads = %d, want 1 (merged)", st.DRAMReads)
	}
	got := map[uint64]bool{}
	for now := uint64(2); now < 1000 && len(got) < 2; now++ {
		p.Tick(now)
		for r := p.PopResponse(); r != nil; r = p.PopResponse() {
			got[r.ID] = true
		}
	}
	if !got[1] || !got[2] {
		t.Errorf("merged requests not all answered: %v", got)
	}
}

func TestStoreHitMarksDirtyStoreMissForwards(t *testing.T) {
	p, st := newPart()
	// Warm a line.
	p.Enqueue(&mem.Request{ID: 1, Addr: 0x3000})
	if r, _ := run(p, 0, 1000); r == nil {
		t.Fatal("warmup failed")
	}
	dramWritesBefore := st.DRAMWrites
	// Store hit: absorbed by L2.
	p.Enqueue(&mem.Request{ID: 2, Addr: 0x3000, Store: true})
	p.Tick(2000)
	if st.DRAMWrites != dramWritesBefore {
		t.Errorf("store hit went to DRAM")
	}
	// Store miss: forwarded.
	p.Enqueue(&mem.Request{ID: 3, Addr: 0x9000, Store: true})
	p.Tick(2001)
	if st.DRAMWrites != dramWritesBefore+1 {
		t.Errorf("store miss not forwarded to DRAM: %d", st.DRAMWrites)
	}
	// Stores never produce responses.
	if r := p.PopResponse(); r != nil {
		t.Errorf("store produced a response: %v", r)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg := config.Baseline()
	cfg.L2 = config.CacheGeom{Sets: 1, Ways: 2, LineSize: 128, Hashed: false}
	st := &stats.Stats{}
	p := New(cfg, st, nil)

	fill := func(a addr.Addr) {
		p.Enqueue(&mem.Request{Addr: a})
		if r, _ := run(p, 0, 5000); r == nil {
			panic("fill failed")
		}
	}
	fill(0)
	fill(128)
	// Dirty line 0.
	p.Enqueue(&mem.Request{Addr: 0, Store: true})
	p.Tick(10000)
	writesBefore := st.DRAMWrites
	// Touch line 128 so line 0 stays LRU... line 0 was just touched by the
	// store; touch 128 afterwards to make 0 the LRU victim.
	p.Enqueue(&mem.Request{Addr: 128})
	for now := uint64(10001); now < 12000; now++ {
		p.Tick(now)
		if p.PopResponse() != nil {
			break
		}
	}
	// Fill a third line: evicts dirty line 0 -> writeback.
	p.Enqueue(&mem.Request{Addr: 256})
	if r, _ := run(p, 12000, 5000); r == nil {
		t.Fatal("third fill failed")
	}
	if st.DRAMWrites != writesBefore+1 {
		t.Errorf("dirty eviction did not write back: %d vs %d", st.DRAMWrites, writesBefore)
	}
}

func TestMSHRFullBlocksService(t *testing.T) {
	cfg := config.Baseline()
	cfg.L2MSHRs = 1
	st := &stats.Stats{}
	p := New(cfg, st, nil)
	p.Enqueue(&mem.Request{ID: 1, Addr: 0x1000})
	p.Tick(0) // takes the only MSHR
	p.Enqueue(&mem.Request{ID: 2, Addr: 0x2000})
	p.Tick(1) // cannot service: MSHR full
	if st.DRAMReads != 1 {
		t.Errorf("second miss serviced despite full MSHR: %d DRAM reads", st.DRAMReads)
	}
	// After the first fill completes the second proceeds.
	for now := uint64(2); now < 2000; now++ {
		p.Tick(now)
	}
	if st.DRAMReads != 2 {
		t.Errorf("second miss never serviced: %d DRAM reads", st.DRAMReads)
	}
	if st.L2Accesses != 2 {
		t.Errorf("L2Accesses = %d, want 2 (retries not double-counted)", st.L2Accesses)
	}
}

func TestPending(t *testing.T) {
	p, _ := newPart()
	if p.Pending() {
		t.Error("fresh partition pending")
	}
	p.Enqueue(&mem.Request{ID: 1, Addr: 0x1000})
	if !p.Pending() {
		t.Error("queued request not pending")
	}
	if r, _ := run(p, 0, 2000); r == nil {
		t.Fatal("no response")
	}
	if p.Pending() {
		t.Error("drained partition still pending")
	}
}
