package l2

import "repro/internal/metrics"

// RegisterMetrics registers the partition's hit/miss and DRAM counters
// plus its queue and MSHR occupancy gauges under prefix (e.g. "l2p7").
func (p *Partition) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.Counter(prefix+".accesses", &p.st.L2Accesses)
	reg.Counter(prefix+".hits", &p.st.L2Hits)
	reg.Counter(prefix+".misses", &p.st.L2Misses)
	reg.Counter(prefix+".dram_reads", &p.st.DRAMReads)
	reg.Counter(prefix+".dram_writes", &p.st.DRAMWrites)
	reg.IntGauge(prefix+".inq.depth", func() int { return len(p.inQ) })
	reg.IntGauge(prefix+".mshr.entries", func() int { return len(p.mshr) })
	reg.IntGauge(prefix+".events.pending", func() int { return len(p.events) })
	reg.IntGauge(prefix+".responses.ready", func() int { return len(p.responses) })
	p.pool.RegisterMetrics(reg, prefix+".pool")
	p.rec.RegisterMetrics(reg, prefix+".recycler")
}
