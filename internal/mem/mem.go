// Package mem defines the memory request/response types that flow between
// the SM load/store units, the L1D caches, the interconnect, the L2
// partitions, and the DRAM model.
package mem

import (
	"fmt"

	"repro/internal/addr"
)

// Request is one line-granularity memory transaction. The LD/ST unit
// coalesces a warp memory instruction's per-lane addresses into one
// Request per distinct cache line.
type Request struct {
	ID     uint64    // unique per simulation, for debugging and ordering
	Addr   addr.Addr // line-aligned address
	PC     uint32    // static instruction that issued the access
	InsnID uint8     // addr.HashPC(PC), the 7-bit PDPT index
	SM     int       // issuing streaming multiprocessor
	Warp   int       // issuing warp slot within the SM
	Store  bool      // true for global stores (write-through, no-allocate)

	// Bypass marks a request the L1D sent around itself: the response must
	// be delivered to the warp without filling a line.
	Bypass bool
}

func (r *Request) String() string {
	kind := "LD"
	if r.Store {
		kind = "ST"
	}
	return fmt.Sprintf("%s#%d addr=%#x pc=%d sm=%d warp=%d bypass=%v",
		kind, r.ID, uint64(r.Addr), r.PC, r.SM, r.Warp, r.Bypass)
}

// AccessOutcome is what the L1D tells the LD/ST unit about one access.
type AccessOutcome int

const (
	// OutcomeHit: data available after the hit latency.
	OutcomeHit AccessOutcome = iota
	// OutcomeMiss: the request was accepted (MSHR entry allocated or
	// merged) and a response will arrive later.
	OutcomeMiss
	// OutcomeBypass: the request was accepted and sent around the cache;
	// a response will arrive later and will not fill a line.
	OutcomeBypass
	// OutcomeStall: the cache could not accept the request this cycle; the
	// LD/ST pipeline register stays blocked and must retry.
	OutcomeStall
)

func (o AccessOutcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeMiss:
		return "miss"
	case OutcomeBypass:
		return "bypass"
	case OutcomeStall:
		return "stall"
	default:
		return fmt.Sprintf("AccessOutcome(%d)", int(o))
	}
}
