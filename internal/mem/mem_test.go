package mem

import (
	"strings"
	"testing"
)

func TestRequestString(t *testing.T) {
	ld := &Request{ID: 7, Addr: 0x1000, PC: 3, SM: 2, Warp: 5}
	s := ld.String()
	for _, want := range []string{"LD#7", "0x1000", "pc=3", "sm=2", "warp=5"} {
		if !strings.Contains(s, want) {
			t.Errorf("load String() missing %q: %s", want, s)
		}
	}
	st := &Request{ID: 8, Store: true, Bypass: true}
	if !strings.Contains(st.String(), "ST#8") || !strings.Contains(st.String(), "bypass=true") {
		t.Errorf("store String() = %s", st.String())
	}
}

func TestAccessOutcomeString(t *testing.T) {
	want := map[AccessOutcome]string{
		OutcomeHit:        "hit",
		OutcomeMiss:       "miss",
		OutcomeBypass:     "bypass",
		OutcomeStall:      "stall",
		AccessOutcome(42): "AccessOutcome(42)",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), s)
		}
	}
}
