package mem

import "repro/internal/metrics"

// RegisterMetrics registers the pool's free-list level under prefix.
// The gauge tracks how deep the request free list has grown — a proxy
// for the peak number of in-flight requests the component has seen.
func (p *Pool) RegisterMetrics(reg *metrics.Registry, prefix string) {
	if p == nil {
		return
	}
	reg.IntGauge(prefix+".free", func() int { return len(p.free) })
}

// RegisterMetrics registers the recycler's pending-return level.
func (r *Recycler) RegisterMetrics(reg *metrics.Registry, prefix string) {
	if r == nil {
		return
	}
	reg.IntGauge(prefix+".pending", r.Len)
}
