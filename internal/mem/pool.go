package mem

// Pool is a free list of Requests. One engine's components — the SM
// LD/ST units that create requests and the delivery points that consume
// them (the SM response callback for loads, the L2 write-through sink
// for stores) — share a single pool, so a simulation's steady state
// recycles a small working set of Request objects instead of allocating
// one per memory instruction. The engine is single-threaded, so the
// pool needs no locking; separate engines (parallel runner workers)
// each own their own pool.
//
// A nil *Pool is valid and simply allocates/discards, which keeps
// component constructors usable from tests that don't care about
// pooling.
type Pool struct {
	free []*Request
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a zeroed Request, reusing a recycled one when available.
func (p *Pool) Get() *Request {
	if p == nil || len(p.free) == 0 {
		return new(Request)
	}
	n := len(p.free) - 1
	r := p.free[n]
	p.free[n] = nil
	p.free = p.free[:n]
	*r = Request{}
	return r
}

// Put recycles a Request whose lifetime has ended. The caller must hold
// the only live reference: a double Put (or a Put of a request still
// queued somewhere) would hand the same object to two owners and
// corrupt the simulation.
func (p *Pool) Put(r *Request) {
	if p == nil || r == nil {
		return
	}
	p.free = append(p.free, r)
}
