package mem

// Pool is a free list of Requests. The components that create requests
// (the SM LD/ST units) and the delivery points that consume them (the
// SM response callback for loads, the L2 write-through sink for stores)
// recycle through pools, so a simulation's steady state reuses a small
// working set of Request objects instead of allocating one per memory
// instruction. Pools are unlocked: each is owned by exactly one
// component shard — the engine gives every SM its own pool, and
// consumers on other shards (L2 partitions retiring stores) defer their
// returns through a Recycler that the engine drains back to the owning
// SM's pool during the serial phase of the cycle. Separate engines
// (parallel runner workers) each own their own pools.
//
// A nil *Pool is valid and simply allocates/discards, which keeps
// component constructors usable from tests that don't care about
// pooling.
type Pool struct {
	free []*Request
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a zeroed Request, reusing a recycled one when available.
func (p *Pool) Get() *Request {
	if p == nil || len(p.free) == 0 {
		return new(Request)
	}
	n := len(p.free) - 1
	r := p.free[n]
	p.free[n] = nil
	p.free = p.free[:n]
	*r = Request{}
	return r
}

// Put recycles a Request whose lifetime has ended. The caller must hold
// the only live reference: a double Put (or a Put of a request still
// queued somewhere) would hand the same object to two owners and
// corrupt the simulation.
func (p *Pool) Put(r *Request) {
	if p == nil || r == nil {
		return
	}
	p.free = append(p.free, r)
}

// Recycler accumulates Requests whose lifetime ended on a component that
// does not own their home pool. L2 partitions retire store requests that
// were allocated from the issuing SM's pool; under phase-parallel
// ticking the partition must not touch that pool directly (it may be
// ticking concurrently on another shard), so it defers the return here.
// The engine drains every recycler during the serial interaction phase,
// routing each request back to its origin SM's pool via Request.SM — so
// pools stay unlocked and the steady state stays allocation-free at any
// core count.
//
// A nil *Recycler is valid: Defer discards the request (matching the
// nil-*Pool contract) and Drain is a no-op.
type Recycler struct {
	reqs []*Request
}

// Defer records a request for a later Drain.
func (rc *Recycler) Defer(r *Request) {
	if rc == nil || r == nil {
		return
	}
	rc.reqs = append(rc.reqs, r)
}

// Len reports how many requests are waiting to be drained.
func (rc *Recycler) Len() int {
	if rc == nil {
		return 0
	}
	return len(rc.reqs)
}

// Drain hands every deferred request to put (in defer order) and resets
// the recycler, keeping its backing array for reuse.
func (rc *Recycler) Drain(put func(*Request)) {
	if rc == nil {
		return
	}
	for i, r := range rc.reqs {
		rc.reqs[i] = nil
		put(r)
	}
	rc.reqs = rc.reqs[:0]
}

// DrainTo appends every deferred request to lane (in defer order),
// resets the recycler, and returns the extended lane. It is the
// lane-queue form of Drain: a phase shard moves its partitions'
// deferred returns into its own lane with plain pointer appends — no
// per-element callback — and the engine's serial merge routes the lane
// contents home afterwards. A nil receiver returns lane unchanged.
func (rc *Recycler) DrainTo(lane []*Request) []*Request {
	if rc == nil {
		return lane
	}
	lane = append(lane, rc.reqs...)
	for i := range rc.reqs {
		rc.reqs[i] = nil
	}
	rc.reqs = rc.reqs[:0]
	return lane
}
