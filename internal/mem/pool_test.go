package mem

import "testing"

// TestRecyclerDrainTo pins the lane-queue drain the phase shards use:
// defer order is preserved, the recycler is emptied (and its backing
// slots cleared so it holds no stale references), and a nil receiver
// leaves the lane untouched.
func TestRecyclerDrainTo(t *testing.T) {
	rc := &Recycler{}
	a, b, c := &Request{SM: 1}, &Request{SM: 2}, &Request{SM: 3}
	rc.Defer(a)
	rc.Defer(b)
	rc.Defer(c)

	lane := make([]*Request, 0, 1)
	lane = append(lane, &Request{SM: 0})
	lane = rc.DrainTo(lane)

	if len(lane) != 4 {
		t.Fatalf("lane has %d entries, want 4", len(lane))
	}
	for i, want := range []*Request{lane[0], a, b, c} {
		if lane[i] != want {
			t.Errorf("lane[%d] = %p, want %p (defer order must be preserved)", i, lane[i], want)
		}
	}
	if rc.Len() != 0 {
		t.Errorf("recycler holds %d requests after DrainTo, want 0", rc.Len())
	}
	for i, r := range rc.reqs[:cap(rc.reqs)] {
		if r != nil {
			t.Errorf("backing slot %d not cleared after DrainTo", i)
		}
	}

	// Draining an empty recycler, or a nil one, must not grow the lane.
	if got := rc.DrainTo(nil); got != nil {
		t.Errorf("empty DrainTo(nil) = %v, want nil", got)
	}
	var nilRC *Recycler
	if got := nilRC.DrainTo(lane); len(got) != len(lane) {
		t.Errorf("nil receiver extended the lane: %d -> %d", len(lane), len(got))
	}
}

// TestRecyclerDrainToReusesBacking proves repeated Defer/DrainTo cycles
// reuse the recycler's backing array — the allocation-free steady state
// the engine's per-span lanes rely on.
func TestRecyclerDrainToReusesBacking(t *testing.T) {
	rc := &Recycler{}
	var lane []*Request
	req := &Request{}
	allocs := testing.AllocsPerRun(100, func() {
		rc.Defer(req)
		lane = rc.DrainTo(lane[:0])
	})
	if allocs > 0 {
		t.Errorf("steady-state Defer/DrainTo allocates %.1f per cycle, want 0", allocs)
	}
}
