package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// TraceEvent is one entry of the Chrome trace_event format ("JSON
// Object Format" variant), the schema Perfetto and chrome://tracing
// load directly. Timestamps and durations are microseconds.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceDoc is the top-level trace_event JSON object.
type TraceDoc struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit,omitempty"`
}

// Trace accumulates trace events. All methods are safe for concurrent
// use; events are written out in insertion order (the format does not
// require sorting).
type Trace struct {
	mu     sync.Mutex
	events []TraceEvent
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

func (t *Trace) append(ev TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Complete records an "X" (complete) event: a span [ts, ts+dur] on
// track (pid, tid).
func (t *Trace) Complete(name, cat string, pid, tid int, ts, dur float64, args map[string]any) {
	t.append(TraceEvent{Name: name, Cat: cat, Ph: "X", Ts: ts, Dur: dur, Pid: pid, Tid: tid, Args: args})
}

// Instant records an "i" (instant) event at ts on track (pid, tid).
func (t *Trace) Instant(name, cat string, pid, tid int, ts float64, args map[string]any) {
	t.append(TraceEvent{Name: name, Cat: cat, Ph: "i", Ts: ts, Pid: pid, Tid: tid, Args: args})
}

// Counter records a "C" (counter) event: values is a name→number map
// rendered as a stacked area chart by the viewers.
func (t *Trace) Counter(name string, pid int, ts float64, values map[string]any) {
	t.append(TraceEvent{Name: name, Ph: "C", Ts: ts, Pid: pid, Args: values})
}

// ProcessName records the "M" metadata event naming a pid's track.
func (t *Trace) ProcessName(pid int, name string) {
	t.append(TraceEvent{Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name}})
}

// ThreadName records the "M" metadata event naming a (pid, tid) track.
func (t *Trace) ThreadName(pid, tid int, name string) {
	t.append(TraceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name}})
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteJSON serializes the trace as a trace_event JSON object, ready
// for Perfetto (ui.perfetto.dev → "Open trace file") or
// chrome://tracing.
func (t *Trace) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	doc := TraceDoc{TraceEvents: t.events, DisplayTimeUnit: "ms"}
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// ReadChromeTrace parses and validates a trace_event JSON document:
// every event must carry a known phase and a name (metadata and
// counter events included), and "X" events must not have negative
// durations. It is the validation the CI smoke job runs on exported
// traces.
func ReadChromeTrace(r io.Reader) (*TraceDoc, error) {
	var doc TraceDoc
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("chrome trace: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return nil, fmt.Errorf("chrome trace: no events")
	}
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X", "B", "E", "i", "I", "C", "M":
		default:
			return nil, fmt.Errorf("chrome trace: event %d has unknown phase %q", i, ev.Ph)
		}
		if ev.Name == "" {
			return nil, fmt.Errorf("chrome trace: event %d has no name", i)
		}
		if ev.Ph == "X" && ev.Dur < 0 {
			return nil, fmt.Errorf("chrome trace: event %d (%s) has negative duration", i, ev.Name)
		}
	}
	return &doc, nil
}
