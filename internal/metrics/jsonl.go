package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// JSONLSink streams sampled rows as JSON Lines. The file interleaves
// header lines and row lines, one JSON object per line:
//
//	{"series":"CFD under DLP(s)","names":["icnt.flits",...]}
//	{"series":"CFD under DLP(s)","cycle":4096,"v":[125,...]}
//
// Interleaving (rather than grouping by series) lets many concurrent
// simulations share one file; ReadJSONL reassembles per-series order,
// which is deterministic because each simulation emits its own rows in
// cycle order. Row encoding is hand-rolled over a reused buffer so the
// steady-state cost per row is the write, not garbage.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	buf []byte
	// esc caches the JSON-escaped form of each series label announced
	// via Begin, so rows don't re-escape the label every sample.
	esc map[string]string
}

// NewJSONLSink returns a sink writing to w. Call Flush before closing
// the underlying file.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriterSize(w, 1<<16), esc: make(map[string]string)}
}

// Begin writes the header line for a series.
func (s *JSONLSink) Begin(series string, names []string) {
	hdr, err := json.Marshal(struct {
		Series string   `json:"series"`
		Names  []string `json:"names"`
	}{series, names})
	if err != nil { // strings only: cannot fail
		panic(err)
	}
	lit, _ := json.Marshal(series)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.esc[series] = string(lit)
	s.w.Write(hdr)
	s.w.WriteByte('\n')
}

// Row writes one sampled row. The values slice is consumed before Row
// returns, satisfying the Sink reuse contract.
func (s *JSONLSink) Row(series string, cycle uint64, values []uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lit, ok := s.esc[series]
	if !ok {
		b, _ := json.Marshal(series)
		lit = string(b)
		s.esc[series] = lit
	}
	b := s.buf[:0]
	b = append(b, `{"series":`...)
	b = append(b, lit...)
	b = append(b, `,"cycle":`...)
	b = strconv.AppendUint(b, cycle, 10)
	b = append(b, `,"v":[`...)
	for i, v := range values {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendUint(b, v, 10)
	}
	b = append(b, "]}\n"...)
	s.buf = b
	s.w.Write(b)
}

// Flush drains the buffered writer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// SampleRow is one sampled row of a series.
type SampleRow struct {
	Cycle  uint64
	Values []uint64
}

// Series is the reassembled time series of one simulation.
type Series struct {
	Label string
	Names []string
	Rows  []SampleRow
}

// SeriesSet maps series label to its reassembled series.
type SeriesSet struct {
	Series map[string]*Series
}

// Labels returns the series labels in sorted order.
func (ss *SeriesSet) Labels() []string {
	out := make([]string, 0, len(ss.Series))
	for l := range ss.Series {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// ReadJSONL parses a metrics JSONL stream, validating that every row
// belongs to an announced series and carries exactly one value per
// declared name.
func ReadJSONL(r io.Reader) (*SeriesSet, error) {
	ss := &SeriesSet{Series: make(map[string]*Series)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec struct {
			Series string    `json:"series"`
			Names  []string  `json:"names"`
			Cycle  *uint64   `json:"cycle"`
			V      *[]uint64 `json:"v"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("metrics jsonl line %d: %w", lineNo, err)
		}
		if rec.Series == "" {
			return nil, fmt.Errorf("metrics jsonl line %d: missing series", lineNo)
		}
		if rec.Cycle == nil { // header line
			if len(rec.Names) == 0 {
				return nil, fmt.Errorf("metrics jsonl line %d: header without names", lineNo)
			}
			if s, ok := ss.Series[rec.Series]; ok {
				// A retried job re-announces its series; the schema
				// must not change mid-stream.
				if len(s.Names) != len(rec.Names) {
					return nil, fmt.Errorf("metrics jsonl line %d: series %q re-announced with %d names, had %d",
						lineNo, rec.Series, len(rec.Names), len(s.Names))
				}
				continue
			}
			ss.Series[rec.Series] = &Series{Label: rec.Series, Names: rec.Names}
			continue
		}
		if rec.V == nil {
			return nil, fmt.Errorf("metrics jsonl line %d: row without values", lineNo)
		}
		s, ok := ss.Series[rec.Series]
		if !ok {
			return nil, fmt.Errorf("metrics jsonl line %d: row for unannounced series %q", lineNo, rec.Series)
		}
		if len(*rec.V) != len(s.Names) {
			return nil, fmt.Errorf("metrics jsonl line %d: row has %d values, series %q declares %d names",
				lineNo, len(*rec.V), rec.Series, len(s.Names))
		}
		s.Rows = append(s.Rows, SampleRow{Cycle: *rec.Cycle, Values: *rec.V})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ss, nil
}

// MemorySink collects rows in memory, copying every row (so it is safe
// against the sampler's buffer reuse). It is safe for concurrent use
// and is the sink the differential tests compare across engine
// configurations.
type MemorySink struct {
	mu  sync.Mutex
	set SeriesSet
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink {
	return &MemorySink{set: SeriesSet{Series: make(map[string]*Series)}}
}

// Begin implements Sink.
func (m *MemorySink) Begin(series string, names []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.set.Series[series]; ok {
		return
	}
	m.set.Series[series] = &Series{Label: series, Names: append([]string(nil), names...)}
}

// Row implements Sink.
func (m *MemorySink) Row(series string, cycle uint64, values []uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.set.Series[series]
	if !ok {
		s = &Series{Label: series}
		m.set.Series[series] = s
	}
	s.Rows = append(s.Rows, SampleRow{Cycle: cycle, Values: append([]uint64(nil), values...)})
}

// Snapshot returns the collected series set. The caller must not
// mutate it while sampling continues.
func (m *MemorySink) Snapshot() *SeriesSet {
	m.mu.Lock()
	defer m.mu.Unlock()
	return &m.set
}
