// Package metrics is the cycle-domain observability layer of the
// simulator: a pull-model registry of named counters and gauges that
// core components (L1D, VTA, PDPT, MSHR queues, L2 partitions, the
// crossbar, SM schedulers, request pools) register into at engine
// construction time, plus sinks that receive sampled rows.
//
// The design goal is that the registry is provably free when disabled:
//
//   - Registration hands the registry a *uint64 pointing at a counter
//     the component already maintains (usually a stats.Stats field) or
//     a closure reading an existing length/level. The component's hot
//     path never calls into this package — it keeps incrementing the
//     same word it always did.
//   - Sampling is driven from the outside (the engine's cycle loop)
//     by reading through those pointers into a row buffer allocated
//     once at Seal time. Sample performs zero allocations.
//   - When no sink is configured the engine never builds a registry at
//     all, so the disabled cost is exactly one nil check per sampling
//     boundary.
package metrics

import "fmt"

// DefaultEvery is the sampling period, in cycles, used when a Config
// does not specify one. It matches the engine's context-check stride so
// a default-rate sample never lands inside a fast-forwardable window
// larger than one the engine would already have clamped.
const DefaultEvery = 4096

// Config enables cycle-domain sampling on a simulation. It travels in
// sim.Options; a nil Config (or nil Sink) disables sampling entirely.
type Config struct {
	// Sink receives the header and sampled rows. Nil disables sampling.
	Sink Sink
	// Every is the sampling period in cycles; 0 means DefaultEvery.
	Every uint64
	// Label names the series, e.g. "CFD under DLP(s)". Rows from one
	// simulation all carry the same label, so a single sink can
	// multiplex many concurrent simulations.
	Label string
}

// Enabled reports whether the config actually turns sampling on.
func (c *Config) Enabled() bool { return c != nil && c.Sink != nil }

// Interval returns the effective sampling period.
func (c *Config) Interval() uint64 {
	if c == nil || c.Every == 0 {
		return DefaultEvery
	}
	return c.Every
}

// Sink receives sampled metric rows. Begin is called once per series
// before any Row. Implementations must tolerate concurrent calls for
// different series (the runner samples many simulations in parallel)
// and a repeated Begin for the same series (a retried job re-registers).
//
// The values slice passed to Row is reused by the sampler for the next
// row: a sink that retains values past the call must copy them.
type Sink interface {
	Begin(series string, names []string)
	Row(series string, cycle uint64, values []uint64)
}

// source is one registered metric: exactly one of ptr/fn is set.
type source struct {
	ptr *uint64
	fn  func() uint64
}

// Registry holds the registered counters and gauges of one simulation
// engine. It is not safe for concurrent registration; build it on one
// goroutine, Seal it, then Sample from one goroutine at a time (the
// engine samples only from its coordinating goroutine).
type Registry struct {
	names  []string
	src    []source
	row    []uint64
	sealed bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(name string, s source) {
	if r.sealed {
		panic("metrics: registration after Seal")
	}
	if name == "" {
		panic("metrics: empty metric name")
	}
	for _, n := range r.names {
		if n == name {
			panic(fmt.Sprintf("metrics: duplicate metric %q", name))
		}
	}
	r.names = append(r.names, name)
	r.src = append(r.src, s)
}

// Counter registers a monotonically increasing counter by pointer. The
// component keeps incrementing *v as before; Sample reads through the
// pointer.
func (r *Registry) Counter(name string, v *uint64) {
	if v == nil {
		panic("metrics: nil counter pointer")
	}
	r.add(name, source{ptr: v})
}

// Gauge registers an instantaneous level via a closure evaluated at
// sample time. The closure must be cheap and allocation-free.
func (r *Registry) Gauge(name string, fn func() uint64) {
	if fn == nil {
		panic("metrics: nil gauge func")
	}
	r.add(name, source{fn: fn})
}

// IntGauge registers a gauge backed by an int-returning closure, the
// common case for queue depths. Negative values clamp to zero.
func (r *Registry) IntGauge(name string, fn func() int) {
	r.Gauge(name, func() uint64 {
		n := fn()
		if n < 0 {
			return 0
		}
		return uint64(n)
	})
}

// Seal freezes the registry and allocates the reusable row buffer. It
// must be called before Sample; further registration panics.
func (r *Registry) Seal() {
	r.sealed = true
	r.row = make([]uint64, len(r.src))
}

// Names returns the registered metric names in registration order. The
// returned slice is the registry's own; callers must not mutate it.
func (r *Registry) Names() []string { return r.names }

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.src) }

// Sample reads every registered source into the registry's reusable
// row buffer and returns it. The buffer is overwritten by the next
// Sample call; it performs no allocations.
func (r *Registry) Sample() []uint64 {
	if !r.sealed {
		panic("metrics: Sample before Seal")
	}
	for i, s := range r.src {
		if s.ptr != nil {
			r.row[i] = *s.ptr
		} else {
			r.row[i] = s.fn()
		}
	}
	return r.row
}
