package metrics

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestRegistrySampleReadsThrough(t *testing.T) {
	r := NewRegistry()
	var hits, misses uint64
	depth := 3
	r.Counter("l1d.hits", &hits)
	r.Counter("l1d.misses", &misses)
	r.IntGauge("mshr.depth", func() int { return depth })
	r.Seal()

	if got := r.Names(); !reflect.DeepEqual(got, []string{"l1d.hits", "l1d.misses", "mshr.depth"}) {
		t.Fatalf("Names() = %v", got)
	}
	hits, misses = 10, 2
	if got := r.Sample(); !reflect.DeepEqual(append([]uint64(nil), got...), []uint64{10, 2, 3}) {
		t.Fatalf("Sample() = %v", got)
	}
	// The registry reads through the pointer: later increments are seen
	// without re-registration, and the row buffer is reused.
	hits = 25
	depth = -1 // negative gauges clamp to zero
	first := r.Sample()
	second := r.Sample()
	if &first[0] != &second[0] {
		t.Fatal("Sample must reuse its row buffer")
	}
	if !reflect.DeepEqual(append([]uint64(nil), second...), []uint64{25, 2, 0}) {
		t.Fatalf("Sample() = %v", second)
	}
}

func TestRegistrySampleZeroAllocs(t *testing.T) {
	r := NewRegistry()
	vals := make([]uint64, 32)
	for i := range vals {
		i := i
		if i%2 == 0 {
			r.Counter(fmt.Sprintf("c%d", i), &vals[i])
		} else {
			r.IntGauge(fmt.Sprintf("g%d", i), func() int { return int(vals[i]) })
		}
	}
	r.Seal()
	avg := testing.AllocsPerRun(200, func() {
		vals[0]++
		r.Sample()
	})
	if avg != 0 {
		t.Errorf("Sample allocates %.2f per call, want 0", avg)
	}
}

func TestRegistryMisuse(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	var v uint64
	mustPanic("duplicate name", func() {
		r := NewRegistry()
		r.Counter("x", &v)
		r.Counter("x", &v)
	})
	mustPanic("nil counter", func() { NewRegistry().Counter("x", nil) })
	mustPanic("nil gauge", func() { NewRegistry().Gauge("x", nil) })
	mustPanic("empty name", func() { NewRegistry().Counter("", &v) })
	mustPanic("sample before seal", func() {
		r := NewRegistry()
		r.Counter("x", &v)
		r.Sample()
	})
	mustPanic("register after seal", func() {
		r := NewRegistry()
		r.Seal()
		r.Counter("x", &v)
	})
}

func TestConfigDefaults(t *testing.T) {
	var c *Config
	if c.Enabled() {
		t.Fatal("nil config must be disabled")
	}
	if got := c.Interval(); got != DefaultEvery {
		t.Fatalf("nil config Interval() = %d", got)
	}
	c = &Config{}
	if c.Enabled() {
		t.Fatal("config without sink must be disabled")
	}
	c = &Config{Sink: NewMemorySink(), Every: 128}
	if !c.Enabled() || c.Interval() != 128 {
		t.Fatalf("Enabled=%v Interval=%d", c.Enabled(), c.Interval())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Begin("CFD under DLP(s)", []string{"a", "b"})
	s.Begin("MM under Baseline", []string{"x"})
	row := []uint64{1, 2}
	s.Row("CFD under DLP(s)", 4096, row)
	row[0], row[1] = 7, 8 // sink must have consumed the previous values
	s.Row("CFD under DLP(s)", 8192, row)
	s.Row("MM under Baseline", 4096, []uint64{9})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	ss, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := ss.Labels(); !reflect.DeepEqual(got, []string{"CFD under DLP(s)", "MM under Baseline"}) {
		t.Fatalf("Labels() = %v", got)
	}
	cfd := ss.Series["CFD under DLP(s)"]
	want := []SampleRow{{4096, []uint64{1, 2}}, {8192, []uint64{7, 8}}}
	if !reflect.DeepEqual(cfd.Rows, want) {
		t.Fatalf("rows = %v, want %v", cfd.Rows, want)
	}
}

func TestJSONLReaderRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"row before header":  `{"series":"x","cycle":1,"v":[1]}`,
		"wrong arity":        `{"series":"x","names":["a","b"]}` + "\n" + `{"series":"x","cycle":1,"v":[1]}`,
		"missing series":     `{"names":["a"]}`,
		"header no names":    `{"series":"x","names":[]}`,
		"row without values": `{"series":"x","names":["a"]}` + "\n" + `{"series":"x","cycle":1}`,
		"not json":           `not json`,
		"schema change": `{"series":"x","names":["a"]}` + "\n" +
			`{"series":"x","names":["a","b"]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// A repeated identical header (retried job) is fine.
	ok := `{"series":"x","names":["a"]}` + "\n" + `{"series":"x","names":["a"]}` + "\n" + `{"series":"x","cycle":1,"v":[5]}`
	ss, err := ReadJSONL(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("repeated header: %v", err)
	}
	if len(ss.Series["x"].Rows) != 1 {
		t.Fatalf("rows = %v", ss.Series["x"].Rows)
	}
}

// TestSinksConcurrent drives both sinks from many goroutines so the
// race detector (make check runs this package with -race) proves the
// locking discipline. The runner samples concurrent simulations into
// one sink, so this is the production access pattern.
func TestSinksConcurrent(t *testing.T) {
	var buf bytes.Buffer
	js := NewJSONLSink(&buf)
	ms := NewMemorySink()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			series := fmt.Sprintf("sim%d", g)
			js.Begin(series, []string{"a", "b"})
			ms.Begin(series, []string{"a", "b"})
			row := make([]uint64, 2)
			for c := uint64(1); c <= 50; c++ {
				row[0], row[1] = c, c*2
				js.Row(series, c*64, row)
				ms.Row(series, c*64, row)
			}
		}(g)
	}
	wg.Wait()
	if err := js.Flush(); err != nil {
		t.Fatal(err)
	}
	ss, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	mem := ms.Snapshot()
	for g := 0; g < 8; g++ {
		series := fmt.Sprintf("sim%d", g)
		got, want := ss.Series[series], mem.Series[series]
		if got == nil || want == nil {
			t.Fatalf("%s missing (jsonl=%v mem=%v)", series, got != nil, want != nil)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Fatalf("%s: jsonl and memory sinks disagree", series)
		}
		if len(got.Rows) != 50 {
			t.Fatalf("%s: %d rows", series, len(got.Rows))
		}
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTrace()
	tr.ProcessName(1, "runner")
	tr.ThreadName(1, 3, "job 3")
	tr.Complete("CFD under DLP(s)", "run", 1, 3, 100, 2500, map[string]any{"cycles": 12345})
	tr.Instant("cache hit", "cache", 1, 3, 2600, nil)
	tr.Counter("jobs", 1, 2600, map[string]any{"running": 2, "done": 1})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != tr.Len() || tr.Len() != 5 {
		t.Fatalf("events = %d, want 5", len(doc.TraceEvents))
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
}

func TestReadChromeTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty doc":     `{"traceEvents":[]}`,
		"unknown phase": `{"traceEvents":[{"name":"x","ph":"Z","ts":0,"pid":1,"tid":1}]}`,
		"unnamed event": `{"traceEvents":[{"ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]}`,
		"negative dur":  `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":-5,"pid":1,"tid":1}]}`,
		"not json":      `[[`,
	}
	for name, in := range cases {
		if _, err := ReadChromeTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
