package policy

import (
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/metrics"
)

// ata implements aggregated-tag-array admission, after ATA-Cache
// (arXiv:2302.10638): a tag-only array several times wider than the
// data store tracks recently referenced lines, and a miss allocates a
// data line only when its tag is already present — i.e. the line has
// demonstrated a second touch. First touches bypass, so streaming
// (zero-reuse) traffic never displaces resident lines, which is the
// contention the scheme mitigates on shared L1s. Nothing ever stalls:
// like Stall-Bypass, every blocked access takes the bypass path.
//
// The aggregated array reuses the VTA structure (tags + LRU); its
// associativity is cfg.ATAWays per L1D set.
type ata struct {
	Base
	h    *Host
	tags *VTA // aggregated tag array: tag-only recency, no data

	admits     uint64 // misses admitted on aggregated-tag evidence
	firstTouch uint64 // first-touch misses sent down the bypass path
}

func newATA(h *Host) *ata {
	return &ata{h: h, tags: NewVTA(h.Cfg.L1D.Sets, h.Cfg.ATAWays)}
}

func (p *ata) OnBlocked(*mem.Request, int, Block) Decision { return Bypass }

// Admit consults and trains the aggregated array: a miss whose tag is
// already tracked allocates; an untracked tag is recorded and bypassed,
// so its next miss within the array's reach is admitted.
func (p *ata) Admit(req *mem.Request, set int) bool {
	tag := p.h.Mapper.Tag(req.Addr)
	_, seen := p.tags.Peek(set, tag)
	p.tags.Insert(set, tag, req.InsnID)
	if seen {
		p.admits++
		return true
	}
	p.firstTouch++
	return false
}

func (p *ata) OnHit(req *mem.Request, set int, _ *cache.Line) {
	// Keep hot tags resident in the aggregated array so a line that is
	// evicted while still hot re-admits immediately.
	p.tags.Insert(set, p.h.Mapper.Tag(req.Addr), req.InsnID)
}

func (p *ata) OnEvict(set int, evicted cache.Line) {
	p.tags.Insert(set, evicted.Tag, evicted.InsnID)
}

func (p *ata) CheckInvariants() error {
	if err := checkNoProtectionTDA(p.h, config.PolicyATA); err != nil {
		return err
	}
	if err := p.tags.CheckGeometry(p.h.Cfg.L1D.Sets, p.h.Cfg.ATAWays); err != nil {
		return err
	}
	return nil
}

func (p *ata) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.IntGauge(prefix+".ata.entries", p.tags.Len)
	reg.Counter(prefix+".ata.admits", &p.admits)
	reg.Counter(prefix+".ata.first_touch_bypasses", &p.firstTouch)
}
