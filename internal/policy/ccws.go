package policy

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/metrics"
)

// ccws is a cache-side rendition of the CCWS locality detector (Rogers
// et al., MICRO 2012): a victim tag array records evicted tags, and a
// refetch that hits the VTA is lost intra-warp locality — the line was
// thrown away while still live. Where full CCWS throttles the warp
// scheduler, this lightweight variant protects the refetched line at
// insertion so the locality survives its second residency.
//
// The protection lifetime has two encodings, toggled by
// cfg.CCWSByCycles (the protection-type switch of SNIPPETS.md snippet
// 2): accesses mode stores a set-query countdown in PL (aged like
// DLP's protected lives), cycles mode stores an absolute expiry cycle
// in PL and never ages it — the line simply becomes evictable once the
// core clock passes the deadline.
type ccws struct {
	Base
	h        *Host
	vta      *VTA
	byCycles bool
	lifetime int

	lost      uint64 // lost-locality detections (VTA hits)
	protected uint64 // protections granted at insertion
}

func newCCWS(h *Host) *ccws {
	life := h.Cfg.CCWSProtectAccesses
	if h.Cfg.CCWSByCycles {
		life = h.Cfg.CCWSProtectCycles
	}
	return &ccws{
		h:        h,
		vta:      NewVTA(h.Cfg.L1D.Sets, h.Cfg.VTAWays),
		byCycles: h.Cfg.CCWSByCycles,
		lifetime: life,
	}
}

func (p *ccws) OnAccess(_ *mem.Request, set int) {
	// Accesses mode ages protections per set query, like DLP; cycles
	// mode leaves PL alone — expiry is judged against the clock.
	if !p.byCycles {
		agePLs(p.h.Tags.Set(set))
	}
}

func (p *ccws) OnBlocked(_ *mem.Request, _ int, why Block) Decision {
	if why == BlockNoVictim {
		return Bypass
	}
	return Stall
}

func (p *ccws) VictimFilter() func(*cache.Line) bool {
	if p.byCycles {
		now := p.h.Now
		return func(l *cache.Line) bool { return l.PL == 0 || uint64(l.PL) <= now() }
	}
	return func(l *cache.Line) bool { return l.PL == 0 }
}

// OnReserved grants protection when the incoming line's tag is found in
// the VTA: the line was evicted with locality outstanding, so its
// second residency is shielded. The VTA entry is consumed — the line is
// back in the cache.
func (p *ccws) OnReserved(req *mem.Request, set int, ln *cache.Line) {
	if _, ok := p.vta.Lookup(set, p.h.Mapper.Tag(req.Addr)); !ok {
		return
	}
	p.lost++
	p.h.Stats.VTAHits++
	p.protected++
	if p.byCycles {
		ln.PL = int(p.h.Now()) + p.lifetime
	} else {
		ln.PL = p.lifetime
	}
}

func (p *ccws) OnEvict(set int, evicted cache.Line) {
	p.vta.Insert(set, evicted.Tag, evicted.InsnID)
}

func (p *ccws) OnBypass(req *mem.Request, set int) {
	// A bypassed access that matches the VTA is still lost locality;
	// peek (don't consume) since the line stays out of the cache.
	if _, ok := p.vta.Peek(set, p.h.Mapper.Tag(req.Addr)); ok {
		p.lost++
		p.h.Stats.VTAHits++
	}
}

func (p *ccws) CheckInvariants() error {
	for s := 0; s < p.h.Tags.NumSets(); s++ {
		protected := 0
		lines := p.h.Tags.Set(s)
		for w := range lines {
			ln := &lines[w]
			switch {
			case p.byCycles:
				if ln.PL < 0 {
					return &InvariantError{
						Component: "TDA",
						Check:     "pl-deadline",
						Detail:    fmt.Sprintf("set %d way %d: PL=%d is not a valid expiry cycle", s, w, ln.PL),
					}
				}
				if uint64(ln.PL) > p.h.Now() {
					protected++
				}
			default:
				if ln.PL < 0 || ln.PL > p.lifetime {
					return &InvariantError{
						Component: "TDA",
						Check:     "pl-range",
						Detail: fmt.Sprintf("set %d way %d: PL=%d outside [0,%d] (CCWSProtectAccesses=%d)",
							s, w, ln.PL, p.lifetime, p.lifetime),
					}
				}
				if ln.PL > 0 {
					protected++
				}
			}
		}
		if protected > p.h.Cfg.L1D.Ways {
			return &InvariantError{
				Component: "TDA",
				Check:     "protected-bound",
				Detail: fmt.Sprintf("set %d: %d protected lines exceed associativity %d",
					s, protected, p.h.Cfg.L1D.Ways),
			}
		}
	}
	return p.vta.CheckGeometry(p.h.Cfg.L1D.Sets, p.h.Cfg.VTAWays)
}

func (p *ccws) RegisterMetrics(reg *metrics.Registry, prefix string) {
	p.vta.RegisterMetrics(reg, prefix+".vta")
	reg.Counter(prefix+".ccws.lost_locality", &p.lost)
	reg.Counter(prefix+".ccws.protected", &p.protected)
}
