package policy

import (
	"fmt"

	"repro/internal/config"
)

// InvariantError reports a violated policy invariant found by a
// self-check (sim.Options.SelfCheck) or an explicit CheckInvariants
// call. These are the structural properties correctness rests on — PL
// counters staying within their field width, protection never exceeding
// the set's associativity, PDPT predictions staying within the PD
// field, the VTA keeping the TDA's geometry — plus the stats
// conservation identity. A violation means the engine (or a future
// modification of it) is broken, not that a workload misbehaved, so it
// is surfaced as a typed error rather than a panic: one bad engine
// build fails its job cleanly instead of tearing down a whole batch.
type InvariantError struct {
	Component string // "TDA", "PDPT", "VTA", "ATA", "predictor", "stats"
	Check     string // short invariant identifier, e.g. "pl-range"
	Detail    string
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("core: invariant %s/%s violated: %s", e.Component, e.Check, e.Detail)
}

// checkNoProtectionTDA verifies that a scheme without protection
// hardware left every line's PL field at zero.
func checkNoProtectionTDA(h *Host, name config.Policy) error {
	maxPD := h.Cfg.MaxPD()
	for s := 0; s < h.Tags.NumSets(); s++ {
		lines := h.Tags.Set(s)
		for w := range lines {
			ln := &lines[w]
			if ln.PL < 0 || ln.PL > maxPD {
				return &InvariantError{
					Component: "TDA",
					Check:     "pl-range",
					Detail: fmt.Sprintf("set %d way %d: PL=%d outside [0,%d] (PDBits=%d)",
						s, w, ln.PL, maxPD, h.Cfg.PDBits),
				}
			}
			if ln.PL > 0 {
				return &InvariantError{
					Component: "TDA",
					Check:     "pl-without-protection",
					Detail: fmt.Sprintf("set %d way %d: PL=%d under policy %s, which has no protection hardware",
						s, w, ln.PL, name),
				}
			}
		}
	}
	return nil
}

// checkProtectedTDA verifies the PD-field bounds of the paper's
// protection schemes: every PL within the field width and no set
// reporting more protected lines than it has ways.
func checkProtectedTDA(h *Host) error {
	maxPD := h.Cfg.MaxPD()
	for s := 0; s < h.Tags.NumSets(); s++ {
		protected := 0
		lines := h.Tags.Set(s)
		for w := range lines {
			ln := &lines[w]
			if ln.PL < 0 || ln.PL > maxPD {
				return &InvariantError{
					Component: "TDA",
					Check:     "pl-range",
					Detail: fmt.Sprintf("set %d way %d: PL=%d outside [0,%d] (PDBits=%d)",
						s, w, ln.PL, maxPD, h.Cfg.PDBits),
				}
			}
			if ln.PL > 0 {
				protected++
			}
		}
		if protected > h.Cfg.L1D.Ways {
			return &InvariantError{
				Component: "TDA",
				Check:     "protected-bound",
				Detail: fmt.Sprintf("set %d: %d protected lines exceed associativity %d",
					s, protected, h.Cfg.L1D.Ways),
			}
		}
	}
	return nil
}

// CheckInvariants verifies the prediction table's bounds: every
// protection distance within [0, maxPD] (the PD field's width, §4.3)
// and hit counters consistent with the running global totals.
func (p *PDPT) CheckInvariants() error {
	var tda, vta uint64
	for i, pd := range p.pd {
		if pd < 0 || pd > p.maxPD {
			return &InvariantError{
				Component: "PDPT",
				Check:     "pd-range",
				Detail:    fmt.Sprintf("entry %d: PD=%d outside [0,%d]", i, pd, p.maxPD),
			}
		}
		tda += p.tdaHits[i]
		vta += p.vtaHits[i]
	}
	if tda != p.globalTDA || vta != p.globalVTA {
		return &InvariantError{
			Component: "PDPT",
			Check:     "hit-counter-sum",
			Detail: fmt.Sprintf("per-entry sums (TDA=%d, VTA=%d) disagree with global counters (TDA=%d, VTA=%d)",
				tda, vta, p.globalTDA, p.globalVTA),
		}
	}
	return nil
}

// CheckGeometry verifies the VTA mirrors the TDA's set structure with
// the configured associativity (footnote 2: same geometry, tags only).
func (v *VTA) CheckGeometry(wantSets, wantWays int) error {
	if len(v.sets) != wantSets {
		return &InvariantError{
			Component: "VTA",
			Check:     "geometry",
			Detail:    fmt.Sprintf("%d sets, want %d", len(v.sets), wantSets),
		}
	}
	for s, set := range v.sets {
		if len(set) != wantWays {
			return &InvariantError{
				Component: "VTA",
				Check:     "geometry",
				Detail:    fmt.Sprintf("set %d has %d ways, want %d", s, len(set), wantWays),
			}
		}
		for w := range set {
			if e := &set[w]; e.valid && e.lastUse > v.clock {
				return &InvariantError{
					Component: "VTA",
					Check:     "lru-clock",
					Detail: fmt.Sprintf("set %d way %d: lastUse %d ahead of clock %d",
						s, w, e.lastUse, v.clock),
				}
			}
		}
	}
	return nil
}
