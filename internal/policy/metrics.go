package policy

import "repro/internal/metrics"

// RegisterMetrics registers the victim tag array's live-entry gauge.
func (v *VTA) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.IntGauge(prefix+".entries", v.Len)
}

// RegisterMetrics registers the prediction table's sampling progress
// and protection-distance level. The hit counters are per-period
// levels (EndSample resets them), so they are gauges, not counters;
// pd.sum/pd.max summarize the current protection distances across all
// table entries — the adaptation signal Figs. 8–9 are about.
func (p *PDPT) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.Counter(prefix+".samples", &p.samples)
	reg.Gauge(prefix+".tda_hits", func() uint64 { return p.globalTDA })
	reg.Gauge(prefix+".vta_hits", func() uint64 { return p.globalVTA })
	reg.Gauge(prefix+".pd.sum", func() uint64 {
		var sum uint64
		for _, d := range p.pd {
			sum += uint64(d)
		}
		return sum
	})
	reg.Gauge(prefix+".pd.max", func() uint64 {
		var m int
		for _, d := range p.pd {
			if d > m {
				m = d
			}
		}
		return uint64(m)
	})
}
