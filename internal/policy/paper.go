package policy

import (
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/metrics"
)

// agePLs decrements every protected line in a queried set by one
// (§4.1.1: "When a set is queried, PL values of all TDA entries
// belonging to this set are decreased by 1").
func agePLs(lines []cache.Line) {
	for w := range lines {
		if lines[w].PL > 0 {
			lines[w].PL--
		}
	}
}

// baseline is stall-and-retry LRU: the unmodified L1D. Every blocked
// access stalls; replacement is plain LRU; no protection state exists.
type baseline struct {
	Base
	h *Host
}

func (p *baseline) OnBlocked(*mem.Request, int, Block) Decision { return Stall }

func (p *baseline) CheckInvariants() error {
	return checkNoProtectionTDA(p.h, config.PolicyBaseline)
}

// stallBypass bypasses the L1D whenever the access would stall —
// whatever the reason — and is otherwise the baseline.
type stallBypass struct {
	Base
	h *Host
}

func (p *stallBypass) OnBlocked(*mem.Request, int, Block) Decision { return Bypass }

func (p *stallBypass) CheckInvariants() error {
	return checkNoProtectionTDA(p.h, config.PolicyStallBypass)
}

// protect implements the paper's two protection schemes over the shared
// VTA + PDPT + sampler hardware: Global-Protection (one PD for every
// instruction, global=true) and DLP (per-instruction PDs). Misses into
// a fully protected set bypass rather than wait (§4.1.1); structural
// and merge-capacity blocks stall like the baseline.
type protect struct {
	Base
	h       *Host
	vta     *VTA
	pdpt    *PDPT
	sampler *Sampler
}

func newProtect(h *Host, global bool) *protect {
	p := &protect{
		h:       h,
		vta:     NewVTA(h.Cfg.L1D.Sets, h.Cfg.VTAWays),
		sampler: NewSampler(h.Cfg.SampleAccesses, h.Cfg.SampleInsnCap),
	}
	if global {
		p.pdpt = NewGlobalPDT(h.Cfg.VTAWays, h.Cfg.MaxPD())
	} else {
		p.pdpt = NewPDPT(h.Cfg.PDPTEntries, h.Cfg.VTAWays, h.Cfg.MaxPD())
	}
	return p
}

// PDPT exposes the prediction table (the PDPTCarrier capability).
func (p *protect) PDPT() *PDPT { return p.pdpt }

func (p *protect) OnAccess(req *mem.Request, set int) {
	if p.sampler.NoteAccess() {
		p.pdpt.EndSample()
	}
	agePLs(p.h.Tags.Set(set))
}

func (p *protect) NoteInstructions(n uint64) {
	if p.sampler.NoteInstructions(n) {
		p.pdpt.EndSample()
	}
}

func (p *protect) OnBlocked(_ *mem.Request, _ int, why Block) Decision {
	// A fully reserved-or-protected set bypasses the redundant miss
	// rather than waiting for protection to expire; resource hazards
	// stall as on the baseline.
	if why == BlockNoVictim {
		return Bypass
	}
	return Stall
}

// VictimFilter restricts victims to lines whose protected life expired.
func (p *protect) VictimFilter() func(*cache.Line) bool {
	return func(l *cache.Line) bool { return l.PL == 0 }
}

func (p *protect) OnHit(req *mem.Request, _ int, ln *cache.Line) {
	// The hit is credited to the instruction that brought in or last hit
	// the line; the line then belongs to the hitting instruction and
	// receives its protection distance (§4.1.1).
	p.pdpt.CreditTDA(ln.InsnID)
	ln.InsnID = req.InsnID
	ln.PL = p.pdpt.PD(req.InsnID)
}

func (p *protect) OnAllocate(req *mem.Request, set int) {
	// The allocating miss refetches the line, so a VTA hit retires the
	// entry while crediting the stored instruction.
	if id, ok := p.vta.Lookup(set, p.h.Mapper.Tag(req.Addr)); ok {
		p.pdpt.CreditVTA(id)
		p.h.Stats.VTAHits++
	}
}

func (p *protect) OnEvict(set int, evicted cache.Line) {
	p.vta.Insert(set, evicted.Tag, evicted.InsnID)
}

func (p *protect) OnBypass(req *mem.Request, set int) {
	// Bypassed misses observe reuse without refetching, so the VTA entry
	// is peeked, not consumed.
	if id, ok := p.vta.Peek(set, p.h.Mapper.Tag(req.Addr)); ok {
		p.pdpt.CreditVTA(id)
		p.h.Stats.VTAHits++
	}
}

func (p *protect) OnFill(req *mem.Request, ln *cache.Line) {
	// The line receives its instruction's protection distance when the
	// fill lands (the access that allocated it "writes the PD value to
	// the PL field", §4.1.1).
	ln.PL = p.pdpt.PD(req.InsnID)
}

func (p *protect) CheckInvariants() error {
	if err := checkProtectedTDA(p.h); err != nil {
		return err
	}
	if err := p.pdpt.CheckInvariants(); err != nil {
		return err
	}
	return p.vta.CheckGeometry(p.h.Cfg.L1D.Sets, p.h.Cfg.VTAWays)
}

func (p *protect) RegisterMetrics(reg *metrics.Registry, prefix string) {
	p.vta.RegisterMetrics(reg, prefix+".vta")
	p.pdpt.RegisterMetrics(reg, prefix+".pdpt")
}
