package policy

// PDPT is the Protection Distance Prediction Table (§4.1.3): one entry
// per memory-instruction ID, each accumulating TDA and VTA hits over the
// current sampling period and holding the instruction's current
// protection distance.
//
// The same structure, restricted to a single shared entry, implements the
// Global-Protection comparator (§5.3): construct it with NewGlobalPDT.
type PDPT struct {
	global  bool // Global-Protection mode: one PD for all instructions
	nasc    int  // VTA associativity, the paper's Nasc
	maxPD   int  // saturation value of the PD field (2^PDBits - 1)
	tdaHits []uint64
	vtaHits []uint64
	pd      []int

	globalTDA uint64
	globalVTA uint64
	samples   uint64 // completed sampling periods, for introspection
}

// NewPDPT builds a per-instruction table with entries slots (the paper
// uses 128), Nasc = nasc and a PD field saturating at maxPD.
func NewPDPT(entries, nasc, maxPD int) *PDPT {
	if entries <= 0 || nasc <= 0 || maxPD <= 0 {
		panic("policy: invalid PDPT parameters")
	}
	return &PDPT{
		nasc:    nasc,
		maxPD:   maxPD,
		tdaHits: make([]uint64, entries),
		vtaHits: make([]uint64, entries),
		pd:      make([]int, entries),
	}
}

// NewGlobalPDT builds the Global-Protection variant: a single PD driven
// only by the global hit counters.
func NewGlobalPDT(nasc, maxPD int) *PDPT {
	p := NewPDPT(1, nasc, maxPD)
	p.global = true
	return p
}

func (p *PDPT) idx(insnID uint8) int {
	if p.global {
		return 0
	}
	return int(insnID) % len(p.pd)
}

// CreditTDA records a tag-and-data-array hit attributed to insnID.
func (p *PDPT) CreditTDA(insnID uint8) {
	p.tdaHits[p.idx(insnID)]++
	p.globalTDA++
}

// CreditVTA records a victim-tag-array hit attributed to insnID.
func (p *PDPT) CreditVTA(insnID uint8) {
	p.vtaHits[p.idx(insnID)]++
	p.globalVTA++
}

// PD returns the current protection distance for insnID.
func (p *PDPT) PD(insnID uint8) int { return p.pd[p.idx(insnID)] }

// Samples returns the number of completed sampling periods.
func (p *PDPT) Samples() uint64 { return p.samples }

// GlobalHits returns the running global TDA and VTA hit counters of the
// current sample, for tests and introspection.
func (p *PDPT) GlobalHits() (tda, vta uint64) { return p.globalTDA, p.globalVTA }

// EntryHits returns insnID's per-entry hit counters for the current
// sample, for tests and introspection.
func (p *PDPT) EntryHits(insnID uint8) (tda, vta uint64) {
	i := p.idx(insnID)
	return p.tdaHits[i], p.vtaHits[i]
}

// stepAdj implements the paper's shift-based step comparison (§4.2): it
// approximates Nasc * floor(HitVTA/HitTDA) by comparing HitVTA against
// 4x, 2x, 1x and 1/2x HitTDA, capping the increment at 4*Nasc. An
// instruction with no VTA hits gets no increment.
func stepAdj(vta, tda uint64, nasc int) int {
	if vta == 0 {
		return 0
	}
	switch {
	case vta >= 4*tda:
		return 4 * nasc
	case vta >= 2*tda:
		return 2 * nasc
	case vta >= tda:
		return nasc
	case 2*vta >= tda:
		return nasc / 2
	default:
		return 0
	}
}

// EndSample closes the current sampling period and recomputes protection
// distances following Figure 9:
//
//   - global VTA hits > global TDA hits: increase each instruction's PD
//     by Nasc * step(HitVTA/HitTDA) (per-PC on the left path);
//   - global VTA hits < 1/2 global TDA hits: decrease every PD by Nasc
//     (globally, right path);
//   - otherwise leave PDs unchanged.
//
// All per-instruction and global hit counters reset afterwards.
func (p *PDPT) EndSample() {
	switch {
	case p.globalVTA > p.globalTDA:
		for i := range p.pd {
			adj := stepAdj(p.vtaHits[i], p.tdaHits[i], p.nasc)
			if p.global {
				// Global-Protection: the single PD follows the global
				// ratio, not a per-instruction one.
				adj = stepAdj(p.globalVTA, p.globalTDA, p.nasc)
			}
			p.pd[i] = min(p.pd[i]+adj, p.maxPD)
		}
	case 2*p.globalVTA < p.globalTDA:
		for i := range p.pd {
			p.pd[i] = max(p.pd[i]-p.nasc, 0)
		}
	}
	for i := range p.tdaHits {
		p.tdaHits[i] = 0
		p.vtaHits[i] = 0
	}
	p.globalTDA = 0
	p.globalVTA = 0
	p.samples++
}

// Sampler counts L1D accesses and SM instructions to decide when a
// sampling period ends (§4.1.4): after accessLimit cache accesses, or —
// so that cache-sufficient kernels with few loads still close samples —
// after insnCap instructions.
type Sampler struct {
	accessLimit uint64
	insnCap     uint64
	accesses    uint64
	insns       uint64
}

// NewSampler builds a sampler with the paper's access limit (200) and an
// instruction cap.
func NewSampler(accessLimit, insnCap int) *Sampler {
	if accessLimit <= 0 || insnCap <= 0 {
		panic("policy: invalid sampler parameters")
	}
	return &Sampler{accessLimit: uint64(accessLimit), insnCap: uint64(insnCap)}
}

// NoteAccess records one cache access and reports whether the sample just
// closed.
func (s *Sampler) NoteAccess() bool {
	s.accesses++
	if s.accesses >= s.accessLimit {
		s.reset()
		return true
	}
	return false
}

// NoteInstructions records n executed instructions and reports whether
// the instruction cap closed the sample.
func (s *Sampler) NoteInstructions(n uint64) bool {
	s.insns += n
	if s.insns >= s.insnCap {
		s.reset()
		return true
	}
	return false
}

func (s *Sampler) reset() {
	s.accesses = 0
	s.insns = 0
}
