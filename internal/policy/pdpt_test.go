package policy

import (
	"testing"
	"testing/quick"
)

func TestNewPDPTPanicsOnBadParams(t *testing.T) {
	for _, c := range [][3]int{{0, 4, 15}, {128, 0, 15}, {128, 4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPDPT(%v) did not panic", c)
				}
			}()
			NewPDPT(c[0], c[1], c[2])
		}()
	}
}

func TestStepAdj(t *testing.T) {
	const nasc = 4
	cases := []struct {
		vta, tda uint64
		want     int
	}{
		{0, 0, 0},   // no VTA evidence: no protection increase
		{0, 100, 0}, //
		{8, 2, 16},  // >= 4x -> 4*Nasc
		{8, 4, 8},   // >= 2x -> 2*Nasc
		{8, 8, 4},   // >= 1x -> Nasc
		{4, 8, 2},   // >= 1/2x -> Nasc/2
		{3, 8, 0},   // < 1/2x -> 0
		{5, 0, 16},  // VTA hits with zero TDA hits: max increment
		{7, 2, 8},   // 3.5x falls in the 2x bucket
	}
	for _, c := range cases {
		if got := stepAdj(c.vta, c.tda, nasc); got != c.want {
			t.Errorf("stepAdj(%d, %d, %d) = %d, want %d", c.vta, c.tda, nasc, got, c.want)
		}
	}
}

// TestPDIncreasePath exercises the left branch of Figure 9: global VTA
// hits exceed global TDA hits, so each instruction's PD grows by its own
// VTA/TDA ratio.
func TestPDIncreasePath(t *testing.T) {
	p := NewPDPT(128, 4, 15)
	// insn 1: strong VTA evidence (8 VTA vs 1 TDA -> 4*Nasc = 16, clamps to 15).
	for i := 0; i < 8; i++ {
		p.CreditVTA(1)
	}
	p.CreditTDA(1)
	// insn 2: balanced (2 VTA vs 2 TDA -> Nasc = 4).
	p.CreditVTA(2)
	p.CreditVTA(2)
	p.CreditTDA(2)
	p.CreditTDA(2)
	// insn 3: TDA only -> no increase.
	p.CreditTDA(3)

	// Global: VTA=10 > TDA=4 -> increase path.
	p.EndSample()
	if got := p.PD(1); got != 15 {
		t.Errorf("PD(1) = %d, want 15 (16 clamped to 4-bit max)", got)
	}
	if got := p.PD(2); got != 4 {
		t.Errorf("PD(2) = %d, want 4", got)
	}
	if got := p.PD(3); got != 0 {
		t.Errorf("PD(3) = %d, want 0", got)
	}
	if p.Samples() != 1 {
		t.Errorf("Samples = %d", p.Samples())
	}
}

// TestPDDecreasePath exercises the right branch: global VTA hits below
// half the TDA hits shrink every PD by Nasc, regardless of per-PC ratios.
func TestPDDecreasePath(t *testing.T) {
	p := NewPDPT(128, 4, 15)
	// Raise PDs first.
	for i := 0; i < 4; i++ {
		p.CreditVTA(5)
	}
	p.EndSample()
	if p.PD(5) != 15 {
		t.Fatalf("setup PD = %d", p.PD(5))
	}
	// Now a sample with many TDA hits and almost no VTA hits.
	for i := 0; i < 10; i++ {
		p.CreditTDA(5)
	}
	p.CreditVTA(5)
	p.EndSample()
	if got := p.PD(5); got != 11 {
		t.Errorf("PD(5) = %d, want 15-4=11", got)
	}
	// Uninvolved instructions also decrease (but clamp at zero).
	if got := p.PD(9); got != 0 {
		t.Errorf("PD(9) = %d, want 0", got)
	}
}

// TestPDHoldPath: between the two thresholds nothing changes.
func TestPDHoldPath(t *testing.T) {
	p := NewPDPT(128, 4, 15)
	p.CreditVTA(7)
	p.EndSample() // PD(7) rises
	before := p.PD(7)
	// TDA=3, VTA=2: not greater, and not less than half -> hold.
	p.CreditTDA(7)
	p.CreditTDA(7)
	p.CreditTDA(7)
	p.CreditVTA(7)
	p.CreditVTA(7)
	p.EndSample()
	if got := p.PD(7); got != before {
		t.Errorf("PD changed on the hold path: %d -> %d", before, got)
	}
}

func TestEndSampleResetsCounters(t *testing.T) {
	p := NewPDPT(128, 4, 15)
	p.CreditTDA(1)
	p.CreditVTA(2)
	p.EndSample()
	tda, vta := p.GlobalHits()
	if tda != 0 || vta != 0 {
		t.Errorf("global hits after EndSample = %d/%d", tda, vta)
	}
	// Per-entry counters must be reset too: a second EndSample with no new
	// credits takes the hold path (0 vs 0) and changes nothing.
	before := p.PD(2)
	p.EndSample()
	if p.PD(2) != before {
		t.Error("stale per-entry counters leaked into the next sample")
	}
}

// TestPDBoundsProperty: no sequence of credits and samples can push any
// PD outside [0, maxPD].
func TestPDBoundsProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		p := NewPDPT(16, 4, 15)
		for _, op := range ops {
			id := op & 0x0f
			switch op % 3 {
			case 0:
				p.CreditTDA(id)
			case 1:
				p.CreditVTA(id)
			case 2:
				p.EndSample()
			}
		}
		p.EndSample()
		for id := 0; id < 16; id++ {
			pd := p.PD(uint8(id))
			if pd < 0 || pd > 15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGlobalPDTSharesOneEntry(t *testing.T) {
	p := NewGlobalPDT(4, 15)
	// Credits to different instruction IDs land in the same entry.
	p.CreditVTA(3)
	p.CreditVTA(99)
	p.CreditTDA(42)
	p.EndSample() // VTA=2 > TDA=1 -> increase by stepAdj(2,1,4)=2*Nasc=8
	for _, id := range []uint8{0, 3, 42, 99, 127} {
		if got := p.PD(id); got != 8 {
			t.Errorf("global PD(%d) = %d, want 8", id, got)
		}
	}
}

func TestGlobalPDTUsesGlobalRatio(t *testing.T) {
	// Even if one instruction has an extreme ratio, the global table must
	// move by the aggregate ratio only.
	p := NewGlobalPDT(4, 15)
	for i := 0; i < 9; i++ {
		p.CreditVTA(1)
	}
	for i := 0; i < 8; i++ {
		p.CreditTDA(2)
	}
	// Global VTA=9 > TDA=8, ratio just above 1x -> +Nasc = 4.
	p.EndSample()
	if got := p.PD(0); got != 4 {
		t.Errorf("global PD = %d, want 4", got)
	}
}

func TestPDPTInsnIDWraps(t *testing.T) {
	// IDs beyond the table size index modulo the entry count rather than
	// panicking.
	p := NewPDPT(8, 4, 15)
	p.CreditVTA(200) // 200 % 8 == 0
	p.EndSample()
	if got := p.PD(0); got == 0 {
		t.Error("credit to wrapped ID did not land")
	}
}

func TestSamplerAccessLimit(t *testing.T) {
	s := NewSampler(3, 1000)
	if s.NoteAccess() || s.NoteAccess() {
		t.Error("sample closed early")
	}
	if !s.NoteAccess() {
		t.Error("sample did not close at the access limit")
	}
	// Counter reset: next period needs 3 accesses again.
	if s.NoteAccess() {
		t.Error("sampler did not reset after closing")
	}
}

func TestSamplerInsnCap(t *testing.T) {
	s := NewSampler(200, 100)
	if s.NoteInstructions(99) {
		t.Error("insn cap fired early")
	}
	if !s.NoteInstructions(1) {
		t.Error("insn cap did not fire at 100")
	}
	// Both clocks reset together.
	if s.NoteInstructions(99) {
		t.Error("insn counter did not reset")
	}
	s2 := NewSampler(2, 100)
	s2.NoteAccess()
	s2.NoteInstructions(100) // closes via cap
	if s2.NoteAccess() {
		t.Error("access counter did not reset when the insn cap closed the sample")
	}
}

func TestNewSamplerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSampler(0, 0) did not panic")
		}
	}()
	NewSampler(0, 0)
}
