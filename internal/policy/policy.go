// Package policy defines the pluggable L1D management-policy interface
// and the registry of compiled-in schemes.
//
// The L1D controller in internal/core owns the mechanism — tag array,
// MSHRs, queues, hit/miss/bypass accounting — and delegates every
// decision to a Policy: whether a blocked access stalls or bypasses,
// which lines are eligible victims, whether a miss is admitted, and what
// protection state rides along on hits, reservations, evictions and
// fills. The four schemes evaluated by the paper (Baseline,
// Stall-Bypass, Global-Protection, DLP) are registry entries like any
// other, so a new scheme is data — one file and one Spec — rather than
// new branches in the cache's hot path.
//
// The paper's protection hardware (VTA, PDPT, sampler) lives here too:
// it is policy state, instantiated only by the schemes that use it, so
// non-protecting policies pay nothing for it.
package policy

import (
	"fmt"
	"strings"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// Host is the controller-owned state a policy may observe and annotate.
// The cache constructs one Host per L1D and passes it to the scheme's
// constructor; policies keep the pointer and never copy the struct.
type Host struct {
	Cfg    *config.Config
	Mapper *addr.Mapper
	Tags   *cache.TagArray
	Stats  *stats.Stats
	Now    func() uint64 // current core cycle
}

// Block says why an access could not be serviced in place.
type Block uint8

const (
	// BlockNoMerge: the line is in flight and its MSHR entry cannot
	// accept another merged request.
	BlockNoMerge Block = iota
	// BlockStructural: no free MSHR entry or miss-queue slot.
	BlockStructural
	// BlockNoVictim: every line in the set is reserved or protected.
	BlockNoVictim
)

// Decision resolves a blocked access.
type Decision uint8

const (
	// Stall rejects the access; the LD/ST unit retries next cycle.
	Stall Decision = iota
	// Bypass sends the access around the cache on the bypass queue.
	Bypass
)

// Policy is the per-L1D decision maker. One instance is built per cache
// (never shared across SMs), so implementations need no locking. All
// methods are on the simulation hot path: implementations must not
// allocate in steady state.
type Policy interface {
	// OnAccess runs once for every accepted (non-stalled) access — hit,
	// serviced miss, merged miss, or bypass — before the outcome-specific
	// hook. Protection schemes advance their sampling clock and age the
	// queried set's protected lines here.
	OnAccess(req *mem.Request, set int)

	// NoteInstructions feeds executed-instruction counts into schemes
	// with an instruction-driven sampling clock (§4.1.4).
	NoteInstructions(n uint64)

	// OnBlocked picks stall-vs-bypass for an access the mechanism cannot
	// service, given the reason.
	OnBlocked(req *mem.Request, set int, why Block) Decision

	// Admit reports whether a serviceable miss should allocate a line;
	// false sends the request down the bypass path. Called after victim
	// selection succeeds, so an admitted request always has resources.
	Admit(req *mem.Request, set int) bool

	// VictimFilter returns the replacement-eligibility predicate, or nil
	// for plain LRU. Called once at construction; the filter must stay
	// valid for the cache's lifetime.
	VictimFilter() func(*cache.Line) bool

	// OnHit runs on a tag hit, before LRU update. The policy may
	// re-attribute and re-protect the line.
	OnHit(req *mem.Request, set int, ln *cache.Line)

	// OnAllocate runs when a miss has been accepted and a victim chosen,
	// before the line is reserved.
	OnAllocate(req *mem.Request, set int)

	// OnEvict runs when reserving the line displaced a valid one.
	OnEvict(set int, evicted cache.Line)

	// OnReserved runs after the line is reserved and attributed to the
	// requesting instruction (insertion-time protection goes here).
	OnReserved(req *mem.Request, set int, ln *cache.Line)

	// OnBypass runs when a request is sent around the cache.
	OnBypass(req *mem.Request, set int)

	// OnFill runs when the fetch returns and the reserved line becomes
	// valid (fill-time protection goes here).
	OnFill(req *mem.Request, ln *cache.Line)

	// CheckInvariants verifies the policy's structural invariants,
	// including any constraints it imposes on the tag array's protection
	// fields. It must never mutate state.
	CheckInvariants() error

	// RegisterMetrics registers the policy's observability surface under
	// prefix (e.g. "sm3.l1d"); counters must be registered by pointer so
	// the hot path is identical with metrics disabled.
	RegisterMetrics(reg *metrics.Registry, prefix string)
}

// PDPTCarrier is the capability sub-interface of schemes built on the
// paper's protection-distance prediction table (Global-Protection and
// DLP). Tools that introspect PD state (pdtrace, tests) type-assert on
// it; other policies don't carry the hardware at all.
type PDPTCarrier interface {
	PDPT() *PDPT
}

// Spec is one registry entry: a compiled-in scheme with its display
// name, CLI aliases, paper membership, provenance and constructor.
type Spec struct {
	Name    config.Policy // display name; also the canonical CLI spelling
	Aliases []string      // extra accepted CLI spellings (lower-case)
	Paper   bool          // one of the four schemes the paper evaluates
	Cite    string        // one-line provenance
	New     func(h *Host) Policy
}

// specs is the registry, in plotting order: the paper's four schemes
// first (the order its figures use), then the extensions.
var specs = []Spec{
	{
		Name:    config.PolicyBaseline,
		Aliases: []string{"base"},
		Paper:   true,
		Cite:    "stall-and-retry LRU, the unmodified Fermi L1D (paper §5.3)",
		New:     func(h *Host) Policy { return &baseline{h: h} },
	},
	{
		Name:    config.PolicyStallBypass,
		Aliases: []string{"sb"},
		Paper:   true,
		Cite:    "bypass-on-stall comparator (paper §5.3)",
		New:     func(h *Host) Policy { return &stallBypass{h: h} },
	},
	{
		Name:    config.PolicyGlobalProtection,
		Aliases: []string{"gp"},
		Paper:   true,
		Cite:    "single global protection distance, after Duong et al. PDP (paper §5.3)",
		New:     func(h *Host) Policy { return newProtect(h, true) },
	},
	{
		Name:  config.PolicyDLP,
		Paper: true,
		Cite:  "per-instruction dynamic line protection, the paper's contribution (§4)",
		New:   func(h *Host) Policy { return newProtect(h, false) },
	},
	{
		Name:    config.PolicyATA,
		Aliases: []string{"ata-cache"},
		Cite:    "aggregated-tag-array admission, after ATA-Cache (arXiv:2302.10638)",
		New:     func(h *Host) Policy { return newATA(h) },
	},
	{
		Name:    config.PolicyCCWS,
		Aliases: []string{"ccws"},
		Cite:    "VTA-driven lost-locality protection, after Rogers et al. CCWS (MICRO 2012)",
		New:     func(h *Host) Policy { return newCCWS(h) },
	},
	{
		Name:    config.PolicyReusePredictor,
		Aliases: []string{"reuse-predictor", "pred"},
		Cite:    "online per-PC dead-block bypass, in the spirit of learned GPU caching (arXiv:2509.20979)",
		New:     func(h *Host) Policy { return newReusePredictor(h) },
	},
}

// builtinSpecs is the count of compiled-in entries; everything past it
// arrived through Register and may be Unregister-ed.
var builtinSpecs = len(specs)

// Specs returns the registry in plotting order. The slice is shared:
// callers must not mutate it.
func Specs() []Spec { return specs }

// Register appends an out-of-tree scheme to the registry, making it
// visible to Lookup, Parse, the CLIs and the engine exactly like a
// compiled-in entry. This is the policyinit seam: an external file (or
// a test building a scratch policy) self-registers from its init
// function. Registration is not synchronized with concurrent readers —
// call it during process init or test setup, before simulations start.
// Names and aliases must not collide with existing spellings.
func Register(sp Spec) error {
	if sp.Name == "" {
		return fmt.Errorf("policy: Register with empty name")
	}
	if sp.New == nil {
		return fmt.Errorf("policy: Register %q with nil constructor", sp.Name)
	}
	taken := func(s string) bool {
		for _, ex := range specs {
			if strings.EqualFold(string(ex.Name), s) {
				return true
			}
			for _, al := range ex.Aliases {
				if strings.EqualFold(al, s) {
					return true
				}
			}
		}
		return false
	}
	if taken(string(sp.Name)) {
		return fmt.Errorf("policy: %q is already registered", sp.Name)
	}
	for _, al := range sp.Aliases {
		if taken(al) {
			return fmt.Errorf("policy: alias %q of %q is already registered", al, sp.Name)
		}
	}
	specs = append(specs, sp)
	return nil
}

// Unregister removes a previously Register-ed scheme by name. It
// refuses to remove compiled-in entries, so a test tearing down its
// scratch policy cannot strip a real one. Returns whether an entry was
// removed.
func Unregister(name config.Policy) bool {
	for i := builtinSpecs; i < len(specs); i++ {
		if specs[i].Name == name {
			specs = append(specs[:i], specs[i+1:]...)
			return true
		}
	}
	return false
}

// All lists every registered policy name, paper schemes first.
func All() []config.Policy {
	out := make([]config.Policy, len(specs))
	for i, sp := range specs {
		out[i] = sp.Name
	}
	return out
}

// Paper lists the four paper schemes in the order the figures plot them.
func Paper() []config.Policy {
	var out []config.Policy
	for _, sp := range specs {
		if sp.Paper {
			out = append(out, sp.Name)
		}
	}
	return out
}

// Lookup finds the registry entry for a policy name.
func Lookup(name config.Policy) (Spec, bool) {
	for _, sp := range specs {
		if sp.Name == name {
			return sp, true
		}
	}
	return Spec{}, false
}

// Parse resolves a CLI spelling — a registered name or alias, case
// insensitively — to the canonical policy name.
func Parse(s string) (config.Policy, error) {
	want := strings.ToLower(strings.TrimSpace(s))
	for _, sp := range specs {
		if strings.ToLower(string(sp.Name)) == want {
			return sp.Name, nil
		}
		for _, al := range sp.Aliases {
			if al == want {
				return sp.Name, nil
			}
		}
	}
	return "", fmt.Errorf("unknown policy %q (want %s)", s, strings.Join(spellings(), "|"))
}

// spellings lists the canonical CLI spellings for error messages and
// flag help.
func spellings() []string {
	out := make([]string, len(specs))
	for i, sp := range specs {
		out[i] = strings.ToLower(string(sp.Name))
	}
	return out
}

// Usage returns the "a|b|c" spelling list for CLI flag help.
func Usage() string { return strings.Join(spellings(), " | ") }

// New builds the named policy over the host, or an error naming the
// valid spellings when the name is not registered.
func New(name config.Policy, h *Host) (Policy, error) {
	sp, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (registered: %s)",
			string(name), strings.Join(spellings(), ", "))
	}
	return sp.New(h), nil
}

// Base provides no-op implementations of every optional hook; schemes
// embed it and override what they need. OnBlocked is deliberately
// absent: every scheme must state its stall-vs-bypass behavior.
type Base struct{}

func (Base) OnAccess(*mem.Request, int)                {}
func (Base) NoteInstructions(uint64)                   {}
func (Base) Admit(*mem.Request, int) bool              { return true }
func (Base) VictimFilter() func(*cache.Line) bool      { return nil }
func (Base) OnHit(*mem.Request, int, *cache.Line)      {}
func (Base) OnAllocate(*mem.Request, int)              {}
func (Base) OnEvict(int, cache.Line)                   {}
func (Base) OnReserved(*mem.Request, int, *cache.Line) {}
func (Base) OnBypass(*mem.Request, int)                {}
func (Base) OnFill(*mem.Request, *cache.Line)          {}
func (Base) RegisterMetrics(*metrics.Registry, string) {}
