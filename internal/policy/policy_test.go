package policy

import (
	"strings"
	"testing"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/stats"
)

// testHost builds a Host over a fresh tag array at the baseline
// geometry, with a mutable clock the test can advance.
func testHost(t *testing.T, now *uint64, mutate func(*config.Config)) *Host {
	t.Helper()
	cfg := config.Baseline()
	if mutate != nil {
		mutate(cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	kind := addr.LinearIndex
	if cfg.L1D.Hashed {
		kind = addr.HashIndex
	}
	m := addr.MustMapper(cfg.L1D.LineSize, cfg.L1D.Sets, kind)
	return &Host{
		Cfg:    cfg,
		Mapper: m,
		Tags:   cache.NewTagArray(m, cfg.L1D.Ways),
		Stats:  &stats.Stats{},
		Now:    func() uint64 { return *now },
	}
}

func TestRegistryShape(t *testing.T) {
	if got := len(All()); got != 7 {
		t.Fatalf("All() has %d policies, want 7", got)
	}
	wantPaper := []config.Policy{
		config.PolicyBaseline, config.PolicyStallBypass,
		config.PolicyGlobalProtection, config.PolicyDLP,
	}
	paper := Paper()
	if len(paper) != len(wantPaper) {
		t.Fatalf("Paper() = %v, want %v", paper, wantPaper)
	}
	for i, p := range wantPaper {
		if paper[i] != p {
			t.Errorf("Paper()[%d] = %v, want %v", i, paper[i], p)
		}
	}
	for _, sp := range Specs() {
		if sp.Cite == "" {
			t.Errorf("%v: empty citation", sp.Name)
		}
		if sp.New == nil {
			t.Errorf("%v: nil constructor", sp.Name)
		}
		if _, ok := Lookup(sp.Name); !ok {
			t.Errorf("Lookup(%v) failed for a registered policy", sp.Name)
		}
	}
	for _, p := range All() {
		if !strings.Contains(Usage(), strings.ToLower(string(p))) {
			t.Errorf("Usage() %q misses %v", Usage(), p)
		}
	}
}

func TestParseSpellings(t *testing.T) {
	cases := map[string]config.Policy{
		"baseline":       config.PolicyBaseline,
		"base":           config.PolicyBaseline,
		"STALL-BYPASS":   config.PolicyStallBypass,
		"sb":             config.PolicyStallBypass,
		"gp":             config.PolicyGlobalProtection,
		"dlp":            config.PolicyDLP,
		" DLP ":          config.PolicyDLP,
		"ata":            config.PolicyATA,
		"ata-cache":      config.PolicyATA,
		"ccws-lite":      config.PolicyCCWS,
		"ccws":           config.PolicyCCWS,
		"ReusePredictor": config.PolicyReusePredictor,
		"pred":           config.PolicyReusePredictor,
	}
	for in, want := range cases {
		got, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("Parse(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := Parse("mru"); err == nil {
		t.Error("Parse accepted an unregistered policy")
	}
	if _, err := New("nope", nil); err == nil {
		t.Error("New accepted an unregistered policy")
	}
}

// TestNewBuildsEveryPolicy constructs each registered scheme over a live
// host and runs its invariant check on the pristine state.
func TestNewBuildsEveryPolicy(t *testing.T) {
	now := uint64(0)
	for _, name := range All() {
		h := testHost(t, &now, nil)
		p, err := New(name, h)
		if err != nil {
			t.Fatalf("New(%v): %v", name, err)
		}
		if err := p.CheckInvariants(); err != nil {
			t.Errorf("%v: pristine invariants: %v", name, err)
		}
	}
}

func TestATAAdmission(t *testing.T) {
	now := uint64(0)
	h := testHost(t, &now, nil)
	p := newATA(h)
	req := &mem.Request{Addr: 0x4000, InsnID: 3}
	set := h.Mapper.Set(req.Addr)

	if p.Admit(req, set) {
		t.Fatal("first touch was admitted; want bypass")
	}
	if p.firstTouch != 1 || p.admits != 0 {
		t.Fatalf("after first touch: firstTouch=%d admits=%d", p.firstTouch, p.admits)
	}
	if !p.Admit(req, set) {
		t.Fatal("second touch was bypassed; want admit")
	}
	if p.admits != 1 {
		t.Fatalf("after second touch: admits=%d, want 1", p.admits)
	}

	// A different line in the same set starts over. The index is
	// hashed, so scan for a second address that lands in the set.
	other := &mem.Request{InsnID: 3}
	for a := req.Addr + addr.Addr(h.Cfg.L1D.LineSize); other.Addr == 0; a += addr.Addr(h.Cfg.L1D.LineSize) {
		if h.Mapper.Set(a) == set && h.Mapper.Tag(a) != h.Mapper.Tag(req.Addr) {
			other.Addr = a
		}
	}
	if p.Admit(other, set) {
		t.Fatal("unseen tag was admitted")
	}

	// Every blocked access bypasses, whatever the reason.
	for _, why := range []Block{BlockNoMerge, BlockStructural, BlockNoVictim} {
		if p.OnBlocked(req, set, why) != Bypass {
			t.Errorf("OnBlocked(%v) != Bypass", why)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCCWSAccessesMode(t *testing.T) {
	now := uint64(0)
	h := testHost(t, &now, nil)
	p := newCCWS(h)
	req := &mem.Request{Addr: 0x8000, InsnID: 5}
	set := h.Mapper.Set(req.Addr)
	tag := h.Mapper.Tag(req.Addr)
	ln := &h.Tags.Set(set)[0]

	// Without VTA evidence, insertion grants nothing.
	p.OnReserved(req, set, ln)
	if ln.PL != 0 || p.protected != 0 {
		t.Fatalf("unevicted line protected: PL=%d", ln.PL)
	}

	// Evict the line, refetch it: lost locality, protection granted.
	p.OnEvict(set, cache.Line{Tag: tag, InsnID: 5, Valid: true})
	p.OnReserved(req, set, ln)
	if ln.PL != h.Cfg.CCWSProtectAccesses {
		t.Fatalf("refetched line PL=%d, want %d", ln.PL, h.Cfg.CCWSProtectAccesses)
	}
	if p.lost != 1 || p.protected != 1 || h.Stats.VTAHits != 1 {
		t.Fatalf("lost=%d protected=%d vtaHits=%d, want 1/1/1", p.lost, p.protected, h.Stats.VTAHits)
	}

	// The VTA entry was consumed: a second refetch gets no protection.
	probe := &cache.Line{}
	p.OnReserved(req, set, probe)
	if probe.PL != 0 {
		t.Fatal("consumed VTA entry granted protection twice")
	}

	// The filter shields the line until OnAccess ages PL to zero.
	filter := p.VictimFilter()
	if filter(ln) {
		t.Fatal("protected line is victim-eligible")
	}
	for i := 0; i < h.Cfg.CCWSProtectAccesses; i++ {
		p.OnAccess(req, set)
	}
	if !filter(ln) {
		t.Fatalf("line still protected after %d set queries: PL=%d",
			h.Cfg.CCWSProtectAccesses, ln.PL)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCCWSCyclesMode(t *testing.T) {
	now := uint64(100)
	h := testHost(t, &now, func(cfg *config.Config) { cfg.CCWSByCycles = true })
	p := newCCWS(h)
	req := &mem.Request{Addr: 0x8000, InsnID: 5}
	set := h.Mapper.Set(req.Addr)
	tag := h.Mapper.Tag(req.Addr)
	ln := &h.Tags.Set(set)[0]

	p.OnEvict(set, cache.Line{Tag: tag, InsnID: 5, Valid: true})
	p.OnReserved(req, set, ln)
	want := int(now) + h.Cfg.CCWSProtectCycles
	if ln.PL != want {
		t.Fatalf("cycles-mode PL=%d, want expiry cycle %d", ln.PL, want)
	}

	// The deadline holds against the clock, not against set queries.
	filter := p.VictimFilter()
	for i := 0; i < 10*h.Cfg.CCWSProtectCycles; i++ {
		p.OnAccess(req, set)
	}
	if filter(ln) {
		t.Fatal("cycles-mode protection aged by accesses")
	}
	now = uint64(want)
	if !filter(ln) {
		t.Fatalf("line still protected at its expiry cycle %d", want)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestReusePredictorDeadAndResurrect(t *testing.T) {
	now := uint64(0)
	h := testHost(t, &now, func(cfg *config.Config) { cfg.PredictorDeadPeriods = 2 })
	p := newReusePredictor(h)
	req := &mem.Request{Addr: 0xC000, InsnID: 7}
	set := h.Mapper.Set(req.Addr)
	tag := h.Mapper.Tag(req.Addr)

	// Two sampling periods of allocations with zero reuse: dead.
	for period := 0; period < 2; period++ {
		p.OnAllocate(req, set)
		p.endPeriod()
	}
	e := &p.table[p.idx(req.InsnID)]
	if !e.dead {
		t.Fatalf("entry not dead after 2 reuse-free periods: %+v", *e)
	}
	if p.flips != 1 {
		t.Fatalf("flips=%d, want 1", p.flips)
	}
	if p.Admit(req, set) {
		t.Fatal("dead instruction's miss was admitted")
	}
	if p.bypassPredictions != 1 {
		t.Fatalf("bypassPredictions=%d, want 1", p.bypassPredictions)
	}

	// The bypass trains the VTA with the suppressed tag...
	p.OnBypass(req, set)
	if _, ok := p.vta.Peek(set, tag); !ok {
		t.Fatal("bypassed tag missing from the VTA")
	}
	// ...but OnBypass itself already finds that tag's own evidence is
	// absent the first time, so the entry stays dead; a later allocation
	// of the same line hits the VTA and resurrects the instruction.
	if !e.dead {
		t.Fatal("entry resurrected without reuse evidence")
	}
	p.OnAllocate(req, set)
	if e.dead {
		t.Fatal("VTA-evidenced allocation did not resurrect the entry")
	}
	if p.mispredicts != 1 {
		t.Fatalf("mispredicts=%d, want 1", p.mispredicts)
	}
	if e.streak != 0 {
		t.Fatalf("resurrected entry keeps streak %d", e.streak)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}

	// TDA reuse inside a period also keeps an instruction alive.
	alive := &mem.Request{Addr: 0xD000, InsnID: 9}
	ln := &cache.Line{InsnID: 9}
	for period := 0; period < 4; period++ {
		p.OnAllocate(alive, h.Mapper.Set(alive.Addr))
		p.OnHit(alive, h.Mapper.Set(alive.Addr), ln)
		p.endPeriod()
	}
	if p.table[p.idx(9)].dead {
		t.Fatal("instruction with steady TDA reuse was predicted dead")
	}
}

// TestRegisterUnregister exercises the out-of-tree registration seam:
// a registered scratch scheme is visible through every lookup path, a
// name or alias collision is rejected, and Unregister removes scratch
// entries but never compiled-in ones.
func TestRegisterUnregister(t *testing.T) {
	scratch := Spec{
		Name:    config.Policy("Scratch-Test"),
		Aliases: []string{"scratch"},
		Cite:    "test-only",
		New:     func(h *Host) Policy { return &baseline{h: h} },
	}
	if err := Register(scratch); err != nil {
		t.Fatal(err)
	}
	defer Unregister(scratch.Name)

	if _, ok := Lookup(scratch.Name); !ok {
		t.Error("registered policy not found by Lookup")
	}
	if got, err := Parse("scratch"); err != nil || got != scratch.Name {
		t.Errorf("Parse(alias) = %q, %v", got, err)
	}
	found := false
	for _, name := range All() {
		if name == scratch.Name {
			found = true
		}
	}
	if !found {
		t.Error("registered policy missing from All()")
	}
	for _, name := range Paper() {
		if name == scratch.Name {
			t.Error("scratch policy leaked into Paper()")
		}
	}

	if err := Register(scratch); err == nil {
		t.Error("duplicate Register not rejected")
	}
	if err := Register(Spec{Name: "Other", Aliases: []string{"scratch"},
		New: scratch.New}); err == nil {
		t.Error("alias collision not rejected")
	}
	if err := Register(Spec{Name: "NoCtor"}); err == nil {
		t.Error("nil constructor not rejected")
	}

	if !Unregister(scratch.Name) {
		t.Error("Unregister did not find the scratch policy")
	}
	if _, ok := Lookup(scratch.Name); ok {
		t.Error("policy still visible after Unregister")
	}
	if Unregister(config.PolicyDLP) {
		t.Error("Unregister removed a compiled-in policy")
	}
	if _, ok := Lookup(config.PolicyDLP); !ok {
		t.Error("DLP vanished")
	}
}
