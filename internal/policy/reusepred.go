package policy

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/metrics"
)

// reusePred is an online per-PC reuse predictor in the spirit of the
// ML-based GPU caching work (arXiv:2509.20979), built entirely from the
// signals the paper's hardware already collects: per-instruction TDA
// hits (reuse while resident) and VTA hits (reuse after eviction). A
// table indexed like the PDPT accumulates both per sampling period; an
// instruction whose lines show no reuse for PredictorDeadPeriods
// consecutive periods is predicted dead and its misses bypass the
// cache. Bypassed tags are still inserted into the VTA, so a
// mispredicted instruction's reuse surfaces as VTA evidence and
// resurrects it immediately — the misprediction feedback loop.
type reusePred struct {
	Base
	h       *Host
	vta     *VTA
	sampler *Sampler
	table   []predEntry

	deadPeriods int

	bypassPredictions uint64 // misses bypassed on a dead prediction
	flips             uint64 // alive<->dead transitions
	mispredicts       uint64 // dead entries resurrected by observed reuse
}

// predEntry accumulates one instruction's activity and reuse evidence
// for the current sampling period, plus its prediction state.
type predEntry struct {
	allocs   uint64 // lines allocated this period
	bypasses uint64 // misses bypassed this period
	tdaHits  uint64 // reuse observed while resident
	vtaHits  uint64 // reuse observed after eviction/bypass
	streak   int    // consecutive reuse-free periods with activity
	dead     bool   // predicted dead: bypass this instruction's misses
}

func newReusePredictor(h *Host) *reusePred {
	return &reusePred{
		h:           h,
		vta:         NewVTA(h.Cfg.L1D.Sets, h.Cfg.VTAWays),
		sampler:     NewSampler(h.Cfg.SampleAccesses, h.Cfg.SampleInsnCap),
		table:       make([]predEntry, h.Cfg.PDPTEntries),
		deadPeriods: h.Cfg.PredictorDeadPeriods,
	}
}

func (p *reusePred) idx(insnID uint8) int { return int(insnID) % len(p.table) }

func (p *reusePred) OnAccess(*mem.Request, int) {
	if p.sampler.NoteAccess() {
		p.endPeriod()
	}
}

func (p *reusePred) NoteInstructions(n uint64) {
	if p.sampler.NoteInstructions(n) {
		p.endPeriod()
	}
}

// endPeriod retrains the table: reuse clears the dead streak (and
// resurrects), a period of activity without reuse lengthens it, and a
// streak reaching deadPeriods flips the instruction to dead.
func (p *reusePred) endPeriod() {
	for i := range p.table {
		e := &p.table[i]
		switch {
		case e.tdaHits+e.vtaHits > 0:
			e.streak = 0
			if e.dead {
				e.dead = false
				p.flips++
			}
		case e.allocs+e.bypasses > 0:
			e.streak++
			if !e.dead && e.streak >= p.deadPeriods {
				e.dead = true
				p.flips++
			}
		}
		e.allocs, e.bypasses, e.tdaHits, e.vtaHits = 0, 0, 0, 0
	}
}

func (p *reusePred) OnBlocked(_ *mem.Request, _ int, why Block) Decision {
	if why == BlockNoVictim {
		return Bypass
	}
	return Stall
}

// Admit bypasses misses of instructions predicted dead.
func (p *reusePred) Admit(req *mem.Request, _ int) bool {
	if p.table[p.idx(req.InsnID)].dead {
		p.bypassPredictions++
		return false
	}
	return true
}

func (p *reusePred) OnHit(req *mem.Request, _ int, ln *cache.Line) {
	// Reuse is credited to the instruction that owned the line, then
	// ownership transfers — the same attribution chain DLP uses.
	p.table[p.idx(ln.InsnID)].tdaHits++
	ln.InsnID = req.InsnID
}

func (p *reusePred) OnAllocate(req *mem.Request, set int) {
	p.table[p.idx(req.InsnID)].allocs++
	if id, ok := p.vta.Lookup(set, p.h.Mapper.Tag(req.Addr)); ok {
		p.h.Stats.VTAHits++
		p.creditVTA(id)
	}
}

// creditVTA records post-eviction reuse for owner and resurrects it if
// it was predicted dead — the line was live after all.
func (p *reusePred) creditVTA(owner uint8) {
	e := &p.table[p.idx(owner)]
	e.vtaHits++
	if e.dead {
		e.dead = false
		e.streak = 0
		p.flips++
		p.mispredicts++
	}
}

func (p *reusePred) OnEvict(set int, evicted cache.Line) {
	p.vta.Insert(set, evicted.Tag, evicted.InsnID)
}

func (p *reusePred) OnBypass(req *mem.Request, set int) {
	tag := p.h.Mapper.Tag(req.Addr)
	p.table[p.idx(req.InsnID)].bypasses++
	if id, ok := p.vta.Peek(set, tag); ok {
		p.h.Stats.VTAHits++
		p.creditVTA(id)
	}
	// Track the bypassed tag so future references to it count as reuse
	// evidence — without this, a dead prediction could never be refuted
	// by the lines it suppresses.
	p.vta.Insert(set, tag, req.InsnID)
}

func (p *reusePred) CheckInvariants() error {
	if err := checkNoProtectionTDA(p.h, config.PolicyReusePredictor); err != nil {
		return err
	}
	for i := range p.table {
		e := &p.table[i]
		if e.streak < 0 {
			return &InvariantError{
				Component: "predictor",
				Check:     "streak-range",
				Detail:    fmt.Sprintf("entry %d: negative dead streak %d", i, e.streak),
			}
		}
		if e.dead && e.streak < p.deadPeriods {
			return &InvariantError{
				Component: "predictor",
				Check:     "dead-streak",
				Detail: fmt.Sprintf("entry %d: dead with streak %d < PredictorDeadPeriods %d",
					i, e.streak, p.deadPeriods),
			}
		}
	}
	return p.vta.CheckGeometry(p.h.Cfg.L1D.Sets, p.h.Cfg.VTAWays)
}

func (p *reusePred) RegisterMetrics(reg *metrics.Registry, prefix string) {
	p.vta.RegisterMetrics(reg, prefix+".vta")
	reg.Counter(prefix+".pred.bypass_predictions", &p.bypassPredictions)
	reg.Counter(prefix+".pred.flips", &p.flips)
	reg.Counter(prefix+".pred.mispredicts", &p.mispredicts)
	reg.IntGauge(prefix+".pred.dead", func() int {
		n := 0
		for i := range p.table {
			if p.table[i].dead {
				n++
			}
		}
		return n
	})
}
