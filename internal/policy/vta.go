package policy

import (
	"repro/internal/addr"
)

// vtaEntry is one victim tag: an address tag plus the instruction ID of
// the load that brought in or last hit the line before it was evicted
// (§4.1.2).
type vtaEntry struct {
	valid   bool
	tag     uint64
	insnID  uint8
	lastUse uint64
}

// VTA is the victim tag array: same set structure as the TDA, holding
// only tags of recently evicted lines, replaced LRU.
type VTA struct {
	sets  [][]vtaEntry
	clock uint64
}

// NewVTA builds a VTA with the given set count and associativity.
func NewVTA(numSets, ways int) *VTA {
	sets := make([][]vtaEntry, numSets)
	backing := make([]vtaEntry, numSets*ways)
	for i := range sets {
		sets[i], backing = backing[:ways:ways], backing[ways:]
	}
	return &VTA{sets: sets}
}

// Insert records an evicted line's tag and instruction ID in set. An
// existing entry with the same tag is refreshed instead of duplicated.
func (v *VTA) Insert(set int, tag uint64, insnID uint8) {
	v.clock++
	entries := v.sets[set]
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range entries {
		e := &entries[i]
		if e.valid && e.tag == tag {
			e.insnID = insnID
			e.lastUse = v.clock
			return
		}
		if !e.valid {
			victim = i
			oldest = 0
			continue
		}
		if e.lastUse < oldest {
			victim = i
			oldest = e.lastUse
		}
	}
	entries[victim] = vtaEntry{valid: true, tag: tag, insnID: insnID, lastUse: v.clock}
}

// Lookup searches set for tag. On a hit it removes the entry (the line is
// about to be refetched into the TDA) and returns the instruction ID the
// hit is credited to.
func (v *VTA) Lookup(set int, tag uint64) (insnID uint8, hit bool) {
	entries := v.sets[set]
	for i := range entries {
		e := &entries[i]
		if e.valid && e.tag == tag {
			id := e.insnID
			*e = vtaEntry{}
			return id, true
		}
	}
	return 0, false
}

// Peek searches set for tag without consuming the entry, used when a
// bypassed access observes reuse but the line is not refetched.
func (v *VTA) Peek(set int, tag uint64) (insnID uint8, hit bool) {
	for i := range v.sets[set] {
		e := &v.sets[set][i]
		if e.valid && e.tag == tag {
			return e.insnID, true
		}
	}
	return 0, false
}

// Len returns the number of valid entries, for tests.
func (v *VTA) Len() int {
	n := 0
	for _, set := range v.sets {
		for _, e := range set {
			if e.valid {
				n++
			}
		}
	}
	return n
}

// SetOf is a convenience passthrough so callers with only a mapper can
// address the VTA consistently with the TDA.
func SetOf(m *addr.Mapper, a addr.Addr) int { return m.Set(a) }
