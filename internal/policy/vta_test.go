package policy

import "testing"

func TestVTAInsertLookup(t *testing.T) {
	v := NewVTA(4, 2)
	v.Insert(1, 0xabc, 7)
	if v.Len() != 1 {
		t.Fatalf("Len = %d", v.Len())
	}
	id, hit := v.Lookup(1, 0xabc)
	if !hit || id != 7 {
		t.Errorf("Lookup = (%d, %v), want (7, true)", id, hit)
	}
	// Lookup consumes the entry.
	if _, hit := v.Lookup(1, 0xabc); hit {
		t.Error("entry survived Lookup")
	}
	if v.Len() != 0 {
		t.Errorf("Len after consuming lookup = %d", v.Len())
	}
}

func TestVTAPeekDoesNotConsume(t *testing.T) {
	v := NewVTA(4, 2)
	v.Insert(2, 0x123, 9)
	for i := 0; i < 3; i++ {
		id, hit := v.Peek(2, 0x123)
		if !hit || id != 9 {
			t.Fatalf("Peek #%d = (%d, %v)", i, id, hit)
		}
	}
	if v.Len() != 1 {
		t.Errorf("Peek consumed the entry")
	}
}

func TestVTAMissOnWrongSetOrTag(t *testing.T) {
	v := NewVTA(4, 2)
	v.Insert(0, 0x1, 1)
	if _, hit := v.Lookup(1, 0x1); hit {
		t.Error("hit in the wrong set")
	}
	if _, hit := v.Lookup(0, 0x2); hit {
		t.Error("hit on the wrong tag")
	}
}

func TestVTALRUReplacement(t *testing.T) {
	v := NewVTA(1, 2)
	v.Insert(0, 0xa, 1)
	v.Insert(0, 0xb, 2)
	v.Insert(0, 0xc, 3) // evicts 0xa (LRU)
	if _, hit := v.Peek(0, 0xa); hit {
		t.Error("LRU entry 0xa survived")
	}
	for _, tag := range []uint64{0xb, 0xc} {
		if _, hit := v.Peek(0, tag); !hit {
			t.Errorf("entry %#x missing", tag)
		}
	}
}

func TestVTAInsertRefreshesDuplicate(t *testing.T) {
	v := NewVTA(1, 2)
	v.Insert(0, 0xa, 1)
	v.Insert(0, 0xb, 2)
	// Re-inserting 0xa updates its insn ID and recency instead of
	// duplicating; 0xb becomes LRU.
	v.Insert(0, 0xa, 9)
	if v.Len() != 2 {
		t.Fatalf("Len = %d after duplicate insert", v.Len())
	}
	id, hit := v.Peek(0, 0xa)
	if !hit || id != 9 {
		t.Errorf("refreshed entry = (%d, %v)", id, hit)
	}
	v.Insert(0, 0xc, 3)
	if _, hit := v.Peek(0, 0xb); hit {
		t.Error("0xb should have been the LRU victim after 0xa was refreshed")
	}
}

func TestVTAInsertPrefersInvalidWay(t *testing.T) {
	v := NewVTA(1, 3)
	v.Insert(0, 0xa, 1)
	v.Lookup(0, 0xa) // consume, leaving a hole
	v.Insert(0, 0xb, 2)
	v.Insert(0, 0xc, 3)
	if v.Len() != 2 {
		t.Errorf("Len = %d, want 2 (holes reused)", v.Len())
	}
}
