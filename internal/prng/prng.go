// Package prng provides the deterministic pseudo-random number generator
// used by the synthetic workload generators. The simulator must be fully
// reproducible — identical seeds produce identical traces, stats, and
// figures — so math/rand global state and time-based seeding are banned.
package prng

// Source is a SplitMix64 generator. The zero value is usable but all
// callers should seed it explicitly for clarity.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next value in the sequence.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
