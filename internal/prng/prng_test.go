package prng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 collisions between different seeds", same)
	}
}

func TestIntnRange(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n)%100 + 1
		s := New(seed)
		v := s.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestUniformityRough(t *testing.T) {
	s := New(99)
	buckets := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[s.Intn(10)]++
	}
	for i, c := range buckets {
		if c < n/10-n/100 || c > n/10+n/100 {
			t.Errorf("bucket %d count %d far from uniform %d", i, c, n/10)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n) % 64
		p := New(seed).Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
