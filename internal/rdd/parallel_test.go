package rdd

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/prng"
	"repro/internal/trace"
)

// manyBlockKernel builds a kernel wide enough to spread across every SM
// with a mix of strided and scattered loads plus stores, so the shard
// boundaries of the parallel replay actually carry different work.
func manyBlockKernel(seed uint64, blocks, instrsPerWarp int) *trace.Kernel {
	rng := prng.New(seed)
	k := &trace.Kernel{Name: "rdd-parallel"}
	for b := 0; b < blocks; b++ {
		blk := &trace.Block{}
		for w := 0; w < 3; w++ {
			wt := &trace.WarpTrace{}
			for i := 0; i < instrsPerWarp; i++ {
				pc := uint32(rng.Intn(10))
				lanes := 1 + rng.Intn(32)
				addrs := make([]addr.Addr, lanes)
				for l := range addrs {
					addrs[l] = addr.Addr(rng.Intn(1 << 16))
				}
				if rng.Intn(4) == 0 {
					wt.Instrs = append(wt.Instrs, trace.NewStore(pc, addrs))
				} else {
					wt.Instrs = append(wt.Instrs, trace.NewLoad(pc, addrs))
				}
			}
			blk.Warps = append(blk.Warps, wt)
		}
		k.Blocks = append(k.Blocks, blk)
	}
	return k
}

// TestProfileKernelCoresDifferential pins the parallel profiler to the
// serial one: identical Global and PerPC histograms and counters at
// every core count, including counts that don't divide the SMs evenly.
func TestProfileKernelCoresDifferential(t *testing.T) {
	k := manyBlockKernel(3, 24, 20)
	geom := config.Baseline().L1D
	want := ProfileKernel(k, 16, geom)
	for _, cores := range []int{2, 3, 8, 16, 64} {
		got := ProfileKernelCores(k, 16, geom, cores)
		if got.Accesses != want.Accesses || got.Reuses != want.Reuses {
			t.Errorf("cores=%d: accesses/reuses %d/%d, want %d/%d",
				cores, got.Accesses, got.Reuses, want.Accesses, want.Reuses)
		}
		if got.Global.Total() != want.Global.Total() {
			t.Errorf("cores=%d: global total %d, want %d", cores, got.Global.Total(), want.Global.Total())
		}
		for _, v := range want.Global.Keys() {
			if got.Global.Count(v) != want.Global.Count(v) {
				t.Errorf("cores=%d: global[%d] = %d, want %d", cores, v, got.Global.Count(v), want.Global.Count(v))
			}
		}
		if len(got.PerPC) != len(want.PerPC) {
			t.Errorf("cores=%d: %d PCs, want %d", cores, len(got.PerPC), len(want.PerPC))
		}
		for pc, wh := range want.PerPC {
			gh, ok := got.PerPC[pc]
			if !ok {
				t.Errorf("cores=%d: PC %d missing", cores, pc)
				continue
			}
			if gh.Total() != wh.Total() {
				t.Errorf("cores=%d: PC %d total %d, want %d", cores, pc, gh.Total(), wh.Total())
			}
		}
	}
}

// TestReuseMissRateCoresDifferential does the same for the Fig. 4 LRU
// replay across the three paper geometries.
func TestReuseMissRateCoresDifferential(t *testing.T) {
	k := manyBlockKernel(7, 24, 20)
	for _, geom := range []config.CacheGeom{
		config.Baseline().L1D, config.L1D32KB().L1D, config.L1D64KB().L1D,
	} {
		want := ReuseMissRate(k, 16, geom)
		for _, cores := range []int{2, 5, 16} {
			if got := ReuseMissRateCores(k, 16, geom, cores); got != want {
				t.Errorf("geom %+v cores=%d: %v, want %v", geom, cores, got, want)
			}
		}
	}
}

// TestReplayAllocsStreamIndependent pins the satellite's allocation
// cut: the replay's allocations are proportional to the cache state it
// builds (SMs × sets, distinct lines), not to the length of the memory
// stream. Replaying the same working set with 8× the accesses must not
// allocate more — before the scratch-buffer reuse, every instruction
// allocated its coalesced-line slice and every block its warp cursors.
func TestReplayAllocsStreamIndependent(t *testing.T) {
	build := func(touches int) *trace.Kernel {
		k := &trace.Kernel{Name: "alloc"}
		for b := 0; b < 16; b++ {
			blk := &trace.Block{}
			wt := &trace.WarpTrace{}
			for tch := 0; tch < touches; tch++ {
				for line := 0; line < 8; line++ {
					wt.Instrs = append(wt.Instrs,
						trace.NewLoad(uint32(line), []addr.Addr{addr.Addr((b*8 + line) * 128)}))
				}
			}
			blk.Warps = append(blk.Warps, wt)
			k.Blocks = append(k.Blocks, blk)
		}
		k.PrecomputeCoalesced(128)
		return k
	}
	short, long := build(2), build(16)
	geom := config.Baseline().L1D
	measure := func(k *trace.Kernel) float64 {
		return testing.AllocsPerRun(10, func() {
			ProfileKernel(k, 16, geom)
			ReuseMissRate(k, 16, geom)
		})
	}
	a, b := measure(short), measure(long)
	// Identical working sets, so only map-internals jitter is tolerated.
	if b > a*1.1 {
		t.Errorf("8x the accesses allocates %.0f vs %.0f: replay allocations scale with stream length", b, a)
	}
}
