// Package rdd implements the paper's reuse-distance analysis (§3): a RD
// is the number of accesses to a cache set between two accesses to the
// same cache line within that set, counting the re-reference itself
// (Figure 2: the sequence A0, A1, A2, A0 gives A0 a RD of 3). The
// profiler replays a kernel's memory stream in the same block/warp
// interleaving the simulator uses and produces program-level (Fig. 3) and
// per-instruction (Fig. 7) RD distributions, plus the associativity
// sensitivity study of Fig. 4 via an LRU cache replay.
package rdd

import (
	"math"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Buckets are the paper's four RD ranges (1–4, 5–8, 9–64, >64).
var Buckets = [][2]int{{1, 4}, {5, 8}, {9, 64}, {65, math.MaxInt}}

// BucketLabels name the ranges as in Figure 3.
var BucketLabels = []string{"RD 1~4", "RD 5~8", "RD 9~64", "RD >65"}

// Profile is the result of replaying one kernel.
type Profile struct {
	Global   *stats.Histogram            // all reuse distances
	PerPC    map[uint32]*stats.Histogram // RDs keyed by the re-referencing PC
	Accesses uint64                      // line accesses replayed
	Reuses   uint64                      // non-compulsory accesses
}

// GlobalFractions returns the Fig. 3 bucket fractions.
func (p *Profile) GlobalFractions() []float64 { return p.Global.Fractions(Buckets) }

// PCFractions returns the Fig. 7 bucket fractions for one instruction.
func (p *Profile) PCFractions(pc uint32) []float64 {
	h, ok := p.PerPC[pc]
	if !ok {
		return make([]float64, len(Buckets))
	}
	return h.Fractions(Buckets)
}

// PCs returns the profiled instruction PCs in ascending order.
func (p *Profile) PCs() []uint32 {
	out := make([]uint32, 0, len(p.PerPC))
	for pc := range p.PerPC {
		out = append(out, pc)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// tracker measures RDs for one cache (one SM's L1D view).
type tracker struct {
	mapper     *addr.Mapper
	setCounter []uint64
	lastTouch  []map[uint64]uint64 // per set: tag -> counter at last access
	prof       *Profile
}

func newTracker(geom config.CacheGeom, prof *Profile) *tracker {
	kind := addr.LinearIndex
	if geom.Hashed {
		kind = addr.HashIndex
	}
	m := addr.MustMapper(geom.LineSize, geom.Sets, kind)
	t := &tracker{
		mapper:     m,
		setCounter: make([]uint64, geom.Sets),
		lastTouch:  make([]map[uint64]uint64, geom.Sets),
		prof:       prof,
	}
	for i := range t.lastTouch {
		t.lastTouch[i] = make(map[uint64]uint64)
	}
	return t
}

// access replays one line access issued by instruction pc.
func (t *tracker) access(a addr.Addr, pc uint32) {
	set := t.mapper.Set(a)
	tag := t.mapper.Tag(a)
	t.setCounter[set]++
	now := t.setCounter[set]
	t.prof.Accesses++
	if last, seen := t.lastTouch[set][tag]; seen {
		rd := int(now - last)
		t.prof.Reuses++
		t.prof.Global.Observe(rd)
		h, ok := t.prof.PerPC[pc]
		if !ok {
			h = stats.NewHistogram()
			t.prof.PerPC[pc] = h
		}
		h.Observe(rd)
	}
	t.lastTouch[set][tag] = now
}

// ProfileKernel replays the kernel's memory stream against numSMs
// independent caches of the given geometry, distributing blocks
// round-robin and interleaving warp memory instructions round-robin
// within each SM, mirroring the simulator's dispatch.
func ProfileKernel(k *trace.Kernel, numSMs int, geom config.CacheGeom) *Profile {
	prof := &Profile{
		Global: stats.NewHistogram(),
		PerPC:  make(map[uint32]*stats.Histogram),
	}
	replay(k, numSMs, func(sm int) func(addr.Addr, uint32) {
		t := newTracker(geom, prof)
		return t.access
	})
	return prof
}

// lruSet is a small ordered-tag LRU set for the Fig. 4 replay.
type lruSet struct {
	tags []uint64 // index 0 is MRU
}

func (s *lruSet) touch(tag uint64, ways int) (hit bool) {
	for i, t := range s.tags {
		if t == tag {
			copy(s.tags[1:i+1], s.tags[:i])
			s.tags[0] = tag
			return true
		}
	}
	s.tags = append(s.tags, 0)
	copy(s.tags[1:], s.tags)
	s.tags[0] = tag
	if len(s.tags) > ways {
		s.tags = s.tags[:ways]
	}
	return false
}

// ReuseMissRate replays the stream through LRU caches of the given
// geometry and returns the miss rate over non-compulsory accesses only
// (Fig. 4 excludes compulsory misses).
func ReuseMissRate(k *trace.Kernel, numSMs int, geom config.CacheGeom) float64 {
	kind := addr.LinearIndex
	if geom.Hashed {
		kind = addr.HashIndex
	}
	var reuses, reuseMisses uint64
	replay(k, numSMs, func(sm int) func(addr.Addr, uint32) {
		m := addr.MustMapper(geom.LineSize, geom.Sets, kind)
		sets := make([]lruSet, geom.Sets)
		seen := make(map[uint64]bool)
		return func(a addr.Addr, pc uint32) {
			tag := m.Tag(a)
			first := !seen[tag]
			seen[tag] = true
			hit := sets[m.Set(a)].touch(tag, geom.Ways)
			if first {
				return
			}
			reuses++
			if !hit {
				reuseMisses++
			}
		}
	})
	if reuses == 0 {
		return 0
	}
	return float64(reuseMisses) / float64(reuses)
}

// replay walks the kernel's memory accesses in dispatch order, invoking
// sink(sm) once per SM to obtain that SM's access function.
func replay(k *trace.Kernel, numSMs int, sink func(sm int) func(addr.Addr, uint32)) {
	lineSize := 128
	perSM := make([][]*trace.Block, numSMs)
	for i, b := range k.Blocks {
		perSM[i%numSMs] = append(perSM[i%numSMs], b)
	}
	for smID, blocks := range perSM {
		if len(blocks) == 0 {
			continue
		}
		access := sink(smID)
		for _, b := range blocks {
			// Round-robin one memory instruction per warp per turn,
			// approximating fine-grained multithreaded issue.
			ptrs := make([]int, len(b.Warps))
			remaining := 0
			for wi, w := range b.Warps {
				ptrs[wi] = nextMem(w, 0)
				if ptrs[wi] < len(w.Instrs) {
					remaining++
				}
			}
			for remaining > 0 {
				for wi, w := range b.Warps {
					p := ptrs[wi]
					if p >= len(w.Instrs) {
						continue
					}
					in := &w.Instrs[p]
					for _, line := range in.CoalescedLines(lineSize) {
						access(line, in.PC)
					}
					ptrs[wi] = nextMem(w, p+1)
					if ptrs[wi] >= len(w.Instrs) {
						remaining--
					}
				}
			}
		}
	}
}

// nextMem returns the index of the next memory instruction at or after i.
func nextMem(w *trace.WarpTrace, i int) int {
	for ; i < len(w.Instrs); i++ {
		k := w.Instrs[i].Kind
		if k == trace.Load || k == trace.Store {
			return i
		}
	}
	return i
}
