// Package rdd implements the paper's reuse-distance analysis (§3): a RD
// is the number of accesses to a cache set between two accesses to the
// same cache line within that set, counting the re-reference itself
// (Figure 2: the sequence A0, A1, A2, A0 gives A0 a RD of 3). The
// profiler replays a kernel's memory stream in the same block/warp
// interleaving the simulator uses and produces program-level (Fig. 3) and
// per-instruction (Fig. 7) RD distributions, plus the associativity
// sensitivity study of Fig. 4 via an LRU cache replay.
package rdd

import (
	"math"
	"sync"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Buckets are the paper's four RD ranges (1–4, 5–8, 9–64, >64).
var Buckets = [][2]int{{1, 4}, {5, 8}, {9, 64}, {65, math.MaxInt}}

// BucketLabels name the ranges as in Figure 3.
var BucketLabels = []string{"RD 1~4", "RD 5~8", "RD 9~64", "RD >65"}

// Profile is the result of replaying one kernel.
type Profile struct {
	Global   *stats.Histogram            // all reuse distances
	PerPC    map[uint32]*stats.Histogram // RDs keyed by the re-referencing PC
	Accesses uint64                      // line accesses replayed
	Reuses   uint64                      // non-compulsory accesses
}

// GlobalFractions returns the Fig. 3 bucket fractions.
func (p *Profile) GlobalFractions() []float64 { return p.Global.Fractions(Buckets) }

// PCFractions returns the Fig. 7 bucket fractions for one instruction.
func (p *Profile) PCFractions(pc uint32) []float64 {
	h, ok := p.PerPC[pc]
	if !ok {
		return make([]float64, len(Buckets))
	}
	return h.Fractions(Buckets)
}

// PCs returns the profiled instruction PCs in ascending order.
func (p *Profile) PCs() []uint32 {
	out := make([]uint32, 0, len(p.PerPC))
	for pc := range p.PerPC {
		out = append(out, pc)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// tracker measures RDs for one cache (one SM's L1D view).
type tracker struct {
	mapper     *addr.Mapper
	setCounter []uint64
	lastTouch  []map[uint64]uint64 // per set: tag -> counter at last access
	prof       *Profile
}

func newTracker(geom config.CacheGeom, prof *Profile) *tracker {
	kind := addr.LinearIndex
	if geom.Hashed {
		kind = addr.HashIndex
	}
	m := addr.MustMapper(geom.LineSize, geom.Sets, kind)
	t := &tracker{
		mapper:     m,
		setCounter: make([]uint64, geom.Sets),
		lastTouch:  make([]map[uint64]uint64, geom.Sets),
		prof:       prof,
	}
	for i := range t.lastTouch {
		t.lastTouch[i] = make(map[uint64]uint64)
	}
	return t
}

// access replays one line access issued by instruction pc.
func (t *tracker) access(a addr.Addr, pc uint32) {
	set := t.mapper.Set(a)
	tag := t.mapper.Tag(a)
	t.setCounter[set]++
	now := t.setCounter[set]
	t.prof.Accesses++
	if last, seen := t.lastTouch[set][tag]; seen {
		rd := int(now - last)
		t.prof.Reuses++
		t.prof.Global.Observe(rd)
		h, ok := t.prof.PerPC[pc]
		if !ok {
			h = stats.NewHistogram()
			t.prof.PerPC[pc] = h
		}
		h.Observe(rd)
	}
	t.lastTouch[set][tag] = now
}

// ProfileKernel replays the kernel's memory stream against numSMs
// independent caches of the given geometry, distributing blocks
// round-robin and interleaving warp memory instructions round-robin
// within each SM, mirroring the simulator's dispatch.
func ProfileKernel(k *trace.Kernel, numSMs int, geom config.CacheGeom) *Profile {
	return ProfileKernelCores(k, numSMs, geom, 1)
}

// ProfileKernelCores is ProfileKernel on a pool of cores goroutines.
// Each SM's replay is independent (its own cache view, its own
// counters), so SMs are striped across workers, each worker fills a
// private Profile, and the shards merge afterwards. Every merged
// counter is a sum, so the result is identical to the serial profile
// at any core count.
func ProfileKernelCores(k *trace.Kernel, numSMs int, geom config.CacheGeom, cores int) *Profile {
	shards := shardSMs(k, numSMs, cores, func() *Profile {
		return &Profile{
			Global: stats.NewHistogram(),
			PerPC:  make(map[uint32]*stats.Histogram),
		}
	}, func(prof *Profile, sm int) func(addr.Addr, uint32) {
		t := newTracker(geom, prof)
		return t.access
	})
	prof := shards[0]
	for _, sh := range shards[1:] {
		prof.Global.Merge(sh.Global)
		for pc, h := range sh.PerPC {
			if have, ok := prof.PerPC[pc]; ok {
				have.Merge(h)
			} else {
				prof.PerPC[pc] = h
			}
		}
		prof.Accesses += sh.Accesses
		prof.Reuses += sh.Reuses
	}
	return prof
}

// lruSet is a small ordered-tag LRU set for the Fig. 4 replay.
type lruSet struct {
	tags []uint64 // index 0 is MRU
}

func (s *lruSet) touch(tag uint64, ways int) (hit bool) {
	for i, t := range s.tags {
		if t == tag {
			copy(s.tags[1:i+1], s.tags[:i])
			s.tags[0] = tag
			return true
		}
	}
	s.tags = append(s.tags, 0)
	copy(s.tags[1:], s.tags)
	s.tags[0] = tag
	if len(s.tags) > ways {
		s.tags = s.tags[:ways]
	}
	return false
}

// missShard counts one worker's share of the Fig. 4 LRU replay.
type missShard struct {
	reuses      uint64
	reuseMisses uint64
}

// ReuseMissRate replays the stream through LRU caches of the given
// geometry and returns the miss rate over non-compulsory accesses only
// (Fig. 4 excludes compulsory misses).
func ReuseMissRate(k *trace.Kernel, numSMs int, geom config.CacheGeom) float64 {
	return ReuseMissRateCores(k, numSMs, geom, 1)
}

// ReuseMissRateCores is ReuseMissRate with the SMs striped across cores
// goroutines; the per-shard counters sum to the serial result exactly.
func ReuseMissRateCores(k *trace.Kernel, numSMs int, geom config.CacheGeom, cores int) float64 {
	kind := addr.LinearIndex
	if geom.Hashed {
		kind = addr.HashIndex
	}
	shards := shardSMs(k, numSMs, cores, func() *missShard { return &missShard{} },
		func(ms *missShard, sm int) func(addr.Addr, uint32) {
			m := addr.MustMapper(geom.LineSize, geom.Sets, kind)
			sets := make([]lruSet, geom.Sets)
			seen := make(map[uint64]bool)
			return func(a addr.Addr, pc uint32) {
				tag := m.Tag(a)
				first := !seen[tag]
				seen[tag] = true
				hit := sets[m.Set(a)].touch(tag, geom.Ways)
				if first {
					return
				}
				ms.reuses++
				if !hit {
					ms.reuseMisses++
				}
			}
		})
	var reuses, reuseMisses uint64
	for _, ms := range shards {
		reuses += ms.reuses
		reuseMisses += ms.reuseMisses
	}
	if reuses == 0 {
		return 0
	}
	return float64(reuseMisses) / float64(reuses)
}

// replayScratch holds one worker's reusable replay buffers: the
// per-block warp cursors and the coalescing output. Reusing them is
// what keeps the replay's allocation count proportional to the cache
// state (SMs, sets, distinct lines) instead of the stream length.
type replayScratch struct {
	ptrs    []int
	lineBuf []addr.Addr
}

// shardSMs distributes the kernel's blocks round-robin over numSMs SMs
// (mirroring the simulator's dispatch), stripes the SMs across
// min(cores, numSMs) workers, and replays each SM through an access
// function built by sink over the worker's shard. Shards are private
// to their worker — sink is called on the worker goroutine — so the
// replay is race-free without locks; callers fold the shards, whose
// counters are order-independent sums.
func shardSMs[S any](k *trace.Kernel, numSMs, cores int,
	newShard func() S, sink func(shard S, sm int) func(addr.Addr, uint32)) []S {
	perSM := make([][]*trace.Block, numSMs)
	for i, b := range k.Blocks {
		perSM[i%numSMs] = append(perSM[i%numSMs], b)
	}
	if cores > numSMs {
		cores = numSMs
	}
	if cores < 1 {
		cores = 1
	}
	shards := make([]S, cores)
	work := func(w int) {
		shards[w] = newShard()
		var sc replayScratch
		for sm := w; sm < numSMs; sm += cores {
			if len(perSM[sm]) == 0 {
				continue
			}
			replaySM(perSM[sm], sink(shards[w], sm), &sc)
		}
	}
	if cores == 1 {
		work(0)
		return shards
	}
	var wg sync.WaitGroup
	for w := 0; w < cores; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			work(w)
		}(w)
	}
	wg.Wait()
	return shards
}

// replaySM walks one SM's blocks in dispatch order, invoking access for
// every coalesced line.
func replaySM(blocks []*trace.Block, access func(addr.Addr, uint32), sc *replayScratch) {
	const lineSize = 128
	for _, b := range blocks {
		// Round-robin one memory instruction per warp per turn,
		// approximating fine-grained multithreaded issue.
		if cap(sc.ptrs) < len(b.Warps) {
			sc.ptrs = make([]int, len(b.Warps))
		}
		ptrs := sc.ptrs[:len(b.Warps)]
		remaining := 0
		for wi, w := range b.Warps {
			ptrs[wi] = nextMem(w, 0)
			if ptrs[wi] < len(w.Instrs) {
				remaining++
			}
		}
		for remaining > 0 {
			for wi, w := range b.Warps {
				p := ptrs[wi]
				if p >= len(w.Instrs) {
					continue
				}
				in := &w.Instrs[p]
				sc.lineBuf = in.AppendCoalescedLines(sc.lineBuf[:0], lineSize)
				for _, line := range sc.lineBuf {
					access(line, in.PC)
				}
				ptrs[wi] = nextMem(w, p+1)
				if ptrs[wi] >= len(w.Instrs) {
					remaining--
				}
			}
		}
	}
}

// nextMem returns the index of the next memory instruction at or after i.
func nextMem(w *trace.WarpTrace, i int) int {
	for ; i < len(w.Instrs); i++ {
		k := w.Instrs[i].Kind
		if k == trace.Load || k == trace.Store {
			return i
		}
	}
	return i
}
