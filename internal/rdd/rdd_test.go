package rdd

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/trace"
)

// kernelFromLines builds a single-warp kernel that loads the given line
// numbers in order, each with the given PCs (parallel slice, or all 0).
func kernelFromLines(lines []int, pcs []uint32) *trace.Kernel {
	w := &trace.WarpTrace{}
	for i, l := range lines {
		pc := uint32(0)
		if pcs != nil {
			pc = pcs[i]
		}
		w.Instrs = append(w.Instrs, trace.NewLoad(pc, []addr.Addr{addr.Addr(l * 128)}))
	}
	return &trace.Kernel{Name: "t", Blocks: []*trace.Block{{Warps: []*trace.WarpTrace{w}}}}
}

// geom2way is the Figure 2 example cache: 2-way, small.
var geom2way = config.CacheGeom{Sets: 2, Ways: 2, LineSize: 128, Hashed: false}

// TestFig2Example reproduces the paper's Figure 2: sequence
// Addr0, Addr1, Addr2, Addr0 (all in one set) gives Addr0 a RD of 3.
func TestFig2Example(t *testing.T) {
	// Lines 0, 2, 4 all map to set 0 of a 2-set linear cache.
	k := kernelFromLines([]int{0, 2, 4, 0}, nil)
	p := ProfileKernel(k, 1, geom2way)
	if p.Accesses != 4 {
		t.Fatalf("accesses = %d", p.Accesses)
	}
	if p.Reuses != 1 {
		t.Fatalf("reuses = %d, want 1", p.Reuses)
	}
	if got := p.Global.Count(3); got != 1 {
		t.Errorf("RD=3 count = %d, want 1 (Figure 2)", got)
	}
}

func TestRDIsPerSet(t *testing.T) {
	// Lines 0 and 4 are in set 0; lines 1 and 3 in set 1 (2-set cache).
	// Set-1 accesses must not inflate set-0 distances.
	k := kernelFromLines([]int{0, 1, 3, 1, 0}, nil)
	p := ProfileKernel(k, 1, geom2way)
	// Set 1 sees 1,3,1: the re-reference of line 1 has RD 2. Set 0 sees
	// 0,0 — back to back within its set despite the set-1 accesses in
	// between, so RD 1.
	if got := p.Global.Count(2); got != 1 {
		t.Errorf("RD=2 count = %d, want 1", got)
	}
	if got := p.Global.Count(1); got != 1 {
		t.Errorf("RD=1 count = %d, want 1", got)
	}
}

func TestBackToBackRDIsOne(t *testing.T) {
	k := kernelFromLines([]int{5, 5, 5}, nil)
	p := ProfileKernel(k, 1, geom2way)
	if got := p.Global.Count(1); got != 2 {
		t.Errorf("RD=1 count = %d, want 2", got)
	}
}

func TestPerPCAttribution(t *testing.T) {
	// Line 0 brought in by PC 1, re-referenced by PC 2: the RD belongs to
	// the re-referencing instruction.
	k := kernelFromLines([]int{0, 2, 0}, []uint32{1, 1, 2})
	p := ProfileKernel(k, 1, geom2way)
	if got := p.PCFractions(2); got[0] != 1 {
		t.Errorf("PC 2 fractions = %v, want all mass in bucket 0", got)
	}
	if h, ok := p.PerPC[1]; ok && h.Total() > 0 {
		t.Error("PC 1 (first toucher) was credited a reuse")
	}
	pcs := p.PCs()
	if len(pcs) != 1 || pcs[0] != 2 {
		t.Errorf("PCs() = %v", pcs)
	}
}

func TestPCFractionsUnknownPC(t *testing.T) {
	k := kernelFromLines([]int{0}, nil)
	p := ProfileKernel(k, 1, geom2way)
	fr := p.PCFractions(99)
	if len(fr) != len(Buckets) {
		t.Fatalf("fractions len = %d", len(fr))
	}
	for _, f := range fr {
		if f != 0 {
			t.Errorf("unknown PC has nonzero fraction: %v", fr)
		}
	}
}

func TestGlobalFractionsSumToOne(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		lines := make([]int, len(raw))
		for i, r := range raw {
			lines[i] = int(r % 16)
		}
		k := kernelFromLines(lines, nil)
		p := ProfileKernel(k, 1, geom2way)
		if p.Reuses == 0 {
			return true
		}
		sum := 0.0
		for _, fr := range p.GlobalFractions() {
			sum += fr
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRDLowerBoundsLRUHit: under LRU, an access with RD <= ways always
// hits; the profiler and the LRU replay must agree on that bound.
func TestRDLowerBoundsLRUHit(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		lines := make([]int, len(raw))
		for i, r := range raw {
			lines[i] = int(r % 8)
		}
		k := kernelFromLines(lines, nil)
		p := ProfileKernel(k, 1, geom2way)
		// If every observed RD <= 2 (the associativity), the reuse miss
		// rate must be zero.
		maxRD := 0
		for _, v := range p.Global.Keys() {
			if v > maxRD {
				maxRD = v
			}
		}
		if maxRD <= 2 {
			return ReuseMissRate(k, 1, geom2way) == 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReuseMissRateThrashingIsOne(t *testing.T) {
	// Cycle over 3 lines in a 2-way set: every reuse misses.
	lines := []int{0, 2, 4, 0, 2, 4, 0, 2, 4}
	k := kernelFromLines(lines, nil)
	if got := ReuseMissRate(k, 1, geom2way); got != 1 {
		t.Errorf("thrashing reuse miss rate = %v, want 1", got)
	}
	// Doubling associativity fixes it.
	geom4 := config.CacheGeom{Sets: 2, Ways: 4, LineSize: 128, Hashed: false}
	if got := ReuseMissRate(k, 1, geom4); got != 0 {
		t.Errorf("4-way reuse miss rate = %v, want 0", got)
	}
}

func TestReuseMissRateNoReuse(t *testing.T) {
	k := kernelFromLines([]int{0, 1, 2, 3, 4, 5}, nil)
	if got := ReuseMissRate(k, 1, geom2way); got != 0 {
		t.Errorf("pure-streaming miss rate = %v, want 0 (compulsory excluded)", got)
	}
}

func TestReplayDistributesBlocksAcrossSMs(t *testing.T) {
	// Two identical blocks on two SMs: each SM sees its own cache, so the
	// two streams never interleave and RDs stay small.
	w1 := &trace.WarpTrace{Instrs: []trace.Instr{
		trace.NewLoad(0, []addr.Addr{0}), trace.NewLoad(0, []addr.Addr{0}),
	}}
	w2 := &trace.WarpTrace{Instrs: []trace.Instr{
		trace.NewLoad(0, []addr.Addr{0}), trace.NewLoad(0, []addr.Addr{0}),
	}}
	k := &trace.Kernel{Name: "two", Blocks: []*trace.Block{
		{Warps: []*trace.WarpTrace{w1}}, {Warps: []*trace.WarpTrace{w2}},
	}}
	p := ProfileKernel(k, 2, geom2way)
	if p.Reuses != 2 || p.Global.Count(1) != 2 {
		t.Errorf("reuses = %d, RD=1 count = %d; SM separation broken",
			p.Reuses, p.Global.Count(1))
	}
}

func TestReplayInterleavesWarpsWithinBlock(t *testing.T) {
	// Two warps in one block, each loading its own line then reloading
	// it. Round-robin interleave means each warp's reuse sees the other
	// warp's access in between: RD = 2 (same set).
	w1 := &trace.WarpTrace{Instrs: []trace.Instr{
		trace.NewLoad(0, []addr.Addr{0}), trace.NewLoad(0, []addr.Addr{0}),
	}}
	w2 := &trace.WarpTrace{Instrs: []trace.Instr{
		trace.NewLoad(1, []addr.Addr{2 * 128}), trace.NewLoad(1, []addr.Addr{2 * 128}),
	}}
	k := &trace.Kernel{Name: "il", Blocks: []*trace.Block{{Warps: []*trace.WarpTrace{w1, w2}}}}
	p := ProfileKernel(k, 1, geom2way)
	if got := p.Global.Count(2); got != 2 {
		t.Errorf("RD=2 count = %d, want 2 (warps interleaved)", got)
	}
}

func TestComputeInstructionsSkipped(t *testing.T) {
	w := &trace.WarpTrace{Instrs: []trace.Instr{
		trace.NewLoad(0, []addr.Addr{0}),
		trace.NewCompute(9, 4, 32),
		trace.NewLoad(0, []addr.Addr{0}),
	}}
	k := &trace.Kernel{Name: "c", Blocks: []*trace.Block{{Warps: []*trace.WarpTrace{w}}}}
	p := ProfileKernel(k, 1, geom2way)
	if p.Accesses != 2 || p.Global.Count(1) != 1 {
		t.Errorf("accesses = %d, RD=1 = %d; computes altered the stream",
			p.Accesses, p.Global.Count(1))
	}
}

func TestBucketsMatchPaperRanges(t *testing.T) {
	h := stats.NewHistogram()
	for _, v := range []int{4, 5, 8, 9, 64, 65} {
		h.Observe(v)
	}
	fr := h.Fractions(Buckets)
	want := []float64{1.0 / 6, 2.0 / 6, 2.0 / 6, 1.0 / 6}
	for i := range want {
		if math.Abs(fr[i]-want[i]) > 1e-9 {
			t.Errorf("bucket %d = %v, want %v", i, fr[i], want[i])
		}
	}
	if len(BucketLabels) != len(Buckets) {
		t.Error("label/bucket length mismatch")
	}
}
