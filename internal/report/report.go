// Package report formats the experiment harness's results as aligned
// text tables: per-application series with the paper's geometric-mean
// columns (Figs. 5 and 10–13) and bucketed distribution tables (Figs. 3
// and 7).
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"

	"repro/internal/stats"
)

// Series is one named line/bar series over the application list.
type Series struct {
	Name   string
	Values []float64
}

// Table is a set of series over the same applications, optionally split
// into CS/CI groups with per-group geometric means, mirroring the
// G.MEANS bars in the paper's figures.
type Table struct {
	Title   string
	Apps    []string // column labels
	Classes []string // "CS" or "CI" per app; empty disables G.MEANS rows
	Series  []Series
	Format  string // value format, default "%.3f"
}

// AddSeries appends a series; its length must match Apps.
func (t *Table) AddSeries(name string, values []float64) error {
	if len(values) != len(t.Apps) {
		return fmt.Errorf("report: series %q has %d values for %d apps",
			name, len(values), len(t.Apps))
	}
	t.Series = append(t.Series, Series{Name: name, Values: values})
	return nil
}

// cell formats one table value. NaN is the harness's marker for a point
// that has no result — its job failed and the suite ran in keep-going
// mode — and renders as an explicit FAILED cell rather than a number,
// so partial tables can never be mistaken for complete ones.
func cell(format string, v float64) string {
	if math.IsNaN(v) {
		return "FAILED"
	}
	return fmt.Sprintf(format, v)
}

// groupMean returns the geometric mean of one series restricted to apps
// of one class. Non-positive entries (e.g. an application whose baseline
// counter is zero, making normalization meaningless) and NaN entries
// (failed jobs in a keep-going run) are skipped rather than poisoning
// the mean. Note NaN > 0 is false, so the one filter covers both.
// When no entry survives — every point of the class failed, or the
// class is absent from an -apps subset — there is no mean to report,
// and the cell must say so: NaN renders as FAILED, where a silent 0
// would read as a measured (and alarming) result.
func (t *Table) groupMean(s Series, class string) float64 {
	var vals []float64
	for i, c := range t.Classes {
		if c == class && s.Values[i] > 0 {
			vals = append(vals, s.Values[i])
		}
	}
	if len(vals) == 0 {
		return math.NaN()
	}
	return stats.GeoMean(vals)
}

// Render writes the table. Layout: one row per series, one column per
// application, with G.MEANS(CS) and G.MEANS(CI) columns when classes are
// present.
func (t *Table) Render(w io.Writer) error {
	format := t.Format
	if format == "" {
		format = "%.3f"
	}
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := append([]string{"scheme"}, t.Apps...)
	if len(t.Classes) == len(t.Apps) {
		header = append(header, "G.MEANS(CS)", "G.MEANS(CI)")
	}
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, s := range t.Series {
		cells := make([]string, 0, len(s.Values)+3)
		cells = append(cells, s.Name)
		for _, v := range s.Values {
			cells = append(cells, cell(format, v))
		}
		if len(t.Classes) == len(t.Apps) {
			cells = append(cells,
				cell(format, t.groupMean(s, "CS")),
				cell(format, t.groupMean(s, "CI")))
		}
		fmt.Fprintln(tw, strings.Join(cells, "\t"))
	}
	return tw.Flush()
}

// Distribution renders a bucketed-fraction table (Figs. 3 and 7): one
// row per item, one column per bucket, values as percentages.
type Distribution struct {
	Title   string
	Buckets []string
	Rows    []DistRow
}

// DistRow is one item's bucket fractions (summing to ~1).
type DistRow struct {
	Label     string
	Fractions []float64
}

// Render writes the distribution table.
func (d *Distribution) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", d.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(append([]string{"item"}, d.Buckets...), "\t"))
	for _, r := range d.Rows {
		cells := []string{r.Label}
		for _, f := range r.Fractions {
			cells = append(cells, fmt.Sprintf("%.1f%%", f*100))
		}
		fmt.Fprintln(tw, strings.Join(cells, "\t"))
	}
	return tw.Flush()
}

// RenderCSV writes the table as comma-separated values, one row per
// series, suitable for spreadsheet import or plotting scripts.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	format := t.Format
	if format == "" {
		format = "%.6g"
	}
	header := append([]string{"scheme"}, t.Apps...)
	withMeans := len(t.Classes) == len(t.Apps)
	if withMeans {
		header = append(header, "gmean_cs", "gmean_ci")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range t.Series {
		row := make([]string, 0, len(header))
		row = append(row, s.Name)
		for _, v := range s.Values {
			row = append(row, cell(format, v))
		}
		if withMeans {
			row = append(row,
				cell(format, t.groupMean(s, "CS")),
				cell(format, t.groupMean(s, "CI")))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderCSV writes the distribution with fractional (0..1) values.
func (d *Distribution) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"item"}, d.Buckets...)); err != nil {
		return err
	}
	for _, r := range d.Rows {
		row := make([]string, 0, len(d.Buckets)+1)
		row = append(row, r.Label)
		for _, f := range r.Fractions {
			row = append(row, fmt.Sprintf("%.6f", f))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
