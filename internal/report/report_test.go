package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "IPC",
		Apps:    []string{"A", "B", "C", "D"},
		Classes: []string{"CS", "CS", "CI", "CI"},
	}
	if err := tbl.AddSeries("Baseline", []float64{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddSeries("DLP", []float64{1, 1, 2, 8}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== IPC ==", "Baseline", "DLP", "G.MEANS(CS)", "G.MEANS(CI)", "4.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableRejectsWrongLength(t *testing.T) {
	tbl := &Table{Title: "x", Apps: []string{"A", "B"}}
	if err := tbl.AddSeries("bad", []float64{1}); err == nil {
		t.Error("mismatched series accepted")
	}
}

func TestTableWithoutClassesOmitsMeans(t *testing.T) {
	tbl := &Table{Title: "x", Apps: []string{"A"}}
	if err := tbl.AddSeries("s", []float64{2}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "G.MEANS") {
		t.Error("G.MEANS rendered without class info")
	}
}

func TestGroupMean(t *testing.T) {
	tbl := &Table{
		Apps:    []string{"A", "B", "C"},
		Classes: []string{"CS", "CI", "CI"},
	}
	s := Series{Values: []float64{7, 2, 8}}
	if got := tbl.groupMean(s, "CI"); math.Abs(got-4) > 1e-12 {
		t.Errorf("CI mean = %v, want 4", got)
	}
	if got := tbl.groupMean(s, "CS"); got != 7 {
		t.Errorf("CS mean = %v, want 7", got)
	}
}

func TestTableCustomFormat(t *testing.T) {
	tbl := &Table{Title: "x", Apps: []string{"A"}, Format: "%.1f"}
	tbl.AddSeries("s", []float64{2.25})
	var b strings.Builder
	tbl.Render(&b)
	if !strings.Contains(b.String(), "2.2") || strings.Contains(b.String(), "2.250") {
		t.Errorf("custom format ignored:\n%s", b.String())
	}
}

func TestDistributionRender(t *testing.T) {
	d := &Distribution{
		Title:   "RDD",
		Buckets: []string{"1~4", "5~8", "9~64", ">65"},
		Rows: []DistRow{
			{Label: "BFS", Fractions: []float64{0.25, 0.25, 0.3, 0.2}},
		},
	}
	var b strings.Builder
	if err := d.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== RDD ==", "BFS", "25.0%", "30.0%", "20.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestGroupMeanSkipsNonPositive(t *testing.T) {
	tbl := &Table{
		Apps:    []string{"A", "B", "C"},
		Classes: []string{"CS", "CS", "CS"},
	}
	s := Series{Values: []float64{0, 2, 8}}
	if got := tbl.groupMean(s, "CS"); got != 4 {
		t.Errorf("groupMean with a zero entry = %v, want 4 (zero skipped)", got)
	}
	empty := Series{Values: []float64{0, 0, 0}}
	if got := tbl.groupMean(empty, "CS"); !math.IsNaN(got) {
		t.Errorf("groupMean of all-zero series = %v, want NaN (renders FAILED)", got)
	}
	// A class with no apps at all (e.g. an -apps subset) likewise has no
	// mean — 0 here would render as a measured result.
	if got := tbl.groupMean(s, "CI"); !math.IsNaN(got) {
		t.Errorf("groupMean of absent class = %v, want NaN", got)
	}
}

// TestAllFailedColumnRendersFAILED pins the keep-going worst case: a
// class where every single point failed must render FAILED in both the
// per-app cells and the geomean columns — never panic, never print NaN
// or 0.000 — in the text and CSV renderers alike.
func TestAllFailedColumnRendersFAILED(t *testing.T) {
	tbl := &Table{
		Title:   "x",
		Apps:    []string{"A", "B", "C"},
		Classes: []string{"CS", "CI", "CI"},
	}
	nan := math.NaN()
	tbl.AddSeries("DLP", []float64{1.5, nan, nan}) // every CI point failed

	var text strings.Builder
	if err := tbl.Render(&text); err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	if err := tbl.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]string{"text": text.String(), "csv": csv.String()} {
		if strings.Contains(got, "NaN") {
			t.Errorf("%s renderer leaked NaN:\n%s", name, got)
		}
		if strings.Count(got, "FAILED") != 3 { // two CI cells + the CI geomean
			t.Errorf("%s renderer: want 3 FAILED cells:\n%s", name, got)
		}
		if !strings.Contains(got, "1.5") {
			t.Errorf("%s renderer lost the surviving CS cell:\n%s", name, got)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tbl := &Table{
		Title:   "x",
		Apps:    []string{"A", "B"},
		Classes: []string{"CS", "CI"},
	}
	tbl.AddSeries("DLP", []float64{1.5, 2})
	var b strings.Builder
	if err := tbl.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	wantHeader := "scheme,A,B,gmean_cs,gmean_ci\n"
	if !strings.HasPrefix(got, wantHeader) {
		t.Errorf("CSV header = %q", got)
	}
	if !strings.Contains(got, "DLP,1.5,2,1.5,2") {
		t.Errorf("CSV row wrong:\n%s", got)
	}
}

func TestDistributionRenderCSV(t *testing.T) {
	d := &Distribution{
		Buckets: []string{"a", "b"},
		Rows:    []DistRow{{Label: "X", Fractions: []float64{0.25, 0.75}}},
	}
	var b strings.Builder
	if err := d.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.Contains(got, "item,a,b") || !strings.Contains(got, "X,0.250000,0.750000") {
		t.Errorf("distribution CSV wrong:\n%s", got)
	}
}
