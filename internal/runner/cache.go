package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Key returns the job's content hash: a stable digest of everything
// that determines the simulation's outcome — the full hardware
// configuration, the policy, the canonicalized engine options, and the
// serialized kernel trace. Two jobs with equal Key produce identical
// Stats (the engine is deterministic), which is what makes result reuse
// sound. Labels, wall-clock budgets (MaxWall), self-checking
// (Opts.SelfCheck), phase parallelism (Opts.Cores) and fast-forward
// disabling (Opts.DisableFastForward) are excluded: they are
// presentation and execution policy, not simulation input — results
// are bit-identical at every setting.
//
// A job whose kernel cannot be serialized has no content address; Key
// returns "" and the runner treats the job as uncacheable rather than
// inventing an identity-based key that could collide across processes.
//
// Stream jobs are addressed by the stream's SpecKey — a stable
// description of the generator spec (or the trace file's content hash)
// rather than a digest of the materialized trace. Since streamed and
// precomputed runs of the same trace produce bit-identical stats, a
// KernelStream falls back to the wrapped kernel's digest so the two
// forms share cache entries. A stream with an empty SpecKey — and a
// malformed job setting both Kernel and Stream — is uncacheable.
func (j Job) Key() string {
	kernelLine := ""
	switch {
	case j.Kernel != nil && j.Stream != nil:
		return ""
	case j.Stream != nil:
		if ks, ok := j.Stream.(*trace.KernelStream); ok {
			kd, ok := kernelDigest(ks.Kernel())
			if !ok {
				return ""
			}
			kernelLine = kd
		} else {
			sk := j.Stream.SpecKey()
			if sk == "" {
				return ""
			}
			kernelLine = "stream:" + sk
		}
	default:
		kd, ok := kernelDigest(j.Kernel)
		if !ok {
			return ""
		}
		kernelLine = kd
	}
	h := sha256.New()
	// Config has only value fields, so %#v is a canonical encoding.
	fmt.Fprintf(h, "config|%#v\n", *j.Config)
	fmt.Fprintf(h, "policy|%s\n", j.Policy)
	o := j.Opts.Canonical()
	fmt.Fprintf(h, "opts|%d|%g|%d\n", o.MaxCycles, *o.BackgroundFlitsPerKInsn, o.InjectionRate)
	fmt.Fprintf(h, "kernel|%s\n", kernelLine)
	return hex.EncodeToString(h.Sum(nil))
}

// kernelDigests memoizes trace digests per kernel pointer: a suite
// reuses one generated kernel across every scheme, so without the memo
// each scheme would re-serialize the same trace. Serialization failures
// are memoized too (as digestEntry{ok: false}), so an unserializable
// kernel is probed exactly once instead of re-attempting — and
// re-failing — the full trace walk on every job.
var kernelDigests sync.Map // *trace.Kernel -> digestEntry

type digestEntry struct {
	digest string
	ok     bool
}

func kernelDigest(k *trace.Kernel) (string, bool) {
	if d, loaded := kernelDigests.Load(k); loaded {
		e := d.(digestEntry)
		return e.digest, e.ok
	}
	h := sha256.New()
	if _, err := k.WriteTo(h); err != nil {
		// An unserializable kernel cannot be content-addressed. The old
		// fallback ("unserializable-%p") reused the pointer address,
		// which a different process — or a later allocation in this one
		// — can legitimately recycle for a different kernel, silently
		// serving a wrong cached result. No key at all is the only
		// sound answer: such jobs always simulate.
		kernelDigests.Store(k, digestEntry{})
		return "", false
	}
	e := digestEntry{digest: hex.EncodeToString(h.Sum(nil)), ok: true}
	kernelDigests.Store(k, e)
	return e.digest, true
}

// diskSchemaVersion identifies the on-disk entry layout. Bump it when
// the entry format or the Stats counter set changes incompatibly; old
// entries are then quarantined and resimulated instead of being
// misdecoded. Version 1 was PR 1's bare Stats JSON with no envelope; it
// decodes as schema 0 here and is treated as stale.
const diskSchemaVersion = 2

// diskEntry is the on-disk envelope around a cached result: a schema
// version, a checksum of the payload, and the payload itself. The
// checksum covers the canonical (compact) JSON of Stats, so any
// bit-rot, truncation recovered by the JSON parser, or hand-editing is
// detected on load.
type diskEntry struct {
	Schema   int          `json:"schema"`
	Checksum string       `json:"checksum"`
	Stats    *stats.Stats `json:"stats"`
}

// statsChecksum returns the hex SHA-256 of st's compact JSON encoding.
func statsChecksum(st *stats.Stats) (string, error) {
	b, err := json.Marshal(st)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// validateEntry reports the first integrity problem with a decoded disk
// entry, or nil when the entry is trustworthy.
func validateEntry(e *diskEntry) error {
	if e.Schema != diskSchemaVersion {
		return fmt.Errorf("schema %d, want %d", e.Schema, diskSchemaVersion)
	}
	if e.Stats == nil {
		return fmt.Errorf("missing stats payload")
	}
	sum, err := statsChecksum(e.Stats)
	if err != nil {
		return err
	}
	if sum != e.Checksum {
		return fmt.Errorf("checksum mismatch: stored %.12s…, computed %.12s…", e.Checksum, sum)
	}
	// Revalidate the physical accounting identities: a cached result
	// that violates conservation was either corrupted in a way that
	// kept the checksum (impossible short of an attack, but cheap to
	// check) or written by a buggy engine build; both must resimulate.
	if err := e.Stats.CheckConservation(); err != nil {
		return err
	}
	return nil
}

// Cache is a content-addressed store of simulation results keyed by
// Job.Key. It always holds results in memory; when opened with
// OpenDiskCache it additionally persists every entry as JSON so results
// survive across processes. All methods are safe for concurrent use,
// and both Get and Put work on snapshots — a caller can never corrupt a
// cached entry through a returned pointer.
//
// Disk entries carry a schema version and a payload checksum and are
// revalidated against the stats conservation identities on load. An
// entry that fails any of those checks is quarantined — renamed to
// <key>.json.corrupt for post-mortem inspection — and the Get reports a
// miss, so the point is resimulated and rewritten instead of being
// silently trusted (wrong figures) or silently deleted (lost evidence).
type Cache struct {
	mu          sync.Mutex
	mem         map[string]*stats.Stats
	flights     map[string]chan struct{} // keys currently being simulated
	dir         string                   // empty: memory-only
	hits        uint64
	misses      uint64
	coalesced   uint64
	quarantined uint64
}

// NewCache returns an empty in-memory cache.
func NewCache() *Cache {
	return &Cache{mem: make(map[string]*stats.Stats), flights: make(map[string]chan struct{})}
}

// beginFlight is the single-flight entry point for one cacheable key.
// Exactly one of three things happens, atomically with respect to Put:
//
//   - the key is already cached in memory: its snapshot comes back in
//     st (counted as a hit), and the caller is done;
//   - no flight is open for the key: the caller becomes the leader
//     (leader == true) and must simulate, Put on success, and then
//     finishFlight — even when the simulation fails;
//   - another caller holds the flight: wait is the open flight's
//     channel, closed at the leader's finishFlight. The caller waits,
//     then re-enters beginFlight: a hit if the leader published, a new
//     flight if it failed.
//
// The in-memory re-check under the same lock closes the Get-then-fly
// race: a leader that published between a caller's cache miss and its
// beginFlight is observed here as a hit, never as a duplicate flight.
func (c *Cache) beginFlight(key string) (st *stats.Stats, leader bool, wait <-chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.mem[key]; ok {
		c.hits++
		return st.Clone(), false, nil
	}
	if c.flights == nil {
		c.flights = make(map[string]chan struct{})
	}
	if ch, ok := c.flights[key]; ok {
		c.coalesced++
		return nil, false, ch
	}
	ch := make(chan struct{})
	c.flights[key] = ch
	return nil, true, nil
}

// finishFlight closes the key's flight, waking every waiter. The leader
// calls it after Put (success) or with nothing published (failure); the
// waiters' re-entry into beginFlight distinguishes the two.
func (c *Cache) finishFlight(key string) {
	c.mu.Lock()
	ch := c.flights[key]
	delete(c.flights, key)
	c.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// OpenDiskCache returns a cache backed by dir (created if needed).
// Entries are written as <key>.json and loaded lazily on Get, so a
// fresh process reuses every point an earlier run simulated.
func OpenDiskCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: cache dir: %w", err)
	}
	c := NewCache()
	c.dir = dir
	return c, nil
}

// Get returns a snapshot of the cached result for key, if present.
func (c *Cache) Get(key string) (*stats.Stats, bool) {
	c.mu.Lock()
	if st, ok := c.mem[key]; ok {
		c.hits++
		c.mu.Unlock()
		return st.Clone(), true
	}
	dir := c.dir
	c.mu.Unlock()

	if dir != "" {
		if st, ok := c.loadDisk(dir, key); ok {
			c.mu.Lock()
			c.mem[key] = st
			c.hits++
			c.mu.Unlock()
			return st.Clone(), true
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// loadDisk reads and verifies one on-disk entry. Undecodable or
// integrity-failing entries are quarantined and reported as misses.
func (c *Cache) loadDisk(dir, key string) (*stats.Stats, bool) {
	path := filepath.Join(dir, key+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	e := &diskEntry{}
	if err := json.Unmarshal(b, e); err != nil {
		c.quarantine(path)
		return nil, false
	}
	if err := validateEntry(e); err != nil {
		c.quarantine(path)
		return nil, false
	}
	return e.Stats, true
}

// quarantine moves a failed entry aside as <name>.corrupt. Renaming —
// not deleting — keeps the evidence for inspection while guaranteeing
// the bad entry can never be served again; the subsequent resimulation
// rewrites a fresh entry under the original name. A lost race (another
// worker already quarantined the same file) is benign.
func (c *Cache) quarantine(path string) {
	_ = os.Rename(path, path+".corrupt")
	c.mu.Lock()
	c.quarantined++
	c.mu.Unlock()
}

// Put stores a snapshot of st under key.
func (c *Cache) Put(key string, st *stats.Stats) {
	snap := st.Clone()
	c.mu.Lock()
	c.mem[key] = snap
	dir := c.dir
	c.mu.Unlock()

	if dir == "" {
		return
	}
	sum, err := statsChecksum(snap)
	if err != nil {
		return
	}
	b, err := json.MarshalIndent(&diskEntry{
		Schema:   diskSchemaVersion,
		Checksum: sum,
		Stats:    snap,
	}, "", "  ")
	if err != nil {
		return
	}
	// Persist via a same-directory temp file renamed into place, so
	// concurrent writers and readers — including other processes
	// sharing the cache directory — never observe a torn entry that the
	// checksum path would then quarantine spuriously; persistence
	// failures degrade to memory-only caching.
	path := filepath.Join(dir, key+".json")
	tmp, err := os.CreateTemp(dir, key+".tmp*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(b); err == nil {
		// CreateTemp opens 0600; published entries must be readable by
		// whatever account the next server or CLI sharing dir runs as.
		_ = tmp.Chmod(0o644)
		err = tmp.Close()
		if err == nil {
			_ = os.Rename(tmp.Name(), path)
			return
		}
	} else {
		tmp.Close()
	}
	_ = os.Remove(tmp.Name())
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// Counters returns how many Gets were served from the cache and how
// many fell through to simulation.
func (c *Cache) Counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Coalesced returns how many cacheable jobs were deduplicated onto an
// identical in-flight simulation instead of starting their own.
func (c *Cache) Coalesced() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.coalesced
}

// Quarantined returns how many on-disk entries failed integrity
// verification and were moved aside as .corrupt files.
func (c *Cache) Quarantined() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quarantined
}
