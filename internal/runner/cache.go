package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Key returns the job's content hash: a stable digest of everything
// that determines the simulation's outcome — the full hardware
// configuration, the policy, the canonicalized engine options, and the
// serialized kernel trace. Two jobs with equal Key produce identical
// Stats (the engine is deterministic), which is what makes result reuse
// sound. Labels are excluded: they are presentation, not input.
func (j Job) Key() string {
	h := sha256.New()
	// Config has only value fields, so %#v is a canonical encoding.
	fmt.Fprintf(h, "config|%#v\n", *j.Config)
	fmt.Fprintf(h, "policy|%d\n", j.Policy)
	o := j.Opts.Canonical()
	fmt.Fprintf(h, "opts|%d|%g|%d\n", o.MaxCycles, *o.BackgroundFlitsPerKInsn, o.InjectionRate)
	fmt.Fprintf(h, "kernel|%s\n", kernelDigest(j.Kernel))
	return hex.EncodeToString(h.Sum(nil))
}

// kernelDigests memoizes trace digests per kernel pointer: a suite
// reuses one generated kernel across every scheme, so without the memo
// each scheme would re-serialize the same trace.
var kernelDigests sync.Map // *trace.Kernel -> string

func kernelDigest(k *trace.Kernel) string {
	if d, ok := kernelDigests.Load(k); ok {
		return d.(string)
	}
	h := sha256.New()
	if _, err := k.WriteTo(h); err != nil {
		// An unserializable kernel cannot be content-addressed; give it
		// an identity-based digest so it is simply never shared.
		return fmt.Sprintf("unserializable-%p", k)
	}
	d := hex.EncodeToString(h.Sum(nil))
	kernelDigests.Store(k, d)
	return d
}

// Cache is a content-addressed store of simulation results keyed by
// Job.Key. It always holds results in memory; when opened with
// OpenDiskCache it additionally persists every entry as JSON so results
// survive across processes. All methods are safe for concurrent use,
// and both Get and Put work on snapshots — a caller can never corrupt a
// cached entry through a returned pointer.
type Cache struct {
	mu     sync.Mutex
	mem    map[string]*stats.Stats
	dir    string // empty: memory-only
	hits   uint64
	misses uint64
}

// NewCache returns an empty in-memory cache.
func NewCache() *Cache {
	return &Cache{mem: make(map[string]*stats.Stats)}
}

// OpenDiskCache returns a cache backed by dir (created if needed).
// Entries are written as <key>.json and loaded lazily on Get, so a
// fresh process reuses every point an earlier run simulated.
func OpenDiskCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: cache dir: %w", err)
	}
	c := NewCache()
	c.dir = dir
	return c, nil
}

// Get returns a snapshot of the cached result for key, if present.
func (c *Cache) Get(key string) (*stats.Stats, bool) {
	c.mu.Lock()
	if st, ok := c.mem[key]; ok {
		c.hits++
		c.mu.Unlock()
		return st.Clone(), true
	}
	dir := c.dir
	c.mu.Unlock()

	if dir != "" {
		if b, err := os.ReadFile(filepath.Join(dir, key+".json")); err == nil {
			st := &stats.Stats{}
			if err := json.Unmarshal(b, st); err == nil {
				c.mu.Lock()
				c.mem[key] = st
				c.hits++
				c.mu.Unlock()
				return st.Clone(), true
			}
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores a snapshot of st under key.
func (c *Cache) Put(key string, st *stats.Stats) {
	snap := st.Clone()
	c.mu.Lock()
	c.mem[key] = snap
	dir := c.dir
	c.mu.Unlock()

	if dir == "" {
		return
	}
	// Persist via rename so concurrent writers and readers never see a
	// torn file; persistence failures degrade to memory-only caching.
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return
	}
	path := filepath.Join(dir, key+".json")
	tmp, err := os.CreateTemp(dir, key+".tmp*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(b); err == nil {
		err = tmp.Close()
		if err == nil {
			_ = os.Rename(tmp.Name(), path)
			return
		}
	} else {
		tmp.Close()
	}
	_ = os.Remove(tmp.Name())
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// Counters returns how many Gets were served from the cache and how
// many fell through to simulation.
func (c *Cache) Counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
