package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/stats"
)

// tinyJob returns a fast cacheable job; jobs built from the same name
// share a content address.
func tinyJob(name string) Job {
	return Job{
		Label:  name,
		Config: config.Baseline(),
		Policy: config.PolicyBaseline,
		Kernel: streamKernel(name, 1, 2, 4, 2),
	}
}

// TestSingleFlightExactlyOneSimulation pins the dedup bugfix: N
// concurrent Run calls submitting the same content address perform
// exactly one simulation. The leader is gated inside the intercept
// until every other submission has coalesced onto its flight, so the
// test proves the waiters attach to the in-flight simulation rather
// than merely hitting the cache after it.
func TestSingleFlightExactlyOneSimulation(t *testing.T) {
	const clients = 8
	cache := NewCache()
	var sims atomic.Int32
	release := make(chan struct{})
	r := &Runner{
		Workers: clients,
		Cache:   cache,
		Intercept: func(ctx context.Context, index, attempt int, job Job, run SimFunc) (*stats.Stats, error) {
			sims.Add(1)
			<-release
			return run(ctx)
		},
	}

	// The same kernel pointer in every batch: all jobs share one key.
	job := tinyJob("shared")
	results := make([]Result, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Run(context.Background(), []Job{job})
			errs[i] = err
			if err == nil {
				results[i] = res[0]
			}
		}(i)
	}

	// Wait until every non-leader client is parked on the leader's
	// flight, then let the leader finish.
	deadline := time.Now().Add(10 * time.Second)
	for cache.Coalesced() < clients-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d clients coalesced onto the flight", cache.Coalesced(), clients-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := sims.Load(); n != 1 {
		t.Fatalf("%d simulations ran for one shared key, want exactly 1", n)
	}
	cachedCount := 0
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if results[i].Cached {
			cachedCount++
		}
		if *results[i].Stats != *results[0].Stats {
			t.Errorf("client %d: stats differ from client 0", i)
		}
	}
	if cachedCount != clients-1 {
		t.Errorf("%d clients served from cache, want %d (one leader)", cachedCount, clients-1)
	}
	if got := cache.Coalesced(); got != clients-1 {
		t.Errorf("Coalesced() = %d, want %d", got, clients-1)
	}
}

// TestSingleFlightLeaderCancelWaiterRetakes: a leader cancelled
// mid-simulation (a client disconnect) must not take its waiters down
// with it — a waiter retakes the flight and simulates itself.
func TestSingleFlightLeaderCancelWaiterRetakes(t *testing.T) {
	cache := NewCache()
	var calls atomic.Int32
	leaderIn := make(chan struct{})
	r := &Runner{
		Workers: 2,
		Cache:   cache,
		Intercept: func(ctx context.Context, index, attempt int, job Job, run SimFunc) (*stats.Stats, error) {
			if calls.Add(1) == 1 {
				close(leaderIn) // first attempt: hang until cancelled
				<-ctx.Done()
				return nil, ctx.Err()
			}
			return run(ctx)
		},
	}

	job := tinyJob("retake")
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	var leaderErr error
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, leaderErr = r.Run(leaderCtx, []Job{job})
	}()
	<-leaderIn

	waiterDone := make(chan struct{})
	var waiterRes []Result
	var waiterErr error
	go func() {
		defer close(waiterDone)
		waiterRes, waiterErr = r.Run(context.Background(), []Job{job})
	}()
	// Park the waiter on the leader's flight before killing the leader.
	deadline := time.Now().Add(10 * time.Second)
	for cache.Coalesced() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never coalesced onto the leader's flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancelLeader()
	<-leaderDone
	<-waiterDone

	var ce *CancelError
	if !errors.As(leaderErr, &ce) {
		t.Fatalf("leader error = %v, want *CancelError", leaderErr)
	}
	if waiterErr != nil {
		t.Fatalf("waiter failed after leader cancellation: %v", waiterErr)
	}
	if waiterRes[0].Cached {
		t.Error("waiter result marked Cached; it should have re-simulated")
	}
	if waiterRes[0].Stats == nil {
		t.Fatal("waiter produced no stats")
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("%d simulation attempts, want 2 (hung leader + retaking waiter)", got)
	}
	// The retaken flight's result is published: a third client hits.
	third, err := r.Run(context.Background(), []Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if !third[0].Cached {
		t.Error("third client missed the cache after the waiter published")
	}
}

// TestConcurrentRunsEventsSerialized: a Runner shared by concurrent Run
// calls must never enter the Events callback concurrently — the
// documented contract JobTracer and the server's fan-out rely on.
func TestConcurrentRunsEventsSerialized(t *testing.T) {
	var inCallback atomic.Int32
	var violations atomic.Int32
	r := &Runner{
		Workers: 4,
		Events: func(ev Event) {
			if !inCallback.CompareAndSwap(0, 1) {
				violations.Add(1)
				return
			}
			defer inCallback.Store(0)
		},
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			jobs := []Job{tinyJob(fmt.Sprintf("ev-%d-a", g)), tinyJob(fmt.Sprintf("ev-%d-b", g))}
			if _, err := r.Run(context.Background(), jobs); err != nil {
				t.Errorf("goroutine %d: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	if n := violations.Load(); n != 0 {
		t.Fatalf("Events callback entered concurrently %d times", n)
	}
}

// TestConcurrentRunsRespectSlotBudget: overlapping Run calls on one
// Runner must keep the number of in-flight simulations within Workers —
// the property that makes -j a process-wide budget for the job server
// rather than a per-batch one.
func TestConcurrentRunsRespectSlotBudget(t *testing.T) {
	const budget = 2
	var inFlight, highWater atomic.Int32
	r := &Runner{
		Workers: budget,
		Intercept: func(ctx context.Context, index, attempt int, job Job, run SimFunc) (*stats.Stats, error) {
			n := inFlight.Add(1)
			for {
				hw := highWater.Load()
				if n <= hw || highWater.CompareAndSwap(hw, n) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			defer inFlight.Add(-1)
			return run(ctx)
		},
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Distinct kernels: no dedup, every job really simulates.
			jobs := []Job{tinyJob(fmt.Sprintf("slot-%d-a", g)), tinyJob(fmt.Sprintf("slot-%d-b", g))}
			if _, err := r.Run(context.Background(), jobs); err != nil {
				t.Errorf("goroutine %d: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	if hw := highWater.Load(); hw > budget {
		t.Fatalf("observed %d concurrent simulations, budget is %d", hw, budget)
	}
}

// TestDiskCacheOneKeyHammer is the torn-write regression test: many
// goroutines (as independent Cache handles over one directory,
// modelling concurrent server workers and processes) write and read a
// single key. Every successful load must be intact — the atomic
// temp-file + rename publish means no reader can ever observe a
// partially written entry, so nothing is ever quarantined.
func TestDiskCacheOneKeyHammer(t *testing.T) {
	dir := t.TempDir()
	seed, err := (&Runner{Workers: 1}).Run(context.Background(), []Job{tinyJob("hammer")})
	if err != nil {
		t.Fatal(err)
	}
	st := seed[0].Stats
	const key = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"

	const goroutines = 16
	const iters = 40
	caches := make([]*Cache, goroutines)
	for i := range caches {
		c, err := OpenDiskCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		caches[i] = c
	}
	var wg sync.WaitGroup
	var loads atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := caches[g]
			for i := 0; i < iters; i++ {
				if g%2 == 0 {
					c.Put(key, st)
				}
				// A fresh handle per Get forces the disk path: the
				// per-cache memory tier would otherwise absorb every
				// read after the first.
				fresh, err := OpenDiskCache(dir)
				if err != nil {
					t.Error(err)
					return
				}
				if got, ok := fresh.Get(key); ok {
					loads.Add(1)
					if *got != *st {
						t.Errorf("goroutine %d iter %d: loaded stats differ from written", g, i)
						return
					}
				}
				if q := fresh.Quarantined(); q != 0 {
					t.Errorf("goroutine %d iter %d: %d entries quarantined — torn write observed", g, i, q)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for i, c := range caches {
		if q := c.Quarantined(); q != 0 {
			t.Fatalf("cache handle %d quarantined %d entries", i, q)
		}
	}
	if loads.Load() == 0 {
		t.Fatal("no successful disk loads — the hammer never exercised the read path")
	}
	// And the settled state is a valid entry.
	final, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := final.Get(key)
	if !ok {
		t.Fatal("entry missing after the storm")
	}
	if *got != *st {
		t.Fatal("settled entry differs from the written stats")
	}
}
