package runner

import (
	"errors"
	"fmt"
	"strings"
)

// JobPanicError is a panic recovered inside a worker, converted into an
// ordinary job failure so one bad job can never tear down the pool (or
// the batch, in KeepGoing mode). Value is the recovered panic value and
// Stack the goroutine stack captured at recovery time.
type JobPanicError struct {
	Label string
	Index int
	Value any
	Stack []byte
}

func (e *JobPanicError) Error() string {
	return fmt.Sprintf("job %q (index %d) panicked: %v", e.Label, e.Index, e.Value)
}

// JobFailure is one failed job inside a BatchError, identified by its
// submission index so callers can map failures back onto their grids.
type JobFailure struct {
	Index int
	Label string
	Err   error
}

// BatchError aggregates every job failure of a KeepGoing batch. The
// batch ran to completion: Failures is ordered by submission index (not
// completion order), so its message is deterministic at any worker
// count. Unwrap exposes the individual job errors to errors.Is/As.
type BatchError struct {
	Failures []JobFailure
	Total    int // jobs in the batch
}

func (e *BatchError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "runner: %d of %d jobs failed:", len(e.Failures), e.Total)
	for _, f := range e.Failures {
		fmt.Fprintf(&b, "\n  job %q: %v", f.Label, f.Err)
	}
	return b.String()
}

// Unwrap returns the individual job errors, making
// errors.Is(batchErr, target) and errors.As work across all failures.
func (e *BatchError) Unwrap() []error {
	errs := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		errs[i] = f.Err
	}
	return errs
}

// CancelError reports a batch aborted by caller cancellation, with a
// summary of how far it got: Done jobs completed (their results are
// populated), Queued jobs never started. It wraps the context error, so
// errors.Is(err, context.Canceled) still holds.
type CancelError struct {
	Done   int
	Queued int
	Total  int
	Err    error // the context's error (Canceled or DeadlineExceeded)
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("runner: batch cancelled after %d/%d jobs (%d never started): %v",
		e.Done, e.Total, e.Queued, e.Err)
}

func (e *CancelError) Unwrap() error { return e.Err }

// transientError marks a wrapped error as retryable.
type transientError struct{ err error }

func (t *transientError) Error() string   { return t.err.Error() }
func (t *transientError) Unwrap() error   { return t.err }
func (t *transientError) Transient() bool { return true }

// Transient wraps err so IsTransient reports it retryable. The
// simulation engine is deterministic — a failed job fails identically
// on every retry — so nothing in this repository produces transient
// errors on its own; the marker exists for callers whose jobs touch
// genuinely flaky resources and for fault-injection tests of the retry
// machinery.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient is the retry classifier: it reports whether err (or
// anything it wraps) is marked retryable via a `Transient() bool`
// method. Panics, invariant violations, validation errors, timeouts and
// cancellations are all permanent — retrying a deterministic failure
// only burns wall-clock.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}
