// Package runner is the shared execution layer for cycle-level
// simulation experiments: it runs batches of independent simulation
// jobs on a bounded worker pool, deduplicates repeated points through a
// content-addressed result cache, threads context cancellation into the
// engine's cycle loop, and reports structured progress events.
//
// Every experiment driver in the repository — the figure suite
// (RunSuite), the ablation sweeps, and the CLIs — builds a []Job and
// hands it to a Runner instead of hand-rolling its own loop over
// sim.RunOnce. Results always come back in submission order, so callers
// keep deterministic output no matter how the pool schedules the work:
// same jobs, any schedule, any worker count → same tables.
//
// Jobs may share *config.Config and *trace.Kernel values freely: both
// are read-only during simulation (each engine keeps its own mutable
// state), which is what makes kernel reuse across schemes safe under
// concurrency.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Job is one simulation point: a hardware configuration, an L1D
// management policy, a kernel, and engine options.
type Job struct {
	// Label identifies the job in progress events and error messages,
	// e.g. "CFD under DLP". It does not affect the cache key.
	Label  string
	Config *config.Config
	Policy config.Policy
	Kernel *trace.Kernel
	Opts   sim.Options
}

// Result is one job's outcome, in the same position as its job in the
// submitted batch.
type Result struct {
	Job    Job
	Stats  *stats.Stats
	Err    error
	Cached bool          // served from the result cache, no simulation ran
	Wall   time.Duration // simulation wall time (0 when Cached)
}

// EventKind classifies a progress event.
type EventKind int

const (
	// JobQueued fires once per job when the batch is accepted.
	JobQueued EventKind = iota
	// JobStarted fires when a worker picks the job up.
	JobStarted
	// JobDone fires when the job finishes (simulated, cached, or failed).
	JobDone
)

// Event is one structured progress notification. The Queued / Running /
// Done counters are a consistent snapshot of the whole batch at the
// moment the event fired.
type Event struct {
	Kind   EventKind
	Index  int    // job position in the submitted batch
	Label  string // Job.Label
	Cached bool   // JobDone: result came from the cache
	Err    error  // JobDone: the job's error, if any
	Wall   time.Duration // JobDone: simulation wall time
	Cycles uint64 // JobDone: cycles the simulation ran

	Queued  int // jobs not yet picked up
	Running int // jobs currently executing
	Done    int // jobs finished
}

// Events receives progress notifications. Callbacks are serialized (the
// runner never calls Events concurrently) but arrive from worker
// goroutines, not the submitting one.
type Events func(Event)

// Runner executes batches of jobs. The zero value runs with GOMAXPROCS
// workers, no cache, and no event callbacks.
type Runner struct {
	// Workers is the worker-pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Cache, when non-nil, is consulted before simulating and updated
	// after. Share one Cache across batches (or processes, via
	// OpenDiskCache) to never re-simulate an identical point.
	Cache *Cache
	// Events, when non-nil, receives progress notifications.
	Events Events
}

// Run executes jobs and returns their results in submission order.
//
// On the first job failure the remaining unstarted jobs are cancelled
// and Run returns the failing job's error (results for jobs that
// completed before the failure are still populated). Cancelling ctx
// aborts in-flight simulations within a few thousand simulated cycles.
func (r *Runner) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		queued   = len(jobs)
		running  int
		done     int
		firstErr error // first non-cancellation failure, by completion
	)
	emit := func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		switch ev.Kind {
		case JobStarted:
			queued--
			running++
		case JobDone:
			running--
			done++
			if ev.Err != nil && firstErr == nil && ctx.Err() == nil {
				firstErr = fmt.Errorf("runner: job %q: %w", ev.Label, ev.Err)
				cancel()
			}
		}
		if r.Events != nil {
			ev.Queued, ev.Running, ev.Done = queued, running, done
			r.Events(ev)
		}
	}
	if r.Events != nil {
		mu.Lock()
		for i := range jobs {
			r.Events(Event{Kind: JobQueued, Index: i, Label: jobs[i].Label,
				Queued: queued, Running: running, Done: done})
		}
		mu.Unlock()
	}

	next := make(chan int)
	go func() {
		defer close(next)
		for i := range jobs {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = r.runOne(ctx, i, jobs[i], emit)
			}
		}()
	}
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return results, err
	}
	// No job failed on its own; surface a caller cancellation if any.
	if ctx.Err() != nil {
		return results, ctx.Err()
	}
	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("runner: job %q: %w", jobs[i].Label, results[i].Err)
		}
	}
	return results, nil
}

// runOne executes (or recalls) a single job.
func (r *Runner) runOne(ctx context.Context, i int, j Job, emit func(Event)) Result {
	emit(Event{Kind: JobStarted, Index: i, Label: j.Label})
	if r.Cache != nil {
		if st, ok := r.Cache.Get(j.Key()); ok {
			emit(Event{Kind: JobDone, Index: i, Label: j.Label, Cached: true, Cycles: st.Cycles})
			return Result{Job: j, Stats: st, Cached: true}
		}
	}
	start := time.Now()
	st, err := sim.RunOnce(ctx, j.Config, j.Policy, j.Kernel, j.Opts)
	wall := time.Since(start)
	if err == nil && r.Cache != nil {
		r.Cache.Put(j.Key(), st)
	}
	ev := Event{Kind: JobDone, Index: i, Label: j.Label, Err: err, Wall: wall}
	if st != nil {
		ev.Cycles = st.Cycles
	}
	emit(ev)
	return Result{Job: j, Stats: st, Err: err, Wall: wall}
}
