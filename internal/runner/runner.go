// Package runner is the shared execution layer for cycle-level
// simulation experiments: it runs batches of independent simulation
// jobs on a bounded worker pool, deduplicates repeated points through a
// content-addressed result cache, threads context cancellation into the
// engine's cycle loop, and reports structured progress events.
//
// Every experiment driver in the repository — the figure suite
// (RunSuite), the ablation sweeps, and the CLIs — builds a []Job and
// hands it to a Runner instead of hand-rolling its own loop over
// sim.RunOnce. Results always come back in submission order, so callers
// keep deterministic output no matter how the pool schedules the work:
// same jobs, any schedule, any worker count → same tables.
//
// The runner is also the repository's fault boundary. A panicking job
// is recovered into a *JobPanicError instead of killing the process; a
// job exceeding its wall-clock budget (Job.MaxWall / Runner.Timeout)
// fails with context.DeadlineExceeded without touching its neighbours;
// transient failures (IsTransient) are retried a bounded number of
// times; and in KeepGoing mode the batch always runs to completion,
// aggregating failures into one *BatchError so suites can render
// partial tables with explicit FAILED cells.
//
// Jobs may share *config.Config and *trace.Kernel values freely: both
// are read-only during simulation (each engine keeps its own mutable
// state), which is what makes kernel reuse across schemes safe under
// concurrency.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Job is one simulation point: a hardware configuration, an L1D
// management policy, a kernel, and engine options.
type Job struct {
	// Label identifies the job in progress events and error messages,
	// e.g. "CFD under DLP". It does not affect the cache key.
	Label  string
	Config *config.Config
	Policy config.Policy
	Kernel *trace.Kernel
	// Stream, when non-nil, runs the job against a lazily generated
	// kernel stream (sim.RunStreamOnce) instead of a materialized
	// kernel. Exactly one of Kernel and Stream must be set; a job with
	// both fails rather than guessing which trace the caller meant.
	Stream trace.Stream
	Opts   sim.Options

	// MaxWall, when positive, bounds the job's wall-clock simulation
	// time: the engine runs under context.WithTimeout and the job fails
	// with context.DeadlineExceeded when the deadline passes. Zero
	// falls back to Runner.Timeout. Like Label, MaxWall is execution
	// policy, not simulation input, so it is excluded from the cache
	// key — the engine is deterministic and a completed run is the
	// same run at any deadline.
	MaxWall time.Duration
}

// Result is one job's outcome, in the same position as its job in the
// submitted batch.
type Result struct {
	Job      Job
	Stats    *stats.Stats
	Err      error
	Cached   bool          // served from the result cache, no simulation ran
	Wall     time.Duration // simulation wall time (0 when Cached)
	Attempts int           // simulation attempts performed (0 when Cached)
}

// EventKind classifies a progress event.
type EventKind int

const (
	// JobQueued fires once per job when the batch is accepted.
	JobQueued EventKind = iota
	// JobStarted fires when a worker picks the job up.
	JobStarted
	// JobDone fires when the job finishes (simulated, cached, or failed).
	JobDone
)

// Event is one structured progress notification. The Queued / Running /
// Done counters are a consistent snapshot of the whole batch at the
// moment the event fired.
type Event struct {
	Kind     EventKind
	Index    int           // job position in the submitted batch
	Label    string        // Job.Label
	Cached   bool          // JobDone: result came from the cache
	Err      error         // JobDone: the job's error, if any
	Wall     time.Duration // JobDone: simulation wall time
	Cycles   uint64        // JobDone: cycles the simulation ran
	Attempts int           // JobDone: simulation attempts performed

	Queued  int // jobs not yet picked up
	Running int // jobs currently executing
	Done    int // jobs finished
}

// Events receives progress notifications. Callbacks are serialized per
// Runner (the runner never calls an Events callback concurrently with
// any other, even across overlapping Run calls) but arrive from worker
// goroutines, not the submitting one.
type Events func(Event)

// SimFunc runs one simulation attempt under the given context.
type SimFunc func(ctx context.Context) (*stats.Stats, error)

// Intercept wraps every simulation attempt of every job. It exists for
// deterministic fault injection (see internal/faultinject): the
// interceptor may run the attempt, replace it, delay it, fail it, or
// panic — the runner's recovery, retry and timeout machinery treats
// whatever happens exactly as it would a real simulation. attempt
// counts from 0 within one job.
type Intercept func(ctx context.Context, index, attempt int, job Job, run SimFunc) (*stats.Stats, error)

// Runner executes batches of jobs. The zero value runs with GOMAXPROCS
// workers, no cache, no retries, no deadlines, fail-fast semantics and
// no event callbacks.
type Runner struct {
	// Workers is the worker-pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Cache, when non-nil, is consulted before simulating and updated
	// after. Share one Cache across batches (or processes, via
	// OpenDiskCache) to never re-simulate an identical point.
	Cache *Cache
	// Events, when non-nil, receives progress notifications.
	Events Events

	// KeepGoing switches the batch from fail-fast to run-to-completion:
	// job failures no longer cancel the remaining jobs, and Run returns
	// a *BatchError aggregating every failure (ordered by submission
	// index) alongside the full results slice, in which failed jobs
	// carry their error and a nil Stats. Caller cancellation still
	// aborts the batch.
	KeepGoing bool
	// Retries is how many extra attempts a failed job gets when its
	// error is transient (IsTransient). Permanent errors — panics,
	// validation failures, timeouts, cancellations — never retry.
	Retries int
	// Timeout is the default per-job wall-clock budget for jobs whose
	// MaxWall is zero. Zero means no deadline.
	Timeout time.Duration
	// SelfCheck forces the engine's sampled invariant sweeps
	// (sim.Options.SelfCheck) on every job in the batch. Like MaxWall it
	// is execution policy: the checks never change simulation results,
	// so it does not participate in cache keys.
	SelfCheck bool
	// Cores is the default intra-simulation phase parallelism
	// (sim.Options.Cores) for jobs that don't set their own. The two
	// levels compose without oversubscription: the effective value is
	// capped so Workers × Cores stays within GOMAXPROCS — with 8
	// workers on a 16-way host each simulation gets 2 shards; once the
	// batch is narrower than the pool, raise Cores to soak up the idle
	// CPUs. A job whose Opts.Cores is set explicitly is honored as
	// given, cap or no cap. Simulation output is bit-identical at
	// every value, so Cores never participates in cache keys.
	Cores int
	// Intercept, when non-nil, wraps every simulation attempt. This is
	// the deterministic fault-injection seam; production callers leave
	// it nil.
	Intercept Intercept

	// Metrics, when non-nil, enables cycle-domain sampling
	// (sim.Options.Metrics) on every simulated job in the batch, with
	// the job's Label as the series name. Jobs that set their own
	// Opts.Metrics are honored as given. Cached jobs run no simulation
	// and therefore emit no rows — run with a fresh Cache (or none) to
	// sample every point. Like SelfCheck, sampling never changes
	// simulation results and is excluded from cache keys.
	Metrics metrics.Sink
	// MetricsEvery overrides the sampling period in cycles for jobs
	// sampled via Metrics; 0 means the default (metrics.DefaultEvery).
	MetricsEvery uint64

	// emitMu serializes Events callbacks across overlapping Run calls.
	// One Run already serializes its own emissions through its local
	// batch lock; a Runner shared by concurrent callers (the job
	// server) needs this second level so a callback like JobTracer is
	// never entered concurrently.
	emitMu sync.Mutex

	// slots bounds the number of simulations in flight across every
	// concurrent Run call to the resolved Workers value. Within one Run
	// the worker pool already enforces the bound, so acquisition never
	// blocks there; with several Runs sharing the Runner it is what
	// keeps "-j" a process-wide budget instead of a per-batch one.
	// Built lazily on first use from the Workers value at that moment.
	slotOnce sync.Once
	slots    chan struct{}
}

// slotCap resolves the process-wide simulation budget.
func (r *Runner) slotCap() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// acquireSlot blocks until a simulation slot is free or ctx dies. Slots
// are held only while a simulation actually runs — cache hits and
// single-flight waiters never consume one.
func (r *Runner) acquireSlot(ctx context.Context) error {
	r.slotOnce.Do(func() { r.slots = make(chan struct{}, r.slotCap()) })
	select {
	case r.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (r *Runner) releaseSlot() { <-r.slots }

// Run executes jobs and returns their results in submission order.
//
// Fail-fast (the default): on the first job failure the remaining
// unstarted jobs are cancelled and Run returns the failing job's error
// (results for jobs that completed before the failure are still
// populated). With KeepGoing set, every job runs and failures come back
// aggregated in a *BatchError.
//
// Cancelling ctx aborts in-flight simulations within a few thousand
// simulated cycles; the returned *CancelError summarizes how many jobs
// completed and how many never started, and wraps the context error.
//
// Run is safe for concurrent use: overlapping calls share the Runner's
// simulation-slot budget (Workers bounds in-flight simulations across
// all of them), the cache's single-flight table (an identical in-flight
// point is simulated once and shared), and the Events serialization
// guarantee.
func (r *Runner) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	return r.RunEvents(ctx, jobs, r.Events)
}

// RunEvents is Run with a per-call Events callback instead of the
// shared Runner.Events field. A server running many independent batches
// on one Runner uses it to route each batch's progress to its own
// subscriber; callbacks across overlapping calls are still serialized
// per Runner. events may be nil.
func (r *Runner) RunEvents(ctx context.Context, jobs []Job, events Events) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	cores := effectiveCores(r.Cores, workers)

	callerCtx := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		queued   = len(jobs)
		running  int
		done     int
		firstErr error // first non-cancellation failure, by completion
	)
	emit := func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		switch ev.Kind {
		case JobStarted:
			queued--
			running++
		case JobDone:
			running--
			done++
			if ev.Err != nil && !r.KeepGoing && firstErr == nil && callerCtx.Err() == nil {
				firstErr = fmt.Errorf("runner: job %q: %w", ev.Label, ev.Err)
				cancel()
			}
		}
		if events != nil {
			ev.Queued, ev.Running, ev.Done = queued, running, done
			r.emitMu.Lock()
			events(ev)
			r.emitMu.Unlock()
		}
	}
	if events != nil {
		mu.Lock()
		r.emitMu.Lock()
		for i := range jobs {
			events(Event{Kind: JobQueued, Index: i, Label: jobs[i].Label,
				Queued: queued, Running: running, Done: done})
		}
		r.emitMu.Unlock()
		mu.Unlock()
	}

	next := make(chan int)
	go func() {
		defer close(next)
		for i := range jobs {
			// Re-check before every dispatch: a select parked on both
			// cases picks randomly once both are ready, so without this a
			// cancelled batch could keep feeding workers that happen to be
			// waiting.
			if ctx.Err() != nil {
				return
			}
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = r.runOne(ctx, i, jobs[i], cores, emit)
			}
		}()
	}
	wg.Wait()

	// Caller cancellation trumps everything: summarize how far we got.
	if callerCtx.Err() != nil {
		mu.Lock()
		completed, notStarted := done, queued
		mu.Unlock()
		return results, &CancelError{
			Done:   completed,
			Queued: notStarted,
			Total:  len(jobs),
			Err:    callerCtx.Err(),
		}
	}

	if r.KeepGoing {
		// Aggregate failures by submission index so the multi-error is
		// identical at any worker count.
		var fails []JobFailure
		for i := range results {
			if results[i].Err != nil {
				fails = append(fails, JobFailure{Index: i, Label: jobs[i].Label, Err: results[i].Err})
			}
		}
		if len(fails) > 0 {
			return results, &BatchError{Failures: fails, Total: len(jobs)}
		}
		return results, nil
	}

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return results, err
	}
	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("runner: job %q: %w", jobs[i].Label, results[i].Err)
		}
	}
	return results, nil
}

// effectiveCores resolves Runner.Cores against the worker-pool size:
// the product of the two parallelism levels must not exceed
// GOMAXPROCS, or the phase barriers would thrash an oversubscribed
// scheduler. requested <= 1 short-circuits to serial.
func effectiveCores(requested, workers int) int {
	if requested <= 1 {
		return 1
	}
	if limit := runtime.GOMAXPROCS(0) / workers; requested > limit {
		requested = limit
	}
	return max(requested, 1)
}

// runOne executes (or recalls) a single job, retrying transient
// failures up to Runner.Retries times. cores fills Job.Opts.Cores for
// jobs that left it zero.
//
// Cacheable jobs run under single-flight: of all concurrent jobs with
// the same content address (across every Run call sharing this
// Runner's Cache), exactly one — the leader — simulates; the rest wait
// and are then served from the cache as ordinary hits. A leader that
// fails or is cancelled wakes its waiters without publishing a result;
// each waiter then retakes the flight, so one tenant disconnecting
// mid-simulation never loses another tenant's identical job.
func (r *Runner) runOne(ctx context.Context, i int, j Job, cores int, emit func(Event)) Result {
	if j.Opts.Cores == 0 {
		j.Opts.Cores = cores
	}
	if r.Metrics != nil && j.Opts.Metrics == nil {
		j.Opts.Metrics = &metrics.Config{Sink: r.Metrics, Every: r.MetricsEvery, Label: j.Label}
	}
	emit(Event{Kind: JobStarted, Index: i, Label: j.Label})
	cached := func(st *stats.Stats) Result {
		emit(Event{Kind: JobDone, Index: i, Label: j.Label, Cached: true, Cycles: st.Cycles})
		return Result{Job: j, Stats: st, Cached: true}
	}
	key := ""
	if r.Cache != nil {
		key = j.Key()
	}
	if key != "" {
		for {
			st, leader, wait := r.Cache.beginFlight(key)
			if st != nil {
				return cached(st)
			}
			if leader {
				break
			}
			select {
			case <-wait:
				// The leader finished (or failed); re-check the cache
				// and, on a miss, contend for the flight ourselves.
			case <-ctx.Done():
				err := ctx.Err()
				emit(Event{Kind: JobDone, Index: i, Label: j.Label, Err: err})
				return Result{Job: j, Err: err}
			}
		}
		defer r.Cache.finishFlight(key)
		// Flight leadership covers only the in-memory tier; an earlier
		// process may have persisted this point, so consult the disk
		// tier before simulating.
		if st, ok := r.Cache.Get(key); ok {
			return cached(st)
		}
	}
	// The slot gate bounds simulations in flight across overlapping Run
	// calls. Within a single Run the worker pool is never wider than
	// the budget, so this acquisition only ever blocks when several
	// batches share the Runner.
	if err := r.acquireSlot(ctx); err != nil {
		emit(Event{Kind: JobDone, Index: i, Label: j.Label, Err: err})
		return Result{Job: j, Err: err}
	}
	defer r.releaseSlot()
	start := time.Now()
	var (
		st       *stats.Stats
		err      error
		attempts int
	)
	for attempt := 0; ; attempt++ {
		attempts++
		st, err = r.attempt(ctx, i, attempt, j)
		if err == nil || attempt >= r.Retries || !IsTransient(err) || ctx.Err() != nil {
			break
		}
	}
	wall := time.Since(start)
	if err == nil && r.Cache != nil && key != "" {
		r.Cache.Put(key, st)
	}
	ev := Event{Kind: JobDone, Index: i, Label: j.Label, Err: err, Wall: wall, Attempts: attempts}
	if st != nil {
		ev.Cycles = st.Cycles
	}
	emit(ev)
	return Result{Job: j, Stats: st, Err: err, Wall: wall, Attempts: attempts}
}

// attempt performs one simulation attempt under the job's wall-clock
// budget, converting a panic into a *JobPanicError. The recover sits
// here — inside the worker's call into policy/engine code — so a
// panicking job surfaces as an ordinary failed Result instead of
// killing the pool.
func (r *Runner) attempt(ctx context.Context, index, attempt int, j Job) (st *stats.Stats, err error) {
	if wall := j.MaxWall; wall > 0 || r.Timeout > 0 {
		if wall <= 0 {
			wall = r.Timeout
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, wall)
		defer cancel()
	}
	defer func() {
		if v := recover(); v != nil {
			st = nil
			err = &JobPanicError{Label: j.Label, Index: index, Value: v, Stack: debug.Stack()}
		}
	}()
	opts := j.Opts
	if r.SelfCheck {
		opts.SelfCheck = true
	}
	run := func(c context.Context) (*stats.Stats, error) {
		switch {
		case j.Kernel != nil && j.Stream != nil:
			return nil, fmt.Errorf("runner: job %q sets both Kernel and Stream", j.Label)
		case j.Stream != nil:
			return sim.RunStreamOnce(c, j.Config, j.Policy, j.Stream, opts)
		default:
			return sim.RunOnce(c, j.Config, j.Policy, j.Kernel, opts)
		}
	}
	if r.Intercept != nil {
		return r.Intercept(ctx, index, attempt, j, run)
	}
	return run(ctx)
}
