package runner

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
)

// streamKernel builds a small deterministic kernel: each warp streams
// over private lines with the given reuse (mirrors internal/sim's test
// helper).
func streamKernel(name string, blocks, warpsPerBlock, linesPerWarp, touches int) *trace.Kernel {
	k := &trace.Kernel{Name: name}
	base := 0
	for b := 0; b < blocks; b++ {
		blk := &trace.Block{}
		for w := 0; w < warpsPerBlock; w++ {
			wt := &trace.WarpTrace{}
			for l := 0; l < linesPerWarp; l++ {
				for t := 0; t < touches; t++ {
					wt.Instrs = append(wt.Instrs,
						trace.NewLoad(uint32(l%8), []addr.Addr{addr.Addr((base + l) * 128)}))
				}
				wt.Instrs = append(wt.Instrs, trace.NewCompute(100, 4, 32))
			}
			base += linesPerWarp
			blk.Warps = append(blk.Warps, wt)
		}
		k.Blocks = append(k.Blocks, blk)
	}
	return k
}

// testJobs builds a batch covering every policy on two kernels.
func testJobs() []Job {
	k1 := streamKernel("a", 2, 2, 6, 2)
	k2 := streamKernel("b", 3, 1, 4, 3)
	var jobs []Job
	for _, k := range []*trace.Kernel{k1, k2} {
		for _, p := range policy.All() {
			jobs = append(jobs, Job{
				Label:  k.Name + " under " + p.String(),
				Config: config.Baseline(),
				Policy: p,
				Kernel: k,
			})
		}
	}
	return jobs
}

// TestOrderIndependence is the runner's key correctness property: the
// same batch at any worker count yields identical results in identical
// order.
func TestOrderIndependence(t *testing.T) {
	run := func(workers int) []Result {
		t.Helper()
		r := &Runner{Workers: workers}
		res, err := r.Run(context.Background(), testJobs())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	serial := run(1)
	for _, workers := range []int{2, 8} {
		parallel := run(workers)
		for i := range serial {
			if *serial[i].Stats != *parallel[i].Stats {
				t.Errorf("workers=%d job %d (%s): stats differ\nserial:   %+v\nparallel: %+v",
					workers, i, serial[i].Job.Label, serial[i].Stats, parallel[i].Stats)
			}
		}
	}
}

// TestCacheSecondBatchSimulatesNothing: resubmitting an identical batch
// against a shared cache must perform zero simulations.
func TestCacheSecondBatchSimulatesNothing(t *testing.T) {
	cache := NewCache()
	simulated := 0
	var mu sync.Mutex
	events := func(ev Event) {
		if ev.Kind == JobDone && !ev.Cached {
			mu.Lock()
			simulated++
			mu.Unlock()
		}
	}
	r := &Runner{Workers: 4, Cache: cache, Events: events}

	first, err := r.Run(context.Background(), testJobs())
	if err != nil {
		t.Fatal(err)
	}
	if simulated != len(first) {
		t.Fatalf("first batch simulated %d of %d jobs", simulated, len(first))
	}

	simulated = 0
	second, err := r.Run(context.Background(), testJobs())
	if err != nil {
		t.Fatal(err)
	}
	if simulated != 0 {
		t.Errorf("second batch simulated %d jobs, want 0 (all cached)", simulated)
	}
	for i := range first {
		if !second[i].Cached {
			t.Errorf("job %d not served from cache", i)
		}
		if *first[i].Stats != *second[i].Stats {
			t.Errorf("job %d: cached stats differ from simulated", i)
		}
	}
	if hits, _ := cache.Counters(); hits != uint64(len(first)) {
		t.Errorf("cache hits = %d, want %d", hits, len(first))
	}
}

// TestCachedResultsAreSnapshots: mutating a returned Stats must not
// poison later cache hits.
func TestCachedResultsAreSnapshots(t *testing.T) {
	cache := NewCache()
	r := &Runner{Workers: 1, Cache: cache}
	jobs := testJobs()[:1]
	first, err := r.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := *first[0].Stats
	first[0].Stats.L1DHits = 0xdead // corrupt the caller's copy

	second, err := r.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if *second[0].Stats != want {
		t.Error("cache served a corrupted entry: results alias cache memory")
	}
}

// TestDiskCachePersistsAcrossInstances simulates a fresh process by
// opening a second Cache over the same directory.
func TestDiskCachePersistsAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	c1, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs := testJobs()[:2]
	first, err := (&Runner{Workers: 2, Cache: c1}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	c2, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, err := (&Runner{Workers: 2, Cache: c2}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if !second[i].Cached {
			t.Errorf("job %d not served from the on-disk cache", i)
		}
		if *first[i].Stats != *second[i].Stats {
			t.Errorf("job %d: on-disk result differs from simulated", i)
		}
	}
}

// TestKeyStability pins the content-addressing semantics.
func TestKeyStability(t *testing.T) {
	mk := func() Job {
		return Job{
			Label:  "x",
			Config: config.Baseline(),
			Policy: config.PolicyDLP,
			Kernel: streamKernel("k", 1, 1, 4, 2),
		}
	}
	a, b := mk(), mk()
	if a.Key() != b.Key() {
		t.Error("identical jobs (distinct pointers) hash differently")
	}

	b.Label = "renamed"
	if a.Key() != b.Key() {
		t.Error("label leaked into the cache key")
	}

	c := mk()
	c.Policy = config.PolicyBaseline
	if a.Key() == c.Key() {
		t.Error("policy not part of the cache key")
	}

	d := mk()
	d.Config = config.L1D32KB()
	if a.Key() == d.Key() {
		t.Error("config not part of the cache key")
	}

	// Explicitly spelling the default options must hash like the zero
	// value (the key is built from canonical options)...
	e := mk()
	e.Opts = sim.Options{MaxCycles: 50_000_000, BackgroundFlitsPerKInsn: sim.Float(60), InjectionRate: 2}
	if a.Key() != e.Key() {
		t.Error("canonically-equal options hash differently")
	}
	// ...while a genuinely different option changes the key.
	f := mk()
	f.Opts = sim.Options{BackgroundFlitsPerKInsn: sim.Float(0)}
	if a.Key() == f.Key() {
		t.Error("disabled background traffic hashes like the default")
	}
}

// TestFailFast: one broken job aborts the batch with its label attached
// while earlier results remain usable.
func TestFailFast(t *testing.T) {
	jobs := testJobs()
	jobs = append(jobs, Job{
		Label:  "broken",
		Config: config.Baseline(),
		Policy: config.PolicyBaseline,
		Kernel: &trace.Kernel{Name: "empty"}, // fails validation
	})
	_, err := (&Runner{Workers: 2}).Run(context.Background(), jobs)
	if err == nil {
		t.Fatal("broken job did not fail the batch")
	}
	if want := `job "broken"`; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name the failing job", err)
	}
}

// TestCancellation: a cancelled context aborts the batch promptly and
// surfaces context.Canceled.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := (&Runner{Workers: 2}).Run(ctx, testJobs())
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestEventCounters: the queued/running/done snapshots must be
// internally consistent and finish fully drained.
func TestEventCounters(t *testing.T) {
	jobs := testJobs()
	var (
		mu    sync.Mutex
		last  Event
		fired = map[EventKind]int{}
	)
	events := func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		fired[ev.Kind]++
		if ev.Queued+ev.Running+ev.Done != len(jobs) {
			t.Errorf("counters do not sum to batch size: %+v", ev)
		}
		last = ev
	}
	if _, err := (&Runner{Workers: 4, Events: events}).Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if fired[JobQueued] != len(jobs) || fired[JobStarted] != len(jobs) || fired[JobDone] != len(jobs) {
		t.Errorf("event counts = %v, want %d of each kind", fired, len(jobs))
	}
	if last.Done != len(jobs) || last.Queued != 0 || last.Running != 0 {
		t.Errorf("final snapshot not drained: %+v", last)
	}
}

// TestZeroJobs: an empty batch is a no-op, not a hang.
func TestZeroJobs(t *testing.T) {
	res, err := (&Runner{}).Run(context.Background(), nil)
	if err != nil || len(res) != 0 {
		t.Errorf("empty batch: res=%v err=%v", res, err)
	}
}
