package runner

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/metrics"
)

// JobTracer converts the runner's Events stream into a Chrome
// trace_event timeline (metrics.Trace): one thread track per batch
// slot, a "queued" span from acceptance to pickup, a "run" (or
// "cached") span from pickup to completion annotated with cycles,
// attempts and wall time, instant markers for failures and retries,
// and counter tracks for the batch's queued/running/done totals and —
// when a Cache is attached — its hit/miss counters.
//
// Wire it up by wrapping the runner's Events callback:
//
//	tr := runner.NewJobTracer(cache) // cache may be nil
//	r.Events = tr.Wrap(r.Events)
//	... run batches ...
//	tr.WriteJSON(f) // or tr.Trace().WriteJSON
//
// One tracer may observe several sequential batches (paperfigs runs
// two suites; ablate four sweeps): timestamps are wall-clock
// microseconds since the tracer was created, so the batches appear one
// after another on a single timeline.
type JobTracer struct {
	mu    sync.Mutex
	tr    *metrics.Trace
	cache *Cache
	start time.Time
	live  map[int]*jobSpan
	batch int
}

type jobSpan struct {
	label    string
	queuedAt float64
	startAt  float64
	started  bool
}

// tracePid is the single process track all runner events live on.
const tracePid = 1

// NewJobTracer returns a tracer; cache, when non-nil, adds a counter
// track sampled from Cache.Counters at every job completion.
func NewJobTracer(cache *Cache) *JobTracer {
	t := &JobTracer{
		tr:    metrics.NewTrace(),
		cache: cache,
		start: time.Now(),
		live:  make(map[int]*jobSpan),
	}
	t.tr.ProcessName(tracePid, "simulation runner")
	return t
}

// now returns microseconds since tracer creation.
func (t *JobTracer) now() float64 {
	return float64(time.Since(t.start)) / float64(time.Microsecond)
}

// Wrap returns an Events callback that records every event into the
// trace and then forwards to next (which may be nil). The runner
// serializes Events callbacks, so Wrap's callback never races with
// itself; the tracer's own lock covers multi-runner sharing.
func (t *JobTracer) Wrap(next Events) Events {
	return func(ev Event) {
		t.observe(ev)
		if next != nil {
			next(ev)
		}
	}
}

func (t *JobTracer) observe(ev Event) {
	ts := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	// tid is the slot within the current batch, offset so sequential
	// batches get distinct tracks instead of overwriting each other's
	// thread names.
	switch ev.Kind {
	case JobQueued:
		if sp, ok := t.live[ev.Index]; ok && sp.started {
			// A queued event for a slot with an unfinished span means a
			// new batch began while we thought one was live — emit what
			// we have so the span is not lost.
			t.flushLocked(ev.Index, sp, ts)
		}
		if ev.Index == 0 && len(t.live) == 0 {
			t.batch++
		}
		t.live[ev.Index] = &jobSpan{label: ev.Label, queuedAt: ts}
		t.tr.ThreadName(tracePid, t.tid(ev.Index), fmt.Sprintf("batch %d slot %d", t.batch, ev.Index))
	case JobStarted:
		sp, ok := t.live[ev.Index]
		if !ok {
			sp = &jobSpan{label: ev.Label, queuedAt: ts}
			t.live[ev.Index] = sp
		}
		sp.started = true
		sp.startAt = ts
		t.tr.Complete(sp.label, "queued", tracePid, t.tid(ev.Index), sp.queuedAt, ts-sp.queuedAt, nil)
	case JobDone:
		sp, ok := t.live[ev.Index]
		if !ok {
			sp = &jobSpan{label: ev.Label, queuedAt: ts, startAt: ts, started: true}
		}
		cat := "run"
		if ev.Cached {
			cat = "cached"
		}
		args := map[string]any{
			"cycles":   ev.Cycles,
			"attempts": ev.Attempts,
			"wall_ms":  float64(ev.Wall) / float64(time.Millisecond),
			"cached":   ev.Cached,
		}
		if ev.Err != nil {
			args["error"] = ev.Err.Error()
		}
		t.tr.Complete(sp.label, cat, tracePid, t.tid(ev.Index), sp.startAt, ts-sp.startAt, args)
		if ev.Err != nil {
			t.tr.Instant("FAILED "+sp.label, "failure", tracePid, t.tid(ev.Index), ts,
				map[string]any{"error": ev.Err.Error()})
		}
		if ev.Attempts > 1 {
			t.tr.Instant(fmt.Sprintf("retried x%d %s", ev.Attempts-1, sp.label), "retry",
				tracePid, t.tid(ev.Index), ts, nil)
		}
		delete(t.live, ev.Index)
		if t.cache != nil {
			hits, misses := t.cache.Counters()
			t.tr.Counter("cache", tracePid, ts, map[string]any{"hits": hits, "misses": misses})
		}
	}
	// The batch-progress counter track, from the event's own snapshot.
	t.tr.Counter("jobs", tracePid, ts, map[string]any{
		"queued": ev.Queued, "running": ev.Running, "done": ev.Done,
	})
}

// tid maps a batch slot to its trace thread id (1-based).
func (t *JobTracer) tid(index int) int { return index + 1 }

// flushLocked closes a dangling span at ts. Caller holds t.mu.
func (t *JobTracer) flushLocked(index int, sp *jobSpan, ts float64) {
	t.tr.Complete(sp.label, "run", tracePid, t.tid(index), sp.startAt, ts-sp.startAt,
		map[string]any{"truncated": true})
	delete(t.live, index)
}

// Trace exposes the accumulated trace.
func (t *JobTracer) Trace() *metrics.Trace { return t.tr }

// WriteJSON serializes the trace as Perfetto-loadable trace_event JSON.
func (t *JobTracer) WriteJSON(w io.Writer) error {
	return t.tr.WriteJSON(w)
}
