package runner

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// TestJobTracerTimeline runs a real batch (twice, through a shared
// cache, so cached spans appear) and validates the exported trace:
// every job contributes a queued span and a run/cached span, counter
// tracks exist, and the document parses under the same validation the
// CI smoke applies.
func TestJobTracerTimeline(t *testing.T) {
	jobs := testJobs()
	cache := NewCache()
	tr := NewJobTracer(cache)
	r := &Runner{Workers: 2, Cache: cache, Events: tr.Wrap(nil)}
	if _, err := r.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := metrics.ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	var queued, run, cached, counters int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "X" && ev.Cat == "queued":
			queued++
		case ev.Ph == "X" && ev.Cat == "run":
			run++
		case ev.Ph == "X" && ev.Cat == "cached":
			cached++
		case ev.Ph == "C":
			counters++
		}
	}
	n := len(jobs)
	if queued != 2*n {
		t.Errorf("queued spans = %d, want %d", queued, 2*n)
	}
	if run != n {
		t.Errorf("run spans = %d, want %d (first batch simulates everything)", run, n)
	}
	if cached != n {
		t.Errorf("cached spans = %d, want %d (second batch is fully cached)", cached, n)
	}
	if counters == 0 {
		t.Error("no counter events recorded")
	}
	// The cache counter track must reflect the second batch's hits.
	if !strings.Contains(buf.String(), `"cache"`) {
		t.Error("cache counter track missing")
	}
}

// TestJobTracerFailuresAndRetries checks the failure instant and retry
// marker paths using the fault-injection seam: job 0 fails permanently,
// job 1 succeeds after one transient failure, job 2 is clean.
func TestJobTracerFailuresAndRetries(t *testing.T) {
	jobs := testJobs()[:3]
	tr := NewJobTracer(nil)
	permanent := errors.New("boom")
	r := &Runner{
		Workers:   1,
		KeepGoing: true,
		Retries:   2,
		Events:    tr.Wrap(nil),
		Intercept: func(ctx context.Context, index, attempt int, job Job, run SimFunc) (*stats.Stats, error) {
			switch {
			case index == 0:
				return nil, permanent
			case index == 1 && attempt == 0:
				return nil, Transient(errors.New("flaky"))
			}
			return run(ctx)
		},
	}
	if _, err := r.Run(context.Background(), jobs); err == nil {
		t.Fatal("expected batch error")
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := metrics.ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var failed, retried int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "i" && ev.Cat == "failure":
			failed++
		case ev.Ph == "i" && ev.Cat == "retry":
			retried++
		}
	}
	if failed != 1 {
		t.Errorf("failure markers = %d, want 1", failed)
	}
	if retried != 1 {
		t.Errorf("retry markers = %d, want 1", retried)
	}
}

// TestRunnerMetricsPlumbing proves Runner.Metrics reaches the engine:
// every simulated job emits a series named by its label, while cached
// jobs emit nothing new.
func TestRunnerMetricsPlumbing(t *testing.T) {
	jobs := testJobs()
	sink := metrics.NewMemorySink()
	cache := NewCache()
	r := &Runner{Workers: 2, Cache: cache, Metrics: sink, MetricsEvery: 64}
	if _, err := r.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	set := sink.Snapshot()
	for _, j := range jobs {
		s := set.Series[j.Label]
		if s == nil {
			t.Fatalf("no series for %q", j.Label)
		}
		if len(s.Rows) == 0 {
			t.Fatalf("series %q has no rows", j.Label)
		}
	}
	// Second, fully cached batch: no simulation, so no new rows.
	before := make(map[string]int)
	for l, s := range set.Series {
		before[l] = len(s.Rows)
	}
	if _, err := r.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	for l, s := range sink.Snapshot().Series {
		if len(s.Rows) != before[l] {
			t.Fatalf("cached batch added rows to %q (%d -> %d)", l, before[l], len(s.Rows))
		}
	}
}
