package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/conform"
)

// maxBodyBytes bounds a job submission body; corpus specs are a few KB,
// fuzzer-grade full-config reproducers tens of KB.
const maxBodyBytes = 1 << 20

// JobView is the job resource rendered by the HTTP API. Stats carries
// the canonically normalized counters (the same bytes as a conformance
// case's expected_stats.json) once the job is done.
type JobView struct {
	ID       string          `json:"id"`
	Tenant   string          `json:"tenant"`
	Status   Status          `json:"status"`
	Cached   bool            `json:"cached,omitempty"`
	Cycles   uint64          `json:"cycles,omitempty"`
	WallMS   int64           `json:"wall_ms,omitempty"`
	Attempts int             `json:"attempts,omitempty"`
	Error    *ErrorInfo      `json:"error,omitempty"`
	Stats    json.RawMessage `json:"stats,omitempty"`
}

// view snapshots the job as its API resource. includeStats controls
// whether the (potentially large) normalized counters ride along.
func (j *jobState) view(includeStats bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:       j.id,
		Tenant:   j.tenant,
		Status:   j.status,
		Cached:   j.cached,
		Cycles:   j.cycles,
		WallMS:   j.wall.Milliseconds(),
		Attempts: j.attempts,
	}
	if j.err != nil {
		v.Error = classify(j.err)
	}
	if includeStats && j.status == StatusDone {
		v.Stats = json.RawMessage(j.stats)
	}
	return v
}

// StatsView is the GET /stats payload.
type StatsView struct {
	UptimeMS  int64          `json:"uptime_ms"`
	Draining  bool           `json:"draining"`
	Workers   int            `json:"workers"`
	Submitted int64          `json:"submitted"`
	Completed int64          `json:"completed"`
	Failed    int64          `json:"failed"`
	Cancelled int64          `json:"cancelled"`
	Rejected  int64          `json:"rejected"`
	Running   int            `json:"running"`
	Queued    int            `json:"queued"`
	Tenants   map[string]int `json:"tenants,omitempty"` // pending per tenant
	Cache     CacheView      `json:"cache"`
}

// CacheView is the shared result cache's counter block inside /stats.
type CacheView struct {
	Entries     int    `json:"entries"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Coalesced   uint64 `json:"coalesced"`
	Quarantined uint64 `json:"quarantined"`
}

// Handler returns the server's HTTP API:
//
//	POST   /jobs          submit (body: conform Spec JSON; X-Tenant
//	                      header names the tenant; ?wait=1 blocks for
//	                      the result — disconnecting cancels the job)
//	GET    /jobs/{id}         job status (+stats when done)
//	GET    /jobs/{id}/stats   normalized stats, verbatim corpus bytes
//	GET    /jobs/{id}/events  progress stream (SSE; ?format=jsonl)
//	DELETE /jobs/{id}         cancel
//	GET    /stats             server + cache counters
//	GET    /healthz           liveness (503 while draining)
//	POST   /shutdown          graceful drain, responds once drained
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/stats", s.handleJobStats)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /shutdown", s.handleShutdown)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, info ErrorInfo) {
	writeJSON(w, status, struct {
		Error ErrorInfo `json:"error"`
	}{info})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrorInfo{Type: "spec", Message: fmt.Sprintf("reading body: %v", err)})
		return
	}
	sp, err := conform.UnmarshalSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrorInfo{Type: "spec", Message: err.Error()})
		return
	}
	wait := r.URL.Query().Get("wait") == "1"
	js, serr := s.submit(sp, r.Header.Get("X-Tenant"), wait)
	if serr != nil {
		if serr.retryAfter > 0 {
			secs := int(serr.retryAfter.Round(time.Second) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		writeError(w, serr.status, serr.info)
		return
	}
	if !wait {
		writeJSON(w, http.StatusAccepted, js.view(false))
		return
	}

	// Synchronous mode: hold the connection open until the job settles.
	// An abandoned connection is a cancellation — the single-flight
	// table makes this safe for other tenants sharing the same content
	// address (a waiter retakes the flight).
	js.attach()
	defer js.detach()
	select {
	case <-js.done:
		writeJSON(w, waitStatusCode(js), js.view(true))
	case <-r.Context().Done():
		// Client gone; detach (deferred) cancels the job.
	}
}

// waitStatusCode maps a settled job to the synchronous submit's HTTP
// status: 200 done, 504 deadline (the partial-failure outcome), 500
// other failures, 409 cancelled from elsewhere while we waited.
func waitStatusCode(js *jobState) int {
	js.mu.Lock()
	defer js.mu.Unlock()
	switch js.status {
	case StatusDone:
		return http.StatusOK
	case StatusCancelled:
		return http.StatusConflict
	default:
		if js.err != nil && classify(js.err).Type == "deadline" {
			return http.StatusGatewayTimeout
		}
		return http.StatusInternalServerError
	}
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *jobState {
	s.mu.Lock()
	js := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if js == nil {
		writeError(w, http.StatusNotFound, ErrorInfo{Type: "unknown-job", Message: fmt.Sprintf("no job %q", r.PathValue("id"))})
	}
	return js
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if js := s.lookup(w, r); js != nil {
		writeJSON(w, http.StatusOK, js.view(true))
	}
}

// handleJobStats serves the done job's normalized stats verbatim: the
// exact bytes a conformance case commits as expected_stats.json, so
// `cmp` against the corpus is a meaningful end-to-end check.
func (s *Server) handleJobStats(w http.ResponseWriter, r *http.Request) {
	js := s.lookup(w, r)
	if js == nil {
		return
	}
	js.mu.Lock()
	status, stats := js.status, js.stats
	js.mu.Unlock()
	if status != StatusDone {
		writeError(w, http.StatusConflict, ErrorInfo{Type: "not-done", Message: fmt.Sprintf("job %s is %s", js.id, status)})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(stats)
}

// handleJobEvents streams the job's progress log. Server-Sent Events by
// default; ?format=jsonl switches to one JSON object per line. The
// stream replays history first, then follows live until the terminal
// event, so a subscriber attaching at any point sees the full
// lifecycle.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	js := s.lookup(w, r)
	if js == nil {
		return
	}
	jsonl := r.URL.Query().Get("format") == "jsonl"
	if jsonl {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}
	flusher, _ := w.(http.Flusher)

	next := 0
	for {
		js.mu.Lock()
		evs := js.events[next:]
		next = len(js.events)
		change := js.change
		terminal := js.status.Terminal()
		js.mu.Unlock()

		for _, ev := range evs {
			b, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if jsonl {
				fmt.Fprintf(w, "%s\n", b)
			} else {
				fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, b)
			}
		}
		if len(evs) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal && next > 0 {
			return
		}
		select {
		case <-change:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	js := s.lookup(w, r)
	if js == nil {
		return
	}
	s.cancelJob(js)
	// A running job settles through its worker; report the resource as
	// it stands once the cancellation has fully landed (bounded: the
	// engine observes cancellation within a few thousand cycles).
	select {
	case <-js.done:
	case <-r.Context().Done():
	}
	writeJSON(w, http.StatusOK, js.view(false))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.Counters()
	view := StatsView{
		Cache: CacheView{
			Entries:     s.cache.Len(),
			Hits:        hits,
			Misses:      misses,
			Coalesced:   s.cache.Coalesced(),
			Quarantined: s.cache.Quarantined(),
		},
	}
	s.mu.Lock()
	view.UptimeMS = time.Since(s.start).Milliseconds()
	view.Draining = s.draining
	view.Workers = s.cfg.workers()
	view.Submitted = s.submitted
	view.Completed = s.completed
	view.Failed = s.failed
	view.Cancelled = s.cancelled
	view.Rejected = s.rejected
	view.Running = s.running
	view.Queued = s.queued
	if s.queued > 0 {
		view.Tenants = make(map[string]int)
		for tenant, q := range s.queues {
			if len(q) > 0 {
				view.Tenants[tenant] = len(q)
			}
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleShutdown starts a graceful drain and responds once it has
// completed; the owning process watches Done() to exit afterwards.
func (s *Server) handleShutdown(w http.ResponseWriter, r *http.Request) {
	go s.Shutdown(nil)
	select {
	case <-s.done:
		writeJSON(w, http.StatusOK, struct {
			Drained bool `json:"drained"`
		}{true})
	case <-r.Context().Done():
	}
}
