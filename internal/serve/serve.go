// Package serve wraps the experiment runner in a persistent,
// multi-tenant simulation job server: the "simulation as a service"
// layer in front of internal/runner.
//
// Clients POST jobs in the conformance corpus's Spec vocabulary (policy
// + sparse config overlay + workload reference — the same config.json
// bytes committed under testdata/conform/ are valid request bodies) and
// get back a job resource that can be polled, streamed (SSE / JSONL
// derived from the runner's Events stream), cancelled, and fetched as
// canonically normalized stats.
//
// The server owns one runner.Runner and one content-addressed Cache
// shared by every tenant, so the execution layer's concurrency
// guarantees become the service's scaling story: the runner's slot gate
// bounds in-flight simulations to Workers across all tenants, the
// cache's single-flight table coalesces identical in-flight jobs into
// one simulation, and the disk tier's atomic entry writes let several
// server processes share a cache directory.
//
// Admission is a fair FIFO per tenant: a dispatcher hands worker slots
// to tenants round-robin, so one tenant flooding its queue delays only
// itself — another tenant's first job runs as soon as a slot frees. The
// per-tenant queue is bounded; submissions beyond the bound are
// rejected with 429 and a Retry-After hint rather than queued without
// limit (backpressure, not collapse).
//
// Cancellation is first-class: every job runs under its own context
// (derived from the server's), a synchronous submitter disconnecting
// cancels its job mid-flight (surfacing as the runner's *CancelError),
// DELETE cancels by id, and shutdown drains — admission stops, queued
// and running jobs finish (or are cancelled at the drain deadline), and
// only then does Done() fire.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/conform"
	"repro/internal/runner"
	"repro/internal/sim"
)

// Config tunes a Server. The zero value serves with GOMAXPROCS workers,
// serial simulations, an in-memory cache, a 64-deep per-tenant queue
// and no per-job deadline.
type Config struct {
	// Workers bounds simulations in flight across all tenants (the
	// runner's -j); <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Cores is the per-simulation phase-parallelism cap. A job asking
	// for more (via its spec's cores list) is clamped; results are
	// bit-identical at any value, so clamping is invisible in output.
	// <= 0 means 1: with Workers saturating the host, extra shards per
	// simulation would only thrash the phase barriers.
	Cores int
	// QueueDepth bounds each tenant's pending-job FIFO; submissions
	// beyond it get 429. <= 0 means 64.
	QueueDepth int
	// Cache is the shared result cache; nil means a fresh in-memory
	// cache. Point it at runner.OpenDiskCache to persist results across
	// restarts and share them between server processes.
	Cache *runner.Cache
	// Timeout is the per-job wall-clock budget (runner.Runner.Timeout);
	// 0 means none.
	Timeout time.Duration
	// DrainTimeout bounds graceful shutdown: jobs still queued or
	// running past it are cancelled. <= 0 means 30s.
	DrainTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses; <= 0 means 1s.
	RetryAfter time.Duration
	// History bounds how many finished job records are kept for
	// GET /jobs/{id}; the oldest are evicted beyond it. <= 0 means 1024.
	History int
	// SelfCheck enables the engine's sampled invariant sweeps on every
	// job (execution policy — results are unchanged).
	SelfCheck bool
	// Retries is the runner's transient-retry budget per job.
	Retries int
	// Intercept, when non-nil, wraps every simulation attempt — the
	// fault-injection seam, passed through to the runner.
	Intercept runner.Intercept
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 64
}

func (c Config) drainTimeout() time.Duration {
	if c.DrainTimeout > 0 {
		return c.DrainTimeout
	}
	return 30 * time.Second
}

func (c Config) retryAfter() time.Duration {
	if c.RetryAfter > 0 {
		return c.RetryAfter
	}
	return time.Second
}

func (c Config) history() int {
	if c.History > 0 {
		return c.History
	}
	return 1024
}

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// JobEvent is one entry of a job's progress log, streamed over SSE /
// JSONL. Kinds: "queued", "started" (a runner worker picked the job
// up), and one terminal "done" / "failed" / "cancelled".
type JobEvent struct {
	Seq    int        `json:"seq"`
	Kind   string     `json:"kind"`
	TMS    int64      `json:"t_ms"` // milliseconds since submission
	Cached bool       `json:"cached,omitempty"`
	Cycles uint64     `json:"cycles,omitempty"`
	Error  *ErrorInfo `json:"error,omitempty"`
}

// ErrorInfo is the typed-error surface of the HTTP API: a stable
// machine-readable type plus the human-readable chain.
type ErrorInfo struct {
	Type    string `json:"type"`
	Message string `json:"message"`
}

// jobState is one submitted job. Its mutex guards the mutable fields;
// the server's mutex guards queue membership. Lock ordering: server
// lock before job lock, never the reverse.
type jobState struct {
	id        string
	tenant    string
	label     string
	key       string // content address ("" = uncacheable)
	rjob      runner.Job
	submitted time.Time

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	status   Status
	events   []JobEvent
	change   chan struct{} // closed and replaced on every append
	stats    []byte        // canonically normalized stats (done only)
	err      error
	cached   bool
	wall     time.Duration
	attempts int
	cycles   uint64
	waiters  int  // attached synchronous submitters
	syncOwn  bool // cancel when the last waiter detaches pre-completion
	done     chan struct{}
}

func (j *jobState) appendEvent(kind string, mut func(*JobEvent)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendEventLocked(kind, mut)
}

func (j *jobState) appendEventLocked(kind string, mut func(*JobEvent)) {
	ev := JobEvent{
		Seq:  len(j.events),
		Kind: kind,
		TMS:  time.Since(j.submitted).Milliseconds(),
	}
	if mut != nil {
		mut(&ev)
	}
	j.events = append(j.events, ev)
	close(j.change)
	j.change = make(chan struct{})
}

// finishLocked moves the job to a terminal state exactly once.
func (j *jobState) finishLocked(st Status, kind string, mut func(*JobEvent)) {
	if j.status.Terminal() {
		return
	}
	j.status = st
	j.appendEventLocked(kind, mut)
	close(j.done)
}

func (j *jobState) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status.Terminal()
}

// attach registers a synchronous waiter; detach deregisters it and, if
// it was the last one on a sync-owned, still-unfinished job, cancels
// the job — the "client disconnected mid-flight" path.
func (j *jobState) attach() {
	j.mu.Lock()
	j.waiters++
	j.mu.Unlock()
}

func (j *jobState) detach() {
	j.mu.Lock()
	j.waiters--
	abandon := j.syncOwn && j.waiters == 0 && !j.status.Terminal()
	j.mu.Unlock()
	if abandon {
		j.cancel()
	}
}

// Server is the simulation job server. Create with NewServer; serve its
// Handler; stop with Shutdown (graceful) or Close (immediate).
type Server struct {
	cfg    Config
	runner *runner.Runner
	cache  *runner.Cache
	start  time.Time

	ctx  context.Context // server lifetime; parent of every job context
	stop context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*jobState
	queues   map[string][]*jobState
	ring     []string // tenant round-robin order (first-submission order)
	rr       int
	queued   int
	running  int
	draining bool
	seq      int64
	history  []string // finished job ids, oldest first

	submitted, completed, failed, cancelled, rejected, deduped int64

	wg       sync.WaitGroup
	done     chan struct{} // closed when shutdown drain completes
	shutOnce sync.Once
}

// NewServer builds the server and starts its worker pool.
func NewServer(cfg Config) *Server {
	cache := cfg.Cache
	if cache == nil {
		cache = runner.NewCache()
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:   cfg,
		cache: cache,
		runner: &runner.Runner{
			Workers:   cfg.workers(),
			Cache:     cache,
			Timeout:   cfg.Timeout,
			SelfCheck: cfg.SelfCheck,
			Retries:   cfg.Retries,
			Intercept: cfg.Intercept,
		},
		start:  time.Now(),
		ctx:    ctx,
		stop:   stop,
		jobs:   make(map[string]*jobState),
		queues: make(map[string][]*jobState),
		done:   make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.workers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Cache exposes the shared result cache (for wiring into a tracer or
// reading counters).
func (s *Server) Cache() *runner.Cache { return s.cache }

// Done fires once a graceful shutdown (POST /shutdown or Shutdown) has
// fully drained; a main loop selects on it to exit.
func (s *Server) Done() <-chan struct{} { return s.done }

// submit validates and enqueues one job. It returns the job, or a
// submitError carrying the HTTP status to respond with.
func (s *Server) submit(sp *conform.Spec, tenant string, syncOwn bool) (*jobState, *submitError) {
	cfg, pol, kernel, err := sp.Build()
	if err != nil {
		return nil, &submitError{status: 400, info: ErrorInfo{Type: "spec", Message: err.Error()}}
	}
	cores := 1
	if len(sp.Cores) > 0 {
		cores = sp.Cores[0]
	}
	if maxCores := s.cfg.Cores; maxCores >= 1 && cores > maxCores {
		// Identical results at any core count; only the schedule changes.
		cores = maxCores
	}
	if tenant == "" {
		tenant = "default"
	}
	rjob := runner.Job{
		Config: cfg,
		Policy: pol,
		Kernel: kernel,
		Opts:   sim.Options{MaxCycles: sp.MaxCycles, Cores: cores},
	}

	s.mu.Lock()
	if s.draining || s.ctx.Err() != nil {
		s.mu.Unlock()
		return nil, &submitError{status: 503, info: ErrorInfo{Type: "draining", Message: "server is shutting down"}}
	}
	if len(s.queues[tenant]) >= s.cfg.queueDepth() {
		s.rejected++
		s.mu.Unlock()
		return nil, &submitError{
			status:     429,
			retryAfter: s.cfg.retryAfter(),
			info: ErrorInfo{Type: "backpressure",
				Message: fmt.Sprintf("tenant %q queue is full (%d pending)", tenant, s.cfg.queueDepth())},
		}
	}
	s.seq++
	id := fmt.Sprintf("j%d", s.seq)
	ctx, cancel := context.WithCancel(s.ctx)
	js := &jobState{
		id:        id,
		tenant:    tenant,
		label:     fmt.Sprintf("%s %s %s", id, tenant, describe(sp)),
		submitted: time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		status:    StatusQueued,
		change:    make(chan struct{}),
		done:      make(chan struct{}),
		syncOwn:   syncOwn,
	}
	rjob.Label = js.label
	js.rjob = rjob
	js.key = rjob.Key()
	s.jobs[id] = js
	if _, seen := s.queues[tenant]; !seen {
		s.ring = append(s.ring, tenant)
	}
	s.queues[tenant] = append(s.queues[tenant], js)
	s.queued++
	s.submitted++
	s.cond.Broadcast()
	s.mu.Unlock()

	js.appendEvent("queued", nil)
	return js, nil
}

// describe renders a spec's workload + policy for job labels.
func describe(sp *conform.Spec) string {
	switch {
	case sp.Workload.App != "":
		return fmt.Sprintf("%s under %s", sp.Workload.App, sp.Policy)
	case sp.Workload.Synth != nil:
		return fmt.Sprintf("synth(seed=%d) under %s", sp.Workload.Synth.Seed, sp.Policy)
	default:
		return string(sp.Policy)
	}
}

type submitError struct {
	status     int
	retryAfter time.Duration
	info       ErrorInfo
}

// worker is one dispatch loop: claim the next job fairly, execute it,
// repeat until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		js := s.next()
		if js == nil {
			return
		}
		s.execute(js)
	}
}

// next pops the next runnable job, round-robin across tenants, FIFO
// within one. It blocks while the queues are empty and returns nil once
// the server is draining (and empty) or stopped.
func (s *Server) next() *jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.ctx.Err() != nil {
			return nil
		}
		for n := 0; n < len(s.ring); n++ {
			idx := (s.rr + n) % len(s.ring)
			tenant := s.ring[idx]
			for len(s.queues[tenant]) > 0 {
				js := s.queues[tenant][0]
				s.queues[tenant] = s.queues[tenant][1:]
				s.queued--
				if js.terminal() {
					continue // cancelled while queued
				}
				s.rr = (idx + 1) % len(s.ring)
				s.running++
				return js
			}
		}
		if s.draining {
			return nil
		}
		s.cond.Wait()
	}
}

// execute runs one claimed job through the shared runner and records
// its outcome.
func (s *Server) execute(js *jobState) {
	results, err := s.runner.RunEvents(js.ctx, []runner.Job{js.rjob}, func(ev runner.Event) {
		if ev.Kind == runner.JobStarted {
			js.mu.Lock()
			if !js.status.Terminal() {
				js.status = StatusRunning
				js.appendEventLocked("started", nil)
			}
			js.mu.Unlock()
		}
	})
	s.finalize(js, results, err)

	s.mu.Lock()
	s.running--
	s.cond.Broadcast() // wakes the drain waiter
	s.mu.Unlock()
}

// finalize records a terminal state from the runner's verdict.
func (s *Server) finalize(js *jobState, results []runner.Result, err error) {
	outcome := StatusDone
	var info *ErrorInfo
	var norm []byte

	var res runner.Result
	if len(results) == 1 {
		res = results[0]
	}
	if err == nil {
		if norm, err = conform.Normalize(res.Stats); err != nil {
			err = fmt.Errorf("normalizing stats: %w", err)
		}
	}
	if err != nil {
		info = classify(err)
		if info.Type == "cancelled" {
			outcome = StatusCancelled
		} else {
			outcome = StatusFailed
		}
	}

	js.mu.Lock()
	transitioned := !js.status.Terminal()
	if transitioned {
		js.err = err
		js.stats = norm
		js.cached = res.Cached
		js.wall = res.Wall
		js.attempts = res.Attempts
		if res.Stats != nil {
			js.cycles = res.Stats.Cycles
		}
		kind := map[Status]string{StatusDone: "done", StatusFailed: "failed", StatusCancelled: "cancelled"}[outcome]
		js.finishLocked(outcome, kind, func(ev *JobEvent) {
			ev.Cached = res.Cached
			ev.Cycles = js.cycles
			ev.Error = info
		})
	}
	js.mu.Unlock()
	if !transitioned {
		return // cancelled while queued: already counted and retired
	}

	s.mu.Lock()
	switch outcome {
	case StatusDone:
		s.completed++
		if res.Cached {
			s.deduped++
		}
	case StatusFailed:
		s.failed++
	case StatusCancelled:
		s.cancelled++
	}
	s.retireLocked(js.id)
	s.mu.Unlock()
}

// retireLocked records a finished job in the bounded history, evicting
// the oldest finished records beyond the bound so a long-running server
// does not accumulate every job it ever ran.
func (s *Server) retireLocked(id string) {
	s.history = append(s.history, id)
	for len(s.history) > s.cfg.history() {
		evict := s.history[0]
		s.history = s.history[1:]
		delete(s.jobs, evict)
	}
}

// cancelJob cancels a job by id: a queued job is finalized immediately,
// a running one is interrupted through its context and finalized by its
// worker.
func (s *Server) cancelJob(js *jobState) {
	js.cancel()
	js.mu.Lock()
	wasQueued := js.status == StatusQueued
	if wasQueued {
		js.finishLocked(StatusCancelled, "cancelled", nil)
	}
	js.mu.Unlock()
	if wasQueued {
		s.mu.Lock()
		s.cancelled++
		s.retireLocked(js.id)
		s.mu.Unlock()
	}
}

// Shutdown drains the server: admission stops immediately, queued and
// running jobs get until the configured DrainTimeout (bounded further
// by ctx) to finish, then stragglers are cancelled. It is idempotent;
// Done() closes once the first call completes.
func (s *Server) Shutdown(ctx context.Context) {
	s.shutOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.cond.Broadcast()
		s.mu.Unlock()

		deadline := time.AfterFunc(s.cfg.drainTimeout(), s.abort)
		defer deadline.Stop()
		var stopOnCtx func() // cancels the ctx watcher
		if ctx != nil {
			watch, cancel := context.WithCancel(ctx)
			stopOnCtx = cancel
			go func() {
				<-watch.Done()
				if ctx.Err() != nil {
					s.abort()
				}
			}()
		}

		// Drain: still-queued jobs keep being claimed by the workers
		// while draining; the abort paths above cancel every remaining
		// job (running work collapses into *CancelError within a few
		// thousand simulated cycles), so this wait always terminates.
		s.mu.Lock()
		for s.queued > 0 || s.running > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
		s.stop() // workers parked in next() observe ctx.Err and exit
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
		s.wg.Wait()
		if stopOnCtx != nil {
			stopOnCtx()
		}
		close(s.done)
	})
	<-s.done
}

// abort hard-stops execution: the server context dies (cancelling every
// running job) and every still-queued job is flushed and finalized as
// cancelled so the drain accounting reaches zero.
func (s *Server) abort() {
	s.stop()
	s.mu.Lock()
	var stranded []*jobState
	for tenant, q := range s.queues {
		stranded = append(stranded, q...)
		s.queues[tenant] = nil
	}
	s.queued = 0
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, js := range stranded {
		js.cancel()
		js.mu.Lock()
		transitioned := !js.status.Terminal()
		if transitioned {
			js.finishLocked(StatusCancelled, "cancelled", nil)
		}
		js.mu.Unlock()
		if transitioned {
			s.mu.Lock()
			s.cancelled++
			s.retireLocked(js.id)
			s.mu.Unlock()
		}
	}
}

// Close shuts down immediately: every job is cancelled and the drain
// completes as soon as the workers observe it.
func (s *Server) Close() {
	s.abort()
	s.Shutdown(nil)
}

// classify maps an execution error to the API's stable error types:
// "panic" (recovered worker panic), "deadline" (per-job wall budget
// exceeded — the partial-failure outcome), "cancelled" (client
// disconnect, DELETE, or server shutdown), "spec" (the request never
// became a runnable point), "sim" (everything else: launch errors,
// invariant violations, engine failures).
func classify(err error) *ErrorInfo {
	info := &ErrorInfo{Type: "sim", Message: err.Error()}
	var jp *runner.JobPanicError
	var ce *runner.CancelError
	switch {
	case errors.As(err, &jp):
		info.Type = "panic"
	case errors.Is(err, context.DeadlineExceeded):
		info.Type = "deadline"
	case errors.As(err, &ce) && errors.Is(ce.Err, context.DeadlineExceeded):
		info.Type = "deadline"
	case errors.Is(err, context.Canceled):
		info.Type = "cancelled"
	}
	return info
}
