package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/conform"
	"repro/internal/faultinject"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// testSpec builds a small synth-workload spec; specs sharing a seed
// share a content address.
func testSpec(t *testing.T, seed uint64) []byte {
	t.Helper()
	sp := conform.Spec{
		Schema: conform.SpecSchema,
		Policy: string(config.PolicyDLP),
		Workload: conform.WorkloadRef{Synth: &workloads.SynthSpec{
			Seed:            seed,
			Blocks:          1,
			WarpsPerBlock:   2,
			MemInsnsPerWarp: 8,
			FootprintLines:  16,
		}},
		MaxCycles: 2_000_000,
	}
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// directStats runs the same spec straight through a private runner and
// normalizes — the ground truth the server must reproduce byte for
// byte.
func directStats(t *testing.T, specBytes []byte) []byte {
	t.Helper()
	sp, err := conform.UnmarshalSpec(specBytes)
	if err != nil {
		t.Fatal(err)
	}
	cfg, pol, kernel, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := &runner.Runner{Workers: 1}
	res, err := r.Run(context.Background(), []runner.Job{{
		Config: cfg, Policy: pol, Kernel: kernel,
		Opts: sim.Options{MaxCycles: sp.MaxCycles, Cores: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	norm, err := conform.Normalize(res[0].Stats)
	if err != nil {
		t.Fatal(err)
	}
	return norm
}

func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body []byte, tenant string, wait bool) (*http.Response, []byte) {
	t.Helper()
	url := ts.URL + "/jobs"
	if wait {
		url += "?wait=1"
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func compact(t *testing.T, b []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		t.Fatalf("compacting %q: %v", b, err)
	}
	return buf.Bytes()
}

func decodeView(t *testing.T, b []byte) JobView {
	t.Helper()
	var v JobView
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("decoding job view: %v\n%s", err, b)
	}
	return v
}

func decodeError(t *testing.T, b []byte) ErrorInfo {
	t.Helper()
	var env struct {
		Error ErrorInfo `json:"error"`
	}
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatalf("decoding error envelope: %v\n%s", err, b)
	}
	return env.Error
}

// TestSubmitWaitMatchesDirectRun: a synchronous submission returns the
// same normalized bytes as running the spec directly — HTTP transport
// adds nothing and loses nothing.
func TestSubmitWaitMatchesDirectRun(t *testing.T) {
	spec := testSpec(t, 1)
	want := directStats(t, spec)
	_, ts := startServer(t, Config{Workers: 2})

	resp, body := postJob(t, ts, spec, "", true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", resp.StatusCode, body)
	}
	v := decodeView(t, body)
	if v.Status != StatusDone {
		t.Fatalf("status %q, want done", v.Status)
	}
	// The JSON encoder re-indents the embedded stats; compare them
	// compacted. The /stats endpoint below is the byte-exact surface.
	if !bytes.Equal(compact(t, v.Stats), compact(t, want)) {
		t.Error("inline stats differ from direct run")
	}

	statsResp, err := ts.Client().Get(ts.URL + "/jobs/" + v.ID + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	got, _ := io.ReadAll(statsResp.Body)
	if !bytes.Equal(got, want) {
		t.Errorf("GET /jobs/%s/stats bytes differ from direct run", v.ID)
	}
}

// TestAsyncSubmitPollEvents: async submission returns 202 immediately;
// polling reaches done and the JSONL event stream replays the whole
// lifecycle in order.
func TestAsyncSubmitPollEvents(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})
	resp, body := postJob(t, ts, testSpec(t, 2), "", false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202: %s", resp.StatusCode, body)
	}
	id := decodeView(t, body).ID

	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := ts.Client().Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if v := decodeView(t, b); v.Status.Terminal() {
			if v.Status != StatusDone {
				t.Fatalf("job finished %q: %s", v.Status, b)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The event stream of a finished job replays and terminates.
	evResp, err := ts.Client().Get(ts.URL + "/jobs/" + id + "/events?format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	evBody, _ := io.ReadAll(evResp.Body)
	var kinds []string
	for _, line := range strings.Split(strings.TrimSpace(string(evBody)), "\n") {
		var ev JobEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		kinds = append(kinds, ev.Kind)
	}
	want := []string{"queued", "started", "done"}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Errorf("event kinds = %v, want %v", kinds, want)
	}
}

// TestSSEEventStream: the default SSE framing carries the same events.
func TestSSEEventStream(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})
	_, body := postJob(t, ts, testSpec(t, 3), "", true)
	id := decodeView(t, body).ID

	resp, err := ts.Client().Get(ts.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	sse, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"event: queued\n", "event: started\n", "event: done\n", "data: {"} {
		if !strings.Contains(string(sse), want) {
			t.Errorf("SSE stream missing %q:\n%s", want, sse)
		}
	}
}

// TestBadSpecRejected: an unparseable or unresolvable spec is a 400
// with the stable "spec" error type, before anything is queued.
func TestBadSpecRejected(t *testing.T) {
	s, ts := startServer(t, Config{Workers: 1})
	for _, body := range []string{
		`{not json`,
		`{"schema": 1, "policy": "NO-SUCH-POLICY", "workload": {"app": "BP"}}`,
		`{"schema": 1, "policy": "DLP", "workload": {}}`,
	} {
		resp, b := postJob(t, ts, []byte(body), "", false)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
			continue
		}
		if info := decodeError(t, b); info.Type != "spec" {
			t.Errorf("body %q: error type %q, want spec", body, info.Type)
		}
	}
	s.mu.Lock()
	if s.submitted != 0 {
		t.Errorf("%d jobs admitted from invalid specs", s.submitted)
	}
	s.mu.Unlock()
}

// TestPanicBecomesTypedError: a simulation panic (injected through the
// faultinject seam) surfaces as a 500 whose error type is "panic" —
// not a dropped connection, not a generic message.
func TestPanicBecomesTypedError(t *testing.T) {
	plan := faultinject.NewPlan(1)
	plan.Set(0, faultinject.Fault{Kind: faultinject.Panic})
	_, ts := startServer(t, Config{Workers: 1, Intercept: plan.Intercept()})

	resp, body := postJob(t, ts, testSpec(t, 4), "", true)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", resp.StatusCode, body)
	}
	v := decodeView(t, body)
	if v.Status != StatusFailed {
		t.Errorf("job status %q, want failed", v.Status)
	}
	if v.Error == nil || v.Error.Type != "panic" {
		t.Errorf("error = %+v, want type panic", v.Error)
	}
}

// TestDeadlineIsPartialFailure: a job exceeding the per-job wall budget
// comes back 504 with the "deadline" error type.
func TestDeadlineIsPartialFailure(t *testing.T) {
	plan := faultinject.NewPlan(1)
	plan.Set(0, faultinject.Fault{Kind: faultinject.Hang})
	_, ts := startServer(t, Config{Workers: 1, Timeout: 50 * time.Millisecond, Intercept: plan.Intercept()})

	resp, body := postJob(t, ts, testSpec(t, 5), "", true)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	v := decodeView(t, body)
	if v.Status != StatusFailed {
		t.Errorf("job status %q, want failed", v.Status)
	}
	if v.Error == nil || v.Error.Type != "deadline" {
		t.Errorf("error = %+v, want type deadline", v.Error)
	}
}

// hangIntercept blocks every simulation until release closes (or its
// context dies), signalling entry on entered.
func hangIntercept(entered chan<- string, release <-chan struct{}) runner.Intercept {
	return func(ctx context.Context, index, attempt int, job runner.Job, run runner.SimFunc) (*stats.Stats, error) {
		select {
		case entered <- job.Label:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		select {
		case <-release:
			return run(ctx)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// TestDeleteCancelsRunningJob: DELETE on a running job interrupts it
// through its context and reports it cancelled.
func TestDeleteCancelsRunningJob(t *testing.T) {
	entered := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	s, ts := startServer(t, Config{Workers: 1, Intercept: hangIntercept(entered, release)})

	_, body := postJob(t, ts, testSpec(t, 6), "", false)
	id := decodeView(t, body).ID
	<-entered // the job is mid-simulation

	req, _ := http.NewRequest("DELETE", ts.URL+"/jobs/"+id, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	v := decodeView(t, b)
	if v.Status != StatusCancelled {
		t.Fatalf("status after DELETE = %q, want cancelled: %s", v.Status, b)
	}
	s.mu.Lock()
	cancelled := s.cancelled
	s.mu.Unlock()
	if cancelled != 1 {
		t.Errorf("server counted %d cancellations, want 1", cancelled)
	}
}

// TestClientDisconnectCancelsJob: abandoning a synchronous submission
// cancels the job mid-flight — the connection is the lease.
func TestClientDisconnectCancelsJob(t *testing.T) {
	entered := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	s, ts := startServer(t, Config{Workers: 1, Intercept: hangIntercept(entered, release)})

	reqCtx, abandon := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(reqCtx, "POST", ts.URL+"/jobs?wait=1", bytes.NewReader(testSpec(t, 7)))
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-entered // simulation in flight on behalf of the waiting client
	abandon()
	if err := <-errc; err == nil {
		t.Fatal("abandoned request returned a response")
	}

	// The server notices the disconnect and cancels the job.
	s.mu.Lock()
	js := s.jobs["j1"]
	s.mu.Unlock()
	if js == nil {
		t.Fatal("job j1 not found")
	}
	select {
	case <-js.done:
	case <-time.After(30 * time.Second):
		t.Fatal("job never settled after client disconnect")
	}
	if got := js.view(false).Status; got != StatusCancelled {
		t.Fatalf("job status %q after disconnect, want cancelled", got)
	}
}

// TestBackpressure429: submissions beyond the per-tenant queue bound
// are rejected with 429 and a Retry-After hint; other tenants are
// unaffected.
func TestBackpressure429(t *testing.T) {
	entered := make(chan string, 1)
	release := make(chan struct{})
	_, ts := startServer(t, Config{
		Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second,
		Intercept: hangIntercept(entered, release),
	})

	// Seeds differ: three distinct jobs, no dedup. j1 runs (hung), j2
	// fills tenant A's queue, j3 must bounce.
	if resp, _ := postJob(t, ts, testSpec(t, 8), "A", false); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first job: status %d", resp.StatusCode)
	}
	<-entered
	if resp, _ := postJob(t, ts, testSpec(t, 9), "A", false); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second job: status %d", resp.StatusCode)
	}
	resp, b := postJob(t, ts, testSpec(t, 10), "A", false)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third job: status %d, want 429: %s", resp.StatusCode, b)
	}
	if info := decodeError(t, b); info.Type != "backpressure" {
		t.Errorf("error type %q, want backpressure", info.Type)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want 2", ra)
	}
	// A full tenant-A queue must not reject tenant B.
	if resp, _ := postJob(t, ts, testSpec(t, 11), "B", false); resp.StatusCode != http.StatusAccepted {
		t.Errorf("tenant B rejected while only A's queue is full: status %d", resp.StatusCode)
	}
	close(release)
}

// TestFairFIFOAcrossTenants: with one worker, a tenant flooding its
// queue does not starve another tenant — dispatch is round-robin across
// tenants, FIFO within one.
func TestFairFIFOAcrossTenants(t *testing.T) {
	entered := make(chan string, 16)
	release := make(chan struct{})
	_, ts := startServer(t, Config{Workers: 1, Intercept: hangIntercept(entered, release)})

	postJob(t, ts, testSpec(t, 20), "flood", false) // claims the worker
	first := <-entered
	if !strings.Contains(first, "flood") {
		t.Fatalf("first running job %q is not flood's", first)
	}
	// Flood three more, then one job from a second tenant.
	for seed := uint64(21); seed <= 23; seed++ {
		postJob(t, ts, testSpec(t, seed), "flood", false)
	}
	postJob(t, ts, testSpec(t, 24), "quiet", false)

	close(release) // free the worker; the queue drains one at a time
	var order []string
	for i := 0; i < 4; i++ {
		select {
		case label := <-entered:
			order = append(order, label)
		case <-time.After(30 * time.Second):
			t.Fatalf("queue stalled; saw %v", order)
		}
	}
	// Round-robin: quiet's job waits behind at most one flood job, not
	// the whole backlog.
	quietAt := -1
	for i, label := range order {
		if strings.Contains(label, "quiet") {
			quietAt = i
		}
	}
	if quietAt < 0 || quietAt > 1 {
		t.Errorf("quiet tenant waited behind the flood: dispatch order %v", order)
	}
}

// TestGracefulShutdownDrains: POST /shutdown completes queued work,
// rejects new submissions with 503, reports drained, and fires Done().
func TestGracefulShutdownDrains(t *testing.T) {
	s, ts := startServer(t, Config{Workers: 2})
	var ids []string
	for seed := uint64(30); seed < 33; seed++ {
		_, body := postJob(t, ts, testSpec(t, seed), "", false)
		ids = append(ids, decodeView(t, body).ID)
	}

	resp, err := ts.Client().Post(ts.URL+"/shutdown", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), `"drained": true`) {
		t.Fatalf("shutdown response: %s", b)
	}
	select {
	case <-s.Done():
	default:
		t.Error("Done() not closed after drained /shutdown response")
	}
	// Every pre-shutdown job ran to completion, none were cancelled.
	for _, id := range ids {
		s.mu.Lock()
		js := s.jobs[id]
		s.mu.Unlock()
		if got := js.view(false).Status; got != StatusDone {
			t.Errorf("job %s drained as %q, want done", id, got)
		}
	}
	if resp, _ := postJob(t, ts, testSpec(t, 40), "", false); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submission: status %d, want 503", resp.StatusCode)
	}
	hResp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hResp.Body.Close()
	if hResp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after shutdown: status %d, want 503", hResp.StatusCode)
	}
}

// TestDrainDeadlineCancelsStragglers: a job that refuses to finish is
// cancelled when the drain budget expires, and shutdown still
// completes.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	entered := make(chan string, 1)
	release := make(chan struct{}) // never closed: the job hangs forever
	s, ts := startServer(t, Config{
		Workers: 1, DrainTimeout: 100 * time.Millisecond,
		Intercept: hangIntercept(entered, release),
	})
	_, body := postJob(t, ts, testSpec(t, 50), "", false)
	id := decodeView(t, body).ID
	<-entered

	start := time.Now()
	s.Shutdown(nil)
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("drain of a hung job took %v", elapsed)
	}
	s.mu.Lock()
	js := s.jobs[id]
	s.mu.Unlock()
	if got := js.view(false).Status; got != StatusCancelled {
		t.Errorf("hung job drained as %q, want cancelled", got)
	}
}

// TestDedupStormSingleSimulation: concurrent synchronous submissions of
// one content address through HTTP collapse into one simulation; every
// client gets byte-identical stats.
func TestDedupStormSingleSimulation(t *testing.T) {
	const clients = 6
	spec := testSpec(t, 60)
	want := directStats(t, spec)

	var sims int32
	entered := make(chan string, clients)
	release := make(chan struct{})
	intercept := func(ctx context.Context, index, attempt int, job runner.Job, run runner.SimFunc) (*stats.Stats, error) {
		entered <- job.Label
		sims++ // single writer if single-flight holds; the race detector confirms
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return run(ctx)
	}
	s, ts := startServer(t, Config{Workers: clients, Intercept: intercept})

	type out struct {
		status int
		body   []byte
	}
	results := make(chan out, clients)
	for i := 0; i < clients; i++ {
		go func() {
			resp, body := postJob(t, ts, spec, fmt.Sprintf("t%d", i%3), true)
			results <- out{resp.StatusCode, body}
		}()
	}
	<-entered // the leader is simulating
	// Park every other client on the leader's flight before releasing.
	deadline := time.Now().Add(30 * time.Second)
	for s.Cache().Coalesced() < clients-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d clients coalesced", s.Cache().Coalesced())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	for i := 0; i < clients; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("client got %d: %s", r.status, r.body)
		}
		if v := decodeView(t, r.body); !bytes.Equal(compact(t, v.Stats), compact(t, want)) {
			t.Errorf("client stats differ from direct run")
		}
	}
	if sims != 1 {
		t.Errorf("%d simulations for one shared key, want 1", sims)
	}
}

// TestStatsEndpoint: /stats reflects the work the server has done.
func TestStatsEndpoint(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 2})
	postJob(t, ts, testSpec(t, 70), "", true)
	postJob(t, ts, testSpec(t, 70), "", true) // cache hit

	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sv StatsView
	if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
		t.Fatal(err)
	}
	if sv.Submitted != 2 || sv.Completed != 2 {
		t.Errorf("submitted=%d completed=%d, want 2/2", sv.Submitted, sv.Completed)
	}
	if sv.Cache.Hits < 1 {
		t.Errorf("cache hits = %d, want >= 1 (second submission is a repeat)", sv.Cache.Hits)
	}
	if sv.Workers != 2 {
		t.Errorf("workers = %d, want 2", sv.Workers)
	}
}
