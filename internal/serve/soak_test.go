package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/conform"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TestServeSoak is the service-level concurrency storm the tentpole
// exists to survive: hundreds of submissions race over a handful of
// shared simulation points across several tenants, a slice of them
// cancelled mid-flight, all under the race detector (run with -race;
// `make servesmoke` does). It pins the acceptance bar end to end:
//
//   - every completed job's stats are byte-identical to a direct
//     (serverless) run of the same point,
//   - shared content addresses simulate exactly once — the single-
//     flight table and result cache absorb the rest,
//   - cancellations land cleanly (terminal state, no stuck jobs),
//   - shutdown drains: after the storm the server stops with every
//     job accounted for and the books balanced.
func TestServeSoak(t *testing.T) {
	points, clients, perClient := 4, 24, 12
	if testing.Short() {
		points, clients, perClient = 3, 8, 5
	}
	total := clients * perClient

	// Ground truth per point, computed without the server.
	specs := make([][]byte, points)
	want := make([][]byte, points)
	for i := range specs {
		specs[i] = testSpec(t, 1000+uint64(i))
		want[i] = directStats(t, specs[i])
	}
	// Cancellation targets get a unique seed per submission (seeds from
	// 100000 up, disjoint from the byte-compare points): no dedup, so
	// each must queue and simulate for itself, giving the DELETE a real
	// window — and a cancelled leader never perturbs the shared-key
	// sims count.
	var cancelSeed atomic.Uint64
	cancelSeed.Store(100_000)

	// Count real simulations per content address through the intercept.
	var simMu sync.Mutex
	simsPerKey := make(map[string]int)
	intercept := func(ctx context.Context, index, attempt int, job runner.Job, run runner.SimFunc) (*stats.Stats, error) {
		simMu.Lock()
		simsPerKey[job.Key()]++
		simMu.Unlock()
		return run(ctx)
	}
	s, ts := startServer(t, Config{
		Workers:    4,
		QueueDepth: total, // soak admission: the storm must not bounce
		Intercept:  intercept,
	})

	var done, cancelled, failures atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{}) // all clients fire together: a real first-wave race
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			tenant := fmt.Sprintf("tenant-%d", c%3)
			<-start
			for i := 0; i < perClient; i++ {
				if i > 0 && rng.Intn(10) == 0 {
					// Cancellation mix: submit async, cancel immediately.
					resp, body := postJob(t, ts, testSpec(t, cancelSeed.Add(1)), tenant, false)
					if resp.StatusCode != http.StatusAccepted {
						failures.Add(1)
						t.Errorf("client %d: async submit status %d: %s", c, resp.StatusCode, body)
						continue
					}
					id := decodeView(t, body).ID
					req, _ := http.NewRequest("DELETE", ts.URL+"/jobs/"+id, nil)
					dresp, err := ts.Client().Do(req)
					if err != nil {
						failures.Add(1)
						t.Errorf("client %d: DELETE: %v", c, err)
						continue
					}
					b, _ := io.ReadAll(dresp.Body)
					dresp.Body.Close()
					// The race against completion is fair game; the job
					// must simply be terminal afterwards.
					if v := decodeView(t, b); !v.Status.Terminal() {
						failures.Add(1)
						t.Errorf("client %d: job %s non-terminal %q after DELETE", c, id, v.Status)
					} else if v.Status == StatusCancelled {
						cancelled.Add(1)
					}
					continue
				}
				p := rng.Intn(points)
				if i == 0 {
					// Wave one: ~clients/points submitters per point,
					// simultaneously — the cache-hit/single-flight storm.
					p = c % points
				}
				resp, body := postJob(t, ts, specs[p], tenant, true)
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("client %d: wait submit status %d: %s", c, resp.StatusCode, body)
					continue
				}
				v := decodeView(t, body)
				if !bytes.Equal(compact(t, v.Stats), compact(t, want[p])) {
					failures.Add(1)
					t.Errorf("client %d: point %d stats diverged from direct run", c, p)
					continue
				}
				done.Add(1)
			}
		}(c)
	}
	close(start)
	wg.Wait()

	if failures.Load() > 0 {
		t.Fatalf("%d requests misbehaved during the storm", failures.Load())
	}

	// Zero duplicate simulations for the shared byte-compare points:
	// each simulated exactly once, no matter how many clients raced.
	sharedKeys := make(map[string]bool)
	for _, spec := range specs {
		job := buildJob(t, spec)
		sharedKeys[job.Key()] = true
	}
	simMu.Lock()
	for key, n := range simsPerKey {
		if sharedKeys[key] && n != 1 {
			t.Errorf("shared key %.12s... simulated %d times, want exactly 1", key, n)
		}
	}
	simMu.Unlock()

	// The books balance: everything submitted reached a terminal state.
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sv StatsView
	if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sv.Submitted != int64(total) {
		t.Errorf("submitted = %d, want %d", sv.Submitted, total)
	}
	if settled := sv.Completed + sv.Failed + sv.Cancelled; settled != sv.Submitted {
		t.Errorf("settled %d of %d submitted: completed=%d failed=%d cancelled=%d",
			settled, sv.Submitted, sv.Completed, sv.Failed, sv.Cancelled)
	}
	if sv.Failed != 0 {
		t.Errorf("%d jobs failed during a fault-free storm", sv.Failed)
	}
	if sv.Running != 0 || sv.Queued != 0 {
		t.Errorf("running=%d queued=%d after the storm, want 0/0", sv.Running, sv.Queued)
	}

	// And the server still shuts down cleanly after the abuse.
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	drained := make(chan struct{})
	go func() { s.Shutdown(drainCtx); close(drained) }()
	select {
	case <-drained:
	case <-drainCtx.Done():
		t.Fatal("post-storm shutdown never drained")
	}
	t.Logf("storm: %d done, %d cancelled, %d coalesced, cache %d hits",
		done.Load(), cancelled.Load(), s.Cache().Coalesced(), sv.Cache.Hits)
}

// buildJob resolves a spec into the same runner job the server builds,
// for content-address computation in assertions.
func buildJob(t *testing.T, specBytes []byte) runner.Job {
	t.Helper()
	sp, err := conform.UnmarshalSpec(specBytes)
	if err != nil {
		t.Fatal(err)
	}
	cfg, pol, kernel, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	return runner.Job{
		Config: cfg, Policy: pol, Kernel: kernel,
		Opts: sim.Options{MaxCycles: sp.MaxCycles, Cores: 1},
	}
}
