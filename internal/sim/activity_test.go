package sim

import (
	"context"
	"testing"

	"repro/internal/config"
	"repro/internal/prng"
	"repro/internal/trace"
)

// mixedKernel builds a workload that exercises every activity path the
// O(1) accounting summarizes: long compute latencies (fast-forward
// windows), short compute (busy schedulers), coalesced and scattered
// loads (MSHR merges, multi-request LD/ST drains), stores (write-through
// traffic that outlives its warp), and more blocks than SMs (pending
// block admission mid-run).
func mixedKernel(seed uint64) *trace.Kernel {
	rng := prng.New(seed)
	k := &trace.Kernel{Name: "mixed-activity"}
	for b := 0; b < 20; b++ {
		blk := &trace.Block{}
		for w := 0; w < 3; w++ {
			wt := &trace.WarpTrace{}
			for i := 0; i < 24; i++ {
				pc := uint32(rng.Intn(12))
				switch rng.Intn(6) {
				case 0:
					// Long-latency compute: the whole SM may go idle here,
					// which is what arms the fast-forward path.
					wt.Instrs = append(wt.Instrs, trace.NewCompute(pc, 64+rng.Intn(256), 32))
				case 1:
					wt.Instrs = append(wt.Instrs, trace.NewCompute(pc, 1+rng.Intn(6), 1+rng.Intn(32)))
				case 2:
					wt.Instrs = append(wt.Instrs, trace.NewStore(pc, randAddrs(rng, 1+rng.Intn(32))))
				default:
					wt.Instrs = append(wt.Instrs, trace.NewLoad(pc, randAddrs(rng, 1+rng.Intn(32))))
				}
			}
			blk.Warps = append(blk.Warps, wt)
		}
		k.Blocks = append(k.Blocks, blk)
	}
	return k
}

// activityConfigs are the scheduler/throttle variants whose interaction
// with the sleep-bound bookkeeping differs.
func activityConfigs() map[string]*config.Config {
	gto := config.Baseline()
	lrr := config.Baseline()
	lrr.Scheduler = config.SchedLRR
	throttled := config.Baseline()
	throttled.MaxActiveWarps = 4
	return map[string]*config.Config{"gto": gto, "lrr": lrr, "warp-limit": throttled}
}

// TestActivityAccountingEveryCycle re-derives the engine's O(1) activity
// accounting from first principles at every stepped cycle of a mixed
// workload: liveWarps/finishedWarps counters vs slot sweeps, scheduler
// sleep bounds vs actual issuability, and counter-form quiescence vs the
// deep sweep. This is the per-cycle (unsampled) version of what
// SelfCheck verifies every 2048 cycles in production runs — including
// the fault-injection suites, which run with SelfCheck enabled.
func TestActivityAccountingEveryCycle(t *testing.T) {
	for name, cfg := range activityConfigs() {
		for _, policy := range []config.Policy{config.PolicyBaseline, config.PolicyDLP} {
			t.Run(name+"/"+policy.String(), func(t *testing.T) {
				e, err := New(cfg, policy, Options{})
				if err != nil {
					t.Fatal(err)
				}
				checked := 0
				e.testHook = func(cycle uint64, active bool) {
					if err := e.checkActivity(); err != nil {
						t.Fatalf("cycle %d (active=%v): %v", cycle, active, err)
					}
					checked++
				}
				st, err := e.Run(context.Background(), mixedKernel(7))
				if err != nil {
					t.Fatal(err)
				}
				if err := st.CheckConservation(); err != nil {
					t.Error(err)
				}
				if checked < 100 {
					t.Errorf("only %d cycles observed; kernel too small to prove anything", checked)
				}
			})
		}
	}
}

// TestFastForwardDifferential proves fast-forwarding is unobservable:
// the same kernel run with the optimization disabled (every cycle
// stepped) produces bit-identical statistics, while the enabled run
// demonstrably skips cycles. SelfCheck is on for both legs, so the
// sampled sweeps also run on both sides of the comparison.
func TestFastForwardDifferential(t *testing.T) {
	for name, cfg := range activityConfigs() {
		for _, policy := range []config.Policy{config.PolicyBaseline, config.PolicyDLP} {
			t.Run(name+"/"+policy.String(), func(t *testing.T) {
				run := func(disableFF bool) (*Engine, uint64, interface{}) {
					e, err := New(cfg, policy, Options{SelfCheck: true})
					if err != nil {
						t.Fatal(err)
					}
					e.disableFastForward = disableFF
					var stepped uint64
					e.testHook = func(uint64, bool) { stepped++ }
					st, err := e.Run(context.Background(), mixedKernel(11))
					if err != nil {
						t.Fatal(err)
					}
					return e, stepped, *st
				}
				_, fullSteps, fullStats := run(true)
				_, ffSteps, ffStats := run(false)
				if fullStats != ffStats {
					t.Errorf("fast-forward changed results:\nfull %+v\n  ff %+v", fullStats, ffStats)
				}
				if ffSteps >= fullSteps {
					t.Errorf("fast-forward stepped %d cycles, full run %d: nothing was skipped",
						ffSteps, fullSteps)
				}
			})
		}
	}
}
