package sim

import (
	"testing"

	"repro/internal/config"
)

// BenchmarkStealScheduleStep measures the fixed per-cycle cost of the
// restructured exchange on an idle machine: the serial arrival binning
// (nothing to bin), one steal phase over every span (workers claim from
// the shared cursor, tick idle components, drain empty lanes), and the
// serial O(spans) merge. This is exactly the overhead the tentpole
// shrank — the old coordinator walked every SM, partition and packet
// serially — and it must stay allocation-free at steady state.
func BenchmarkStealScheduleStep(b *testing.B) {
	e, err := New(config.Baseline(), config.PolicyDLP, Options{Cores: 4})
	if err != nil {
		b.Fatal(err)
	}
	pp := newPhasePool(e)
	e.pp = pp
	defer func() {
		pp.stop()
		e.pp = nil
	}()

	now := uint64(1)
	e.step(now) // warm span lanes and per-worker state
	now++
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.step(now)
		now++
	}
}
