package sim

import (
	"strconv"

	"repro/internal/metrics"
)

// registerMetrics builds the engine's metrics registry: every component
// registers the counters it already maintains (by pointer into its
// stats block) and gauges over its queue depths, then the registry is
// sealed — the row buffer is allocated once, and sampling from the run
// loop performs no allocations. Called from New only when
// Options.Metrics carries a sink; otherwise e.mreg stays nil and the
// run loop's sampling checks reduce to one nil test.
func (e *Engine) registerMetrics(m *metrics.Config) {
	reg := metrics.NewRegistry()
	e.net.RegisterMetrics(reg, "icnt")
	for i, p := range e.parts {
		p.RegisterMetrics(reg, "l2p"+strconv.Itoa(i))
	}
	for i, s := range e.sms {
		s.RegisterMetrics(reg, "sm"+strconv.Itoa(i))
	}
	// Engine-parallelism observability lives in its own "phase."
	// namespace: one busy-cycles counter per steal span (the
	// load-imbalance signal) plus the crossbar's lane-segment gauges.
	// Unlike every simulation-domain column these depend on the span
	// layout — i.e. on Options.Cores — by design, so the series-identity
	// differential excludes exactly this namespace.
	for i := range e.spanSt {
		reg.Counter("phase.span"+strconv.Itoa(i)+".busy_cycles", &e.spanSt[i].busy)
	}
	e.net.RegisterLaneMetrics(reg, "phase.icnt")
	reg.Seal()

	e.mreg = reg
	e.msink = m.Sink
	e.mevery = m.Interval()
	e.mlabel = m.Label
	if e.mlabel == "" {
		e.mlabel = "sim"
	}
	e.msink.Begin(e.mlabel, reg.Names())
}

// emitSample captures one row attributed to the given cycle. The row
// buffer is the registry's reusable slice; sinks copy if they retain.
func (e *Engine) emitSample(cycle uint64) {
	e.msink.Row(e.mlabel, cycle, e.mreg.Sample())
	e.mlast = cycle
}
