package sim

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// runSampled runs one kernel with a MemorySink attached and returns
// the collected series plus the final stats.
func runSampled(t *testing.T, policy config.Policy, cores int, noFF bool, every uint64) (*metrics.Series, *stats.Stats) {
	t.Helper()
	k := streamKernel("metrics", 4, 4, 48, 3)
	sink := metrics.NewMemorySink()
	e, err := New(config.Baseline(), policy, Options{
		Cores:   cores,
		Metrics: &metrics.Config{Sink: sink, Every: every, Label: "diff"},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.disableFastForward = noFF
	st, err := e.Run(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	s := sink.Snapshot().Series["diff"]
	if s == nil {
		t.Fatal("no series collected")
	}
	return s, st
}

// stripPhase returns a copy of the series without the "phase." columns.
// That namespace holds engine-parallelism observability (per-span busy
// counters, lane-segment gauges) whose column set and values depend on
// Options.Cores by design; every simulation-domain column must still be
// byte-identical across core counts.
func stripPhase(s *metrics.Series) *metrics.Series {
	keep := make([]int, 0, len(s.Names))
	names := make([]string, 0, len(s.Names))
	for i, name := range s.Names {
		if !strings.HasPrefix(name, "phase.") {
			keep = append(keep, i)
			names = append(names, name)
		}
	}
	out := &metrics.Series{Names: names, Rows: make([]metrics.SampleRow, len(s.Rows))}
	for ri, r := range s.Rows {
		vals := make([]uint64, len(keep))
		for vi, ci := range keep {
			vals[vi] = r.Values[ci]
		}
		out.Rows[ri] = metrics.SampleRow{Cycle: r.Cycle, Values: vals}
	}
	return out
}

// TestMetricsSeriesIdentity is the acceptance differential: the sampled
// metric series — minus the core-count-dependent "phase." namespace —
// must be byte-identical at every Cores value and with fast-forward
// force-disabled. Fast-forwarded windows get their boundary rows
// attributed to the skipped cycles, so the slow path and the fast path
// produce the same rows at the same cycles.
func TestMetricsSeriesIdentity(t *testing.T) {
	for _, policy := range []config.Policy{config.PolicyBaseline, config.PolicyDLP} {
		ref, refSt := runSampled(t, policy, 1, false, 64)
		ref = stripPhase(ref)
		if len(ref.Rows) < 4 {
			t.Fatalf("%v: only %d rows sampled; kernel too short for a meaningful differential", policy, len(ref.Rows))
		}
		last := uint64(0)
		for _, r := range ref.Rows {
			if r.Cycle <= last {
				t.Fatalf("%v: non-increasing sample cycles %d after %d", policy, r.Cycle, last)
			}
			last = r.Cycle
		}
		for _, v := range []struct {
			name  string
			cores int
			noFF  bool
		}{
			{"cores1-noff", 1, true},
			{"cores2", 2, false},
			{"cores2-noff", 2, true},
			{"cores8", 8, false},
		} {
			got, gotSt := runSampled(t, policy, v.cores, v.noFF, 64)
			got = stripPhase(got)
			if !reflect.DeepEqual(ref.Names, got.Names) {
				t.Fatalf("%v/%s: metric names differ", policy, v.name)
			}
			if !reflect.DeepEqual(ref.Rows, got.Rows) {
				n := len(ref.Rows)
				if len(got.Rows) != n {
					t.Fatalf("%v/%s: %d rows, reference has %d", policy, v.name, len(got.Rows), n)
				}
				for i := range ref.Rows {
					if !reflect.DeepEqual(ref.Rows[i], got.Rows[i]) {
						t.Fatalf("%v/%s: row %d differs:\n ref %v\n got %v",
							policy, v.name, i, ref.Rows[i], got.Rows[i])
					}
				}
			}
			if *gotSt != *refSt {
				t.Fatalf("%v/%s: final stats differ", policy, v.name)
			}
		}
	}
}

// TestMetricsSamplingDoesNotPerturb pins the observer-effect guarantee:
// final stats with sampling enabled equal the unsampled run exactly.
func TestMetricsSamplingDoesNotPerturb(t *testing.T) {
	k := streamKernel("perturb", 4, 4, 48, 3)
	for _, policy := range []config.Policy{config.PolicyBaseline, config.PolicyDLP} {
		plain := mustRun(t, config.Baseline(), policy, k)
		_, sampled := runSampled(t, policy, 1, false, 32)
		if *sampled != *plain {
			t.Fatalf("%v: sampling changed the results:\nplain   %+v\nsampled %+v", policy, plain, sampled)
		}
	}
}

// TestMetricsRowsCoverSkippedWindows asserts fast-forward attribution
// actually happens: the fast run must emit rows at boundaries it never
// stepped. We prove it by checking the fast run stepped fewer cycles
// than it emitted boundary rows for.
func TestMetricsRowsCoverSkippedWindows(t *testing.T) {
	k := streamKernel("skipcover", 1, 2, 16, 2)
	sink := metrics.NewMemorySink()
	e, err := New(config.Baseline(), config.PolicyDLP, Options{
		Metrics: &metrics.Config{Sink: sink, Every: 16, Label: "skip"},
	})
	if err != nil {
		t.Fatal(err)
	}
	stepped := map[uint64]bool{}
	e.testHook = func(cycle uint64, active bool) { stepped[cycle] = true }
	if _, err := e.Run(context.Background(), k); err != nil {
		t.Fatal(err)
	}
	rows := sink.Snapshot().Series["skip"].Rows
	attributed := 0
	for _, r := range rows {
		if !stepped[r.Cycle] {
			attributed++
		}
	}
	if attributed == 0 {
		t.Fatal("no rows were attributed to fast-forwarded cycles; the attribution path never ran")
	}
}

// TestMetricsSeriesEndsAtDrain pins the end-of-run row: the last row
// carries the drain cycle, and the L1D access total in it matches the
// final stats.
func TestMetricsSeriesEndsAtDrain(t *testing.T) {
	s, st := runSampled(t, config.PolicyDLP, 1, false, 0) // default period >> run length
	lastRow := s.Rows[len(s.Rows)-1]
	if lastRow.Cycle != st.Cycles {
		t.Fatalf("last row at cycle %d, run drained at %d", lastRow.Cycle, st.Cycles)
	}
	var accesses uint64
	for i, name := range s.Names {
		if strings.HasSuffix(name, ".l1d.accesses") {
			accesses += lastRow.Values[i]
		}
	}
	if accesses != st.L1DAccesses {
		t.Fatalf("final row sums %d L1D accesses, stats say %d", accesses, st.L1DAccesses)
	}
}

// TestMetricsDefaultLabel covers direct engine use without a label.
func TestMetricsDefaultLabel(t *testing.T) {
	sink := metrics.NewMemorySink()
	k := streamKernel("nolabel", 1, 1, 4, 1)
	_, err := RunOnce(context.Background(), config.Baseline(), config.PolicyBaseline, k,
		Options{Metrics: &metrics.Config{Sink: sink}})
	if err != nil {
		t.Fatal(err)
	}
	if sink.Snapshot().Series["sim"] == nil {
		t.Fatal(`unlabeled config must fall back to series "sim"`)
	}
}
