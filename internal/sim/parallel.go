// Phase-parallel ticking: the engine's second level of parallelism.
//
// The runner already parallelizes *across* simulations; this file
// parallelizes *inside* one. The component index space — L2 partitions
// first, then SMs — is cut into contiguous spans, and each cycle's
// component phase has the workers claim spans off a shared atomic
// cursor (deterministic work stealing): a worker stuck on a hot span
// simply stops claiming while the others drain the rest, so hot/idle
// imbalance never serializes the phase. Spans — not workers — own the
// delivery inboxes, the outbound lanes, and the fast-forward partials,
// so the simulation output depends only on the span layout (a pure
// function of geometry and Options.Cores), never on which worker
// happened to claim which span. That is what keeps results
// bit-identical at any core count, including odd ones. DESIGN.md §10
// carries the base determinism argument and §15 the lane-merge and
// steal-schedule extension.
//
// The barrier is a hybrid spin-then-park eventcount: phases are
// announced by bumping an atomic sequence number, completion by an
// atomic countdown. Both sides spin briefly when real CPUs are
// available and otherwise park on per-worker wake channels (capacity 1,
// non-blocking sends), so an oversubscribed or single-CPU host
// degrades to cheap channel handoffs instead of burning timeslices.
// Every park rechecks its condition in a loop, which makes stale
// tokens — at most one per channel — harmless.
package sim

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/addr"
	"repro/internal/mem"
)

// spansPerWorker is the steal granularity: each worker's fair share of
// the span list. More than one span per worker is what lets stealing
// balance hot against idle components; a small constant keeps the
// serial merge O(spans) and the per-span bookkeeping cheap.
const spansPerWorker = 4

// span is one contiguous range [lo, hi) of the unified component index
// space: indices [0, NumPartitions) are the L2 partitions, indices
// [NumPartitions, NumPartitions+NumSMs) the SMs.
type span struct{ lo, hi int }

// makeSpans splits total components into n contiguous, non-empty,
// gap-free spans of near-equal size, in ascending index order.
func makeSpans(total, n int) []span {
	out := make([]span, n)
	for i := range out {
		out[i] = span{lo: i * total / n, hi: (i + 1) * total / n}
	}
	return out
}

// spanState is one span's per-cycle communication state. The inboxes
// are filled serially (packet binning in the pre-phase, recycled-store
// routing in the previous cycle's merge) and consumed by whichever
// worker claims the span; the lanes are filled during the span's tick
// and handed off — an O(1) slice handoff per lane — by the serial
// merge. All buffers keep their backing arrays across cycles, so the
// steady state allocates nothing. The pad keeps neighboring states on
// separate cache lines so concurrent writers don't false-share.
type spanState struct {
	inMem  []*mem.Request // arrived requests for this span's partitions
	inCore []*mem.Request // arrived responses for this span's SMs
	inPut  []*mem.Request // recycled stores homed to this span's SM pools

	outMem  []*mem.Request // SM fetches, per-SM injection-rate bounded
	outCore []*mem.Request // partition responses, in partition order
	outPut  []*mem.Request // recycled stores drained from partitions

	active bool
	// mustTick vetoes fast-forwarding: some component in the span needs
	// per-cycle ticking (a draining LD/ST queue, a queued partition
	// request).
	mustTick bool
	// next is the span's earliest scheduled component event, or
	// ^uint64(0) when none. Only meaningful when the whole cycle was
	// inactive — which is the only time the run loop reads it.
	next uint64
	// busy counts cycles in which this span did real work — the
	// load-imbalance signal behind the phase.span<i>.busy_cycles
	// metrics column. Deterministic: it depends on the span layout,
	// never on worker scheduling.
	busy uint64
	_    [40]byte
}

// workerSlot records a panic recovered on a pool worker; the
// coordinator rethrows it as a *PhasePanicError after the barrier.
type workerSlot struct {
	panicVal   any
	panicStack []byte
}

// PhasePanicError wraps a panic that escaped a simulation phase worker.
// The coordinator rethrows it on the engine's own goroutine, so it
// travels the same recovery path as a serial-engine panic: the runner
// catches it and surfaces a *runner.JobPanicError whose Value is this
// error, keeping the worker's original panic value and stack reachable.
type PhasePanicError struct {
	// Worker is the worker index the panic escaped from (1-based:
	// worker 0 is the coordinator and panics through Run directly).
	Worker int
	// Cycle is the simulated cycle whose component phase panicked.
	Cycle uint64
	// Value is the original panic value.
	Value any
	// Stack is the worker goroutine's stack at recovery time.
	Stack []byte
}

func (e *PhasePanicError) Error() string {
	return fmt.Sprintf("sim: phase worker %d panicked at cycle %d: %v", e.Worker, e.Cycle, e.Value)
}

// tickSpan advances one span through a full component phase: apply the
// span's delivery inboxes, tick its components (partitions before SMs —
// the serial engine's relative order), then drain outbound packets into
// the span's lanes. Every mutation is local to the span's components
// and its own spanState, so any worker may run it without locks. When
// the span did no work, its fast-forward partial (mustTick / earliest
// next event) is computed in the same pass, which is what lets
// nextInterestingCycle run without a second component sweep.
func (e *Engine) tickSpan(si int, now uint64) {
	st := &e.spanSt[si]
	if e.spanHook != nil {
		e.spanHook(si, now)
	}

	// Recycled stores routed here by the previous cycle's merge return
	// to their issuing SM's pool before that SM ticks again.
	for j, r := range st.inPut {
		st.inPut[j] = nil
		e.pools[r.SM].Put(r)
	}
	st.inPut = st.inPut[:0]
	// Batched delivery: the serial pre-phase only binned the arrived
	// packets; the MSHR/L2 work of applying them happens here, span-
	// locally. Bin order preserves the per-direction (arriveAt, seq)
	// heap order, so each component sees deliveries exactly as the
	// serial engine ordered them.
	for j, r := range st.inMem {
		st.inMem[j] = nil
		p := addr.PartitionOf(r.Addr, e.cfg.L1D.LineSize, len(e.parts))
		e.parts[p].Enqueue(r)
	}
	st.inMem = st.inMem[:0]
	for j, r := range st.inCore {
		st.inCore[j] = nil
		e.sms[r.SM].L1D().OnResponse(r)
	}
	st.inCore = st.inCore[:0]

	sp := e.spans[si]
	P := len(e.parts)
	active := false
	for i := sp.lo; i < sp.hi && i < P; i++ {
		// A non-Busy partition's tick is a pure no-op and is skipped.
		if p := e.parts[i]; p.Busy(now) {
			p.Tick(now)
			active = true
		}
	}
	// A Done SM has no warps, no queued blocks, and a drained cache;
	// nothing can re-activate it (blocks are assigned only before the
	// cycle loop), so its tick is skipped outright.
	for i := max(sp.lo, P); i < sp.hi; i++ {
		if s := e.sms[i-P]; !s.Done() && s.Tick(now) {
			active = true
		}
	}

	// Drain outbound lanes: partition responses and recycled stores in
	// partition order, then SM fetches under the injection-rate bound in
	// SM order. Spans ascend the component index space, so the merge's
	// fixed span order concatenates these into exactly the serial
	// engine's per-direction push order.
	for i := sp.lo; i < sp.hi && i < P; i++ {
		p := e.parts[i]
		for {
			resp := p.PopResponse()
			if resp == nil {
				break
			}
			st.outCore = append(st.outCore, resp)
		}
		if rc := e.recyclers[i]; rc.Len() > 0 {
			st.outPut = rc.DrainTo(st.outPut)
		}
	}
	for i := max(sp.lo, P); i < sp.hi; i++ {
		s := e.sms[i-P]
		for k := 0; k < e.opts.InjectionRate; k++ {
			out := s.L1D().PopOutgoing()
			if out == nil {
				break
			}
			st.outMem = append(st.outMem, out)
			active = true
		}
	}

	st.active = active
	st.mustTick = false
	st.next = ^uint64(0)
	if active {
		st.busy++
		// The partial is never read for an active cycle.
		return
	}
	for i := sp.lo; i < sp.hi && i < P; i++ {
		p := e.parts[i]
		if p.Queued() {
			st.mustTick = true
			return
		}
		if a, ok := p.NextEvent(); ok && a < st.next {
			st.next = a
		}
	}
	for i := max(sp.lo, P); i < sp.hi; i++ {
		s := e.sms[i-P]
		if s.Done() {
			continue
		}
		w, ok := s.NextWake(now)
		if !ok {
			st.mustTick = true
			return
		}
		if w < st.next {
			st.next = w
		}
	}
}

// runSpansSerial is the Cores=1 component phase: the same hook and span
// sweep as the pool path, with no synchronization at all.
func (e *Engine) runSpansSerial(now uint64) {
	if hook := e.opts.PhaseHook; hook != nil {
		hook(0, now)
	}
	for i := range e.spans {
		e.tickSpan(i, now)
	}
}

// phasePool is the persistent worker pool behind Options.Cores > 1. It
// lives for one Run: workers park between phases and exit when stop
// flips quit and bumps the sequence one last time.
type phasePool struct {
	e *Engine
	// seq announces phases: each bump releases the workers into one
	// steal loop. Its atomic store/load pair also publishes the plain
	// now and quit fields and the reset cursor.
	seq  atomic.Uint64
	now  uint64
	quit bool
	// cursor is the steal counter: the next span index to claim.
	// Workers claim ascending indices until the list is exhausted, so
	// every span runs exactly once per phase and the worker→span
	// assignment — the only nondeterministic quantity — is invisible to
	// the simulation.
	cursor atomic.Int64
	// remaining counts workers still inside the current phase; the
	// last one out posts a token on doneCh (cap 1, non-blocking).
	remaining atomic.Int32
	doneCh    chan struct{}
	// sleeping[w] marks worker w as parked on wakeCh[w]; the
	// coordinator CASes it back before posting a wake token, so
	// already-running workers cost one atomic load per phase.
	sleeping []atomic.Bool
	wakeCh   []chan struct{}
	// spin is how many condition-checks both sides burn before
	// parking; zero whenever the host can't actually run the workers
	// concurrently, where spinning would just steal the timeslice the
	// other side needs.
	spin int
	wg   sync.WaitGroup
}

func newPhasePool(e *Engine) *phasePool {
	n := e.workers
	pp := &phasePool{
		e:        e,
		doneCh:   make(chan struct{}, 1),
		sleeping: make([]atomic.Bool, n),
		wakeCh:   make([]chan struct{}, n),
		spin:     spinBudget(n),
	}
	for w := 1; w < n; w++ {
		pp.wakeCh[w] = make(chan struct{}, 1)
		pp.wg.Add(1)
		go pp.worker(w)
	}
	return pp
}

// spinBudget picks the busy-wait budget for a pool of n workers: a few
// thousand checks when the host has enough schedulable CPUs to run them
// all, zero otherwise (park immediately; on a single CPU the peer can
// only progress once we yield).
func spinBudget(n int) int {
	if runtime.GOMAXPROCS(0) < n || runtime.NumCPU() < n {
		return 0
	}
	return 4096
}

// runPhase executes one component phase across all spans and returns
// after every worker has drained its share of the steal loop. Called by
// the coordinator, which participates as worker 0. If a pool worker
// panicked, the recovered value is rethrown here as a *PhasePanicError
// so it unwinds through Run on the engine's own goroutine.
func (pp *phasePool) runPhase(now uint64) {
	n := pp.e.workers
	pp.now = now
	pp.cursor.Store(0)
	pp.remaining.Store(int32(n - 1))
	pp.seq.Add(1)
	for w := 1; w < n; w++ {
		if pp.sleeping[w].CompareAndSwap(true, false) {
			select {
			case pp.wakeCh[w] <- struct{}{}:
			default:
			}
		}
	}
	pp.runSpans(0)
	for i := 0; pp.remaining.Load() != 0; i++ {
		if i < pp.spin {
			continue
		}
		// Block until some phase posts completion. The token may be a
		// stale leftover (we previously observed remaining==0 by
		// spinning and left it unconsumed); the loop condition sorts
		// that out, and consuming it guarantees the next real post
		// finds room in the channel.
		<-pp.doneCh
	}
	for w := 1; w < n; w++ {
		if sl := &pp.e.wslots[w]; sl.panicVal != nil {
			panic(&PhasePanicError{Worker: w, Cycle: now, Value: sl.panicVal, Stack: sl.panicStack})
		}
	}
}

// runSpans is one worker's share of a component phase: fire the phase
// hook, then claim spans off the shared cursor until none remain. Every
// worker claims in ascending span order, so which worker runs a span is
// pure scheduling — the spans themselves, and everything the merge
// later reads, are identical at any core count.
func (pp *phasePool) runSpans(w int) {
	e := pp.e
	now := pp.now
	if hook := e.opts.PhaseHook; hook != nil {
		hook(w, now)
	}
	nspans := int64(len(e.spans))
	for {
		i := pp.cursor.Add(1) - 1
		if i >= nspans {
			return
		}
		e.tickSpan(int(i), now)
	}
}

// stop shuts the pool down. In the normal path no phase is in flight;
// on the coordinator-panic path workers may still be ticking, in which
// case they drain the steal loop, observe the bumped sequence, and
// exit.
func (pp *phasePool) stop() {
	pp.quit = true
	pp.seq.Add(1)
	for w := 1; w < pp.e.workers; w++ {
		if pp.sleeping[w].CompareAndSwap(true, false) {
			select {
			case pp.wakeCh[w] <- struct{}{}:
			default:
			}
		}
	}
	pp.wg.Wait()
}

func (pp *phasePool) worker(w int) {
	defer pp.wg.Done()
	// Label the goroutine so CPU profiles (and anything else reading
	// pprof labels) attribute phase work to its worker index.
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("phase_worker", strconv.Itoa(w))))
	var last uint64
	for {
		last = pp.await(w, last)
		if pp.quit {
			return
		}
		pp.runSpansRecover(w)
		if pp.remaining.Add(-1) == 0 {
			select {
			case pp.doneCh <- struct{}{}:
			default:
			}
		}
	}
}

// runSpansRecover runs the worker's steal loop behind a recover fence:
// a panic — whether from a span tick or the lane drain inside it — is
// recorded in the worker's slot for the coordinator to rethrow, instead
// of killing the process from a goroutine nobody is recovering on. The
// remaining spans are claimed by the other workers, whose results the
// rethrow then discards.
func (pp *phasePool) runSpansRecover(w int) {
	defer func() {
		if v := recover(); v != nil {
			sl := &pp.e.wslots[w]
			sl.panicVal = v
			sl.panicStack = debug.Stack()
		}
	}()
	pp.runSpans(w)
}

// await blocks until the phase sequence moves past last and returns the
// new value. The park protocol cannot miss a wakeup: the worker
// publishes sleeping=true *before* rechecking seq, and the coordinator
// bumps seq *before* scanning the sleeping flags — so either the worker
// sees the new seq and never parks, or the coordinator sees the flag
// and posts a token.
func (pp *phasePool) await(w int, last uint64) uint64 {
	for i := 0; ; i++ {
		if s := pp.seq.Load(); s != last {
			return s
		}
		if i < pp.spin {
			continue
		}
		pp.sleeping[w].Store(true)
		if s := pp.seq.Load(); s != last {
			pp.sleeping[w].Store(false)
			return s
		}
		<-pp.wakeCh[w]
		i = -1 // token may be stale; re-verify from the top
	}
}
