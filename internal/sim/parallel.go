// Phase-parallel ticking: the engine's second level of parallelism.
//
// The runner already parallelizes *across* simulations; this file
// parallelizes *inside* one. Each cycle's component phase — the L2
// partition ticks and the SM ticks, which only mutate component-local
// state — is striped across a small persistent worker pool
// (Options.Cores shards), with the coordinator running shard 0 itself.
// Everything that touches shared state (network pushes and pops, MSHR
// response delivery, recycled-store routing) stays on the coordinator,
// in fixed component order, so the simulation output is bit-identical
// at every core count. DESIGN.md §10 carries the full determinism
// argument.
//
// The barrier is a hybrid spin-then-park eventcount: phases are
// announced by bumping an atomic sequence number, completion by an
// atomic countdown. Both sides spin briefly when real CPUs are
// available and otherwise park on per-worker wake channels (capacity 1,
// non-blocking sends), so an oversubscribed or single-CPU host
// degrades to cheap channel handoffs instead of burning timeslices.
// Every park rechecks its condition in a loop, which makes stale
// tokens — at most one per channel — harmless.
package sim

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// shardResult is one shard's per-cycle output: whether its components
// did work, and its partial fast-forward fold (the earliest cycle any
// of its components has scheduled, or a mustTick veto). The pad keeps
// results on separate cache lines so concurrent writers don't false-
// share.
type shardResult struct {
	active bool
	// mustTick vetoes fast-forwarding: some component in the shard
	// needs per-cycle ticking (a draining LD/ST queue, a queued
	// partition request).
	mustTick bool
	// next is the shard's earliest scheduled component event, or
	// ^uint64(0) when none. Only meaningful when the whole cycle was
	// inactive — which is the only time the run loop reads it.
	next uint64
	// panicVal/panicStack record a panic recovered on a pool worker;
	// the coordinator rethrows it as a *PhasePanicError after the
	// barrier.
	panicVal   any
	panicStack []byte
	_          [72]byte
}

// PhasePanicError wraps a panic that escaped a simulation phase worker.
// The coordinator rethrows it on the engine's own goroutine, so it
// travels the same recovery path as a serial-engine panic: the runner
// catches it and surfaces a *runner.JobPanicError whose Value is this
// error, keeping the worker's original panic value and stack reachable.
type PhasePanicError struct {
	// Worker is the shard index the panic escaped from (1-based: shard
	// 0 runs on the coordinator and panics through Run directly).
	Worker int
	// Cycle is the simulated cycle whose component phase panicked.
	Cycle uint64
	// Value is the original panic value.
	Value any
	// Stack is the worker goroutine's stack at recovery time.
	Stack []byte
}

func (e *PhasePanicError) Error() string {
	return fmt.Sprintf("sim: phase worker %d panicked at cycle %d: %v", e.Worker, e.Cycle, e.Value)
}

// tickShard advances the components whose index ≡ worker (mod stride):
// first the L2 partitions, then the SMs — the same relative order the
// serial engine used. Ticks mutate only component-local state, so
// shards are disjoint by construction and need no locks. When the
// shard's components all took their idle path, the shard's fast-forward
// partial (mustTick / earliest next event) is computed in the same
// pass, which is what lets nextInterestingCycle run without a second
// component sweep.
func (e *Engine) tickShard(worker, stride int, now uint64, res *shardResult) {
	if hook := e.opts.PhaseHook; hook != nil {
		hook(worker, now)
	}
	active := false
	for i := worker; i < len(e.parts); i += stride {
		// A non-Busy partition's tick is a pure no-op and is skipped.
		if p := e.parts[i]; p.Busy(now) {
			p.Tick(now)
			active = true
		}
	}
	// A Done SM has no warps, no queued blocks, and a drained cache;
	// nothing can re-activate it (blocks are assigned only before the
	// cycle loop), so its tick is skipped outright.
	for i := worker; i < len(e.sms); i += stride {
		if s := e.sms[i]; !s.Done() && s.Tick(now) {
			active = true
		}
	}
	res.active = active
	res.mustTick = false
	res.next = ^uint64(0)
	if active {
		// The partial is never read for an active cycle.
		return
	}
	for i := worker; i < len(e.parts); i += stride {
		p := e.parts[i]
		if p.Queued() {
			res.mustTick = true
			return
		}
		if a, ok := p.NextEvent(); ok && a < res.next {
			res.next = a
		}
	}
	for i := worker; i < len(e.sms); i += stride {
		s := e.sms[i]
		if s.Done() {
			continue
		}
		w, ok := s.NextWake(now)
		if !ok {
			res.mustTick = true
			return
		}
		if w < res.next {
			res.next = w
		}
	}
}

// phasePool is the persistent worker pool behind Options.Cores > 1. It
// lives for one Run: workers park between phases and exit when stop
// flips quit and bumps the sequence one last time.
type phasePool struct {
	e *Engine
	// seq announces phases: each bump releases the workers into one
	// tickShard call. Its atomic store/load pair also publishes the
	// plain now and quit fields.
	seq  atomic.Uint64
	now  uint64
	quit bool
	// remaining counts workers still inside the current phase; the
	// last one out posts a token on doneCh (cap 1, non-blocking).
	remaining atomic.Int32
	doneCh    chan struct{}
	// sleeping[w] marks worker w as parked on wakeCh[w]; the
	// coordinator CASes it back before posting a wake token, so
	// already-running workers cost one atomic load per phase.
	sleeping []atomic.Bool
	wakeCh   []chan struct{}
	// spin is how many condition-checks both sides burn before
	// parking; zero whenever the host can't actually run the shards
	// concurrently, where spinning would just steal the timeslice the
	// other side needs.
	spin int
	wg   sync.WaitGroup
}

func newPhasePool(e *Engine) *phasePool {
	n := len(e.shards)
	pp := &phasePool{
		e:        e,
		doneCh:   make(chan struct{}, 1),
		sleeping: make([]atomic.Bool, n),
		wakeCh:   make([]chan struct{}, n),
		spin:     spinBudget(n),
	}
	for w := 1; w < n; w++ {
		pp.wakeCh[w] = make(chan struct{}, 1)
		pp.wg.Add(1)
		go pp.worker(w)
	}
	return pp
}

// spinBudget picks the busy-wait budget for a pool of n shards: a few
// thousand checks when the host has enough schedulable CPUs to run them
// all, zero otherwise (park immediately; on a single CPU the peer can
// only progress once we yield).
func spinBudget(n int) int {
	if runtime.GOMAXPROCS(0) < n || runtime.NumCPU() < n {
		return 0
	}
	return 4096
}

// runPhase executes one component phase across all shards and returns
// after every shard has finished. Called by the coordinator, which
// ticks shard 0 itself. If a worker's shard panicked, the recovered
// value is rethrown here as a *PhasePanicError so it unwinds through
// Run on the engine's own goroutine.
func (pp *phasePool) runPhase(now uint64) {
	n := len(pp.e.shards)
	pp.now = now
	pp.remaining.Store(int32(n - 1))
	pp.seq.Add(1)
	for w := 1; w < n; w++ {
		if pp.sleeping[w].CompareAndSwap(true, false) {
			select {
			case pp.wakeCh[w] <- struct{}{}:
			default:
			}
		}
	}
	pp.e.tickShard(0, n, now, &pp.e.shards[0])
	for i := 0; pp.remaining.Load() != 0; i++ {
		if i < pp.spin {
			continue
		}
		// Block until some phase posts completion. The token may be a
		// stale leftover (we previously observed remaining==0 by
		// spinning and left it unconsumed); the loop condition sorts
		// that out, and consuming it guarantees the next real post
		// finds room in the channel.
		<-pp.doneCh
	}
	for w := 1; w < n; w++ {
		if sh := &pp.e.shards[w]; sh.panicVal != nil {
			panic(&PhasePanicError{Worker: w, Cycle: now, Value: sh.panicVal, Stack: sh.panicStack})
		}
	}
}

// stop shuts the pool down. In the normal path no phase is in flight;
// on the coordinator-panic path workers may still be ticking, in which
// case they finish their shard, observe the bumped sequence, and exit.
func (pp *phasePool) stop() {
	pp.quit = true
	pp.seq.Add(1)
	for w := 1; w < len(pp.e.shards); w++ {
		if pp.sleeping[w].CompareAndSwap(true, false) {
			select {
			case pp.wakeCh[w] <- struct{}{}:
			default:
			}
		}
	}
	pp.wg.Wait()
}

func (pp *phasePool) worker(w int) {
	defer pp.wg.Done()
	n := len(pp.e.shards)
	var last uint64
	for {
		last = pp.await(w, last)
		if pp.quit {
			return
		}
		pp.tickRecover(w, n)
		if pp.remaining.Add(-1) == 0 {
			select {
			case pp.doneCh <- struct{}{}:
			default:
			}
		}
	}
}

// tickRecover runs the worker's shard with a recover fence: a panic is
// recorded in the shard result for the coordinator to rethrow, instead
// of killing the process from a goroutine nobody is recovering on.
func (pp *phasePool) tickRecover(w, n int) {
	sh := &pp.e.shards[w]
	defer func() {
		if v := recover(); v != nil {
			sh.panicVal = v
			sh.panicStack = debug.Stack()
		}
	}()
	pp.e.tickShard(w, n, pp.now, sh)
}

// await blocks until the phase sequence moves past last and returns the
// new value. The park protocol cannot miss a wakeup: the worker
// publishes sleeping=true *before* rechecking seq, and the coordinator
// bumps seq *before* scanning the sleeping flags — so either the worker
// sees the new seq and never parks, or the coordinator sees the flag
// and posts a token.
func (pp *phasePool) await(w int, last uint64) uint64 {
	for i := 0; ; i++ {
		if s := pp.seq.Load(); s != last {
			return s
		}
		if i < pp.spin {
			continue
		}
		pp.sleeping[w].Store(true)
		if s := pp.seq.Load(); s != last {
			pp.sleeping[w].Store(false)
			return s
		}
		<-pp.wakeCh[w]
		i = -1 // token may be stale; re-verify from the top
	}
}
