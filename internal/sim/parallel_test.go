package sim

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
)

// coreCounts is the matrix the differential tests sweep: serial, the
// smallest parallel pool, and more shards than this host has CPUs
// (which exercises the park path of the barrier).
var coreCounts = []int{1, 2, 8}

// TestCoresDifferential is the determinism pin for phase parallelism:
// the same kernel run at every core count — with SelfCheck sweeping the
// activity accounting on every leg — must produce bit-identical stats,
// across scheduler/throttle variants and both policies. Run under
// -race this is also the data-race proof for the component phase.
func TestCoresDifferential(t *testing.T) {
	for name, cfg := range activityConfigs() {
		for _, policy := range []config.Policy{config.PolicyBaseline, config.PolicyDLP} {
			t.Run(name+"/"+policy.String(), func(t *testing.T) {
				var want *stats.Stats
				for _, cores := range coreCounts {
					st, err := RunOnce(context.Background(), cfg, policy,
						mixedKernel(23), Options{SelfCheck: true, Cores: cores})
					if err != nil {
						t.Fatalf("cores=%d: %v", cores, err)
					}
					if want == nil {
						want = st
						continue
					}
					if *st != *want {
						t.Errorf("cores=%d diverged:\nserial  %+v\nparallel %+v", cores, want, st)
					}
				}
			})
		}
	}
}

// TestCoresFastForwardDifferential repeats the fast-forward proof on a
// parallel engine: the per-shard partial minima must fold to the same
// jumps the serial sweep computed, so disabling the optimization
// changes nothing but the stepped-cycle count.
func TestCoresFastForwardDifferential(t *testing.T) {
	cfg := config.Baseline()
	run := func(cores int, disableFF bool) (uint64, stats.Stats) {
		e, err := New(cfg, config.PolicyDLP, Options{SelfCheck: true, Cores: cores})
		if err != nil {
			t.Fatal(err)
		}
		e.disableFastForward = disableFF
		var stepped uint64
		e.testHook = func(uint64, bool) { stepped++ }
		st, err := e.Run(context.Background(), mixedKernel(31))
		if err != nil {
			t.Fatal(err)
		}
		return stepped, *st
	}
	_, serial := run(1, false)
	for _, cores := range []int{2, 8} {
		ffSteps, ffStats := run(cores, false)
		fullSteps, fullStats := run(cores, true)
		if ffStats != serial || fullStats != serial {
			t.Errorf("cores=%d diverged from serial:\nserial %+v\n    ff %+v\n  full %+v",
				cores, serial, ffStats, fullStats)
		}
		if ffSteps >= fullSteps {
			t.Errorf("cores=%d: fast-forward stepped %d cycles, full run %d: nothing was skipped",
				cores, ffSteps, fullSteps)
		}
	}
}

// TestCoresClamped proves Options.Cores beyond the component count is
// clamped rather than spawning useless workers.
func TestCoresClamped(t *testing.T) {
	cfg := config.Baseline()
	e, err := New(cfg, config.PolicyBaseline, Options{Cores: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if want := max(cfg.NumSMs, cfg.NumPartitions); len(e.shards) != want {
		t.Errorf("1024 cores clamped to %d shards, want %d", len(e.shards), want)
	}
}

// TestPhaseHookCoverage proves the hook seam fires on every shard of
// every stepped cycle — the property the fault-injection suite's
// worker-panic case relies on.
func TestPhaseHookCoverage(t *testing.T) {
	const cores = 4
	var perWorker [cores]atomic.Uint64
	_, err := RunOnce(context.Background(), config.Baseline(), config.PolicyDLP,
		mixedKernel(5), Options{
			Cores:     cores,
			PhaseHook: func(w int, _ uint64) { perWorker[w].Add(1) },
		})
	if err != nil {
		t.Fatal(err)
	}
	n := perWorker[0].Load()
	if n == 0 {
		t.Fatal("phase hook never fired")
	}
	for w := 1; w < cores; w++ {
		if got := perWorker[w].Load(); got != n {
			t.Errorf("worker %d saw %d phases, coordinator saw %d", w, got, n)
		}
	}
}

// TestPhaseWorkerPanicRethrown proves a panic on a pool worker is
// rethrown on the engine's goroutine as a typed *PhasePanicError
// carrying the worker's identity, panic value, and stack — the
// engine-level half of the runner's *JobPanicError guarantee.
func TestPhaseWorkerPanicRethrown(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("worker panic did not propagate")
		}
		pe, ok := v.(*PhasePanicError)
		if !ok {
			t.Fatalf("propagated as %T (%v), want *PhasePanicError", v, v)
		}
		if pe.Worker != 1 {
			t.Errorf("Worker = %d, want 1", pe.Worker)
		}
		if want := "injected phase fault"; pe.Value != want {
			t.Errorf("Value = %v, want %q", pe.Value, want)
		}
		if !strings.Contains(string(pe.Stack), "tickShard") {
			t.Errorf("stack does not show the phase tick:\n%s", pe.Stack)
		}
		var err error = pe
		if !errors.As(err, &pe) {
			t.Error("not reachable through errors.As")
		}
	}()
	_, _ = RunOnce(context.Background(), config.Baseline(), config.PolicyDLP,
		mixedKernel(5), Options{
			Cores: 2,
			PhaseHook: func(w int, cycle uint64) {
				if w == 1 && cycle >= 3 {
					panic("injected phase fault")
				}
			},
		})
}
