package sim

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
)

// coreCounts is the matrix the differential tests sweep: serial, the
// smallest parallel pool, odd counts off any power-of-two span boundary
// (the work-stealing schedule must be bit-identical there too), and
// more workers than this host has CPUs (which exercises the park path
// of the barrier).
var coreCounts = []int{1, 2, 3, 5, 7, 8}

// TestCoresDifferential is the determinism pin for phase parallelism:
// the same kernel run at every core count — with SelfCheck sweeping the
// activity accounting on every leg — must produce bit-identical stats,
// across scheduler/throttle variants and both policies. Run under
// -race this is also the data-race proof for the component phase.
func TestCoresDifferential(t *testing.T) {
	for name, cfg := range activityConfigs() {
		for _, policy := range []config.Policy{config.PolicyBaseline, config.PolicyDLP} {
			t.Run(name+"/"+policy.String(), func(t *testing.T) {
				var want *stats.Stats
				for _, cores := range coreCounts {
					st, err := RunOnce(context.Background(), cfg, policy,
						mixedKernel(23), Options{SelfCheck: true, Cores: cores})
					if err != nil {
						t.Fatalf("cores=%d: %v", cores, err)
					}
					if want == nil {
						want = st
						continue
					}
					if *st != *want {
						t.Errorf("cores=%d diverged:\nserial  %+v\nparallel %+v", cores, want, st)
					}
				}
			})
		}
	}
}

// TestCoresFastForwardDifferential repeats the fast-forward proof on a
// parallel engine: the per-shard partial minima must fold to the same
// jumps the serial sweep computed, so disabling the optimization
// changes nothing but the stepped-cycle count.
func TestCoresFastForwardDifferential(t *testing.T) {
	cfg := config.Baseline()
	run := func(cores int, disableFF bool) (uint64, stats.Stats) {
		e, err := New(cfg, config.PolicyDLP, Options{SelfCheck: true, Cores: cores})
		if err != nil {
			t.Fatal(err)
		}
		e.disableFastForward = disableFF
		var stepped uint64
		e.testHook = func(uint64, bool) { stepped++ }
		st, err := e.Run(context.Background(), mixedKernel(31))
		if err != nil {
			t.Fatal(err)
		}
		return stepped, *st
	}
	_, serial := run(1, false)
	for _, cores := range []int{2, 8} {
		ffSteps, ffStats := run(cores, false)
		fullSteps, fullStats := run(cores, true)
		if ffStats != serial || fullStats != serial {
			t.Errorf("cores=%d diverged from serial:\nserial %+v\n    ff %+v\n  full %+v",
				cores, serial, ffStats, fullStats)
		}
		if ffSteps >= fullSteps {
			t.Errorf("cores=%d: fast-forward stepped %d cycles, full run %d: nothing was skipped",
				cores, ffSteps, fullSteps)
		}
	}
}

// TestCoresClamped proves Options.Cores beyond the component count is
// clamped rather than spawning useless workers, and that the span list
// never exceeds the component count either.
func TestCoresClamped(t *testing.T) {
	cfg := config.Baseline()
	e, err := New(cfg, config.PolicyBaseline, Options{Cores: 1024})
	if err != nil {
		t.Fatal(err)
	}
	total := cfg.NumSMs + cfg.NumPartitions
	if e.workers != total {
		t.Errorf("1024 cores clamped to %d workers, want %d", e.workers, total)
	}
	if len(e.spans) != total {
		t.Errorf("1024 cores produced %d spans, want %d (every span non-empty)", len(e.spans), total)
	}
}

// TestPhaseHookCoverage proves the hook seam fires on every shard of
// every stepped cycle — the property the fault-injection suite's
// worker-panic case relies on.
func TestPhaseHookCoverage(t *testing.T) {
	const cores = 4
	var perWorker [cores]atomic.Uint64
	_, err := RunOnce(context.Background(), config.Baseline(), config.PolicyDLP,
		mixedKernel(5), Options{
			Cores:     cores,
			PhaseHook: func(w int, _ uint64) { perWorker[w].Add(1) },
		})
	if err != nil {
		t.Fatal(err)
	}
	n := perWorker[0].Load()
	if n == 0 {
		t.Fatal("phase hook never fired")
	}
	for w := 1; w < cores; w++ {
		if got := perWorker[w].Load(); got != n {
			t.Errorf("worker %d saw %d phases, coordinator saw %d", w, got, n)
		}
	}
}

// TestPhaseWorkerPanicRethrown proves a panic on a pool worker is
// rethrown on the engine's goroutine as a typed *PhasePanicError
// carrying the worker's identity, panic value, and stack — the
// engine-level half of the runner's *JobPanicError guarantee.
func TestPhaseWorkerPanicRethrown(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("worker panic did not propagate")
		}
		pe, ok := v.(*PhasePanicError)
		if !ok {
			t.Fatalf("propagated as %T (%v), want *PhasePanicError", v, v)
		}
		if pe.Worker != 1 {
			t.Errorf("Worker = %d, want 1", pe.Worker)
		}
		if want := "injected phase fault"; pe.Value != want {
			t.Errorf("Value = %v, want %q", pe.Value, want)
		}
		if !strings.Contains(string(pe.Stack), "runSpans") {
			t.Errorf("stack does not show the steal loop:\n%s", pe.Stack)
		}
		var err error = pe
		if !errors.As(err, &pe) {
			t.Error("not reachable through errors.As")
		}
	}()
	_, _ = RunOnce(context.Background(), config.Baseline(), config.PolicyDLP,
		mixedKernel(5), Options{
			Cores: 2,
			PhaseHook: func(w int, cycle uint64) {
				if w == 1 && cycle >= 3 {
					panic("injected phase fault")
				}
			},
		})
}

// TestMakeSpans pins the span layout invariants the determinism
// argument rests on: for any component total and span count the spans
// are non-empty, contiguous, gap-free, and cover [0, total) in
// ascending order — so the merge's fixed span order is exactly
// ascending component order.
func TestMakeSpans(t *testing.T) {
	for _, total := range []int{1, 2, 3, 7, 12, 28, 28 + 1, 96} {
		for n := 1; n <= total; n++ {
			spans := makeSpans(total, n)
			if len(spans) != n {
				t.Fatalf("makeSpans(%d,%d): %d spans", total, n, len(spans))
			}
			next := 0
			for i, sp := range spans {
				if sp.lo != next {
					t.Fatalf("makeSpans(%d,%d): span %d starts at %d, want %d", total, n, i, sp.lo, next)
				}
				if sp.hi <= sp.lo {
					t.Fatalf("makeSpans(%d,%d): span %d empty [%d,%d)", total, n, i, sp.lo, sp.hi)
				}
				next = sp.hi
			}
			if next != total {
				t.Fatalf("makeSpans(%d,%d): covers [0,%d), want [0,%d)", total, n, next, total)
			}
		}
	}
}

// TestStealScheduleClaimsEachSpanOnce proves the work-stealing cursor's
// core property: in every stepped cycle, every span is claimed exactly
// once — no span is skipped, none ticked twice — regardless of how the
// claims land on workers.
func TestStealScheduleClaimsEachSpanOnce(t *testing.T) {
	e, err := New(config.Baseline(), config.PolicyDLP, Options{Cores: 5})
	if err != nil {
		t.Fatal(err)
	}
	claims := make([]atomic.Uint64, len(e.spans))
	e.spanHook = func(span int, _ uint64) { claims[span].Add(1) }
	var stepped uint64
	e.testHook = func(uint64, bool) { stepped++ }
	if _, err := e.Run(context.Background(), mixedKernel(17)); err != nil {
		t.Fatal(err)
	}
	if stepped == 0 {
		t.Fatal("no cycles stepped")
	}
	for si := range claims {
		if got := claims[si].Load(); got != stepped {
			t.Errorf("span %d claimed %d times over %d stepped cycles", si, got, stepped)
		}
	}
}

// TestStealScheduleDeterminismOddCores is the focused odd-core pin: the
// same kernel at cores 3, 5 and 7 — span counts that never divide the
// component count evenly — must reproduce the serial stats exactly,
// with the invariant sweeps on.
func TestStealScheduleDeterminismOddCores(t *testing.T) {
	cfg := config.Baseline()
	ref, err := RunOnce(context.Background(), cfg, config.PolicyDLP,
		mixedKernel(41), Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{3, 5, 7} {
		st, err := RunOnce(context.Background(), cfg, config.PolicyDLP,
			mixedKernel(41), Options{SelfCheck: true, Cores: cores})
		if err != nil {
			t.Fatalf("cores=%d: %v", cores, err)
		}
		if *st != *ref {
			t.Errorf("cores=%d diverged:\nserial %+v\nstolen %+v", cores, ref, st)
		}
	}
}

// TestSpanPanicSurfacesThroughMerge injects a panic inside a span tick
// itself (not the phase hook), on whichever worker claims the span: the
// run must surface it promptly — as a *PhasePanicError when a pool
// worker claimed the span, or as the raw value when the coordinator did
// — and never wedge the barrier.
func TestSpanPanicSurfacesThroughMerge(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("span panic did not propagate")
		}
		if pe, ok := v.(*PhasePanicError); ok {
			if want := "injected span fault"; pe.Value != want {
				t.Errorf("Value = %v, want %q", pe.Value, want)
			}
			return
		}
		if v != "injected span fault" {
			t.Fatalf("propagated as %T (%v)", v, v)
		}
	}()
	e, err := New(config.Baseline(), config.PolicyDLP, Options{Cores: 3})
	if err != nil {
		t.Fatal(err)
	}
	e.spanHook = func(span int, cycle uint64) {
		if span == len(e.spans)-1 && cycle >= 3 {
			panic("injected span fault")
		}
	}
	_, _ = e.Run(context.Background(), mixedKernel(5))
	t.Fatal("run returned normally despite the injected panic")
}
