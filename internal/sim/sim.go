// Package sim is the simulation engine: it wires SMs, their L1D caches,
// the interconnect, the L2 partitions and DRAM channels into one machine,
// dispatches a kernel's thread blocks, and steps everything cycle by
// cycle until the kernel drains.
package sim

import (
	"context"
	"fmt"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/interconnect"
	"repro/internal/l2"
	"repro/internal/mem"
	"repro/internal/metrics"
	policypkg "repro/internal/policy"
	"repro/internal/sm"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options tune engine behavior beyond the hardware configuration.
type Options struct {
	// MaxCycles aborts runaway simulations; 0 means the default (50M).
	MaxCycles uint64
	// BackgroundFlitsPerKInsn models L1I/L1C/L1T traffic sharing the
	// interconnect (§6.4): flits added per 1000 thread instructions.
	// nil means the default (60); point at an explicit value — including
	// 0, e.g. sim.Float(0), to disable the model. Negative values are
	// treated as 0.
	BackgroundFlitsPerKInsn *float64
	// InjectionRate is the max packets one L1D hands to the ICNT per
	// cycle; 0 means the default (2).
	InjectionRate int
	// SelfCheck enables sampled per-cycle verification of the DLP
	// invariants the paper's correctness rests on: PL counters within
	// the PDBits field, protected lines never exceeding a set's
	// associativity, PDPT protection distances within bounds, VTA
	// geometry matching the TDA, and mid-run stats conservation.
	// Violations surface as typed *core.InvariantError values wrapped
	// with the cycle they were caught at. The checks never mutate
	// state, so an enabled run produces byte-identical results to a
	// disabled one — which is also why SelfCheck is excluded from the
	// runner's cache key.
	SelfCheck bool
	// Cores sets the engine's internal phase parallelism: how many
	// shards tick the SMs and L2 partitions concurrently each cycle.
	// 0 or 1 means fully serial (no extra goroutines). Results are
	// bit-identical at every value — the parallel phase only touches
	// component-local state, and all cross-component interaction runs
	// serially in fixed SM/partition order (see DESIGN.md §10) — so
	// Cores, like SelfCheck, is excluded from the runner's cache key.
	// Values beyond the component count are clamped.
	Cores int
	// DisableFastForward forces the run loop to step every cycle
	// instead of jumping over provably idle windows. Fast-forwarding is
	// unobservable by construction, so results are bit-identical either
	// way — which is exactly what the conformance corpus and the
	// differential fuzzer re-prove on every geometry they visit by
	// running a ff-disabled engine against the default one. Like
	// SelfCheck and Cores it is execution policy, not simulation input,
	// and is excluded from the runner's cache key.
	DisableFastForward bool
	// PhaseHook, when non-nil, is called by every shard (the
	// coordinator is shard 0) at the top of each component phase with
	// the shard's worker index and the current cycle. It is a test and
	// fault-injection seam — e.g. proving a panic on a phase worker
	// surfaces as a typed error — and must not mutate engine state. It
	// never affects results and is excluded from cache keys.
	PhaseHook func(worker int, cycle uint64)
	// Metrics enables cycle-domain observability: every
	// Metrics.Interval() cycles the engine samples a registry of
	// counters and gauges registered by its components (L1D, VTA, PDPT,
	// MSHR queues, L2 partitions, crossbar, SM schedulers) into
	// Metrics.Sink. Cycles skipped by fast-forward still get their
	// sampling-boundary rows: a skipped cycle is provably a no-op, so
	// the engine emits the row with the state at the jump point,
	// attributed to the boundary cycle. Sampled series are therefore
	// identical at every Cores value and with fast-forward disabled.
	// Sampling reads counters the components maintain anyway, never
	// perturbs simulation state, and a nil Metrics (or nil Sink) costs
	// one nil check per boundary — so Metrics, like SelfCheck, is
	// excluded from the runner's cache key.
	Metrics *metrics.Config
}

// Float returns a pointer to v, for populating optional Options fields:
// Options{BackgroundFlitsPerKInsn: sim.Float(0)} disables background
// traffic, which the old zero-means-default encoding could not express.
func Float(v float64) *float64 { return &v }

func (o Options) withDefaults() Options {
	if o.MaxCycles == 0 {
		o.MaxCycles = 50_000_000
	}
	switch {
	case o.BackgroundFlitsPerKInsn == nil:
		o.BackgroundFlitsPerKInsn = Float(60)
	case *o.BackgroundFlitsPerKInsn < 0:
		o.BackgroundFlitsPerKInsn = Float(0)
	default:
		// Private copy so the engine never aliases caller memory.
		o.BackgroundFlitsPerKInsn = Float(*o.BackgroundFlitsPerKInsn)
	}
	if o.InjectionRate == 0 {
		o.InjectionRate = 2
	}
	if o.Cores < 1 {
		o.Cores = 1
	}
	return o
}

// Canonical resolves every default and sentinel to its effective value,
// so two Options that drive the engine identically compare — and hash —
// identically. The runner's result cache keys on this form.
func (o Options) Canonical() Options { return o.withDefaults() }

// Engine is one simulated GPU.
type Engine struct {
	cfg    *config.Config
	policy config.Policy
	opts   Options

	sms   []*sm.SM
	net   *interconnect.Network
	parts []*l2.Partition
	netSt *stats.Stats
	// partSt holds one Stats per L2 partition. Partitions tick
	// concurrently under Options.Cores > 1, so they cannot share one
	// counter block; the per-partition sums are folded in collect,
	// where uint64 addition makes the totals independent of core count.
	partSt []*stats.Stats

	// pools recycle mem.Request objects, one unlocked pool per SM: an
	// SM allocates from and returns loads to its own pool during its
	// span's tick. Store requests consumed by L2 partitions are
	// deferred into per-partition recyclers; the partition's span
	// drains them into its outPut lane, the serial merge bins them by
	// destination span (Request.SM), and the destination span returns
	// them to the owning pool at the top of the next component phase —
	// so pools stay unlocked and the steady state allocation-free at
	// any core count.
	pools     []*mem.Pool
	recyclers []*mem.Recycler

	// workers is the effective phase parallelism (Options.Cores clamped
	// to the component count); spans is the contiguous partition of the
	// unified component index space the workers steal from, and spanSt
	// holds each span's inboxes, lanes, activity flag and fast-forward
	// partial. partSpan/smSpan map a component to its owning span for
	// the serial binning steps.
	workers  int
	spans    []span
	spanSt   []spanState
	partSpan []int32
	smSpan   []int32
	// wslots records panics recovered on pool workers (index ≥ 1); the
	// coordinator rethrows them after the phase barrier.
	wslots []workerSlot
	// pp is the persistent phase-worker pool, non-nil only while Run
	// executes with more than one worker.
	pp *phasePool

	// mreg/msink/mevery/mlabel drive the optional cycle-domain metrics
	// sampling (Options.Metrics); mreg is nil when sampling is off, so
	// the disabled cost in the run loop is a single nil check. mlast
	// remembers the last sampled cycle so the end-of-run row is not
	// duplicated when the drain cycle sits on a sampling boundary.
	mreg   *metrics.Registry
	msink  metrics.Sink
	mevery uint64
	mlabel string
	mlast  uint64

	// testHook, when set by a test in this package, observes every
	// stepped cycle (skipped cycles are not observed — that they carry
	// no observable work is exactly what the activity property tests
	// verify).
	testHook func(cycle uint64, active bool)
	// spanHook, when set by a test in this package, observes every span
	// claim of every component phase (it may run concurrently on
	// several workers). The steal-schedule tests use it to prove each
	// span is claimed exactly once per stepped cycle.
	spanHook func(span int, cycle uint64)
	// disableFastForward forces the run loop to step every cycle; the
	// differential property tests use it to prove fast-forwarding
	// changes nothing but wall-clock time.
	disableFastForward bool
}

// New builds an engine for the configuration and L1D policy.
func New(cfg *config.Config, policy config.Policy, opts Options) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if _, ok := policypkg.Lookup(policy); !ok {
		return nil, fmt.Errorf("sim: %q is not a registered policy (want %s)", policy, policypkg.Usage())
	}
	opts = opts.withDefaults()
	e := &Engine{
		cfg:                cfg,
		policy:             policy,
		opts:               opts,
		netSt:              &stats.Stats{},
		disableFastForward: opts.DisableFastForward,
	}
	e.pools = make([]*mem.Pool, cfg.NumSMs)
	e.sms = make([]*sm.SM, cfg.NumSMs)
	for i := range e.sms {
		e.pools[i] = mem.NewPool()
		e.sms[i] = sm.New(cfg, i, policy, e.pools[i])
	}
	e.net = interconnect.New(cfg.ICNTLatency, cfg.ICNTBandwidthFlits,
		cfg.ICNTFlitBytes, cfg.L1D.LineSize, e.netSt)
	e.partSt = make([]*stats.Stats, cfg.NumPartitions)
	e.recyclers = make([]*mem.Recycler, cfg.NumPartitions)
	e.parts = make([]*l2.Partition, cfg.NumPartitions)
	for i := range e.parts {
		e.partSt[i] = &stats.Stats{}
		e.recyclers[i] = &mem.Recycler{}
		e.parts[i] = l2.New(cfg, e.partSt[i], nil)
		e.parts[i].SetRecycler(e.recyclers[i])
	}
	// Work-stealing spans over the unified component index space:
	// partitions first, then SMs. Workers beyond the component count
	// could never have work and are clamped; the span count gives each
	// worker a few spans to claim (spansPerWorker) so one hot span
	// doesn't serialize a phase, while keeping the serial lane merge
	// O(spans). A serial engine uses a single span — one inbox apply,
	// one sweep, one merge handoff per direction.
	total := cfg.NumSMs + cfg.NumPartitions
	cores := opts.Cores
	if cores > total {
		cores = total
	}
	e.workers = cores
	nspans := 1
	if cores > 1 {
		nspans = min(cores*spansPerWorker, total)
	}
	e.spans = makeSpans(total, nspans)
	e.spanSt = make([]spanState, nspans)
	e.wslots = make([]workerSlot, cores)
	e.partSpan = make([]int32, cfg.NumPartitions)
	e.smSpan = make([]int32, cfg.NumSMs)
	for si, sp := range e.spans {
		for i := sp.lo; i < sp.hi; i++ {
			if i < cfg.NumPartitions {
				e.partSpan[i] = int32(si)
			} else {
				e.smSpan[i-cfg.NumPartitions] = int32(si)
			}
		}
	}
	if opts.Metrics.Enabled() {
		e.registerMetrics(opts.Metrics)
	}
	return e, nil
}

// Run executes the kernel to completion and returns aggregated stats.
// The context is checked periodically inside the cycle loop, so a
// cancelled sweep stops within a few thousand simulated cycles instead
// of running its kernels to completion.
func (e *Engine) Run(ctx context.Context, k *trace.Kernel) (*stats.Stats, error) {
	if err := k.Validate(e.cfg.WarpSize); err != nil {
		return nil, err
	}
	for i, b := range k.Blocks {
		if len(b.Warps) > e.cfg.MaxWarpsPerSM {
			return nil, &LaunchError{Kernel: k.Name, Detail: fmt.Sprintf(
				"block %d has %d warps but an SM holds at most %d resident",
				i, len(b.Warps), e.cfg.MaxWarpsPerSM)}
		}
	}
	for i, b := range k.Blocks {
		e.sms[i%len(e.sms)].AssignBlock(b)
	}
	return e.runLoop(ctx, k.Name)
}

// RunStream executes a lazily generated kernel stream to completion.
// It is Run with the launch shape read from the stream instead of a
// materialized kernel: blocks round-robin onto SMs in the same order,
// and each SM pulls instruction windows through per-warp cursors as
// warps advance. Stats are bit-identical to Run on the materialized
// equivalent (see trace.Materialize).
func (e *Engine) RunStream(ctx context.Context, src trace.Stream) (*stats.Stats, error) {
	name := src.Name()
	blocks := src.Blocks()
	if blocks == 0 {
		return nil, fmt.Errorf("kernel %q has no blocks", name)
	}
	for bi := 0; bi < blocks; bi++ {
		warps := src.Warps(bi)
		if warps == 0 {
			return nil, fmt.Errorf("kernel %q block %d has no warps", name, bi)
		}
		if warps > e.cfg.MaxWarpsPerSM {
			return nil, &LaunchError{Kernel: name, Detail: fmt.Sprintf(
				"block %d has %d warps but an SM holds at most %d resident",
				bi, warps, e.cfg.MaxWarpsPerSM)}
		}
	}
	for bi := 0; bi < blocks; bi++ {
		e.sms[bi%len(e.sms)].AssignStream(src, bi)
	}
	return e.runLoop(ctx, name)
}

// runLoop steps the machine until the launched work drains, the cycle
// budget runs out, or the machine wedges. Both Run and RunStream land
// here after assigning their blocks.
func (e *Engine) runLoop(ctx context.Context, name string) (*stats.Stats, error) {
	// With more than one worker, spin up the persistent phase-worker
	// pool for the duration of the run. The deferred stop also runs on
	// the panic path (a coordinator panic unwinding through Run), so
	// worker goroutines never outlive the run that spawned them.
	if e.workers > 1 {
		pp := newPhasePool(e)
		e.pp = pp
		defer func() {
			pp.stop()
			e.pp = nil
		}()
	}

	var cycle uint64
	lastActive := uint64(0) // most recent cycle that did any work
	for cycle = 1; cycle <= e.opts.MaxCycles; cycle++ {
		if cycle&4095 == 0 {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("sim: kernel %q aborted after %d cycles: %w",
					name, cycle, ctx.Err())
			default:
			}
		}
		active := e.step(cycle)
		if active {
			lastActive = cycle
		}
		// Sampled self-checking: cheap enough to leave on for whole
		// suites (one sweep every selfCheckPeriod cycles) while still
		// catching a corrupted-state bug within ~2k cycles of its
		// introduction instead of at the end-of-run figures.
		if e.opts.SelfCheck && cycle&(selfCheckPeriod-1) == 0 {
			if err := e.selfCheck(name, cycle); err != nil {
				return nil, err
			}
		}
		if e.testHook != nil {
			e.testHook(cycle, active)
		}
		// Metrics sampling happens after the cycle's work (and after a
		// passing self-check) but before the quiescence break, so a
		// boundary coinciding with the drain cycle is captured here and
		// suppressed from the end-of-run row below.
		if e.mreg != nil && cycle%e.mevery == 0 {
			e.emitSample(cycle)
		}
		if cycle%32 == 0 {
			if e.quiescent() {
				break
			}
			// Wedge detection piggybacks on the quiescence boundary: work
			// outstanding but nothing has happened for a whole window —
			// a dropped wakeup, not a long latency (see DeadlockError).
			if cycle-lastActive >= deadlockWindow {
				return nil, &DeadlockError{Kernel: name, Cycle: cycle, Idle: cycle - lastActive}
			}
		}
		// Fast-forward: when this cycle did no work, every following
		// cycle up to the machine's next scheduled event is provably
		// identical no-op, so jump the clock there directly. The target
		// is clamped so no periodic boundary (context check, self-check,
		// quiescence check when nothing is scheduled) is ever skipped —
		// skipped cycles are exactly the ones the unoptimized loop would
		// have stepped through without touching any state or counter.
		if !active && !e.disableFastForward {
			if next, ok := e.nextInterestingCycle(cycle); ok && next > cycle+1 {
				// Attribute sampling boundaries inside the skipped window
				// to their boundary cycle before jumping: the machine
				// state cannot change across the window (each skipped
				// cycle is a proven no-op), so the rows the unoptimized
				// loop would have emitted at those boundaries carry
				// exactly the current values. The boundary at next
				// itself, if any, is stepped and sampled normally.
				if e.mreg != nil {
					for b := cycle - cycle%e.mevery + e.mevery; b < next; b += e.mevery {
						e.emitSample(b)
					}
				}
				cycle = next - 1
			}
		}
	}
	if cycle > e.opts.MaxCycles {
		if !e.quiescent() {
			return nil, &CycleLimitError{Kernel: name, MaxCycles: e.opts.MaxCycles}
		}
	}

	// A final full sweep at drain time, so even sub-period kernels get
	// checked at least once.
	if e.opts.SelfCheck {
		if err := e.selfCheck(name, cycle); err != nil {
			return nil, err
		}
	}

	// One final row at the drain (or timeout-boundary) cycle, so every
	// series ends with the simulation's closing counter values even when
	// the run length is not a multiple of the sampling period.
	if e.mreg != nil && e.mlast != cycle {
		e.emitSample(cycle)
	}

	total := e.collect()
	total.Cycles = cycle
	total.ICNTFlits += uint64(*e.opts.BackgroundFlitsPerKInsn * float64(total.Instructions) / 1000)
	if err := total.CheckConservation(); err != nil {
		return nil, err
	}
	return total, nil
}

// CycleLimitError reports a kernel that was still making progress when
// it ran out of its MaxCycles budget. It is typed so mechanized
// callers (the conformance fuzzer) can tell "this configuration is too
// slow for the budget" — a property of the input, to be skipped or
// re-run with a larger budget — from an engine failure. A wedged
// engine does NOT produce this error: no-progress cycles trip the
// quiescence check or the wall-clock deadline instead.
type CycleLimitError struct {
	Kernel    string
	MaxCycles uint64
}

func (e *CycleLimitError) Error() string {
	return fmt.Sprintf("sim: kernel %q did not finish within %d cycles", e.Kernel, e.MaxCycles)
}

// DeadlockError reports a wedged machine: warps or requests still
// outstanding, but no component has done any work for deadlockWindow
// consecutive cycles. Every latency in the simulated machine — DRAM,
// queues, protection lifetimes, sampling windows — is orders of
// magnitude below the window, so a gap this long can only mean a
// dropped wakeup or an unservable request, never a slow configuration
// (contrast CycleLimitError). The fuzzer classifies this as a hang
// without waiting for the wall-clock deadline.
type DeadlockError struct {
	Kernel string
	Cycle  uint64 // cycle at which the deadlock was declared
	Idle   uint64 // consecutive cycles with no activity
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: kernel %q deadlocked: no activity for %d cycles (at cycle %d) with work outstanding",
		e.Kernel, e.Idle, e.Cycle)
}

// deadlockWindow is how many consecutive no-op cycles the run loop
// tolerates before declaring the machine wedged. The longest
// legitimate quiet stretch is a full DRAM round trip behind every
// queue in the machine — thousands of cycles — so 2^20 leaves three
// orders of magnitude of slack.
const deadlockWindow uint64 = 1 << 20

// LaunchError reports a kernel that cannot run on the configured
// machine — e.g. a thread block with more warps than one SM can hold
// resident. Real hardware rejects such launches synchronously; without
// this check the block would sit unadmitted forever and the run would
// wedge (the SM deliberately never splits a block, see
// internal/sm TestOversizedBlockNeverAdmitted).
type LaunchError struct {
	Kernel string
	Detail string
}

func (e *LaunchError) Error() string {
	return fmt.Sprintf("sim: kernel %q cannot launch: %s", e.Kernel, e.Detail)
}

// selfCheckPeriod is the sampling interval (in core cycles) of the
// SelfCheck invariant sweeps. Must be a power of two.
const selfCheckPeriod = 2048

// selfCheck sweeps every SM's L1D for violated DLP invariants and wraps
// the first finding with the cycle it was caught at. The typed
// *core.InvariantError stays reachable through errors.As. It also
// validates the engine's O(1) activity accounting (liveWarps counters,
// counter-form quiescence) against full sweeps, so the fast-path
// bookkeeping cannot silently drift from the state it summarizes.
func (e *Engine) selfCheck(name string, cycle uint64) error {
	for i, s := range e.sms {
		if err := s.L1D().CheckInvariants(); err != nil {
			return fmt.Errorf("sim: kernel %q self-check failed at cycle %d (SM %d): %w",
				name, cycle, i, err)
		}
	}
	if err := e.checkActivity(); err != nil {
		return fmt.Errorf("sim: kernel %q self-check failed at cycle %d: %w", name, cycle, err)
	}
	return nil
}

// step advances the whole machine one core cycle. Core, ICNT and L2 run
// in the 650 MHz domain; the DRAM channels convert to the 924 MHz memory
// clock internally (Table 1). It reports whether the cycle did any real
// work: a false return certifies that no component changed state or
// counters (beyond clock fields), which is the precondition for the
// caller's fast-forward. Idle components are skipped via their O(1)
// activity accounting — a Done SM or a non-Busy partition ticks to the
// exact same state the full tick would have produced.
//
// The cycle is phase-structured so the component ticks can run on
// multiple workers with bit-identical output at any core count, and so
// the serial portions do O(spans) — not O(SMs + partitions + packets) —
// heavy work:
//
//  1. Serial binning pre-phase: tick the interconnect, then pop every
//     arrived packet and bin it by destination span — one pointer
//     append per packet, no cache or MSHR work. Pushes go to the
//     network's injection queues, which PopArrived never observes in
//     the same cycle, so hoisting delivery ahead of the component ticks
//     is equivalent to the old interleaved order.
//  2. Component phase (stolen spans, parallel): each claimed span first
//     applies its inboxes — recycled stores back to their SM pools,
//     binned requests into partitions, binned responses into L1D MSHRs
//     (the expensive half of delivery, now parallel) — then ticks its
//     components, then drains outbound packets into its own lanes:
//     partition responses and recycled stores in partition order, SM
//     fetches under the injection-rate bound in SM order. Ticks and
//     lane drains only touch component-local and span-local state, so
//     spans share nothing.
//  3. Serial lane merge, in fixed ascending span order: each non-empty
//     outbound lane is handed to the network as one segment (an O(1)
//     slice handoff returning a recycled buffer), and recycled stores
//     are binned to their destination span's inbox for the next phase.
//     Spans ascend the component index space and each lane was filled
//     in component order, so the concatenated per-direction injection
//     order — and hence every packet sequence number — is exactly the
//     serial engine's.
func (e *Engine) step(now uint64) bool {
	// An injection-queue packet means this network tick does real work.
	active := e.net.HasWaiting()
	e.net.Tick(now)

	// Bin arrived request packets by their partition's span.
	for {
		req := e.net.PopArrived(interconnect.ToMem)
		if req == nil {
			break
		}
		p := addr.PartitionOf(req.Addr, e.cfg.L1D.LineSize, len(e.parts))
		st := &e.spanSt[e.partSpan[p]]
		st.inMem = append(st.inMem, req)
		active = true
	}

	// Bin arrived responses by the issuing SM's span.
	for {
		resp := e.net.PopArrived(interconnect.ToCore)
		if resp == nil {
			break
		}
		st := &e.spanSt[e.smSpan[resp.SM]]
		st.inCore = append(st.inCore, resp)
		active = true
	}

	// Component phase. With one worker it runs inline; otherwise the
	// coordinator claims spans alongside the pool's workers, and the
	// barrier inside runPhase orders their writes before the merge
	// below.
	if e.pp != nil {
		e.pp.runPhase(now)
	} else {
		e.runSpansSerial(now)
	}

	// Serial lane merge, fixed span order.
	for i := range e.spanSt {
		st := &e.spanSt[i]
		if st.active {
			active = true
		}
		if len(st.outCore) > 0 {
			st.outCore = e.net.PushBatch(interconnect.ToCore, st.outCore)
		}
		if len(st.outMem) > 0 {
			st.outMem = e.net.PushBatch(interconnect.ToMem, st.outMem)
		}
		// Route recycled stores to their issuing SM's span; the span
		// applies them at the top of the next phase. Bounded: each
		// partition retires at most one request per cycle, so this loop
		// moves at most NumPartitions pointers.
		for j, r := range st.outPut {
			st.outPut[j] = nil
			d := &e.spanSt[e.smSpan[r.SM]]
			d.inPut = append(d.inPut, r)
		}
		st.outPut = st.outPut[:0]
	}
	return active
}

// nextInterestingCycle computes the earliest future cycle at which the
// machine can do real work, assuming the current cycle was fully
// inactive. ok=false means some component needs per-cycle ticking (a
// draining LD/ST queue, a queued partition request, a ready warp) and
// no jump is safe. The component sweep is pre-folded: each span
// recorded its partial minimum (or a mustTick veto) while ticking, so
// this only folds len(spans) partials with the serial network checks.
// The partials are valid exactly when this is called — the run loop
// only fast-forwards inactive cycles, and an inactive cycle means every
// span took the idle path that computes them. The result is clamped to
// the periodic boundaries the run loop must still observe: the
// 4096-cycle context check, the self-check sampling grid when enabled,
// the next 32-cycle quiescence check when no event is scheduled at all,
// and MaxCycles+1.
func (e *Engine) nextInterestingCycle(now uint64) (uint64, bool) {
	const inf = ^uint64(0)
	if e.net.HasWaiting() {
		return 0, false
	}
	t := inf
	if a, ok := e.net.NextArrival(); ok {
		t = a
	}
	for i := range e.spanSt {
		st := &e.spanSt[i]
		if st.mustTick {
			return 0, false
		}
		if st.next < t {
			t = st.next
		}
	}
	if t == inf {
		// Nothing scheduled anywhere: only the quiescence check (or the
		// MaxCycles timeout for a wedged machine) can end the run. Jump
		// from boundary to boundary.
		t = now/32*32 + 32
	}
	if b := now/4096*4096 + 4096; t > b {
		t = b
	}
	if e.opts.SelfCheck {
		if b := now/selfCheckPeriod*selfCheckPeriod + selfCheckPeriod; t > b {
			t = b
		}
	}
	if t > e.opts.MaxCycles+1 {
		t = e.opts.MaxCycles + 1
	}
	return t, true
}

// quiescent reports whether every component has fully drained. Every
// term is O(1): SM completion is counter-based (sm.Done), and the
// network/partition checks are length comparisons. The sweep-based
// equivalent lives in quiescentDeep and is cross-checked against this
// form by the sampled self-checks and the activity property tests.
func (e *Engine) quiescent() bool {
	for _, s := range e.sms {
		if !s.Done() {
			return false
		}
	}
	if e.net.Pending() {
		return false
	}
	for _, p := range e.parts {
		if p.Pending() {
			return false
		}
	}
	return true
}

// quiescentDeep recomputes quiescence from first principles — sweeping
// every warp slot instead of trusting the liveWarps counters. The run
// loop never calls it; it exists so self-checks and tests can prove the
// counter form equivalent.
func (e *Engine) quiescentDeep() bool {
	for _, s := range e.sms {
		if !s.DoneSweep() {
			return false
		}
	}
	if e.net.Pending() {
		return false
	}
	for _, p := range e.parts {
		if p.Pending() {
			return false
		}
	}
	return true
}

// checkActivity validates the O(1) activity accounting against full
// sweeps: per-SM counter integrity and engine-level quiescence
// agreement. Run by the sampled self-checks, so fault-injection suites
// exercising SelfCheck verify it continuously.
func (e *Engine) checkActivity() error {
	for i, s := range e.sms {
		if err := s.CheckActivity(); err != nil {
			return fmt.Errorf("SM %d activity accounting: %w", i, err)
		}
	}
	if q, d := e.quiescent(), e.quiescentDeep(); q != d {
		return fmt.Errorf("quiescent()=%v but quiescentDeep()=%v", q, d)
	}
	return nil
}

// collect sums per-component stats into one Stats. The partition order
// of the fold is fixed, and every counter is a uint64 sum, so the total
// is identical at every core count.
func (e *Engine) collect() *stats.Stats {
	total := &stats.Stats{}
	for _, s := range e.sms {
		total.Add(s.Stats())
		total.Add(s.L1D().Stats())
	}
	total.Add(e.netSt)
	for _, st := range e.partSt {
		total.Add(st)
	}
	return total
}

// RunOnce is the package-level convenience entry point: build an engine
// and run one kernel under one policy.
func RunOnce(ctx context.Context, cfg *config.Config, policy config.Policy, k *trace.Kernel, opts Options) (*stats.Stats, error) {
	e, err := New(cfg, policy, opts)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx, k)
}

// RunStreamOnce is RunOnce for a lazily generated stream.
func RunStreamOnce(ctx context.Context, cfg *config.Config, policy config.Policy, src trace.Stream, opts Options) (*stats.Stats, error) {
	e, err := New(cfg, policy, opts)
	if err != nil {
		return nil, err
	}
	return e.RunStream(ctx, src)
}
