// Package sim is the simulation engine: it wires SMs, their L1D caches,
// the interconnect, the L2 partitions and DRAM channels into one machine,
// dispatches a kernel's thread blocks, and steps everything cycle by
// cycle until the kernel drains.
package sim

import (
	"context"
	"fmt"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/interconnect"
	"repro/internal/l2"
	"repro/internal/sm"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options tune engine behavior beyond the hardware configuration.
type Options struct {
	// MaxCycles aborts runaway simulations; 0 means the default (50M).
	MaxCycles uint64
	// BackgroundFlitsPerKInsn models L1I/L1C/L1T traffic sharing the
	// interconnect (§6.4): flits added per 1000 thread instructions.
	// nil means the default (60); point at an explicit value — including
	// 0, e.g. sim.Float(0), to disable the model. Negative values are
	// treated as 0.
	BackgroundFlitsPerKInsn *float64
	// InjectionRate is the max packets one L1D hands to the ICNT per
	// cycle; 0 means the default (2).
	InjectionRate int
	// SelfCheck enables sampled per-cycle verification of the DLP
	// invariants the paper's correctness rests on: PL counters within
	// the PDBits field, protected lines never exceeding a set's
	// associativity, PDPT protection distances within bounds, VTA
	// geometry matching the TDA, and mid-run stats conservation.
	// Violations surface as typed *core.InvariantError values wrapped
	// with the cycle they were caught at. The checks never mutate
	// state, so an enabled run produces byte-identical results to a
	// disabled one — which is also why SelfCheck is excluded from the
	// runner's cache key.
	SelfCheck bool
}

// Float returns a pointer to v, for populating optional Options fields:
// Options{BackgroundFlitsPerKInsn: sim.Float(0)} disables background
// traffic, which the old zero-means-default encoding could not express.
func Float(v float64) *float64 { return &v }

func (o Options) withDefaults() Options {
	if o.MaxCycles == 0 {
		o.MaxCycles = 50_000_000
	}
	switch {
	case o.BackgroundFlitsPerKInsn == nil:
		o.BackgroundFlitsPerKInsn = Float(60)
	case *o.BackgroundFlitsPerKInsn < 0:
		o.BackgroundFlitsPerKInsn = Float(0)
	default:
		// Private copy so the engine never aliases caller memory.
		o.BackgroundFlitsPerKInsn = Float(*o.BackgroundFlitsPerKInsn)
	}
	if o.InjectionRate == 0 {
		o.InjectionRate = 2
	}
	return o
}

// Canonical resolves every default and sentinel to its effective value,
// so two Options that drive the engine identically compare — and hash —
// identically. The runner's result cache keys on this form.
func (o Options) Canonical() Options { return o.withDefaults() }

// Engine is one simulated GPU.
type Engine struct {
	cfg    *config.Config
	policy config.Policy
	opts   Options

	sms   []*sm.SM
	net   *interconnect.Network
	parts []*l2.Partition
	netSt *stats.Stats
	memSt *stats.Stats
}

// New builds an engine for the configuration and L1D policy.
func New(cfg *config.Config, policy config.Policy, opts Options) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	e := &Engine{
		cfg:    cfg,
		policy: policy,
		opts:   opts,
		netSt:  &stats.Stats{},
		memSt:  &stats.Stats{},
	}
	e.sms = make([]*sm.SM, cfg.NumSMs)
	for i := range e.sms {
		e.sms[i] = sm.New(cfg, i, policy)
	}
	e.net = interconnect.New(cfg.ICNTLatency, cfg.ICNTBandwidthFlits,
		cfg.ICNTFlitBytes, cfg.L1D.LineSize, e.netSt)
	e.parts = make([]*l2.Partition, cfg.NumPartitions)
	for i := range e.parts {
		e.parts[i] = l2.New(cfg, e.memSt)
	}
	return e, nil
}

// Run executes the kernel to completion and returns aggregated stats.
// The context is checked periodically inside the cycle loop, so a
// cancelled sweep stops within a few thousand simulated cycles instead
// of running its kernels to completion.
func (e *Engine) Run(ctx context.Context, k *trace.Kernel) (*stats.Stats, error) {
	if err := k.Validate(e.cfg.WarpSize); err != nil {
		return nil, err
	}
	for i, b := range k.Blocks {
		e.sms[i%len(e.sms)].AssignBlock(b)
	}

	var cycle uint64
	for cycle = 1; cycle <= e.opts.MaxCycles; cycle++ {
		if cycle&4095 == 0 {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("sim: kernel %q aborted after %d cycles: %w",
					k.Name, cycle, ctx.Err())
			default:
			}
		}
		e.step(cycle)
		// Sampled self-checking: cheap enough to leave on for whole
		// suites (one sweep every selfCheckPeriod cycles) while still
		// catching a corrupted-state bug within ~2k cycles of its
		// introduction instead of at the end-of-run figures.
		if e.opts.SelfCheck && cycle&(selfCheckPeriod-1) == 0 {
			if err := e.selfCheck(k, cycle); err != nil {
				return nil, err
			}
		}
		if cycle%32 == 0 && e.quiescent() {
			break
		}
	}
	if cycle > e.opts.MaxCycles {
		if !e.quiescent() {
			return nil, fmt.Errorf("sim: kernel %q did not finish within %d cycles",
				k.Name, e.opts.MaxCycles)
		}
	}

	// A final full sweep at drain time, so even sub-period kernels get
	// checked at least once.
	if e.opts.SelfCheck {
		if err := e.selfCheck(k, cycle); err != nil {
			return nil, err
		}
	}

	total := e.collect()
	total.Cycles = cycle
	total.ICNTFlits += uint64(*e.opts.BackgroundFlitsPerKInsn * float64(total.Instructions) / 1000)
	if err := total.CheckConservation(); err != nil {
		return nil, err
	}
	return total, nil
}

// selfCheckPeriod is the sampling interval (in core cycles) of the
// SelfCheck invariant sweeps. Must be a power of two.
const selfCheckPeriod = 2048

// selfCheck sweeps every SM's L1D for violated DLP invariants and wraps
// the first finding with the cycle it was caught at. The typed
// *core.InvariantError stays reachable through errors.As.
func (e *Engine) selfCheck(k *trace.Kernel, cycle uint64) error {
	for i, s := range e.sms {
		if err := s.L1D().CheckInvariants(); err != nil {
			return fmt.Errorf("sim: kernel %q self-check failed at cycle %d (SM %d): %w",
				k.Name, cycle, i, err)
		}
	}
	return nil
}

// step advances the whole machine one core cycle. Core, ICNT and L2 run
// in the 650 MHz domain; the DRAM channels convert to the 924 MHz memory
// clock internally (Table 1).
func (e *Engine) step(now uint64) {
	e.net.Tick(now)

	// Deliver request packets to their memory partition.
	for {
		req := e.net.PopArrived(interconnect.ToMem)
		if req == nil {
			break
		}
		p := addr.PartitionOf(req.Addr, e.cfg.L1D.LineSize, len(e.parts))
		e.parts[p].Enqueue(req)
	}

	// Advance partitions and ship their responses back.
	for _, p := range e.parts {
		p.Tick(now)
		for {
			resp := p.PopResponse()
			if resp == nil {
				break
			}
			e.net.Push(interconnect.ToCore, resp)
		}
	}

	// Deliver responses to the issuing SM's L1D.
	for {
		resp := e.net.PopArrived(interconnect.ToCore)
		if resp == nil {
			break
		}
		e.sms[resp.SM].L1D().OnResponse(resp)
	}

	// Advance the cores and collect their outgoing fetches.
	for _, s := range e.sms {
		s.Tick(now)
		for i := 0; i < e.opts.InjectionRate; i++ {
			out := s.L1D().PopOutgoing()
			if out == nil {
				break
			}
			e.net.Push(interconnect.ToMem, out)
		}
	}
}

// quiescent reports whether every component has fully drained.
func (e *Engine) quiescent() bool {
	for _, s := range e.sms {
		if !s.Done() || s.L1D().HasOutgoing() {
			return false
		}
	}
	if e.net.Pending() {
		return false
	}
	for _, p := range e.parts {
		if p.Pending() {
			return false
		}
	}
	return true
}

// collect sums per-component stats into one Stats.
func (e *Engine) collect() *stats.Stats {
	total := &stats.Stats{}
	for _, s := range e.sms {
		total.Add(s.Stats())
		total.Add(s.L1D().Stats())
	}
	total.Add(e.netSt)
	total.Add(e.memSt)
	return total
}

// RunOnce is the package-level convenience entry point: build an engine
// and run one kernel under one policy.
func RunOnce(ctx context.Context, cfg *config.Config, policy config.Policy, k *trace.Kernel, opts Options) (*stats.Stats, error) {
	e, err := New(cfg, policy, opts)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx, k)
}
