package sim

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/policy"
	"repro/internal/prng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// streamKernel builds blocks of warps that each stream over a private
// range of lines with the given reuse: every line is loaded `touches`
// times in a row.
func streamKernel(name string, blocks, warpsPerBlock, linesPerWarp, touches int) *trace.Kernel {
	k := &trace.Kernel{Name: name}
	pc := uint32(0)
	base := 0
	for b := 0; b < blocks; b++ {
		blk := &trace.Block{}
		for w := 0; w < warpsPerBlock; w++ {
			wt := &trace.WarpTrace{}
			for l := 0; l < linesPerWarp; l++ {
				line := base + l
				for t := 0; t < touches; t++ {
					wt.Instrs = append(wt.Instrs,
						trace.NewLoad(pc%8, []addr.Addr{addr.Addr(line * 128)}))
				}
				wt.Instrs = append(wt.Instrs, trace.NewCompute(100, 4, 32))
			}
			base += linesPerWarp
			blk.Warps = append(blk.Warps, wt)
		}
		k.Blocks = append(k.Blocks, blk)
	}
	return k
}

func mustRun(t *testing.T, cfg *config.Config, policy config.Policy, k *trace.Kernel) *stats.Stats {
	t.Helper()
	st, err := RunOnce(context.Background(), cfg, policy, k, Options{})
	if err != nil {
		t.Fatalf("RunOnce(%s, %s): %v", policy, k.Name, err)
	}
	return st
}

func TestTinyKernelCompletes(t *testing.T) {
	k := streamKernel("tiny", 2, 2, 4, 2)
	st := mustRun(t, config.Baseline(), config.PolicyBaseline, k)
	if st.Cycles == 0 || st.Instructions == 0 {
		t.Fatalf("empty stats: %+v", st)
	}
	// 2 blocks x 2 warps x 4 lines x (2 loads + 1 compute) = 48 warp insns.
	if st.WarpInsns != 48 {
		t.Errorf("WarpInsns = %d, want 48", st.WarpInsns)
	}
	// Each line loaded twice: second load hits.
	if st.L1DAccesses != 32 || st.L1DHits != 16 {
		t.Errorf("accesses/hits = %d/%d, want 32/16", st.L1DAccesses, st.L1DHits)
	}
	if err := st.CheckConservation(); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	k1 := streamKernel("d", 4, 4, 8, 3)
	k2 := streamKernel("d", 4, 4, 8, 3)
	for _, p := range policy.All() {
		a := mustRun(t, config.Baseline(), p, k1)
		b := mustRun(t, config.Baseline(), p, k2)
		if *a != *b {
			t.Errorf("%v: nondeterministic stats:\n%+v\nvs\n%+v", p, a, b)
		}
	}
}

func TestInvalidKernelRejected(t *testing.T) {
	if _, err := RunOnce(context.Background(), config.Baseline(), config.PolicyBaseline, &trace.Kernel{Name: "x"}, Options{}); err == nil {
		t.Error("empty kernel accepted")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := config.Baseline()
	cfg.NumSMs = 0
	if _, err := New(cfg, config.PolicyBaseline, Options{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestCycleLimitEnforced(t *testing.T) {
	k := streamKernel("long", 8, 4, 64, 4)
	_, err := RunOnce(context.Background(), config.Baseline(), config.PolicyBaseline, k, Options{MaxCycles: 50})
	if err == nil {
		t.Error("runaway kernel not reported")
	}
	var cl *CycleLimitError
	if !errors.As(err, &cl) {
		t.Errorf("cycle-budget overrun not typed: %v", err)
	} else if cl.MaxCycles != 50 {
		t.Errorf("CycleLimitError.MaxCycles = %d, want 50", cl.MaxCycles)
	}
}

func TestOversizedBlockRejectedAtLaunch(t *testing.T) {
	// A block with more warps than one SM's residency limit can never be
	// scheduled; launching it used to wedge the machine forever (found by
	// the differential fuzzer). It must fail fast with a typed error.
	cfg := config.Baseline()
	cfg.MaxWarpsPerSM = 2
	k := streamKernel("oversized", 1, 3, 2, 1)
	_, err := RunOnce(context.Background(), cfg, config.PolicyBaseline, k, Options{})
	var le *LaunchError
	if !errors.As(err, &le) {
		t.Fatalf("oversized block not rejected with LaunchError: %v", err)
	}
	if le.Kernel != "oversized" {
		t.Errorf("LaunchError.Kernel = %q", le.Kernel)
	}
}

func TestBlocksDistributedAcrossSMs(t *testing.T) {
	// 32 independent single-warp blocks over 16 SMs: at least two SMs'
	// worth of parallelism must appear as far fewer cycles than serial.
	wide := streamKernel("wide", 32, 1, 16, 1)
	narrow := streamKernel("narrow", 1, 1, 16*32, 1)
	ws := mustRun(t, config.Baseline(), config.PolicyBaseline, wide)
	ns := mustRun(t, config.Baseline(), config.PolicyBaseline, narrow)
	if ws.Cycles*4 > ns.Cycles*3 {
		t.Errorf("wide grid %d cycles vs narrow %d: no multi-SM speedup", ws.Cycles, ns.Cycles)
	}
}

// TestThrashingMicrobenchmark builds the paper's core scenario: more
// distinct lines per set than associativity with real reuse. DLP must
// beat baseline IPC, and a doubled cache must beat baseline too.
func TestThrashingMicrobenchmark(t *testing.T) {
	// Each SM runs one warp cycling over 8 lines that collide in one set
	// (linear index makes collisions predictable). Reuse distance 7
	// exceeds the 4-way associativity — pure LRU never hits — but stays
	// within the VTA's reach (TDA + VTA = 8), so DLP learns protection.
	cfg := config.Baseline()
	cfg.L1D.Hashed = false
	k := &trace.Kernel{Name: "thrash"}
	for b := 0; b < 16; b++ {
		blk := &trace.Block{}
		wt := &trace.WarpTrace{}
		for rep := 0; rep < 150; rep++ {
			for l := 0; l < 8; l++ {
				// Stride of Sets*lineSize pins one set; each block gets
				// a private line range.
				line := addr.Addr((uint64(b*8+l) * uint64(cfg.L1D.Sets)) * 128)
				wt.Instrs = append(wt.Instrs, trace.NewLoad(uint32(l%4), []addr.Addr{line}))
			}
		}
		wt.Instrs = append(wt.Instrs, trace.NewCompute(99, 4, 32))
		blk.Warps = append(blk.Warps, wt)
		k.Blocks = append(k.Blocks, blk)
	}

	base := mustRun(t, cfg, config.PolicyBaseline, k)
	dlp := mustRun(t, cfg, config.PolicyDLP, k)
	big := mustRun(t, config.L1D32KB(), config.PolicyBaseline, k)

	if dlp.IPC() <= base.IPC() {
		t.Errorf("DLP IPC %.4f not above baseline %.4f on a thrashing kernel",
			dlp.IPC(), base.IPC())
	}
	_ = big
	if dlp.L1DHitRate() <= base.L1DHitRate() {
		t.Errorf("DLP hit rate %.4f not above baseline %.4f",
			dlp.L1DHitRate(), base.L1DHitRate())
	}
	if dlp.L1DEvictions >= base.L1DEvictions {
		t.Errorf("DLP evictions %d not below baseline %d", dlp.L1DEvictions, base.L1DEvictions)
	}
}

// TestCacheFriendlyKernelUnharmed: when reuse distances fit the cache,
// DLP must track baseline closely (the paper's CS guarantee, §6.1.1).
func TestCacheFriendlyKernelUnharmed(t *testing.T) {
	k := streamKernel("friendly", 16, 4, 8, 4)
	base := mustRun(t, config.Baseline(), config.PolicyBaseline, k)
	dlp := mustRun(t, config.Baseline(), config.PolicyDLP, k)
	ratio := dlp.IPC() / base.IPC()
	if ratio < 0.95 {
		t.Errorf("DLP lost %.1f%% IPC on a cache-friendly kernel", (1-ratio)*100)
	}
}

func TestBackgroundTrafficAccounted(t *testing.T) {
	k := streamKernel("bg", 2, 2, 4, 1)
	with, err := RunOnce(context.Background(), config.Baseline(), config.PolicyBaseline, k, Options{BackgroundFlitsPerKInsn: Float(100)})
	if err != nil {
		t.Fatal(err)
	}
	without, err := RunOnce(context.Background(), config.Baseline(), config.PolicyBaseline, k, Options{BackgroundFlitsPerKInsn: Float(0)})
	if err != nil {
		t.Fatal(err)
	}
	wantExtra := uint64(100 * float64(with.Instructions) / 1000)
	if with.ICNTFlits != without.ICNTFlits+wantExtra {
		t.Errorf("background flits: with=%d without=%d wantExtra=%d",
			with.ICNTFlits, without.ICNTFlits, wantExtra)
	}
	if with.ICNTDataFlits != without.ICNTDataFlits {
		t.Error("background traffic leaked into data flits")
	}
}

// TestBackgroundTrafficSentinels pins the Options encoding: nil means
// the default (60), an explicit zero disables, negatives clamp to zero.
// Before the pointer encoding, an intentional zero was inexpressible.
func TestBackgroundTrafficSentinels(t *testing.T) {
	if got := *(Options{}).Canonical().BackgroundFlitsPerKInsn; got != 60 {
		t.Errorf("nil background flits canonicalized to %g, want default 60", got)
	}
	if got := *(Options{BackgroundFlitsPerKInsn: Float(0)}).Canonical().BackgroundFlitsPerKInsn; got != 0 {
		t.Errorf("explicit zero canonicalized to %g, want 0", got)
	}
	if got := *(Options{BackgroundFlitsPerKInsn: Float(-1)}).Canonical().BackgroundFlitsPerKInsn; got != 0 {
		t.Errorf("negative canonicalized to %g, want 0", got)
	}
	v := 7.0
	o := Options{BackgroundFlitsPerKInsn: &v}
	if o.Canonical().BackgroundFlitsPerKInsn == &v {
		t.Error("Canonical aliases caller memory")
	}
}

// TestRunCancelled: a cancelled context aborts the cycle loop promptly
// with the cause attached.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	k := streamKernel("cancel", 8, 4, 64, 4)
	_, err := RunOnce(ctx, config.Baseline(), config.PolicyBaseline, k, Options{})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
}

// TestRandomKernelsAllPolicies drives randomly generated small kernels
// through every policy and checks the machine-wide invariants: the run
// completes, accounting balances, and a repeat run is bit-identical.
func TestRandomKernelsAllPolicies(t *testing.T) {
	f := func(seed uint64, blocks, warps, instrs uint8) bool {
		nb := int(blocks)%4 + 1
		nw := int(warps)%6 + 1
		ni := int(instrs)%24 + 1
		build := func() *trace.Kernel {
			rng := prng.New(seed)
			k := &trace.Kernel{Name: "fuzz"}
			for b := 0; b < nb; b++ {
				blk := &trace.Block{}
				for w := 0; w < nw; w++ {
					wt := &trace.WarpTrace{}
					for i := 0; i < ni; i++ {
						switch rng.Intn(4) {
						case 0:
							wt.Instrs = append(wt.Instrs,
								trace.NewCompute(uint32(100+rng.Intn(4)), 1+rng.Intn(8), 1+rng.Intn(32)))
						case 1:
							wt.Instrs = append(wt.Instrs,
								trace.NewStore(uint32(rng.Intn(8)), randAddrs(rng, 1+rng.Intn(32))))
						default:
							wt.Instrs = append(wt.Instrs,
								trace.NewLoad(uint32(rng.Intn(8)), randAddrs(rng, 1+rng.Intn(32))))
						}
					}
					blk.Warps = append(blk.Warps, wt)
				}
				k.Blocks = append(k.Blocks, blk)
			}
			return k
		}
		for _, p := range policy.All() {
			a, err := RunOnce(context.Background(), config.Baseline(), p, build(), Options{MaxCycles: 2_000_000})
			if err != nil {
				t.Logf("policy %v: %v", p, err)
				return false
			}
			if err := a.CheckConservation(); err != nil {
				t.Logf("policy %v: %v", p, err)
				return false
			}
			b, err := RunOnce(context.Background(), config.Baseline(), p, build(), Options{MaxCycles: 2_000_000})
			if err != nil || *a != *b {
				t.Logf("policy %v: nondeterministic or failed rerun", p)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func randAddrs(rng *prng.Source, n int) []addr.Addr {
	out := make([]addr.Addr, n)
	for i := range out {
		out[i] = addr.Addr(rng.Intn(1 << 20))
	}
	return out
}

// TestLRRSchedulerEndToEnd runs a kernel under the alternative scheduler.
func TestLRRSchedulerEndToEnd(t *testing.T) {
	cfg := config.Baseline()
	cfg.Scheduler = config.SchedLRR
	k := streamKernel("lrr", 4, 4, 8, 2)
	st := mustRun(t, cfg, config.PolicyDLP, k)
	if err := st.CheckConservation(); err != nil {
		t.Error(err)
	}
	if st.WarpInsns == 0 {
		t.Error("no instructions issued under LRR")
	}
}

// TestWarpThrottleEndToEnd: throttling reduces thrashing on the
// microbenchmark (CCWS-style effect) while completing correctly.
func TestWarpThrottleEndToEnd(t *testing.T) {
	k := streamKernel("thr", 4, 8, 8, 3)
	free := mustRun(t, config.Baseline(), config.PolicyBaseline, k)
	cfg := config.Baseline()
	cfg.MaxActiveWarps = 2
	thr := mustRun(t, cfg, config.PolicyBaseline, k)
	if err := thr.CheckConservation(); err != nil {
		t.Error(err)
	}
	if thr.WarpInsns != free.WarpInsns {
		t.Errorf("throttled run issued %d warp insns vs %d", thr.WarpInsns, free.WarpInsns)
	}
}
