package sim

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/config"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// diffSynth is the differential test's kernel: small enough that the
// 7-policy × 3-core matrix stays fast, mixed enough (every pattern
// class plus stores and phase rotation) that a stream-window bug in
// any issue path would skew the stats.
var diffSynth = workloads.SynthSpec{
	Name: "stream-diff", Seed: 0x5eed,
	Blocks: 8, WarpsPerBlock: 12, MemInsnsPerWarp: 120, ComputeRun: 2,
	FootprintLines: 256, HotLines: 8, StorePct: 20,
	StreamPct: 3, StridePct: 2, GatherPct: 2, HotPct: 2, ConflictPct: 1,
	PhaseLen: 25, PhaseRotate: 2,
}

// TestStreamMatchesPrecomputedAllPolicies is the tentpole differential:
// for every registered policy and cores 1/2/8, running the lazily
// generated stream must produce bit-identical stats to running the
// eagerly materialized kernel, with the engine's sampled invariant
// sweeps enabled throughout.
func TestStreamMatchesPrecomputedAllPolicies(t *testing.T) {
	cfg := config.Baseline()
	k := diffSynth.Kernel()
	for _, pol := range policy.All() {
		ref, err := RunOnce(context.Background(), cfg, pol, k, Options{SelfCheck: true})
		if err != nil {
			t.Fatalf("eager %s: %v", pol, err)
		}
		for _, cores := range []int{1, 2, 8} {
			st, err := RunStreamOnce(context.Background(), cfg, pol, diffSynth.Stream(),
				Options{SelfCheck: true, Cores: cores})
			if err != nil {
				t.Fatalf("streamed %s cores=%d: %v", pol, cores, err)
			}
			if *st != *ref {
				t.Errorf("streamed %s cores=%d diverged from eager:\n  eager    %+v\n  streamed %+v",
					pol, cores, ref, st)
			}
		}
	}
}

// TestStreamMatchesPrecomputedTable2 spot-checks the registry
// generators' stream replay against their eager output on real
// Table 2 apps — one CS, one CI with gathers (BFS), one with shared
// per-block state (BP) — at scale 1 and a scaled variant.
func TestStreamMatchesPrecomputedTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-app differential in -short mode")
	}
	cfg := config.Baseline()
	for _, abbr := range []string{"SC", "BP", "BFS"} {
		spec, err := workloads.ByAbbr(abbr)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := RunOnce(context.Background(), cfg, config.PolicyDLP, spec.Generate(), Options{})
		if err != nil {
			t.Fatalf("eager %s: %v", abbr, err)
		}
		st, err := RunStreamOnce(context.Background(), cfg, config.PolicyDLP, spec.Stream(1), Options{Cores: 2})
		if err != nil {
			t.Fatalf("streamed %s: %v", abbr, err)
		}
		if *st != *ref {
			t.Errorf("%s: streamed diverged from eager:\n  eager    %+v\n  streamed %+v", abbr, ref, st)
		}
	}
	// Scaled variant: the stream and the scaled materialization must
	// agree too (the scaled kernel is not the paper suite's golden
	// trace, so this guards the scale plumbing itself).
	spec, err := workloads.ByAbbr("SC")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunOnce(context.Background(), cfg, config.PolicyDLP, spec.ScaledKernel(3), Options{})
	if err != nil {
		t.Fatalf("eager scaled SC: %v", err)
	}
	st, err := RunStreamOnce(context.Background(), cfg, config.PolicyDLP, spec.Stream(3), Options{})
	if err != nil {
		t.Fatalf("streamed scaled SC: %v", err)
	}
	if *st != *ref {
		t.Errorf("scaled SC: streamed diverged from eager:\n  eager    %+v\n  streamed %+v", ref, st)
	}
}

// TestStreamMultiKernel runs a MultiStream concatenating two apps and
// checks it against eagerly materializing the same concatenation.
func TestStreamMultiKernel(t *testing.T) {
	cfg := config.Baseline()
	sc, err := workloads.ByAbbr("SC")
	if err != nil {
		t.Fatal(err)
	}
	bp, err := workloads.ByAbbr("BP")
	if err != nil {
		t.Fatal(err)
	}
	multi := trace.NewMultiStream("SC+BP", sc.Stream(1), bp.Stream(1))
	ref, err := RunOnce(context.Background(), cfg, config.PolicyDLP, trace.Materialize(multi), Options{})
	if err != nil {
		t.Fatalf("eager multi: %v", err)
	}
	st, err := RunStreamOnce(context.Background(), cfg, config.PolicyDLP, multi, Options{})
	if err != nil {
		t.Fatalf("streamed multi: %v", err)
	}
	if *st != *ref {
		t.Errorf("multi-kernel stream diverged from eager:\n  eager    %+v\n  streamed %+v", ref, st)
	}
}

// heapHighWater runs one simulation sampling the live heap every 4096
// stepped cycles and returns the maximum HeapAlloc observed together
// with the run's stats.
func heapHighWater(t *testing.T, cfg *config.Config, run func(*Engine) (*stats.Stats, error)) (uint64, *stats.Stats) {
	t.Helper()
	e, err := New(cfg, config.PolicyBaseline, Options{})
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var peak uint64
	var ms runtime.MemStats
	sample := func() {
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	e.testHook = func(cycle uint64, active bool) {
		if cycle&4095 == 0 {
			sample()
		}
	}
	st, err := run(e)
	if err != nil {
		t.Fatal(err)
	}
	sample()
	return peak, st
}

// TestStreamBoundsLiveHeap proves the streamed frontend's memory
// claim: on a scaled workload the streamed run's live-heap high-water
// must stay strictly below the eager run's, which necessarily holds
// the whole materialized trace for the run's duration.
func TestStreamBoundsLiveHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("heap profiling run in -short mode")
	}
	spec := workloads.SynthSpec{
		Name: "heap-probe", Seed: 7,
		Blocks: 16, WarpsPerBlock: 16, MemInsnsPerWarp: 200,
		FootprintLines: 512, StorePct: 10,
		StreamPct: 2, GatherPct: 1, HotPct: 1,
	}.Scaled(6)
	eagerPeak, ref := heapHighWater(t, config.Baseline(), func(e *Engine) (*stats.Stats, error) {
		k := spec.Kernel()
		k.PrecomputeCoalesced(config.Baseline().L1D.LineSize)
		return e.Run(context.Background(), k)
	})
	streamPeak, st := heapHighWater(t, config.Baseline(), func(e *Engine) (*stats.Stats, error) {
		return e.RunStream(context.Background(), spec.Stream())
	})
	if *st != *ref {
		t.Fatalf("heap-probe streamed diverged from eager:\n  eager    %+v\n  streamed %+v", ref, st)
	}
	if streamPeak >= eagerPeak {
		t.Errorf("streamed live-heap high-water %d B >= eager %d B; chunked refill should not hold the full trace",
			streamPeak, eagerPeak)
	}
	t.Logf("live-heap high-water: eager %.1f MB, streamed %.1f MB",
		float64(eagerPeak)/(1<<20), float64(streamPeak)/(1<<20))
}
