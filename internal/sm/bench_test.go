package sm

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/trace"
)

// storeBench builds an SM with one resident warp holding a single
// 32-lane store (one coalesced line) and issues it once so every free
// list is primed. The returned step function runs one full issue+drain
// round: re-issue the store, push it through the L1D, and recycle the
// request — the complete LD/ST issue path.
func storeBench() (s *SM, step func()) {
	cfg := config.Baseline()
	pool := mem.NewPool()
	s = New(cfg, 0, config.PolicyBaseline, pool)
	addrs := make([]addr.Addr, 32)
	for i := range addrs {
		addrs[i] = addr.Addr(i * 4) // 32 lanes, one 128B line
	}
	tr := &trace.WarpTrace{Instrs: []trace.Instr{trace.NewStore(1, addrs)}}
	s.AssignBlock(&trace.Block{Warps: []*trace.WarpTrace{tr}})
	now := uint64(0)
	tick := func() {
		now++
		s.Tick(now)
		for {
			r := s.L1D().PopOutgoing()
			if r == nil {
				break
			}
			pool.Put(r)
		}
	}
	tick() // admit + issue
	tick() // drain; primes the memInstr/request free lists
	step = func() {
		// Rewind the warp so it issues the same store again. The rewind
		// itself is not a tracked scheduler event, so wake explicitly.
		s.slots[0].cur.Rewind()
		s.finishedWarps--
		s.wakeSchedulers()
		tick() // issue
		tick() // drain
	}
	return s, step
}

// BenchmarkIssueStorePath measures the steady-state LD/ST issue path:
// scheduler pick, coalescing, pooled request construction, and the L1D
// store drain. allocs/op must be 0 (see TestIssueStorePathAllocs).
func BenchmarkIssueStorePath(b *testing.B) {
	b.ReportAllocs()
	_, step := storeBench()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// TestIssueStorePathAllocs pins the LD/ST issue path allocation-free in
// steady state: every request comes from the pool, every memInstr from
// the SM's free list, and the coalescer writes into a reused buffer.
func TestIssueStorePathAllocs(t *testing.T) {
	_, step := storeBench()
	for i := 0; i < 64; i++ {
		step() // settle free-list and queue capacities
	}
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Errorf("LD/ST issue path allocates %.2f per round, want 0", avg)
	}
}
