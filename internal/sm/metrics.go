package sm

import "repro/internal/metrics"

// RegisterMetrics registers the SM's instruction counters, scheduler
// occupancy gauges, and its L1D (with the cache's own subcomponents)
// under prefix (e.g. "sm3").
func (s *SM) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.Counter(prefix+".insns", &s.st.Instructions)
	reg.Counter(prefix+".warp_insns", &s.st.WarpInsns)
	reg.IntGauge(prefix+".live_warps", func() int { return s.liveWarps })
	reg.IntGauge(prefix+".finished_warps", func() int { return s.finishedWarps })
	reg.IntGauge(prefix+".ldst.depth", func() int { return len(s.ldst) })
	reg.IntGauge(prefix+".pending_blocks", func() int { return len(s.pendingBlocks) })
	s.l1d.RegisterMetrics(reg, prefix+".l1d")
	s.pool.RegisterMetrics(reg, prefix+".pool")
}
