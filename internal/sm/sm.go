// Package sm models one streaming multiprocessor: a warp pool fed by
// thread-block dispatch, dual greedy-then-oldest (GTO) warp schedulers,
// in-order per-warp execution, and a load/store unit that coalesces
// memory instructions and feeds the L1D one line request per cycle,
// blocking in its pipeline register when the cache stalls (§2).
package sm

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// warp is one resident warp's execution state. Its position in the
// instruction stream is a trace.Cursor: plain slice arithmetic over a
// precomputed WarpTrace on the compat path, a chunk-refilling window
// over a trace.Stream on the streaming path.
type warp struct {
	cur         trace.Cursor
	busyUntil   uint64
	outstanding int  // memory requests in flight
	inLDST      bool // a memory instruction of this warp occupies the LD/ST queue
	slot        int
	age         uint64 // dispatch order; smaller is older (GTO tie-break)
	block       *residentBlock
}

func (w *warp) done(now uint64) bool {
	return w.cur.Exhausted() && w.outstanding == 0 && !w.inLDST &&
		w.busyUntil <= now
}

// ready reports whether the warp can issue at cycle now.
func (w *warp) ready(now uint64) bool {
	return !w.cur.Exhausted() && w.busyUntil <= now &&
		w.outstanding == 0 && !w.inLDST
}

type residentBlock struct {
	liveWarps int
}

// memInstr is one coalesced memory instruction being drained into the L1D.
type memInstr struct {
	w    *warp
	reqs []*mem.Request
	next int
}

// pendingBlock is one dispatched-but-unadmitted thread block: either a
// precomputed block or a stream's block index.
type pendingBlock struct {
	b     *trace.Block // precomputed path (nil on the stream path)
	src   trace.Stream // stream path (nil on the precomputed path)
	idx   int          // block index within src
	warps int          // warp count, known without touching the trace
}

// SM is one streaming multiprocessor.
type SM struct {
	cfg   *config.Config
	id    int
	l1d   *core.L1D
	st    *stats.Stats
	slots []*warp

	pendingBlocks []pendingBlock
	ageCounter    uint64
	nextReqID     uint64

	// chunks recycles stream-refill buffers across this SM's warps;
	// created lazily on the first AssignStream, nil on the
	// precomputed-kernel path.
	chunks *trace.ChunkPool

	ldst    []*memInstr
	ldstCap int
	greedy  []int // per-scheduler last-issued slot, -1 when none
	now     uint64

	// liveWarps counts occupied warp slots — maintained at admit/retire
	// so Done() is a counter comparison, not a slot sweep.
	liveWarps int

	// finishedWarps counts resident warps whose trace is exhausted
	// (pc past the end). retireWarps sweeps the slots only while this is
	// nonzero; trace exhaustion is a necessary condition for done().
	finishedWarps int

	// schedSleepUntil[k] is a proven lower bound on the next cycle at
	// which scheduler k's pick scan can succeed. It is set when a scan
	// comes up empty (to the minimum busyUntil among the scheduler's
	// unblocked warps, or "never" when every candidate waits on an
	// event), and reset to zero by every event that can unblock a warp:
	// a memory response, an LD/ST-queue drain, block admission, or warp
	// retirement. While now < schedSleepUntil[k] the scan is skipped —
	// it could only fail — making idle schedulers O(1) per cycle.
	schedSleepUntil []uint64

	// Free lists for the steady-state issue path: completed load
	// requests return via pool, drained memInstrs via freeMI, retired
	// warps/blocks via freeWarps/freeBlocks. lineBuf is the coalescer's
	// scratch buffer. The pool is owned by this SM alone — the engine
	// gives every SM its own, so Tick can Get/Put on it while other
	// shards tick concurrently; stores consumed by L2 partitions come
	// home through the engine's serial recycler drain, never directly.
	pool       *mem.Pool
	freeMI     []*memInstr
	freeWarps  []*warp
	freeBlocks []*residentBlock
	lineBuf    []addr.Addr
}

// New builds an SM with its own L1D under the given policy. pool, which
// may be nil, recycles completed memory requests.
func New(cfg *config.Config, id int, policy config.Policy, pool *mem.Pool) *SM {
	s := &SM{
		cfg:     cfg,
		id:      id,
		st:      &stats.Stats{},
		slots:   make([]*warp, cfg.MaxWarpsPerSM),
		ldstCap: 48,
		greedy:  make([]int, cfg.SchedulersPerSM),
		pool:    pool,

		schedSleepUntil: make([]uint64, cfg.SchedulersPerSM),
	}
	for i := range s.greedy {
		s.greedy[i] = -1
	}
	s.l1d = core.NewL1D(cfg, policy, s.onMemResponse)
	return s
}

// L1D exposes the cache for the engine's response routing and stats.
func (s *SM) L1D() *core.L1D { return s.l1d }

// Stats returns the SM's counters (cycles are tracked by the engine).
func (s *SM) Stats() *stats.Stats { return s.st }

// AssignBlock queues a precomputed thread block for execution on this SM.
func (s *SM) AssignBlock(b *trace.Block) {
	s.pendingBlocks = append(s.pendingBlocks, pendingBlock{b: b, warps: len(b.Warps)})
}

// AssignStream queues block idx of a lazy trace stream for execution on
// this SM. Warps of the block pull chunk-sized instruction windows from
// the stream through this SM's chunk pool as they execute.
func (s *SM) AssignStream(src trace.Stream, idx int) {
	if s.chunks == nil {
		s.chunks = trace.NewChunkPool(trace.DefaultChunkInstrs)
	}
	s.pendingBlocks = append(s.pendingBlocks, pendingBlock{src: src, idx: idx, warps: src.Warps(idx)})
}

// onMemResponse is the L1D delivery callback: one completed load
// request. Delivery is the load's last stop, so the request goes back
// to the pool here.
func (s *SM) onMemResponse(req *mem.Request) {
	w := s.slots[req.Warp]
	if w == nil || w.outstanding <= 0 {
		panic(fmt.Sprintf("sm%d: response for idle warp slot %d", s.id, req.Warp))
	}
	w.outstanding--
	s.pool.Put(req)
	if w.outstanding == 0 {
		// Only the last response unblocks the warp; earlier ones leave
		// it waiting and cannot make any scheduler's scan succeed.
		s.schedSleepUntil[req.Warp%len(s.schedSleepUntil)] = 0
	}
}

// wakeSchedulers clears every scheduler's sleep bound; called on events
// that can make a warp issuable through something other than its own
// busyUntil elapsing (retirement shifts the active-warp throttle, an
// LD/ST drain frees queue capacity, admission adds new candidates).
func (s *SM) wakeSchedulers() {
	for i := range s.schedSleepUntil {
		s.schedSleepUntil[i] = 0
	}
}

// admitBlocks moves pending blocks into free warp slots while capacity
// allows, preserving dispatch order. Occupancy comes from the liveWarps
// counter, so a full SM costs O(1) per cycle instead of a slot sweep.
// Returns whether any block was admitted.
func (s *SM) admitBlocks() bool {
	admitted := false
	for len(s.pendingBlocks) > 0 {
		pb := s.pendingBlocks[0]
		if len(s.slots)-s.liveWarps < pb.warps {
			return admitted
		}
		rb := s.getBlock()
		rb.liveWarps = pb.warps
		wi := 0
		for slot := range s.slots {
			if wi >= pb.warps {
				break
			}
			if s.slots[slot] != nil {
				continue
			}
			s.ageCounter++
			w := s.getWarp()
			if pb.b != nil {
				w.cur.InitPrecomputed(pb.b.Warps[wi])
			} else {
				w.cur.InitStream(pb.src, s.chunks, s.cfg.L1D.LineSize, pb.idx, wi)
			}
			w.slot = slot
			w.age = s.ageCounter
			w.block = rb
			s.slots[slot] = w
			s.liveWarps++
			if w.cur.Exhausted() {
				s.finishedWarps++
			}
			wi++
		}
		s.pendingBlocks = s.pendingBlocks[1:]
		admitted = true
	}
	if admitted {
		s.wakeSchedulers()
	}
	return admitted
}

// retireWarps frees slots of completed warps and their blocks. Returns
// whether any warp retired.
func (s *SM) retireWarps() bool {
	// Trace exhaustion is necessary for done(), so with no finished
	// warps resident the sweep cannot retire anything.
	if s.finishedWarps == 0 {
		return false
	}
	retired := false
	for slot, w := range s.slots {
		if w == nil || !w.done(s.now) {
			continue
		}
		w.block.liveWarps--
		if w.block.liveWarps == 0 {
			s.freeBlocks = append(s.freeBlocks, w.block)
		}
		s.slots[slot] = nil
		s.liveWarps--
		s.finishedWarps--
		w.cur.Release() // return the stream chunk before wiping the warp
		*w = warp{}
		s.freeWarps = append(s.freeWarps, w)
		retired = true
	}
	if retired {
		s.wakeSchedulers()
	}
	return retired
}

func (s *SM) getWarp() *warp {
	if n := len(s.freeWarps); n > 0 {
		w := s.freeWarps[n-1]
		s.freeWarps[n-1] = nil
		s.freeWarps = s.freeWarps[:n-1]
		return w
	}
	return &warp{}
}

func (s *SM) getBlock() *residentBlock {
	if n := len(s.freeBlocks); n > 0 {
		rb := s.freeBlocks[n-1]
		s.freeBlocks[n-1] = nil
		s.freeBlocks = s.freeBlocks[:n-1]
		*rb = residentBlock{}
		return rb
	}
	return &residentBlock{}
}

// Tick advances the SM one core cycle: cache delivery, LD/ST drain, then
// warp issue. It reports whether the cycle did any real work — state or
// counter mutation beyond advancing the clock. A false return means the
// SM's visible state is exactly what it was last cycle, which is what
// lets the engine fast-forward (the attempt loop in tickLDST counts as
// work: even a stalled access mutates the stall counters).
func (s *SM) Tick(now uint64) bool {
	s.now = now
	active := s.l1d.Tick(now) > 0
	if s.retireWarps() {
		active = true
	}
	if len(s.pendingBlocks) > 0 && s.admitBlocks() {
		active = true
	}
	if len(s.ldst) > 0 {
		s.tickLDST()
		active = true
	}
	if s.liveWarps > 0 && s.issue() {
		active = true
	}
	return active
}

// tickLDST pushes the head memory instruction's next request into the
// L1D; a stall blocks the pipeline register (and therefore every younger
// memory instruction) until the cache accepts it.
func (s *SM) tickLDST() {
	if len(s.ldst) == 0 {
		return
	}
	mi := s.ldst[0]
	req := mi.reqs[mi.next]
	outcome := s.l1d.Access(req)
	if outcome == mem.OutcomeStall {
		return
	}
	if !req.Store {
		mi.w.outstanding++
	}
	mi.next++
	if mi.next == len(mi.reqs) {
		mi.w.inLDST = false
		copy(s.ldst, s.ldst[1:])
		s.ldst[len(s.ldst)-1] = nil
		s.ldst = s.ldst[:len(s.ldst)-1]
		for i := range mi.reqs {
			mi.reqs[i] = nil // requests live on in the cache/memory system
		}
		mi.reqs = mi.reqs[:0]
		mi.w = nil
		mi.next = 0
		s.freeMI = append(s.freeMI, mi)
		// The drained warp may issue again, and the shorter queue may
		// clear another warp's structural hazard.
		s.wakeSchedulers()
	}
}

// issue runs each warp scheduler once: greedy on the warp it issued last,
// falling back to the oldest ready warp it owns. Scheduler k owns warp
// slots with slot % SchedulersPerSM == k. Returns whether any scheduler
// issued.
func (s *SM) issue() bool {
	issued := false
	for sched := 0; sched < s.cfg.SchedulersPerSM; sched++ {
		slot := s.pickWarp(sched)
		if slot < 0 {
			continue
		}
		s.issueFrom(s.slots[slot])
		s.greedy[sched] = slot
		issued = true
	}
	return issued
}

// issuable reports whether the warp can issue right now, including the
// structural LD/ST-queue hazard for memory instructions and the optional
// active-warp throttle.
func (s *SM) issuable(w *warp) bool {
	if w == nil || !w.ready(s.now) {
		return false
	}
	if !s.warpActive(w) {
		return false
	}
	if w.cur.Cur().Kind != trace.Compute && len(s.ldst) >= s.ldstCap {
		return false
	}
	return true
}

// warpActive implements static CCWS-style throttling: with MaxActiveWarps
// set, only the N oldest unfinished warps may issue; the rest wait until
// an older warp retires. Zero disables the throttle.
func (s *SM) warpActive(w *warp) bool {
	limit := s.cfg.MaxActiveWarps
	if limit <= 0 {
		return true
	}
	older := 0
	for _, other := range s.slots {
		if other != nil && other != w && other.age < w.age {
			older++
		}
	}
	return older < limit
}

func (s *SM) pickWarp(sched int) int {
	if s.now < s.schedSleepUntil[sched] {
		return -1 // proven empty until then; skip the scan
	}
	if s.cfg.Scheduler == config.SchedLRR {
		return s.pickWarpLRR(sched)
	}
	if g := s.greedy[sched]; g >= 0 && s.issuable(s.slots[g]) {
		return g
	}
	best := -1
	var bestAge uint64
	nextReady := ^uint64(0)
	for slot := sched; slot < len(s.slots); slot += s.cfg.SchedulersPerSM {
		w := s.slots[slot]
		if w == nil || w.outstanding != 0 || w.inLDST || w.cur.Exhausted() {
			// Empty, waiting on an unblocking event, or exhausted: none
			// contribute a time-based wake (events reset the sleep bound).
			continue
		}
		if w.busyUntil > s.now {
			// Blocked only by its issue latency: it becomes a candidate
			// at busyUntil with no triggering event, so a failed scan
			// must re-run by then.
			if w.busyUntil < nextReady {
				nextReady = w.busyUntil
			}
			continue
		}
		// Ready; only the throttle or the LD/ST structural hazard can
		// still block it, and both clear via sleep-resetting events.
		if !s.warpActive(w) {
			continue
		}
		if w.cur.Cur().Kind != trace.Compute && len(s.ldst) >= s.ldstCap {
			continue
		}
		if best < 0 || w.age < bestAge {
			best = slot
			bestAge = w.age
		}
	}
	if best < 0 {
		s.schedSleepUntil[sched] = nextReady
	}
	return best
}

// pickWarpLRR rotates through the scheduler's slot sequence (slots
// congruent to sched modulo the scheduler count), starting just after
// the slot it issued from last.
func (s *SM) pickWarpLRR(sched int) int {
	n := s.cfg.SchedulersPerSM
	count := 0
	for slot := sched; slot < len(s.slots); slot += n {
		count++
	}
	if count == 0 {
		return -1
	}
	last := -1 // position of the last-issued slot within the sequence
	if g := s.greedy[sched]; g >= 0 {
		last = (g - sched) / n
	}
	nextReady := ^uint64(0)
	for i := 1; i <= count; i++ {
		slot := sched + ((last+i)%count)*n
		w := s.slots[slot]
		if w == nil || w.outstanding != 0 || w.inLDST || w.cur.Exhausted() {
			continue
		}
		if w.busyUntil > s.now {
			if w.busyUntil < nextReady {
				nextReady = w.busyUntil
			}
			continue
		}
		if !s.warpActive(w) {
			continue
		}
		if w.cur.Cur().Kind != trace.Compute && len(s.ldst) >= s.ldstCap {
			continue
		}
		return slot
	}
	s.schedSleepUntil[sched] = nextReady
	return -1
}

func (s *SM) issueFrom(w *warp) {
	// The instruction must be fully consumed before Advance(): a chunk
	// refill reuses the cursor's backing storage, invalidating in.
	in := w.cur.Cur()
	s.st.WarpInsns++
	s.st.Instructions += uint64(in.ActiveLanes)
	s.l1d.NoteInstructions(uint64(in.ActiveLanes))

	switch in.Kind {
	case trace.Compute:
		w.busyUntil = s.now + uint64(in.Latency)
	case trace.Load, trace.Store:
		s.lineBuf = in.AppendCoalescedLines(s.lineBuf[:0], s.cfg.L1D.LineSize)
		mi := s.getMemInstr()
		mi.w = w
		for _, line := range s.lineBuf {
			s.nextReqID++
			r := s.pool.Get()
			r.ID = s.nextReqID
			r.Addr = line
			r.PC = in.PC
			r.InsnID = addr.HashPC(in.PC)
			r.SM = s.id
			r.Warp = w.slot
			r.Store = in.Kind == trace.Store
			mi.reqs = append(mi.reqs, r)
		}
		w.inLDST = true
		s.ldst = append(s.ldst, mi)
		w.busyUntil = s.now + 1
	}
	w.cur.Advance()
	if w.cur.Exhausted() {
		s.finishedWarps++
	}
}

func (s *SM) getMemInstr() *memInstr {
	if n := len(s.freeMI); n > 0 {
		mi := s.freeMI[n-1]
		s.freeMI[n-1] = nil
		s.freeMI = s.freeMI[:n-1]
		return mi
	}
	return &memInstr{reqs: make([]*mem.Request, 0, 4)}
}

// Done reports whether every assigned block has fully executed and all
// cache work has drained. It is O(1): occupied slots are counted at
// admit/retire instead of swept.
//
// The counter form is exactly equivalent to sweeping the slots for
// !w.done(now) at the points the engine evaluates it (after a full
// step). A live slot then holds either a warp that is not done — both
// forms say "not done" — or a warp that completed mid-tick after
// retireWarps ran. The latter can only be the store-drain path in
// tickLDST (load completions are delivered by the engine's response
// routing or l1d.Tick, both of which precede retireWarps within the
// same cycle), and a just-accepted store is still in the L1D's outgoing
// queue or the interconnect's injection queue at evaluation time, so
// the sweep form would report "not done" through l1d.Pending() or the
// network anyway. The self-check mode cross-checks this equivalence at
// every sampled cycle (CheckActivity).
func (s *SM) Done() bool {
	return s.liveWarps == 0 && len(s.pendingBlocks) == 0 && len(s.ldst) == 0 &&
		!s.l1d.Pending()
}

// DoneSweep is the first-principles form of Done, used by the engine's
// sampled self-checks and the activity property tests to validate the
// counter form.
func (s *SM) DoneSweep() bool {
	if len(s.pendingBlocks) > 0 || len(s.ldst) > 0 || s.l1d.Pending() {
		return false
	}
	for _, w := range s.slots {
		if w != nil && !w.done(s.now) {
			return false
		}
	}
	return true
}

// CheckActivity validates the SM's O(1) activity accounting against a
// full sweep: the liveWarps counter must equal the occupied-slot count,
// and when the counter form of Done disagrees with the sweep form the
// difference must be explained by in-flight work (a done-but-unretired
// warp whose final store still sits in an outgoing queue). Returns a
// descriptive error on violation.
func (s *SM) CheckActivity() error {
	occupied, finished := 0, 0
	for _, w := range s.slots {
		if w != nil {
			occupied++
			if w.cur.Exhausted() {
				finished++
			}
		}
	}
	if occupied != s.liveWarps {
		return fmt.Errorf("sm%d: liveWarps=%d but %d slots occupied", s.id, s.liveWarps, occupied)
	}
	if finished != s.finishedWarps {
		return fmt.Errorf("sm%d: finishedWarps=%d but %d resident warps exhausted",
			s.id, s.finishedWarps, finished)
	}
	if s.Done() && !s.DoneSweep() {
		return fmt.Errorf("sm%d: counter Done()=true but slot sweep disagrees", s.id)
	}
	// A sleeping scheduler claims no owned warp can issue before its
	// bound; an issuable warp under that claim would mean the scan skip
	// changed behavior.
	for sched, until := range s.schedSleepUntil {
		if s.now >= until {
			continue
		}
		for slot := sched; slot < len(s.slots); slot += s.cfg.SchedulersPerSM {
			if s.issuable(s.slots[slot]) {
				return fmt.Errorf("sm%d: scheduler %d asleep until %d but slot %d issuable at %d",
					s.id, sched, until, slot, s.now)
			}
		}
	}
	// Done()==false with doneSweep()==true is legal only while the
	// retiring warp's store is still in flight somewhere downstream; the
	// engine-level check (quiescent vs quiescentDeep) covers that case
	// because the network/outgoing queues keep the deep form non-idle.
	return nil
}

// NextWake returns the next cycle at which this SM can possibly do real
// work, given no new responses arrive before then; ok=false means the
// SM must be ticked every cycle (it has immediately pending work whose
// per-cycle behavior is observable, e.g. a draining LD/ST queue whose
// stall retries mutate the stall counters). A warp waiting only on
// outstanding memory contributes no wake time: the response's arrival
// is bounded by the network/partition event times the engine already
// considers, and its delivery marks the SM active again.
// Pending thread blocks do not force per-cycle ticking: admission
// capacity only changes when a warp retires, and every retirement cycle
// is already in the wake set (a retiring warp's busyUntil, or the
// delivery that zeroes its outstanding count). at == ^uint64(0) means
// the SM has no self-scheduled wake and sleeps until a response.
func (s *SM) NextWake(now uint64) (at uint64, ok bool) {
	if len(s.ldst) > 0 || s.l1d.HasOutgoing() {
		return 0, false
	}
	at = ^uint64(0)
	if h, hok := s.l1d.NextDelivery(); hok {
		at = h
	}
	for _, w := range s.slots {
		if w == nil || w.inLDST || w.outstanding > 0 {
			continue
		}
		if w.busyUntil > now {
			// Waiting out an issue latency: nothing observable happens
			// until busyUntil (issue readiness or retirement).
			if w.busyUntil < at {
				at = w.busyUntil
			}
			continue
		}
		// Ready to issue (or done and awaiting retirement) right now.
		return 0, false
	}
	return at, true
}
