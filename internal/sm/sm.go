// Package sm models one streaming multiprocessor: a warp pool fed by
// thread-block dispatch, dual greedy-then-oldest (GTO) warp schedulers,
// in-order per-warp execution, and a load/store unit that coalesces
// memory instructions and feeds the L1D one line request per cycle,
// blocking in its pipeline register when the cache stalls (§2).
package sm

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// warp is one resident warp's execution state.
type warp struct {
	tr          *trace.WarpTrace
	pc          int
	busyUntil   uint64
	outstanding int  // memory requests in flight
	inLDST      bool // a memory instruction of this warp occupies the LD/ST queue
	slot        int
	age         uint64 // dispatch order; smaller is older (GTO tie-break)
	block       *residentBlock
}

func (w *warp) done(now uint64) bool {
	return w.pc >= len(w.tr.Instrs) && w.outstanding == 0 && !w.inLDST &&
		w.busyUntil <= now
}

// ready reports whether the warp can issue at cycle now.
func (w *warp) ready(now uint64) bool {
	return w.pc < len(w.tr.Instrs) && w.busyUntil <= now &&
		w.outstanding == 0 && !w.inLDST
}

type residentBlock struct {
	liveWarps int
}

// memInstr is one coalesced memory instruction being drained into the L1D.
type memInstr struct {
	w    *warp
	reqs []*mem.Request
	next int
}

// SM is one streaming multiprocessor.
type SM struct {
	cfg   *config.Config
	id    int
	l1d   *core.L1D
	st    *stats.Stats
	slots []*warp

	pendingBlocks []*trace.Block
	ageCounter    uint64
	nextReqID     uint64

	ldst    []*memInstr
	ldstCap int
	greedy  []int // per-scheduler last-issued slot, -1 when none
	now     uint64
}

// New builds an SM with its own L1D under the given policy.
func New(cfg *config.Config, id int, policy config.Policy) *SM {
	s := &SM{
		cfg:     cfg,
		id:      id,
		st:      &stats.Stats{},
		slots:   make([]*warp, cfg.MaxWarpsPerSM),
		ldstCap: 48,
		greedy:  make([]int, cfg.SchedulersPerSM),
	}
	for i := range s.greedy {
		s.greedy[i] = -1
	}
	s.l1d = core.NewL1D(cfg, policy, s.onMemResponse)
	return s
}

// L1D exposes the cache for the engine's response routing and stats.
func (s *SM) L1D() *core.L1D { return s.l1d }

// Stats returns the SM's counters (cycles are tracked by the engine).
func (s *SM) Stats() *stats.Stats { return s.st }

// AssignBlock queues a thread block for execution on this SM.
func (s *SM) AssignBlock(b *trace.Block) {
	s.pendingBlocks = append(s.pendingBlocks, b)
}

// onMemResponse is the L1D delivery callback: one completed load request.
func (s *SM) onMemResponse(req *mem.Request) {
	w := s.slots[req.Warp]
	if w == nil || w.outstanding <= 0 {
		panic(fmt.Sprintf("sm%d: response for idle warp slot %d", s.id, req.Warp))
	}
	w.outstanding--
}

// admitBlocks moves pending blocks into free warp slots while capacity
// allows, preserving dispatch order.
func (s *SM) admitBlocks() {
	for len(s.pendingBlocks) > 0 {
		b := s.pendingBlocks[0]
		free := 0
		for _, w := range s.slots {
			if w == nil {
				free++
			}
		}
		if free < len(b.Warps) {
			return
		}
		rb := &residentBlock{liveWarps: len(b.Warps)}
		wi := 0
		for slot := range s.slots {
			if wi >= len(b.Warps) {
				break
			}
			if s.slots[slot] != nil {
				continue
			}
			s.ageCounter++
			s.slots[slot] = &warp{
				tr:    b.Warps[wi],
				slot:  slot,
				age:   s.ageCounter,
				block: rb,
			}
			wi++
		}
		s.pendingBlocks = s.pendingBlocks[1:]
	}
}

// retireWarps frees slots of completed warps and their blocks.
func (s *SM) retireWarps() {
	for slot, w := range s.slots {
		if w == nil || !w.done(s.now) {
			continue
		}
		w.block.liveWarps--
		s.slots[slot] = nil
	}
}

// Tick advances the SM one core cycle: cache delivery, LD/ST drain, then
// warp issue.
func (s *SM) Tick(now uint64) {
	s.now = now
	s.l1d.Tick(now)
	s.retireWarps()
	s.admitBlocks()
	s.tickLDST()
	s.issue()
}

// tickLDST pushes the head memory instruction's next request into the
// L1D; a stall blocks the pipeline register (and therefore every younger
// memory instruction) until the cache accepts it.
func (s *SM) tickLDST() {
	if len(s.ldst) == 0 {
		return
	}
	mi := s.ldst[0]
	req := mi.reqs[mi.next]
	outcome := s.l1d.Access(req)
	if outcome == mem.OutcomeStall {
		return
	}
	if !req.Store {
		mi.w.outstanding++
	}
	mi.next++
	if mi.next == len(mi.reqs) {
		mi.w.inLDST = false
		copy(s.ldst, s.ldst[1:])
		s.ldst[len(s.ldst)-1] = nil
		s.ldst = s.ldst[:len(s.ldst)-1]
	}
}

// issue runs each warp scheduler once: greedy on the warp it issued last,
// falling back to the oldest ready warp it owns. Scheduler k owns warp
// slots with slot % SchedulersPerSM == k.
func (s *SM) issue() {
	for sched := 0; sched < s.cfg.SchedulersPerSM; sched++ {
		slot := s.pickWarp(sched)
		if slot < 0 {
			continue
		}
		s.issueFrom(s.slots[slot])
		s.greedy[sched] = slot
	}
}

// issuable reports whether the warp can issue right now, including the
// structural LD/ST-queue hazard for memory instructions and the optional
// active-warp throttle.
func (s *SM) issuable(w *warp) bool {
	if w == nil || !w.ready(s.now) {
		return false
	}
	if !s.warpActive(w) {
		return false
	}
	if w.tr.Instrs[w.pc].Kind != trace.Compute && len(s.ldst) >= s.ldstCap {
		return false
	}
	return true
}

// warpActive implements static CCWS-style throttling: with MaxActiveWarps
// set, only the N oldest unfinished warps may issue; the rest wait until
// an older warp retires. Zero disables the throttle.
func (s *SM) warpActive(w *warp) bool {
	limit := s.cfg.MaxActiveWarps
	if limit <= 0 {
		return true
	}
	older := 0
	for _, other := range s.slots {
		if other != nil && other != w && other.age < w.age {
			older++
		}
	}
	return older < limit
}

func (s *SM) pickWarp(sched int) int {
	if s.cfg.Scheduler == config.SchedLRR {
		return s.pickWarpLRR(sched)
	}
	if g := s.greedy[sched]; g >= 0 && s.issuable(s.slots[g]) {
		return g
	}
	best := -1
	var bestAge uint64
	for slot := sched; slot < len(s.slots); slot += s.cfg.SchedulersPerSM {
		w := s.slots[slot]
		if !s.issuable(w) {
			continue
		}
		if best < 0 || w.age < bestAge {
			best = slot
			bestAge = w.age
		}
	}
	return best
}

// pickWarpLRR rotates through the scheduler's slot sequence (slots
// congruent to sched modulo the scheduler count), starting just after
// the slot it issued from last.
func (s *SM) pickWarpLRR(sched int) int {
	n := s.cfg.SchedulersPerSM
	count := 0
	for slot := sched; slot < len(s.slots); slot += n {
		count++
	}
	if count == 0 {
		return -1
	}
	last := -1 // position of the last-issued slot within the sequence
	if g := s.greedy[sched]; g >= 0 {
		last = (g - sched) / n
	}
	for i := 1; i <= count; i++ {
		slot := sched + ((last+i)%count)*n
		if s.issuable(s.slots[slot]) {
			return slot
		}
	}
	return -1
}

func (s *SM) issueFrom(w *warp) {
	in := &w.tr.Instrs[w.pc]
	w.pc++
	s.st.WarpInsns++
	s.st.Instructions += uint64(in.ActiveLanes)
	s.l1d.NoteInstructions(uint64(in.ActiveLanes))

	switch in.Kind {
	case trace.Compute:
		w.busyUntil = s.now + uint64(in.Latency)
	case trace.Load, trace.Store:
		lines := in.CoalescedLines(s.cfg.L1D.LineSize)
		mi := &memInstr{w: w, reqs: make([]*mem.Request, len(lines))}
		for i, line := range lines {
			s.nextReqID++
			mi.reqs[i] = &mem.Request{
				ID:     s.nextReqID,
				Addr:   line,
				PC:     in.PC,
				InsnID: addr.HashPC(in.PC),
				SM:     s.id,
				Warp:   w.slot,
				Store:  in.Kind == trace.Store,
			}
		}
		w.inLDST = true
		s.ldst = append(s.ldst, mi)
		w.busyUntil = s.now + 1
	}
}

// Done reports whether every assigned block has fully executed and all
// cache work has drained.
func (s *SM) Done() bool {
	if len(s.pendingBlocks) > 0 || len(s.ldst) > 0 || s.l1d.Pending() {
		return false
	}
	for _, w := range s.slots {
		if w != nil && !w.done(s.now) {
			return false
		}
	}
	return true
}
