package sm

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/trace"
)

// runAlone steps the SM with a perfect zero-latency memory behind the
// L1D until Done or the cycle budget runs out; returns cycles used.
func runAlone(t *testing.T, s *SM, budget int) uint64 {
	t.Helper()
	for now := uint64(1); now <= uint64(budget); now++ {
		s.Tick(now)
		for {
			out := s.L1D().PopOutgoing()
			if out == nil {
				break
			}
			if !out.Store {
				s.L1D().OnResponse(out)
			}
		}
		if s.Done() {
			return now
		}
	}
	t.Fatalf("SM did not finish in %d cycles", budget)
	return 0
}

func seqLoad(pc uint32, line int) trace.Instr {
	return trace.NewLoad(pc, []addr.Addr{addr.Addr(line * 128)})
}

func computeWarp(n, latency int) *trace.WarpTrace {
	w := &trace.WarpTrace{}
	for i := 0; i < n; i++ {
		w.Instrs = append(w.Instrs, trace.NewCompute(uint32(i), latency, 32))
	}
	return w
}

func TestComputeOnlyWarpCompletes(t *testing.T) {
	cfg := config.Baseline()
	s := New(cfg, 0, config.PolicyBaseline, nil)
	s.AssignBlock(&trace.Block{Warps: []*trace.WarpTrace{computeWarp(10, 4)}})
	cycles := runAlone(t, s, 1000)
	st := s.Stats()
	if st.WarpInsns != 10 {
		t.Errorf("WarpInsns = %d, want 10", st.WarpInsns)
	}
	if st.Instructions != 320 {
		t.Errorf("Instructions = %d, want 320", st.Instructions)
	}
	// 10 dependent instructions of latency 4: at least 40 cycles.
	if cycles < 40 {
		t.Errorf("finished in %d cycles, violates dependency latency", cycles)
	}
}

func TestTwoWarpsOverlapLatency(t *testing.T) {
	cfg := config.Baseline()
	one := New(cfg, 0, config.PolicyBaseline, nil)
	one.AssignBlock(&trace.Block{Warps: []*trace.WarpTrace{computeWarp(50, 8)}})
	soloCycles := runAlone(t, one, 10000)

	two := New(cfg, 0, config.PolicyBaseline, nil)
	two.AssignBlock(&trace.Block{Warps: []*trace.WarpTrace{
		computeWarp(50, 8), computeWarp(50, 8),
	}})
	dualCycles := runAlone(t, two, 10000)
	// The second warp hides in the first's latency: far less than 2x.
	if dualCycles > soloCycles+soloCycles/4 {
		t.Errorf("two warps took %d cycles vs %d solo: no latency hiding", dualCycles, soloCycles)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	cfg := config.Baseline()
	s := New(cfg, 0, config.PolicyBaseline, nil)
	w := &trace.WarpTrace{Instrs: []trace.Instr{
		seqLoad(0, 1),
		seqLoad(1, 1), // second load hits in L1D
	}}
	s.AssignBlock(&trace.Block{Warps: []*trace.WarpTrace{w}})
	runAlone(t, s, 1000)
	st := s.L1D().Stats()
	if st.L1DAccesses != 2 || st.L1DMisses != 1 || st.L1DHits != 1 {
		t.Errorf("accesses/misses/hits = %d/%d/%d", st.L1DAccesses, st.L1DMisses, st.L1DHits)
	}
}

func TestCoalescedLoadCountsLines(t *testing.T) {
	cfg := config.Baseline()
	s := New(cfg, 0, config.PolicyBaseline, nil)
	// 32 lanes across 4 lines.
	addrs := make([]addr.Addr, 32)
	for i := range addrs {
		addrs[i] = addr.Addr(i * 16)
	}
	w := &trace.WarpTrace{Instrs: []trace.Instr{trace.NewLoad(0, addrs)}}
	s.AssignBlock(&trace.Block{Warps: []*trace.WarpTrace{w}})
	runAlone(t, s, 1000)
	if got := s.L1D().Stats().L1DAccesses; got != 4 {
		t.Errorf("L1D accesses = %d, want 4 coalesced lines", got)
	}
}

func TestStoreDoesNotBlockWarp(t *testing.T) {
	cfg := config.Baseline()
	s := New(cfg, 0, config.PolicyBaseline, nil)
	w := &trace.WarpTrace{Instrs: []trace.Instr{
		trace.NewStore(0, []addr.Addr{0}),
		trace.NewCompute(1, 2, 32),
	}}
	s.AssignBlock(&trace.Block{Warps: []*trace.WarpTrace{w}})
	cycles := runAlone(t, s, 100)
	if cycles > 20 {
		t.Errorf("store stalled the warp: %d cycles", cycles)
	}
	if got := s.L1D().Stats().StoreAccesses; got != 1 {
		t.Errorf("StoreAccesses = %d", got)
	}
}

func TestBlockAdmissionRespectsCapacity(t *testing.T) {
	cfg := config.Baseline()
	cfg.MaxWarpsPerSM = 2
	s := New(cfg, 0, config.PolicyBaseline, nil)
	// Three blocks of 2 warps each: only one resident at a time.
	for i := 0; i < 3; i++ {
		s.AssignBlock(&trace.Block{Warps: []*trace.WarpTrace{
			computeWarp(5, 2), computeWarp(5, 2),
		}})
	}
	runAlone(t, s, 10000)
	if got := s.Stats().WarpInsns; got != 30 {
		t.Errorf("WarpInsns = %d, want 30 (all blocks ran)", got)
	}
}

func TestOversizedBlockNeverAdmitted(t *testing.T) {
	cfg := config.Baseline()
	cfg.MaxWarpsPerSM = 1
	s := New(cfg, 0, config.PolicyBaseline, nil)
	s.AssignBlock(&trace.Block{Warps: []*trace.WarpTrace{
		computeWarp(1, 1), computeWarp(1, 1),
	}})
	for now := uint64(1); now < 100; now++ {
		s.Tick(now)
	}
	if s.Done() {
		t.Error("SM claims Done with an unadmittable block")
	}
	if s.Stats().WarpInsns != 0 {
		t.Error("oversized block partially executed")
	}
}

func TestGTOPrefersOldestWarp(t *testing.T) {
	cfg := config.Baseline()
	cfg.SchedulersPerSM = 1
	s := New(cfg, 0, config.PolicyBaseline, nil)
	// Warp 0 (older) and warp 1 (younger), both always ready.
	s.AssignBlock(&trace.Block{Warps: []*trace.WarpTrace{
		computeWarp(3, 1), computeWarp(3, 1),
	}})
	s.Tick(1)
	// After one cycle exactly one instruction issued, and it must belong
	// to the oldest warp (slot 0): its pc advanced.
	if s.Stats().WarpInsns != 1 {
		t.Fatalf("issued %d instructions in one cycle with 1 scheduler", s.Stats().WarpInsns)
	}
	if s.slots[0].cur.Index() != 1 || s.slots[1].cur.Index() != 0 {
		t.Errorf("GTO issued from warp %v, want oldest (slot 0): pcs=%d,%d",
			s.slots[1].cur.Index() == 1, s.slots[0].cur.Index(), s.slots[1].cur.Index())
	}
}

func TestDualSchedulersIssueTwoPerCycle(t *testing.T) {
	cfg := config.Baseline()
	s := New(cfg, 0, config.PolicyBaseline, nil)
	s.AssignBlock(&trace.Block{Warps: []*trace.WarpTrace{
		computeWarp(10, 1), computeWarp(10, 1), computeWarp(10, 1), computeWarp(10, 1),
	}})
	s.Tick(1)
	if got := s.Stats().WarpInsns; got != 2 {
		t.Errorf("issued %d warp instructions in one cycle, want 2 (dual schedulers)", got)
	}
}

func TestMemResponseForIdleWarpPanics(t *testing.T) {
	cfg := config.Baseline()
	s := New(cfg, 0, config.PolicyBaseline, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on orphan response")
		}
	}()
	s.onMemResponse(&mem.Request{Warp: 3})
}

func TestWarpThrottleLimitsConcurrency(t *testing.T) {
	cfg := config.Baseline()
	cfg.SchedulersPerSM = 2
	cfg.MaxActiveWarps = 1
	s := New(cfg, 0, config.PolicyBaseline, nil)
	s.AssignBlock(&trace.Block{Warps: []*trace.WarpTrace{
		computeWarp(10, 1), computeWarp(10, 1), computeWarp(10, 1),
	}})
	s.Tick(1)
	// Only the oldest warp may issue, so despite two schedulers only one
	// instruction goes out per cycle.
	if got := s.Stats().WarpInsns; got != 1 {
		t.Errorf("issued %d instructions with a 1-warp throttle", got)
	}
	// The throttle follows retirement: eventually all warps finish.
	runAlone(t, s, 1000)
	if got := s.Stats().WarpInsns; got != 30 {
		t.Errorf("WarpInsns = %d, want 30", got)
	}
}

func TestWarpThrottleDisabledByDefault(t *testing.T) {
	cfg := config.Baseline()
	s := New(cfg, 0, config.PolicyBaseline, nil)
	s.AssignBlock(&trace.Block{Warps: []*trace.WarpTrace{
		computeWarp(10, 1), computeWarp(10, 1), computeWarp(10, 1), computeWarp(10, 1),
	}})
	s.Tick(1)
	if got := s.Stats().WarpInsns; got != 2 {
		t.Errorf("issued %d instructions, want 2 (dual schedulers, no throttle)", got)
	}
}

func TestLRRRotatesThroughWarps(t *testing.T) {
	cfg := config.Baseline()
	cfg.SchedulersPerSM = 1
	cfg.Scheduler = config.SchedLRR
	s := New(cfg, 0, config.PolicyBaseline, nil)
	s.AssignBlock(&trace.Block{Warps: []*trace.WarpTrace{
		computeWarp(4, 1), computeWarp(4, 1), computeWarp(4, 1),
	}})
	// With latency-1 computes all three warps stay ready; LRR must visit
	// warp 0, 1, 2, 0 over the first four cycles.
	want := []int{1, 1, 1, 2} // expected pc of slot 0 after each tick? track issues instead
	_ = want
	order := []int{}
	pcs := []int{0, 0, 0}
	for now := uint64(1); now <= 6; now++ {
		s.Tick(now)
		for slot := 0; slot < 3; slot++ {
			if s.slots[slot] != nil && s.slots[slot].cur.Index() != pcs[slot] {
				order = append(order, slot)
				pcs[slot] = s.slots[slot].cur.Index()
			}
		}
	}
	wantOrder := []int{0, 1, 2, 0, 1, 2}
	if len(order) < len(wantOrder) {
		t.Fatalf("issue order %v too short", order)
	}
	for i := range wantOrder {
		if order[i] != wantOrder[i] {
			t.Fatalf("LRR issue order %v, want prefix %v", order, wantOrder)
		}
	}
}

func TestLRRCompletesKernel(t *testing.T) {
	cfg := config.Baseline()
	cfg.Scheduler = config.SchedLRR
	s := New(cfg, 0, config.PolicyBaseline, nil)
	s.AssignBlock(&trace.Block{Warps: []*trace.WarpTrace{
		computeWarp(10, 3), computeWarp(10, 3),
		{Instrs: []trace.Instr{seqLoad(0, 1), seqLoad(1, 2), seqLoad(2, 1)}},
	}})
	runAlone(t, s, 5000)
	if got := s.Stats().WarpInsns; got != 23 {
		t.Errorf("WarpInsns = %d, want 23", got)
	}
}

func TestSchedPolicyString(t *testing.T) {
	if config.SchedGTO.String() != "GTO" || config.SchedLRR.String() != "LRR" {
		t.Error("SchedPolicy strings wrong")
	}
	if config.SchedPolicy(9).String() != "SchedPolicy(9)" {
		t.Error("unknown SchedPolicy string wrong")
	}
}
