package sm

import (
	"path/filepath"
	"testing"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/trace"
)

// storeBenchStream is storeBench with the warp fed from an on-disk
// trace stream instead of a precomputed block: every rewind re-pulls
// the warp's chunk through the FileStream — one ReadAt, a decode into
// the pooled chunk, and per-chunk coalesced-line memoization — so the
// measured round covers the streamed frontend's whole refill + issue
// path, not just the issue tail.
func storeBenchStream(t testing.TB) (s *SM, step func()) {
	cfg := config.Baseline()
	pool := mem.NewPool()
	s = New(cfg, 0, config.PolicyBaseline, pool)
	addrs := make([]addr.Addr, 32)
	for i := range addrs {
		addrs[i] = addr.Addr(i * 4) // 32 lanes, one 128B line
	}
	k := &trace.Kernel{Name: "store", Blocks: []*trace.Block{
		{Warps: []*trace.WarpTrace{{Instrs: []trace.Instr{trace.NewStore(1, addrs)}}}},
	}}
	path := filepath.Join(t.TempDir(), "store.dlpstrm")
	if err := trace.WriteFile(path, trace.NewKernelStream(k), 8); err != nil {
		t.Fatal(err)
	}
	fs, err := trace.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	s.AssignStream(fs, 0)
	now := uint64(0)
	tick := func() {
		now++
		s.Tick(now)
		for {
			r := s.L1D().PopOutgoing()
			if r == nil {
				break
			}
			pool.Put(r)
		}
	}
	tick() // admit + issue
	tick() // drain; primes the memInstr/request free lists
	step = func() {
		s.slots[0].cur.Rewind()
		s.finishedWarps--
		s.wakeSchedulers()
		tick() // issue
		tick() // drain
	}
	return s, step
}

// BenchmarkIssueStorePathStream is BenchmarkIssueStorePath over the
// streamed frontend, chunk refill included.
func BenchmarkIssueStorePathStream(b *testing.B) {
	b.ReportAllocs()
	_, step := storeBenchStream(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// TestIssueStorePathStreamAllocs pins the stream-backed LD/ST issue
// path allocation-free in steady state: chunk refills come from the
// per-SM chunk pool (reusing the chunk's instruction, address, line and
// read buffers), and everything downstream matches the precomputed
// path.
func TestIssueStorePathStreamAllocs(t *testing.T) {
	_, step := storeBenchStream(t)
	for i := 0; i < 64; i++ {
		step() // settle free-list, buffer and queue capacities
	}
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Errorf("stream LD/ST issue path allocates %.2f per round, want 0", avg)
	}
}
