// Package stats collects the counters every figure in the paper is built
// from, and provides the aggregation helpers (geometric means, series
// normalization) used by the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stats is the set of counters one simulation run produces. All counts are
// totals across SMs unless noted otherwise.
type Stats struct {
	Cycles       uint64 // core-clock cycles simulated
	Instructions uint64 // thread instructions completed (warp insns x active lanes)
	WarpInsns    uint64 // warp instructions issued

	// L1D counters (summed over all SM L1Ds).
	L1DAccesses   uint64 // requests that queried the cache (incl. ones later bypassed)
	L1DHits       uint64 // TDA hits
	L1DMisses     uint64 // misses serviced by the cache (allocated a line / merged in MSHR)
	L1DBypasses   uint64 // requests sent around the cache
	L1DEvictions  uint64 // valid lines evicted from the TDA
	L1DStalls     uint64 // cycles the L1D blocked its input pipeline register
	L1DTraffic    uint64 // accesses serviced in-cache: hits + misses (Fig. 11a metric)
	VTAHits       uint64 // victim-tag-array hits (DLP/GP only)
	StoreAccesses uint64 // write-through stores presented to the L1D

	// Reuse accounting (for Fig. 4-style analysis on the live cache).
	L1DCompulsory uint64 // first-ever touches of a line (compulsory misses)

	// Memory-side counters.
	L2Accesses uint64
	L2Hits     uint64
	L2Misses   uint64
	DRAMReads  uint64
	DRAMWrites uint64

	// Interconnect flits in both directions, including the background
	// traffic from the other L1 caches (L1I/L1C/L1T model).
	ICNTFlits     uint64
	ICNTDataFlits uint64 // flits carrying L1D-originated packets only
}

// IPC returns thread instructions per core cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// L1DHitRate returns hits over in-cache accesses (hits+misses); bypassed
// requests do not count against the cache, matching §6.3 ("the bypassed
// memory accesses do not count towards the L1D cache rate").
func (s *Stats) L1DHitRate() float64 {
	den := s.L1DHits + s.L1DMisses
	if den == 0 {
		return 0
	}
	return float64(s.L1DHits) / float64(den)
}

// MemoryAccessRatio returns memory accesses divided by thread instructions
// (Fig. 6). Loads (bypassed or not) are already included in L1DAccesses;
// write-through stores are tracked separately and added here.
func (s *Stats) MemoryAccessRatio() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.L1DAccesses+s.StoreAccesses) / float64(s.Instructions)
}

// Clone returns an independent snapshot of s. The experiment runner's
// result cache stores and serves clones so no consumer can corrupt a
// cached entry (Stats is a flat value struct, so a shallow copy is a
// deep copy).
func (s *Stats) Clone() *Stats {
	c := *s
	return &c
}

// Add accumulates other into s.
func (s *Stats) Add(other *Stats) {
	s.Cycles += other.Cycles
	s.Instructions += other.Instructions
	s.WarpInsns += other.WarpInsns
	s.L1DAccesses += other.L1DAccesses
	s.L1DHits += other.L1DHits
	s.L1DMisses += other.L1DMisses
	s.L1DBypasses += other.L1DBypasses
	s.L1DEvictions += other.L1DEvictions
	s.L1DStalls += other.L1DStalls
	s.L1DTraffic += other.L1DTraffic
	s.VTAHits += other.VTAHits
	s.StoreAccesses += other.StoreAccesses
	s.L1DCompulsory += other.L1DCompulsory
	s.L2Accesses += other.L2Accesses
	s.L2Hits += other.L2Hits
	s.L2Misses += other.L2Misses
	s.DRAMReads += other.DRAMReads
	s.DRAMWrites += other.DRAMWrites
	s.ICNTFlits += other.ICNTFlits
	s.ICNTDataFlits += other.ICNTDataFlits
}

// CheckConservation verifies the fundamental accounting identity:
// every access is a hit, a serviced miss, or a bypass.
func (s *Stats) CheckConservation() error {
	if s.L1DHits+s.L1DMisses+s.L1DBypasses != s.L1DAccesses {
		return fmt.Errorf("stats: hits(%d)+misses(%d)+bypasses(%d) != accesses(%d)",
			s.L1DHits, s.L1DMisses, s.L1DBypasses, s.L1DAccesses)
	}
	if s.L1DTraffic != s.L1DHits+s.L1DMisses {
		return fmt.Errorf("stats: traffic(%d) != hits(%d)+misses(%d)",
			s.L1DTraffic, s.L1DHits, s.L1DMisses)
	}
	return nil
}

// String summarizes the run for CLI output.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d insns=%d IPC=%.3f\n", s.Cycles, s.Instructions, s.IPC())
	fmt.Fprintf(&b, "L1D: accesses=%d hits=%d misses=%d bypasses=%d hitrate=%.3f\n",
		s.L1DAccesses, s.L1DHits, s.L1DMisses, s.L1DBypasses, s.L1DHitRate())
	fmt.Fprintf(&b, "L1D: traffic=%d evictions=%d stalls=%d vta_hits=%d compulsory=%d\n",
		s.L1DTraffic, s.L1DEvictions, s.L1DStalls, s.VTAHits, s.L1DCompulsory)
	fmt.Fprintf(&b, "L2: accesses=%d hits=%d misses=%d\n", s.L2Accesses, s.L2Hits, s.L2Misses)
	fmt.Fprintf(&b, "DRAM: reads=%d writes=%d ICNT: flits=%d data_flits=%d",
		s.DRAMReads, s.DRAMWrites, s.ICNTFlits, s.ICNTDataFlits)
	return b.String()
}

// GeoMean returns the geometric mean of xs. Zero or negative entries are
// rejected with a NaN result because they indicate a broken series.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Normalize divides each value by the corresponding baseline value.
// Baseline zeros produce zeros (the series is then meaningless anyway but
// must not take down a whole harness run).
func Normalize(values, baseline []float64) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		if i < len(baseline) && baseline[i] != 0 {
			out[i] = v / baseline[i]
		}
	}
	return out
}

// Ratio returns a/b, or 0 when b is 0.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Histogram is a bucketed counter keyed by int, used for reuse-distance
// distributions.
type Histogram struct {
	counts map[int]uint64
	total  uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]uint64)}
}

// Observe adds one observation of value v.
func (h *Histogram) Observe(v int) {
	h.counts[v]++
	h.total++
}

// Merge folds every observation of o into h. Addition commutes, so a
// set of histograms merges to the same result in any order — which is
// what lets the parallel RDD profiler shard per SM and fold.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for v, c := range o.counts {
		h.counts[v] += c
	}
	h.total += o.total
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Count returns the observations of exactly v.
func (h *Histogram) Count(v int) uint64 { return h.counts[v] }

// CountRange returns observations with lo <= v <= hi.
func (h *Histogram) CountRange(lo, hi int) uint64 {
	var n uint64
	for v, c := range h.counts {
		if v >= lo && v <= hi {
			n += c
		}
	}
	return n
}

// CountAtLeast returns observations with v >= lo.
func (h *Histogram) CountAtLeast(lo int) uint64 {
	var n uint64
	for v, c := range h.counts {
		if v >= lo {
			n += c
		}
	}
	return n
}

// Keys returns the observed values in ascending order.
func (h *Histogram) Keys() []int {
	keys := make([]int, 0, len(h.counts))
	for v := range h.counts {
		keys = append(keys, v)
	}
	sort.Ints(keys)
	return keys
}

// Fractions returns the fraction of observations in each [lo,hi] bucket.
// The last bucket may use hi = math.MaxInt to mean "and above".
func (h *Histogram) Fractions(buckets [][2]int) []float64 {
	out := make([]float64, len(buckets))
	if h.total == 0 {
		return out
	}
	for i, b := range buckets {
		out[i] = float64(h.CountRange(b[0], b[1])) / float64(h.total)
	}
	return out
}
