package stats

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestIPC(t *testing.T) {
	s := &Stats{Cycles: 100, Instructions: 250}
	if got := s.IPC(); got != 2.5 {
		t.Errorf("IPC = %v, want 2.5", got)
	}
	z := &Stats{}
	if got := z.IPC(); got != 0 {
		t.Errorf("IPC of empty stats = %v, want 0", got)
	}
}

func TestHitRateExcludesBypasses(t *testing.T) {
	s := &Stats{L1DAccesses: 100, L1DHits: 30, L1DMisses: 30, L1DBypasses: 40}
	if got := s.L1DHitRate(); got != 0.5 {
		t.Errorf("hit rate = %v, want 0.5 (bypasses excluded)", got)
	}
	z := &Stats{}
	if got := z.L1DHitRate(); got != 0 {
		t.Errorf("hit rate of empty stats = %v", got)
	}
}

func TestMemoryAccessRatio(t *testing.T) {
	s := &Stats{Instructions: 1000, L1DAccesses: 10, StoreAccesses: 5}
	if got := s.MemoryAccessRatio(); got != 0.015 {
		t.Errorf("ratio = %v, want 0.015", got)
	}
	if got := (&Stats{}).MemoryAccessRatio(); got != 0 {
		t.Errorf("ratio of empty = %v", got)
	}
}

func TestAddAccumulatesEveryField(t *testing.T) {
	a := &Stats{
		Cycles: 1, Instructions: 2, WarpInsns: 3,
		L1DAccesses: 4, L1DHits: 5, L1DMisses: 6, L1DBypasses: 7,
		L1DEvictions: 8, L1DStalls: 9, L1DTraffic: 10, VTAHits: 11,
		L1DCompulsory: 12, L2Accesses: 13, L2Hits: 14, L2Misses: 15,
		DRAMReads: 16, DRAMWrites: 17, ICNTFlits: 18, ICNTDataFlits: 19,
		StoreAccesses: 20,
	}
	b := &Stats{}
	b.Add(a)
	b.Add(a)
	if b.Cycles != 2 || b.Instructions != 4 || b.WarpInsns != 6 ||
		b.L1DAccesses != 8 || b.L1DHits != 10 || b.L1DMisses != 12 ||
		b.L1DBypasses != 14 || b.L1DEvictions != 16 || b.L1DStalls != 18 ||
		b.L1DTraffic != 20 || b.VTAHits != 22 || b.L1DCompulsory != 24 ||
		b.L2Accesses != 26 || b.L2Hits != 28 || b.L2Misses != 30 ||
		b.DRAMReads != 32 || b.DRAMWrites != 34 || b.ICNTFlits != 36 ||
		b.ICNTDataFlits != 38 || b.StoreAccesses != 40 {
		t.Errorf("Add missed a field: %+v", b)
	}
}

// TestAddCoversEveryFieldReflect fills every counter field via
// reflection, so a counter added to Stats but forgotten in Add fails
// here without this test needing an update.
func TestAddCoversEveryFieldReflect(t *testing.T) {
	a := &Stats{}
	v := reflect.ValueOf(a).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() != reflect.Uint64 {
			t.Fatalf("field %s is %s; extend this test (and Add) for non-uint64 counters",
				v.Type().Field(i).Name, f.Kind())
		}
		f.SetUint(uint64(i + 1))
	}
	b := &Stats{}
	b.Add(a)
	b.Add(a)
	bv := reflect.ValueOf(b).Elem()
	for i := 0; i < bv.NumField(); i++ {
		if got, want := bv.Field(i).Uint(), uint64(2*(i+1)); got != want {
			t.Errorf("Add dropped field %s: got %d, want %d", bv.Type().Field(i).Name, got, want)
		}
	}
}

// TestAddConservationRoundTrip shards a conserving Stats, folds the
// shards back with Add, and checks the identity the phase-parallel
// engine relies on: the sum equals the whole, and conservation holds
// on the sum whenever it holds on every shard.
func TestAddConservationRoundTrip(t *testing.T) {
	shards := []*Stats{
		{L1DAccesses: 10, L1DHits: 4, L1DMisses: 3, L1DBypasses: 3, L1DTraffic: 7, Cycles: 5, Instructions: 9},
		{L1DAccesses: 6, L1DHits: 6, L1DTraffic: 6, Cycles: 5, Instructions: 2},
		{}, // an idle shard must be a no-op
	}
	sum := &Stats{}
	for _, sh := range shards {
		if err := sh.CheckConservation(); err != nil {
			t.Fatalf("shard invalid before the round-trip: %v", err)
		}
		sum.Add(sh.Clone()) // through Clone, as the runner's cache serves results
	}
	if err := sum.CheckConservation(); err != nil {
		t.Errorf("conservation broke across Add: %v", err)
	}
	want := Stats{L1DAccesses: 16, L1DHits: 10, L1DMisses: 3, L1DBypasses: 3,
		L1DTraffic: 13, Cycles: 10, Instructions: 11}
	if *sum != want {
		t.Errorf("round-trip sum = %+v, want %+v", *sum, want)
	}
	// Mutating the summed result must not reach back into the shards.
	sum.L1DHits = 999
	if shards[0].L1DHits != 4 {
		t.Error("Add aliased a shard")
	}
}

func TestCheckConservation(t *testing.T) {
	ok := &Stats{L1DAccesses: 10, L1DHits: 4, L1DMisses: 3, L1DBypasses: 3, L1DTraffic: 7}
	if err := ok.CheckConservation(); err != nil {
		t.Errorf("valid stats rejected: %v", err)
	}
	bad := &Stats{L1DAccesses: 10, L1DHits: 4, L1DMisses: 3, L1DBypasses: 2, L1DTraffic: 7}
	if err := bad.CheckConservation(); err == nil {
		t.Error("imbalanced accesses not caught")
	}
	bad2 := &Stats{L1DAccesses: 10, L1DHits: 4, L1DMisses: 3, L1DBypasses: 3, L1DTraffic: 8}
	if err := bad2.CheckConservation(); err == nil {
		t.Error("imbalanced traffic not caught")
	}
}

func TestStringMentionsKeyCounters(t *testing.T) {
	s := &Stats{Cycles: 7, Instructions: 21}
	out := s.String()
	for _, want := range []string{"IPC=3.000", "cycles=7", "L1D", "DRAM"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean([]float64{5}); math.Abs(got-5) > 1e-12 {
		t.Errorf("GeoMean(5) = %v, want 5", got)
	}
	if got := GeoMean(nil); !math.IsNaN(got) {
		t.Errorf("GeoMean(nil) = %v, want NaN", got)
	}
	if got := GeoMean([]float64{1, 0}); !math.IsNaN(got) {
		t.Errorf("GeoMean with zero = %v, want NaN", got)
	}
	if got := GeoMean([]float64{1, -2}); !math.IsNaN(got) {
		t.Errorf("GeoMean with negative = %v, want NaN", got)
	}
}

func TestGeoMeanBounds(t *testing.T) {
	// Geometric mean lies between min and max of a positive series.
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := GeoMean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 9, 5}, []float64{4, 3, 0})
	want := []float64{0.5, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Shorter baseline must not panic.
	got = Normalize([]float64{1, 2}, []float64{2})
	if got[0] != 0.5 || got[1] != 0 {
		t.Errorf("Normalize with short baseline = %v", got)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(3, 4); got != 0.75 {
		t.Errorf("Ratio = %v", got)
	}
	if got := Ratio(3, 0); got != 0 {
		t.Errorf("Ratio by zero = %v", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{1, 1, 2, 5, 9, 70} {
		h.Observe(v)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Count(1) != 2 {
		t.Errorf("Count(1) = %d", h.Count(1))
	}
	if h.CountRange(1, 4) != 3 {
		t.Errorf("CountRange(1,4) = %d", h.CountRange(1, 4))
	}
	if h.CountAtLeast(65) != 1 {
		t.Errorf("CountAtLeast(65) = %d", h.CountAtLeast(65))
	}
	keys := h.Keys()
	want := []int{1, 2, 5, 9, 70}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("Keys[%d] = %d, want %d", i, keys[i], want[i])
		}
	}
}

func TestHistogramFractionsPaperBuckets(t *testing.T) {
	h := NewHistogram()
	// 2 in 1-4, 1 in 5-8, 1 in 9-64, 1 in >=65.
	for _, v := range []int{1, 4, 8, 64, 65} {
		h.Observe(v)
	}
	buckets := [][2]int{{1, 4}, {5, 8}, {9, 64}, {65, math.MaxInt}}
	fr := h.Fractions(buckets)
	want := []float64{0.4, 0.2, 0.2, 0.2}
	for i := range want {
		if math.Abs(fr[i]-want[i]) > 1e-12 {
			t.Errorf("fraction[%d] = %v, want %v", i, fr[i], want[i])
		}
	}
	// Fractions over an empty histogram are all zero.
	empty := NewHistogram().Fractions(buckets)
	for i, f := range empty {
		if f != 0 {
			t.Errorf("empty fraction[%d] = %v", i, f)
		}
	}
}

func TestHistogramFractionsSumToOne(t *testing.T) {
	f := func(vals []uint8) bool {
		h := NewHistogram()
		for _, v := range vals {
			h.Observe(int(v) + 1)
		}
		if h.Total() == 0 {
			return true
		}
		fr := h.Fractions([][2]int{{1, 4}, {5, 8}, {9, 64}, {65, math.MaxInt}})
		sum := 0.0
		for _, x := range fr {
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	s := &Stats{Cycles: 10, L1DHits: 5, ICNTFlits: 7}
	c := s.Clone()
	if *c != *s {
		t.Fatalf("clone differs: %+v vs %+v", c, s)
	}
	c.L1DHits = 99
	if s.L1DHits != 5 {
		t.Error("mutating the clone changed the original")
	}
}
