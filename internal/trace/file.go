package trace

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/addr"
)

// On-disk stream format ("DLPSTRM1", little-endian):
//
//	header:
//	  magic       [8]byte  "DLPSTRM1"
//	  version     uint32   (currently 1)
//	  chunkInstrs uint32   window size every chunk but a warp's last holds
//	  name        uint32 length + bytes
//	  blocks      uint32
//	  per block:  warps uint32
//	chunk data, block-major, warp order, chunk order:
//	  instructions encoded exactly as the DLPTRACE kernel format
//	  (kind uint8, pc uint32; compute: latency uint32 + lanes uint8;
//	  memory: lanes uint8 + lanes x uint64 addresses)
//	index (at footer's indexOff), block-major, warp order:
//	  per warp: instrs uint32, then ceil(instrs/chunkInstrs) x
//	            (offset uint64, size uint32) chunk locations
//	footer (last 48 bytes):
//	  indexOff uint64
//	  sha256   [32]byte  over file bytes [0, size-48)
//	  tail     [8]byte   "DLPSTRM1"
//
// The per-warp chunk index is what makes the format streamable: a
// simulation seeks straight to any warp's next window with one ReadAt,
// so resident-warp state — not trace footprint — bounds memory. The
// whole-file checksum makes corruption detection an Open-time property;
// Fill never has to distinguish truncation from bad data mid-run.

var streamMagic = [8]byte{'D', 'L', 'P', 'S', 'T', 'R', 'M', '1'}

const (
	streamVersion   = 1
	streamFooterLen = 8 + sha256.Size + 8
	maxChunkInstrs  = 1 << 16
	maxChunkBytes   = 1 << 30
)

// FormatError describes a structurally invalid, truncated, or corrupt
// trace-stream file. Open returns it for anything wrong with the file
// itself; a FileStream whose file is mutilated after Open panics with
// one (the runner's recover boundary converts that into a job error).
type FormatError struct {
	Path string // file being read
	Msg  string // what was wrong
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("trace: stream file %s: %s", e.Path, e.Msg)
}

func formatErrf(path, format string, args ...any) *FormatError {
	return &FormatError{Path: path, Msg: fmt.Sprintf(format, args...)}
}

// chunkRef locates one chunk's encoded bytes in the file.
type chunkRef struct {
	off  int64
	size uint32
}

// fileWarp is one warp's index entry.
type fileWarp struct {
	instrs int
	chunks []chunkRef
}

// FileStream replays a "DLPSTRM1" trace file as a Stream. Open
// validates the whole file — bounds, index sanity, and the full-file
// checksum — so every later Fill is a bounds-checked ReadAt into the
// caller's chunk. Fill is safe for concurrent use across warps (the
// phase-parallel engine ticks SMs concurrently against one stream).
type FileStream struct {
	f           *os.File
	path        string
	name        string
	chunkInstrs int
	warpsPer    []int      // warps per block
	warps       []fileWarp // block-major, warp order
	warpStart   []int      // first warps[] index of each block
	digest      string     // hex sha256 of the hashed region
}

// Open opens and fully validates a trace-stream file. Any structural
// problem — bad magic, truncation, out-of-bounds index entries, or a
// checksum mismatch — comes back as a *FormatError.
func Open(path string) (*FileStream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := newFileStream(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func newFileStream(f *os.File, path string) (*FileStream, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < streamFooterLen+8 {
		return nil, formatErrf(path, "file too small (%d bytes) to be a trace stream", size)
	}

	// Footer first: tail magic, index offset, and the checksum that
	// vouches for everything else.
	var footer [streamFooterLen]byte
	if _, err := f.ReadAt(footer[:], size-streamFooterLen); err != nil {
		return nil, formatErrf(path, "reading footer: %v", err)
	}
	if [8]byte(footer[streamFooterLen-8:]) != streamMagic {
		return nil, formatErrf(path, "bad tail magic %q", footer[streamFooterLen-8:])
	}
	indexOff := int64(binary.LittleEndian.Uint64(footer[:8]))
	hashedLen := size - streamFooterLen
	if indexOff < 0 || indexOff > hashedLen {
		return nil, formatErrf(path, "index offset %d out of range (file %d bytes)", indexOff, size)
	}
	h := sha256.New()
	if _, err := io.Copy(h, io.NewSectionReader(f, 0, hashedLen)); err != nil {
		return nil, formatErrf(path, "hashing: %v", err)
	}
	sum := h.Sum(nil)
	var want [sha256.Size]byte
	copy(want[:], footer[8:8+sha256.Size])
	if [sha256.Size]byte(sum) != want {
		return nil, formatErrf(path, "checksum mismatch: file is corrupt or truncated")
	}

	s := &FileStream{f: f, path: path, digest: fmt.Sprintf("%x", sum)}

	// Header.
	hr := bufio.NewReader(io.NewSectionReader(f, 0, indexOff))
	var magic [8]byte
	if _, err := io.ReadFull(hr, magic[:]); err != nil {
		return nil, formatErrf(path, "reading magic: %v", err)
	}
	if magic != streamMagic {
		return nil, formatErrf(path, "bad magic %q", magic[:])
	}
	u32 := func(what string) (uint32, error) {
		var v uint32
		if err := binary.Read(hr, binary.LittleEndian, &v); err != nil {
			return 0, formatErrf(path, "reading %s: %v", what, err)
		}
		return v, nil
	}
	version, err := u32("version")
	if err != nil {
		return nil, err
	}
	if version != streamVersion {
		return nil, formatErrf(path, "unsupported version %d", version)
	}
	ci, err := u32("chunk size")
	if err != nil {
		return nil, err
	}
	if ci == 0 || ci > maxChunkInstrs {
		return nil, formatErrf(path, "chunk size %d out of range", ci)
	}
	s.chunkInstrs = int(ci)
	nameLen, err := u32("name length")
	if err != nil {
		return nil, err
	}
	if nameLen > maxNameLen {
		return nil, formatErrf(path, "name length %d too large", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(hr, name); err != nil {
		return nil, formatErrf(path, "reading name: %v", err)
	}
	s.name = string(name)
	nBlocks, err := u32("block count")
	if err != nil {
		return nil, err
	}
	if nBlocks == 0 || nBlocks > maxBlocks {
		return nil, formatErrf(path, "block count %d out of range", nBlocks)
	}
	s.warpsPer = make([]int, nBlocks)
	s.warpStart = make([]int, nBlocks)
	totalWarps := 0
	for bi := range s.warpsPer {
		nw, err := u32(fmt.Sprintf("block %d warp count", bi))
		if err != nil {
			return nil, err
		}
		if nw == 0 || nw > maxWarps {
			return nil, formatErrf(path, "block %d warp count %d out of range", bi, nw)
		}
		s.warpStart[bi] = totalWarps
		s.warpsPer[bi] = int(nw)
		totalWarps += int(nw)
	}

	// Index.
	ir := bufio.NewReader(io.NewSectionReader(f, indexOff, hashedLen-indexOff))
	iu32 := func(what string) (uint32, error) {
		var v uint32
		if err := binary.Read(ir, binary.LittleEndian, &v); err != nil {
			return 0, formatErrf(path, "index: reading %s: %v", what, err)
		}
		return v, nil
	}
	s.warps = make([]fileWarp, totalWarps)
	totalInstrs := 0
	for wi := range s.warps {
		n, err := iu32(fmt.Sprintf("warp %d instr count", wi))
		if err != nil {
			return nil, err
		}
		totalInstrs += int(n)
		if n == 0 || totalInstrs > maxInstrs {
			return nil, formatErrf(path, "warp %d instr count %d out of range", wi, n)
		}
		nChunks := (int(n) + s.chunkInstrs - 1) / s.chunkInstrs
		w := fileWarp{instrs: int(n), chunks: make([]chunkRef, nChunks)}
		for c := range w.chunks {
			var off uint64
			if err := binary.Read(ir, binary.LittleEndian, &off); err != nil {
				return nil, formatErrf(path, "index: reading warp %d chunk %d offset: %v", wi, c, err)
			}
			sz, err := iu32(fmt.Sprintf("warp %d chunk %d size", wi, c))
			if err != nil {
				return nil, err
			}
			if sz == 0 || sz > maxChunkBytes || int64(off) < 0 ||
				int64(off)+int64(sz) > indexOff {
				return nil, formatErrf(path, "index: warp %d chunk %d spans [%d, %d) outside chunk data [0, %d)",
					wi, c, off, off+uint64(sz), indexOff)
			}
			w.chunks[c] = chunkRef{off: int64(off), size: sz}
		}
		s.warps[wi] = w
	}
	return s, nil
}

// Close releases the underlying file.
func (s *FileStream) Close() error { return s.f.Close() }

// Digest is the file's content hash (hex sha256 of everything but the
// footer's own hash bytes).
func (s *FileStream) Digest() string { return s.digest }

func (s *FileStream) Name() string        { return s.name }
func (s *FileStream) Blocks() int         { return len(s.warpsPer) }
func (s *FileStream) Warps(block int) int { return s.warpsPer[block] }
func (s *FileStream) SpecKey() string     { return "file:sha256:" + s.digest }

// ChunkInstrs is the file's window size (cursor windows follow it).
func (s *FileStream) ChunkInstrs() int { return s.chunkInstrs }

// Fill decodes the chunk holding instruction start into c. The stream
// contract guarantees start falls on a chunk boundary. I/O failures
// after Open's full validation mean the file changed underneath us;
// Fill panics with a *FormatError, which the runner's recover boundary
// reports as the job's error.
func (s *FileStream) Fill(block, warp, start int, c *Chunk) ([]Instr, bool, bool) {
	fw := &s.warps[s.warpStart[block]+warp]
	if start%s.chunkInstrs != 0 || start < 0 || start >= fw.instrs {
		panic(formatErrf(s.path, "fill at %d: not a chunk boundary of warp with %d instrs", start, fw.instrs))
	}
	ref := fw.chunks[start/s.chunkInstrs]
	count := fw.instrs - start
	if count > s.chunkInstrs {
		count = s.chunkInstrs
	}
	if cap(c.Buf) < int(ref.size) {
		c.Buf = make([]byte, ref.size)
	}
	c.Buf = c.Buf[:ref.size]
	if _, err := s.f.ReadAt(c.Buf, ref.off); err != nil {
		panic(formatErrf(s.path, "reading chunk at %d: %v", ref.off, err))
	}
	if err := decodeChunk(c, count); err != nil {
		panic(formatErrf(s.path, "chunk at %d: %v", ref.off, err))
	}
	return c.Instrs, start+count == fw.instrs, true
}

// decodeChunk parses count instructions from c.Buf into c.Instrs, with
// per-lane addresses carved out of c.Addrs — no per-call allocations
// once the chunk's arenas reach their high-water capacity.
func decodeChunk(c *Chunk, count int) error {
	buf := c.Buf
	p := 0
	need := func(n int) bool { return len(buf)-p >= n }
	for i := 0; i < count; i++ {
		if !need(5) {
			return fmt.Errorf("insn %d: truncated header", i)
		}
		kind := Kind(buf[p])
		pc := binary.LittleEndian.Uint32(buf[p+1:])
		p += 5
		switch kind {
		case Compute:
			if !need(5) {
				return fmt.Errorf("insn %d: truncated compute", i)
			}
			lat := binary.LittleEndian.Uint32(buf[p:])
			lanes := buf[p+4]
			p += 5
			c.Instrs = append(c.Instrs, Instr{
				Kind: Compute, PC: pc, Latency: int(lat), ActiveLanes: int(lanes),
			})
		case Load, Store:
			if !need(1) {
				return fmt.Errorf("insn %d: truncated lane count", i)
			}
			lanes := int(buf[p])
			p++
			if !need(8 * lanes) {
				return fmt.Errorf("insn %d: truncated addresses", i)
			}
			aStart := len(c.Addrs)
			for l := 0; l < lanes; l++ {
				c.Addrs = append(c.Addrs, addr.Addr(binary.LittleEndian.Uint64(buf[p:])))
				p += 8
			}
			c.Instrs = append(c.Instrs, Instr{
				Kind: kind, PC: pc, ActiveLanes: lanes,
				Addrs: c.Addrs[aStart:len(c.Addrs):len(c.Addrs)],
			})
		default:
			return fmt.Errorf("insn %d: unknown kind %d", i, kind)
		}
	}
	if p != len(buf) {
		return fmt.Errorf("%d trailing bytes after %d instructions", len(buf)-p, count)
	}
	return nil
}

// WriteFile records src as a trace-stream file at path, windowed into
// chunkInstrs-instruction chunks (DefaultChunkInstrs if <= 0). It
// streams one warp window at a time, so recording never materializes
// the kernel.
func WriteFile(path string, src Stream, chunkInstrs int) (err error) {
	if chunkInstrs <= 0 {
		chunkInstrs = DefaultChunkInstrs
	}
	if chunkInstrs > maxChunkInstrs {
		return formatErrf(path, "chunk size %d exceeds format limit %d", chunkInstrs, maxChunkInstrs)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()

	h := sha256.New()
	bw := bufio.NewWriter(f)
	cw := &countWriter{w: io.MultiWriter(bw, h)}
	write := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }

	// Header.
	name := src.Name()
	if len(name) > maxNameLen {
		return formatErrf(path, "kernel name longer than %d bytes", maxNameLen)
	}
	nBlocks := src.Blocks()
	if nBlocks <= 0 || nBlocks > maxBlocks {
		return formatErrf(path, "block count %d out of range", nBlocks)
	}
	if _, err := cw.Write(streamMagic[:]); err != nil {
		return err
	}
	for _, v := range []uint32{streamVersion, uint32(chunkInstrs), uint32(len(name))} {
		if err := write(v); err != nil {
			return err
		}
	}
	if _, err := cw.Write([]byte(name)); err != nil {
		return err
	}
	if err := write(uint32(nBlocks)); err != nil {
		return err
	}
	totalWarps := 0
	for bi := 0; bi < nBlocks; bi++ {
		nw := src.Warps(bi)
		if nw <= 0 || nw > maxWarps {
			return formatErrf(path, "block %d warp count %d out of range", bi, nw)
		}
		totalWarps += nw
		if err := write(uint32(nw)); err != nil {
			return err
		}
	}

	// Chunk data. Source windows are rewindowed instruction by
	// instruction into exact chunkInstrs-sized chunks (the reader
	// derives each chunk's instruction count from the declared size),
	// so any backend window size — a compat backend's whole-warp tail,
	// another file's different chunking — records correctly.
	index := make([]fileWarp, 0, totalWarps)
	pool := NewChunkPool(chunkInstrs)
	chunk := pool.Get()
	for bi := 0; bi < nBlocks; bi++ {
		for wi := 0; wi < src.Warps(bi); wi++ {
			fw := fileWarp{}
			ref := chunkRef{off: cw.n}
			inChunk := 0
			for start, eof := 0, false; !eof; {
				chunk.Reset()
				var win []Instr
				win, eof, _ = src.Fill(bi, wi, start, chunk)
				if len(win) == 0 && !eof {
					return formatErrf(path, "stream %q block %d warp %d: empty non-eof window at %d",
						name, bi, wi, start)
				}
				for i := range win {
					if inChunk == chunkInstrs {
						ref.size = uint32(cw.n - ref.off)
						fw.chunks = append(fw.chunks, ref)
						ref = chunkRef{off: cw.n}
						inChunk = 0
					}
					if err := writeInstr(cw, &win[i]); err != nil {
						return err
					}
					inChunk++
				}
				fw.instrs += len(win)
				start += len(win)
			}
			if fw.instrs == 0 {
				return formatErrf(path, "stream %q block %d warp %d is empty", name, bi, wi)
			}
			ref.size = uint32(cw.n - ref.off)
			fw.chunks = append(fw.chunks, ref)
			index = append(index, fw)
		}
	}

	// Index.
	indexOff := cw.n
	for _, fw := range index {
		if err := write(uint32(fw.instrs)); err != nil {
			return err
		}
		for _, ref := range fw.chunks {
			if err := write(uint64(ref.off)); err != nil {
				return err
			}
			if err := write(uint32(ref.size)); err != nil {
				return err
			}
		}
	}

	// Footer: indexOff and the checksum bypass the hasher (the hash
	// covers exactly the bytes before the footer).
	var footer [streamFooterLen]byte
	binary.LittleEndian.PutUint64(footer[:8], uint64(indexOff))
	h.Sum(footer[8:8])
	copy(footer[streamFooterLen-8:], streamMagic[:])
	if _, err := bw.Write(footer[:]); err != nil {
		return err
	}
	return bw.Flush()
}
