package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/addr"
)

// Binary trace format, little-endian:
//
//	magic   [8]byte  "DLPTRACE"
//	version uint32   (currently 1)
//	name    uint32 length + bytes
//	blocks  uint32
//	  per block:  warps uint32
//	    per warp: instrs uint32
//	      per instruction:
//	        kind   uint8
//	        pc     uint32
//	        compute: latency uint32, lanes uint8
//	        memory:  lanes uint8, lanes x uint64 addresses
//
// The format exists so kernels — including ones converted from external
// simulators' traces — can be stored and replayed byte-identically.

var traceMagic = [8]byte{'D', 'L', 'P', 'T', 'R', 'A', 'C', 'E'}

const traceVersion = 1

// limits guard readers against corrupt or hostile inputs.
const (
	maxNameLen = 1 << 10
	maxBlocks  = 1 << 20
	maxWarps   = 1 << 16
	maxInstrs  = 1 << 26
	maxLanes   = 255
)

// WriteTo serializes the kernel. It returns the byte count written.
func (k *Kernel) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: bufio.NewWriter(w)}
	write := func(v interface{}) error {
		return binary.Write(cw, binary.LittleEndian, v)
	}
	if _, err := cw.Write(traceMagic[:]); err != nil {
		return cw.n, err
	}
	if err := write(uint32(traceVersion)); err != nil {
		return cw.n, err
	}
	if len(k.Name) > maxNameLen {
		return cw.n, fmt.Errorf("trace: kernel name longer than %d bytes", maxNameLen)
	}
	if err := write(uint32(len(k.Name))); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write([]byte(k.Name)); err != nil {
		return cw.n, err
	}
	if err := write(uint32(len(k.Blocks))); err != nil {
		return cw.n, err
	}
	for _, b := range k.Blocks {
		if err := write(uint32(len(b.Warps))); err != nil {
			return cw.n, err
		}
		for _, wt := range b.Warps {
			if err := write(uint32(len(wt.Instrs))); err != nil {
				return cw.n, err
			}
			for i := range wt.Instrs {
				if err := writeInstr(cw, &wt.Instrs[i]); err != nil {
					return cw.n, err
				}
			}
		}
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

func writeInstr(w io.Writer, in *Instr) error {
	write := func(v interface{}) error { return binary.Write(w, binary.LittleEndian, v) }
	if err := write(uint8(in.Kind)); err != nil {
		return err
	}
	if err := write(in.PC); err != nil {
		return err
	}
	if in.Kind == Compute {
		if err := write(uint32(in.Latency)); err != nil {
			return err
		}
		return write(uint8(in.ActiveLanes))
	}
	if len(in.Addrs) > maxLanes {
		return fmt.Errorf("trace: %d lanes exceeds format limit", len(in.Addrs))
	}
	if err := write(uint8(len(in.Addrs))); err != nil {
		return err
	}
	for _, a := range in.Addrs {
		if err := write(uint64(a)); err != nil {
			return err
		}
	}
	return nil
}

// ReadKernel deserializes a kernel written by WriteTo.
func ReadKernel(r io.Reader) (*Kernel, error) {
	br := bufio.NewReader(r)
	read := func(v interface{}) error {
		return binary.Read(br, binary.LittleEndian, v)
	}
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var version uint32
	if err := read(&version); err != nil {
		return nil, err
	}
	if version != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	var nameLen uint32
	if err := read(&nameLen); err != nil {
		return nil, err
	}
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("trace: name length %d too large", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var nBlocks uint32
	if err := read(&nBlocks); err != nil {
		return nil, err
	}
	if nBlocks > maxBlocks {
		return nil, fmt.Errorf("trace: block count %d too large", nBlocks)
	}
	k := &Kernel{Name: string(name), Blocks: make([]*Block, 0, nBlocks)}
	totalInstrs := 0
	for bi := uint32(0); bi < nBlocks; bi++ {
		var nWarps uint32
		if err := read(&nWarps); err != nil {
			return nil, err
		}
		if nWarps > maxWarps {
			return nil, fmt.Errorf("trace: warp count %d too large", nWarps)
		}
		blk := &Block{Warps: make([]*WarpTrace, 0, nWarps)}
		for wi := uint32(0); wi < nWarps; wi++ {
			var nInstrs uint32
			if err := read(&nInstrs); err != nil {
				return nil, err
			}
			totalInstrs += int(nInstrs)
			if totalInstrs > maxInstrs {
				return nil, fmt.Errorf("trace: instruction count exceeds %d", maxInstrs)
			}
			wt := &WarpTrace{Instrs: make([]Instr, 0, nInstrs)}
			for ii := uint32(0); ii < nInstrs; ii++ {
				in, err := readInstr(br)
				if err != nil {
					return nil, fmt.Errorf("trace: block %d warp %d insn %d: %w", bi, wi, ii, err)
				}
				wt.Instrs = append(wt.Instrs, in)
			}
			blk.Warps = append(blk.Warps, wt)
		}
		k.Blocks = append(k.Blocks, blk)
	}
	return k, nil
}

func readInstr(r io.Reader) (Instr, error) {
	read := func(v interface{}) error { return binary.Read(r, binary.LittleEndian, v) }
	var kind uint8
	if err := read(&kind); err != nil {
		return Instr{}, err
	}
	var in Instr
	in.Kind = Kind(kind)
	if err := read(&in.PC); err != nil {
		return Instr{}, err
	}
	switch in.Kind {
	case Compute:
		var lat uint32
		if err := read(&lat); err != nil {
			return Instr{}, err
		}
		var lanes uint8
		if err := read(&lanes); err != nil {
			return Instr{}, err
		}
		in.Latency = int(lat)
		in.ActiveLanes = int(lanes)
	case Load, Store:
		var lanes uint8
		if err := read(&lanes); err != nil {
			return Instr{}, err
		}
		in.ActiveLanes = int(lanes)
		in.Addrs = make([]addr.Addr, lanes)
		for i := range in.Addrs {
			var a uint64
			if err := read(&a); err != nil {
				return Instr{}, err
			}
			in.Addrs[i] = addr.Addr(a)
		}
	default:
		return Instr{}, fmt.Errorf("unknown instruction kind %d", kind)
	}
	return in, nil
}

// countWriter tracks bytes written for WriteTo's return value.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
