package trace

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/prng"
)

func roundTrip(t *testing.T, k *Kernel) *Kernel {
	t.Helper()
	var buf bytes.Buffer
	n, err := k.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadKernel(&buf)
	if err != nil {
		t.Fatalf("ReadKernel: %v", err)
	}
	return got
}

func TestSerializeRoundTrip(t *testing.T) {
	k := &Kernel{Name: "rt", Blocks: []*Block{{Warps: []*WarpTrace{{Instrs: []Instr{
		NewCompute(100, 4, 32),
		NewLoad(1, []addr.Addr{0, 4, 128}),
		NewStore(2, []addr.Addr{0xdeadbeef}),
	}}}}}}
	got := roundTrip(t, k)
	if !reflect.DeepEqual(k, got) {
		t.Errorf("round trip mismatch:\n%+v\nvs\n%+v", k, got)
	}
}

func TestSerializeRoundTripRandom(t *testing.T) {
	f := func(seed uint64, nb, nw, ni uint8) bool {
		rng := prng.New(seed)
		k := &Kernel{Name: "r"}
		for b := 0; b < int(nb)%3+1; b++ {
			blk := &Block{}
			for w := 0; w < int(nw)%3+1; w++ {
				wt := &WarpTrace{}
				for i := 0; i < int(ni)%8+1; i++ {
					switch rng.Intn(3) {
					case 0:
						wt.Instrs = append(wt.Instrs, NewCompute(uint32(rng.Intn(1000)), 1+rng.Intn(16), 1+rng.Intn(32)))
					case 1:
						wt.Instrs = append(wt.Instrs, NewLoad(uint32(rng.Intn(1000)), randA(rng)))
					default:
						wt.Instrs = append(wt.Instrs, NewStore(uint32(rng.Intn(1000)), randA(rng)))
					}
				}
				blk.Warps = append(blk.Warps, wt)
			}
			k.Blocks = append(k.Blocks, blk)
		}
		var buf bytes.Buffer
		if _, err := k.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadKernel(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(k, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randA(rng *prng.Source) []addr.Addr {
	out := make([]addr.Addr, 1+rng.Intn(32))
	for i := range out {
		out[i] = addr.Addr(rng.Uint64())
	}
	return out
}

func TestReadKernelRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOTATRACEFILE###"),
		"truncated":   append([]byte("DLPTRACE"), 1, 0, 0, 0),
		"bad version": append([]byte("DLPTRACE"), 9, 9, 9, 9, 0, 0, 0, 0),
	}
	for name, data := range cases {
		if _, err := ReadKernel(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadKernelRejectsOversizedCounts(t *testing.T) {
	// Handcraft a header claiming 2^31 blocks.
	var buf bytes.Buffer
	buf.WriteString("DLPTRACE")
	buf.Write([]byte{1, 0, 0, 0})    // version
	buf.Write([]byte{0, 0, 0, 0})    // name len 0
	buf.Write([]byte{0, 0, 0, 0x80}) // blocks = 2^31
	if _, err := ReadKernel(&buf); err == nil {
		t.Error("oversized block count accepted")
	}
}

func TestReadKernelRejectsUnknownInstrKind(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("DLPTRACE")
	buf.Write([]byte{1, 0, 0, 0}) // version
	buf.Write([]byte{0, 0, 0, 0}) // name len
	buf.Write([]byte{1, 0, 0, 0}) // 1 block
	buf.Write([]byte{1, 0, 0, 0}) // 1 warp
	buf.Write([]byte{1, 0, 0, 0}) // 1 instr
	buf.Write([]byte{9})          // kind 9
	buf.Write([]byte{0, 0, 0, 0}) // pc
	if _, err := ReadKernel(&buf); err == nil {
		t.Error("unknown instruction kind accepted")
	}
}

func TestSerializeWorkloadScale(t *testing.T) {
	// A realistic kernel survives the trip and validates afterwards.
	k := &Kernel{Name: "big"}
	for b := 0; b < 4; b++ {
		blk := &Block{}
		for w := 0; w < 8; w++ {
			wt := &WarpTrace{}
			for i := 0; i < 100; i++ {
				wt.Instrs = append(wt.Instrs, NewLoad(uint32(i%7), []addr.Addr{addr.Addr(i * 128)}))
			}
			blk.Warps = append(blk.Warps, wt)
		}
		k.Blocks = append(k.Blocks, blk)
	}
	got := roundTrip(t, k)
	if err := got.Validate(32); err != nil {
		t.Fatalf("deserialized kernel invalid: %v", err)
	}
	a, b := k.Summarize(128), got.Summarize(128)
	if *a != *b {
		t.Errorf("summaries differ: %+v vs %+v", a, b)
	}
}
