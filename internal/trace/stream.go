package trace

import (
	"repro/internal/addr"
)

// A Stream is a lazy, chunked view of a kernel: the same grid shape as
// a Kernel (blocks of warps of in-order instructions), but instruction
// windows are produced on demand instead of materialized up front.
// Backends include on-demand workload generators, on-disk trace files,
// and — for compatibility — a fully precomputed Kernel.
//
// Streams must be deterministic: the same (block, warp, start) always
// yields the same window contents, so simulations are bit-identical to
// their eager counterparts and resumable across refills.
type Stream interface {
	// Name is the kernel name (shown in tables and error messages).
	Name() string

	// Blocks is the number of thread blocks in the grid.
	Blocks() int

	// Warps is the number of warps in the given block.
	Warps(block int) int

	// Fill produces the instruction window of warp (block, warp)
	// beginning at in-warp instruction index start. The window is
	// either written into c's backing storage (owned=true: the caller
	// may memoize coalesced-line results into the chunk) or aliases
	// storage shared with other consumers (owned=false: the window is
	// read-only). eof reports that the window reaches the end of the
	// warp's trace; a non-eof window is never empty. start is always
	// either 0 or the exact end of the previously returned window, so
	// sequential backends can keep a cheap continuation in c.Resume.
	Fill(block, warp, start int, c *Chunk) (win []Instr, eof, owned bool)

	// SpecKey is a stable content identity for the whole stream —
	// equal keys mean byte-identical traces — used by the runner's
	// result cache in place of a materialized-kernel digest. An empty
	// key marks the stream uncacheable.
	SpecKey() string
}

// DefaultChunkInstrs is the instruction-window size streaming cursors
// request per refill. At 64 instructions a fully diverged chunk tops
// out around 36 KB (64 instrs x 32 lanes x 8-byte addresses plus line
// memos), so even a fully resident machine — 16 SMs x 48 warps — is
// bounded near 28 MB of chunk storage regardless of trace footprint.
const DefaultChunkInstrs = 64

// A Chunk is one warp's reusable refill buffer. Streams that own their
// windows build instructions in Instrs with per-lane addresses in
// Addrs; the cursor memoizes coalesced lines into Lines. Buf is
// scratch for byte-level backends (trace files). Resume carries a
// backend-private continuation across refills of the same warp; Reset
// preserves it, and backends must validate it before trusting it.
type Chunk struct {
	Instrs []Instr
	Addrs  []addr.Addr
	Lines  []addr.Addr
	Buf    []byte
	Resume any
}

// Reset truncates the chunk's storage for the next refill, keeping
// capacity (and the Resume continuation) so steady-state refills stay
// allocation-free.
func (c *Chunk) Reset() {
	c.Instrs = c.Instrs[:0]
	c.Addrs = c.Addrs[:0]
	c.Lines = c.Lines[:0]
}

// A ChunkPool recycles chunks across the warps of one SM. It is
// deliberately unsynchronized: each SM owns one pool, and all warp
// refills happen on that SM's tick, which the engine already keeps
// single-threaded.
type ChunkPool struct {
	chunkInstrs int
	free        []*Chunk
}

// NewChunkPool returns a pool handing out chunks sized for
// chunkInstrs-instruction windows (DefaultChunkInstrs if <= 0).
func NewChunkPool(chunkInstrs int) *ChunkPool {
	if chunkInstrs <= 0 {
		chunkInstrs = DefaultChunkInstrs
	}
	return &ChunkPool{chunkInstrs: chunkInstrs}
}

// ChunkInstrs is the window size this pool's chunks are sized for.
func (p *ChunkPool) ChunkInstrs() int { return p.chunkInstrs }

// Get pops a free chunk, allocating a fresh one with preallocated
// backing when the free list is empty.
func (p *ChunkPool) Get() *Chunk {
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free = p.free[:n-1]
		return c
	}
	const lanes = 32
	return &Chunk{
		Instrs: make([]Instr, 0, p.chunkInstrs),
		Addrs:  make([]addr.Addr, 0, p.chunkInstrs*lanes),
		Lines:  make([]addr.Addr, 0, p.chunkInstrs*4),
	}
}

// Put returns a chunk to the free list.
func (p *ChunkPool) Put(c *Chunk) {
	if c != nil {
		p.free = append(p.free, c)
	}
}

// A Cursor walks one warp's instruction stream in order. It has two
// modes behind one zero-branch-on-the-hot-path API: precomputed mode
// is plain slice arithmetic over a WarpTrace (the compat path, cost
// identical to the old pc-integer scheme), and stream mode refills a
// pooled chunk window on demand.
type Cursor struct {
	win  []Instr
	off  int
	base int // in-warp index of win[0]
	eof  bool

	src      Stream
	pool     *ChunkPool
	chunk    *Chunk
	lineSize int
	block    int
	warp     int
}

// InitPrecomputed points the cursor at a fully materialized warp
// trace. No pool or refills are involved.
func (c *Cursor) InitPrecomputed(wt *WarpTrace) {
	*c = Cursor{win: wt.Instrs, eof: true}
}

// InitStream points the cursor at warp (block, warp) of src and loads
// the first window. lineSize > 0 enables per-chunk coalesced-line
// memoization on owned windows.
func (c *Cursor) InitStream(src Stream, pool *ChunkPool, lineSize, block, warp int) {
	*c = Cursor{src: src, pool: pool, lineSize: lineSize, block: block, warp: warp}
	c.refill(0)
}

// Exhausted reports that the warp has no further instructions.
func (c *Cursor) Exhausted() bool { return c.eof && c.off >= len(c.win) }

// Cur returns the current instruction. Valid only when !Exhausted();
// the pointer is invalidated by the next Advance.
func (c *Cursor) Cur() *Instr { return &c.win[c.off] }

// Index is the in-warp index of the current instruction.
func (c *Cursor) Index() int { return c.base + c.off }

// Advance steps past the current instruction, refilling the window in
// place when it runs dry. Any pointer from Cur is invalid afterwards.
func (c *Cursor) Advance() {
	c.off++
	if c.off >= len(c.win) && !c.eof {
		c.refill(c.base + len(c.win))
	}
}

// Rewind restarts the warp from its first instruction.
func (c *Cursor) Rewind() {
	if c.src == nil {
		c.off = 0
		return
	}
	c.refill(0)
}

// Release returns the cursor's chunk to the pool and clears the
// cursor. The chunk keeps its Resume continuation, so a warp of the
// same stream reusing it later can still fast-path.
func (c *Cursor) Release() {
	if c.chunk != nil {
		c.pool.Put(c.chunk)
	}
	*c = Cursor{}
}

func (c *Cursor) refill(start int) {
	if c.chunk == nil {
		c.chunk = c.pool.Get()
	}
	c.chunk.Reset()
	win, eof, owned := c.src.Fill(c.block, c.warp, start, c.chunk)
	if owned && c.lineSize > 0 {
		memoizeChunkLines(c.chunk, win, c.lineSize)
	}
	c.win, c.eof, c.base, c.off = win, eof, start, 0
}

// memoizeChunkLines is the per-chunk analogue of
// Kernel.PrecomputeCoalesced: each memory instruction's coalesced
// line list is computed once into the chunk's Lines arena, so the
// LD/ST issue path takes the memoized fast path without touching the
// shared-kernel memo machinery.
func memoizeChunkLines(ch *Chunk, win []Instr, lineSize int) {
	for i := range win {
		in := &win[i]
		if in.Kind == Compute || in.linesSize == lineSize {
			continue
		}
		in.linesSize = 0 // force a fresh computation
		start := len(ch.Lines)
		ch.Lines = in.AppendCoalescedLines(ch.Lines, lineSize)
		// Full slice expression: appends to ch.Lines for later
		// instructions must reallocate rather than scribble over this
		// instruction's memo.
		in.lines = ch.Lines[start:len(ch.Lines):len(ch.Lines)]
		in.linesSize = lineSize
	}
}

// KernelStream adapts a fully precomputed Kernel to the Stream
// interface: windows alias the kernel's own storage (owned=false), so
// a shared kernel is never written through a stream.
type KernelStream struct {
	k *Kernel
}

// NewKernelStream wraps k as a Stream.
func NewKernelStream(k *Kernel) *KernelStream { return &KernelStream{k: k} }

// Kernel returns the wrapped kernel (the runner digests it for cache
// keys, since a wrapped kernel has no spec-level identity).
func (s *KernelStream) Kernel() *Kernel { return s.k }

func (s *KernelStream) Name() string        { return s.k.Name }
func (s *KernelStream) Blocks() int         { return len(s.k.Blocks) }
func (s *KernelStream) Warps(block int) int { return len(s.k.Blocks[block].Warps) }
func (s *KernelStream) SpecKey() string     { return "" }

func (s *KernelStream) Fill(block, warp, start int, c *Chunk) (win []Instr, eof, owned bool) {
	wt := s.k.Blocks[block].Warps[warp]
	return wt.Instrs[start:], true, false
}

// MultiStream concatenates sub-streams into one grid — the
// multi-kernel launch shape, where several kernels' blocks share the
// machine back to back.
type MultiStream struct {
	name    string
	subs    []Stream
	starts  []int // starts[i] = first global block index of subs[i]
	nBlocks int
}

// NewMultiStream concatenates subs under one name.
func NewMultiStream(name string, subs ...Stream) *MultiStream {
	m := &MultiStream{name: name, subs: subs, starts: make([]int, len(subs))}
	for i, s := range subs {
		m.starts[i] = m.nBlocks
		m.nBlocks += s.Blocks()
	}
	return m
}

func (m *MultiStream) Name() string { return m.name }
func (m *MultiStream) Blocks() int  { return m.nBlocks }

// sub maps a global block index to (sub-stream, local block index).
func (m *MultiStream) sub(block int) (Stream, int) {
	lo, hi := 0, len(m.subs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if m.starts[mid] <= block {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return m.subs[lo], block - m.starts[lo]
}

func (m *MultiStream) Warps(block int) int {
	s, b := m.sub(block)
	return s.Warps(b)
}

func (m *MultiStream) Fill(block, warp, start int, c *Chunk) ([]Instr, bool, bool) {
	s, b := m.sub(block)
	return s.Fill(b, warp, start, c)
}

func (m *MultiStream) SpecKey() string {
	key := "multi:" + m.name
	for _, s := range m.subs {
		sk := s.SpecKey()
		if sk == "" {
			return ""
		}
		key += "|" + sk
	}
	return key
}

// Materialize runs the whole stream eagerly into a Kernel — the
// bridge for consumers that still need random access (trace-file
// recording uses it warp by warp instead, via Fill directly).
func Materialize(s Stream) *Kernel {
	k := &Kernel{Name: s.Name(), Blocks: make([]*Block, s.Blocks())}
	pool := NewChunkPool(DefaultChunkInstrs)
	for bi := range k.Blocks {
		blk := &Block{Warps: make([]*WarpTrace, s.Warps(bi))}
		for wi := range blk.Warps {
			var cur Cursor
			cur.InitStream(s, pool, 0, bi, wi)
			wt := &WarpTrace{}
			for !cur.Exhausted() {
				in := *cur.Cur()
				if len(in.Addrs) > 0 {
					in.Addrs = append([]addr.Addr(nil), in.Addrs...)
				}
				in.lines, in.linesSize = nil, 0
				wt.Instrs = append(wt.Instrs, in)
				cur.Advance()
			}
			cur.Release()
			blk.Warps[wi] = wt
		}
		k.Blocks[bi] = blk
	}
	return k
}
