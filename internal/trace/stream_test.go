package trace

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/addr"
)

// testStream builds a deterministic kernel with mixed instruction kinds
// and uneven warp lengths, for round-trip and cursor tests.
func testKernel(blocks, warps int) *Kernel {
	k := &Kernel{Name: "stream-test"}
	for b := 0; b < blocks; b++ {
		blk := &Block{}
		for w := 0; w < warps; w++ {
			wt := &WarpTrace{}
			n := 5 + (b*warps+w)%150 // uneven lengths straddle chunk boundaries
			for i := 0; i < n; i++ {
				switch i % 3 {
				case 0:
					wt.Instrs = append(wt.Instrs, NewCompute(100, 3, 32))
				case 1:
					wt.Instrs = append(wt.Instrs,
						NewLoad(uint32(i%7), []addr.Addr{addr.Addr((b*1000 + w*100 + i) * 128)}))
				default:
					wt.Instrs = append(wt.Instrs, NewStore(uint32(8+i%3), []addr.Addr{
						addr.Addr((b*2000 + w*50 + i) * 128),
						addr.Addr((b*2000 + w*50 + i + 1) * 128),
					}))
				}
			}
			blk.Warps = append(blk.Warps, wt)
		}
		k.Blocks = append(k.Blocks, blk)
	}
	return k
}

// kernelsEqual compares two kernels instruction by instruction
// (ignoring coalescing memos).
func kernelsEqual(a, b *Kernel) error {
	if a.Name != b.Name {
		return fmt.Errorf("name %q vs %q", a.Name, b.Name)
	}
	if len(a.Blocks) != len(b.Blocks) {
		return fmt.Errorf("%d vs %d blocks", len(a.Blocks), len(b.Blocks))
	}
	for bi := range a.Blocks {
		if len(a.Blocks[bi].Warps) != len(b.Blocks[bi].Warps) {
			return fmt.Errorf("block %d: %d vs %d warps", bi, len(a.Blocks[bi].Warps), len(b.Blocks[bi].Warps))
		}
		for wi := range a.Blocks[bi].Warps {
			wa, wb := a.Blocks[bi].Warps[wi], b.Blocks[bi].Warps[wi]
			if len(wa.Instrs) != len(wb.Instrs) {
				return fmt.Errorf("block %d warp %d: %d vs %d instrs", bi, wi, len(wa.Instrs), len(wb.Instrs))
			}
			for ii := range wa.Instrs {
				ia, ib := &wa.Instrs[ii], &wb.Instrs[ii]
				if ia.Kind != ib.Kind || ia.PC != ib.PC || ia.Latency != ib.Latency ||
					ia.ActiveLanes != ib.ActiveLanes || len(ia.Addrs) != len(ib.Addrs) {
					return fmt.Errorf("block %d warp %d instr %d differs", bi, wi, ii)
				}
				for l := range ia.Addrs {
					if ia.Addrs[l] != ib.Addrs[l] {
						return fmt.Errorf("block %d warp %d instr %d lane %d differs", bi, wi, ii, l)
					}
				}
			}
		}
	}
	return nil
}

// TestMaterializeRoundTrip pins the eager bridge: materializing a
// kernel-backed stream reproduces the kernel.
func TestMaterializeRoundTrip(t *testing.T) {
	k := testKernel(3, 4)
	got := Materialize(NewKernelStream(k))
	if err := kernelsEqual(k, got); err != nil {
		t.Fatal(err)
	}
}

// TestFileStreamRoundTrip records a kernel into the on-disk stream
// format with an awkward chunk size and replays it back.
func TestFileStreamRoundTrip(t *testing.T) {
	k := testKernel(3, 5)
	path := filepath.Join(t.TempDir(), "k.dlpstrm")
	if err := WriteFile(path, NewKernelStream(k), 7); err != nil {
		t.Fatal(err)
	}
	fs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if fs.ChunkInstrs() != 7 {
		t.Errorf("ChunkInstrs = %d, want 7", fs.ChunkInstrs())
	}
	if fs.Digest() == "" || fs.SpecKey() != "file:sha256:"+fs.Digest() {
		t.Errorf("SpecKey %q inconsistent with digest %q", fs.SpecKey(), fs.Digest())
	}
	if err := kernelsEqual(k, Materialize(fs)); err != nil {
		t.Fatal(err)
	}
}

// TestFileStreamRerecord re-records an open FileStream under a
// different chunk size — the reader's windows (size 7) do not align
// with the writer's chunks (size 16), exercising the rewindowing path.
func TestFileStreamRerecord(t *testing.T) {
	k := testKernel(2, 3)
	dir := t.TempDir()
	first := filepath.Join(dir, "a.dlpstrm")
	if err := WriteFile(first, NewKernelStream(k), 7); err != nil {
		t.Fatal(err)
	}
	fs, err := Open(first)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	second := filepath.Join(dir, "b.dlpstrm")
	if err := WriteFile(second, fs, 16); err != nil {
		t.Fatal(err)
	}
	fs2, err := Open(second)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if err := kernelsEqual(k, Materialize(fs2)); err != nil {
		t.Fatal(err)
	}
}

// corrupt mirrors internal/faultinject's file-corruption modes. The
// helpers themselves live above the trace package (faultinject imports
// the runner), so the byte-level operations are inlined here.
func truncateHalf(t *testing.T, path string) {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()/2); err != nil {
		t.Fatal(err)
	}
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// TestOpenRejectsCorruptFiles proves every corruption mode surfaces as
// a typed *FormatError at Open time: truncation, garbling, a flipped
// payload byte (caught by the whole-file checksum), and a flipped
// footer byte.
func TestOpenRejectsCorruptFiles(t *testing.T) {
	k := testKernel(2, 3)
	write := func(t *testing.T) string {
		path := filepath.Join(t.TempDir(), "k.dlpstrm")
		if err := WriteFile(path, NewKernelStream(k), 8); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated", truncateHalf},
		{"garbled", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("\x00\xffnot a stream\x00"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"payload-byte-flip", func(t *testing.T, path string) {
			flipByte(t, path, 64) // inside the chunk data
		}},
		{"footer-byte-flip", func(t *testing.T, path string) {
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			flipByte(t, path, info.Size()-4) // inside the tail magic
		}},
		{"empty", func(t *testing.T, path string) {
			if err := os.Truncate(path, 0); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := write(t)
			tc.corrupt(t, path)
			fs, err := Open(path)
			if err == nil {
				fs.Close()
				t.Fatal("Open accepted a corrupt file")
			}
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("Open error %T (%v), want *FormatError", err, err)
			}
			if fe.Path != path {
				t.Errorf("FormatError.Path = %q, want %q", fe.Path, path)
			}
		})
	}
}

// TestCursorStreamWalk drives a cursor over a file stream and checks
// the instruction sequence and indices against the precomputed form.
func TestCursorStreamWalk(t *testing.T) {
	k := testKernel(2, 4)
	path := filepath.Join(t.TempDir(), "k.dlpstrm")
	if err := WriteFile(path, NewKernelStream(k), 8); err != nil {
		t.Fatal(err)
	}
	fs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	pool := NewChunkPool(8)
	for b := range k.Blocks {
		for w := range k.Blocks[b].Warps {
			want := k.Blocks[b].Warps[w].Instrs
			var cur Cursor
			cur.InitStream(fs, pool, 128, b, w)
			for i := range want {
				if cur.Exhausted() {
					t.Fatalf("block %d warp %d: exhausted at %d/%d", b, w, i, len(want))
				}
				if cur.Index() != i {
					t.Fatalf("block %d warp %d: Index=%d, want %d", b, w, cur.Index(), i)
				}
				in := cur.Cur()
				if in.Kind != want[i].Kind || in.PC != want[i].PC {
					t.Fatalf("block %d warp %d instr %d: got kind=%v pc=%d", b, w, i, in.Kind, in.PC)
				}
				if in.Kind != Compute {
					// The memoized per-chunk lines must equal a fresh
					// coalescing of the eager instruction.
					want := want[i].CoalescedLines(128)
					got := in.CoalescedLines(128)
					if len(got) != len(want) {
						t.Fatalf("block %d warp %d instr %d: %d coalesced lines, want %d",
							b, w, i, len(got), len(want))
					}
					for l := range got {
						if got[l] != want[l] {
							t.Fatalf("block %d warp %d instr %d line %d differs", b, w, i, l)
						}
					}
				}
				cur.Advance()
			}
			if !cur.Exhausted() {
				t.Fatalf("block %d warp %d: not exhausted after %d instrs", b, w, len(want))
			}
			cur.Release()
		}
	}
}

// TestFillPanicsOnMisalignedStart pins the Fill contract: a start that
// is not a chunk boundary is a caller bug surfaced as *FormatError.
func TestFillPanicsOnMisalignedStart(t *testing.T) {
	k := testKernel(1, 1)
	path := filepath.Join(t.TempDir(), "k.dlpstrm")
	if err := WriteFile(path, NewKernelStream(k), 8); err != nil {
		t.Fatal(err)
	}
	fs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("no panic on misaligned Fill start")
		}
		if _, ok := v.(*FormatError); !ok {
			t.Fatalf("panic value %T, want *FormatError", v)
		}
	}()
	c := NewChunkPool(8).Get()
	fs.Fill(0, 0, 3, c)
}

// TestWriteFileRejectsBadShapes covers writer-side validation.
func TestWriteFileRejectsBadShapes(t *testing.T) {
	dir := t.TempDir()
	empty := &Kernel{Name: "empty", Blocks: []*Block{{Warps: []*WarpTrace{{}}}}}
	err := WriteFile(filepath.Join(dir, "e.dlpstrm"), NewKernelStream(empty), 8)
	if err == nil {
		t.Fatal("WriteFile accepted an empty warp")
	}
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("WriteFile error %T, want *FormatError", err)
	}
}

// TestMultiStreamShape checks block/warp indexing across concatenated
// sub-streams and the composed cache key.
func TestMultiStreamShape(t *testing.T) {
	a := testKernel(2, 3)
	b := testKernel(3, 2)
	b.Name = "second"
	m := NewMultiStream("pair", NewKernelStream(a), NewKernelStream(b))
	if m.Blocks() != 5 {
		t.Fatalf("Blocks = %d, want 5", m.Blocks())
	}
	if got := m.Warps(1); got != 3 {
		t.Errorf("Warps(1) = %d, want 3", got)
	}
	if got := m.Warps(4); got != 2 {
		t.Errorf("Warps(4) = %d, want 2", got)
	}
	if m.SpecKey() != "" {
		t.Errorf("SpecKey = %q, want \"\" (kernel-backed subs are uncacheable)", m.SpecKey())
	}
	got := Materialize(m)
	if len(got.Blocks) != 5 {
		t.Fatalf("materialized %d blocks, want 5", len(got.Blocks))
	}
	if err := kernelsEqual(b, &Kernel{Name: b.Name, Blocks: got.Blocks[2:]}); err != nil {
		t.Fatal(err)
	}
}
