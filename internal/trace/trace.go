// Package trace models GPU kernels as per-warp instruction traces.
//
// A workload generator produces a Kernel: a named grid of thread blocks,
// each containing warps, each warp holding an in-order instruction
// sequence. Compute instructions carry a pipeline latency; memory
// instructions carry per-lane byte addresses that the LD/ST unit coalesces
// into line-granularity cache accesses. This is the trace-driven
// equivalent of GPGPU-Sim's functional front end: timing is supplied by
// the simulator, ordering and addresses by the trace.
package trace

import (
	"fmt"

	"repro/internal/addr"
)

// Kind discriminates instruction types.
type Kind uint8

const (
	// Compute is any non-memory instruction (ALU/FPU/SFU/branch).
	Compute Kind = iota
	// Load is a global memory read through the L1D.
	Load
	// Store is a global memory write (write-through, no-allocate).
	Store
)

func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Instr is one warp instruction.
type Instr struct {
	Kind        Kind
	PC          uint32      // static instruction ID; stable across warps
	Latency     int         // compute: cycles until the warp may issue again
	ActiveLanes int         // threads executing this instruction (<= warp size)
	Addrs       []addr.Addr // memory: per-active-lane byte addresses

	// lines memoizes the coalesced result for linesSize, filled by
	// Kernel.PrecomputeCoalesced. Read-only once set, so a precomputed
	// kernel stays safe to share across concurrent simulations.
	lines     []addr.Addr
	linesSize int
}

// NewCompute returns a compute instruction covering lanes active lanes.
func NewCompute(pc uint32, latency, lanes int) Instr {
	return Instr{Kind: Compute, PC: pc, Latency: latency, ActiveLanes: lanes}
}

// NewLoad returns a load touching the given per-lane addresses.
func NewLoad(pc uint32, addrs []addr.Addr) Instr {
	return Instr{Kind: Load, PC: pc, ActiveLanes: len(addrs), Addrs: addrs}
}

// NewStore returns a store touching the given per-lane addresses.
func NewStore(pc uint32, addrs []addr.Addr) Instr {
	return Instr{Kind: Store, PC: pc, ActiveLanes: len(addrs), Addrs: addrs}
}

// CoalescedLines returns the distinct line-aligned addresses the
// instruction touches, in first-appearance order — the memory requests a
// Fermi-style coalescer would emit.
func (in *Instr) CoalescedLines(lineSize int) []addr.Addr {
	if len(in.Addrs) == 0 {
		return nil
	}
	return in.AppendCoalescedLines(make([]addr.Addr, 0, 4), lineSize)
}

// AppendCoalescedLines appends the coalesced lines to dst and returns
// the extended slice. Hot callers (the SM LD/ST unit) pass a reusable
// scratch buffer (`buf[:0]`) so the steady-state issue path allocates
// nothing; semantics are otherwise identical to CoalescedLines.
func (in *Instr) AppendCoalescedLines(dst []addr.Addr, lineSize int) []addr.Addr {
	if in.linesSize == lineSize {
		return append(dst, in.lines...)
	}
	mask := ^addr.Addr(lineSize - 1)
	base := len(dst)
	for _, a := range in.Addrs {
		line := a & mask
		dup := false
		// Scan newest-first: consecutive lanes usually share a line, so
		// the duplicate is almost always the last line appended.
		for i := len(dst) - 1; i >= base; i-- {
			if dst[i] == line {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, line)
		}
	}
	return dst
}

// PrecomputeCoalesced memoizes every memory instruction's coalesced
// line list for the given line size, so simulations served from a
// shared kernel skip the per-issue coalescing scan. Call it once after
// generation, before the kernel is shared: the memo fields are written
// here and only read afterwards.
func (k *Kernel) PrecomputeCoalesced(lineSize int) {
	for _, b := range k.Blocks {
		for _, w := range b.Warps {
			for i := range w.Instrs {
				in := &w.Instrs[i]
				if in.Kind == Compute || in.linesSize == lineSize {
					continue
				}
				in.linesSize = 0 // force a fresh computation
				in.lines = in.AppendCoalescedLines(in.lines[:0], lineSize)
				in.linesSize = lineSize
			}
		}
	}
}

// WarpTrace is the in-order instruction stream of one warp.
type WarpTrace struct {
	Instrs []Instr
}

// Block is a thread block: the unit of work dispatched to an SM.
type Block struct {
	Warps []*WarpTrace
}

// Kernel is a launched grid.
type Kernel struct {
	Name   string
	Blocks []*Block
}

// Validate checks structural sanity: non-empty grid, every memory
// instruction has addresses, lane counts within warpSize.
func (k *Kernel) Validate(warpSize int) error {
	if len(k.Blocks) == 0 {
		return fmt.Errorf("kernel %q has no blocks", k.Name)
	}
	for bi, b := range k.Blocks {
		if len(b.Warps) == 0 {
			return fmt.Errorf("kernel %q block %d has no warps", k.Name, bi)
		}
		for wi, w := range b.Warps {
			if len(w.Instrs) == 0 {
				return fmt.Errorf("kernel %q block %d warp %d is empty", k.Name, bi, wi)
			}
			for ii, in := range w.Instrs {
				if in.ActiveLanes <= 0 || in.ActiveLanes > warpSize {
					return fmt.Errorf("kernel %q block %d warp %d insn %d: %d active lanes",
						k.Name, bi, wi, ii, in.ActiveLanes)
				}
				switch in.Kind {
				case Compute:
					if in.Latency <= 0 {
						return fmt.Errorf("kernel %q block %d warp %d insn %d: compute latency %d",
							k.Name, bi, wi, ii, in.Latency)
					}
				case Load, Store:
					if len(in.Addrs) == 0 {
						return fmt.Errorf("kernel %q block %d warp %d insn %d: memory insn with no addresses",
							k.Name, bi, wi, ii)
					}
					if len(in.Addrs) != in.ActiveLanes {
						return fmt.Errorf("kernel %q block %d warp %d insn %d: %d addrs vs %d lanes",
							k.Name, bi, wi, ii, len(in.Addrs), in.ActiveLanes)
					}
				default:
					return fmt.Errorf("kernel %q block %d warp %d insn %d: unknown kind %d",
						k.Name, bi, wi, ii, in.Kind)
				}
			}
		}
	}
	return nil
}

// Summary aggregates static trace-level properties of a kernel.
type Summary struct {
	Blocks        int
	Warps         int
	WarpInsns     uint64 // total warp instructions
	ThreadInsns   uint64 // warp instructions weighted by active lanes
	MemInsns      uint64 // warp-level loads + stores
	LoadInsns     uint64
	StoreInsns    uint64
	LineAccesses  uint64 // coalesced line requests (the N_memory_access of Fig. 6)
	DistinctPCs   int    // distinct memory-instruction PCs
	DistinctLines uint64 // distinct lines touched (footprint)
}

// MemoryAccessRatio is line accesses over thread instructions (Fig. 6).
func (s *Summary) MemoryAccessRatio() float64 {
	if s.ThreadInsns == 0 {
		return 0
	}
	return float64(s.LineAccesses) / float64(s.ThreadInsns)
}

// Summarize walks the kernel once and computes its Summary.
func (k *Kernel) Summarize(lineSize int) *Summary {
	s := &Summary{Blocks: len(k.Blocks)}
	pcs := map[uint32]bool{}
	lines := map[addr.Addr]bool{}
	for _, b := range k.Blocks {
		s.Warps += len(b.Warps)
		for _, w := range b.Warps {
			for i := range w.Instrs {
				in := &w.Instrs[i]
				s.WarpInsns++
				s.ThreadInsns += uint64(in.ActiveLanes)
				switch in.Kind {
				case Load:
					s.MemInsns++
					s.LoadInsns++
				case Store:
					s.MemInsns++
					s.StoreInsns++
				default:
					continue
				}
				pcs[in.PC] = true
				for _, l := range in.CoalescedLines(lineSize) {
					s.LineAccesses++
					lines[l] = true
				}
			}
		}
	}
	s.DistinctPCs = len(pcs)
	s.DistinctLines = uint64(len(lines))
	return s
}
