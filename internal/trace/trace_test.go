package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func TestKindString(t *testing.T) {
	if Compute.String() != "compute" || Load.String() != "load" || Store.String() != "store" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unknown kind string: %s", Kind(9))
	}
}

func TestCoalescedLinesMergesSameLine(t *testing.T) {
	// 32 consecutive 4-byte words span exactly one 128B line.
	addrs := make([]addr.Addr, 32)
	for i := range addrs {
		addrs[i] = addr.Addr(0x1000 + i*4)
	}
	in := NewLoad(0, addrs)
	lines := in.CoalescedLines(128)
	if len(lines) != 1 || lines[0] != 0x1000 {
		t.Errorf("coalesced = %v, want [0x1000]", lines)
	}
}

func TestCoalescedLinesStride128(t *testing.T) {
	// Stride-128 accesses: every lane hits a different line.
	addrs := make([]addr.Addr, 32)
	for i := range addrs {
		addrs[i] = addr.Addr(i * 128)
	}
	in := NewLoad(0, addrs)
	lines := in.CoalescedLines(128)
	if len(lines) != 32 {
		t.Errorf("coalesced %d lines, want 32", len(lines))
	}
}

func TestCoalescedLinesPreservesFirstAppearanceOrder(t *testing.T) {
	in := NewLoad(0, []addr.Addr{300, 10, 310, 500})
	lines := in.CoalescedLines(128)
	want := []addr.Addr{256, 0, 384}
	if len(lines) != len(want) {
		t.Fatalf("coalesced = %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("lines[%d] = %#x, want %#x", i, lines[i], want[i])
		}
	}
}

func TestCoalescedLinesEmpty(t *testing.T) {
	in := NewCompute(0, 4, 32)
	if got := in.CoalescedLines(128); got != nil {
		t.Errorf("compute instruction coalesced to %v", got)
	}
}

func TestCoalescedCountProperty(t *testing.T) {
	// Number of coalesced lines is between 1 and len(addrs), and every
	// input address falls within one of the returned lines.
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		addrs := make([]addr.Addr, len(raw))
		for i, r := range raw {
			addrs[i] = addr.Addr(r)
		}
		in := NewLoad(0, addrs)
		lines := in.CoalescedLines(128)
		if len(lines) < 1 || len(lines) > len(addrs) {
			return false
		}
		for _, a := range addrs {
			found := false
			for _, l := range lines {
				if a&^addr.Addr(127) == l {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func validKernel() *Kernel {
	w := &WarpTrace{Instrs: []Instr{
		NewCompute(0, 4, 32),
		NewLoad(1, []addr.Addr{0, 4, 8}),
		NewStore(2, []addr.Addr{128}),
	}}
	return &Kernel{Name: "k", Blocks: []*Block{{Warps: []*WarpTrace{w}}}}
}

func TestValidateAcceptsGoodKernel(t *testing.T) {
	if err := validKernel().Validate(32); err != nil {
		t.Errorf("valid kernel rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		k    *Kernel
	}{
		{"no blocks", &Kernel{Name: "x"}},
		{"no warps", &Kernel{Name: "x", Blocks: []*Block{{}}}},
		{"empty warp", &Kernel{Name: "x", Blocks: []*Block{{Warps: []*WarpTrace{{}}}}}},
		{"zero lanes", &Kernel{Name: "x", Blocks: []*Block{{Warps: []*WarpTrace{
			{Instrs: []Instr{{Kind: Compute, Latency: 4, ActiveLanes: 0}}}}}}}},
		{"too many lanes", &Kernel{Name: "x", Blocks: []*Block{{Warps: []*WarpTrace{
			{Instrs: []Instr{{Kind: Compute, Latency: 4, ActiveLanes: 33}}}}}}}},
		{"zero latency compute", &Kernel{Name: "x", Blocks: []*Block{{Warps: []*WarpTrace{
			{Instrs: []Instr{{Kind: Compute, ActiveLanes: 32}}}}}}}},
		{"load without addrs", &Kernel{Name: "x", Blocks: []*Block{{Warps: []*WarpTrace{
			{Instrs: []Instr{{Kind: Load, ActiveLanes: 1}}}}}}}},
		{"lane/addr mismatch", &Kernel{Name: "x", Blocks: []*Block{{Warps: []*WarpTrace{
			{Instrs: []Instr{{Kind: Load, ActiveLanes: 2, Addrs: []addr.Addr{0}}}}}}}}},
		{"unknown kind", &Kernel{Name: "x", Blocks: []*Block{{Warps: []*WarpTrace{
			{Instrs: []Instr{{Kind: Kind(7), ActiveLanes: 1}}}}}}}},
	}
	for _, c := range cases {
		if err := c.k.Validate(32); err == nil {
			t.Errorf("%s: Validate accepted a broken kernel", c.name)
		}
	}
}

func TestSummarize(t *testing.T) {
	k := validKernel()
	s := k.Summarize(128)
	if s.Blocks != 1 || s.Warps != 1 {
		t.Errorf("blocks/warps = %d/%d", s.Blocks, s.Warps)
	}
	if s.WarpInsns != 3 {
		t.Errorf("WarpInsns = %d, want 3", s.WarpInsns)
	}
	// compute 32 lanes + load 3 lanes + store 1 lane.
	if s.ThreadInsns != 36 {
		t.Errorf("ThreadInsns = %d, want 36", s.ThreadInsns)
	}
	if s.MemInsns != 2 || s.LoadInsns != 1 || s.StoreInsns != 1 {
		t.Errorf("mem/load/store = %d/%d/%d", s.MemInsns, s.LoadInsns, s.StoreInsns)
	}
	// load coalesces to line 0; store is line 128: 2 line accesses, 2 lines.
	if s.LineAccesses != 2 {
		t.Errorf("LineAccesses = %d, want 2", s.LineAccesses)
	}
	if s.DistinctLines != 2 {
		t.Errorf("DistinctLines = %d, want 2", s.DistinctLines)
	}
	if s.DistinctPCs != 2 {
		t.Errorf("DistinctPCs = %d, want 2", s.DistinctPCs)
	}
	wantRatio := 2.0 / 36.0
	if got := s.MemoryAccessRatio(); got != wantRatio {
		t.Errorf("MemoryAccessRatio = %v, want %v", got, wantRatio)
	}
	if got := (&Summary{}).MemoryAccessRatio(); got != 0 {
		t.Errorf("empty ratio = %v", got)
	}
}
