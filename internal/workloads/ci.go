package workloads

import (
	"repro/internal/addr"
)

// This file holds the nine cache-insufficient (CI) applications of
// Table 2. Their memory-access ratios exceed 1% and each mixes, from
// distinct memory instructions, (a) a small per-warp reuse window whose
// lines are re-touched every few of the warp's own instructions and
// (b) dead-on-arrival streaming data. With 48 resident warps the window
// re-touches return after more interleaved set accesses than the 4-way
// baseline L1D can hold — the paper's thrashing pathology — while
// instruction-aware protection keeps window lines resident and lets the
// stream cycle through the unprotected ways.
//
// All CI kernels launch 16 blocks of 48 warps — one full-occupancy block
// per SM (Table 1: max 48 warps per core) — so concurrent misses exceed
// the 16 MSHRs and the baseline exhibits memory-pipeline stalls (§2).
// Scale factors multiply the block count (and shared footprints such as
// BFS's edge region); scale 1 is byte-identical to the original
// generators.
//
// Reuse-distance arithmetic: with L line accesses per warp iteration and
// 48 warps interleaving, a window line re-touched after p of its warp's
// iterations has a per-set reuse distance of roughly p*L*48/32 = 1.5*p*L
// under the hashed 32-set index. Windows are sized so that RD lands at
// 6–9 for ordinary CI apps (recoverable by protection or by doubling
// associativity), 12–15 for CFD/SR2K (beyond the 32KB cache's 8-way
// reach but within the 4-bit protection window — the paper's §6.1.2
// observation), and far beyond 64 for KM/STR.

const (
	ciBlocks = 16
	ciWarps  = 48
)

// slidingStream is the common CI skeleton: each warp advances through a
// private data region touching every line exactly `touches` times — at
// birth (PC 0) and again every gap iterations (PCs 1..touches-1) — while
// streaming dead lines from PC 9. Each line's useful life is short, so a
// scheme that bypasses or evicts the wrong lines loses hits it can never
// recover, while per-instruction protection learns that early-touch
// lines have upcoming reuse and last-touch/stream lines are dead (a
// line's protected life comes from the PD of its *last* toucher).
func slidingStream(name string, scale, touches, gap, streamLoads, computes, iters int) gridSpec {
	mem := &layout{}
	return gridSpec{name: name, blocks: ciBlocks * scale, warps: ciWarps, mem: mem,
		build: func(b *wb, block, warp int) {
			fresh := mem.array(iters)
			stream := mem.array(iters * streamLoads)
			for i := 0; i < iters; i++ {
				b.loadVec(0, lineAt(fresh, i)) // birth
				for t := 1; t < touches; t++ {
					if i >= t*gap {
						b.loadVec(uint32(t), lineAt(fresh, i-t*gap))
					}
				}
				for st := 0; st < streamLoads; st++ {
					b.loadVec(9, lineAt(stream, i*streamLoads+st))
				}
				b.compute(100, computes)
			}
		}}
}

// gridCFD models Rodinia's CFD solver: per-cell state re-read at RD ~12 —
// beyond even the 32KB cache's 8-way reach, which is why protection
// outperforms doubling the cache here (§6.1.2) — plus streamed flux
// operands.
func gridCFD(scale int) gridSpec {
	return slidingStream("CFD", scale, 3, 2, 0, 3, 150)
}

// gridPVR models Mars' Page View Rank: rank entries re-read at RD ~6
// (recovered by protection or by a 32KB cache) against streaming log
// records.
func gridPVR(scale int) gridSpec {
	return slidingStream("PVR", scale, 3, 1, 1, 2, 170)
}

// gridSS models Mars' Similarity Score: document-vector reuse at RD ~6
// against streamed candidate vectors, with essentially no compute
// between memory operations.
func gridSS(scale int) gridSpec {
	return slidingStream("SS", scale, 3, 1, 1, 0, 190)
}

// gridBFS models Rodinia's BFS: the application the paper dissects in
// Fig. 7 because its memory instructions have wildly different reuse
// patterns: frontier entries re-read back to back (RD 1–4), the visited
// bitmap re-checked a few instructions later (RD 5–8), CSR offsets and
// the cost array once per iteration or slower (RD 9–64), and scattered
// edge lists (>64).
func gridBFS(scale int) gridSpec {
	mem := &layout{}
	edgeLines := 3072 * scale
	edges := mem.array(edgeLines)
	return gridSpec{name: "BFS", blocks: ciBlocks * scale, warps: ciWarps, mem: mem,
		build: func(b *wb, block, warp int) {
			rng := seedFor(13, block, warp)
			const nodes = 70
			frontier := mem.array(nodes)
			visited := mem.array(nodes)
			offsets := mem.array(nodes)
			cost := mem.array(nodes)
			for n := 0; n < nodes; n++ {
				f := lineAt(frontier, n)
				b.loadVec(0, f)                  // insn0: pop frontier entry
				b.loadVec(1, f)                  // insn1: node id re-read: RD 1-4
				b.loadVec(2, lineAt(visited, n)) // insn2: visited bitmap fetch
				b.loadGather(3, []addr.Addr{     // insn3: edge gather: RD >64
					lineAt(edges, rng.Intn(edgeLines)),
					lineAt(edges, rng.Intn(edgeLines)),
				})
				b.loadVec(4, lineAt(offsets, n)) // insn4: CSR offsets fetch
				b.loadGather(5, []addr.Addr{     // insn5: edge gather
					lineAt(edges, rng.Intn(edgeLines)),
				})
				b.loadVec(6, lineAt(visited, n)) // insn6: visited re-check: RD 5-8
				if n > 0 {
					b.loadVec(7, lineAt(offsets, n-1)) // insn7: prior offsets: RD 9-64
					b.storeVec(8, lineAt(cost, n-1))   // insn8: cost update
				}
				b.compute(100, 1)
			}
		}}
}

// gridMM models Mars' untiled matrix multiply: reuse spread across all RD
// ranges (Fig. 3 reports 19.5/35.8/33.2/11.5% for ranges 1–4/5–8/9–64/
// >64). Four structures re-referenced at staggered distances reproduce
// the spread, and distinct PCs per structure let DLP protect selectively
// — the workload shape that motivates per-instruction PDs (§3.3).
func gridMM(scale int) gridSpec {
	mem := &layout{}
	return gridSpec{name: "MM", blocks: ciBlocks * scale, warps: ciWarps, mem: mem,
		build: func(b *wb, block, warp int) {
			const iters = 150
			rowA := mem.array(2 * iters)
			tileB := mem.array(iters)
			panel := mem.array(2 * iters)
			bigC := mem.array(32)
			for i := 0; i < iters; i++ {
				a := lineAt(rowA, 2*i)
				b.loadSpan(0, a, 2)                  // insn0: A row fragment birth
				b.loadSpan(1, a, 2)                  // insn1: immediate re-read: RD 1-4
				b.loadVec(2, lineAt(tileB, i))       // insn2: B tile birth
				b.loadSpan(3, lineAt(panel, 2*i), 2) // insn3: B panel birth
				b.loadVec(4, lineAt(tileB, i))       // insn4: B tile re-read: RD 5-8
				if i > 0 {
					b.loadSpan(5, lineAt(panel, 2*(i-1)), 2) // insn5: panel reuse: RD 9-64
				}
				b.loadVec(6, lineAt(bigC, i%32)) // insn6: C accumulator pass: RD >64
			}
		}}
}

// gridSRK models Polybench's SYRK (C = alpha*A*A^T + beta*C): the A panel
// re-read at RD ~6 against streamed C tiles, with the highest
// density of partially coalesced (span-2) accesses so far.
func gridSRK(scale int) gridSpec {
	mem := &layout{}
	return gridSpec{name: "SRK", blocks: ciBlocks * scale, warps: ciWarps, mem: mem,
		build: func(b *wb, block, warp int) {
			const iters = 150
			panel := mem.array(2 * iters)
			for i := 0; i < iters; i++ {
				b.loadSpan(0, lineAt(panel, 2*i), 2) // panel birth
				if i > 0 {
					b.loadSpan(1, lineAt(panel, 2*(i-1)), 2) // first reuse
				}
				if i > 1 {
					b.loadSpan(2, lineAt(panel, 2*(i-2)), 2) // last reuse: RD ~9
				}
			}
		}}
}

// gridSR2K models SYR2K: two panels re-read at RD ~15 — like CFD, beyond
// the 32KB cache but inside the protection window (§6.1.2) — with the
// access ratio pushed toward 8% by span-3 streaming.
func gridSR2K(scale int) gridSpec {
	mem := &layout{}
	return gridSpec{name: "SR2K", blocks: ciBlocks * scale, warps: ciWarps, mem: mem,
		build: func(b *wb, block, warp int) {
			const iters = 150
			panel := mem.array(2 * iters)
			stream := mem.array(3 * iters)
			for i := 0; i < iters; i++ {
				b.loadSpan(0, lineAt(panel, 2*i), 2)  // panel birth
				b.loadSpan(1, lineAt(stream, 3*i), 3) // streamed second panel
				if i > 0 {
					b.loadSpan(2, lineAt(panel, 2*(i-1)), 2) // first reuse
				}
				if i > 1 {
					b.loadSpan(3, lineAt(panel, 2*(i-2)), 2) // last reuse: RD ~13
				}
			}
		}}
}

// gridKM models Rodinia's K-means: the dominant point array is re-read
// only across outer iterations, at reuse distances far beyond any
// protection window (Fig. 3: mostly >64), while the small assignment
// structure cycles at protectable distances.
func gridKM(scale int) gridSpec {
	mem := &layout{}
	return gridSpec{name: "KM", blocks: ciBlocks * scale, warps: ciWarps, mem: mem,
		build: func(b *wb, block, warp int) {
			points := mem.array(60)
			const reps = 5
			assign := mem.array(reps * 10)
			g := 0
			for r := 0; r < reps; r++ {
				for p := 0; p*6 < 60; p++ {
					b.loadSpan(0, lineAt(points, p*6), 6) // points: RD >64
					b.loadVec(1, lineAt(assign, g))       // assignment birth
					if g > 0 {
						b.loadVec(2, lineAt(assign, g-1)) // first reuse
					}
					if g > 1 {
						b.loadVec(3, lineAt(assign, g-2)) // last reuse
					}
					g++
				}
			}
		}}
}

// gridSTR models Mars' String Match: the text corpus is re-scanned once
// per keyword with byte-granularity (poorly coalesced) loads — the
// highest memory-access ratio in the suite (Fig. 6) and long reuse
// distances that no scheme can protect; gains come from bypassing the
// congested cache.
func gridSTR(scale int) gridSpec {
	mem := &layout{}
	return gridSpec{name: "STR", blocks: ciBlocks * scale, warps: ciWarps, mem: mem,
		build: func(b *wb, block, warp int) {
			text := mem.array(50)
			const keywords = 6
			kw := mem.array(keywords * 5)
			j := 0
			for k := 0; k < keywords; k++ {
				for l := 0; l+10 <= 50; l += 10 {
					b.loadSpan(0, lineAt(text, l), 5)
					b.loadSpan(1, lineAt(text, l+5), 5)
					if j%2 == 0 {
						b.loadVec(2, lineAt(kw, j/2)) // keyword state birth
					} else {
						b.loadVec(3, lineAt(kw, j/2)) // re-read: the protectable sliver
					}
					j++
				}
			}
		}}
}
